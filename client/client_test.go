package client_test

import (
	"bufio"
	"context"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"soifft/client"
	"soifft/internal/serve"
)

// startServer runs a real serve.Server on an ephemeral port.
func startServer(t *testing.T) *serve.Server {
	t.Helper()
	s := serve.New(serve.Config{Addr: "127.0.0.1:0"})
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// scriptedServer is a minimal wire peer answering every request with
// the scripted response for its ordinal (the last response repeats),
// closing the connection after any draining reply like the real server.
type scriptedServer struct {
	ln net.Listener

	mu   sync.Mutex
	n    int
	resp []*serve.Response
	wg   sync.WaitGroup
}

func newScriptedServer(t *testing.T, resp ...*serve.Response) *scriptedServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &scriptedServer{ln: ln, resp: resp}
	s.wg.Add(1)
	go s.accept()
	t.Cleanup(func() {
		_ = ln.Close()
		s.wg.Wait()
	})
	return s
}

func (s *scriptedServer) addr() string { return s.ln.Addr().String() }

func (s *scriptedServer) seen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func (s *scriptedServer) accept() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			br := bufio.NewReader(conn)
			bw := bufio.NewWriter(conn)
			for {
				req, err := serve.ReadRequest(br, 1<<22)
				if err != nil {
					return
				}
				s.mu.Lock()
				i := s.n
				s.n++
				s.mu.Unlock()
				if i >= len(s.resp) {
					i = len(s.resp) - 1
				}
				resp := *s.resp[i]
				resp.Proto = req.Proto
				if resp.Status == serve.StatusOK && resp.Data == nil {
					resp.Data = req.Data
				}
				if err := serve.WriteResponse(bw, &resp); err != nil {
					return
				}
				if err := bw.Flush(); err != nil {
					return
				}
				if resp.Status == serve.StatusDraining {
					return // the real server closes after a draining reply
				}
			}
		}()
	}
}

// TestClientReconnectAfterServerRestart pins the redial contract: once
// a transport failure latches a client broken, it fails fast with a
// typed error instead of hanging, and a fresh Dial against a restarted
// server works immediately.
func TestClientReconnectAfterServerRestart(t *testing.T) {
	s := startServer(t)
	addr := s.Addr().String()
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := make([]complex128, 64)
	for i := range data {
		data[i] = complex(float64(i), 0)
	}
	if _, err := c.Transform(data, nil); err != nil {
		t.Fatalf("transform before restart: %v", err)
	}

	// Kill the server hard: the expired context severs live connections.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_ = s.Shutdown(ctx)

	// The in-flight connection is now dead; the next request must fail
	// with a transport error, not hang.
	c.SetRequestTimeout(2 * time.Second)
	start := time.Now()
	if _, err := c.Transform(data, nil); err == nil {
		t.Fatal("transform on a severed connection succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("severed connection did not fail promptly")
	}
	// The failure latches: later requests fail fast with the typed
	// broken-connection error.
	start = time.Now()
	_, err = c.Transform(data, nil)
	if err == nil {
		t.Fatal("latched client accepted a request")
	}
	if !strings.Contains(err.Error(), "connection broken") {
		t.Errorf("latched error = %q, want a broken-connection error", err)
	}
	if time.Since(start) > time.Second {
		t.Error("latched client did not fail fast")
	}

	// A restarted server (fresh listener) plus a fresh Dial recovers.
	s2 := startServer(t)
	c2, err := client.Dial(s2.Addr().String())
	if err != nil {
		t.Fatalf("redial after restart: %v", err)
	}
	defer c2.Close()
	if _, err := c2.Transform(data, nil); err != nil {
		t.Fatalf("transform after redial: %v", err)
	}
}

// TestTransformRetryHonorsRetryAfter checks the retry helper sleeps by
// the server's hint (jittered within (hint/2, hint]) rather than a
// fixed schedule, and then succeeds.
func TestTransformRetryHonorsRetryAfter(t *testing.T) {
	const hint = 60 * time.Millisecond
	s := newScriptedServer(t,
		&serve.Response{Status: serve.StatusOverloaded, RetryAfter: hint, Msg: "queue full"},
		&serve.Response{Status: serve.StatusOverloaded, RetryAfter: hint, Msg: "queue full"},
		&serve.Response{Status: serve.StatusOK},
	)
	c, err := client.Dial(s.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := make([]complex128, 16)
	start := time.Now()
	if _, err := c.TransformRetry(context.Background(), data, nil, 5); err != nil {
		t.Fatalf("retry should have succeeded on the third attempt: %v", err)
	}
	elapsed := time.Since(start)
	if got := s.seen(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
	// Two jittered waits, each in (hint/2, hint]: total in (hint, 2*hint]
	// plus round-trip time.
	if elapsed < hint {
		t.Errorf("retries took %v; hints of %v were not honored", elapsed, hint)
	}
	if elapsed > 4*hint+time.Second {
		t.Errorf("retries took %v; backoff far exceeds the %v hints", elapsed, hint)
	}
}

// TestTransformRetryStopsOnNonRetryable checks authoritative statuses
// return immediately: a bad request is never re-sent, and a draining
// reply (whose connection the server closes) is surfaced as typed
// draining instead of burning the remaining attempts.
func TestTransformRetryStopsOnNonRetryable(t *testing.T) {
	bad := newScriptedServer(t, &serve.Response{Status: serve.StatusBadRequest, Msg: "no such plan"})
	c, err := client.Dial(bad.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := make([]complex128, 16)
	if _, err := c.TransformRetry(context.Background(), data, nil, 5); err == nil {
		t.Fatal("bad request should fail")
	}
	if got := bad.seen(); got != 1 {
		t.Errorf("bad request was retried: server saw %d requests, want 1", got)
	}

	drain := newScriptedServer(t, &serve.Response{Status: serve.StatusDraining, RetryAfter: 5 * time.Millisecond})
	c2, err := client.Dial(drain.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	start := time.Now()
	_, err = c2.TransformRetry(context.Background(), data, nil, 5)
	if !client.IsDraining(err) {
		t.Fatalf("got %v, want a typed draining error", err)
	}
	if got := drain.seen(); got != 1 {
		t.Errorf("draining was retried on a closed connection: server saw %d requests, want 1", got)
	}
	if time.Since(start) > time.Second {
		t.Error("draining rejection should return immediately, not back off")
	}
}
