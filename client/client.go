// Package client is the Go client for the soiserve FFT service: it
// speaks the length-prefixed TCP protocol of internal/serve over one
// long-lived connection, maps non-OK responses to typed errors, and
// offers a retry helper that honors the server's backpressure hints.
package client

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"soifft"
	"soifft/internal/serve"
	"soifft/internal/trace"
)

// Options name the plan a request should execute under. The zero value
// lets the server choose all defaults (the same defaults as
// soifft.NewPlan).
type Options struct {
	Segments int // SOI segment count P (0 = default)
	Mu, Nu   int // oversampling μ/ν (0,0 = default 5/4)
	Taps     int // convolution taps B (0 = default)
	// Accuracy selects a preset rung instead of explicit taps when
	// UseAccuracy is set.
	Accuracy    soifft.Accuracy
	UseAccuracy bool
}

func (o *Options) fill(req *serve.Request) {
	req.Accuracy = serve.AccuracyNone
	if o == nil {
		return
	}
	req.Segments = o.Segments
	req.Mu, req.Nu = o.Mu, o.Nu
	req.Taps = o.Taps
	if o.UseAccuracy {
		req.Accuracy = int(o.Accuracy)
	}
}

// Client is a connection to one soiserve instance. A Client serializes
// its requests (the protocol is strict request/response); open several
// clients for in-flight parallelism. Safe for concurrent use.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	maxN    int
	timeout time.Duration
	broken  error // first transport-level failure; connection is unusable after
}

// MaxN is the largest response payload a client will accept.
const MaxN = 1 << 24

// Dial connects to a soiserve instance.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout connects with a bounded dial.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dialing %s: %w", addr, err)
	}
	return newClient(conn), nil
}

// DialContext connects under the context's cancellation and deadline, so
// a caller's ctx bounds connection establishment the same way
// SetRequestTimeout bounds each request.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing %s: %w", addr, err)
	}
	return newClient(conn), nil
}

func newClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		br:   bufio.NewReader(conn),
		bw:   bufio.NewWriter(conn),
		maxN: MaxN,
	}
}

// SetRequestTimeout bounds every subsequent request's full round trip
// (write, server time, read). A request that overruns fails with a
// deadline error and marks the connection broken — the protocol is
// strict request/response, so a late reply would desynchronize the
// stream; redial to continue. d <= 0 removes the bound.
func (c *Client) SetRequestTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d < 0 {
		d = 0
	}
	c.timeout = d
}

// Close tears down the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// Ping round-trips an empty frame.
func (c *Client) Ping() error {
	_, err := c.do(&serve.Request{Op: serve.OpPing, Accuracy: serve.AccuracyNone})
	return err
}

// Transform computes DFT(data) on the server under the plan named by
// opt (nil = server defaults).
func (c *Client) Transform(data []complex128, opt *Options) ([]complex128, error) {
	return c.transform(context.Background(), serve.OpForward, data, opt)
}

// TransformContext is Transform bounded by ctx: cancellation or a ctx
// deadline interrupts the round trip by expiring the connection's I/O
// deadline, the same mechanism SetRequestTimeout uses. Like a timed-out
// request, an interrupted one leaves the stream desynchronized, so the
// connection is marked broken — redial to continue.
func (c *Client) TransformContext(ctx context.Context, data []complex128, opt *Options) ([]complex128, error) {
	return c.transform(ctx, serve.OpForward, data, opt)
}

// Inverse computes IDFT(data) on the server.
func (c *Client) Inverse(data []complex128, opt *Options) ([]complex128, error) {
	return c.transform(context.Background(), serve.OpInverse, data, opt)
}

// InverseContext is Inverse bounded by ctx (see TransformContext).
func (c *Client) InverseContext(ctx context.Context, data []complex128, opt *Options) ([]complex128, error) {
	return c.transform(ctx, serve.OpInverse, data, opt)
}

// PingContext round-trips an empty frame bounded by ctx.
func (c *Client) PingContext(ctx context.Context) error {
	_, err := c.doCtx(ctx, &serve.Request{Op: serve.OpPing, Accuracy: serve.AccuracyNone})
	return err
}

func (c *Client) transform(ctx context.Context, op serve.Op, data []complex128, opt *Options) ([]complex128, error) {
	// A trace ID on the context (soifft.WithTraceID) rides the v2
	// request header, so the server's spans for this request join the
	// caller's timeline.
	req := &serve.Request{Op: op, N: len(data), Data: data, TraceID: uint64(trace.IDFrom(ctx))}
	opt.fill(req)
	return c.doCtx(ctx, req)
}

func (c *Client) do(req *serve.Request) ([]complex128, error) {
	return c.doCtx(context.Background(), req)
}

func (c *Client) doCtx(ctx context.Context, req *serve.Request) ([]complex128, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.broken != nil {
		return nil, fmt.Errorf("client: connection broken by earlier failure, redial: %w", c.broken)
	}
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if ctx.Done() != nil {
		// Cancellation expires the connection deadline so a blocked read
		// or write returns promptly; AfterFunc keeps the fast path free
		// of extra goroutines when ctx is never cancelled.
		stop := context.AfterFunc(ctx, func() {
			_ = c.conn.SetDeadline(time.Now())
		})
		defer stop()
	}
	wrap := func(err error) error {
		if ctxErr := ctx.Err(); ctxErr != nil {
			c.fail(fmt.Errorf("client: request interrupted: %w", ctxErr))
			return ctxErr
		}
		return c.fail(err)
	}
	if err := serve.WriteRequest(c.bw, req); err != nil {
		return nil, wrap(fmt.Errorf("client: send: %w", err))
	}
	if err := c.bw.Flush(); err != nil {
		return nil, wrap(fmt.Errorf("client: send: %w", err))
	}
	resp, err := serve.ReadResponse(c.br, c.maxN)
	if err != nil {
		return nil, wrap(fmt.Errorf("client: recv: %w", err))
	}
	if err := resp.Err(); err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// fail latches the first transport-level error: after a failed write,
// a truncated read, or an expired request deadline the framing is no
// longer trustworthy, so later requests fail fast instead of reading a
// stale or half-delivered response.
func (c *Client) fail(err error) error {
	if c.broken == nil {
		c.broken = err
	}
	return err
}

// IsOverloaded reports whether err is a backpressure rejection and
// returns the server's retry-after hint.
func IsOverloaded(err error) (time.Duration, bool) { return serve.IsOverloaded(err) }

// IsDraining reports whether err means the server is shutting down.
func IsDraining(err error) bool { return serve.IsDraining(err) }

// TransformRetry is Transform plus bounded retries on overload
// backpressure. Each retry honors the server's RetryAfter hint from
// that rejection, raised to an exponentially growing floor (for servers
// that send no hint), capped, and spread with jitter so synchronized
// clients don't re-collide on the exact hint. It gives up when ctx
// expires or attempts run out.
//
// Only StatusOverloaded retries. A draining server closes the
// connection after its rejection, so retrying here cannot succeed —
// redial another replica (or front the tier with soigate, whose router
// does that failover transparently). Every other status is
// authoritative for this request and returns immediately.
func (c *Client) TransformRetry(ctx context.Context, data []complex128, opt *Options, attempts int) ([]complex128, error) {
	if attempts <= 0 {
		attempts = 5
	}
	const (
		waitFloor = 10 * time.Millisecond
		waitCap   = 2 * time.Second
	)
	floor := waitFloor
	var lastErr error
	for i := 0; i < attempts; i++ {
		out, err := c.TransformContext(ctx, data, opt)
		if err == nil {
			return out, nil
		}
		lastErr = err
		wait, ok := IsOverloaded(err)
		if !ok {
			return nil, err
		}
		if wait < floor {
			wait = floor
		}
		if wait > waitCap {
			wait = waitCap
		}
		// Jitter over (wait/2, wait]: on average most of the hint, never
		// more than it, and never an exact shared instant.
		wait = wait/2 + time.Duration(rand.Int63n(int64(wait/2)+1))
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(wait):
		}
		if floor < waitCap {
			floor *= 2
		}
	}
	return nil, lastErr
}
