package soifft

import (
	"fmt"
	"io"
	"strings"
	"time"

	"soifft/internal/instrument"
)

// InstrumentLevel selects how much a plan observes about its own
// execution (see WithInstrumentation).
type InstrumentLevel int

// Instrumentation levels.
const (
	// InstrumentOff records nothing; the execution paths pay one pointer
	// test per stage and nothing else. This is the default.
	InstrumentOff InstrumentLevel = iota
	// InstrumentCounters maintains atomic event counters — transforms,
	// stage calls, FLOP estimates, communication bytes and messages —
	// without ever reading the clock.
	InstrumentCounters
	// InstrumentTimers additionally measures per-stage wall time and
	// worker busy time, enabling occupancy and GFLOP/s reporting at the
	// cost of a handful of clock reads per transform.
	InstrumentTimers
)

// String names the level.
func (l InstrumentLevel) String() string { return instrument.Level(l).String() }

// WithInstrumentation enables execution observability on the plan at the
// given level. Retrieve accumulated data with Plan.Report; zero it with
// Plan.ResetReport. With InstrumentOff (the default) the overhead is a
// single pointer test per pipeline stage.
func WithInstrumentation(level InstrumentLevel) Option {
	return func(o *options) { o.instrument = level }
}

// Instrument attaches instrumentation at the given level to an existing
// plan (or detaches it with InstrumentOff), replacing any previous
// recorder and its counts. Like plan construction it is not synchronized
// with execution: call it before sharing the plan across goroutines, not
// while transforms are in flight.
func (p *Plan) Instrument(level InstrumentLevel) {
	p.inner.SetRecorder(instrument.New(instrument.Level(level)))
}

// InstrumentationLevel reports the plan's current level.
func (p *Plan) InstrumentationLevel() InstrumentLevel {
	return InstrumentLevel(p.inner.Recorder().Level())
}

// StageReport is the accumulated observation of one pipeline stage.
type StageReport struct {
	// Stage is the stable stage identifier: "halo", "convolve",
	// "exchange", "segment_fft" or "demod", in pipeline order.
	Stage string
	// Calls counts stage executions (one per transform that ran it).
	Calls int64
	// Wall is the cumulative wall time (zero below InstrumentTimers).
	Wall time.Duration
	// Busy is the cumulative per-worker compute time, for stages that
	// measure it; Busy/Wall·Workers is the occupancy.
	Busy time.Duration
	// Workers is the widest worker span observed for the stage.
	Workers int
	// Flops is the cumulative estimated floating-point operations.
	Flops int64
	// Occupancy is worker utilization in [0, 1]: busy time over wall
	// time times the worker span. Zero when not measured.
	Occupancy float64
	// GFlopsPerSec is the achieved rate from Flops and Wall (zero when
	// timing is off or the stage carries no FLOP estimate).
	GFlopsPerSec float64
}

// CommReport is the accumulated communication observation of a plan's
// distributed runs (zero for shared-memory-only plans).
type CommReport struct {
	// Messages and Bytes count point-to-point sends (halo exchanges,
	// gather contributions) at the sender.
	Messages int64
	Bytes    int64
	// Alltoalls counts collective all-to-all operations — the headline
	// number the SOI factorization minimizes (1 per transform vs 3 for
	// conventional distributed FFTs).
	Alltoalls int64
	// AlltoallBytes is the inter-rank payload of those collectives,
	// self-copies excluded: per SOI transform over R ranks this totals
	// 16·(1+β)·N·(R−1)/R bytes.
	AlltoallBytes int64
	// Retransmits, DeadlineEvents and ChecksumErrors surface transport
	// fault activity (TCP mesh runs; always zero in-process).
	Retransmits    int64
	DeadlineEvents int64
	ChecksumErrors int64
	// StreamChunks counts chunks shipped by the streamed (windowed)
	// all-to-all; zero when the blocking exchange ran.
	StreamChunks int64
	// HiddenExchange is exchange wire time that ran concurrently with
	// convolution or segment assembly — time the async pipeline hid.
	HiddenExchange time.Duration
	// CreditStall is time streamed sends spent blocked on a full
	// per-destination credit window (the producer outran a link).
	CreditStall time.Duration
}

// Report is a point-in-time snapshot of a plan's accumulated
// observability counters.
type Report struct {
	// Level is the instrumentation level the data was recorded at.
	Level InstrumentLevel
	// Transforms counts completed transform executions. Shared-memory
	// calls count once each; distributed runs count once per rank.
	Transforms int64
	// Stages holds per-stage data in pipeline order (see StageReport).
	Stages []StageReport
	// Comm aggregates communication activity.
	Comm CommReport
}

// Report snapshots the plan's accumulated counters. Without
// WithInstrumentation the report is zero-valued with Level
// InstrumentOff. Counters are cumulative until ResetReport.
func (p *Plan) Report() Report {
	return reportFromSnapshot(p.inner.Recorder().Snapshot())
}

// ResetReport zeroes the plan's accumulated counters, keeping the level.
func (p *Plan) ResetReport() { p.inner.Recorder().Reset() }

func reportFromSnapshot(s instrument.Snapshot) Report {
	r := Report{
		Level:      InstrumentLevel(s.Level),
		Transforms: s.Transforms,
		Stages:     make([]StageReport, 0, len(s.Stages)),
	}
	for _, st := range s.Stages {
		r.Stages = append(r.Stages, StageReport{
			Stage:        st.Stage.String(),
			Calls:        st.Calls,
			Wall:         st.Wall,
			Busy:         st.Busy,
			Workers:      int(st.Workers),
			Flops:        st.Flops,
			Occupancy:    st.Occupancy(),
			GFlopsPerSec: st.GFlopsPerSec(),
		})
	}
	r.Comm = CommReport{
		Messages:       s.Comm.Messages,
		Bytes:          s.Comm.Bytes,
		Alltoalls:      s.Comm.Alltoalls,
		AlltoallBytes:  s.Comm.AlltoallBytes,
		Retransmits:    s.Comm.Retransmits,
		DeadlineEvents: s.Comm.DeadlineEvents,
		ChecksumErrors: s.Comm.ChecksumErrors,
		StreamChunks:   s.Comm.StreamChunks,
		HiddenExchange: s.Comm.HiddenExchange,
		CreditStall:    s.Comm.CreditStall,
	}
	return r
}

// String renders the report as an aligned human-readable table (the
// format the -report flags of soibench and soinode print).
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "instrumentation: %s, transforms: %d\n", r.Level, r.Transforms)
	fmt.Fprintf(&b, "%-12s %8s %12s %10s %7s %12s %9s\n",
		"stage", "calls", "wall", "occup", "workers", "gflop", "gflop/s")
	for _, st := range r.Stages {
		if st.Calls == 0 {
			continue
		}
		occ := "-"
		if st.Occupancy > 0 {
			occ = fmt.Sprintf("%.0f%%", st.Occupancy*100)
		}
		rate := "-"
		if st.GFlopsPerSec > 0 {
			rate = fmt.Sprintf("%.2f", st.GFlopsPerSec)
		}
		fmt.Fprintf(&b, "%-12s %8d %12s %10s %7d %12.3f %9s\n",
			st.Stage, st.Calls, st.Wall.Round(time.Microsecond), occ,
			st.Workers, float64(st.Flops)/1e9, rate)
	}
	c := r.Comm
	if c.Messages+c.Alltoalls > 0 {
		fmt.Fprintf(&b, "comm: %d p2p msgs (%d B), %d all-to-all (%d B)",
			c.Messages, c.Bytes, c.Alltoalls, c.AlltoallBytes)
		if c.Retransmits+c.DeadlineEvents+c.ChecksumErrors > 0 {
			fmt.Fprintf(&b, ", faults: %d retransmit %d deadline %d checksum",
				c.Retransmits, c.DeadlineEvents, c.ChecksumErrors)
		}
		if c.StreamChunks > 0 {
			fmt.Fprintf(&b, ", stream: %d chunks, %v hidden, %v credit-stall",
				c.StreamChunks, c.HiddenExchange.Round(time.Microsecond),
				c.CreditStall.Round(time.Microsecond))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteMetrics renders the plan's counters in the Prometheus text
// exposition format (metric family prefix "soifft", counters suffixed
// _total, durations in seconds). labels, if non-nil, are attached to
// every series — pass e.g. {"plan": "n=4096"} to distinguish plans
// sharing an endpoint.
func (p *Plan) WriteMetrics(w io.Writer, labels map[string]string) error {
	instrument.WritePrometheus(w, "soifft", labels, p.inner.Recorder().Snapshot())
	return nil
}
