package window

import (
	"math"
	"testing"
)

// TestTabulatedReproducesClosedForm tabulates the (τ,σ) window's Ĥ and
// checks the interpolated H(t) against the closed form.
func TestTabulatedReproducesClosedForm(t *testing.T) {
	ref := TauSigma{Tau: 0.8, Sigma: 60}
	// The Gaussian tail of Ĥ is ~1e-17 beyond |u| ≈ 0.4+6/√60 ≈ 1.2.
	tab, err := NewTabulated("tab-tausigma", ref.HHat, 1.6, 40)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 0.13, 0.5, 1.7, 3.1415, 7.77, 12.5, 20} {
		got := tab.HTime(tt)
		want := ref.HTime(tt)
		if math.Abs(got-want) > 1e-8 {
			t.Errorf("H(%g) = %.12g, closed form %.12g", tt, got, want)
		}
		// Even symmetry.
		if g2 := tab.HTime(-tt); g2 != got {
			t.Errorf("H(-%g) = %g != H(%g) = %g", tt, g2, tt, got)
		}
	}
	// Support clipping in frequency.
	if tab.HHat(1.7) != 0 || tab.HHat(-2) != 0 {
		t.Error("HHat must vanish outside the declared support")
	}
	// Beyond the table: zero.
	if tab.HTime(1e6) != 0 {
		t.Error("HTime must vanish beyond the table")
	}
}

func TestTabulatedArgErrors(t *testing.T) {
	if _, err := NewTabulated("x", func(float64) float64 { return 1 }, -1, 10); err == nil {
		t.Error("expected support error")
	}
	if _, err := NewTabulated("x", func(float64) float64 { return 1 }, 0.5, 0); err == nil {
		t.Error("expected tMax error")
	}
}

func TestCompactBumpZeroAliasing(t *testing.T) {
	w, err := NewCompactBump(0.25, 80)
	if err != nil {
		t.Fatal(err)
	}
	m := Analyze(w, 0.25, 96)
	if m.EpsAlias != 0 {
		t.Errorf("compact support must give exactly zero aliasing, got %.3g", m.EpsAlias)
	}
	// κ is modest for the bump: Ĥ(0)/Ĥ(1/2) = e^{1/ (1-(2/3)^2)-1} ≈ 2.2.
	if m.Kappa < 1.5 || m.Kappa > 4 {
		t.Errorf("bump kappa %.3g outside expected band", m.Kappa)
	}
	// Truncation decays sub-exponentially: more taps must help.
	m48 := Analyze(w, 0.25, 48)
	if !(m.EpsTrunc < m48.EpsTrunc) {
		t.Errorf("96-tap truncation %.3g should beat 48-tap %.3g", m.EpsTrunc, m48.EpsTrunc)
	}
}

func TestCompactBumpBadBeta(t *testing.T) {
	if _, err := NewCompactBump(0, 40); err == nil {
		t.Error("expected beta error")
	}
}
