// Package window implements the window-function machinery of the SOI FFT
// framework (paper Sections 4 and 8).
//
// A reference window is a pair (Ĥ, H) of continuous Fourier-transform
// partners: Ĥ(u) lives in the frequency domain and is positive on
// [-1/2, 1/2]; H(t) is its time-domain counterpart. The SOI factorization
// dilates and translates the reference window to the problem size. Three
// quantities govern achievable accuracy (paper Section 4):
//
//   - κ (kappa): max/min of |Ĥ| on [-1/2, 1/2] — a condition number, since
//     demodulation divides by Ĥ samples;
//   - ε_alias: the mass of |Ĥ| outside (-(1/2+β), 1/2+β) relative to the
//     mass inside [-1/2, 1/2] — frequency leakage folded in by periodization;
//   - ε_trunc: the mass of |H| outside [-B/2, B/2] — the part of the
//     convolution discarded by keeping only B taps.
//
// The overall SOI error behaves like O(κ·(ε_fft + ε_alias + ε_trunc)).
package window

import (
	"fmt"
	"math"
)

// Window is a reference window function pair. Implementations must be
// usable concurrently.
type Window interface {
	// HHat evaluates the frequency-domain reference window at u.
	HHat(u float64) float64
	// HTime evaluates the time-domain reference window at t.
	HTime(t float64) float64
	// String describes the window and its parameters.
	String() string
}

// TauSigma is the paper's two-parameter reference window, Eq. (2): the
// convolution of a rectangle of width τ (a perfect bandpass filter) with
// a Gaussian exp(-σu²), normalized by 1/τ. Closed forms:
//
//	Ĥ(u) = √(π/σ)/(2τ) · [erf(√σ(u+τ/2)) − erf(√σ(u−τ/2))]
//	H(t) = sinc(τt) · √(π/σ) · exp(−(πt)²/σ),  sinc(z) = sin(πz)/(πz)
type TauSigma struct {
	Tau   float64
	Sigma float64
}

// HHat returns the frequency-domain value at u.
func (w TauSigma) HHat(u float64) float64 {
	rs := math.Sqrt(w.Sigma)
	return math.Sqrt(math.Pi/w.Sigma) / (2 * w.Tau) *
		(math.Erf(rs*(u+w.Tau/2)) - math.Erf(rs*(u-w.Tau/2)))
}

// HTime returns the time-domain value at t.
func (w TauSigma) HTime(t float64) float64 {
	return sinc(w.Tau*t) * math.Sqrt(math.Pi/w.Sigma) *
		math.Exp(-(math.Pi*t)*(math.Pi*t)/w.Sigma)
}

func (w TauSigma) String() string {
	return fmt.Sprintf("tau-sigma(τ=%.4g, σ=%.4g)", w.Tau, w.Sigma)
}

// Gaussian is the one-parameter frequency-domain Gaussian window
// Ĥ(u) = exp(−a·u²), H(t) = √(π/a)·exp(−(πt)²/a). The paper notes this
// family caps accuracy near 10 digits at β = 1/4; it is provided for the
// window-family ablation.
type Gaussian struct {
	A float64
}

// HHat returns the frequency-domain value at u.
func (w Gaussian) HHat(u float64) float64 { return math.Exp(-w.A * u * u) }

// HTime returns the time-domain value at t.
func (w Gaussian) HTime(t float64) float64 {
	return math.Sqrt(math.Pi/w.A) * math.Exp(-(math.Pi*t)*(math.Pi*t)/w.A)
}

func (w Gaussian) String() string { return fmt.Sprintf("gaussian(a=%.4g)", w.A) }

func sinc(z float64) float64 {
	if math.Abs(z) < 1e-8 {
		return 1 - (math.Pi*z)*(math.Pi*z)/6
	}
	return math.Sin(math.Pi*z) / (math.Pi * z)
}

// Metrics reports the accuracy-governing quantities of a window at a
// given oversampling β and tap count B.
type Metrics struct {
	Kappa    float64 // conditioning of demodulation
	EpsAlias float64 // relative aliasing mass
	EpsTrunc float64 // relative truncation mass
}

// EpsFFT models the ε_fft rounding term of the underlying double-precision
// FFT in the paper's error characterization κ·(ε_fft + ε_alias + ε_trunc).
const EpsFFT = 1.1e-16

// TotalError is the predicted error scale κ·(ε_fft + ε_alias + ε_trunc)
// from the paper's characterization. Including ε_fft keeps the estimate
// honest when the window terms underflow: demodulation by a badly
// conditioned window still amplifies FFT rounding error.
func (m Metrics) TotalError() float64 {
	return m.Kappa * (m.EpsAlias + m.EpsTrunc + EpsFFT)
}

// Digits converts TotalError to decimal digits of accuracy.
func (m Metrics) Digits() float64 { return -math.Log10(m.TotalError()) }

// Analyze measures κ, ε_alias and ε_trunc for a window at oversampling β
// with B convolution taps.
func Analyze(w Window, beta float64, b int) Metrics {
	var m Metrics
	m.Kappa = kappa(w)
	m.EpsAlias = epsAlias(w, beta)
	m.EpsTrunc = epsTrunc(w, b)
	return m
}

// kappa is max|Ĥ|/min|Ĥ| over [-1/2, 1/2], sampled on a fine grid.
func kappa(w Window) float64 {
	const steps = 2048
	lo, hi := math.Inf(1), 0.0
	for i := 0; i <= steps; i++ {
		u := -0.5 + float64(i)/steps
		v := math.Abs(w.HHat(u))
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if lo == 0 {
		return math.Inf(1)
	}
	return hi / lo
}

// epsAlias integrates |Ĥ| outside (−(1/2+β), 1/2+β) relative to the mass
// inside [−1/2, 1/2]. The outer integral is truncated where the window
// has decayed below 1e-22 of its peak.
func epsAlias(w Window, beta float64) float64 {
	inner := integrateAbs(w.HHat, -0.5, 0.5, 4096)
	edge := 0.5 + beta
	peak := math.Abs(w.HHat(0))
	// Find a cutoff where the tail is negligible.
	cut := edge
	for cut < edge+100 && math.Abs(w.HHat(cut)) > 1e-22*peak {
		cut += 0.25
	}
	tail := integrateAbs(w.HHat, edge, cut, 8192)
	tail += integrateAbs(w.HHat, -cut, -edge, 8192)
	if inner == 0 {
		return math.Inf(1)
	}
	return tail / inner
}

// epsTrunc integrates |H| outside [−B/2, B/2] relative to the total mass.
func epsTrunc(w Window, b int) float64 {
	half := float64(b) / 2
	total := integrateAbs(w.HTime, -half, half, 16384)
	peak := math.Abs(w.HTime(0))
	cut := half
	for cut < half+1000 && math.Abs(w.HTime(cut)) > 1e-22*peak {
		cut += 1
	}
	tail := 2 * integrateAbs(w.HTime, half, cut, 16384)
	total += tail
	if total == 0 {
		return math.Inf(1)
	}
	return tail / total
}

// integrateAbs computes ∫|f| over [a,b] by the composite Simpson rule
// with n panels (n is rounded up to even).
func integrateAbs(f func(float64) float64, a, b float64, n int) float64 {
	if b <= a {
		return 0
	}
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := math.Abs(f(a)) + math.Abs(f(b))
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * math.Abs(f(x))
		} else {
			sum += 2 * math.Abs(f(x))
		}
	}
	return sum * h / 3
}
