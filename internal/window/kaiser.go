package window

import (
	"fmt"
	"math"
)

// KaiserBessel is the Kaiser–Bessel window pair, the workhorse of the
// nonuniform-FFT literature the paper's Section 8 connects to. Here it
// is oriented with the *time* domain compactly supported:
//
//	H(t)  = I₀(b·√(1−(t/T)²)) / I₀(b)   for |t| ≤ T,   0 otherwise
//	Ĥ(u)  = (2T/I₀(b)) · sinh(√(b²−(2πTu)²)) / √(b²−(2πTu)²)
//	        (the √ turns imaginary for |u| > b/(2πT), giving sin/x decay)
//
// Because H vanishes identically beyond T, choosing T = B/2 makes the
// convolution truncation error *exactly zero* — the mirror image of the
// compact-bump window, which zeroes the aliasing instead. The tradeoff
// is a hard one: keeping κ moderate forces the shape parameter so high
// that the frequency tail only reaches ~1e-5..1e-7 at the alias edge, so
// the family tops out around 5–7 digits at β = 1/4. It is included as a
// reduced-accuracy option and a design-space illustration (it is *the*
// window of the NUFFT literature, in the mirrored orientation), not as a
// full-accuracy default.
type KaiserBessel struct {
	Shape     float64 // b: larger = faster frequency decay, worse κ
	HalfWidth float64 // T: time support half-width (set to B/2)
}

// HHat evaluates the frequency-domain closed form. All intermediates are
// scaled by e^{−b} so the sinh/I₀ ratio never overflows even for very
// large shape parameters.
func (w KaiserBessel) HHat(u float64) float64 {
	b := w.Shape
	x := 2 * math.Pi * w.HalfWidth * u
	d := b*b - x*x
	scale := 2 * w.HalfWidth / besselI0e(b) // I₀(b)·e^{−b}
	switch {
	case d > 1e-12:
		r := math.Sqrt(d)
		// sinh(r)·e^{−b} = (e^{r−b} − e^{−r−b})/2, with r ≤ b.
		se := (math.Exp(r-b) - math.Exp(-r-b)) / 2
		return scale * se / r
	case d < -1e-12:
		r := math.Sqrt(-d)
		return scale * math.Exp(-b) * math.Sin(r) / r
	default:
		return scale * math.Exp(-b)
	}
}

// HTime evaluates the compactly supported time-domain closed form,
// likewise through the scaled Bessel function.
func (w KaiserBessel) HTime(t float64) float64 {
	v := t / w.HalfWidth
	d := 1 - v*v
	if d <= 0 {
		return 0
	}
	a := w.Shape * math.Sqrt(d)
	return besselI0e(a) * math.Exp(a-w.Shape) / besselI0e(w.Shape)
}

func (w KaiserBessel) String() string {
	return fmt.Sprintf("kaiser-bessel(b=%.4g, T=%.4g)", w.Shape, w.HalfWidth)
}

// DesignKaiser picks the shape parameter for B taps at oversampling β:
// T = B/2 (zero truncation) and b chosen by scanning the predicted error
// κ·(ε_alias + ε_fft) under the κ bound.
func DesignKaiser(bTaps int, beta, kappaMax float64) DesignResult {
	halfWidth := float64(bTaps) / 2
	bestScore := math.Inf(1)
	var best KaiserBessel
	// The in-band variation is ≈ e^{b−√(b²−(πB/2)²)}; scan shapes from
	// "κ≈1" downwards to the turnover point πT.
	lo := math.Pi * halfWidth // turnover exactly at u = 1/2
	for i := 0; i <= 120; i++ {
		b := lo * (1 + float64(i)*0.05)
		w := KaiserBessel{Shape: b, HalfWidth: halfWidth}
		k := kappaProxy(w)
		if k > kappaMax {
			continue
		}
		score := k * (aliasProxy(w, beta) + EpsFFT)
		if score < bestScore {
			bestScore = score
			best = w
		}
	}
	return DesignResult{
		Window:  best,
		Metrics: Analyze(best, beta, bTaps),
		B:       bTaps,
		Beta:    beta,
	}
}

// besselI0e is the exponentially scaled modified Bessel function
// I₀(x)·e^{−x}, via the power series at small arguments and the standard
// Abramowitz–Stegun asymptotic fit beyond (|e| < 2e-7 relative, plenty
// for window design). Scaling keeps every ratio in the window formulas
// finite for arbitrarily large shape parameters.
func besselI0e(x float64) float64 {
	x = math.Abs(x)
	if x < 3.75 {
		// Power series: Σ (x²/4)^k / (k!)², converges fast here.
		t := x * x / 4
		sum, term := 1.0, 1.0
		for k := 1; k < 40; k++ {
			term *= t / float64(k*k)
			sum += term
			if term < 1e-17*sum {
				break
			}
		}
		return sum * math.Exp(-x)
	}
	inv := 3.75 / x
	p := 0.39894228 + inv*(0.01328592+inv*(0.00225319+inv*(-0.00157565+
		inv*(0.00916281+inv*(-0.02057706+inv*(0.02635537+inv*(-0.01647633+
			inv*0.00392377)))))))
	return p / math.Sqrt(x)
}
