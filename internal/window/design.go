package window

import (
	"fmt"
	"math"
	"sync"
)

// DesignResult is a window chosen for a given tap budget and oversampling.
type DesignResult struct {
	Window  Window
	Metrics Metrics
	B       int     // convolution taps the design assumes
	Beta    float64 // oversampling the design assumes
}

func (d DesignResult) String() string {
	return fmt.Sprintf("%v B=%d β=%.3g κ=%.3g ε_alias=%.3g ε_trunc=%.3g (~%.1f digits)",
		d.Window, d.B, d.Beta, d.Metrics.Kappa, d.Metrics.EpsAlias,
		d.Metrics.EpsTrunc, d.Metrics.Digits())
}

// Design searches the (τ, σ) plane for the two-parameter window that
// minimizes the predicted error κ·(ε_alias + ε_trunc) for B taps at
// oversampling β, subject to κ ≤ kappaMax. This mirrors the paper's
// procedure of obtaining a (τ, σ) pair for a given B (Section 7.2).
//
// The search uses cheap closed-form proxies to rank candidates and runs
// the accurate quadrature-based Analyze only on the winner.
func Design(b int, beta, kappaMax float64) DesignResult {
	if b < 2 {
		b = 2
	}
	if kappaMax <= 1 {
		kappaMax = 1e3
	}
	bestScore := math.Inf(1)
	var best TauSigma
	// σ is bounded above by truncation: exp(-π²(B/2)²/σ) must be tiny.
	// Scan a τ grid and a log-spaced σ grid around that scale.
	sigmaHi := float64(b*b) * 2
	for ti := 1; ti <= 60; ti++ {
		tau := float64(ti) * 0.02 // 0.02 .. 1.20
		for si := 0; si <= 80; si++ {
			sigma := math.Exp(math.Log(2) + float64(si)/80*math.Log(sigmaHi/2))
			w := TauSigma{Tau: tau, Sigma: sigma}
			k := kappaProxy(w)
			if k > kappaMax {
				continue
			}
			score := k * (aliasProxy(w, beta) + truncProxy(w, b) + EpsFFT)
			if score < bestScore {
				bestScore = score
				best = w
			}
		}
	}
	return DesignResult{
		Window:  best,
		Metrics: Analyze(best, beta, b),
		B:       b,
		Beta:    beta,
	}
}

// DesignGaussian picks the one-parameter Gaussian window balancing alias
// and truncation error for B taps at oversampling β. Used by the
// window-family ablation (paper Section 8 discussion).
func DesignGaussian(b int, beta float64) DesignResult {
	bestScore := math.Inf(1)
	var best Gaussian
	for ai := 1; ai <= 400; ai++ {
		a := float64(ai) * 0.5
		w := Gaussian{A: a}
		score := kappaProxy(w) * (aliasProxy(w, beta) + truncProxy(w, b) + EpsFFT)
		if score < bestScore {
			bestScore = score
			best = w
		}
	}
	return DesignResult{
		Window:  best,
		Metrics: Analyze(best, beta, b),
		B:       b,
		Beta:    beta,
	}
}

// kappaProxy exploits that both families peak at u=0 and decrease in |u|
// on [0, 1/2].
func kappaProxy(w Window) float64 {
	lo := math.Abs(w.HHat(0.5))
	if lo == 0 {
		return math.Inf(1)
	}
	return math.Abs(w.HHat(0)) / lo
}

// aliasProxy approximates ε_alias with coarse Simpson quadrature.
func aliasProxy(w Window, beta float64) float64 {
	inner := integrateAbs(w.HHat, -0.5, 0.5, 64)
	edge := 0.5 + beta
	tail := 2 * integrateAbs(w.HHat, edge, edge+6, 256)
	if inner == 0 {
		return math.Inf(1)
	}
	return tail / inner
}

// truncProxy approximates ε_trunc with coarse quadrature.
func truncProxy(w Window, b int) float64 {
	half := float64(b) / 2
	body := integrateAbs(w.HTime, -half, half, 512)
	tail := 2 * integrateAbs(w.HTime, half, half*3+8, 512)
	if body+tail == 0 {
		return math.Inf(1)
	}
	return tail / (body + tail)
}

// Preset identifies one rung of the paper's accuracy-performance ladder
// (Fig 7): full accuracy uses B = 72 as in Section 7.2; the reduced rungs
// shrink B, trading SNR for convolution arithmetic.
type Preset struct {
	Name     string
	B        int
	KappaMax float64
}

// Presets is the accuracy ladder used by the Fig 7 reproduction, ordered
// from full accuracy downwards.
var Presets = []Preset{
	{Name: "full~290dB", B: 72, KappaMax: 1e3},
	{Name: "~270dB", B: 56, KappaMax: 1e4},
	{Name: "~250dB", B: 44, KappaMax: 1e5},
	{Name: "~230dB", B: 34, KappaMax: 1e6},
	{Name: "~200dB", B: 26, KappaMax: 1e7},
}

var (
	presetMu    sync.Mutex
	presetCache = map[string]DesignResult{}
)

// ForPreset designs (and caches) the window for a preset at oversampling β.
func ForPreset(p Preset, beta float64) DesignResult {
	key := fmt.Sprintf("%s/%g", p.Name, beta)
	presetMu.Lock()
	defer presetMu.Unlock()
	if r, ok := presetCache[key]; ok {
		return r
	}
	r := Design(p.B, beta, p.KappaMax)
	presetCache[key] = r
	return r
}
