package window

import (
	"math"
	"strings"
	"testing"
)

func TestDesignResultString(t *testing.T) {
	d := Design(48, 0.25, 1e3)
	s := d.String()
	for _, frag := range []string{"tau-sigma", "B=48", "κ=", "digits"} {
		if !strings.Contains(s, frag) {
			t.Errorf("DesignResult string missing %q: %s", frag, s)
		}
	}
}

func TestDesignRespectsKappaBound(t *testing.T) {
	for _, kmax := range []float64{10, 100, 1e3, 1e5} {
		d := Design(48, 0.25, kmax)
		// The accurate Analyze κ may exceed the proxy slightly; allow 2x.
		if d.Metrics.Kappa > kmax*2 {
			t.Errorf("kmax=%g: designed kappa %.3g way over bound", kmax, d.Metrics.Kappa)
		}
	}
}

func TestDesignDegenerateArgs(t *testing.T) {
	// B below the floor and nonsensical kappaMax must still return a
	// usable window rather than panicking.
	d := Design(1, 0.25, 0.5)
	if d.Window == nil {
		t.Fatal("degenerate design returned nil window")
	}
	if d.B != 2 {
		t.Errorf("B clamped to %d, want 2", d.B)
	}
}

func TestTighterKappaCostsAccuracy(t *testing.T) {
	// At fixed B, loosening the kappa bound can only help (or tie) the
	// achievable error.
	tight := Design(40, 0.25, 10)
	loose := Design(40, 0.25, 1e6)
	if loose.Metrics.TotalError() > tight.Metrics.TotalError()*1.01 {
		t.Errorf("loose kappa error %.3g worse than tight %.3g",
			loose.Metrics.TotalError(), tight.Metrics.TotalError())
	}
}

func TestLargerBetaNeedsFewerTaps(t *testing.T) {
	// For a fixed ~12-digit target, the needed B falls as beta rises.
	taps := func(beta float64) int {
		for b := 8; b <= 120; b += 4 {
			if Design(b, beta, 1e3).Metrics.Digits() >= 12 {
				return b
			}
		}
		return 121
	}
	b14, b12 := taps(0.25), taps(1.0)
	if b12 >= b14 {
		t.Errorf("beta=1 needs %d taps, beta=1/4 needs %d; expected fewer at larger beta", b12, b14)
	}
}

func TestGaussianDesignerSane(t *testing.T) {
	d := DesignGaussian(48, 0.25)
	g, ok := d.Window.(Gaussian)
	if !ok {
		t.Fatalf("DesignGaussian returned %T", d.Window)
	}
	if g.A <= 0 {
		t.Errorf("gaussian parameter %g", g.A)
	}
	if math.IsInf(d.Metrics.TotalError(), 0) || d.Metrics.TotalError() <= 0 {
		t.Errorf("total error %g", d.Metrics.TotalError())
	}
}

func TestAllPresetsProduceValidWindows(t *testing.T) {
	for _, pr := range Presets {
		d := ForPreset(pr, 0.25)
		if d.Window == nil {
			t.Fatalf("preset %s: nil window", pr.Name)
		}
		m := d.Metrics
		if m.Kappa < 1 || math.IsNaN(m.Kappa) {
			t.Errorf("preset %s: kappa %g", pr.Name, m.Kappa)
		}
		if m.Digits() < 5 {
			t.Errorf("preset %s: only %.1f digits", pr.Name, m.Digits())
		}
	}
}
