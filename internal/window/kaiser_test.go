package window

import (
	"math"
	"testing"
)

func TestBesselI0e(t *testing.T) {
	// Reference values of I0(x) from tables, scaled.
	cases := map[float64]float64{
		0:    1,
		0.5:  1.0634833707413236,
		1:    1.2660658777520082,
		2:    2.2795853023360673,
		3.74: 9.041496849012773,
		3.76: 9.19709930521449,
		5:    27.239871823604442,
		10:   2815.716628466254,
	}
	for x, i0 := range cases {
		want := i0 * math.Exp(-x)
		got := besselI0e(x)
		if math.Abs(got-want) > 2e-6*want {
			t.Errorf("I0e(%g) = %.10g, want %.10g", x, got, want)
		}
	}
	// Large arguments must stay finite and positive.
	for _, x := range []float64{100, 500, 2000} {
		if v := besselI0e(x); !(v > 0) || math.IsInf(v, 0) {
			t.Errorf("I0e(%g) = %g", x, v)
		}
	}
}

// TestKaiserFourierPair checks that HHat really is the Fourier transform
// of the compactly supported HTime, by direct quadrature.
func TestKaiserFourierPair(t *testing.T) {
	w := KaiserBessel{Shape: 30, HalfWidth: 8}
	for _, u := range []float64{0, 0.05, 0.2, 0.5, 0.9} {
		// ∫_{-T}^{T} H(t) cos(2πut) dt (imag part vanishes by symmetry).
		const n = 20000
		h := 2 * w.HalfWidth / n
		sum := 0.0
		for i := 0; i <= n; i++ {
			tt := -w.HalfWidth + float64(i)*h
			wgt := 1.0
			if i == 0 || i == n {
				wgt = 0.5
			}
			sum += wgt * w.HTime(tt) * math.Cos(2*math.Pi*u*tt)
		}
		got := sum * h
		want := w.HHat(u)
		// Absolute tolerance relative to the peak: deep-tail values sit
		// at the quadrature's own noise floor.
		if math.Abs(got-want) > 1e-5*w.HHat(0) {
			t.Errorf("HHat(%g) = %.10g, quadrature %.10g", u, want, got)
		}
	}
}

func TestKaiserZeroTruncation(t *testing.T) {
	d := DesignKaiser(48, 0.25, 1e3)
	if d.Metrics.EpsTrunc != 0 {
		t.Errorf("Kaiser with T=B/2 must have zero truncation, got %.3g", d.Metrics.EpsTrunc)
	}
	if d.Metrics.Kappa > 1e3 {
		t.Errorf("designer violated kappa bound: %.3g", d.Metrics.Kappa)
	}
	// The family delivers a usable reduced-accuracy window; the κ-alias
	// tension caps it near 5 digits at β=1/4 (see the type comment).
	if d.Metrics.Digits() < 4 {
		t.Errorf("Kaiser design only %.1f digits", d.Metrics.Digits())
	}
	// Relaxing κ buys accuracy, demonstrating the tension.
	loose := DesignKaiser(48, 0.25, 1e6)
	if loose.Metrics.Digits() <= d.Metrics.Digits() {
		t.Errorf("looser kappa should improve digits: %.1f vs %.1f",
			loose.Metrics.Digits(), d.Metrics.Digits())
	}
}

func TestKaiserSupportEdges(t *testing.T) {
	w := KaiserBessel{Shape: 20, HalfWidth: 10}
	if w.HTime(10.0001) != 0 || w.HTime(-11) != 0 {
		t.Error("HTime must vanish outside [-T, T]")
	}
	if w.HTime(0) != 1 {
		t.Errorf("HTime(0) = %g, want 1 (normalized)", w.HTime(0))
	}
	// Continuity across the sinh/sin turnover u* = b/(2πT).
	us := 20 / (2 * math.Pi * 10)
	a := w.HHat(us - 1e-9)
	b := w.HHat(us + 1e-9)
	if math.Abs(a-b) > 1e-6*math.Abs(a) {
		t.Errorf("HHat discontinuous at turnover: %g vs %g", a, b)
	}
}
