package window

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTauSigmaClosedFormMatchesQuadrature(t *testing.T) {
	// Ĥ must equal (1/τ)∫ exp(-σ(u-t)²) dt over [-τ/2, τ/2].
	w := TauSigma{Tau: 0.8, Sigma: 120}
	for _, u := range []float64{0, 0.1, -0.3, 0.5, 0.75, 1.0} {
		got := w.HHat(u)
		want := integrateAbs(func(tt float64) float64 {
			return math.Exp(-w.Sigma * (u - tt) * (u - tt))
		}, -w.Tau/2, w.Tau/2, 4096) / w.Tau
		if math.Abs(got-want) > 1e-10*math.Max(1, math.Abs(want)) {
			t.Errorf("HHat(%g) = %g, quadrature %g", u, got, want)
		}
	}
}

// TestFourierPairConsistency verifies that H(t) really is the inverse
// Fourier transform of Ĥ(u): H(t) ≈ ∫ Ĥ(u) exp(i2πut) du (real part;
// the imaginary part vanishes by symmetry).
func TestFourierPairConsistency(t *testing.T) {
	for _, w := range []Window{
		TauSigma{Tau: 0.7, Sigma: 60},
		TauSigma{Tau: 1.0, Sigma: 200},
		Gaussian{A: 40},
	} {
		for _, tt := range []float64{0, 0.3, 1.5, 4.0} {
			// Numeric inverse transform on a wide grid.
			const lim, n = 8.0, 20000
			h := 2 * lim / n
			sum := 0.0
			for i := 0; i <= n; i++ {
				u := -lim + float64(i)*h
				wgt := 1.0
				if i == 0 || i == n {
					wgt = 0.5
				}
				sum += wgt * w.HHat(u) * math.Cos(2*math.Pi*u*tt)
			}
			got := sum * h
			want := w.HTime(tt)
			if math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
				t.Errorf("%v: H(%g) = %g, numeric inverse FT %g", w, tt, want, got)
			}
		}
	}
}

func TestSincNearZero(t *testing.T) {
	if got := sinc(0); got != 1 {
		t.Errorf("sinc(0) = %g", got)
	}
	// Continuity across the series/ratio switchover.
	a, b := sinc(1e-8*0.999), sinc(1e-8*1.001)
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("sinc discontinuous near 0: %g vs %g", a, b)
	}
}

func TestAnalyzeFullAccuracyWindow(t *testing.T) {
	d := Design(72, 0.25, 1e3)
	m := d.Metrics
	if m.Kappa > 1e3 || m.Kappa < 1 {
		t.Errorf("kappa = %g, want in [1, 1e3]", m.Kappa)
	}
	// Paper: full accuracy reaches ~14.5 digits; require at least 13 from
	// the window itself.
	if m.Digits() < 13 {
		t.Errorf("full-accuracy design only reaches %.2f digits (%v)", m.Digits(), d)
	}
}

func TestDesignMonotoneInB(t *testing.T) {
	// More taps must never predict (much) worse accuracy.
	prev := math.Inf(1)
	for _, b := range []int{16, 24, 34, 44, 56, 72} {
		d := Design(b, 0.25, 1e6)
		e := d.Metrics.TotalError()
		if e > prev*10 {
			t.Errorf("B=%d total error %.3g much worse than smaller B (%.3g)", b, e, prev)
		}
		if e < prev {
			prev = e
		}
	}
}

func TestGaussianCapAtQuarterOversampling(t *testing.T) {
	// Paper Section 8: a pure Gaussian is limited to ~10 digits at β=1/4,
	// regardless of B. Verify the designer cannot beat ~11 digits.
	d := DesignGaussian(100, 0.25)
	if d.Metrics.Digits() > 12 {
		t.Errorf("gaussian window reached %.1f digits at β=1/4; paper says ~10 max", d.Metrics.Digits())
	}
	// And the tau-sigma family must beat it decisively at the same B.
	ts := Design(72, 0.25, 1e3)
	if ts.Metrics.Digits() < d.Metrics.Digits()+2 {
		t.Errorf("tau-sigma (%.1f digits) should beat gaussian (%.1f digits)",
			ts.Metrics.Digits(), d.Metrics.Digits())
	}
}

func TestGaussianFullAccuracyNeedsMoreOversampling(t *testing.T) {
	// Paper: β = 1 recovers full accuracy for the Gaussian family.
	d := DesignGaussian(72, 1.0)
	if d.Metrics.Digits() < 13 {
		t.Errorf("gaussian at β=1 reaches only %.1f digits; paper says full accuracy", d.Metrics.Digits())
	}
}

func TestPresetLadderIsOrdered(t *testing.T) {
	prevDigits := math.Inf(1)
	for _, p := range Presets {
		d := ForPreset(p, 0.25)
		dig := d.Metrics.Digits()
		if dig > prevDigits+0.5 {
			t.Errorf("preset %s (%.1f digits) out of order vs previous (%.1f)", p.Name, dig, prevDigits)
		}
		prevDigits = dig
	}
}

func TestForPresetCaches(t *testing.T) {
	a := ForPreset(Presets[0], 0.25)
	b := ForPreset(Presets[0], 0.25)
	if a.Window != b.Window {
		t.Error("ForPreset did not cache")
	}
}

func TestMetricsAccessors(t *testing.T) {
	m := Metrics{Kappa: 10, EpsAlias: 1e-16, EpsTrunc: 3e-16}
	want := 10 * (1e-16 + 3e-16 + EpsFFT)
	if got := m.TotalError(); math.Abs(got-want) > 1e-20 {
		t.Errorf("TotalError = %g, want %g", got, want)
	}
	if d := m.Digits(); math.Abs(d-(-math.Log10(want))) > 1e-12 {
		t.Errorf("Digits = %g", d)
	}
}

func TestIntegrateAbsBasics(t *testing.T) {
	// ∫_0^1 x dx = 1/2
	got := integrateAbs(func(x float64) float64 { return x }, 0, 1, 100)
	if math.Abs(got-0.5) > 1e-12 {
		t.Errorf("integrate x over [0,1] = %g", got)
	}
	// Degenerate interval.
	if v := integrateAbs(math.Sin, 2, 2, 10); v != 0 {
		t.Errorf("empty interval integral = %g", v)
	}
	// Odd panel count is rounded up, not broken.
	a := integrateAbs(math.Cos, 0, 1, 101)
	b := integrateAbs(math.Cos, 0, 1, 102)
	if math.Abs(a-b) > 1e-9 {
		t.Errorf("odd/even panel mismatch: %g vs %g", a, b)
	}
}

func TestPropKappaAtLeastOne(t *testing.T) {
	f := func(ti, si uint8) bool {
		w := TauSigma{Tau: 0.05 + float64(ti%120)*0.01, Sigma: 2 + float64(si)*10}
		k := kappa(w)
		return k >= 1 || math.IsInf(k, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropMoreTapsLessTruncation(t *testing.T) {
	f := func(seed uint8) bool {
		w := TauSigma{Tau: 0.5 + float64(seed%40)*0.01, Sigma: 50 + float64(seed)*3}
		return epsTrunc(w, 48) <= epsTrunc(w, 24)*1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
