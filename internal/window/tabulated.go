package window

import (
	"fmt"
	"math"

	"soifft/internal/fft"
)

// Tabulated adapts an arbitrary frequency-domain window Ĥ — one with no
// closed-form time-domain partner — into a full Window: H(t) is obtained
// once by an FFT-based evaluation of the inverse Fourier integral on a
// fine grid and then interpolated cubically. This is what makes the
// compactly supported windows of paper Section 8 (ref. Bruno et al.)
// usable inside the SOI machinery, and it lets users plug in their own
// window designs.
type Tabulated struct {
	name    string
	hhat    func(float64) float64
	support float64   // Ĥ is (treated as) zero for |u| > support
	dt      float64   // time-grid spacing
	h       []float64 // H(k·dt), k = 0..len-1; H is even by symmetry

	// bumpBeta/bumpTMax record NewCompactBump's inputs so the window can
	// be serialized and rebuilt deterministically (zero when the window
	// came from a custom Ĥ).
	bumpBeta, bumpTMax float64
}

// tabulation parameters: uSamples controls quadrature accuracy (the
// integrand is smooth, so a few hundred points reach rounding error for
// compactly supported Ĥ); timeRes is samples per unit t for the cubic
// interpolation.
const (
	uSamples = 2048
	timeRes  = 256
)

// NewTabulated builds the time-domain table for a frequency-domain
// window. hhat must be even (real symmetric H) and negligible outside
// [−support, support]; tMax bounds the |t| range the table must cover
// (use at least B/2 + 2 for a B-tap convolution).
func NewTabulated(name string, hhat func(float64) float64, support, tMax float64) (*Tabulated, error) {
	if support <= 0 || tMax <= 0 {
		return nil, fmt.Errorf("window: support and tMax must be positive")
	}
	du := 2 * support / uSamples
	dt := 1.0 / timeRes
	// FFT length: grid covers t ∈ [0, 1/(du·1)) at spacing 1/(L·du); we
	// need spacing dt, so L = 1/(dt·du), rounded up to a power of two.
	l := 1
	for float64(l) < 1/(dt*du) {
		l <<= 1
	}
	dt = 1 / (float64(l) * du) // exact spacing for the chosen length
	if float64(l)*dt <= tMax+2 {
		return nil, fmt.Errorf("window: tMax %.1f exceeds tabulation range %.1f", tMax, float64(l)*dt)
	}
	plan, err := fft.NewPlan(l)
	if err != nil {
		return nil, err
	}
	// H(t_k) = du · Re[ e^{-i2π·support·t_k} · Σ_j Ĥ(u_j) e^{+i2πjk/L} ]
	// with u_j = −support + j·du. The positive-exponent sum is
	// conj(F(a))_k for real a.
	a := make([]complex128, l)
	for j := 0; j < uSamples; j++ {
		u := -support + float64(j)*du
		a[j] = complex(hhat(u), 0)
	}
	fa := make([]complex128, l)
	plan.Forward(fa, a)
	keep := int(tMax/dt) + 8
	if keep > l {
		keep = l
	}
	h := make([]float64, keep)
	for k := 0; k < keep; k++ {
		t := float64(k) * dt
		ang := -2 * math.Pi * support * t
		c, s := math.Cos(ang), math.Sin(ang)
		// conj(fa[k]) = (re, -im); multiply by e^{i·ang} and keep Re.
		h[k] = du * (real(fa[k])*c + imag(fa[k])*s)
	}
	return &Tabulated{name: name, hhat: hhat, support: support, dt: dt, h: h}, nil
}

// HHat evaluates the frequency-domain window (zero outside the support).
func (w *Tabulated) HHat(u float64) float64 {
	if u < -w.support || u > w.support {
		return 0
	}
	return w.hhat(u)
}

// HTime evaluates the tabulated time-domain window with Catmull-Rom
// cubic interpolation; beyond the table it returns 0.
func (w *Tabulated) HTime(t float64) float64 {
	t = math.Abs(t)
	x := t / w.dt
	i := int(x)
	if i+2 >= len(w.h) {
		return 0
	}
	f := x - float64(i)
	var p0 float64
	if i == 0 {
		p0 = w.h[1] // even symmetry: H(-dt) = H(dt)
	} else {
		p0 = w.h[i-1]
	}
	p1, p2, p3 := w.h[i], w.h[i+1], w.h[i+2]
	return p1 + 0.5*f*(p2-p0+f*(2*p0-5*p1+4*p2-p3+f*(3*(p1-p2)+p3-p0)))
}

func (w *Tabulated) String() string { return w.name }

// NewCompactBump builds the C∞ compactly supported "bump" window
//
//	Ĥ(u) = exp(1 − 1/(1 − (u/S)²)),  |u| < S;  0 otherwise,
//
// with support S = 1/2 + β chosen so that the dilated problem window
// ŵ(u) = Ĥ((u−M/2)/M) vanishes identically outside (−βM, (1+β)M). The
// aliasing error of the SOI factorization is then exactly zero (paper
// Section 8: such windows make the factorization theoretically exact);
// the price is a sub-exponentially decaying H, i.e. more taps for the
// same truncation error. tMax must cover B/2 for the intended tap count.
func NewCompactBump(beta float64, tMax float64) (*Tabulated, error) {
	if beta <= 0 {
		return nil, fmt.Errorf("window: beta must be positive")
	}
	s := 0.5 + beta
	bump := func(u float64) float64 {
		v := u / s
		d := 1 - v*v
		if d <= 1e-12 {
			return 0
		}
		return math.Exp(1 - 1/d)
	}
	w, err := NewTabulated(fmt.Sprintf("compact-bump(S=%.3g)", s), bump, s, tMax)
	if err != nil {
		return nil, err
	}
	w.bumpBeta, w.bumpTMax = beta, tMax
	return w, nil
}

// BumpParams returns the (β, tMax) NewCompactBump was built with; ok is
// false for tabulated windows of other origins.
func (w *Tabulated) BumpParams() (beta, tMax float64, ok bool) {
	return w.bumpBeta, w.bumpTMax, w.bumpBeta > 0
}
