package telemetry

import (
	"fmt"
	"sort"
	"time"

	"soifft/internal/instrument"
	"soifft/internal/perfmodel"
)

// Explainer thresholds. A measurement is a finding once it exceeds the
// model (or fleet-calibrated) expectation by RatioThreshold; volume
// checks use the tighter VolumeRatioThreshold because byte counts are
// analytic, not noisy.
const (
	// RatioThreshold is the measured-vs-expected ratio above which a
	// stage or link time becomes a finding.
	RatioThreshold = 1.5
	// VolumeRatioThreshold is the measured-vs-analytic wire volume ratio
	// above which the run is off-model.
	VolumeRatioThreshold = 1.25
	// LowOverlapThreshold flags a streamed run hiding less than this
	// fraction of its exchange behind compute.
	LowOverlapThreshold = 1.0 / 3
	// minStageNs suppresses stage findings below this absolute wall time
	// (scheduler noise dominates sub-100µs stages).
	minStageNs = int64(100 * time.Microsecond)
)

// Finding kinds, most severe first in the usual ranking.
const (
	KindStaleRank      = "stale-rank"
	KindSlowLink       = "slow-link"
	KindSlowStage      = "slow-stage"
	KindOffModelVolume = "off-model-volume"
	KindLowOverlap     = "low-overlap"
	KindRecovery       = "recovery-traffic"
)

// Finding is one ranked explainer verdict: a measurement that deviates
// from what internal/perfmodel (byte volumes) or the fleet median
// (times, which need no calibration constants) predicts for the run's
// actual (N, R, β, B).
type Finding struct {
	Kind string `json:"kind"`
	Rank int    `json:"rank"`
	// Peer is the destination rank for link findings (-1 otherwise).
	Peer  int    `json:"peer"`
	Stage string `json:"stage,omitempty"`
	// Measured and Expected are in the finding's native unit
	// (nanoseconds for times, bytes for volumes, a fraction for
	// overlap); Ratio is measured/expected.
	Measured float64 `json:"measured"`
	Expected float64 `json:"expected"`
	Ratio    float64 `json:"ratio"`
	// Severity orders findings across kinds (higher = report first).
	Severity float64 `json:"severity"`
	Detail   string  `json:"detail"`
}

func (f Finding) String() string {
	return fmt.Sprintf("[%s] %s", f.Kind, f.Detail)
}

// Explain runs the model comparison over a snapshot, stores the ranked
// findings on it, and returns them. Thresholds: times are findings at
// RatioThreshold over the fleet median (the calibration-free analogue of
// perfmodel's measured constants), wire volumes at VolumeRatioThreshold
// over the analytic 16·(1+β)·N terms.
func Explain(s *ClusterSnapshot) []Finding {
	if s == nil {
		return nil
	}
	var out []Finding
	out = append(out, staleFindings(s)...)
	out = append(out, linkFindings(s)...)
	out = append(out, stageFindings(s)...)
	out = append(out, volumeFindings(s)...)
	out = append(out, overlapFindings(s)...)
	out = append(out, recoveryFindings(s)...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Severity > out[j].Severity })
	s.Findings = out
	return out
}

func staleFindings(s *ClusterSnapshot) []Finding {
	var out []Finding
	for _, r := range s.Ranks {
		switch {
		case r.Stale:
			out = append(out, Finding{
				Kind: KindStaleRank, Rank: r.Rank, Peer: -1, Severity: 1000,
				Detail: fmt.Sprintf("rank %d stale: %s (counters frozen at seq %d)",
					r.Rank, r.StaleReason, r.Seq),
			})
		case !r.Reported:
			out = append(out, Finding{
				Kind: KindStaleRank, Rank: r.Rank, Peer: -1, Severity: 900,
				Detail: fmt.Sprintf("rank %d never reported a stat frame", r.Rank),
			})
		}
	}
	return out
}

// linkFindings prices every directed link against the fleet-median link
// bandwidth: the expected service time of the bytes it actually moved.
// A throttled or congested link shows up as ratio = medianBW/linkBW.
func linkFindings(s *ClusterSnapshot) []Finding {
	medianBW := s.Fleet.LinkBandwidthP50Bps
	if medianBW <= 0 {
		return nil
	}
	var out []Finding
	for _, r := range s.Ranks {
		for _, l := range r.Links {
			if l.BytesSent <= 0 || l.FlushNs <= 0 {
				continue
			}
			expectedNs := float64(l.BytesSent) * 1e9 / medianBW
			if expectedNs <= 0 {
				continue
			}
			ratio := float64(l.FlushNs) / expectedNs
			if ratio < RatioThreshold {
				continue
			}
			bw := l.BandwidthBps()
			detail := fmt.Sprintf("link %d→%d moved %d B in %v (%.1f MB/s) — %.1fx the fleet-median link time (median %.1f MB/s)",
				r.Rank, l.Peer, l.BytesSent, time.Duration(l.FlushNs).Round(time.Microsecond),
				bw/1e6, ratio, medianBW/1e6)
			if l.CreditStallNs > 0 {
				detail += fmt.Sprintf("; credit-stall %v on this link",
					time.Duration(l.CreditStallNs).Round(time.Microsecond))
			}
			out = append(out, Finding{
				Kind: KindSlowLink, Rank: r.Rank, Peer: l.Peer,
				Measured: float64(l.FlushNs), Expected: expectedNs, Ratio: ratio,
				Severity: 10 * ratio, Detail: detail,
			})
		}
	}
	return out
}

// stageFindings compares every rank's stage wall time against the fleet
// median of the same stage. For the exchange stage the excess is
// attributed: how much of it is credit-stall, and on which link.
func stageFindings(s *ClusterSnapshot) []Finding {
	var out []Finding
	for _, sp := range s.Fleet.Stages {
		if sp.P50Ns <= 0 {
			continue
		}
		for _, r := range s.Ranks {
			if !r.Reported {
				continue
			}
			ns := r.StageNs[sp.Stage]
			if ns < minStageNs {
				continue
			}
			ratio := float64(ns) / float64(sp.P50Ns)
			if ratio < RatioThreshold {
				continue
			}
			detail := fmt.Sprintf("rank %d %s %v is %.1fx the fleet median %v",
				r.Rank, sp.Stage, time.Duration(ns).Round(time.Microsecond), ratio,
				time.Duration(sp.P50Ns).Round(time.Microsecond))
			if sp.Stage == instrument.StageExchange.String() {
				if excess := ns - sp.P50Ns; excess > 0 && r.Comm.CreditStallNs > 0 {
					share := float64(r.Comm.CreditStallNs) / float64(excess)
					if share > 1 {
						share = 1
					}
					worst, worstNs := -1, int64(0)
					for _, l := range r.Links {
						if l.CreditStallNs > worstNs {
							worstNs, worst = l.CreditStallNs, l.Peer
						}
					}
					if worst >= 0 {
						detail += fmt.Sprintf(" — %.0f%% of the excess is credit-stall, worst on link %d→%d (%v)",
							share*100, r.Rank, worst, time.Duration(worstNs).Round(time.Microsecond))
					} else {
						detail += fmt.Sprintf(" — %.0f%% of the excess is credit-stall", share*100)
					}
				}
			}
			out = append(out, Finding{
				Kind: KindSlowStage, Rank: r.Rank, Peer: -1, Stage: sp.Stage,
				Measured: float64(ns), Expected: float64(sp.P50Ns), Ratio: ratio,
				Severity: 5 * ratio, Detail: detail,
			})
		}
	}
	return out
}

// volumeFindings checks measured exchange bytes against the analytic
// per-rank volume perfmodel derives from (N, R, β) — including the coded
// exchange's parity overhead when parity is armed. Byte counts are
// deterministic, so the tighter VolumeRatioThreshold applies.
func volumeFindings(s *ClusterSnapshot) []Finding {
	sh := s.Shape
	if sh.N <= 0 || s.World <= 1 {
		return nil
	}
	var out []Finding
	for _, r := range s.Ranks {
		if !r.Reported || r.Transforms <= 0 {
			continue
		}
		expected := perfmodel.ExpectedExchangeBytes(sh.N, s.World, sh.Beta)
		if sh.Parity > 0 {
			expected += perfmodel.ExpectedParityBytes(sh.N, s.World, sh.Parity, sh.Beta)
		}
		expected *= r.Transforms
		if expected <= 0 {
			continue
		}
		measured := r.Comm.AlltoallBytes + r.Comm.ParityBytes
		ratio := float64(measured) / float64(expected)
		if ratio < VolumeRatioThreshold {
			continue
		}
		out = append(out, Finding{
			Kind: KindOffModelVolume, Rank: r.Rank, Peer: -1,
			Measured: float64(measured), Expected: float64(expected), Ratio: ratio,
			Severity: 3 * ratio,
			Detail: fmt.Sprintf("rank %d shipped %d exchange bytes over %d transform(s); the model for (N=%d, R=%d, beta=%.2f%s) expects %d — %.2fx",
				r.Rank, measured, r.Transforms, sh.N, s.World, sh.Beta, parityNote(sh.Parity), expected, ratio),
		})
	}
	return out
}

func parityNote(m int) string {
	if m > 0 {
		return fmt.Sprintf(", m=%d", m)
	}
	return ""
}

// overlapFindings flags streamed runs that hide little of the exchange —
// the signal the ROADMAP's adaptive-window item consumes.
func overlapFindings(s *ClusterSnapshot) []Finding {
	if s.Shape.Window <= 0 {
		return nil
	}
	var out []Finding
	for _, r := range s.Ranks {
		if !r.Reported {
			continue
		}
		total := r.Comm.HiddenNs + r.StageNs[instrument.StageExchange.String()]
		if total < minStageNs {
			continue
		}
		if r.OverlapRatio >= LowOverlapThreshold {
			continue
		}
		out = append(out, Finding{
			Kind: KindLowOverlap, Rank: r.Rank, Peer: -1,
			Measured: r.OverlapRatio, Expected: LowOverlapThreshold,
			Ratio:    safeDiv(LowOverlapThreshold, r.OverlapRatio),
			Severity: 2,
			Detail: fmt.Sprintf("rank %d hides only %.0f%% of its exchange behind compute at window %d (credit-stall %v) — consider a larger window",
				r.Rank, r.OverlapRatio*100, s.Shape.Window,
				time.Duration(r.Comm.CreditStallNs).Round(time.Microsecond)),
		})
	}
	return out
}

// recoveryFindings surfaces coded-exchange repair activity — Jeong et
// al.'s point that recovery traffic must be accounted separately from
// the data exchange.
func recoveryFindings(s *ClusterSnapshot) []Finding {
	var out []Finding
	for _, r := range s.Ranks {
		if !r.Reported || r.Comm.Reconstructions == 0 {
			continue
		}
		out = append(out, Finding{
			Kind: KindRecovery, Rank: r.Rank, Peer: -1,
			Measured: float64(r.Comm.RecoveryBytes),
			Severity: 1,
			Detail: fmt.Sprintf("rank %d rebuilt %d codeword(s) from parity: %d parity B on the wire, %d recovery B of repair traffic, %d degraded transform(s)",
				r.Rank, r.Comm.Reconstructions, r.Comm.ParityBytes, r.Comm.RecoveryBytes, r.Comm.Degraded),
		})
	}
	return out
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
