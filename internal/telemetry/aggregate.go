package telemetry

import (
	"sort"
	"sync"
	"time"

	"soifft/internal/instrument"
)

// RankStat is one rank's row of the cluster snapshot.
type RankStat struct {
	Rank int `json:"rank"`
	// Reported is false while no frame from the rank has arrived yet.
	Reported bool `json:"reported"`
	// Final is set once the rank shipped its end-of-run frame.
	Final bool `json:"final,omitempty"`
	// Stale marks a rank whose stream ended abnormally (link death,
	// decode failure, missed final) — its counters are the last good
	// frame, frozen.
	Stale       bool   `json:"stale,omitempty"`
	StaleReason string `json:"stale_reason,omitempty"`
	Seq         uint64 `json:"seq"`

	Transforms   int64            `json:"transforms"`
	StageNs      map[string]int64 `json:"stage_ns"`
	Comm         CommStats        `json:"comm"`
	OverlapRatio float64          `json:"overlap_ratio"`
	Links        []LinkStat       `json:"links,omitempty"`
}

// StagePercentiles is the fleet distribution of one stage's wall time.
type StagePercentiles struct {
	Stage string `json:"stage"`
	P50Ns int64  `json:"p50_ns"`
	P90Ns int64  `json:"p90_ns"`
	MaxNs int64  `json:"max_ns"`
	// MaxRank is the straggler: the rank holding MaxNs.
	MaxRank int `json:"max_rank"`
}

// FleetStats summarizes the cluster-wide distributions.
type FleetStats struct {
	Stages []StagePercentiles `json:"stages"`
	// LinkBandwidthP50Bps is the median effective flush bandwidth over
	// links that carried traffic — the calibration the explainer prices
	// expected wire times with.
	LinkBandwidthP50Bps float64 `json:"link_bandwidth_p50_bps"`
	// OverlapRatioP50 is the median exchange-hiding fraction.
	OverlapRatioP50 float64 `json:"overlap_ratio_p50"`
}

// ClusterSnapshot is rank 0's aggregate view of one distributed run:
// the per-rank × per-stage matrix, the per-link wire table, fleet
// percentiles, and (once Explain ran) the ranked findings. It is the
// JSON document /debug/cluster serves and -cluster-json writes.
type ClusterSnapshot struct {
	Schema string `json:"schema"`
	// TakenUnixNs stamps the aggregation moment.
	TakenUnixNs int64      `json:"taken_unix_ns"`
	World       int        `json:"world"`
	Shape       Shape      `json:"shape"`
	Ranks       []RankStat `json:"ranks"`
	Fleet       FleetStats `json:"fleet"`
	Findings    []Finding  `json:"findings"`
}

// SnapshotSchema identifies the ClusterSnapshot JSON document version.
const SnapshotSchema = "soifft-cluster/v1"

// rankState is the aggregator's per-rank record.
type rankState struct {
	frame       *StatFrame
	final       bool
	stale       bool
	staleReason string
}

// Aggregator folds stat frames into the live cluster view. All methods
// are safe for concurrent use (the root's per-peer drain goroutines and
// snapshot readers share it).
type Aggregator struct {
	mu    sync.Mutex
	world int
	shape Shape
	seen  bool
	ranks []rankState
}

// NewAggregator sizes the aggregate for a world of R ranks.
func NewAggregator(world int) *Aggregator {
	if world < 1 {
		world = 1
	}
	return &Aggregator{world: world, ranks: make([]rankState, world)}
}

// Observe folds one frame in; frames with stale sequence numbers (at or
// below the newest already seen for the rank) are dropped, so loss and
// reordering cannot roll counters backwards.
func (a *Aggregator) Observe(f *StatFrame) {
	if f == nil || f.Rank < 0 || f.Rank >= a.world {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := &a.ranks[f.Rank]
	if st.frame != nil && f.Seq <= st.frame.Seq {
		return
	}
	st.frame = f
	if f.Final {
		st.final = true
	}
	if !a.seen {
		a.shape = f.Shape
		a.seen = true
	}
}

// MarkStale freezes a rank at its last good frame: its stream ended
// abnormally (link death, decode failure, missed final frame). The
// snapshot reports the rank stale instead of the aggregation hanging on
// it. A rank that later turns out to be fine (a final frame arrives) is
// un-staled by Observe only in sequence order, so MarkStale after the
// final frame is a no-op in practice.
func (a *Aggregator) MarkStale(rank int, reason string) {
	if rank < 0 || rank >= a.world {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	st := &a.ranks[rank]
	if st.final {
		return // the rank completed; a post-final link teardown is normal
	}
	if !st.stale {
		st.stale = true
		st.staleReason = reason
	}
}

// Snapshot assembles the current cluster view. Ranks that never
// reported appear with Reported=false; stale ranks keep their frozen
// counters and carry the stale reason.
func (a *Aggregator) Snapshot() *ClusterSnapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	s := &ClusterSnapshot{
		Schema:      SnapshotSchema,
		TakenUnixNs: time.Now().UnixNano(),
		World:       a.world,
		Shape:       a.shape,
		Ranks:       make([]RankStat, a.world),
	}
	for r := range a.ranks {
		st := &a.ranks[r]
		rs := RankStat{Rank: r, Stale: st.stale, StaleReason: st.staleReason}
		if f := st.frame; f != nil {
			rs.Reported = true
			rs.Final = st.final
			rs.Seq = f.Seq
			rs.Transforms = f.Transforms
			rs.StageNs = make(map[string]int64, int(instrument.NumStages))
			for i := 0; i < int(instrument.NumStages); i++ {
				rs.StageNs[instrument.Stage(i).String()] = f.StageNs[i]
			}
			rs.Comm = f.Comm
			rs.OverlapRatio = f.OverlapRatio()
			rs.Links = append([]LinkStat(nil), f.Links...)
		}
		s.Ranks[r] = rs
	}
	s.Fleet = fleetStats(s)
	return s
}

// fleetStats computes the cross-rank distributions of a snapshot.
func fleetStats(s *ClusterSnapshot) FleetStats {
	var fs FleetStats
	for i := 0; i < int(instrument.NumStages); i++ {
		name := instrument.Stage(i).String()
		var vals []int64
		maxRank, maxNs := -1, int64(0)
		for _, r := range s.Ranks {
			if !r.Reported {
				continue
			}
			v := r.StageNs[name]
			vals = append(vals, v)
			if v > maxNs {
				maxNs, maxRank = v, r.Rank
			}
		}
		if len(vals) == 0 {
			continue
		}
		fs.Stages = append(fs.Stages, StagePercentiles{
			Stage:   name,
			P50Ns:   percentile(vals, 0.50),
			P90Ns:   percentile(vals, 0.90),
			MaxNs:   maxNs,
			MaxRank: maxRank,
		})
	}
	var bws []float64
	var overlaps []int64
	for _, r := range s.Ranks {
		if !r.Reported {
			continue
		}
		overlaps = append(overlaps, int64(r.OverlapRatio*1e9))
		for _, l := range r.Links {
			if bw := l.BandwidthBps(); bw > 0 {
				bws = append(bws, bw)
			}
		}
	}
	if len(bws) > 0 {
		sort.Float64s(bws)
		fs.LinkBandwidthP50Bps = bws[len(bws)/2]
	}
	if len(overlaps) > 0 {
		fs.OverlapRatioP50 = float64(percentile(overlaps, 0.50)) / 1e9
	}
	return fs
}

// percentile returns the p-quantile (nearest-rank) of vals; vals is
// sorted in place.
func percentile(vals []int64, p float64) int64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	idx := int(p * float64(len(vals)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(vals) {
		idx = len(vals) - 1
	}
	return vals[idx]
}
