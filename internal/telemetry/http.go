package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"soifft/internal/instrument"
)

// Handler serves the live cluster snapshot as JSON (the /debug/cluster
// endpoint). snap is called per request; a nil snapshot (non-root rank,
// plane off) answers 404 so probes can distinguish "no plane" from an
// empty cluster.
func Handler(snap func() *ClusterSnapshot) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		s := snap()
		if s == nil {
			http.Error(w, "cluster telemetry not aggregated on this rank", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s)
	})
}

// WritePrometheus renders the cluster snapshot in the Prometheus text
// exposition format, complementing instrument.WritePrometheus's
// single-rank series with per-rank, per-link and findings gauges.
func WritePrometheus(w io.Writer, prefix string, s *ClusterSnapshot) {
	if s == nil {
		return
	}
	if prefix == "" {
		prefix = "soifft"
	}
	fmt.Fprintf(w, "# TYPE %s_cluster_world gauge\n%s_cluster_world %d\n", prefix, prefix, s.World)

	fmt.Fprintf(w, "# TYPE %s_cluster_rank_up gauge\n", prefix)
	for _, r := range s.Ranks {
		up := 0
		if r.Reported && !r.Stale {
			up = 1
		}
		fmt.Fprintf(w, "%s_cluster_rank_up{rank=\"%d\"} %d\n", prefix, r.Rank, up)
	}

	fmt.Fprintf(w, "# TYPE %s_cluster_stage_seconds gauge\n", prefix)
	for _, r := range s.Ranks {
		if !r.Reported {
			continue
		}
		for i := 0; i < int(instrument.NumStages); i++ {
			name := instrument.Stage(i).String()
			fmt.Fprintf(w, "%s_cluster_stage_seconds{rank=\"%d\",stage=%q} %.9f\n",
				prefix, r.Rank, name, time.Duration(r.StageNs[name]).Seconds())
		}
	}

	fmt.Fprintf(w, "# TYPE %s_cluster_overlap_ratio gauge\n", prefix)
	for _, r := range s.Ranks {
		if r.Reported {
			fmt.Fprintf(w, "%s_cluster_overlap_ratio{rank=\"%d\"} %.6f\n", prefix, r.Rank, r.OverlapRatio)
		}
	}

	fmt.Fprintf(w, "# TYPE %s_cluster_link_bytes gauge\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_cluster_link_flush_seconds gauge\n", prefix)
	fmt.Fprintf(w, "# TYPE %s_cluster_link_credit_stall_seconds gauge\n", prefix)
	for _, r := range s.Ranks {
		for _, l := range r.Links {
			lbl := fmt.Sprintf("{src=\"%d\",dst=\"%d\"}", r.Rank, l.Peer)
			fmt.Fprintf(w, "%s_cluster_link_bytes%s %d\n", prefix, lbl, l.BytesSent)
			fmt.Fprintf(w, "%s_cluster_link_flush_seconds%s %.9f\n", prefix, lbl, time.Duration(l.FlushNs).Seconds())
			fmt.Fprintf(w, "%s_cluster_link_credit_stall_seconds%s %.9f\n", prefix, lbl, time.Duration(l.CreditStallNs).Seconds())
		}
	}

	fmt.Fprintf(w, "# TYPE %s_cluster_findings gauge\n", prefix)
	byKind := map[string]int{}
	for _, f := range s.Findings {
		byKind[f.Kind]++
	}
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "%s_cluster_findings{kind=%q} %d\n", prefix, k, byKind[k])
	}
}

// WriteText renders the snapshot as the human-readable watch view:
// the per-rank stage matrix, the busiest links, and the findings.
func WriteText(w io.Writer, s *ClusterSnapshot) {
	if s == nil {
		fmt.Fprintln(w, "cluster: no snapshot (telemetry plane off or non-root rank)")
		return
	}
	sh := s.Shape
	fmt.Fprintf(w, "cluster: world %d  N=%d P=%d B=%d beta=%.2f window=%d parity=%d\n",
		s.World, sh.N, sh.Segments, sh.Taps, sh.Beta, sh.Window, sh.Parity)

	fmt.Fprintf(w, "%-5s %-6s", "rank", "xforms")
	for i := 0; i < int(instrument.NumStages); i++ {
		fmt.Fprintf(w, " %-10s", instrument.Stage(i).String())
	}
	fmt.Fprintf(w, " %-7s %-10s %s\n", "overlap", "stall", "status")
	for _, r := range s.Ranks {
		status := "ok"
		switch {
		case !r.Reported:
			status = "silent"
		case r.Stale:
			status = "STALE"
		case r.Final:
			status = "final"
		}
		if !r.Reported {
			fmt.Fprintf(w, "%-5d %-6s%s %s\n", r.Rank, "-", pad("", int(instrument.NumStages)*11+19), status)
			continue
		}
		fmt.Fprintf(w, "%-5d %-6d", r.Rank, r.Transforms)
		for i := 0; i < int(instrument.NumStages); i++ {
			d := time.Duration(r.StageNs[instrument.Stage(i).String()])
			fmt.Fprintf(w, " %-10s", d.Round(time.Microsecond))
		}
		fmt.Fprintf(w, " %-7s %-10s %s\n",
			fmt.Sprintf("%.0f%%", r.OverlapRatio*100),
			time.Duration(r.Comm.CreditStallNs).Round(time.Microsecond), status)
	}

	type link struct {
		src int
		l   LinkStat
	}
	var links []link
	for _, r := range s.Ranks {
		for _, l := range r.Links {
			if l.BytesSent > 0 {
				links = append(links, link{r.Rank, l})
			}
		}
	}
	sort.Slice(links, func(i, j int) bool { return links[i].l.FlushNs > links[j].l.FlushNs })
	if len(links) > 0 {
		fmt.Fprintf(w, "links (slowest first):\n")
		max := len(links)
		if max > 8 {
			max = 8
		}
		for _, lk := range links[:max] {
			l := lk.l
			fmt.Fprintf(w, "  %d->%d  %8d B in %-10s %8.1f MB/s  stall %-10s rtt %s\n",
				lk.src, l.Peer, l.BytesSent, time.Duration(l.FlushNs).Round(time.Microsecond),
				l.BandwidthBps()/1e6, time.Duration(l.CreditStallNs).Round(time.Microsecond),
				time.Duration(l.HeartbeatRTTNs).Round(time.Microsecond))
		}
	}

	if len(s.Findings) > 0 {
		fmt.Fprintf(w, "findings:\n")
		for _, f := range s.Findings {
			fmt.Fprintf(w, "  %s\n", f.String())
		}
	} else {
		fmt.Fprintf(w, "findings: none (cluster on model)\n")
	}
}

func pad(s string, n int) string {
	for len(s) < n {
		s += " "
	}
	return s
}
