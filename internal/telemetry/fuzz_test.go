package telemetry

import "testing"

// FuzzUnpackFrame hammers the raw-byte frame parser with hostile input.
// Where FuzzStatFrameRoundTrip checks re-encode stability, this harness
// pins the parser's acceptance guarantees: every frame UnpackBytes lets
// through has its rank inside its world, a link table within the
// declared bound, and decodes identically through the []complex128 wire
// path — the payload shape the transports actually move — so a frame a
// TCP peer accepts is the frame the in-process transport would deliver.
func FuzzUnpackFrame(f *testing.F) {
	good := sampleFrame().PackBytes()
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:len(good)-5]) // truncated tail
	for _, mut := range []struct {
		off int
		val byte
	}{
		{0, 0xFF},  // magic
		{4, 99},    // version
		{12, 0xFF}, // rank
		{16, 0xFF}, // world
	} {
		b := append([]byte(nil), good...)
		b[mut.off] = mut.val
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		sf, err := UnpackBytes(b) // must never panic
		if err != nil {
			return
		}
		if sf.World <= 0 || sf.Rank < 0 || sf.Rank >= sf.World {
			t.Fatalf("accepted frame with rank %d outside world %d", sf.Rank, sf.World)
		}
		if len(sf.Links) > maxLinks {
			t.Fatalf("accepted frame with %d links (limit %d)", len(sf.Links), maxLinks)
		}
		// The complex128 path pads the byte image to 16-byte words; a
		// re-encoded frame must survive it bit-exactly.
		again, err := Unpack(sf.Pack())
		if err != nil {
			t.Fatalf("complex wire path rejected a re-encoded frame: %v", err)
		}
		if again.Rank != sf.Rank || again.World != sf.World || again.Seq != sf.Seq ||
			len(again.Links) != len(sf.Links) {
			t.Fatalf("complex wire path drifted: %+v vs %+v", again, sf)
		}
	})
}
