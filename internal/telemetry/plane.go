package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"soifft/internal/instrument"
	"soifft/internal/trace"
)

// Conn is the transport capability the plane ships frames over: the
// checked point-to-point send both *mpi.Comm and *mpinet.Proc expose.
// Stat frames ride the same links as the transform, on their own
// control tag, so the plane needs no side channel.
type Conn interface {
	Rank() int
	Size() int
	SendChecked(to, tag int, data any) error
}

// Receiver is the root-side capability: a blocking receive of the next
// telemetry frame from one peer, returning the transport's typed error
// once the link is dead. Both transports implement it with a dedicated
// per-peer telemetry mailbox (frames arrive mid-transform, concurrently
// with halo/parity/stream receives on the same link, and must never be
// popped by — or steal a frame from — those consumers).
type Receiver interface {
	RecvTelemetry(from int) ([]complex128, error)
}

// LinkStatser is the optional per-link wire counter capability
// (*mpinet.Proc implements it; the in-process runtime has no wire).
type LinkStatser interface {
	LinkStats() []LinkStat
}

// Config assembles one rank's telemetry plane.
type Config struct {
	// Conn ships frames (and, via the optional Receiver/LinkStatser
	// capabilities, receives them on rank 0 and samples wire counters).
	Conn Conn
	// Recorder is the rank's stat source; nil yields frames with wire
	// stats only.
	Recorder *instrument.Recorder
	// Shape describes the transform for the explainer's model terms.
	Shape Shape
	// Interval enables periodic shipping mid-transform (0 = frames only
	// at end-of-transform and at Final).
	Interval time.Duration
	// FinalTimeout bounds how long Final waits for peers' final frames
	// before marking them stale (default 10s).
	FinalTimeout time.Duration
	// Tracer, when set, mirrors explainer findings as trace instant
	// events so Perfetto shows them on the timeline.
	Tracer  *trace.Tracer
	TraceID trace.ID
}

// Plane is one rank's handle on the telemetry plane. All methods are
// nil-safe no-ops, so execution paths hold an optional *Plane and guard
// with a single pointer test — the same contract as instrument.Recorder
// and trace.Tracer.
type Plane struct {
	cfg         Config
	rank, world int
	links       LinkStatser // Conn's capability, resolved once
	recv        Receiver    // Conn's capability, resolved once

	agg    *Aggregator // rank 0 only
	drains sync.WaitGroup

	seq      atomic.Uint64
	done     atomic.Bool // send path latched off (root gone or closed)
	sendMu   sync.Mutex
	stop     chan struct{}
	stopOnce sync.Once
}

// Start arms the plane on this rank: rank 0 begins draining peers'
// frames into its aggregator (one goroutine per peer link, each ending
// on the peer's final frame or its link's death), and every rank starts
// the periodic shipper when an interval is configured.
func Start(cfg Config) (*Plane, error) {
	if cfg.Conn == nil {
		return nil, fmt.Errorf("telemetry: Config.Conn is required")
	}
	if cfg.FinalTimeout <= 0 {
		cfg.FinalTimeout = 10 * time.Second
	}
	p := &Plane{
		cfg:   cfg,
		rank:  cfg.Conn.Rank(),
		world: cfg.Conn.Size(),
		stop:  make(chan struct{}),
	}
	p.links, _ = cfg.Conn.(LinkStatser)
	p.recv, _ = cfg.Conn.(Receiver)
	if p.rank == 0 {
		p.agg = NewAggregator(p.world)
		if p.recv != nil {
			for r := 1; r < p.world; r++ {
				p.drains.Add(1)
				go p.drain(r)
			}
		}
	}
	if cfg.Interval > 0 {
		go p.tick()
	}
	return p, nil
}

// drain pulls one peer's frame stream until its final frame or its
// link's death; an abnormal end freezes the rank as stale instead of
// blocking the aggregation.
func (p *Plane) drain(r int) {
	defer p.drains.Done()
	for {
		data, err := p.recv.RecvTelemetry(r)
		if err != nil {
			p.agg.MarkStale(r, err.Error())
			return
		}
		f, err := Unpack(data)
		if err != nil {
			p.agg.MarkStale(r, "undecodable stat frame: "+err.Error())
			return
		}
		p.agg.Observe(f)
		if f.Final {
			return
		}
	}
}

func (p *Plane) tick() {
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.ship(false)
		case <-p.stop:
			return
		}
	}
}

// buildFrame packs this rank's current cumulative counters.
func (p *Plane) buildFrame(final bool) *StatFrame {
	f := &StatFrame{
		Rank:  p.rank,
		World: p.world,
		Seq:   p.seq.Add(1),
		Final: final,
		Shape: p.cfg.Shape,
	}
	f.Accumulate(p.cfg.Recorder.Snapshot())
	if p.links != nil {
		f.Links = p.links.LinkStats()
	}
	return f
}

// ship builds and delivers one frame: rank 0 folds it straight into the
// aggregator, other ranks send it to rank 0 on the telemetry tag. A
// failed send (root dead) latches the plane off — telemetry must never
// take the transform down with it.
func (p *Plane) ship(final bool) {
	if p == nil || p.done.Load() {
		return
	}
	p.sendMu.Lock()
	defer p.sendMu.Unlock()
	if p.done.Load() {
		return
	}
	f := p.buildFrame(final)
	if p.rank == 0 {
		p.agg.Observe(f)
		return
	}
	if err := p.cfg.Conn.SendChecked(0, TagStat, f.Pack()); err != nil {
		p.done.Store(true)
	}
}

// OnTransformEnd ships a fresh frame after a completed transform — the
// hook core.RunDistributed's WithTelemetry option calls behind one
// pointer test.
func (p *Plane) OnTransformEnd() {
	if p == nil {
		return
	}
	p.ship(false)
}

// Snapshot returns the live aggregated cluster view with findings
// (rank 0; nil elsewhere) — the source for /debug/cluster and the
// periodic watch view.
func (p *Plane) Snapshot() *ClusterSnapshot {
	if p == nil || p.agg == nil {
		return nil
	}
	s := p.agg.Snapshot()
	Explain(s)
	return s
}

// Final ends the plane: every rank ships its final frame; rank 0 then
// waits (bounded by FinalTimeout) for peers' final frames, marks
// laggards stale, aggregates, runs the explainer, mirrors findings into
// the tracer as instant events, and returns the finished snapshot.
// Other ranks return nil.
func (p *Plane) Final() *ClusterSnapshot {
	if p == nil {
		return nil
	}
	p.ship(true)
	p.Close()
	if p.agg == nil {
		return nil
	}
	if p.recv != nil {
		done := make(chan struct{})
		go func() { p.drains.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(p.cfg.FinalTimeout):
			p.agg.markUnfinished(fmt.Sprintf("no final stat frame within %v", p.cfg.FinalTimeout))
		}
	}
	s := p.agg.Snapshot()
	Explain(s)
	if tr := p.cfg.Tracer; tr.Enabled() {
		for _, f := range s.Findings {
			tr.Instant(p.cfg.TraceID, f.Rank, "finding:"+f.Kind+": "+f.Detail)
		}
	}
	return s
}

// Close stops the periodic shipper and latches the send path off.
// Idempotent; Final calls it internally.
func (p *Plane) Close() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() { close(p.stop) })
}

// markUnfinished freezes every rank that neither finished nor already
// went stale — the bounded-wait fallback of Final.
func (a *Aggregator) markUnfinished(reason string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for r := range a.ranks {
		st := &a.ranks[r]
		if !st.final && !st.stale {
			st.stale = true
			st.staleReason = reason
		}
	}
}
