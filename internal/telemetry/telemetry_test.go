package telemetry

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"soifft/internal/instrument"
	"soifft/internal/perfmodel"
)

func sampleFrame() *StatFrame {
	f := &StatFrame{
		Rank:  3,
		World: 8,
		Seq:   42,
		Final: true,
		Shape: Shape{N: 1 << 16, Segments: 8, Taps: 72, Beta: 0.25, Parity: 2, Window: 4},

		Transforms: 7,
		Comm: CommStats{
			Messages: 100, Bytes: 1 << 20, Alltoalls: 7, AlltoallBytes: 9 << 16,
			Retransmits: 1, DeadlineEvents: 2, ChecksumErrors: 0,
			ParityBytes: 1 << 12, RecoveryBytes: 1 << 10, Reconstructions: 3,
			Degraded: 1, StreamChunks: 56, HiddenNs: 5e6, CreditStallNs: 1e6,
		},
		Links: []LinkStat{
			{Peer: 0, FramesSent: 10, BytesSent: 1 << 18, FramesReceived: 9,
				BytesReceived: 1 << 17, FlushNs: 3e6, CreditStallNs: 4e5,
				HeartbeatRTTNs: 2e5, SendErrors: 1},
			{Peer: 5, FramesSent: 2, BytesSent: 999, FlushNs: 1},
		},
	}
	for i := 0; i < int(instrument.NumStages); i++ {
		f.StageNs[i] = int64(i+1) * 1e6
		f.StageCalls[i] = int64(i + 1)
	}
	return f
}

func TestStatFrameRoundTrip(t *testing.T) {
	f := sampleFrame()
	got, err := Unpack(f.Pack())
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", f) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, f)
	}
}

func TestStatFrameRoundTripEmpty(t *testing.T) {
	f := &StatFrame{Rank: 0, World: 1, Seq: 1}
	got, err := Unpack(f.Pack())
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	if got.Rank != 0 || got.World != 1 || got.Seq != 1 || len(got.Links) != 0 {
		t.Fatalf("empty frame mangled: %+v", got)
	}
}

func TestUnpackRejectsCorruption(t *testing.T) {
	good := sampleFrame().PackBytes()
	cases := map[string]func([]byte){
		"magic":   func(b []byte) { b[0] ^= 0xFF },
		"version": func(b []byte) { b[4] = 99 },
		"link-count": func(b []byte) {
			b[len(b)-len(sampleFrame().Links)*(4+8*8)-4] = 0xFF
			b[len(b)-len(sampleFrame().Links)*(4+8*8)-3] = 0xFF
			b[len(b)-len(sampleFrame().Links)*(4+8*8)-2] = 0xFF
		},
		"truncated": nil,
	}
	for name, mut := range cases {
		b := append([]byte(nil), good...)
		if mut == nil {
			b = b[:len(b)-5]
		} else {
			mut(b)
		}
		if _, err := UnpackBytes(b); err == nil {
			t.Errorf("%s: corrupt frame accepted", name)
		}
	}
	if _, err := UnpackBytes(nil); err == nil {
		t.Error("nil input accepted")
	}
}

func FuzzStatFrameRoundTrip(f *testing.F) {
	f.Add(sampleFrame().PackBytes())
	f.Add([]byte{})
	f.Add([]byte{0x53, 0x4F, 0x49, 0x54})
	f.Fuzz(func(t *testing.T, b []byte) {
		sf, err := UnpackBytes(b) // must never panic
		if err != nil || sf == nil {
			return
		}
		// A frame that decodes must survive a re-encode round trip.
		again, err := UnpackBytes(sf.PackBytes())
		if err != nil {
			t.Fatalf("re-decode of re-encoded frame failed: %v", err)
		}
		if again.Rank != sf.Rank || again.Seq != sf.Seq || len(again.Links) != len(sf.Links) {
			t.Fatalf("re-encode drifted: %+v vs %+v", again, sf)
		}
	})
}

func TestAggregatorSupersedesAndStales(t *testing.T) {
	a := NewAggregator(3)
	a.Observe(&StatFrame{Rank: 1, World: 3, Seq: 2, Transforms: 2})
	a.Observe(&StatFrame{Rank: 1, World: 3, Seq: 1, Transforms: 99}) // stale seq, dropped
	a.MarkStale(2, "link reset")

	s := a.Snapshot()
	if !s.Ranks[1].Reported || s.Ranks[1].Transforms != 2 {
		t.Fatalf("rank 1 wrong: %+v", s.Ranks[1])
	}
	if s.Ranks[0].Reported {
		t.Fatalf("rank 0 should be silent: %+v", s.Ranks[0])
	}
	if !s.Ranks[2].Stale || s.Ranks[2].StaleReason != "link reset" {
		t.Fatalf("rank 2 should be stale: %+v", s.Ranks[2])
	}

	// A final frame that already landed wins over a later MarkStale
	// (post-final link teardown is normal shutdown, not a failure).
	a.Observe(&StatFrame{Rank: 1, World: 3, Seq: 3, Final: true})
	a.MarkStale(1, "connection closed")
	if s = a.Snapshot(); s.Ranks[1].Stale {
		t.Fatalf("final rank went stale: %+v", s.Ranks[1])
	}
}

// synthSnapshot builds a 4-rank snapshot where rank 3's exchange is slow
// and its link 3→1 is far under fleet bandwidth, with the stall counters
// attributing the excess.
func synthSnapshot() *ClusterSnapshot {
	a := NewAggregator(4)
	exch := int(instrument.StageExchange)
	for r := 0; r < 4; r++ {
		f := &StatFrame{
			Rank: r, World: 4, Seq: 1, Final: true,
			Shape:      Shape{N: 1 << 16, Segments: 4, Taps: 72, Beta: 0.25, Parity: -1, Window: 2},
			Transforms: 1,
		}
		f.StageNs[exch] = 10e6
		f.Comm.HiddenNs = 10e6
		f.Comm.AlltoallBytes = perfmodel.ExpectedExchangeBytes(1<<16, 4, 0.25)
		for p := 0; p < 4; p++ {
			if p == r {
				continue
			}
			f.Links = append(f.Links, LinkStat{Peer: p, FramesSent: 4, BytesSent: 1 << 20, FlushNs: 10e6})
		}
		if r == 3 {
			f.StageNs[exch] = 100e6 // 10x the fleet median
			f.Comm.HiddenNs = 0
			f.Comm.CreditStallNs = 70e6
			for i := range f.Links {
				if f.Links[i].Peer == 1 {
					f.Links[i].FlushNs = 200e6 // 20x the fleet link time
					f.Links[i].CreditStallNs = 70e6
				}
			}
		}
		a.Observe(f)
	}
	return a.Snapshot()
}

func TestExplainerRanksThrottledLink(t *testing.T) {
	s := synthSnapshot()
	findings := Explain(s)
	if len(findings) == 0 {
		t.Fatal("no findings from a snapshot with a 20x slow link")
	}
	top := findings[0]
	if top.Kind != KindSlowLink || top.Rank != 3 || top.Peer != 1 {
		t.Fatalf("top finding should be slow-link 3->1, got %+v (all: %v)", top, findings)
	}
	if top.Ratio <= RatioThreshold {
		t.Fatalf("top finding ratio %.2f should exceed %.2f", top.Ratio, RatioThreshold)
	}

	var slowStage *Finding
	for i := range findings {
		if findings[i].Kind == KindSlowStage && findings[i].Rank == 3 {
			slowStage = &findings[i]
			break
		}
	}
	if slowStage == nil {
		t.Fatalf("rank 3's 10x exchange produced no slow-stage finding: %v", findings)
	}
	if !strings.Contains(slowStage.Detail, "credit-stall") || !strings.Contains(slowStage.Detail, "3→1") {
		t.Fatalf("slow-stage detail should attribute credit-stall on link 3→1: %q", slowStage.Detail)
	}
}

func TestExplainerStaleOutranksAll(t *testing.T) {
	s := synthSnapshot()
	s.Ranks[2].Stale = true
	s.Ranks[2].StaleReason = "rank died"
	findings := Explain(s)
	if findings[0].Kind != KindStaleRank || findings[0].Rank != 2 {
		t.Fatalf("stale rank should outrank wire findings, got %+v", findings[0])
	}
}

func TestExplainerQuietOnModel(t *testing.T) {
	a := NewAggregator(2)
	for r := 0; r < 2; r++ {
		f := &StatFrame{Rank: r, World: 2, Seq: 1, Final: true,
			Shape: Shape{N: 1 << 14, Segments: 2, Taps: 72, Beta: 0.25, Parity: -1}, Transforms: 1}
		f.StageNs[instrument.StageExchange] = 5e6
		f.Comm.AlltoallBytes = perfmodel.ExpectedExchangeBytes(1<<14, 2, 0.25)
		f.Links = []LinkStat{{Peer: 1 - r, FramesSent: 2, BytesSent: 1 << 16, FlushNs: 1e6}}
		a.Observe(f)
	}
	if findings := Explain(a.Snapshot()); len(findings) != 0 {
		t.Fatalf("on-model cluster produced findings: %v", findings)
	}
}

// fakeConn wires Plane instances together in-process: rank 0's Receiver
// reads what other ranks SendChecked.
type fakeConn struct {
	rank, world int
	net         *fakeNet
}

type fakeNet struct {
	mu     sync.Mutex
	boxes  map[int]chan []complex128
	killed map[int]error
}

func newFakeNet(world int) *fakeNet {
	n := &fakeNet{boxes: make(map[int]chan []complex128), killed: make(map[int]error)}
	for r := 1; r < world; r++ {
		n.boxes[r] = make(chan []complex128, 64)
	}
	return n
}

func (n *fakeNet) conn(rank, world int) *fakeConn { return &fakeConn{rank: rank, world: world, net: n} }

func (n *fakeNet) kill(rank int, err error) {
	n.mu.Lock()
	n.killed[rank] = err
	close(n.boxes[rank])
	n.mu.Unlock()
}

func (c *fakeConn) Rank() int { return c.rank }
func (c *fakeConn) Size() int { return c.world }

func (c *fakeConn) SendChecked(to, tag int, data any) error {
	if tag != TagStat {
		return fmt.Errorf("unexpected tag %d", tag)
	}
	c.net.mu.Lock()
	dead := c.net.killed[c.rank]
	c.net.mu.Unlock()
	if dead != nil {
		return dead
	}
	c.net.boxes[c.rank] <- data.([]complex128)
	return nil
}

func (c *fakeConn) RecvTelemetry(from int) ([]complex128, error) {
	data, ok := <-c.net.boxes[from]
	if !ok {
		c.net.mu.Lock()
		err := c.net.killed[from]
		c.net.mu.Unlock()
		if err == nil {
			err = errors.New("closed")
		}
		return nil, err
	}
	return data, nil
}

func TestPlaneAggregatesAndSurvivesRankDeath(t *testing.T) {
	const world = 4
	net := newFakeNet(world)
	shape := Shape{N: 1 << 12, Segments: world, Taps: 72, Beta: 0.25, Parity: -1}

	root, err := Start(Config{Conn: net.conn(0, world), Shape: shape, FinalTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var peers []*Plane
	for r := 1; r < world; r++ {
		p, err := Start(Config{Conn: net.conn(r, world), Shape: shape})
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, p)
	}

	for _, p := range peers {
		p.OnTransformEnd()
	}
	root.OnTransformEnd()

	// Rank 2 dies mid-run: its link drops before its final frame.
	net.kill(2, errors.New("rank 2: connection reset"))
	peers[1].Final() // must not hang or panic; send just latches off

	peers[0].Final()
	peers[2].Final()
	s := root.Final()
	if s == nil {
		t.Fatal("root Final returned nil snapshot")
	}
	for _, r := range []int{1, 3} {
		if !s.Ranks[r].Final {
			t.Errorf("rank %d should have finished cleanly: %+v", r, s.Ranks[r])
		}
	}
	if !s.Ranks[2].Stale {
		t.Fatalf("dead rank 2 should be stale: %+v", s.Ranks[2])
	}
	if !s.Ranks[2].Reported || s.Ranks[2].Transforms != 0 {
		t.Fatalf("rank 2 should keep its last good frame: %+v", s.Ranks[2])
	}
	var found bool
	for _, f := range s.Findings {
		if f.Kind == KindStaleRank && f.Rank == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("stale rank 2 missing from findings: %v", s.Findings)
	}
}

func TestPlaneNilSafe(t *testing.T) {
	var p *Plane
	p.OnTransformEnd()
	p.Close()
	if p.Final() != nil || p.Snapshot() != nil {
		t.Fatal("nil plane should return nil snapshots")
	}
}

func TestWriteSurfaces(t *testing.T) {
	s := synthSnapshot()
	Explain(s)

	var prom bytes.Buffer
	WritePrometheus(&prom, "", s)
	for _, want := range []string{
		"soifft_cluster_world 4",
		`soifft_cluster_link_bytes{src="3",dst="1"}`,
		`soifft_cluster_findings{kind="slow-link"}`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus output missing %q:\n%s", want, prom.String())
		}
	}

	var txt bytes.Buffer
	WriteText(&txt, s)
	for _, want := range []string{"cluster: world 4", "3->1", "slow-link"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("watch view missing %q:\n%s", want, txt.String())
		}
	}
	WriteText(&txt, nil) // must not panic
}
