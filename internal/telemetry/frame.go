// Package telemetry is the cluster observability plane: every rank of a
// distributed transform periodically (and at end-of-transform) packs a
// compact stat frame — per-stage times from its instrument.Recorder,
// per-peer wire stats from the transport, overlap and coded-exchange
// counters — and ships it to rank 0 over a dedicated control tag
// piggybacked on the existing transport. Rank 0 aggregates the frames
// into a ClusterSnapshot (per-rank × per-stage matrix, per-link wire
// table, fleet percentiles) and runs the explainer, which compares the
// measured stage and wire times against internal/perfmodel's
// expectations for the actual (N, R, β, B) and emits ranked findings
// ("rank 3 exchange 2.1× fleet median — 78% of the excess is
// credit-stall on link 3→1").
//
// The plane follows the same off-switch discipline as instrument and
// trace: a nil *Plane is fully inert (every method nil-safe), and the
// execution paths guard with a single pointer test.
package telemetry

import (
	"encoding/binary"
	"fmt"
	"math"

	"soifft/internal/instrument"
)

// TagStat is the dedicated control tag stat frames travel on. The value
// sits between the coded-exchange bands (-1000..-1400s) and the streamed
// exchange's band (<= -2000), so both transports can route it to a
// dedicated telemetry mailbox: stat frames arrive asynchronously,
// mid-transform, and must never head the FIFO an ordinary receive
// (halo, parity, collective) is about to pop.
const TagStat = -1500

// frame wire format constants.
const (
	frameMagic   = 0x54494F53 // "SOIT" little-endian
	frameVersion = 1

	// maxLinks bounds the per-frame link table a header may claim,
	// limiting what a corrupted frame can make Unpack allocate.
	maxLinks = 1 << 16
	// maxStages bounds the per-frame stage table likewise.
	maxStages = 64
	// maxWorld bounds the rank space a frame may claim.
	maxWorld = 1 << 20
)

// LinkStat is one directed link's wire counters, measured at the sender
// side of the link (rank → peer).
type LinkStat struct {
	Peer int `json:"peer"`
	// FramesSent/BytesSent count data frames this rank flushed to peer.
	FramesSent int64 `json:"frames_sent"`
	BytesSent  int64 `json:"bytes_sent"`
	// FramesReceived/BytesReceived count validated data frames read.
	FramesReceived int64 `json:"frames_received"`
	BytesReceived  int64 `json:"bytes_received"`
	// FlushNs is wall time the writer spent pushing data frames into the
	// socket — the link's effective service time.
	FlushNs int64 `json:"flush_ns"`
	// CreditStallNs is time streamed sends to this peer spent blocked on
	// a full credit window (producer outrunning this link).
	CreditStallNs int64 `json:"credit_stall_ns"`
	// HeartbeatRTTNs is the latest heartbeat echo round-trip sample
	// (0 = no sample; heartbeats flow only while an I/O deadline is set).
	HeartbeatRTTNs int64 `json:"heartbeat_rtt_ns"`
	// SendErrors counts failed sends to this peer (link declared dead).
	SendErrors int64 `json:"send_errors"`
}

// BandwidthBps is the link's effective flush bandwidth in bytes/second
// (0 without traffic or timing).
func (l LinkStat) BandwidthBps() float64 {
	if l.FlushNs <= 0 || l.BytesSent <= 0 {
		return 0
	}
	return float64(l.BytesSent) * 1e9 / float64(l.FlushNs)
}

// CommStats is the flat, serializable copy of the communication counters
// a frame carries (instrument.CommSnapshot reduced to int64 fields).
type CommStats struct {
	Messages        int64 `json:"messages"`
	Bytes           int64 `json:"bytes"`
	Alltoalls       int64 `json:"alltoalls"`
	AlltoallBytes   int64 `json:"alltoall_bytes"`
	Retransmits     int64 `json:"retransmits"`
	DeadlineEvents  int64 `json:"deadline_events"`
	ChecksumErrors  int64 `json:"checksum_errors"`
	ParityBytes     int64 `json:"parity_bytes"`
	RecoveryBytes   int64 `json:"recovery_bytes"`
	Reconstructions int64 `json:"reconstructions"`
	Degraded        int64 `json:"degraded"`
	StreamChunks    int64 `json:"stream_chunks"`
	HiddenNs        int64 `json:"hidden_exchange_ns"`
	CreditStallNs   int64 `json:"credit_stall_ns"`
}

// commFromSnapshot flattens an instrument comm snapshot.
func commFromSnapshot(c instrument.CommSnapshot) CommStats {
	return CommStats{
		Messages:        c.Messages,
		Bytes:           c.Bytes,
		Alltoalls:       c.Alltoalls,
		AlltoallBytes:   c.AlltoallBytes,
		Retransmits:     c.Retransmits,
		DeadlineEvents:  c.DeadlineEvents,
		ChecksumErrors:  c.ChecksumErrors,
		ParityBytes:     c.ParityBytes,
		RecoveryBytes:   c.RecoveryBytes,
		Reconstructions: c.Reconstructions,
		Degraded:        c.DegradedTransforms,
		StreamChunks:    c.StreamChunks,
		HiddenNs:        int64(c.HiddenExchange),
		CreditStallNs:   int64(c.CreditStall),
	}
}

// add sums two comm stat sets field-wise.
func (a CommStats) add(b CommStats) CommStats {
	return CommStats{
		Messages:        a.Messages + b.Messages,
		Bytes:           a.Bytes + b.Bytes,
		Alltoalls:       a.Alltoalls + b.Alltoalls,
		AlltoallBytes:   a.AlltoallBytes + b.AlltoallBytes,
		Retransmits:     a.Retransmits + b.Retransmits,
		DeadlineEvents:  a.DeadlineEvents + b.DeadlineEvents,
		ChecksumErrors:  a.ChecksumErrors + b.ChecksumErrors,
		ParityBytes:     a.ParityBytes + b.ParityBytes,
		RecoveryBytes:   a.RecoveryBytes + b.RecoveryBytes,
		Reconstructions: a.Reconstructions + b.Reconstructions,
		Degraded:        a.Degraded + b.Degraded,
		StreamChunks:    a.StreamChunks + b.StreamChunks,
		HiddenNs:        a.HiddenNs + b.HiddenNs,
		CreditStallNs:   a.CreditStallNs + b.CreditStallNs,
	}
}

// Shape identifies the transform a snapshot describes — the (N, R, β, B)
// the explainer feeds to perfmodel.
type Shape struct {
	N        int     `json:"n"`
	Segments int     `json:"segments"`
	Taps     int     `json:"taps"`
	Beta     float64 `json:"beta"`
	// Parity is the coded exchange's m (-1 = plain exchange).
	Parity int `json:"parity"`
	// Window is the streamed exchange's in-flight window (0 = blocking).
	Window int `json:"window"`
}

// StatFrame is one rank's telemetry report: a monotone sequence of
// cumulative counters. Later frames supersede earlier ones (the
// aggregator keeps the highest Seq per rank), so frames may be lost or
// reordered without corrupting the aggregate.
type StatFrame struct {
	Rank  int    `json:"rank"`
	World int    `json:"world"`
	Seq   uint64 `json:"seq"`
	// Final marks the rank's last frame (sent from Plane.Final); the
	// root's per-peer drain stops cleanly on it.
	Final bool  `json:"final,omitempty"`
	Shape Shape `json:"shape"`

	Transforms int64                       `json:"transforms"`
	StageNs    [instrument.NumStages]int64 `json:"stage_ns"`
	StageCalls [instrument.NumStages]int64 `json:"stage_calls"`
	Comm       CommStats                   `json:"comm"`
	Links      []LinkStat                  `json:"links,omitempty"`
}

// Accumulate folds a recorder snapshot's counters into the frame — the
// shared builder behind the plane's per-rank frames and the serving
// tier's single-replica view (which sums over every resident
// instrumented plan).
func (f *StatFrame) Accumulate(snap instrument.Snapshot) {
	f.Transforms += snap.Transforms
	for i := 0; i < int(instrument.NumStages); i++ {
		f.StageNs[i] += int64(snap.Stages[i].Wall)
		f.StageCalls[i] += snap.Stages[i].Calls
	}
	f.Comm = f.Comm.add(commFromSnapshot(snap.Comm))
}

// OverlapRatio is the rank's measured exchange-hiding fraction.
func (f *StatFrame) OverlapRatio() float64 {
	total := f.Comm.HiddenNs + f.StageNs[instrument.StageExchange]
	if total <= 0 {
		return 0
	}
	return float64(f.Comm.HiddenNs) / float64(total)
}

// --- wire codec ---

// PackBytes serializes the frame (little-endian, versioned, magic-tagged).
func (f *StatFrame) PackBytes() []byte {
	n := 4 + 2 + 2 + 4 + // magic, version, reserved, byteLen
		4 + 4 + 8 + 4 + // rank, world, seq, flags
		8 + 4 + 4 + 8 + 8 + 8 + // n, segments, taps, parity, window, beta
		8 + 4 + // transforms, stage count
		int(instrument.NumStages)*16 + // stage ns + calls
		14*8 + // comm
		4 + len(f.Links)*(4+8*8) // link count + links
	b := make([]byte, 0, n)
	u32 := func(v uint32) { b = binary.LittleEndian.AppendUint32(b, v) }
	u64 := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	i64 := func(v int64) { u64(uint64(v)) }

	u32(frameMagic)
	u32(uint32(frameVersion)) // version u16 + reserved u16, packed
	u32(uint32(n))            // byteLen (capacity == exact length below)
	u32(uint32(f.Rank))
	u32(uint32(f.World))
	u64(f.Seq)
	var flags uint32
	if f.Final {
		flags |= 1
	}
	u32(flags)
	u64(uint64(f.Shape.N))
	u32(uint32(f.Shape.Segments))
	u32(uint32(f.Shape.Taps))
	i64(int64(f.Shape.Parity))
	i64(int64(f.Shape.Window))
	u64(math.Float64bits(f.Shape.Beta))
	i64(f.Transforms)
	u32(uint32(instrument.NumStages))
	for s := 0; s < int(instrument.NumStages); s++ {
		i64(f.StageNs[s])
		i64(f.StageCalls[s])
	}
	c := f.Comm
	for _, v := range []int64{c.Messages, c.Bytes, c.Alltoalls, c.AlltoallBytes,
		c.Retransmits, c.DeadlineEvents, c.ChecksumErrors, c.ParityBytes,
		c.RecoveryBytes, c.Reconstructions, c.Degraded, c.StreamChunks,
		c.HiddenNs, c.CreditStallNs} {
		i64(v)
	}
	u32(uint32(len(f.Links)))
	for _, l := range f.Links {
		u32(uint32(l.Peer))
		i64(l.FramesSent)
		i64(l.BytesSent)
		i64(l.FramesReceived)
		i64(l.BytesReceived)
		i64(l.FlushNs)
		i64(l.CreditStallNs)
		i64(l.HeartbeatRTTNs)
		i64(l.SendErrors)
	}
	if len(b) != n {
		panic(fmt.Sprintf("telemetry: frame size bookkeeping off: %d != %d", len(b), n))
	}
	return b
}

// Pack serializes the frame into the []complex128 payload shape both
// transports move natively: the byte image packed 16 bytes per element
// (zero-padded), bit-exact through the transports' Float64bits framing.
func (f *StatFrame) Pack() []complex128 {
	b := f.PackBytes()
	out := make([]complex128, (len(b)+15)/16)
	var word [16]byte
	for i := range out {
		chunk := b[i*16:]
		if len(chunk) >= 16 {
			copy(word[:], chunk[:16])
		} else {
			word = [16]byte{}
			copy(word[:], chunk)
		}
		re := math.Float64frombits(binary.LittleEndian.Uint64(word[:8]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(word[8:]))
		out[i] = complex(re, im)
	}
	return out
}

// reader is a bounds-checked little-endian cursor.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("telemetry: frame truncated at offset %d (need %d of %d)", r.off, n, len(r.b))
		return nil
	}
	s := r.b[r.off : r.off+n]
	r.off += n
	return s
}

func (r *reader) u32() uint32 {
	if s := r.take(4); s != nil {
		return binary.LittleEndian.Uint32(s)
	}
	return 0
}

func (r *reader) u64() uint64 {
	if s := r.take(8); s != nil {
		return binary.LittleEndian.Uint64(s)
	}
	return 0
}

func (r *reader) i64() int64 { return int64(r.u64()) }

// UnpackBytes parses a frame, validating magic, version and every
// length field before allocating; it never panics on corrupt input.
func UnpackBytes(b []byte) (*StatFrame, error) {
	r := &reader{b: b}
	if m := r.u32(); r.err == nil && m != frameMagic {
		return nil, fmt.Errorf("telemetry: bad frame magic %#x (want %#x)", m, frameMagic)
	}
	if v := r.u32(); r.err == nil && v&0xFFFF != frameVersion {
		return nil, fmt.Errorf("telemetry: unsupported frame version %d", v&0xFFFF)
	}
	byteLen := int(r.u32())
	if r.err == nil && (byteLen < 0 || byteLen > len(b)) {
		return nil, fmt.Errorf("telemetry: frame claims %d bytes, have %d", byteLen, len(b))
	}
	f := &StatFrame{}
	f.Rank = int(int32(r.u32()))
	f.World = int(int32(r.u32()))
	f.Seq = r.u64()
	flags := r.u32()
	f.Final = flags&1 != 0
	f.Shape.N = int(r.u64())
	f.Shape.Segments = int(int32(r.u32()))
	f.Shape.Taps = int(int32(r.u32()))
	f.Shape.Parity = int(r.i64())
	f.Shape.Window = int(r.i64())
	f.Shape.Beta = math.Float64frombits(r.u64())
	f.Transforms = r.i64()
	stages := int(r.u32())
	if r.err == nil && (stages < 0 || stages > maxStages) {
		return nil, fmt.Errorf("telemetry: frame claims %d stages (limit %d)", stages, maxStages)
	}
	for s := 0; s < stages && r.err == nil; s++ {
		ns, calls := r.i64(), r.i64()
		if s < int(instrument.NumStages) {
			f.StageNs[s] = ns
			f.StageCalls[s] = calls
		}
	}
	for _, p := range []*int64{&f.Comm.Messages, &f.Comm.Bytes, &f.Comm.Alltoalls,
		&f.Comm.AlltoallBytes, &f.Comm.Retransmits, &f.Comm.DeadlineEvents,
		&f.Comm.ChecksumErrors, &f.Comm.ParityBytes, &f.Comm.RecoveryBytes,
		&f.Comm.Reconstructions, &f.Comm.Degraded, &f.Comm.StreamChunks,
		&f.Comm.HiddenNs, &f.Comm.CreditStallNs} {
		*p = r.i64()
	}
	links := int(r.u32())
	if r.err == nil && (links < 0 || links > maxLinks) {
		return nil, fmt.Errorf("telemetry: frame claims %d links (limit %d)", links, maxLinks)
	}
	if r.err == nil && links > 0 {
		f.Links = make([]LinkStat, 0, links)
		for i := 0; i < links && r.err == nil; i++ {
			var l LinkStat
			l.Peer = int(int32(r.u32()))
			l.FramesSent = r.i64()
			l.BytesSent = r.i64()
			l.FramesReceived = r.i64()
			l.BytesReceived = r.i64()
			l.FlushNs = r.i64()
			l.CreditStallNs = r.i64()
			l.HeartbeatRTTNs = r.i64()
			l.SendErrors = r.i64()
			f.Links = append(f.Links, l)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if f.World <= 0 || f.World > maxWorld || f.Rank < 0 || f.Rank >= f.World {
		return nil, fmt.Errorf("telemetry: frame rank %d out of range for world %d", f.Rank, f.World)
	}
	return f, nil
}

// Unpack parses a frame from its []complex128 wire payload.
func Unpack(data []complex128) (*StatFrame, error) {
	b := make([]byte, len(data)*16)
	for i, v := range data {
		binary.LittleEndian.PutUint64(b[i*16:], math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(b[i*16+8:], math.Float64bits(imag(v)))
	}
	return UnpackBytes(b)
}
