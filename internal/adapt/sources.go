package adapt

import (
	"soifft/internal/instrument"
	"soifft/internal/telemetry"
)

// FromLocal derives a measurement from a single rank's recorder
// snapshot — the telemetry-off path. The snapshot should cover exactly
// the transforms being judged (callers diff or Reset between
// observations); window is the async window those transforms ran with.
func FromLocal(window int, snap instrument.Snapshot) Measurement {
	visible := snap.Stages[instrument.StageExchange].Wall
	hidden := snap.Comm.HiddenExchange
	convolve := snap.Stages[instrument.StageConvolve].Wall
	m := Measurement{
		Window:       window,
		OverlapRatio: snap.Comm.OverlapRatio(visible),
	}
	if visible > 0 {
		m.StallShare = clamp01(float64(snap.Comm.CreditStall) / float64(visible))
	}
	if convolve > 0 {
		m.WireComputeRatio = float64(hidden+visible) / float64(convolve)
	}
	return m
}

// FromCluster derives the fleet measurement from rank 0's aggregated
// snapshot: median overlap ratio, the worst single link's credit-stall
// share of its rank's visible exchange, and the median wire/compute
// ratio. A snapshot with dead or unreported ranks comes back Stale —
// the controller holds rather than steering on a partial view.
func FromCluster(s *telemetry.ClusterSnapshot) Measurement {
	if s == nil {
		return Measurement{Stale: true}
	}
	m := Measurement{
		Window:       s.Shape.Window,
		OverlapRatio: s.Fleet.OverlapRatioP50,
	}
	exchName := instrument.StageExchange.String()
	convName := instrument.StageConvolve.String()
	var ratios []float64
	for _, r := range s.Ranks {
		if !r.Reported || r.Stale {
			m.Stale = true
			continue
		}
		visible := r.StageNs[exchName]
		if visible > 0 {
			for _, l := range r.Links {
				if share := clamp01(float64(l.CreditStallNs) / float64(visible)); share > m.StallShare {
					m.StallShare = share
				}
			}
		}
		if conv := r.StageNs[convName]; conv > 0 {
			ratios = append(ratios, float64(r.Comm.HiddenNs+visible)/float64(conv))
		}
	}
	m.WireComputeRatio = median(ratios)
	return m
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	// insertion sort: fleet sizes are small
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[len(vals)/2]
}
