package adapt

import (
	"testing"
	"time"

	"soifft/internal/instrument"
	"soifft/internal/telemetry"
)

// syntheticSnapshot builds a 4-rank ClusterSnapshot with uniform stage
// times, then lets the caller distort it (throttle a link, stale a
// rank). Times: convolve 10ms/rank; exchange visible+hidden set by the
// scenario.
func syntheticSnapshot(visibleNs, hiddenNs, stallNs int64, mutate func(s *telemetry.ClusterSnapshot)) *telemetry.ClusterSnapshot {
	const world = 4
	s := &telemetry.ClusterSnapshot{World: world, Shape: telemetry.Shape{Window: 2}}
	overlap := 0.0
	if visibleNs+hiddenNs > 0 {
		overlap = float64(hiddenNs) / float64(visibleNs+hiddenNs)
	}
	for r := 0; r < world; r++ {
		rs := telemetry.RankStat{
			Rank:     r,
			Reported: true,
			StageNs: map[string]int64{
				instrument.StageConvolve.String(): 10e6,
				instrument.StageExchange.String(): visibleNs,
			},
			Comm:         telemetry.CommStats{HiddenNs: hiddenNs, CreditStallNs: stallNs},
			OverlapRatio: overlap,
			Links: []telemetry.LinkStat{
				{Peer: (r + 1) % world, CreditStallNs: stallNs / 3},
				{Peer: (r + 2) % world, CreditStallNs: stallNs / 3},
				{Peer: (r + 3) % world, CreditStallNs: stallNs / 3},
			},
		}
		s.Ranks = append(s.Ranks, rs)
	}
	s.Fleet.OverlapRatioP50 = overlap
	if mutate != nil {
		mutate(s)
	}
	return s
}

// TestPolicyTable is the satellite unit table: synthetic snapshots for
// the canonical cluster conditions mapped to the window the controller
// must pick next.
func TestPolicyTable(t *testing.T) {
	cases := []struct {
		name string
		snap *telemetry.ClusterSnapshot
		// pre positions the controller before the observation (0 = fresh
		// at the default prior of 2).
		pre        func(c *Controller)
		wantWindow int
		wantChange bool
	}{
		{
			// Wire outlasts compute 1.5× and most of it is visible: the
			// producer stalls on the window. Grow.
			name:       "wire-bound",
			snap:       syntheticSnapshot(12e6, 3e6, 9e6, nil),
			wantWindow: 3,
			wantChange: true,
		},
		{
			// Exchange is a sliver of convolve and fully hidden. A fresh
			// controller at the prior holds — nothing to fix.
			name:       "compute-bound holds at prior",
			snap:       syntheticSnapshot(100e3, 900e3, 0, nil),
			wantWindow: 2,
		},
		{
			// Same compute-bound fleet, but the controller had grown to 4:
			// relax back toward the prior.
			name: "compute-bound relaxes an inflated window",
			snap: syntheticSnapshot(100e3, 900e3, 0, nil),
			pre: func(c *Controller) {
				c.Observe(Measurement{Window: 2, OverlapRatio: 0.2, StallShare: 0.8, WireComputeRatio: 1.5}) // 2→3
				c.Observe(Measurement{Window: 3, OverlapRatio: 0.4, StallShare: 0.6, WireComputeRatio: 1.4}) // 3→4
			},
			wantWindow: 3,
			wantChange: true,
		},
		{
			// One throttled link: fleet overlap is mediocre and a single
			// link's credit-stall dominates its rank's visible exchange.
			name: "one throttled link",
			snap: syntheticSnapshot(8e6, 6e6, 0, func(s *telemetry.ClusterSnapshot) {
				s.Ranks[3].Links[0].CreditStallNs = 7e6 // link 3→0 eats the window
			}),
			wantWindow: 3,
			wantChange: true,
		},
		{
			// A dead rank makes the fleet view partial: hold, do not steer.
			name: "stale rank holds",
			snap: syntheticSnapshot(12e6, 3e6, 9e6, func(s *telemetry.ClusterSnapshot) {
				s.Ranks[2].Stale = true
			}),
			wantWindow: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New(Config{MaxWindow: 8})
			if tc.pre != nil {
				tc.pre(c)
			}
			m := FromCluster(tc.snap)
			d := c.Observe(m)
			t.Logf("measurement %+v → %s", m, d)
			if d.Window != tc.wantWindow {
				t.Errorf("window = %d, want %d (%s)", d.Window, tc.wantWindow, d.Reason)
			}
			if d.Changed != tc.wantChange {
				t.Errorf("changed = %v, want %v (%s)", d.Changed, tc.wantChange, d.Reason)
			}
		})
	}
}

// TestHysteresisHoldsSteady: after the controller acts, a wire/compute
// ratio (and overlap) oscillating ±10% around the acted-on point must
// not move the window — the dead band absorbs it.
func TestHysteresisHoldsSteady(t *testing.T) {
	c := New(Config{MaxWindow: 8})
	base := Measurement{Window: 2, OverlapRatio: 0.40, StallShare: 0.50, WireComputeRatio: 1.5}
	d := c.Observe(base)
	if !d.Changed {
		t.Fatalf("setup: expected the controller to act on %+v, got %s", base, d)
	}
	w := d.Window
	for i := 0; i < 20; i++ {
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		noisy := Measurement{
			Window:           w,
			OverlapRatio:     base.OverlapRatio + sign*0.04, // ±10% of 0.40
			StallShare:       base.StallShare + sign*0.05,   // ±10% of 0.50
			WireComputeRatio: base.WireComputeRatio * (1 + sign*0.10),
		}
		d = c.Observe(noisy)
		if d.Changed || d.Window != w {
			t.Fatalf("round %d: ±10%% noise moved the window: %s", i, d)
		}
	}
	// A real shift — overlap collapsing well past the band — must still
	// get through: hysteresis is a dead band, not a latch.
	d = c.Observe(Measurement{Window: w, OverlapRatio: 0.10, StallShare: 0.80, WireComputeRatio: 2.2})
	if !d.Changed || d.Window <= w {
		t.Fatalf("genuine regression did not grow the window: %s", d)
	}
}

// TestGrowthConvergesAtMax: persistent wire-bound pressure walks the
// window up and stops at MaxWindow without oscillating.
func TestGrowthConvergesAtMax(t *testing.T) {
	c := New(Config{MaxWindow: 4})
	overlaps := []float64{0.2, 0.4, 0.5, 0.5, 0.5}
	prev := c.Window()
	for i, ov := range overlaps {
		d := c.Observe(Measurement{Window: prev, OverlapRatio: ov, StallShare: 0.6, WireComputeRatio: 1.6})
		if d.Window < prev {
			t.Fatalf("round %d: window shrank under sustained pressure: %s", i, d)
		}
		if d.Window > 4 {
			t.Fatalf("round %d: window exceeded MaxWindow: %s", i, d)
		}
		prev = d.Window
	}
	if prev != 4 {
		t.Errorf("converged at %d, want MaxWindow 4", prev)
	}
}

func TestPriorWindow(t *testing.T) {
	cases := []struct {
		ratio    float64
		min, max int
		want     int
	}{
		{0, 1, 8, DefaultWindow}, // no model → hand-tuned default
		{0.3, 1, 8, 1},           // compute-bound → minimal window
		{1.0, 1, 8, 2},           // balanced → default-equivalent
		{1.5, 1, 8, 3},           // the e2e's throttle setting
		{4.0, 1, 4, 4},           // clamped to max
		{10, 2, 16, 16},          // deep wire-bound, clamped
		{0.5, 3, 8, 3},           // clamped to min
	}
	for _, tc := range cases {
		if got := PriorWindow(tc.ratio, tc.min, tc.max); got != tc.want {
			t.Errorf("PriorWindow(%v, %d, %d) = %d, want %d", tc.ratio, tc.min, tc.max, got, tc.want)
		}
	}
}

// TestFromLocal: the telemetry-off path extracts the same signals from
// a raw recorder snapshot.
func TestFromLocal(t *testing.T) {
	rec := instrument.New(instrument.LevelTimers)
	rec.ObserveStage(instrument.StageConvolve, 10*time.Millisecond, 0, 1, 0)
	rec.ObserveStage(instrument.StageExchange, 6*time.Millisecond, 0, 1, 0)
	rec.AddHiddenExchange(9 * time.Millisecond)
	rec.AddCreditStall(3 * time.Millisecond)
	m := FromLocal(2, rec.Snapshot())
	if m.Window != 2 {
		t.Errorf("window = %d, want 2", m.Window)
	}
	if got, want := m.OverlapRatio, 0.6; !close2(got, want) {
		t.Errorf("overlap = %v, want %v", got, want)
	}
	if got, want := m.StallShare, 0.5; !close2(got, want) {
		t.Errorf("stall share = %v, want %v", got, want)
	}
	if got, want := m.WireComputeRatio, 1.5; !close2(got, want) {
		t.Errorf("wire/compute = %v, want %v", got, want)
	}
}

// TestFromClusterStaleOnPartialView: nil snapshots and unreported ranks
// must surface as stale measurements.
func TestFromClusterStaleOnPartialView(t *testing.T) {
	if m := FromCluster(nil); !m.Stale {
		t.Error("nil snapshot not stale")
	}
	s := syntheticSnapshot(1e6, 1e6, 0, func(s *telemetry.ClusterSnapshot) {
		s.Ranks[1].Reported = false
	})
	if m := FromCluster(s); !m.Stale {
		t.Error("snapshot with an unreported rank not stale")
	}
}

func close2(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
