// Package adapt is the closed-loop controller for the streamed
// exchange's async window: the policy that turns the telemetry plane
// from explainer into actuator. PR 8 made the all-to-all stream behind
// convolution but left the window w a hand-tuned flag; PR 9's telemetry
// plane measures exactly the inputs a controller needs (overlap ratio,
// per-destination credit-stall, per-link wire time). This package maps
// those measurements to the next window.
//
// The controller is a pure, deterministic state machine — no clocks, no
// I/O — so the policy is unit-testable as a table of synthetic
// measurements. It follows the classic measure→decide→hold loop:
//
//   - the first transform runs at the model prior (PriorWindow of the
//     perfmodel-predicted wire/compute ratio, or DefaultWindow when no
//     calibrated model is available);
//   - after each streamed transform, Observe folds in the measured
//     overlap ratio, credit-stall share and wire/compute ratio and
//     decides: grow when the exchange hides poorly behind compute and
//     the window is what the producer is blocked on, shrink back toward
//     the prior when the run is compute-bound, hold otherwise;
//   - hysteresis: once the controller acts, it holds until the signals
//     move beyond a dead band relative to the measurement it acted on,
//     so a ±10% noisy link cannot thrash the schedule.
//
// Measurements come from either side of the observability stack: a
// single rank's local counters (FromLocal — works with telemetry off)
// or rank 0's aggregated ClusterSnapshot (FromCluster), which also
// carries staleness: a fleet view with dead or unreported ranks is not
// actionable, and the controller holds rather than steering on it.
package adapt

import (
	"fmt"
	"math"
)

// DefaultWindow is the uncalibrated prior: the hand-tuned default the
// streamed exchange shipped with before the controller existed.
const DefaultWindow = 2

// Config bounds and tunes one controller. The zero value is usable:
// every field below has a documented default applied by New.
type Config struct {
	// MinWindow and MaxWindow clamp every decision (defaults 1 and 8).
	// Callers running over a real transport should set MaxWindow to the
	// rank count R — in-flight chunks beyond one per destination stop
	// buying overlap and only buffer memory.
	MinWindow, MaxWindow int
	// Prior is the perfmodel-predicted wire/compute ratio of the run
	// (Model.WireComputeRatio); 0 means "no calibrated model", which
	// yields DefaultWindow as the starting point.
	Prior float64
	// DeadBand is the hysteresis width: after the controller acts, every
	// signal must move more than this (relative for ratios, absolute for
	// fractions) from the acted-on measurement before it acts again.
	// Default 0.15 — comfortably above a ±10% noisy link.
	DeadBand float64
	// LowOverlap is the overlap ratio below which the exchange is
	// considered poorly hidden (default 2/3, mirroring the explainer's
	// low-overlap threshold band).
	LowOverlap float64
	// StallShare is the credit-stall share of the visible exchange above
	// which the window — not the wire — is what the producer is blocked
	// on (default 0.2).
	StallShare float64
	// ComputeBound is the wire/compute ratio below which the run is
	// compute-dominated and an inflated window buys nothing (default 0.5).
	ComputeBound float64
}

func (c Config) withDefaults() Config {
	if c.MinWindow < 1 {
		c.MinWindow = 1
	}
	if c.MaxWindow < c.MinWindow {
		c.MaxWindow = c.MinWindow + 7
	}
	if c.DeadBand <= 0 {
		c.DeadBand = 0.15
	}
	if c.LowOverlap <= 0 {
		c.LowOverlap = 2.0 / 3
	}
	if c.StallShare <= 0 {
		c.StallShare = 0.2
	}
	if c.ComputeBound <= 0 {
		c.ComputeBound = 0.5
	}
	return c
}

// PriorWindow maps a predicted wire/compute ratio to the starting
// window: enough chunks in flight to cover the wire's lag behind
// compute (ceil(2ρ) — one tile on the wire and one being produced per
// unit of ratio), clamped to [min, max]. A ratio of 0 (no model) yields
// DefaultWindow.
func PriorWindow(ratio float64, min, max int) int {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	w := DefaultWindow
	if ratio > 0 {
		w = int(math.Ceil(2 * ratio))
	}
	if w < min {
		w = min
	}
	if w > max {
		w = max
	}
	return w
}

// Measurement is one completed streamed transform as the controller
// sees it — from a single rank's counters or aggregated over the fleet.
type Measurement struct {
	// Window is the async window the transform ran with.
	Window int
	// OverlapRatio is hidden/(hidden+visible) exchange time.
	OverlapRatio float64
	// StallShare is the credit-stall fraction of the visible exchange:
	// how much of the un-hidden time the producer spent blocked on a
	// full per-destination window (0 on transports whose sends complete
	// synchronously).
	StallShare float64
	// WireComputeRatio is (hidden+visible exchange)/convolve — above 1
	// the wire outlasts the compute it could hide behind.
	WireComputeRatio float64
	// Stale marks a measurement the controller must not steer on: a
	// cluster view with dead or unreported ranks, or counters known to
	// be frozen.
	Stale bool
}

// Decision is the controller's verdict for the next transform.
type Decision struct {
	// Window is the async window the next transform should run with.
	Window int
	// Prior is the model-prior window the controller started from —
	// BENCH_soi.json reports both, chosen vs model.
	Prior int
	// Changed reports whether this decision moved the window.
	Changed bool
	// Reason is the one-line explanation traced with the decision.
	Reason string
}

// String renders the decision the way trace instants and reports show it.
func (d Decision) String() string {
	return fmt.Sprintf("window=%d prior=%d changed=%v: %s", d.Window, d.Prior, d.Changed, d.Reason)
}

// Controller is the per-rank window policy state. It is NOT safe for
// concurrent use; callers serialize (core.Plan keeps one controller per
// rank behind a mutex).
type Controller struct {
	cfg   Config
	cur   int
	prior int

	acted   bool
	actedOn Measurement
	last    Decision
}

// New builds a controller starting at the model prior.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	w := PriorWindow(cfg.Prior, cfg.MinWindow, cfg.MaxWindow)
	c := &Controller{cfg: cfg, cur: w, prior: w}
	c.last = Decision{Window: w, Prior: w, Reason: "model prior"}
	return c
}

// Window is the window the next transform should run with.
func (c *Controller) Window() int { return c.cur }

// Decision returns the latest decision (the model prior before any
// Observe).
func (c *Controller) Decision() Decision { return c.last }

// Observe folds one measured transform in and returns the decision for
// the next. The policy, in priority order:
//
//  1. stale measurements hold — never steer on a fleet view with dead
//     or unreported ranks;
//  2. hysteresis: after an action, hold until the signals leave the
//     dead band around the acted-on measurement;
//  3. grow when overlap is low and either the producer measurably
//     stalls on the window or the run is wire-bound — more chunks in
//     flight is what hides more wire;
//  4. shrink back toward the prior when the run is compute-bound and
//     the window sits above it — in-flight chunks beyond the wire's
//     needs only hold buffers;
//  5. otherwise hold.
func (c *Controller) Observe(m Measurement) Decision {
	d := Decision{Window: c.cur, Prior: c.prior}
	switch {
	case m.Stale:
		d.Reason = "stale measurement; holding"
	case c.acted && c.withinDeadBand(m):
		d.Reason = fmt.Sprintf("within dead band of last action (overlap %.2f, stall %.2f); holding",
			m.OverlapRatio, m.StallShare)
	case m.OverlapRatio < c.cfg.LowOverlap &&
		(m.StallShare >= c.cfg.StallShare || m.WireComputeRatio >= 1) &&
		c.cur < c.cfg.MaxWindow:
		grown := c.cur + c.cur/2
		if grown == c.cur {
			grown++
		}
		if grown > c.cfg.MaxWindow {
			grown = c.cfg.MaxWindow
		}
		d.Window, d.Changed = grown, true
		d.Reason = fmt.Sprintf("overlap %.2f below %.2f with stall share %.2f (wire/compute %.2f): growing %d→%d",
			m.OverlapRatio, c.cfg.LowOverlap, m.StallShare, m.WireComputeRatio, c.cur, grown)
		c.act(m)
	case m.WireComputeRatio > 0 && m.WireComputeRatio < c.cfg.ComputeBound && c.cur > c.prior:
		shrunk := c.cur - 1
		d.Window, d.Changed = shrunk, true
		d.Reason = fmt.Sprintf("compute-bound (wire/compute %.2f): relaxing %d→%d toward prior %d",
			m.WireComputeRatio, c.cur, shrunk, c.prior)
		c.act(m)
	default:
		d.Reason = fmt.Sprintf("steady at window %d (overlap %.2f, stall %.2f, wire/compute %.2f)",
			c.cur, m.OverlapRatio, m.StallShare, m.WireComputeRatio)
	}
	c.cur = d.Window
	c.last = d
	return d
}

// act records the measurement a change was based on; the dead band is
// measured from here.
func (c *Controller) act(m Measurement) {
	c.acted = true
	c.actedOn = m
}

// withinDeadBand reports whether every signal is still within the
// hysteresis band around the measurement the controller last acted on:
// fractions (overlap, stall share) by absolute difference, the
// wire/compute ratio by relative difference.
func (c *Controller) withinDeadBand(m Measurement) bool {
	band := c.cfg.DeadBand
	if math.Abs(m.OverlapRatio-c.actedOn.OverlapRatio) > band {
		return false
	}
	if math.Abs(m.StallShare-c.actedOn.StallShare) > band {
		return false
	}
	ref := math.Abs(c.actedOn.WireComputeRatio)
	if ref < 1e-9 {
		return math.Abs(m.WireComputeRatio) <= band
	}
	return math.Abs(m.WireComputeRatio-c.actedOn.WireComputeRatio)/ref <= band
}
