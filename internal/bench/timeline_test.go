package bench

import (
	"strings"
	"testing"

	"soifft/internal/netsim"
)

func TestTimelineOutput(t *testing.T) {
	cfg := testConfig(t)
	var sb strings.Builder
	Timeline(&sb, cfg, netsim.Gordon(), 64)
	out := sb.String()
	for _, want := range []string{
		"Triple-all-to-all", "SOI (single all-to-all)",
		"all-to-all", "convolution+F_P", "segment FFTs", "speedup",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q", want)
		}
	}
	// The conventional chart must show three exchange bursts per rank:
	// each rank row alternates exchange/compute three times. Count 'rank'
	// rows: 4 per chart × 2 charts.
	if got := strings.Count(out, "rank "); got != 8 {
		t.Errorf("expected 8 rank rows, got %d", got)
	}
}

func TestTimelineSmallNodeCount(t *testing.T) {
	cfg := testConfig(t)
	var sb strings.Builder
	Timeline(&sb, cfg, netsim.Endeavor(), 2) // fewer lanes than the cap
	if strings.Count(sb.String(), "rank ") != 4 {
		t.Errorf("2-node timeline should show 2 lanes per chart:\n%s", sb.String())
	}
}
