package bench

import (
	"fmt"
	"math"
	"time"

	"soifft/internal/core"
	"soifft/internal/fft"
	"soifft/internal/netsim"
	"soifft/internal/perfmodel"
	"soifft/internal/signal"
	"soifft/internal/window"
)

// Config parameterizes the paper-scale experiments.
type Config struct {
	Cal           Calibration
	PointsPerNode int64 // weak-scaling load (paper: 2^28)
	Beta          float64
	B             int   // full-accuracy taps (paper: 72)
	Nodes         []int // node sweep for Figs 5/6/8
}

// DefaultConfig targets the paper's scale (2^28 points/node) with the
// paper's node compute rates, so the modeled figures reproduce the
// published shapes. Swap Cal for a Calibrate() result to project this Go
// implementation's own compute rates instead.
func DefaultConfig() (Config, error) {
	return Config{
		Cal:           PaperNodeRates(),
		PointsPerNode: 1 << 28,
		Beta:          0.25,
		B:             72,
		Nodes:         []int{1, 2, 4, 8, 16, 32, 64},
	}, nil
}

// gflops converts a modeled run time into the paper's reporting metric.
func gflops(pointsPerNode int64, n int, t time.Duration) float64 {
	if t <= 0 {
		return math.Inf(1)
	}
	total := float64(pointsPerNode) * float64(n)
	return 5 * total * math.Log2(total) / t.Seconds() / 1e9
}

// libraryTimes models the per-node-count execution times of SOI and the
// three comparator classes on a fabric.
func libraryTimes(cfg Config, fabric netsim.Fabric, n int) (soi, sixstep, slowLocal, binex time.Duration) {
	m := cfg.Cal.Model(fabric, cfg.PointsPerNode, cfg.Beta, cfg.B)
	soi = m.TSOI(n)
	sixstep = m.TStandard(n)
	// FFTE-class: same triple-all-to-all structure, ~20% slower local
	// kernels (constant-factor compute difference only).
	slowLocal = time.Duration(1.2*float64(m.Tfft(n))) + 3*m.Tmpi(n)
	// Binary-exchange class: log2(n) full-block pairwise exchanges plus a
	// final reorder all-to-all.
	binex = m.Tfft(n)
	bytes := cfg.PointsPerNode * 16
	stages := int(math.Round(math.Log2(float64(n))))
	for s := 0; s < stages; s++ {
		binex += fabric.P2PTime(bytes)
	}
	if n > 1 {
		binex += m.Tmpi(n)
	}
	return soi, sixstep, slowLocal, binex
}

// weakScalingTable renders one Fig 5/6/8-style table for a fabric.
func weakScalingTable(cfg Config, fabric netsim.Fabric, title string, includeAll bool) *Table {
	t := &Table{
		Title: title,
		Header: []string{"nodes", "SOI GF", "3xA2A GF", "slow-local GF",
			"binexch GF", "speedup", "comm share"},
	}
	if !includeAll {
		t.Header = []string{"nodes", "SOI GF", "3xA2A GF", "speedup", "comm share"}
	}
	m := cfg.Cal.Model(fabric, cfg.PointsPerNode, cfg.Beta, cfg.B)
	for _, n := range cfg.Nodes {
		soi, six, slow, bx := libraryTimes(cfg, fabric, n)
		bestNonSOI := six
		if includeAll {
			if slow < bestNonSOI {
				bestNonSOI = slow
			}
			if bx < bestNonSOI {
				bestNonSOI = bx
			}
		}
		commShare := float64(3*m.Tmpi(n)) / float64(six)
		row := []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", gflops(cfg.PointsPerNode, n, soi)),
			fmt.Sprintf("%.1f", gflops(cfg.PointsPerNode, n, six)),
		}
		if includeAll {
			row = append(row,
				fmt.Sprintf("%.1f", gflops(cfg.PointsPerNode, n, slow)),
				fmt.Sprintf("%.1f", gflops(cfg.PointsPerNode, n, bx)))
		}
		row = append(row,
			fmt.Sprintf("%.2fx", float64(bestNonSOI)/float64(soi)),
			fmt.Sprintf("%.0f%%", 100*commShare))
		t.AddRow(row...)
	}
	src := "paper-node compute rates (Table 1 + Section 7.4 efficiencies)"
	if cfg.Cal.MeasureN != 0 {
		src = fmt.Sprintf("compute rates measured on this machine at N=%d", cfg.Cal.MeasureN)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("weak scaling, %d complex points/node; %s; wire times from the %s model", cfg.PointsPerNode, src, fabric.Name()),
		"speedup = best non-SOI time / SOI time; comm share = 3·Tmpi/T3xA2A")
	return t
}

// Fig5 reproduces the Endeavor fat-tree comparison: SOI vs the triple
// all-to-all library class (MKL/FFTW/FFTE stand-ins) plus speedup.
func Fig5(cfg Config) *Table {
	return weakScalingTable(cfg, netsim.Endeavor(),
		"Fig 5: weak scaling on Endeavor (fat-tree InfiniBand)", true)
}

// Fig6 reproduces the Gordon torus comparison (paper: SOI vs MKL only),
// where bandwidth tightens beyond 32 nodes.
func Fig6(cfg Config) *Table {
	return weakScalingTable(cfg, netsim.Gordon(),
		"Fig 6: weak scaling on Gordon (3-D torus InfiniBand)", false)
}

// Fig8 reproduces the 10GbE experiment: communication-dominated, so the
// speedup approaches 3/(1+β) = 2.4.
func Fig8(cfg Config) *Table {
	t := weakScalingTable(cfg, netsim.TenGigE(),
		"Fig 8: weak scaling on Endeavor with 10GbE (communication-bound)", false)
	t.Notes = append(t.Notes,
		fmt.Sprintf("theory: speedup -> 3/(1+beta) = %.2f when communication dominates (paper observed 2.3-2.4)", 3/(1+cfg.Beta)))
	return t
}

// Fig7 reproduces the accuracy-performance tradeoff on 64-node Gordon:
// each rung of the accuracy ladder shrinks the convolution taps B,
// trading SNR for speed. SNR is measured by real transforms on this
// machine; run times are modeled at paper scale.
func Fig7(cfg Config) (*Table, error) {
	const nReal = 8192
	t := &Table{
		Title: "Fig 7: accuracy-performance tradeoff (64-node Gordon model)",
		Header: []string{"setting", "B", "kappa", "pred digits", "measured SNR dB",
			"GFLOPS", "speedup vs 3xA2A"},
	}
	fabric := netsim.Gordon()
	src := signal.Random(nReal, 77)
	ref := make([]complex128, nReal)
	plan, err := fft.CachedPlan(nReal)
	if err != nil {
		return nil, err
	}
	plan.Forward(ref, src)

	const n64 = 64
	mFull := cfg.Cal.Model(fabric, cfg.PointsPerNode, cfg.Beta, cfg.B)
	tStd := mFull.TStandard(n64)
	for _, pr := range window.Presets {
		d := window.ForPreset(pr, cfg.Beta)
		p := core.Params{N: nReal, P: 8, Mu: 5, Nu: 4, B: pr.B, Win: d.Window}
		cp, err := core.NewPlan(p)
		if err != nil {
			return nil, err
		}
		got := make([]complex128, nReal)
		if err := cp.Transform(got, src); err != nil {
			return nil, err
		}
		snr := signal.SNRdB(got, ref)
		m := cfg.Cal.Model(fabric, cfg.PointsPerNode, cfg.Beta, pr.B)
		tsoi := m.TSOI(n64)
		t.AddRow(
			pr.Name,
			fmt.Sprintf("%d", pr.B),
			fmt.Sprintf("%.1f", d.Metrics.Kappa),
			fmt.Sprintf("%.1f", d.Metrics.Digits()),
			fmt.Sprintf("%.0f", snr),
			fmt.Sprintf("%.1f", gflops(cfg.PointsPerNode, n64, tsoi)),
			fmt.Sprintf("%.2fx", float64(tStd)/float64(tsoi)),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("SNR measured on real %d-point transforms; times modeled at %d points/node on 64 nodes", nReal, cfg.PointsPerNode),
		"paper: full accuracy ~290 dB; at ~200 dB (10 digits) SOI exceeds 2x over MKL")
	return t, nil
}

// Fig9 reproduces the speedup projection on a hypothetical 3-D torus up
// to Jaguar scale, with the convolution-efficiency band c in [0.75, 1.25].
func Fig9(cfg Config) *Table {
	t := &Table{
		Title:  "Fig 9: speedup projection on a hypothetical 3-D torus (n = 16k^3)",
		Header: []string{"k", "nodes", "speedup c=0.75", "c=1.00", "c=1.25"},
	}
	m := cfg.Cal.Model(netsim.Gordon(), cfg.PointsPerNode, cfg.Beta, cfg.B)
	pts := m.Projection(perfmodel.TorusNodes(2, 10), []float64{0.75, 1.0, 1.25})
	for i, pt := range pts {
		t.AddRow(
			fmt.Sprintf("%d", i+2),
			fmt.Sprintf("%d", pt.Nodes),
			fmt.Sprintf("%.2f", pt.Speedups[0.75]),
			fmt.Sprintf("%.2f", pt.Speedups[1.0]),
			fmt.Sprintf("%.2f", pt.Speedups[1.25]),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("asymptote 3/(1+beta) = %.2f; paper projects ~2x at ~16K nodes (Jaguar scale)", 3/(1+cfg.Beta)))
	return t
}

// Table1 prints the evaluation platforms (paper Table 1).
func Table1() *Table {
	t := &Table{
		Title:  "Table 1: system configuration (modeled)",
		Header: []string{"system", "node", "fabric"},
	}
	for _, s := range netsim.Systems() {
		t.AddRow(s.Name,
			fmt.Sprintf("%dx%d cores @ %.2f GHz, %.0f DP GFLOPS", s.Sockets, s.CoresPer, s.ClockGHz, s.NodeGFLOPS),
			s.Fabric.Name())
	}
	t.Notes = append(t.Notes, "node parameters follow Table 1 (Xeon E5-2670); fabrics are the timing models in internal/netsim")
	return t
}

// SNRTable reproduces the Section 7.2 accuracy claim: full-accuracy SOI
// sits ~20 dB (one digit) below a conventional FFT.
func SNRTable(cfg Config) (*Table, error) {
	t := &Table{
		Title:  "Section 7.2: signal-to-noise ratio of SOI vs conventional FFT",
		Header: []string{"N", "conventional FFT SNR dB", "SOI(full) SNR dB", "gap dB"},
	}
	for _, n := range []int{1024, 2048, 4096} {
		src := signal.Random(n, int64(n))
		exact := make([]complex128, n)
		fft.Direct(exact, src)

		plan, err := fft.CachedPlan(n)
		if err != nil {
			return nil, err
		}
		conv := make([]complex128, n)
		plan.Forward(conv, src)
		snrFFT := signal.SNRdB(conv, exact)

		p := core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: cfg.B}
		cp, err := core.NewPlan(p)
		if err != nil {
			return nil, err
		}
		got := make([]complex128, n)
		if err := cp.Transform(got, src); err != nil {
			return nil, err
		}
		snrSOI := signal.SNRdB(got, exact)
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", snrFFT),
			fmt.Sprintf("%.0f", snrSOI),
			fmt.Sprintf("%.0f", snrFFT-snrSOI),
		)
	}
	t.Notes = append(t.Notes, "reference: O(N^2) direct DFT; paper reports ~310 dB (MKL) vs ~290 dB (SOI)")
	return t, nil
}
