package bench

import (
	"bytes"
	"strings"
	"testing"
)

func report(runs ...BenchRun) *BenchReport {
	return &BenchReport{Schema: "soibench/v1", Runs: runs}
}

func run(n int, ns int64) BenchRun {
	return BenchRun{N: n, Ranks: 4, Segments: 8, Taps: 72, NSPerOp: ns}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := report(run(1<<14, 1000), run(1<<16, 5000), run(1<<18, 20000))
	cur := report(run(1<<14, 1050), run(1<<16, 6000), run(1<<18, 18000))
	regs, err := Compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	// Only 1<<16 is >10% slower; 1<<14 is +5%, 1<<18 is faster.
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	r := regs[0]
	if r.N != 1<<16 || r.Base != 5000 || r.Current != 6000 {
		t.Errorf("wrong regression reported: %+v", r)
	}
	if r.Ratio < 1.19 || r.Ratio > 1.21 {
		t.Errorf("ratio = %v, want 1.2", r.Ratio)
	}
	if !strings.Contains(r.String(), "+20.0%") {
		t.Errorf("String() = %q, want +20.0%% delta", r.String())
	}
}

func TestCompareSortsWorstFirst(t *testing.T) {
	base := report(run(1, 1000), run(2, 1000), run(3, 1000))
	cur := report(run(1, 1200), run(2, 1900), run(3, 1500))
	regs, err := Compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 3 || regs[0].N != 2 || regs[1].N != 3 || regs[2].N != 1 {
		t.Fatalf("not sorted worst-first: %v", regs)
	}
}

func TestCompareIgnoresUnmatchedRuns(t *testing.T) {
	base := report(run(1<<14, 1000))
	// A new size in the current report must not trip the gate.
	cur := report(run(1<<14, 1000), run(1<<16, 999999))
	regs, err := Compare(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("unmatched run tripped the gate: %v", regs)
	}
	// Different configuration (ranks) of the same N must not match either.
	other := run(1<<14, 5000)
	other.Ranks = 8
	regs, err = Compare(base, report(run(1<<14, 1000), other), 0.10)
	if err != nil || len(regs) != 0 {
		t.Fatalf("config mismatch matched: %v %v", regs, err)
	}
}

func TestCompareErrors(t *testing.T) {
	base := report(run(1<<14, 1000))
	if _, err := Compare(base, report(run(1<<16, 1000)), 0.10); err == nil {
		t.Error("disjoint reports: want error")
	}
	if _, err := Compare(base, report(run(1<<14, 0)), 0.10); err == nil {
		t.Error("zero ns/op: want error")
	}
	if _, err := Compare(base, report(run(1<<14, 1000)), -0.5); err == nil {
		t.Error("negative tolerance: want error")
	}
}

func TestReadReportRoundTrip(t *testing.T) {
	rep := report(run(1<<14, 1234))
	rep.GoVersion = "go1.22"
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 1 || got.Runs[0].NSPerOp != 1234 || got.GoVersion != "go1.22" {
		t.Errorf("round trip mangled report: %+v", got)
	}

	if _, err := ReadReport(strings.NewReader(`{"schema":"soibench/v999"}`)); err == nil {
		t.Error("wrong schema: want error")
	}
	if _, err := ReadReport(strings.NewReader(`not json`)); err == nil {
		t.Error("bad JSON: want error")
	}
}

func TestCompareTableListsAllMatches(t *testing.T) {
	base := report(run(1<<14, 1000), run(1<<16, 5000))
	cur := report(run(1<<14, 900), run(1<<16, 5100))
	tab := CompareTable(base, cur)
	if len(tab.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(tab.Rows))
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"-10.0", "+2.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func orun(n int, overlap, adaptive float64) BenchRun {
	return BenchRun{N: n, Ranks: 4, Segments: 8, Taps: 72, NSPerOp: 1000,
		OverlapRatio: overlap, AdaptiveOverlapRatio: adaptive}
}

func TestCompareOverlapFlagsLostOverlap(t *testing.T) {
	base := report(orun(1<<14, 0.60, 0.70), orun(1<<16, 0.50, 0.55))
	cur := report(orun(1<<14, 0.60, 0.40), orun(1<<16, 0.48, 0.53))
	regs, err := CompareOverlap(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	// Only 1<<14's adaptive overlap fell >10% relatively (0.70 -> 0.40);
	// 1<<16's drops are within tolerance.
	if len(regs) != 1 {
		t.Fatalf("got %d overlap regressions, want 1: %v", len(regs), regs)
	}
	r := regs[0]
	if r.N != 1<<14 || r.Metric != "adaptive_overlap_ratio" || r.Base != 0.70 || r.Current != 0.40 {
		t.Errorf("wrong overlap regression: %+v", r)
	}
	if !strings.Contains(r.String(), "adaptive_overlap_ratio") {
		t.Errorf("String() = %q, want the metric named", r.String())
	}
}

func TestCompareOverlapSkipsNoiseFloor(t *testing.T) {
	// A compute-bound baseline (overlap below the gate floor) never
	// trips, even on a 100% relative collapse.
	base := report(orun(1<<14, 0.10, 0.05))
	cur := report(orun(1<<14, 0.0, 0.0))
	regs, err := CompareOverlap(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("noise-floor baseline tripped the gate: %v", regs)
	}
}

func TestCompareOverlapOneSided(t *testing.T) {
	// Improved overlap never fails, and unmatched runs are ignored.
	base := report(orun(1<<14, 0.50, 0.50))
	cur := report(orun(1<<14, 0.90, 0.95), orun(1<<16, 0.0, 0.0))
	regs, err := CompareOverlap(base, cur, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("unexpected overlap regressions: %v", regs)
	}
}
