package bench

import (
	"fmt"

	"soifft/internal/netsim"
	"soifft/internal/perfmodel"
)

// StrongScaling models the fixed-total-size regime the paper does not
// evaluate: per-node payloads shrink as nodes grow, shifting the balance
// from bandwidth (where SOI's advantage is 3/(1+β)) toward per-exchange
// latency (where it is the raw exchange-count ratio 3).
func StrongScaling(cfg Config, totalPoints int64) *Table {
	t := &Table{
		Title: fmt.Sprintf("Extension: strong scaling (fixed total %d points, Gordon model)", totalPoints),
		Header: []string{"nodes", "points/node", "speedup", "3xA2A comm ms",
			"SOI comm ms"},
	}
	m := perfmodel.StrongModel{
		Model:       cfg.Cal.Model(netsim.Gordon(), cfg.PointsPerNode, cfg.Beta, cfg.B),
		TotalPoints: totalPoints,
	}
	for _, n := range []int{8, 32, 128, 512, 2048, 8192} {
		perNode := totalPoints / int64(n)
		soiBytes := int64(float64(perNode*16) * (1 + cfg.Beta))
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", perNode),
			fmt.Sprintf("%.2fx", m.SpeedupStrong(n)),
			fmt.Sprintf("%.1f", (3*m.Fabric.AlltoallTime(n, perNode*16)).Seconds()*1000),
			fmt.Sprintf("%.1f", m.Fabric.AlltoallTime(n, soiBytes).Seconds()*1000),
		)
	}
	t.Notes = append(t.Notes,
		"beyond the paper (weak scaling only): in the latency tail SOI's edge is the exchange count 3, not 3/(1+beta)")
	return t
}

// ModernNodeRates approximates a current dual-socket HPC node: ~10 TF
// peak double precision, FFT at ~5% of peak (memory-bound), the regular
// SOI convolution at ~20%.
func ModernNodeRates() Calibration {
	const peak = 10e12
	return Calibration{FFTFlopsPerSec: 0.05 * peak, ConvFlopsPerSec: 0.20 * peak}
}

// ModernFabric reruns the weak-scaling comparison on a dragonfly
// (Slingshot-class) model, twice: with the paper's 2012 node rates and
// with modern node rates. The pairing matters — faster links alone
// erase SOI's advantage (compute dominates, and SOI pays ~2× compute),
// but compute grew faster than network bandwidth, so the self-consistent
// modern configuration restores the communication bottleneck and with it
// SOI's win.
func ModernFabric(cfg Config) *Table {
	fabric := netsim.Slingshot()
	t := &Table{
		Title: "Extension: weak scaling on a modern dragonfly fabric",
		Header: []string{"nodes", "node era", "SOI GF", "3xA2A GF", "speedup",
			"comm share"},
	}
	for _, era := range []struct {
		name string
		cal  Calibration
	}{
		{"2012 (330GF)", cfg.Cal},
		{"modern (10TF)", ModernNodeRates()},
	} {
		m := era.cal.Model(fabric, cfg.PointsPerNode, cfg.Beta, cfg.B)
		for _, n := range []int{8, 64} {
			commShare := float64(3*m.Tmpi(n)) / float64(m.TStandard(n))
			t.AddRow(
				fmt.Sprintf("%d", n),
				era.name,
				fmt.Sprintf("%.1f", gflops(cfg.PointsPerNode, n, m.TSOI(n))),
				fmt.Sprintf("%.1f", gflops(cfg.PointsPerNode, n, m.TStandard(n))),
				fmt.Sprintf("%.2fx", m.Speedup(n)),
				fmt.Sprintf("%.0f%%", 100*commShare),
			)
		}
	}
	t.Notes = append(t.Notes,
		"beyond the paper: faster links alone would erase SOI's edge (compute-bound), but nodes sped up more than networks — the communication bottleneck, and SOI's advantage, returns")
	return t
}
