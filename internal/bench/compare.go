package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Regression is one benchmark configuration whose end-to-end ns/op got
// slower than the gate tolerance allows.
type Regression struct {
	N       int     // transform size
	Ranks   int     // in-process ranks
	Base    int64   // baseline ns/op
	Current int64   // fresh ns/op
	Ratio   float64 // Current/Base, e.g. 1.17 = 17% slower
}

func (r Regression) String() string {
	return fmt.Sprintf("N=%d ranks=%d: %d ns/op -> %d ns/op (%+.1f%%)",
		r.N, r.Ranks, r.Base, r.Current, 100*(r.Ratio-1))
}

// ReadReport parses a BenchReport previously written by WriteJSON and
// rejects reports from a different schema generation.
func ReadReport(r io.Reader) (*BenchReport, error) {
	var rep BenchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench: parse report: %w", err)
	}
	if rep.Schema != "soibench/v1" {
		return nil, fmt.Errorf("bench: unsupported report schema %q", rep.Schema)
	}
	return &rep, nil
}

// Compare matches runs between a committed baseline and a fresh report by
// (N, Ranks, Segments, Taps) and returns every match whose ns/op exceeds
// the baseline by more than tol (0.10 = a 10%% regression gate). Runs
// present in only one report are ignored: adding a size must not trip the
// gate, and removing one is caught by requiring at least one match.
// Faster-than-baseline runs never fail; the gate is one-sided.
func Compare(baseline, current *BenchReport, tol float64) ([]Regression, error) {
	if tol < 0 {
		return nil, fmt.Errorf("bench: negative tolerance %v", tol)
	}
	type key struct{ n, ranks, segments, taps int }
	base := make(map[key]BenchRun, len(baseline.Runs))
	for _, r := range baseline.Runs {
		base[key{r.N, r.Ranks, r.Segments, r.Taps}] = r
	}
	var regs []Regression
	matched := 0
	for _, cur := range current.Runs {
		b, ok := base[key{cur.N, cur.Ranks, cur.Segments, cur.Taps}]
		if !ok {
			continue
		}
		matched++
		if b.NSPerOp <= 0 || cur.NSPerOp <= 0 {
			return nil, fmt.Errorf("bench: non-positive ns/op for N=%d", cur.N)
		}
		ratio := float64(cur.NSPerOp) / float64(b.NSPerOp)
		if ratio > 1+tol {
			regs = append(regs, Regression{
				N: cur.N, Ranks: cur.Ranks,
				Base: b.NSPerOp, Current: cur.NSPerOp, Ratio: ratio,
			})
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("bench: no runs in common between baseline (%d runs) and current (%d runs)",
			len(baseline.Runs), len(current.Runs))
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Ratio > regs[j].Ratio })
	return regs, nil
}

// OverlapRegression is one benchmark configuration whose streamed
// exchange hides a smaller fraction of the wire than the committed
// baseline did.
type OverlapRegression struct {
	N       int     // transform size
	Ranks   int     // in-process ranks
	Metric  string  // "overlap_ratio" or "adaptive_overlap_ratio"
	Base    float64 // baseline overlap ratio
	Current float64 // fresh overlap ratio
}

func (r OverlapRegression) String() string {
	return fmt.Sprintf("N=%d ranks=%d: %s %.3f -> %.3f (%.1f%% of the baseline overlap lost)",
		r.N, r.Ranks, r.Metric, r.Base, r.Current, 100*(1-r.Current/r.Base))
}

// minGatedOverlap is the smallest baseline overlap ratio the gate acts
// on: below it the exchange hides next to nothing anyway (a
// compute-bound setting, or an ungated runtime whose sends never
// stall), and a relative comparison would amplify noise into failures.
const minGatedOverlap = 0.15

// CompareOverlap matches runs like Compare and returns every match
// whose overlap ratio fell more than tol below the baseline's,
// relatively (tol 0.10 = the streamed exchange now hides less than 90%
// of the wire share it used to). Both the fixed-window overlap_ratio
// and the adaptive controller's adaptive_overlap_ratio are gated, each
// only when the baseline run recorded it above minGatedOverlap — the
// wire-bound settings where overlap is the point. One-sided, like the
// ns/op gate; runs present on one side only are ignored.
func CompareOverlap(baseline, current *BenchReport, tol float64) ([]OverlapRegression, error) {
	if tol < 0 {
		return nil, fmt.Errorf("bench: negative tolerance %v", tol)
	}
	type key struct{ n, ranks, segments, taps int }
	base := make(map[key]BenchRun, len(baseline.Runs))
	for _, r := range baseline.Runs {
		base[key{r.N, r.Ranks, r.Segments, r.Taps}] = r
	}
	var regs []OverlapRegression
	for _, cur := range current.Runs {
		b, ok := base[key{cur.N, cur.Ranks, cur.Segments, cur.Taps}]
		if !ok {
			continue
		}
		for _, m := range []struct {
			name      string
			base, cur float64
		}{
			{"overlap_ratio", b.OverlapRatio, cur.OverlapRatio},
			{"adaptive_overlap_ratio", b.AdaptiveOverlapRatio, cur.AdaptiveOverlapRatio},
		} {
			if m.base < minGatedOverlap {
				continue
			}
			if m.cur < m.base*(1-tol) {
				regs = append(regs, OverlapRegression{
					N: cur.N, Ranks: cur.Ranks, Metric: m.name,
					Base: m.base, Current: m.cur,
				})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool {
		return regs[i].Current/regs[i].Base < regs[j].Current/regs[j].Base
	})
	return regs, nil
}

// CompareTable renders a human-readable side-by-side of every matched
// run, regression or not, for the CI log.
func CompareTable(baseline, current *BenchReport) *Table {
	t := &Table{
		Title:  "benchmark vs committed baseline",
		Header: []string{"N", "ranks", "baseline ns/op", "current ns/op", "delta %"},
	}
	type key struct{ n, ranks, segments, taps int }
	base := make(map[key]BenchRun, len(baseline.Runs))
	for _, r := range baseline.Runs {
		base[key{r.N, r.Ranks, r.Segments, r.Taps}] = r
	}
	for _, cur := range current.Runs {
		b, ok := base[key{cur.N, cur.Ranks, cur.Segments, cur.Taps}]
		if !ok || b.NSPerOp <= 0 {
			continue
		}
		delta := 100 * (float64(cur.NSPerOp)/float64(b.NSPerOp) - 1)
		t.AddRow(
			fmt.Sprintf("%d", cur.N),
			fmt.Sprintf("%d", cur.Ranks),
			fmt.Sprintf("%d", b.NSPerOp),
			fmt.Sprintf("%d", cur.NSPerOp),
			fmt.Sprintf("%+.1f", delta),
		)
	}
	return t
}
