package bench

import (
	"fmt"
	"time"

	"soifft/internal/conv"
	"soifft/internal/core"
	"soifft/internal/fft"
	"soifft/internal/mpi"
	"soifft/internal/netsim"
	"soifft/internal/signal"
)

// AppConvolution runs the distributed-convolution application for real
// (correctness + exchange counts) and prices the steady-state exchange
// ladder on the paper's fabrics: per convolution with a cached filter
// spectrum, SOI needs 2 all-to-alls of (1+β)N, the out-of-order
// transform pair 4 of N, and the conventional in-order pair 6 of N.
func AppConvolution(cfg Config, n, ranks int) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Application: distributed cyclic convolution (measured at N=%d, R=%d)", n, ranks),
		Header: []string{"strategy", "a2a/conv", "rel err", "wall ms",
			"modeled Gordon64 comm", "modeled 10GbE64 comm"},
	}
	nLocal := n / ranks
	x := signal.Random(n, 1)
	h := signal.Random(n, 2)
	spec, err := fft.Forward(h)
	if err != nil {
		return nil, err
	}
	ref, err := fft.Forward(x)
	if err != nil {
		return nil, err
	}
	for i := range ref {
		ref[i] *= spec[i]
	}
	want, err := fft.Inverse(ref)
	if err != nil {
		return nil, err
	}

	bytesPerNode := cfg.PointsPerNode * 16
	gordon, tenge := netsim.Gordon(), netsim.TenGigE()
	commCost := func(exchanges int, oversampled bool) (time.Duration, time.Duration) {
		b := bytesPerNode
		if oversampled {
			b = int64(float64(bytesPerNode) * (1 + cfg.Beta))
		}
		return time.Duration(exchanges) * gordon.AlltoallTime(64, b),
			time.Duration(exchanges) * tenge.AlltoallTime(64, b)
	}

	// SOI strategy.
	pl, err := core.NewPlan(core.Params{N: n, P: max(8, ranks), Mu: 5, Nu: 4, B: 48})
	if err != nil {
		return nil, err
	}
	got := make([]complex128, n)
	w, err := mpi.NewWorld(ranks)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	err = w.Run(func(c *mpi.Comm) error {
		return conv.SOI(c, pl, got[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			x[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			spec[c.Rank()*nLocal:(c.Rank()+1)*nLocal])
	})
	if err != nil {
		return nil, err
	}
	gA, eA := commCost(2, true)
	t.AddRow("SOI (2 a2a)", fmt.Sprintf("%d", w.Stats().Alltoalls),
		fmt.Sprintf("%.1e", signal.RelErrL2(got, want)),
		fmt.Sprintf("%.1f", time.Since(t0).Seconds()*1000),
		fmt.Sprintf("%.2fs", gA.Seconds()), fmt.Sprintf("%.2fs", eA.Seconds()))

	// Out-of-order strategy.
	o, err := conv.PlanOutOfOrder(n, ranks)
	if err != nil {
		return nil, err
	}
	hsT := make([][]complex128, ranks)
	wPre, _ := mpi.NewWorld(ranks)
	if err := wPre.Run(func(c *mpi.Comm) error {
		hs, err := o.Forward(c, h[c.Rank()*nLocal:(c.Rank()+1)*nLocal])
		hsT[c.Rank()] = hs
		return err
	}); err != nil {
		return nil, err
	}
	w2, _ := mpi.NewWorld(ranks)
	t0 = time.Now()
	err = w2.Run(func(c *mpi.Comm) error {
		return o.Convolve(c, got[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			x[c.Rank()*nLocal:(c.Rank()+1)*nLocal], hsT[c.Rank()])
	})
	if err != nil {
		return nil, err
	}
	gB, eB := commCost(4, false)
	t.AddRow("out-of-order (4 a2a)", fmt.Sprintf("%d", w2.Stats().Alltoalls),
		fmt.Sprintf("%.1e", signal.RelErrL2(got, want)),
		fmt.Sprintf("%.1f", time.Since(t0).Seconds()*1000),
		fmt.Sprintf("%.2fs", gB.Seconds()), fmt.Sprintf("%.2fs", eB.Seconds()))

	// In-order strategy.
	w3, _ := mpi.NewWorld(ranks)
	t0 = time.Now()
	err = w3.Run(func(c *mpi.Comm) error {
		return conv.InOrder(c, got[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			x[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			spec[c.Rank()*nLocal:(c.Rank()+1)*nLocal], n)
	})
	if err != nil {
		return nil, err
	}
	gC, eC := commCost(6, false)
	t.AddRow("in-order (6 a2a)", fmt.Sprintf("%d", w3.Stats().Alltoalls),
		fmt.Sprintf("%.1e", signal.RelErrL2(got, want)),
		fmt.Sprintf("%.1f", time.Since(t0).Seconds()*1000),
		fmt.Sprintf("%.2fs", gC.Seconds()), fmt.Sprintf("%.2fs", eC.Seconds()))

	t.Notes = append(t.Notes,
		"steady-state filtering with cached filter spectrum; modeled comm at 64 nodes, paper weak-scaling load",
		"paper intro: out-of-order data (e.g. convolution) reduces transposes; SOI compounds the saving")
	return t, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
