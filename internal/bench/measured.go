package bench

import (
	"context"
	"fmt"
	"time"

	"soifft/internal/baseline"
	"soifft/internal/core"
	"soifft/internal/fft"
	"soifft/internal/mpi"
	"soifft/internal/signal"
)

// MeasuredRun is one real end-to-end distributed execution on the
// in-process runtime.
type MeasuredRun struct {
	Algorithm     string
	Ranks         int
	N             int
	Wall          time.Duration
	Alltoalls     int64
	AlltoallMB    float64
	TotalMB       float64
	RelErrVsFFT   float64
	SegmentsPerRk int
}

// RunSOIMeasured executes the distributed SOI transform for real and
// checks it against the conventional FFT.
func RunSOIMeasured(n, ranks, segments, b int, seed int64) (MeasuredRun, error) {
	res := MeasuredRun{Algorithm: "SOI", Ranks: ranks, N: n, SegmentsPerRk: segments / ranks}
	p := core.Params{N: n, P: segments, Mu: 5, Nu: 4, B: b}
	pl, err := core.NewPlan(p)
	if err != nil {
		return res, err
	}
	if err := pl.ValidateDistributed(ranks); err != nil {
		return res, err
	}
	src := signal.Random(n, seed)
	got := make([]complex128, n)
	w, err := mpi.NewWorld(ranks)
	if err != nil {
		return res, err
	}
	nLocal := n / ranks
	t0 := time.Now()
	err = w.Run(func(c *mpi.Comm) error {
		_, err := pl.RunDistributed(context.Background(), c,
			got[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			src[c.Rank()*nLocal:(c.Rank()+1)*nLocal])
		return err
	})
	res.Wall = time.Since(t0)
	if err != nil {
		return res, err
	}
	fillMeasured(&res, w.Stats(), got, src)
	return res, nil
}

// RunBaselineMeasured executes a triple-all-to-all (or binary-exchange)
// baseline for real.
func RunBaselineMeasured(alg baseline.Algorithm, n, ranks int, seed int64) (MeasuredRun, error) {
	res := MeasuredRun{Algorithm: alg.Name(), Ranks: ranks, N: n}
	src := signal.Random(n, seed)
	got := make([]complex128, n)
	w, err := mpi.NewWorld(ranks)
	if err != nil {
		return res, err
	}
	nLocal := n / ranks
	t0 := time.Now()
	err = w.Run(func(c *mpi.Comm) error {
		_, err := alg.Transform(c,
			got[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			src[c.Rank()*nLocal:(c.Rank()+1)*nLocal], n)
		return err
	})
	res.Wall = time.Since(t0)
	if err != nil {
		return res, err
	}
	fillMeasured(&res, w.Stats(), got, src)
	return res, nil
}

func fillMeasured(res *MeasuredRun, st mpi.Stats, got, src []complex128) {
	res.Alltoalls = st.Alltoalls
	res.AlltoallMB = float64(st.AlltoallBytes) / 1e6
	res.TotalMB = float64(st.P2PBytes) / 1e6
	ref, err := fft.Forward(src)
	if err == nil {
		res.RelErrVsFFT = signal.RelErrL2(got, ref)
	}
}

// MeasuredWeakScaling runs every algorithm for real at laptop scale
// (pointsPerRank complex points per rank) and reports wall time, traffic
// and accuracy. This is the ground-truth companion to the modeled
// figures: the communication *counts* here are exact.
func MeasuredWeakScaling(pointsPerRank int, ranks []int, b int) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Measured weak scaling (in-process ranks, %d points/rank)", pointsPerRank),
		Header: []string{"ranks", "N", "algorithm", "wall ms", "a2a count",
			"a2a MB", "wire MB", "rel err vs FFT"},
	}
	algs := []baseline.Algorithm{
		baseline.SixStep{},
		baseline.SixStep{Split: baseline.SplitTall},
		baseline.BinaryExchange{},
	}
	for _, r := range ranks {
		n := pointsPerRank * r
		segments := 8
		if segments < r {
			segments = r
		}
		soi, err := RunSOIMeasured(n, r, segments, b, int64(n))
		if err != nil {
			return nil, fmt.Errorf("soi R=%d: %w", r, err)
		}
		addMeasuredRow(t, soi)
		for _, alg := range algs {
			run, err := RunBaselineMeasured(alg, n, r, int64(n))
			if err != nil {
				return nil, fmt.Errorf("%s R=%d: %w", alg.Name(), r, err)
			}
			addMeasuredRow(t, run)
		}
	}
	t.Notes = append(t.Notes,
		"in-process channels carry no real wire cost; counts and volumes are what a cluster would see",
		"SOI: 1 all-to-all of (1+beta)N; six-step: 3 of N; binexchange: log2(R) block exchanges + 1 reorder")
	return t, nil
}

func addMeasuredRow(t *Table, r MeasuredRun) {
	t.AddRow(
		fmt.Sprintf("%d", r.Ranks),
		fmt.Sprintf("%d", r.N),
		r.Algorithm,
		fmt.Sprintf("%.1f", float64(r.Wall.Microseconds())/1000),
		fmt.Sprintf("%d", r.Alltoalls),
		fmt.Sprintf("%.1f", r.AlltoallMB),
		fmt.Sprintf("%.1f", r.TotalMB),
		fmt.Sprintf("%.1e", r.RelErrVsFFT),
	)
}
