package bench

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"runtime"
	"time"

	"soifft/internal/adapt"
	"soifft/internal/core"
	"soifft/internal/instrument"
	"soifft/internal/mpi"
	"soifft/internal/netsim"
	"soifft/internal/signal"
	"soifft/internal/trace"
)

// BenchStage is one pipeline stage's share of a measured run.
type BenchStage struct {
	Stage  string  `json:"stage"`
	Calls  int64   `json:"calls"`
	WallNS int64   `json:"wall_ns"`
	GFlops float64 `json:"gflops_per_sec"`
}

// BenchRun is one measured transform size: end-to-end ns/op, the
// per-stage breakdown, and the wire volume the instrumented comm layer
// counted.
type BenchRun struct {
	N             int          `json:"n"`
	Ranks         int          `json:"ranks"`
	Segments      int          `json:"segments"`
	Taps          int          `json:"taps"`
	NSPerOp       int64        `json:"ns_per_op"`
	GFlopsPerSec  float64      `json:"gflops_per_sec"`
	Stages        []BenchStage `json:"stages"`
	CommBytes     int64        `json:"comm_bytes"`
	AlltoallBytes int64        `json:"alltoall_bytes"`

	// AsyncWindow, OverlapRatio and CreditStallNs come from one extra
	// instrumented run with the streamed exchange: the window used, the
	// fraction of total exchange time hidden behind compute (0 when
	// nothing was hidden), and the time streamed sends spent blocked on
	// a full per-destination credit window (always 0 on the in-process
	// runtime; nonzero on TCP mesh runs with a slow link). Additive
	// fields; the regression gate ignores them.
	AsyncWindow   int     `json:"async_window,omitempty"`
	OverlapRatio  float64 `json:"overlap_ratio"`
	CreditStallNs int64   `json:"credit_stall_ns"`

	// Window, ModelWindow and AdaptiveOverlapRatio come from the
	// closed-loop pass: a short burst of transforms with the adaptive
	// controller armed, seeded from the calibrated perfmodel's
	// wire/compute ratio on the reference fabric. Window is where the
	// controller settled, ModelWindow the prior it started from —
	// chosen-vs-model in one row — and AdaptiveOverlapRatio the overlap
	// the settled window achieved (the overlap gate's metric).
	Window               int     `json:"window,omitempty"`
	ModelWindow          int     `json:"model_window,omitempty"`
	AdaptiveOverlapRatio float64 `json:"adaptive_overlap_ratio,omitempty"`
}

// BenchReport is the machine-readable benchmark summary soibench
// -bench-json writes (BENCH_soi.json): enough for a CI job or a plot
// script to track regressions without scraping text tables.
type BenchReport struct {
	Schema    string     `json:"schema"`
	GoVersion string     `json:"go_version"`
	GOOS      string     `json:"goos"`
	GOARCH    string     `json:"goarch"`
	MaxProcs  int        `json:"gomaxprocs"`
	Runs      []BenchRun `json:"runs"`
}

// JSONReport measures one distributed transform per size in ns (after
// an untimed warm-up) with stage timers armed and collects the results.
// The whole-transform GFlop/s uses the conventional 5·N·log2(N) flop
// count, so the figure is comparable across plans and against dense FFT
// libraries.
func JSONReport(ns []int, ranks, segments, taps int) (*BenchReport, error) {
	rep := &BenchReport{
		Schema:    "soibench/v1",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
	}
	for _, n := range ns {
		run, err := measureRun(n, ranks, segments, taps)
		if err != nil {
			return nil, err
		}
		rep.Runs = append(rep.Runs, run)
	}
	return rep, nil
}

func measureRun(n, ranks, segments, taps int) (BenchRun, error) {
	run := BenchRun{N: n, Ranks: ranks, Segments: segments, Taps: taps}
	pl, err := core.NewPlan(core.Params{N: n, P: segments, Mu: 5, Nu: 4, B: taps})
	if err != nil {
		return run, err
	}
	if err := pl.ValidateDistributed(ranks); err != nil {
		return run, err
	}
	src := signal.Random(n, int64(n))
	dst := make([]complex128, n)
	nLocal := n / ranks
	oneRun := func(opts ...core.DistOption) error {
		w, err := mpi.NewWorld(ranks)
		if err != nil {
			return err
		}
		return w.Run(func(c *mpi.Comm) error {
			_, err := pl.RunDistributed(context.Background(), c,
				dst[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
				src[c.Rank()*nLocal:(c.Rank()+1)*nLocal], opts...)
			return err
		})
	}
	if err := oneRun(); err != nil { // warm-up: plan twiddles, page-in
		return run, err
	}
	// Best-of-3: the regression gate compares ns/op across CI runners, so
	// we report the minimum — the run least disturbed by scheduler noise —
	// rather than a single-shot sample.
	var best time.Duration
	for rep := 0; rep < 3; rep++ {
		t0 := time.Now()
		if err := oneRun(); err != nil {
			return run, err
		}
		if elapsed := time.Since(t0); rep == 0 || elapsed < best {
			best = elapsed
		}
	}
	run.NSPerOp = best.Nanoseconds()
	flops := 5 * float64(n) * math.Log2(float64(n))
	run.GFlopsPerSec = flops / float64(best.Nanoseconds())
	// One extra instrumented run for the per-stage breakdown, kept out of
	// the timed loop so the timers never skew the gated number.
	pl.SetRecorder(instrument.New(instrument.LevelTimers))
	if err := oneRun(); err != nil {
		return run, err
	}
	snap := pl.Recorder().Snapshot()
	for _, st := range snap.Stages {
		if st.Calls == 0 {
			continue
		}
		run.Stages = append(run.Stages, BenchStage{
			Stage:  st.Stage.String(),
			Calls:  st.Calls,
			WallNS: st.Wall.Nanoseconds(),
			GFlops: st.GFlopsPerSec(),
		})
	}
	run.CommBytes = snap.Comm.Bytes
	run.AlltoallBytes = snap.Comm.AlltoallBytes
	// One streamed-exchange run on its own recorder: the overlap ratio
	// (hidden wire time over total exchange time) lands in the artifact
	// next to the blocking breakdown, so CI tracks how much of the
	// exchange the async pipeline hides at each size.
	// Best-of-3, like the ns/op number: the overlap gate compares ratios
	// across runners, and a single small-N run can lose half its hidden
	// span to one scheduler burst.
	const asyncWindow = 2
	run.AsyncWindow = asyncWindow
	for rep := 0; rep < 3; rep++ {
		asyncRec := instrument.New(instrument.LevelTimers)
		if err := oneRun(core.WithAsyncWindow(asyncWindow), core.WithRecorder(asyncRec)); err != nil {
			return run, err
		}
		asnap := asyncRec.Snapshot()
		if ratio := asnap.Comm.OverlapRatio(asnap.Stages[instrument.StageExchange].Wall); rep == 0 || ratio > run.OverlapRatio {
			run.OverlapRatio = ratio
			run.CreditStallNs = int64(asnap.Comm.CreditStall)
		}
	}
	// Closed-loop pass: seed the plan's window controller with the
	// calibrated perfmodel's wire/compute ratio (10GbE is the reference
	// fabric — the wire-bound end of the modeled systems, where the
	// window matters), then let a short burst of transforms adapt it.
	// The artifact records where the controller settled next to the
	// model's prior, and the overlap the settled window achieved.
	cal, err := Calibrate(n)
	if err != nil {
		return run, err
	}
	prior := cal.Model(netsim.TenGigE(), int64(n/ranks), 0.25, taps).WireComputeRatio(ranks)
	pl.SetWindowPrior(prior)
	maxW := ranks
	if maxW < 2 {
		maxW = 2
	}
	run.ModelWindow = adapt.PriorWindow(prior, 1, maxW)
	adaptRec := instrument.New(instrument.LevelTimers)
	for i := 0; i < 4; i++ {
		if err := oneRun(core.WithAdaptiveWindow(), core.WithRecorder(adaptRec)); err != nil {
			return run, err
		}
	}
	if d, ok := pl.AdaptiveDecision(0); ok {
		run.Window = d.Window
	}
	dsnap := adaptRec.Snapshot()
	run.AdaptiveOverlapRatio = dsnap.Comm.OverlapRatio(dsnap.Stages[instrument.StageExchange].Wall)
	return run, nil
}

// WriteJSON renders the report as indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// TracedRun executes one distributed transform on an in-process world
// with event tracing armed and writes the Perfetto timeline to w: every
// rank's halo/convolve/exchange/segment_fft spans under one trace ID,
// one track per stage per rank. This is the quickest way to get a trace
// to open in ui.perfetto.dev without orchestrating soinode processes.
func TracedRun(w io.Writer, n, ranks, segments, taps int) error {
	pl, err := core.NewPlan(core.Params{N: n, P: segments, Mu: 5, Nu: 4, B: taps})
	if err != nil {
		return err
	}
	if err := pl.ValidateDistributed(ranks); err != nil {
		return err
	}
	tr := trace.New(0)
	ctx := trace.WithTracer(trace.WithID(context.Background(), trace.NewID()), tr)
	src := signal.Random(n, int64(n))
	dst := make([]complex128, n)
	nLocal := n / ranks
	world, err := mpi.NewWorld(ranks)
	if err != nil {
		return err
	}
	err = world.Run(func(c *mpi.Comm) error {
		_, err := pl.RunDistributed(ctx, c,
			dst[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			src[c.Rank()*nLocal:(c.Rank()+1)*nLocal])
		return err
	})
	if err != nil {
		return err
	}
	return tr.WritePerfetto(w)
}
