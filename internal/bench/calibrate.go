package bench

import (
	"math"
	"time"

	"soifft/internal/core"
	"soifft/internal/fft"
	"soifft/internal/netsim"
	"soifft/internal/perfmodel"
	"soifft/internal/signal"
)

// Calibration holds measured single-node compute rates of this build on
// this machine. The weak-scaling figures combine these with the
// interconnect models to price paper-scale runs (the paper's own
// Section 7.4 methodology).
type Calibration struct {
	// FFTFlopsPerSec is the sustained rate of the node-local FFT, using
	// the 5·n·log2(n) convention.
	FFTFlopsPerSec float64
	// ConvFlopsPerSec is the sustained rate of the SOI convolution
	// (8 real flops per complex multiply-add).
	ConvFlopsPerSec float64
	// MeasureN is the transform size the rates were measured at.
	MeasureN int
}

// PaperNodeRates returns the compute rates of the paper's evaluation
// node (Table 1: dual Xeon E5-2670, 330 DP GFLOPS peak) at the
// efficiencies the paper reports in Section 7.4: FFT "often hovering
// around 10% of peak" and convolution "about 40% of peak". Figures that
// reproduce the paper's shapes use these rates; Calibrate supplies this
// machine's real Go rates as the alternative.
func PaperNodeRates() Calibration {
	const peak = 330e9
	return Calibration{
		FFTFlopsPerSec:  0.10 * peak,
		ConvFlopsPerSec: 0.40 * peak,
		MeasureN:        0, // marks paper-derived rates
	}
}

// Calibrate measures both compute rates at size n (use ~2^20 for stable
// numbers in about a second).
func Calibrate(n int) (Calibration, error) {
	cal := Calibration{MeasureN: n}

	// FFT rate: best of three forward transforms.
	plan, err := fft.CachedPlan(n)
	if err != nil {
		return cal, err
	}
	src := signal.Random(n, 42)
	dst := make([]complex128, n)
	best := time.Duration(math.MaxInt64)
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		plan.Forward(dst, src)
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	cal.FFTFlopsPerSec = 5 * float64(n) * math.Log2(float64(n)) / best.Seconds()

	// Convolution rate: run the real SOI convolution kernel over the
	// whole weight structure.
	p := core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: 72}
	cp, err := core.NewPlan(p)
	if err != nil {
		return cal, err
	}
	ext := make([]complex128, n+cp.HaloLen())
	copy(ext, src)
	copy(ext[n:], src[:cp.HaloLen()])
	out := make([]complex128, cp.NPrime())
	best = time.Duration(math.MaxInt64)
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		cp.ConvolveRange(out, ext, 0, cp.MPrime(), 0)
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	cal.ConvFlopsPerSec = float64(cp.ConvFlops()) / best.Seconds()
	return cal, nil
}

// TfftSingle returns the modeled single-node FFT time for points complex
// points at the calibrated rate.
func (c Calibration) TfftSingle(points int64) time.Duration {
	fl := 5 * float64(points) * math.Log2(float64(points))
	return time.Duration(fl / c.FFTFlopsPerSec * float64(time.Second))
}

// Tconv returns the modeled per-node convolution time for the given
// per-node points, taps and oversampling.
func (c Calibration) Tconv(points int64, b int, beta float64) time.Duration {
	fl := float64(points) * (1 + beta) * float64(b) * 8
	return time.Duration(fl / c.ConvFlopsPerSec * float64(time.Second))
}

// Model assembles the Section 7.4 execution-time model for a fabric at
// the given weak-scaling load.
func (c Calibration) Model(fabric netsim.Fabric, pointsPerNode int64, beta float64, b int) perfmodel.Model {
	m := perfmodel.Model{
		PointsPerNode: pointsPerNode,
		Tconv:         c.Tconv(pointsPerNode, b, beta),
		Beta:          beta,
		C:             1.0,
		Fabric:        fabric,
	}
	m.CalibrateAlpha(c.TfftSingle(pointsPerNode))
	return m
}
