package bench

import (
	"context"
	"fmt"
	"io"
	"time"

	"soifft/internal/core"
	"soifft/internal/instrument"
	"soifft/internal/mpi"
	"soifft/internal/perfmodel"
	"soifft/internal/signal"
)

// ObservabilityReport runs one real distributed SOI transform with stage
// timers armed and renders what the instrumentation saw: per-stage wall
// time, occupancy and achieved compute rate, plus the measured all-to-all
// volume against the analytic (1+β)N exchange and against a conventional
// triple-all-to-all FFT — the paper's 3/(1+β) communication prediction,
// checked on live counters instead of a model.
func ObservabilityReport(n, ranks, segments, b int) (*Table, error) {
	p := core.Params{N: n, P: segments, Mu: 5, Nu: 4, B: b}
	pl, err := core.NewPlan(p)
	if err != nil {
		return nil, err
	}
	if err := pl.ValidateDistributed(ranks); err != nil {
		return nil, err
	}
	pl.SetRecorder(instrument.New(instrument.LevelTimers))

	src := signal.Random(n, int64(n))
	got := make([]complex128, n)
	w, err := mpi.NewWorld(ranks)
	if err != nil {
		return nil, err
	}
	nLocal := n / ranks
	err = w.Run(func(c *mpi.Comm) error {
		_, err := pl.RunDistributed(context.Background(), c,
			got[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			src[c.Rank()*nLocal:(c.Rank()+1)*nLocal])
		return err
	})
	if err != nil {
		return nil, err
	}

	snap := pl.Recorder().Snapshot()
	t := &Table{
		Title: fmt.Sprintf("Observability report (N=%d, R=%d ranks, P=%d, B=%d, mu/nu=%d/%d)",
			n, ranks, segments, b, p.Mu, p.Nu),
		Header: []string{"stage", "calls", "wall ms", "occup", "gflop/s"},
	}
	for _, st := range snap.Stages {
		if st.Calls == 0 {
			continue
		}
		t.AddRow(
			st.Stage.String(),
			fmt.Sprintf("%d", st.Calls),
			fmt.Sprintf("%.2f", float64(st.Wall.Microseconds())/1000),
			fmt.Sprintf("%.2f", st.Occupancy()),
			fmt.Sprintf("%.2f", st.GFlopsPerSec()),
		)
	}

	beta := float64(p.Mu-p.Nu) / float64(p.Nu)
	model := perfmodel.Model{Beta: beta}
	measured := snap.Comm.AlltoallBytes
	analytic := analyticAlltoallBytes(n, p.Mu, p.Nu, ranks)
	baseline := 3 * int64(16) * int64(n) * int64(ranks-1) / int64(ranks)
	t.Notes = append(t.Notes,
		fmt.Sprintf("all-to-all: %d ops, %d bytes measured; analytic (1+beta)N exchange = %d bytes",
			snap.Comm.Alltoalls, measured, analytic),
		fmt.Sprintf("vs triple-all-to-all baseline (%d bytes): measured ratio %.3f, paper predicts 3/(1+beta) = %.3f",
			baseline, float64(baseline)/float64(measured), model.AsymptoticSpeedup()),
		fmt.Sprintf("stage rows aggregate all %d ranks; occupancy is busy/(wall*workers)", ranks),
	)
	return t, nil
}

// analyticAlltoallBytes is the inter-rank volume of the SOI exchange: the
// oversampled spectrum of N' = (mu/nu)·N complex128 points redistributed
// once, minus each rank's self-chunk — 16·N'·(R−1)/R bytes total.
func analyticAlltoallBytes(n, mu, nu, ranks int) int64 {
	nPrime := int64(n) * int64(mu) / int64(nu)
	return 16 * nPrime * int64(ranks-1) / int64(ranks)
}

// InstrumentationOverhead times the single-node transform with the
// recorder off and with full timers, returning the best-of-iters wall
// time for each. It is the measurement behind the "near-zero cost when
// off" claim: off should be within noise of an uninstrumented build.
func InstrumentationOverhead(n, iters int) (off, timers time.Duration, err error) {
	if iters < 1 {
		iters = 1
	}
	run := func(level instrument.Level) (time.Duration, error) {
		pl, err := core.NewPlan(core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: 72})
		if err != nil {
			return 0, err
		}
		pl.SetRecorder(instrument.New(level))
		src := signal.Random(n, 7)
		dst := make([]complex128, n)
		best := time.Duration(-1)
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			if err := pl.Transform(dst, src); err != nil {
				return 0, err
			}
			if d := time.Since(t0); best < 0 || d < best {
				best = d
			}
		}
		return best, nil
	}
	if off, err = run(instrument.LevelOff); err != nil {
		return 0, 0, err
	}
	if timers, err = run(instrument.LevelTimers); err != nil {
		return 0, 0, err
	}
	return off, timers, nil
}

// WriteStageReport renders a recorder snapshot as a compact per-stage
// text block, used by soinode -report for a single rank's view.
func WriteStageReport(w io.Writer, label string, snap instrument.Snapshot) {
	fmt.Fprintf(w, "%s: %d transform(s)\n", label, snap.Transforms)
	for _, st := range snap.Stages {
		if st.Calls == 0 {
			continue
		}
		fmt.Fprintf(w, "%s:   %-11s calls %-4d wall %-12v occup %.2f  %.2f GF/s\n",
			label, st.Stage.String(), st.Calls, st.Wall, st.Occupancy(), st.GFlopsPerSec())
	}
	c := snap.Comm
	if c.Messages+c.Alltoalls > 0 {
		fmt.Fprintf(w, "%s:   comm: %d msgs (%d B), %d all-to-all (%d B), %d retransmits, %d deadline, %d checksum\n",
			label, c.Messages, c.Bytes, c.Alltoalls, c.AlltoallBytes,
			c.Retransmits, c.DeadlineEvents, c.ChecksumErrors)
	}
	if c.StreamChunks > 0 {
		fmt.Fprintf(w, "%s:   stream: %d chunks, overlap %.0f%%, credit-stall %v\n",
			label, c.StreamChunks,
			100*c.OverlapRatio(snap.Stages[instrument.StageExchange].Wall),
			c.CreditStall.Round(time.Microsecond))
	}
}
