package bench

import (
	"fmt"
	"time"

	"soifft/internal/core"
	"soifft/internal/fft"
	"soifft/internal/netsim"
	"soifft/internal/signal"
	"soifft/internal/window"
)

// AblateBeta sweeps the oversampling rate: larger β eases the window
// design (smaller B for the same accuracy) but inflates both the FFT
// work and the all-to-all volume. The paper calls β a key design
// parameter and settles on 1/4.
func AblateBeta(cfg Config) *Table {
	t := &Table{
		Title: "Ablation: oversampling rate beta",
		Header: []string{"beta", "mu/nu", "B for ~13 digits", "asymptote 3/(1+b)",
			"speedup @64 Gordon", "speedup @64 10GbE"},
	}
	type rat struct{ mu, nu int }
	for _, r := range []rat{{9, 8}, {5, 4}, {3, 2}, {2, 1}} {
		beta := float64(r.mu)/float64(r.nu) - 1
		b := minTapsForDigits(beta, 13)
		mG := cfg.Cal.Model(netsim.Gordon(), cfg.PointsPerNode, beta, b)
		mE := cfg.Cal.Model(netsim.TenGigE(), cfg.PointsPerNode, beta, b)
		t.AddRow(
			fmt.Sprintf("%.3f", beta),
			fmt.Sprintf("%d/%d", r.mu, r.nu),
			fmt.Sprintf("%d", b),
			fmt.Sprintf("%.2f", 3/(1+beta)),
			fmt.Sprintf("%.2fx", mG.Speedup(64)),
			fmt.Sprintf("%.2fx", mE.Speedup(64)),
		)
	}
	t.Notes = append(t.Notes,
		"small beta: cheap communication but many taps; large beta: few taps but inflated FFT+comm — beta=1/4 is the paper's sweet spot")
	return t
}

// minTapsForDigits searches the window designer for the smallest B whose
// predicted accuracy reaches the target digits at oversampling β.
func minTapsForDigits(beta float64, digits float64) int {
	for b := 8; b <= 120; b += 4 {
		d := window.Design(b, beta, 1e3)
		if d.Metrics.Digits() >= digits {
			return b
		}
	}
	return 120
}

// AblateWindow compares the paper's two-parameter (τ,σ) family against
// the one-parameter Gaussian at matched tap counts (paper Section 8: the
// Gaussian caps near 10 digits at β=1/4).
func AblateWindow(cfg Config) (*Table, error) {
	const n = 4096
	t := &Table{
		Title:  "Ablation: window family (tau-sigma vs gaussian)",
		Header: []string{"B", "family", "kappa", "pred digits", "measured SNR dB"},
	}
	src := signal.Random(n, 13)
	ref := make([]complex128, n)
	plan, err := fft.CachedPlan(n)
	if err != nil {
		return nil, err
	}
	plan.Forward(ref, src)
	for _, b := range []int{24, 48, 72} {
		for _, fam := range []string{"tau-sigma", "gaussian", "compact-bump"} {
			var d window.DesignResult
			switch fam {
			case "tau-sigma":
				d = window.Design(b, cfg.Beta, 1e3)
			case "gaussian":
				d = window.DesignGaussian(b, cfg.Beta)
			case "compact-bump":
				w, err := window.NewCompactBump(cfg.Beta, float64(b)/2+8)
				if err != nil {
					return nil, err
				}
				d = window.DesignResult{
					Window:  w,
					Metrics: window.Analyze(w, cfg.Beta, b),
					B:       b,
					Beta:    cfg.Beta,
				}
			}
			p := core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: b, Win: d.Window}
			cp, err := core.NewPlan(p)
			if err != nil {
				return nil, err
			}
			got := make([]complex128, n)
			if err := cp.Transform(got, src); err != nil {
				return nil, err
			}
			t.AddRow(
				fmt.Sprintf("%d", b),
				fam,
				fmt.Sprintf("%.2g", d.Metrics.Kappa),
				fmt.Sprintf("%.1f", d.Metrics.Digits()),
				fmt.Sprintf("%.0f", signal.SNRdB(got, ref)),
			)
		}
	}
	t.Notes = append(t.Notes,
		"paper Section 8: gaussian limited to ~10 digits at beta=1/4; tau-sigma reaches full accuracy",
		"compact-bump has exactly zero aliasing (paper Section 8) but sub-exponential tap decay")
	return t, nil
}

// AblateSegments sweeps segments-per-rank (paper Section 6: P can exceed
// the node count to increase parallel granularity; the evaluation used 8
// segments per process).
func AblateSegments(pointsPerRank, ranks, b int) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: segments per rank (%d ranks, %d points/rank)", ranks, pointsPerRank),
		Header: []string{"segments P", "seg/rank", "M'", "wall ms", "rel err vs FFT"},
	}
	n := pointsPerRank * ranks
	for _, spr := range []int{1, 2, 4, 8, 16} {
		p := ranks * spr
		run, err := RunSOIMeasured(n, ranks, p, b, int64(n))
		if err != nil {
			return nil, fmt.Errorf("P=%d: %w", p, err)
		}
		t.AddRow(
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%d", spr),
			fmt.Sprintf("%d", n/p/4*5),
			fmt.Sprintf("%.1f", float64(run.Wall.Microseconds())/1000),
			fmt.Sprintf("%.1e", run.RelErrVsFFT),
		)
	}
	t.Notes = append(t.Notes, "the paper's evaluation used 8 segments per MPI process")
	return t, nil
}

// AblateOpcount reproduces the Section 7.4 arithmetic analysis: the
// convolution costs ≈4× the FFT flops at B=72, but (paper) runs at ~40%
// of peak versus ~10% for the FFT, so its wall-clock share is ~half.
func AblateOpcount(cfg Config) (*Table, error) {
	t := &Table{
		Title: "Ablation: convolution vs FFT arithmetic (Section 7.4)",
		Header: []string{"N", "B", "conv/fft flops", "conv ms", "fft stages ms",
			"conv GF/s", "fft GF/s"},
	}
	for _, n := range []int{1 << 18, 1 << 20} {
		p := core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: cfg.B, Workers: 1}
		cp, err := core.NewPlan(p)
		if err != nil {
			return nil, err
		}
		src := signal.Random(n, int64(n))

		// Time the convolution kernel alone.
		ext := make([]complex128, n+cp.HaloLen())
		copy(ext, src)
		copy(ext[n:], src[:cp.HaloLen()])
		v := make([]complex128, cp.NPrime())
		t0 := nowMono()
		cp.ConvolveRange(v, ext, 0, cp.MPrime(), 0)
		convTime := sinceMono(t0)

		// Time the FFT stages alone (I⊗F_P batch plus per-segment F_M').
		w := make([]complex128, cp.NPrime())
		yt := make([]complex128, cp.MPrime())
		t0 = nowMono()
		cp.BlockFFTBatch(w, v, cp.MPrime())
		for s := 0; s < p.P; s++ {
			cp.SegmentFFT(yt, w[s*cp.MPrime():(s+1)*cp.MPrime()])
		}
		fftTime := sinceMono(t0)
		ratio := float64(cp.ConvFlops()) / float64(cp.FFTFlops())
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", cfg.B),
			fmt.Sprintf("%.2f", ratio),
			fmt.Sprintf("%.1f", convTime.Seconds()*1000),
			fmt.Sprintf("%.1f", fftTime.Seconds()*1000),
			fmt.Sprintf("%.2f", float64(cp.ConvFlops())/convTime.Seconds()/1e9),
			fmt.Sprintf("%.2f", float64(cp.FFTFlops())/fftTime.Seconds()/1e9),
		)
	}
	t.Notes = append(t.Notes,
		"paper: conv ops ~4x FFT ops at B=72, conv time ~= in-SOI FFT time thanks to the regular stride-P kernel")
	return t, nil
}

// nowMono/sinceMono isolate the timing primitive for the ablations.
func nowMono() time.Time                  { return time.Now() }
func sinceMono(t time.Time) time.Duration { return time.Since(t) }
