package bench

import (
	"fmt"
	"io"
	"time"

	"soifft/internal/netsim"
	"soifft/internal/trace"
)

// Timeline renders modeled per-node execution Gantt charts for SOI and
// the triple-all-to-all class at paper scale — a visual form of the
// Section 7.4 time model that makes the "one exchange instead of three"
// structure immediately legible.
func Timeline(w io.Writer, cfg Config, fabric netsim.Fabric, nodes int) {
	m := cfg.Cal.Model(fabric, cfg.PointsPerNode, cfg.Beta, cfg.B)
	tmpi := m.Tmpi(nodes)
	tfft := m.Tfft(nodes)

	fmt.Fprintf(w, "\n== Modeled execution timeline: %d nodes on %s, %d points/node ==\n",
		nodes, fabric.Name(), cfg.PointsPerNode)

	// Conventional: the three local FFT stages are interleaved with the
	// three transposes; model each local stage as a third of Tfft.
	fmt.Fprintln(w, "\nTriple-all-to-all (MKL class):")
	var conv trace.Timeline
	third := tfft / 3
	for lane := 0; lane < min(4, nodes); lane++ {
		t := time.Duration(0)
		for rep := 0; rep < 3; rep++ {
			conv.Add(lane, "all-to-all", t, t+tmpi)
			t += tmpi
			conv.Add(lane, "local FFT", t, t+third)
			t += third
		}
	}
	conv.Render(w, 72)

	// SOI: convolution (+F_P), one oversampled exchange, segment FFTs.
	fmt.Fprintln(w, "\nSOI (single all-to-all):")
	var soi trace.Timeline
	tconv := time.Duration(float64(m.Tconv) * m.C)
	oversampled := time.Duration(float64(tmpi) * (1 + cfg.Beta))
	segfft := m.TfftOversampled(nodes)
	for lane := 0; lane < min(4, nodes); lane++ {
		t := time.Duration(0)
		soi.Add(lane, "convolution+F_P", t, t+tconv)
		t += tconv
		soi.Add(lane, "all-to-all (1+b)N", t, t+oversampled)
		t += oversampled
		soi.Add(lane, "segment FFTs", t, t+segfft)
	}
	soi.Render(w, 72)
	fmt.Fprintf(w, "\nspeedup %.2fx (asymptote %.2fx)\n", m.Speedup(nodes), m.AsymptoticSpeedup())
}
