package bench

import (
	"fmt"

	"soifft/internal/fft"
	"soifft/internal/fft32"
	"soifft/internal/netsim"
	"soifft/internal/signal"
)

// AblatePrecision reproduces the paper's Section 7.3 closing argument:
// "at an accuracy level of 10 digits, SOI outperforms Intel MKL by more
// than twofold — which is likely the best speedup achievable by a
// 6-digit-accurate single-precision Intel MKL." A single-precision
// triple-all-to-all library halves every byte on the wire (and roughly
// halves compute), so its best case over double MKL is ~2× when
// communication dominates — at the cost of dropping to ~6 digits.
// Double-precision SOI at its ~10-digit rung reaches the same ~2× while
// keeping four more digits.
func AblatePrecision(cfg Config) *Table {
	t := &Table{
		Title: "Ablation: reduced-accuracy SOI vs single-precision library (Section 7.3)",
		Header: []string{"configuration", "digits", "time @64 Gordon",
			"speedup vs double 3xA2A"},
	}
	fabric := netsim.Gordon()
	const n = 64
	mDouble := cfg.Cal.Model(fabric, cfg.PointsPerNode, cfg.Beta, cfg.B)
	tDouble := mDouble.TStandard(n)

	// Single-precision library: half the bytes, ~half the FFT time.
	tmpiSingle := fabric.AlltoallTime(n, cfg.PointsPerNode*8)
	tSingle := mDouble.Tfft(n)/2 + 3*tmpiSingle

	// SOI at the ~10-digit rung (B = 34 preset).
	mSOI10 := cfg.Cal.Model(fabric, cfg.PointsPerNode, cfg.Beta, 34)
	tSOI10 := mSOI10.TSOI(n)
	// And at full accuracy for reference.
	tSOIFull := mDouble.TSOI(n)

	// Measure the single-precision digits for real with the complex64
	// engine (the paper quotes "6-digit-accurate single-precision MKL").
	singleDigits := measuredSingleDigits()

	row := func(name string, digits float64, tm float64) {
		t.AddRow(name, fmt.Sprintf("%.1f", digits), fmt.Sprintf("%.2fs", tm),
			fmt.Sprintf("%.2fx", tDouble.Seconds()/tm))
	}
	row("double 3xA2A (MKL class)", 15.5, tDouble.Seconds())
	row("single 3xA2A (measured digits)", singleDigits, tSingle.Seconds())
	row("double SOI, full accuracy", 14.5, tSOIFull.Seconds())
	row("double SOI, ~10 digits", 10.0, tSOI10.Seconds())
	t.Notes = append(t.Notes,
		"single-precision digits measured with the complex64 engine (internal/fft32) at N=2^16",
		"paper Section 7.3: 10-digit SOI matches the best a 6-digit single-precision library could do, with 4 more digits")
	return t
}

// measuredSingleDigits runs a real complex64 transform and scores it
// against the double-precision engine.
func measuredSingleDigits() float64 {
	const n = 1 << 16
	p, err := fft32.NewPlan(n)
	if err != nil {
		return 6 // conservative fallback; should not happen for 2^16
	}
	src := signal.Random(n, 4)
	ref, err := fft.Forward(src)
	if err != nil {
		return 6
	}
	dst := make([]complex64, n)
	p.Forward(dst, fft32.FromComplex128(src))
	return signal.DBToDigits(signal.SNRdB(fft32.ToComplex128(dst), ref))
}
