package bench

import (
	"fmt"
	"time"

	"soifft/internal/core"
	"soifft/internal/fft"
	"soifft/internal/signal"
)

// AblateWorkers measures shared-memory scaling of the SOI pipeline over
// worker counts (the intra-node half of the paper's hybrid MPI+OpenMP
// model, Fig 2).
func AblateWorkers(n, b int) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: shared-memory workers (N=%d, B=%d)", n, b),
		Header: []string{"workers", "wall ms", "speedup vs 1"},
	}
	src := signal.Random(n, 3)
	dst := make([]complex128, n)
	var base time.Duration
	for _, wkr := range []int{1, 2, 4, 8} {
		pl, err := core.NewPlan(core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: b, Workers: wkr})
		if err != nil {
			return nil, err
		}
		best := time.Duration(1 << 62)
		for rep := 0; rep < 3; rep++ {
			t0 := time.Now()
			if err := pl.Transform(dst, src); err != nil {
				return nil, err
			}
			if d := time.Since(t0); d < best {
				best = d
			}
		}
		if wkr == 1 {
			base = best
		}
		t.AddRow(
			fmt.Sprintf("%d", wkr),
			fmt.Sprintf("%.1f", best.Seconds()*1000),
			fmt.Sprintf("%.2fx", float64(base)/float64(best)),
		)
	}
	t.Notes = append(t.Notes, "paper Fig 2: OpenMP threads inside each MPI process; here goroutine workers inside each rank")
	return t, nil
}

// AblateScaling checks that SOI accuracy is stable as N grows at fixed
// (B, β) — the error characterization depends on the window, not on N.
func AblateScaling(b int) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Ablation: accuracy vs transform size (B=%d, beta=1/4)", b),
		Header: []string{"N", "SNR dB vs FFT", "rel err"},
	}
	for _, n := range []int{1 << 12, 1 << 14, 1 << 16, 1 << 18} {
		pl, err := core.NewPlan(core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: b})
		if err != nil {
			return nil, err
		}
		src := signal.Random(n, int64(n))
		ref, err := fft.Forward(src)
		if err != nil {
			return nil, err
		}
		got := make([]complex128, n)
		if err := pl.Transform(got, src); err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.0f", signal.SNRdB(got, ref)),
			fmt.Sprintf("%.1e", signal.RelErrL2(got, ref)),
		)
	}
	t.Notes = append(t.Notes, "the paper's error bound κ(ε_fft+ε_alias+ε_trunc) is size-independent; SNR should be flat in N")
	return t, nil
}
