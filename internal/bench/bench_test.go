package bench

import (
	"fmt"
	"strings"
	"testing"

	"soifft/internal/baseline"
	"soifft/internal/netsim"
)

// testConfig uses the paper's node rates: the shape assertions below are
// about the published figures, which assume the paper's compute/
// communication balance.
func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Cal:           PaperNodeRates(),
		PointsPerNode: 1 << 28,
		Beta:          0.25,
		B:             72,
		Nodes:         []int{1, 2, 4, 8, 16, 32, 64},
	}
}

func TestCalibrateProducesSaneRates(t *testing.T) {
	cal, err := Calibrate(1 << 14)
	if err != nil {
		t.Fatal(err)
	}
	// Any machine runs these kernels between 10 MF/s and 1 TF/s.
	if cal.FFTFlopsPerSec < 1e7 || cal.FFTFlopsPerSec > 1e12 {
		t.Errorf("FFT rate %.3g implausible", cal.FFTFlopsPerSec)
	}
	if cal.ConvFlopsPerSec < 1e7 || cal.ConvFlopsPerSec > 1e12 {
		t.Errorf("conv rate %.3g implausible", cal.ConvFlopsPerSec)
	}
	if cal.TfftSingle(1<<28) <= 0 || cal.Tconv(1<<28, 72, 0.25) <= 0 {
		t.Error("extrapolated times must be positive")
	}
}

func tableText(t *testing.T, tb *Table) string {
	t.Helper()
	var sb strings.Builder
	tb.Fprint(&sb)
	return sb.String()
}

func TestFig5ShapeMatchesPaper(t *testing.T) {
	cfg := testConfig(t)
	tb := Fig5(cfg)
	if len(tb.Rows) != len(cfg.Nodes) {
		t.Fatalf("rows %d, want %d", len(tb.Rows), len(cfg.Nodes))
	}
	// The paper's qualitative shape: SOI ahead of the triple-all-to-all
	// class at every multi-node point, with the margin growing at 64.
	m := cfg.Cal.Model(netsim.Endeavor(), cfg.PointsPerNode, cfg.Beta, cfg.B)
	s8, s64 := m.Speedup(8), m.Speedup(64)
	if s8 <= 1.0 {
		t.Errorf("speedup at 8 nodes %.2f, want > 1", s8)
	}
	if s64 <= s8 {
		t.Errorf("speedup should grow with nodes: 8→%.2f, 64→%.2f", s8, s64)
	}
	if s64 < 1.3 || s64 > 2.4 {
		t.Errorf("speedup at 64 nodes %.2f outside the paper's plausible band", s64)
	}
	out := tableText(t, tb)
	if !strings.Contains(out, "Fig 5") || !strings.Contains(out, "speedup") {
		t.Error("table missing title or speedup column")
	}
}

func TestFig6GordonBeatsEndeavorAtScale(t *testing.T) {
	cfg := testConfig(t)
	mE := cfg.Cal.Model(netsim.Endeavor(), cfg.PointsPerNode, cfg.Beta, cfg.B)
	mG := cfg.Cal.Model(netsim.Gordon(), cfg.PointsPerNode, cfg.Beta, cfg.B)
	// Paper: additional gain on Gordon from 32 nodes onwards.
	if mG.Speedup(64) <= mE.Speedup(64)*0.98 {
		t.Errorf("Gordon speedup %.2f should be at least Endeavor's %.2f at 64 nodes",
			mG.Speedup(64), mE.Speedup(64))
	}
	if Fig6(cfg) == nil {
		t.Fatal("Fig6 returned nil")
	}
}

func TestFig8NearTheoreticalBound(t *testing.T) {
	cfg := testConfig(t)
	m := cfg.Cal.Model(netsim.TenGigE(), cfg.PointsPerNode, cfg.Beta, cfg.B)
	for _, n := range []int{8, 16, 32, 64} {
		s := m.Speedup(n)
		if s < 2.2 || s > 2.41 {
			t.Errorf("10GbE speedup at %d nodes = %.3f, paper observed [2.3, 2.4]", n, s)
		}
	}
	if Fig8(cfg) == nil {
		t.Fatal("Fig8 returned nil")
	}
}

func TestFig7LadderMonotone(t *testing.T) {
	cfg := testConfig(t)
	tb, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 4 {
		t.Fatalf("expected at least 4 accuracy rungs, got %d", len(tb.Rows))
	}
	// Speedup must not decrease as accuracy is relaxed (B shrinks).
	prev := 0.0
	for _, row := range tb.Rows {
		var s float64
		if _, err := sscanSpeedup(row[len(row)-1], &s); err != nil {
			t.Fatalf("bad speedup cell %q", row[len(row)-1])
		}
		if s+1e-9 < prev {
			t.Errorf("speedup fell while relaxing accuracy: %v", row)
		}
		prev = s
	}
}

func sscanSpeedup(cell string, out *float64) (int, error) {
	return fmtSscanf(cell, "%fx", out)
}

func TestFig9ProjectionTable(t *testing.T) {
	cfg := testConfig(t)
	tb := Fig9(cfg)
	if len(tb.Rows) != 9 { // k = 2..10
		t.Fatalf("rows %d, want 9", len(tb.Rows))
	}
	out := tableText(t, tb)
	if !strings.Contains(out, "16000") {
		t.Error("projection should reach 16000 nodes (k=10)")
	}
}

func TestTable1(t *testing.T) {
	tb := Table1()
	out := tableText(t, tb)
	for _, want := range []string{"fat tree", "torus", "10GbE", "330"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestSNRTableGap(t *testing.T) {
	cfg := testConfig(t)
	tb, err := SNRTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: SOI full accuracy is ~20 dB (one digit) below conventional.
	for _, row := range tb.Rows {
		var gap float64
		if _, err := fmtSscanf(row[3], "%f", &gap); err != nil {
			t.Fatalf("bad gap cell %q", row[3])
		}
		if gap < -5 || gap > 80 {
			t.Errorf("N=%s: SNR gap %.0f dB implausible (paper ~20)", row[0], gap)
		}
	}
}

func TestMeasuredWeakScalingRuns(t *testing.T) {
	tb, err := MeasuredWeakScaling(1<<12, []int{1, 2, 4}, 48)
	if err != nil {
		t.Fatal(err)
	}
	// 4 algorithms × 3 rank counts.
	if len(tb.Rows) != 12 {
		t.Fatalf("rows %d, want 12", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		alg, a2a := row[2], row[4]
		switch alg {
		case "SOI":
			if a2a != "1" {
				t.Errorf("SOI performed %s all-to-alls, want 1", a2a)
			}
		case "sixstep", "sixstep-tall":
			if a2a != "3" {
				t.Errorf("%s performed %s all-to-alls, want 3", alg, a2a)
			}
		}
	}
}

func TestAblations(t *testing.T) {
	cfg := testConfig(t)
	if tb := AblateBeta(cfg); len(tb.Rows) != 4 {
		t.Errorf("beta ablation rows: %d", len(tb.Rows))
	}
	tb, err := AblateWindow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 9 {
		t.Errorf("window ablation rows: %d", len(tb.Rows))
	}
	tb, err = AblateSegments(1<<12, 4, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Errorf("segments ablation rows: %d", len(tb.Rows))
	}
	tb, err = AblateOpcount(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Errorf("opcount ablation rows: %d", len(tb.Rows))
	}
}

func TestRunBaselineMeasuredError(t *testing.T) {
	// Binary exchange on 3 ranks must surface its shape error.
	if _, err := RunBaselineMeasured(baseline.BinaryExchange{}, 3*64, 3, 1); err == nil {
		t.Error("expected shape error")
	}
}

// fmtSscanf avoids importing fmt at top level twice in examples; thin
// wrapper for cell parsing.
func fmtSscanf(s, format string, args ...any) (int, error) {
	return fmt.Sscanf(s, format, args...)
}

func TestAppConvolutionLadder(t *testing.T) {
	cfg := testConfig(t)
	tb, err := AppConvolution(cfg, 4096, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows %d, want 3", len(tb.Rows))
	}
	wantA2A := []string{"2", "4", "6"}
	for i, row := range tb.Rows {
		if row[1] != wantA2A[i] {
			t.Errorf("row %d: %s all-to-alls, want %s", i, row[1], wantA2A[i])
		}
		var e float64
		if _, err := fmtSscanf(row[2], "%e", &e); err != nil || e > 1e-8 {
			t.Errorf("row %d: rel err %s", i, row[2])
		}
	}
}

func TestAblateWorkersAndScaling(t *testing.T) {
	tb, err := AblateWorkers(1<<14, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Errorf("workers ablation rows: %d", len(tb.Rows))
	}
	tb, err = AblateScaling(48)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("scaling ablation rows: %d", len(tb.Rows))
	}
	// SNR must be roughly flat across N (within 25 dB).
	var lo, hi float64 = 1e9, -1e9
	for _, row := range tb.Rows {
		var snr float64
		if _, err := fmtSscanf(row[1], "%f", &snr); err != nil {
			t.Fatalf("bad SNR cell %q", row[1])
		}
		if snr < lo {
			lo = snr
		}
		if snr > hi {
			hi = snr
		}
	}
	if hi-lo > 25 {
		t.Errorf("SNR varies %0.f..%0.f dB across N; should be flat", lo, hi)
	}
}

func TestExtensions(t *testing.T) {
	cfg := testConfig(t)
	tb := StrongScaling(cfg, 1<<32)
	if len(tb.Rows) != 6 {
		t.Errorf("strong scaling rows: %d", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		var s float64
		if _, err := sscanSpeedup(row[2], &s); err != nil || s < 1 || s > 3 {
			t.Errorf("strong speedup %q outside (1,3)", row[2])
		}
	}
	mf := ModernFabric(cfg)
	if len(mf.Rows) != 4 {
		t.Fatalf("modern fabric rows: %d", len(mf.Rows))
	}
	// Row order: 2012@8, 2012@64, modern@8, modern@64. With 2012 compute
	// the modern fabric makes SOI lose; with modern compute it wins again.
	var old64, new64 float64
	if _, err := sscanSpeedup(mf.Rows[1][4], &old64); err != nil {
		t.Fatal(err)
	}
	if _, err := sscanSpeedup(mf.Rows[3][4], &new64); err != nil {
		t.Fatal(err)
	}
	if old64 >= 1.1 {
		t.Errorf("2012 node on modern fabric should not show a clear SOI win, got %.2f", old64)
	}
	if new64 <= 1.2 {
		t.Errorf("modern node on modern fabric should restore the SOI win, got %.2f", new64)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table1()
	var sb strings.Builder
	tb.FprintCSV(&sb)
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+len(tb.Rows) {
		t.Errorf("CSV has %d lines, want %d", len(lines), 1+len(tb.Rows))
	}
	if !strings.HasPrefix(lines[0], "system,") {
		t.Errorf("CSV header: %q", lines[0])
	}
}

func TestAblatePrecision(t *testing.T) {
	cfg := testConfig(t)
	tb := AblatePrecision(cfg)
	if len(tb.Rows) != 4 {
		t.Fatalf("rows %d", len(tb.Rows))
	}
	var single, soi10 float64
	if _, err := sscanSpeedup(tb.Rows[1][3], &single); err != nil {
		t.Fatal(err)
	}
	if _, err := sscanSpeedup(tb.Rows[3][3], &soi10); err != nil {
		t.Fatal(err)
	}
	// Paper's argument: 10-digit SOI is at least in the same band as the
	// best-case single-precision library (≈2x), with more digits.
	if single < 1.5 || single > 2.5 {
		t.Errorf("single-precision best case %.2f outside ~2x band", single)
	}
	if soi10 < single*0.85 {
		t.Errorf("10-digit SOI (%.2f) should be comparable to single-precision best case (%.2f)", soi10, single)
	}
}

func TestObservabilityReport(t *testing.T) {
	tb, err := ObservabilityReport(4096, 2, 8, 48)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 3 {
		t.Fatalf("report has %d stage rows, want >= 3:\n%+v", len(tb.Rows), tb.Rows)
	}
	// The analytic check rides in the notes: the measured exchange must
	// have matched (1+beta)N and the 3/(1+beta) baseline ratio.
	joined := strings.Join(tb.Notes, "\n")
	if !strings.Contains(joined, "measured ratio 2.400") {
		t.Errorf("notes missing the 2.400 comm ratio:\n%s", joined)
	}
	off, timers, err := InstrumentationOverhead(4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	if off <= 0 || timers <= 0 {
		t.Errorf("overhead measurement: off %v, timers %v", off, timers)
	}
}
