// Package bench is the experiment harness: it calibrates compute-rate
// constants from real measured Go execution, runs real distributed
// transforms on the in-process message-passing runtime, and combines both
// with the interconnect models to regenerate every table and figure of
// the paper's evaluation (Section 7) as text tables.
package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// FprintCSV renders the table as CSV (header row first) for plotting.
func (t *Table) FprintCSV(w io.Writer) {
	cw := csv.NewWriter(w)
	_ = cw.Write(t.Header)
	for _, row := range t.Rows {
		_ = cw.Write(row)
	}
	cw.Flush()
}
