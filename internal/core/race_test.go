//go:build race

package core

// raceEnabled reports whether the race detector instruments this build.
// The detector makes sync.Pool drop puts at random (to widen interleaving
// coverage), so the zero-allocation steady-state guarantee cannot hold
// under -race and the strict assertion is skipped.
const raceEnabled = true
