package core

import (
	"math"
	"strings"
	"testing"

	"soifft/internal/fft"
	"soifft/internal/signal"
	"soifft/internal/window"
)

// soiVsDirect runs the SOI transform and returns the relative L2 error
// against the O(N²) direct DFT.
func soiVsDirect(t *testing.T, p Params, seed int64) float64 {
	t.Helper()
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatalf("NewPlan(%+v): %v", p, err)
	}
	src := signal.Random(p.N, seed)
	want := make([]complex128, p.N)
	fft.Direct(want, src)
	got := make([]complex128, p.N)
	if err := pl.Transform(got, src); err != nil {
		t.Fatalf("Transform: %v", err)
	}
	return signal.RelErrL2(got, want)
}

func TestSOIMatchesDirectSmall(t *testing.T) {
	// Moderate taps on a small problem: expect ~12+ digits.
	p := Params{N: 256, P: 4, Mu: 5, Nu: 4, B: 48}
	if e := soiVsDirect(t, p, 1); e > 1e-11 {
		t.Errorf("relative error %.3e, want < 1e-11", e)
	}
}

func TestSOIFullAccuracy(t *testing.T) {
	// The paper's full-accuracy configuration: B = 72, β = 1/4. Expect
	// ~14 digits (SNR ≈ 290 dB when averaged over spectra).
	p := Params{N: 1024, P: 8, Mu: 5, Nu: 4, B: 72}
	if e := soiVsDirect(t, p, 2); e > 5e-13 {
		t.Errorf("relative error %.3e, want < 5e-13", e)
	}
}

func TestSOIAcrossShapes(t *testing.T) {
	cases := []Params{
		{N: 64, P: 1, Mu: 5, Nu: 4, B: 32},    // single segment
		{N: 128, P: 2, Mu: 5, Nu: 4, B: 40},   // two segments
		{N: 512, P: 16, Mu: 5, Nu: 4, B: 32},  // many short segments
		{N: 480, P: 4, Mu: 5, Nu: 4, B: 48},   // non-power-of-two N (M=120)
		{N: 768, P: 8, Mu: 5, Nu: 4, B: 48},   // 3·2^8 per segment
		{N: 256, P: 4, Mu: 3, Nu: 2, B: 40},   // β = 1/2
		{N: 256, P: 4, Mu: 9, Nu: 8, B: 56},   // β = 1/8 (tight oversampling)
		{N: 1024, P: 4, Mu: 2, Nu: 1, B: 40},  // β = 1 (generous)
		{N: 2048, P: 32, Mu: 5, Nu: 4, B: 56}, // larger P
	}
	for _, p := range cases {
		pl, err := NewPlan(p)
		if err != nil {
			t.Errorf("NewPlan(%+v): %v", p, err)
			continue
		}
		e := soiVsDirect(t, p, int64(p.N+p.P))
		// Tolerance from the plan's own error prediction, with headroom
		// for the FFT and the looseness of the integral bounds.
		tol := math.Max(pl.PredictedError()*100, 1e-11)
		if e > tol {
			t.Errorf("params %+v: relative error %.3e > tol %.3e (predicted %.3e)",
				p, e, tol, pl.PredictedError())
		}
	}
}

func TestSOIDeterministicAndWorkerInvariant(t *testing.T) {
	p := Params{N: 512, P: 8, Mu: 5, Nu: 4, B: 48}
	src := signal.Random(p.N, 3)
	var ref []complex128
	for _, workers := range []int{1, 2, 3, 8} {
		p.Workers = workers
		pl, err := NewPlan(p)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]complex128, p.N)
		if err := pl.Transform(got, src); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = append([]complex128(nil), got...)
			continue
		}
		if e := signal.MaxAbsErr(got, ref); e != 0 {
			t.Errorf("workers=%d: result differs from workers=1 by %.3e", workers, e)
		}
	}
}

func TestSOIStructuredInputs(t *testing.T) {
	p := Params{N: 512, P: 8, Mu: 5, Nu: 4, B: 64}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string][]complex128{
		"impulse0":   signal.Impulse(p.N, 0),
		"impulseMid": signal.Impulse(p.N, p.N/2),
		"tone":       signal.Tones(p.N, []int{37}, []complex128{1}),
		"toneHigh":   signal.Tones(p.N, []int{p.N - 3}, []complex128{2i}),
		"chirp":      signal.Chirp(p.N, 0, float64(p.N)/2),
		"constant":   signal.Tones(p.N, []int{0}, []complex128{1}),
	}
	for name, src := range inputs {
		want := make([]complex128, p.N)
		fft.Direct(want, src)
		got := make([]complex128, p.N)
		if err := pl.Transform(got, src); err != nil {
			t.Fatal(err)
		}
		// Structured inputs have sparse spectra; use absolute error
		// scaled by the spectrum's energy.
		if e := signal.MaxAbsErr(got, want); e > 1e-10*float64(p.N) {
			t.Errorf("%s: max abs error %.3e", name, e)
		}
	}
}

func TestSOISegmentBoundaries(t *testing.T) {
	// Demodulation divides by the window edge values; verify the error is
	// not concentrated catastrophically at segment boundaries.
	p := Params{N: 1024, P: 8, Mu: 5, Nu: 4, B: 72}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(p.N, 9)
	want := make([]complex128, p.N)
	fft.Direct(want, src)
	got := make([]complex128, p.N)
	if err := pl.Transform(got, src); err != nil {
		t.Fatal(err)
	}
	m := pl.M()
	for s := 0; s < p.P; s++ {
		edge := signal.MaxAbsErr(got[s*m:s*m+2], want[s*m:s*m+2])
		last := signal.MaxAbsErr(got[(s+1)*m-2:(s+1)*m], want[(s+1)*m-2:(s+1)*m])
		if edge > 1e-9 || last > 1e-9 {
			t.Errorf("segment %d: boundary errors %.3e / %.3e", s, edge, last)
		}
	}
}

func TestGaussianWindowAccuracyCeiling(t *testing.T) {
	// Paper Section 8: with a pure Gaussian window at β = 1/4, accuracy
	// caps around 10 digits regardless of taps.
	d := window.DesignGaussian(64, 0.25)
	p := Params{N: 512, P: 8, Mu: 5, Nu: 4, B: 64, Win: d.Window}
	e := soiVsDirect(t, p, 11)
	if e > 1e-7 {
		t.Errorf("gaussian window error %.3e, want usable (~1e-8..1e-10)", e)
	}
	if e < 1e-13 {
		t.Errorf("gaussian window error %.3e suspiciously low; ceiling should bind", e)
	}
	// And the two-parameter window at identical B must be clearly better.
	p.Win = nil
	e2 := soiVsDirect(t, p, 11)
	if e2 > e/10 {
		t.Errorf("tau-sigma error %.3e not clearly better than gaussian %.3e", e2, e)
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []struct {
		p    Params
		frag string
	}{
		{Params{N: 0, P: 1, Mu: 5, Nu: 4, B: 8}, "N must be positive"},
		{Params{N: 64, P: 0, Mu: 5, Nu: 4, B: 8}, "P must be positive"},
		{Params{N: 65, P: 4, Mu: 5, Nu: 4, B: 8}, "must divide N"},
		{Params{N: 64, P: 4, Mu: 0, Nu: 4, B: 8}, "must be positive"},
		{Params{N: 64, P: 4, Mu: 4, Nu: 5, B: 8}, "must exceed 1"},
		{Params{N: 64, P: 4, Mu: 10, Nu: 8, B: 8}, "lowest terms"},
		{Params{N: 64, P: 4, Mu: 5, Nu: 4, B: 1}, "too small"},
		{Params{N: 60, P: 4, Mu: 5, Nu: 4, B: 8}, "must divide M"},
		{Params{N: 64, P: 4, Mu: 5, Nu: 4, B: 32}, "exceeds M"},
	}
	for _, c := range bad {
		err := c.p.Validate()
		if err == nil {
			t.Errorf("Validate(%+v): expected error containing %q", c.p, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Validate(%+v) = %q, want fragment %q", c.p, err, c.frag)
		}
	}
}

func TestTransformArgumentErrors(t *testing.T) {
	p := Params{N: 256, P: 4, Mu: 5, Nu: 4, B: 32}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]complex128, p.N)
	if err := pl.Transform(buf[:100], buf); err == nil {
		t.Error("expected length error")
	}
	if err := pl.Transform(buf, buf); err == nil {
		t.Error("expected aliasing error")
	}
}

func TestPlanAccessors(t *testing.T) {
	p := Params{N: 1024, P: 8, Mu: 5, Nu: 4, B: 72}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if pl.M() != 128 || pl.MPrime() != 160 || pl.NPrime() != 1280 {
		t.Errorf("M=%d M'=%d N'=%d", pl.M(), pl.MPrime(), pl.NPrime())
	}
	if pl.HaloLen() != 71*8 {
		t.Errorf("HaloLen = %d", pl.HaloLen())
	}
	if pl.ConvFlops() <= 0 || pl.FFTFlops() <= 0 {
		t.Error("flop counters must be positive")
	}
	if pl.Params().B != 72 {
		t.Errorf("Params not preserved: %+v", pl.Params())
	}
	// Paper Section 7.4: at B=72, convolution arithmetic is around 4× the
	// FFT arithmetic for large M. Allow a broad band at this small size.
	ratio := float64(pl.ConvFlops()) / float64(pl.FFTFlops())
	if ratio < 1 || ratio > 12 {
		t.Errorf("conv/fft flop ratio %.2f outside sanity band", ratio)
	}
	if pl.Metrics().Kappa < 1 {
		t.Errorf("kappa %.3g < 1", pl.Metrics().Kappa)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams(1<<20, 16)
	if err := p.Validate(); err != nil {
		t.Fatalf("DefaultParams invalid: %v", err)
	}
	if p.Beta() != 0.25 {
		t.Errorf("Beta = %g", p.Beta())
	}
}

func TestCompactSupportWindowEndToEnd(t *testing.T) {
	// Paper Section 8: compactly supported windows eliminate aliasing
	// entirely; accuracy is then set by truncation alone, which decays
	// sub-exponentially — usable, but needing more taps than tau-sigma.
	w, err := window.NewCompactBump(0.25, 80)
	if err != nil {
		t.Fatal(err)
	}
	p := Params{N: 1024, P: 8, Mu: 5, Nu: 4, B: 96, Win: w}
	e := soiVsDirect(t, p, 17)
	if e > 1e-6 {
		t.Errorf("compact window error %.3e too large to be useful", e)
	}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Metrics().EpsAlias != 0 {
		t.Errorf("aliasing should be exactly zero, got %.3g", pl.Metrics().EpsAlias)
	}
}

func TestTransformSegmentMatchesFull(t *testing.T) {
	p := Params{N: 1024, P: 8, Mu: 5, Nu: 4, B: 48}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(p.N, 23)
	full := make([]complex128, p.N)
	if err := pl.Transform(full, src); err != nil {
		t.Fatal(err)
	}
	m := pl.M()
	for s := 0; s < p.P; s++ {
		seg := make([]complex128, m)
		if err := pl.TransformSegment(seg, src, s); err != nil {
			t.Fatalf("segment %d: %v", s, err)
		}
		// The segment path computes the P-point DFT row as a direct dot
		// product, so it differs from the full transform only by
		// floating-point reordering (relative ~1e-13 here).
		if e := signal.MaxAbsErr(seg, full[s*m:(s+1)*m]); e > 1e-10 {
			t.Errorf("segment %d differs from full transform by %.3e", s, e)
		}
	}
}

func TestTransformSegmentErrors(t *testing.T) {
	p := Params{N: 256, P: 4, Mu: 5, Nu: 4, B: 16}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]complex128, 256)
	seg := make([]complex128, 64)
	if err := pl.TransformSegment(seg, buf, -1); err == nil {
		t.Error("expected range error for s=-1")
	}
	if err := pl.TransformSegment(seg, buf, 4); err == nil {
		t.Error("expected range error for s=P")
	}
	if err := pl.TransformSegment(seg[:10], buf, 0); err == nil {
		t.Error("expected length error")
	}
}

func TestKaiserWindowEndToEnd(t *testing.T) {
	// Kaiser-Bessel with T=B/2: exactly zero truncation error; accuracy
	// capped near 5 digits at beta=1/4 by the kappa-alias tension.
	d := window.DesignKaiser(48, 0.25, 1e3)
	p := Params{N: 512, P: 8, Mu: 5, Nu: 4, B: 48, Win: d.Window}
	e := soiVsDirect(t, p, 19)
	if e > 1e-3 {
		t.Errorf("kaiser window error %.3e unusably large", e)
	}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Metrics().EpsTrunc != 0 {
		t.Errorf("truncation should be exactly zero, got %.3g", pl.Metrics().EpsTrunc)
	}
}

func TestTransformSteadyStateAllocs(t *testing.T) {
	// The allocation-regression gate: with one worker (no goroutine
	// spawning) the pooled workspaces, pooled FFT scratch and
	// workspace-resident timing cells make repeated transforms exactly
	// allocation-free. A nonzero count here means a scratch buffer,
	// closure or timing cell escaped back onto the per-call path.
	if raceEnabled {
		// The race detector makes sync.Pool drop puts at random, so the
		// pooled workspaces are legitimately re-allocated under -race.
		t.Skip("zero-alloc guarantee requires an uninstrumented sync.Pool")
	}
	p := Params{N: 4096, P: 8, Mu: 5, Nu: 4, B: 48, Workers: 1}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(p.N, 41)
	dst := make([]complex128, p.N)
	// Warm the pools.
	if err := pl.Transform(dst, src); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := pl.Transform(dst, src); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state serial Transform allocates %.0f objects per run; want 0", allocs)
	}

	// The parallel path may allocate goroutine bookkeeping (closures,
	// wait-group frames) but must not regress to per-element or
	// per-buffer allocation: a generous fixed bound catches that.
	pp := Params{N: 4096, P: 8, Mu: 5, Nu: 4, B: 48, Workers: 4}
	plp, err := NewPlan(pp)
	if err != nil {
		t.Fatal(err)
	}
	if err := plp.Transform(dst, src); err != nil {
		t.Fatal(err)
	}
	pallocs := testing.AllocsPerRun(10, func() {
		if err := plp.Transform(dst, src); err != nil {
			t.Fatal(err)
		}
	})
	if pallocs > 32 {
		t.Errorf("steady-state parallel Transform allocates %.0f objects per run; want ≤ 32 (goroutine bookkeeping only)", pallocs)
	}
}

func TestConvolveRangeJammedBitIdentical(t *testing.T) {
	p := Params{N: 2048, P: 8, Mu: 5, Nu: 4, B: 40}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(p.N, 51)
	ext := make([]complex128, p.N+pl.HaloLen())
	copy(ext, src)
	copy(ext[p.N:], src[:pl.HaloLen()])
	a := make([]complex128, pl.MPrime()*p.P)
	b := make([]complex128, pl.MPrime()*p.P)
	pl.convolveRangeRef(a, ext, 0, pl.MPrime(), 0)
	pl.ConvolveRangeJammed(b, ext, 0, pl.MPrime(), 0)
	if e := signal.MaxAbsErr(a, b); e != 0 {
		t.Errorf("jammed kernel differs by %.3e", e)
	}
	// Aligned sub-range.
	sub := make([]complex128, 10*p.Mu*p.P)
	pl.ConvolveRangeJammed(sub, ext, 5*p.Mu, 15*p.Mu, 0)
	if e := signal.MaxAbsErr(sub, a[5*p.Mu*p.P:15*p.Mu*p.P]); e != 0 {
		t.Errorf("jammed sub-range differs by %.3e", e)
	}
	// Unaligned ranges fall back to the production kernel and agree with
	// it bit for bit.
	fast := make([]complex128, pl.MPrime()*p.P)
	pl.ConvolveRange(fast, ext, 0, pl.MPrime(), 0)
	sub2 := make([]complex128, 7*p.P)
	pl.ConvolveRangeJammed(sub2, ext, 3, 10, 0)
	if e := signal.MaxAbsErr(sub2, fast[3*p.P:10*p.P]); e != 0 {
		t.Errorf("jammed fallback differs by %.3e", e)
	}
}

// TestConvolveRangeMatchesReference pins the factorized real-tap kernel
// (the production ConvolveRange) to the complex-tensor reference within
// a few ulps: the two compute the same sums with different — equally
// valid — rounding.
func TestConvolveRangeMatchesReference(t *testing.T) {
	for _, p := range []Params{
		{N: 2048, P: 8, Mu: 5, Nu: 4, B: 40},
		{N: 1536, P: 4, Mu: 5, Nu: 4, B: 24},
		{N: 4096, P: 16, Mu: 9, Nu: 8, B: 32},
	} {
		pl, err := NewPlan(p)
		if err != nil {
			t.Fatal(err)
		}
		src := signal.Random(p.N, 52)
		ext := make([]complex128, p.N+pl.HaloLen())
		copy(ext, src)
		copy(ext[p.N:], src[:pl.HaloLen()])
		ref := make([]complex128, pl.MPrime()*p.P)
		got := make([]complex128, pl.MPrime()*p.P)
		pl.convolveRangeRef(ref, ext, 0, pl.MPrime(), 0)
		pl.ConvolveRange(got, ext, 0, pl.MPrime(), 0)
		if e := signal.MaxAbsErr(got, ref); e > 1e-13 {
			t.Errorf("P=%d B=%d: fast kernel differs from reference by %.3e", p.P, p.B, e)
		}
		// Offset sub-ranges must agree with the corresponding full rows.
		subLo, subHi := pl.MPrime()/4, pl.MPrime()/2
		sub := make([]complex128, (subHi-subLo)*p.P)
		pl.ConvolveRange(sub, ext, subLo, subHi, 0)
		if e := signal.MaxAbsErr(sub, got[subLo*p.P:subHi*p.P]); e != 0 {
			t.Errorf("P=%d B=%d: sub-range differs by %.3e", p.P, p.B, e)
		}
	}
}
