package core

import (
	"context"
	"fmt"
	"time"

	"soifft/internal/adapt"
	"soifft/internal/exch"
	"soifft/internal/instrument"
)

// This file is the streamed (async pipelined) variant of the distributed
// driver: instead of convolving every block and then blocking in one
// monolithic all-to-all, the producer fans phase-1/2 output out
// tile-by-tile while later tiles are still convolving, and a consumer
// goroutine scatters chunks into phase-4 layout as they land. Wire time
// hides behind compute; DistributedTimes.Exchange reports only the
// un-hidden remainder (send backpressure plus the post-compute drain
// tail), and the overlapped span is booked via Recorder.AddHiddenExchange.
//
// The chunk schedule is derived identically on every rank from the plan
// and the world size alone: tile k covers convolution blocks
// [bounds[k], bounds[k+1]), and the chunk for (src→dst, k) is lanes
// [bounds[k]·spr, bounds[k+1]·spr) of dst's per-source chunk — a
// contiguous span of the same packed buffer the blocking exchange sends,
// so the streamed chunks partition the blocking payload exactly (same
// bytes, same analytic 16·(1+β)·N·(R−1)/R budget) and the spectra are
// bit-identical for every window.

// tileBounds splits this rank's bpr convolution blocks into T tiles,
// T = min(bpr, max(4, 2·window)): enough tiles to keep the window busy,
// never more than one block each. bounds has T+1 entries.
//
// The schedule must come out identical on every rank — receivers size
// the expected chunks from their own bounds. A fixed WithAsyncWindow(w)
// is rank-invariant by construction; under the adaptive controller the
// per-rank windows diverge between transforms, so the schedule is
// pinned to the controller's rank-invariant ceiling (the world size)
// and the live window steers only the per-destination credit depth.
func (e *distExec) tileBounds() []int {
	w := e.window
	if e.adaptive {
		if w = e.r; w < 2 {
			w = 2
		}
	}
	T := 2 * w
	if T < 4 {
		T = 4
	}
	if T > e.bpr {
		T = e.bpr
	}
	bounds := make([]int, T+1)
	for k := 0; k <= T; k++ {
		bounds[k] = k * e.bpr / T
	}
	return bounds
}

// runStreamed executes phases 1–4 with the chunked overlapped exchange.
// The capability was checked by the caller on the unwrapped Comm;
// e.c may be the counting wrapper, which forwards it.
func (e *distExec) runStreamed(ctx context.Context, localOut, localIn []complex128) error {
	bounds := e.tileBounds()
	sizes := make([]int, len(bounds)-1)
	for k := range sizes {
		sizes[k] = (bounds[k+1] - bounds[k]) * e.spr
	}
	st := e.c.(StreamComm).StartAlltoallv(exch.Options{Sizes: sizes, Window: e.window})
	defer st.Close()

	e.tr.Counter(e.tid, e.rank, "adaptive_window", int64(e.window))
	streamStart := time.Now()

	// Phase-4 input in column-major (segment-major) layout: segment ss's
	// oversampled sequence is the contiguous xcol[ss·mp, (ss+1)·mp), with
	// source src's block j at offset src·bpr+j — exactly the xt vector the
	// blocking phase4 gathers, assembled here by the consumer while later
	// chunks are still on the wire.
	xcol := make([]complex128, e.spr*e.pl.mp)
	consErr := make(chan error, 1)
	go func() { consErr <- e.consumeStream(st, bounds, xcol) }()

	_, sendWait, perr := e.produceStream(ctx, st, bounds, localIn, nil)
	if perr != nil {
		// A producer that bailed mid-schedule left self-delivery slots the
		// consumer would otherwise wait on forever; Close aborts the
		// tracker so the drain below stays bounded.
		st.Close()
	}

	// Drain: whatever the producer's outcome, wait for the consumer — its
	// receive loops are deadline-bounded, and xcol must not be shared past
	// this frame. The visible exchange time is the send backpressure plus
	// this tail; everything else ran behind compute.
	prodDone := time.Now()
	e.tr.Begin(e.tid, e.rank, instrument.StageExchange.String())
	cerr := <-consErr
	e.tr.End(e.tid, e.rank, instrument.StageExchange.String())
	e.dt.Exchange = sendWait + time.Since(prodDone)
	hidden := time.Since(streamStart) - e.dt.Exchange
	if hidden < 0 {
		hidden = 0
	}
	if e.timed && hidden > 0 {
		e.rec.AddHiddenExchange(hidden)
	}

	if perr != nil {
		return perr
	}
	if cerr != nil {
		return cerr
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if e.adaptive {
		e.observeAdaptive(hidden, sendWait)
	}

	t0 := time.Now()
	e.tr.Begin(e.tid, e.rank, instrument.StageSegmentFFT.String())
	e.phase4Cols(xcol, localOut)
	e.dt.SegmentFT = time.Since(t0)
	e.tr.End(e.tid, e.rank, instrument.StageSegmentFFT.String())
	return nil
}

// produceStream is the tile-wise phase 1–2: halo exchange, then per tile
// convolve + block-FFT + pack + fan out, so destination links carry tile
// k while tile k+1 is still convolving. The packed send buffer is
// persistent and written once per region — in-flight chunks reference it
// until their frames flush; it is returned because the coded exchange
// encodes parity over it after the fan-out. sendWait is the cumulative
// time Send spent blocked on window backpressure. A nil onSendErr fails
// fast on the first send error; the coded path passes a callback that
// marks the destination dead and continues.
func (e *distExec) produceStream(ctx context.Context, st exch.Stream, bounds []int, localIn []complex128, onSendErr func(dst int, err error) error) (send []complex128, sendWait time.Duration, err error) {
	pl, p, rank, r := e.pl, e.pl.prm, e.rank, e.r

	// Phase 1: post the halo prefix(es) immediately (sends are
	// asynchronous); the receive is deferred until the first tile whose
	// rows read past the owned block.
	halo := pl.HaloLen()
	t0 := time.Now()
	e.tr.Begin(e.tid, rank, instrument.StageHalo.String())
	ext := make([]complex128, e.nLocal+halo)
	copy(ext, localIn)
	depth := 0
	var hs *haloStream
	if r > 1 {
		if e.haloChecked {
			var herr error
			hs, herr = e.startHaloStream(localIn, ext)
			if herr != nil {
				e.dt.Halo += time.Since(t0)
				e.tr.End(e.tid, rank, instrument.StageHalo.String())
				return nil, 0, herr
			}
		} else {
			for d := 1; (d-1)*e.nLocal < halo; d++ {
				need := halo - (d-1)*e.nLocal
				if need > e.nLocal {
					need = e.nLocal
				}
				e.c.Send((rank-d+r*d)%r, tagHalo+d, localIn[:need])
				depth = d
			}
		}
	}
	e.dt.Halo += time.Since(t0)
	e.tr.End(e.tid, rank, instrument.StageHalo.String())

	// jMid: first local row whose convolution taps leave the owned block.
	jLo := rank * e.bpr
	jMid := jLo
	for jMid < jLo+e.bpr && pl.rowEndCol(jMid) <= (rank+1)*e.nLocal {
		jMid++
	}

	maxTile := 0
	for k := 0; k+1 < len(bounds); k++ {
		if w := bounds[k+1] - bounds[k]; w > maxTile {
			maxTile = w
		}
	}
	send = make([]complex128, e.bpr*p.P) // persistent: dst t's chunk at [t·chunk, (t+1)·chunk)
	conv := make([]complex128, maxTile*p.P)
	v := make([]complex128, maxTile*p.P)

	haveHalo := false
	for k := 0; k+1 < len(bounds); k++ {
		lo, hi := bounds[k], bounds[k+1]

		// The boundary rows need the neighbour prefix(es); interior tiles
		// before this point overlapped with the halo flight.
		if !haveHalo && jLo+hi > jMid {
			t0 = time.Now()
			e.tr.Begin(e.tid, rank, instrument.StageHalo.String())
			switch {
			case r == 1:
				copy(ext[e.nLocal:], localIn[:halo])
			case hs != nil:
				if herr := hs.wait(); herr != nil {
					e.dt.Halo += time.Since(t0)
					e.tr.End(e.tid, rank, instrument.StageHalo.String())
					return send, sendWait, herr
				}
			default:
				for d := 1; d <= depth; d++ {
					data := e.c.RecvC((rank+d)%r, tagHalo+d)
					copy(ext[e.nLocal+(d-1)*e.nLocal:], data)
				}
			}
			e.dt.Halo += time.Since(t0)
			e.tr.End(e.tid, rank, instrument.StageHalo.String())
			haveHalo = true
		}

		// Phase 2 for this tile: convolution rows, their P-point FFTs, and
		// the node-local pack (lanes [t·spr, (t+1)·spr) of each block to
		// destination t) — identical arithmetic to the blocking phase12,
		// just row-range-restricted, so the results are bit-identical.
		t0 = time.Now()
		e.tr.Begin(e.tid, rank, instrument.StageConvolve.String())
		parfor(e.workers, hi-lo, func(a, b int) {
			w0 := time.Now()
			pl.ConvolveRange(conv[a*p.P:b*p.P], ext, jLo+lo+a, jLo+lo+b, rank*e.nLocal)
			pl.BlockFFTBatch(v[a*p.P:b*p.P], conv[a*p.P:b*p.P], b-a)
			if e.timed {
				e.convBusy.Add(int64(time.Since(w0)))
			}
		})
		for t := 0; t < r; t++ {
			base := t * e.chunk
			for j := lo; j < hi; j++ {
				copy(send[base+j*e.spr:base+(j+1)*e.spr], v[(j-lo)*p.P+t*e.spr:(j-lo)*p.P+(t+1)*e.spr])
			}
		}
		e.dt.Convolve += time.Since(t0)
		e.tr.End(e.tid, rank, instrument.StageConvolve.String())

		// Fan tile k out, neighbours first, self last; Send blocks only on
		// the in-flight window (wire pacing), which we book as visible
		// exchange time.
		for off := 0; off < r; off++ {
			dst := (rank + 1 + off) % r
			data := send[dst*e.chunk+lo*e.spr : dst*e.chunk+hi*e.spr]
			w0 := time.Now()
			e.tr.ChunkBegin(e.tid, rank, "exchange_chunk_send", k)
			serr := st.Send(dst, k, data)
			e.tr.ChunkEnd(e.tid, rank, "exchange_chunk_send", k)
			sendWait += time.Since(w0)
			if serr != nil {
				if onSendErr == nil {
					return send, sendWait, serr
				}
				if err := onSendErr(dst, serr); err != nil {
					return send, sendWait, err
				}
			}
		}
		if err := ctx.Err(); err != nil {
			return send, sendWait, err
		}
	}
	return send, sendWait, nil
}

// consumeStream scatters arriving chunks into the column-major phase-4
// buffer — the receive side of the stride-P transpose, overlapped with
// the wire. The first per-source failure is returned (after the stream
// drains; the tracker retires a failed source's remaining slots).
func (e *distExec) consumeStream(st exch.Stream, bounds []int, xcol []complex128) error {
	mp := e.pl.mp
	var firstErr error
	for {
		c, ok := st.Next()
		if !ok {
			return firstErr
		}
		if c.Err != nil {
			if firstErr == nil {
				firstErr = c.Err
			}
			continue
		}
		lo, hi := bounds[c.Index], bounds[c.Index+1]
		if len(c.Data) != (hi-lo)*e.spr {
			if firstErr == nil {
				firstErr = fmt.Errorf("core: rank %d: stream chunk %d from %d has %d elements, want %d: %w",
					e.rank, c.Index, c.Src, len(c.Data), (hi-lo)*e.spr, ErrLength)
			}
			continue
		}
		e.tr.ChunkInstant(e.tid, e.rank, "exchange_chunk_recv", c.Index)
		for j := lo; j < hi; j++ {
			row := c.Data[(j-lo)*e.spr : (j-lo+1)*e.spr]
			for ss, val := range row {
				xcol[ss*mp+c.Src*e.bpr+j] = val
			}
		}
	}
}

// observeAdaptive feeds this run's measured overlap back to the plan's
// window controller so the next transform starts at the adapted window.
// Called only on successful streamed runs whose window the controller
// chose (never for an explicit WithAsyncWindow); the decision is traced
// with bounded-cardinality names so long campaigns don't grow the
// tracer's interned-name table.
func (e *distExec) observeAdaptive(hidden, sendWait time.Duration) {
	visible := e.dt.Exchange
	m := adapt.Measurement{Window: e.window}
	if total := hidden + visible; total > 0 {
		m.OverlapRatio = float64(hidden) / float64(total)
	}
	if visible > 0 {
		m.StallShare = float64(sendWait) / float64(visible)
		if m.StallShare > 1 {
			m.StallShare = 1
		}
	}
	if e.dt.Convolve > 0 {
		m.WireComputeRatio = float64(hidden+visible) / float64(e.dt.Convolve)
	}
	d := e.pl.adaptObserve(e.rank, m)
	e.tr.Counter(e.tid, e.rank, "adaptive_window", int64(d.Window))
	if d.Changed {
		e.tr.ChunkInstant(e.tid, e.rank, "adaptive_decision", d.Window)
	}
}

// phase4Cols is phase4 over the pre-scattered column-major buffer:
// segment ss's input is already contiguous, so it feeds SegmentFFT with
// no per-segment gather (the consumer did the transpose behind the wire).
func (e *distExec) phase4Cols(xcol, out []complex128) {
	pl := e.pl
	parfor(e.workers, e.spr, func(sLo, sHi int) {
		w0 := time.Now()
		yt := make([]complex128, pl.mp)
		for ss := sLo; ss < sHi; ss++ {
			pl.SegmentFFT(yt, xcol[ss*pl.mp:(ss+1)*pl.mp])
			pl.Demodulate(out[ss*pl.m:(ss+1)*pl.m], yt)
		}
		if e.timed {
			e.segBusy.Add(int64(time.Since(w0)))
		}
	})
}
