// Package core implements the paper's primary contribution: the SOI
// (segment-of-interest) low-communication DFT factorization, Eq. (6):
//
//	y ≈ (I_P ⊗ Ŵ⁻¹ P_proj F_M') · P_perm^{P,N'} · (I_M' ⊗ F_P) · W · x
//
// Reading right to left: an oversampled sparse convolution W·x (the only
// step that mixes neighbouring input elements), a batch of P-point FFTs,
// one global stride-P permutation (the single all-to-all of the title),
// then per-segment M'-point FFTs, projection to M entries, and
// demodulation by the inverse window samples.
//
// The package provides both a shared-memory execution path (Plan.Transform,
// used for validation and node-local work) and the building blocks the
// distributed driver composes over an mpi.Comm.
package core

import (
	"fmt"

	"soifft/internal/window"
)

// Params configures a SOI factorization of an N-point DFT.
type Params struct {
	// N is the transform length; it must equal M*P for integral M.
	N int
	// P is the number of frequency segments (paper: segments = ranks ×
	// segments-per-rank). Each segment has M = N/P output points.
	P int
	// Mu, Nu define the oversampling rate 1+β = Mu/Nu (paper favourite:
	// 5/4, i.e. β = 1/4). Nu must divide M.
	Mu, Nu int
	// B is the number of convolution taps per output point (paper
	// Section 6: each output is a length-B stride-P inner product).
	// The paper's full-accuracy setting is B = 72.
	B int
	// Win is the reference window. When nil, a window is designed
	// automatically for (B, β) with κ ≤ 1e3.
	Win window.Window
	// Workers bounds the goroutines used by shared-memory execution;
	// 0 means GOMAXPROCS.
	Workers int
	// Exchange selects the all-to-all implementation for distributed
	// runs (paper Fig 3 offers both the collective primitive and a
	// pairwise non-blocking send-receive schedule).
	Exchange ExchangeKind
}

// ExchangeKind selects how the single global exchange is realized.
type ExchangeKind int

// Exchange implementations.
const (
	// ExchangeAlltoall uses the collective all-to-all primitive.
	ExchangeAlltoall ExchangeKind = iota
	// ExchangePairwise uses a schedule of pairwise send-receive rounds.
	ExchangePairwise
)

// DefaultParams returns the paper's favourite configuration (β = 1/4,
// B = 72 full accuracy) for an N-point transform with P segments.
func DefaultParams(n, p int) Params {
	return Params{N: n, P: p, Mu: 5, Nu: 4, B: 72}
}

// Beta returns the oversampling fraction β = Mu/Nu − 1.
func (p Params) Beta() float64 { return float64(p.Mu)/float64(p.Nu) - 1 }

// Validate checks the arithmetic constraints of the factorization and
// returns a descriptive error for the first violation found.
func (p Params) Validate() error {
	switch {
	case p.N <= 0:
		return fmt.Errorf("core: N must be positive, got %d", p.N)
	case p.P <= 0:
		return fmt.Errorf("core: P must be positive, got %d", p.P)
	case p.N%p.P != 0:
		return fmt.Errorf("core: P=%d must divide N=%d", p.P, p.N)
	case p.Mu <= 0 || p.Nu <= 0:
		return fmt.Errorf("core: oversampling Mu/Nu must be positive, got %d/%d", p.Mu, p.Nu)
	case p.Mu <= p.Nu:
		return fmt.Errorf("core: oversampling Mu/Nu=%d/%d must exceed 1", p.Mu, p.Nu)
	case gcd(p.Mu, p.Nu) != 1:
		return fmt.Errorf("core: Mu/Nu=%d/%d must be in lowest terms", p.Mu, p.Nu)
	case p.B < 2:
		return fmt.Errorf("core: B=%d too small; need at least 2 taps", p.B)
	}
	m := p.N / p.P
	if m%p.Nu != 0 {
		return fmt.Errorf("core: Nu=%d must divide M=N/P=%d", p.Nu, m)
	}
	if p.B > m {
		return fmt.Errorf("core: B=%d exceeds M=%d; taps would wrap past one period", p.B, m)
	}
	return nil
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
