package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"soifft/internal/erasure"
	"soifft/internal/instrument"
	"soifft/internal/mpi"
	"soifft/internal/signal"
)

// codedParams is a shape with several segments and blocks per rank on 4
// ranks, so takeover reassembles a non-trivial column.
var codedParams = Params{N: 1024, P: 8, Mu: 5, Nu: 4, B: 32, Workers: 1}

// runSOICoded executes the coded transform over r in-process ranks and
// returns each rank's (output block, error).
func runSOICoded(t *testing.T, pl *Plan, src []complex128, r, m int,
	wrap func(c *mpi.Comm) CodedComm) ([][]complex128, []error) {
	t.Helper()
	w, err := mpi.NewWorld(r)
	if err != nil {
		t.Fatal(err)
	}
	nLocal := len(src) / r
	outs := make([][]complex128, r)
	errs := make([]error, r)
	if err := w.Run(func(c *mpi.Comm) error {
		rank := c.Rank()
		var cc CodedComm = c
		if wrap != nil {
			cc = wrap(c)
		}
		out := make([]complex128, nLocal)
		_, err := pl.RunDistributed(context.Background(), cc, out, src[rank*nLocal:(rank+1)*nLocal], WithCoding(m))
		outs[rank], errs[rank] = out, err
		return nil // judge per-rank errors in the caller, not via world abort
	}); err != nil {
		t.Fatalf("world: %v", err)
	}
	return outs, errs
}

func TestCodedMatchesUncodedBitExact(t *testing.T) {
	// With no failures the coded exchange must be invisible: same bits
	// out as the plain driver, for every parity budget.
	const r = 4
	pl, err := NewPlan(codedParams)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(codedParams.N, 77)
	ref, _, _ := runSOIDistributed(t, codedParams, r, 77)
	for m := 0; m <= r-1; m++ {
		outs, errs := runSOICoded(t, pl, src, r, m, nil)
		for rank := 0; rank < r; rank++ {
			if errs[rank] != nil {
				t.Fatalf("m=%d rank %d: %v", m, rank, errs[rank])
			}
			nLocal := codedParams.N / r
			if e := signal.MaxAbsErr(outs[rank], ref[rank*nLocal:(rank+1)*nLocal]); e != 0 {
				t.Errorf("m=%d rank %d: coded differs from uncoded by %.3e", m, rank, e)
			}
		}
	}
}

func TestCodedWireOverhead(t *testing.T) {
	// Acceptance bound: coded wire bytes ≤ (1 + m/R + ε)·uncoded, with
	// the uncoded volume checked against the analytic
	// 16·(1+β)·N·(R−1)/R model, and the parity surcharge exactly
	// R·m·chunk·16.
	const r, m = 4, 1
	pl, err := NewPlan(codedParams)
	if err != nil {
		t.Fatal(err)
	}
	rec := instrument.New(instrument.LevelCounters)
	pl.SetRecorder(rec)
	defer pl.SetRecorder(nil)
	src := signal.Random(codedParams.N, 13)
	_, errs := runSOICoded(t, pl, src, r, m, nil)
	for rank, e := range errs {
		if e != nil {
			t.Fatalf("rank %d: %v", rank, e)
		}
	}
	s := rec.Snapshot().Comm
	nPrime := codedParams.N / codedParams.Nu * codedParams.Mu
	analytic := int64(16 * nPrime * (r - 1) / r) // 16·(1+β)·N·(R−1)/R
	if s.AlltoallBytes != analytic {
		t.Errorf("data bytes = %d, want analytic %d", s.AlltoallBytes, analytic)
	}
	chunk := pl.MPrime() / r * (codedParams.P / r)
	if want := int64(r * m * chunk * 16); s.ParityBytes != want {
		t.Errorf("parity bytes = %d, want exactly R·m·chunk·16 = %d", s.ParityBytes, want)
	}
	bound := float64(analytic) * (1 + float64(m)/float64(r) + 0.1)
	if total := float64(s.AlltoallBytes + s.ParityBytes); total > bound {
		t.Errorf("coded wire bytes %.0f exceed (1+m/R+ε) bound %.0f", total, bound)
	}
	if s.Alltoalls != 1 {
		t.Errorf("coded mode used %d all-to-alls, want 1", s.Alltoalls)
	}
	if s.Reconstructions != 0 || s.DegradedTransforms != 0 || s.RecoveryBytes != 0 {
		t.Errorf("clean run booked recovery activity: %+v", s)
	}
}

func TestValidateCoded(t *testing.T) {
	for _, c := range []struct{ r, m int }{{4, 0}, {4, 3}, {8, 1}, {1, 0}, {48, 4}} {
		if err := ValidateCoded(c.r, c.m); err != nil {
			t.Errorf("ValidateCoded(%d,%d): unexpected error %v", c.r, c.m, err)
		}
	}
	for _, c := range []struct{ r, m int }{{0, 0}, {-2, 1}, {4, -1}, {4, 4}, {48, 5}, {52, 1}} {
		err := ValidateCoded(c.r, c.m)
		if !errors.Is(err, ErrPlanMismatch) {
			t.Errorf("ValidateCoded(%d,%d): err %v, want ErrPlanMismatch", c.r, c.m, err)
		}
	}
}

// linkFault is a typed transport fault the death-simulating wrapper
// raises for links to a dead peer.
type linkFault struct{ peer int }

func (f *linkFault) Error() string { return fmt.Sprintf("test: peer %d is dead", f.peer) }
func (f *linkFault) CommFault()    {}

// postFlushDeath simulates the headline failure mode over the
// in-process runtime: the victim's exchange frames reached their peers
// (a graceful transport flushes on close), but the victim is gone by
// the view round, so every control-protocol frame to or from it fails
// typed. Combined with a CodedExchangeFailpoint that stops the victim
// rank, this reproduces mid-transform death deterministically.
type postFlushDeath struct {
	*mpi.Comm
	victims map[int]bool
}

func (c *postFlushDeath) SendChecked(to, tag int, data any) error {
	if c.victims[to] && tag <= tagCodedView {
		return &linkFault{peer: to}
	}
	return c.Comm.SendChecked(to, tag, data)
}

func (c *postFlushDeath) RecvCChecked(from, tag int) ([]complex128, error) {
	if c.victims[from] && tag <= tagCodedView {
		return nil, &linkFault{peer: from}
	}
	return c.Comm.RecvCChecked(from, tag)
}

var errFailpointKill = errors.New("test: failpoint kill")

// runSOICodedWithDeaths kills the given ranks at the post-fan-out
// failpoint and runs everyone else through the wrapper above.
func runSOICodedWithDeaths(t *testing.T, pl *Plan, src []complex128, r, m int, victims ...int) ([][]complex128, []error) {
	t.Helper()
	vset := make(map[int]bool, len(victims))
	for _, v := range victims {
		vset[v] = true
	}
	prev := CodedExchangeFailpoint
	CodedExchangeFailpoint = func(rank int) error {
		if vset[rank] {
			return errFailpointKill
		}
		return nil
	}
	defer func() { CodedExchangeFailpoint = prev }()
	return runSOICoded(t, pl, src, r, m, func(c *mpi.Comm) CodedComm {
		return &postFlushDeath{Comm: c, victims: vset}
	})
}

func TestCodedSurvivesAnySingleDeath(t *testing.T) {
	// m=1 headline guarantee: kill any one rank after its sends flushed;
	// every survivor finishes bit-exact and reports a DegradedError
	// naming the victim, and the coordinator's takeover block for the
	// victim matches the uncoded run bit for bit.
	const r, m = 4, 1
	pl, err := NewPlan(codedParams)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(codedParams.N, 42)
	ref, _, _ := runSOIDistributed(t, codedParams, r, 42)
	nLocal := codedParams.N / r
	for victim := 0; victim < r; victim++ {
		outs, errs := runSOICodedWithDeaths(t, pl, src, r, m, victim)
		wantCoord := 0
		if victim == 0 {
			wantCoord = 1
		}
		for rank := 0; rank < r; rank++ {
			if rank == victim {
				if !errors.Is(errs[rank], errFailpointKill) {
					t.Errorf("victim %d: err %v, want failpoint kill", victim, errs[rank])
				}
				continue
			}
			var deg *DegradedError
			if !errors.As(errs[rank], &deg) {
				t.Fatalf("victim %d rank %d: err %v, want DegradedError", victim, rank, errs[rank])
			}
			if len(deg.ReconstructedRanks) != 1 || deg.ReconstructedRanks[0] != victim {
				t.Errorf("victim %d rank %d: reconstructed %v", victim, rank, deg.ReconstructedRanks)
			}
			if deg.Coordinator != wantCoord {
				t.Errorf("victim %d rank %d: coordinator %d, want %d", victim, rank, deg.Coordinator, wantCoord)
			}
			if e := signal.MaxAbsErr(outs[rank], ref[rank*nLocal:(rank+1)*nLocal]); e != 0 {
				t.Errorf("victim %d rank %d: degraded output differs by %.3e", victim, rank, e)
			}
			if rank == wantCoord {
				if e := signal.MaxAbsErr(deg.TakenOver[victim], ref[victim*nLocal:(victim+1)*nLocal]); e != 0 {
					t.Errorf("victim %d: taken-over block differs by %.3e", victim, e)
				}
			} else if len(deg.TakenOver) != 0 {
				t.Errorf("victim %d rank %d: non-coordinator has TakenOver blocks", victim, rank)
			}
		}
	}
}

func TestCodedDoubleDeathWithSingleParityFailsTyped(t *testing.T) {
	// Satellite: two dead ranks against m=1 must fail with a typed error
	// naming both dead peers — on every survivor, never a wrong answer.
	const r, m = 4, 1
	pl, err := NewPlan(codedParams)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(codedParams.N, 7)
	_, errs := runSOICodedWithDeaths(t, pl, src, r, m, 1, 2)
	for _, rank := range []int{0, 3} {
		var loss *UnrecoverableLossError
		if !errors.As(errs[rank], &loss) {
			t.Fatalf("rank %d: err %v, want UnrecoverableLossError", rank, errs[rank])
		}
		if len(loss.DeadRanks) != 2 || loss.DeadRanks[0] != 1 || loss.DeadRanks[1] != 2 {
			t.Errorf("rank %d: dead ranks %v, want [1 2]", rank, loss.DeadRanks)
		}
		if loss.Parity != m {
			t.Errorf("rank %d: parity %d, want %d", rank, loss.Parity, m)
		}
	}
}

func TestCodedDeathWithoutParityFailsTyped(t *testing.T) {
	// m=0 coded mode detects deaths but has nothing to repair with: any
	// death is a typed loss naming the victim.
	const r = 4
	pl, err := NewPlan(codedParams)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(codedParams.N, 8)
	_, errs := runSOICodedWithDeaths(t, pl, src, r, 0, 2)
	for _, rank := range []int{0, 1, 3} {
		var loss *UnrecoverableLossError
		if !errors.As(errs[rank], &loss) {
			t.Fatalf("rank %d: err %v, want UnrecoverableLossError", rank, errs[rank])
		}
		if len(loss.DeadRanks) != 1 || loss.DeadRanks[0] != 2 {
			t.Errorf("rank %d: dead ranks %v, want [2]", rank, loss.DeadRanks)
		}
	}
}

func TestCodedParityHolderOverlapFailsTyped(t *testing.T) {
	// m=2 on 4 ranks cannot survive a double death: each victim's
	// codeword loses its self share, the other victim's data share, and
	// (since parity shares sit on the next m ranks) at least one parity
	// share — 3 erasures against a budget of 2. The decode-time share
	// census must catch this and fail typed, never guess.
	const r, m = 4, 2
	pl, err := NewPlan(codedParams)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(codedParams.N, 17)
	_, errs := runSOICodedWithDeaths(t, pl, src, r, m, 1, 3)
	for _, rank := range []int{0, 2} {
		var loss *UnrecoverableLossError
		if !errors.As(errs[rank], &loss) {
			t.Fatalf("rank %d: err %v, want UnrecoverableLossError", rank, errs[rank])
		}
	}
	// The coordinator (rank 0) saw the share census come up short; the
	// other survivor learned the verdict from the outcome round.
	if !errors.Is(errs[0], erasure.ErrTooFewShares) {
		t.Errorf("coordinator err %v, want ErrTooFewShares cause", errs[0])
	}
}

func TestCodedTripleParitySurvivesDoubleDeath(t *testing.T) {
	// m=3 on 4 ranks survives any double death: a victim codeword's
	// worst case loses its self share, the other victim's data share,
	// and one parity share — exactly the m=3 budget, leaving R shares.
	const r, m = 4, 3
	pl, err := NewPlan(codedParams)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(codedParams.N, 99)
	ref, _, _ := runSOIDistributed(t, codedParams, r, 99)
	nLocal := codedParams.N / r
	outs, errs := runSOICodedWithDeaths(t, pl, src, r, m, 1, 3)
	for _, rank := range []int{0, 2} {
		var deg *DegradedError
		if !errors.As(errs[rank], &deg) {
			t.Fatalf("rank %d: err %v, want DegradedError", rank, errs[rank])
		}
		if len(deg.ReconstructedRanks) != 2 || deg.ReconstructedRanks[0] != 1 || deg.ReconstructedRanks[1] != 3 {
			t.Errorf("rank %d: reconstructed %v, want [1 3]", rank, deg.ReconstructedRanks)
		}
		if e := signal.MaxAbsErr(outs[rank], ref[rank*nLocal:(rank+1)*nLocal]); e != 0 {
			t.Errorf("rank %d: degraded output differs by %.3e", rank, e)
		}
		if rank == 0 {
			for _, v := range []int{1, 3} {
				if e := signal.MaxAbsErr(deg.TakenOver[v], ref[v*nLocal:(v+1)*nLocal]); e != 0 {
					t.Errorf("taken-over block for %d differs by %.3e", v, e)
				}
			}
		}
	}
}

func TestGatherDegradedRoutesAroundDeadRoot(t *testing.T) {
	// After a degraded run the gather lands at root when root survived,
	// and at the coordinator when root was the victim; either way the
	// assembled spectrum matches the uncoded gather bit for bit.
	const r, m = 4, 1
	pl, err := NewPlan(codedParams)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(codedParams.N, 23)
	ref, _, _ := runSOIDistributed(t, codedParams, r, 23)
	nLocal := codedParams.N / r
	for _, tc := range []struct{ victim, root, wantAt int }{
		{victim: 2, root: 0, wantAt: 0}, // root survives
		{victim: 0, root: 0, wantAt: 1}, // root dies → coordinator
	} {
		vset := map[int]bool{tc.victim: true}
		prev := CodedExchangeFailpoint
		CodedExchangeFailpoint = func(rank int) error {
			if vset[rank] {
				return errFailpointKill
			}
			return nil
		}
		fulls := make([][]complex128, r)
		w, err := mpi.NewWorld(r)
		if err != nil {
			t.Fatal(err)
		}
		runErr := w.Run(func(c *mpi.Comm) error {
			rank := c.Rank()
			cc := &postFlushDeath{Comm: c, victims: vset}
			out := make([]complex128, nLocal)
			_, err := pl.RunDistributed(context.Background(), cc, out, src[rank*nLocal:(rank+1)*nLocal], WithCoding(m))
			if rank == tc.victim {
				return nil // dead rank does not join the gather
			}
			var deg *DegradedError
			if !errors.As(err, &deg) {
				return fmt.Errorf("rank %d: err %v, want DegradedError", rank, err)
			}
			full, at, err := GatherDegraded(cc, tc.root, out, deg)
			if err != nil {
				return fmt.Errorf("rank %d: GatherDegraded: %w", rank, err)
			}
			if at != tc.wantAt {
				return fmt.Errorf("rank %d: gathered at %d, want %d", rank, at, tc.wantAt)
			}
			fulls[rank] = full
			return nil
		})
		CodedExchangeFailpoint = prev
		if runErr != nil {
			t.Fatalf("victim %d: %v", tc.victim, runErr)
		}
		for rank := 0; rank < r; rank++ {
			if rank == tc.victim {
				continue
			}
			if rank != tc.wantAt {
				if fulls[rank] != nil {
					t.Errorf("victim %d: rank %d received the gather, want only rank %d", tc.victim, rank, tc.wantAt)
				}
				continue
			}
			if e := signal.MaxAbsErr(fulls[rank], ref); e != 0 {
				t.Errorf("victim %d: gathered spectrum differs by %.3e", tc.victim, e)
			}
		}
	}
}
