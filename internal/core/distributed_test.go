package core

import (
	"context"
	"strings"
	"testing"

	"soifft/internal/fft"
	"soifft/internal/mpi"
	"soifft/internal/signal"
)

// runSOIDistributed executes the plan over r ranks (with any DistOptions
// passed through) and returns the gathered output, the direct-DFT
// reference and the traffic stats.
func runSOIDistributed(t *testing.T, p Params, r int, seed int64, opts ...DistOption) ([]complex128, []complex128, mpi.Stats) {
	t.Helper()
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	src := signal.Random(p.N, seed)
	want := make([]complex128, p.N)
	fft.Direct(want, src)
	got := make([]complex128, p.N)
	w, err := mpi.NewWorld(r)
	if err != nil {
		t.Fatal(err)
	}
	nLocal := p.N / r
	err = w.Run(func(c *mpi.Comm) error {
		in := src[c.Rank()*nLocal : (c.Rank()+1)*nLocal]
		out := got[c.Rank()*nLocal : (c.Rank()+1)*nLocal]
		_, err := pl.RunDistributed(context.Background(), c, out, in, opts...)
		return err
	})
	if err != nil {
		t.Fatalf("RunDistributed N=%d R=%d: %v", p.N, r, err)
	}
	return got, want, w.Stats()
}

func TestDistributedSOIMatchesDirect(t *testing.T) {
	cases := []struct {
		p Params
		r int
	}{
		{Params{N: 256, P: 4, Mu: 5, Nu: 4, B: 8}, 1},
		{Params{N: 256, P: 4, Mu: 5, Nu: 4, B: 8}, 2},
		{Params{N: 256, P: 4, Mu: 5, Nu: 4, B: 8}, 4},
		{Params{N: 1024, P: 8, Mu: 5, Nu: 4, B: 32}, 8},
		{Params{N: 1024, P: 16, Mu: 5, Nu: 4, B: 16}, 4}, // segments > ranks
		{Params{N: 2048, P: 16, Mu: 5, Nu: 4, B: 48}, 8}, // 2 segments per rank
		{Params{N: 960, P: 8, Mu: 5, Nu: 4, B: 24}, 2},   // non power-of-two N
		{Params{N: 1280, P: 8, Mu: 5, Nu: 4, B: 24}, 4},  // 5-smooth N
		{Params{N: 512, P: 8, Mu: 3, Nu: 2, B: 24}, 8},   // β = 1/2
	}
	for _, c := range cases {
		pl, err := NewPlan(c.p)
		if err != nil {
			t.Errorf("NewPlan(%+v): %v", c.p, err)
			continue
		}
		got, want, _ := runSOIDistributed(t, c.p, c.r, int64(c.p.N+c.r))
		e := signal.RelErrL2(got, want)
		tol := pl.PredictedError() * 100
		if tol < 1e-11 {
			tol = 1e-11
		}
		if e > tol {
			t.Errorf("params %+v R=%d: rel error %.3e > %.3e", c.p, c.r, e, tol)
		}
	}
}

func TestDistributedMatchesSerialExactly(t *testing.T) {
	// The distributed pipeline reorders identical floating-point
	// operations; results must match the shared-memory path bit-for-bit.
	p := Params{N: 1024, P: 8, Mu: 5, Nu: 4, B: 48, Workers: 1}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(p.N, 21)
	serial := make([]complex128, p.N)
	if err := pl.Transform(serial, src); err != nil {
		t.Fatal(err)
	}
	got, _, _ := runSOIDistributed(t, p, 4, 21)
	if e := signal.MaxAbsErr(got, serial); e != 0 {
		t.Errorf("distributed differs from serial by %.3e", e)
	}
}

func TestDistributedSingleAlltoall(t *testing.T) {
	// The headline claim: one all-to-all, regardless of rank count.
	for _, r := range []int{2, 4, 8} {
		p := Params{N: 2048, P: 8, Mu: 5, Nu: 4, B: 32}
		_, _, stats := runSOIDistributed(t, p, r, 5)
		if stats.Alltoalls != 1 {
			t.Errorf("R=%d: SOI used %d all-to-alls, want exactly 1", r, stats.Alltoalls)
		}
		// Wire messages: one halo send per rank plus the all-to-all's
		// r·(r−1) chunk messages — nothing else.
		want := int64(r + r*(r-1))
		if stats.P2PMessages != want {
			t.Errorf("R=%d: %d wire messages, want %d", r, stats.P2PMessages, want)
		}
	}
}

func TestDistributedAlltoallVolumeIsOversampled(t *testing.T) {
	// SOI's one exchange carries (1+β)·N points; verify the byte count.
	p := Params{N: 2048, P: 8, Mu: 5, Nu: 4, B: 32}
	r := 4
	_, _, stats := runSOIDistributed(t, p, r, 6)
	nPrime := p.N / p.Nu * p.Mu
	// Total inter-rank payload: each rank sends (R-1)/R of its N'/R chunk.
	want := int64(nPrime * 16 * (r - 1) / r)
	if stats.AlltoallBytes != want {
		t.Errorf("all-to-all bytes = %d, want %d ((1+β)N scaled)", stats.AlltoallBytes, want)
	}
}

func TestValidateDistributed(t *testing.T) {
	p := Params{N: 1024, P: 8, Mu: 5, Nu: 4, B: 32}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []int{1, 2, 4, 8} {
		if err := pl.ValidateDistributed(r); err != nil {
			t.Errorf("R=%d should be valid: %v", r, err)
		}
	}
	bad := map[int]string{
		0:  "must be positive",
		3:  "must divide segments",
		16: "must divide segments",
	}
	for r, frag := range bad {
		err := pl.ValidateDistributed(r)
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Errorf("R=%d: err %v, want fragment %q", r, err, frag)
		}
	}
	// Halo overflow: B large relative to per-rank block.
	p2 := Params{N: 512, P: 8, Mu: 5, Nu: 4, B: 64}
	pl2, err := NewPlan(p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := pl2.ValidateDistributed(8); err == nil || !strings.Contains(err.Error(), "halo") {
		t.Errorf("expected halo error, got %v", err)
	}
}

func TestRunDistributedBadLocalLength(t *testing.T) {
	p := Params{N: 256, P: 4, Mu: 5, Nu: 4, B: 8}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := mpi.NewWorld(2)
	err = w.Run(func(c *mpi.Comm) error {
		buf := make([]complex128, 10)
		_, err := pl.RunDistributed(context.Background(), c, buf, buf)
		return err
	})
	if err == nil {
		t.Error("expected local length error")
	}
}

func TestDistributedTimesAccounting(t *testing.T) {
	p := Params{N: 1024, P: 8, Mu: 5, Nu: 4, B: 32}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(p.N, 8)
	w, _ := mpi.NewWorld(4)
	nLocal := p.N / 4
	err = w.Run(func(c *mpi.Comm) error {
		out := make([]complex128, nLocal)
		dt, err := pl.RunDistributed(context.Background(), c, out, src[c.Rank()*nLocal:(c.Rank()+1)*nLocal])
		if err != nil {
			return err
		}
		if dt.Total() <= 0 {
			t.Errorf("rank %d: nonpositive total time", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPairwiseExchangeEquivalent(t *testing.T) {
	// The pairwise send-receive schedule must produce bit-identical
	// results and the same single-all-to-all accounting.
	base := Params{N: 1024, P: 8, Mu: 5, Nu: 4, B: 32}
	gotA, _, statsA := runSOIDistributed(t, base, 4, 99)
	pw := base
	pw.Exchange = ExchangePairwise
	gotB, _, statsB := runSOIDistributed(t, pw, 4, 99)
	if e := signal.MaxAbsErr(gotA, gotB); e != 0 {
		t.Errorf("pairwise exchange result differs by %.3e", e)
	}
	if statsA.Alltoalls != 1 || statsB.Alltoalls != 1 {
		t.Errorf("all-to-all counts: collective %d pairwise %d, want 1 and 1",
			statsA.Alltoalls, statsB.Alltoalls)
	}
	if statsA.AlltoallBytes != statsB.AlltoallBytes {
		t.Errorf("exchanged volumes differ: %d vs %d", statsA.AlltoallBytes, statsB.AlltoallBytes)
	}
}

func TestHybridWorkersBitIdentical(t *testing.T) {
	// Paper Fig 2: MPI ranks × OpenMP threads. Intra-rank workers must
	// not change results (row partitioning only, no re-association).
	base := Params{N: 2048, P: 16, Mu: 5, Nu: 4, B: 32, Workers: 1}
	ref, _, _ := runSOIDistributed(t, base, 4, 55)
	hybrid := base
	hybrid.Workers = 4
	got, _, _ := runSOIDistributed(t, hybrid, 4, 55)
	if e := signal.MaxAbsErr(got, ref); e != 0 {
		t.Errorf("hybrid workers changed the result by %.3e", e)
	}
}

func TestRunDistributedSegment(t *testing.T) {
	p := Params{N: 2048, P: 8, Mu: 5, Nu: 4, B: 32}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(p.N, 91)
	full := make([]complex128, p.N)
	if err := pl.Transform(full, src); err != nil {
		t.Fatal(err)
	}
	const ranks, seg, root = 4, 5, 2
	w, _ := mpi.NewWorld(ranks)
	nLocal := p.N / ranks
	var got []complex128
	err = w.Run(func(c *mpi.Comm) error {
		out, err := pl.RunDistributedSegment(c,
			src[c.Rank()*nLocal:(c.Rank()+1)*nLocal], seg, root)
		if err != nil {
			return err
		}
		if c.Rank() == root {
			got = out
		} else if out != nil {
			t.Error("non-root rank received data")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m := pl.M()
	if e := signal.MaxAbsErr(got, full[seg*m:(seg+1)*m]); e > 1e-10 {
		t.Errorf("distributed segment differs from full transform by %.3e", e)
	}
	// No all-to-all at all: just halo sends and a gather.
	if a := w.Stats().Alltoalls; a != 0 {
		t.Errorf("segment query used %d all-to-alls, want 0", a)
	}

	// Error paths.
	w2, _ := mpi.NewWorld(4)
	err = w2.Run(func(c *mpi.Comm) error {
		_, err := pl.RunDistributedSegment(c, make([]complex128, nLocal), 99, 0)
		return err
	})
	if err == nil {
		t.Error("expected segment range error")
	}
}
