package core

import (
	"context"
	"math"
	"testing"
	"time"

	"soifft/internal/mpi"
	"soifft/internal/signal"
)

// TestTelemetryOffOverheadGuard bounds the cost of the disabled
// telemetry plane: a distributed run carrying WithTelemetry(nil) must
// stay within 1.5× of one without the option (best of several runs — a
// deliberately lenient bound so scheduler noise cannot fail CI). The
// nil plane is a single pointer test at end-of-transform, the same
// off-switch contract as the recorder and the tracer.
func TestTelemetryOffOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guard skipped in -short")
	}
	const n, ranks = 8192, 4
	pl, err := NewPlan(Params{N: n, P: 8, Mu: 5, Nu: 4, B: 48})
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 7)
	got := make([]complex128, n)
	nLocal := n / ranks
	oneRun := func(opts ...DistOption) time.Duration {
		w, err := mpi.NewWorld(ranks)
		if err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		err = w.Run(func(c *mpi.Comm) error {
			in := src[c.Rank()*nLocal : (c.Rank()+1)*nLocal]
			out := got[c.Rank()*nLocal : (c.Rank()+1)*nLocal]
			_, err := pl.RunDistributed(context.Background(), c, out, in, opts...)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}
	best := func(opts ...DistOption) time.Duration {
		bestD := time.Duration(math.MaxInt64)
		for i := 0; i < 8; i++ {
			if d := oneRun(opts...); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	best() // warm caches before measuring
	dPlain := best()
	dOff := best(WithTelemetry(nil))
	if float64(dOff) > 1.5*float64(dPlain) {
		t.Errorf("telemetry-off overhead: plain %v, with nil plane %v (>1.5x)", dPlain, dOff)
	}
}
