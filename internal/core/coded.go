package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"soifft/internal/erasure"
	"soifft/internal/exch"
	"soifft/internal/instrument"
)

// Coded-exchange tags live in a far negative band of their own, away
// from the collective tags of both transports (mpi: -1..-6 and the
// pairwise -6-d series; mpinet: -4..-7) and the positive halo band.
const (
	tagCodedData    = -1000 // the all-to-all data chunk C_{src→dst}
	tagCodedParity  = -1001 // parity share i of a source's codeword: tagCodedParity - i
	tagCodedView    = -1100 // post-exchange liveness/receipt masks
	tagCodedAgree   = -1101 // dead-set agreement masks
	tagCodedOutcome = -1102 // coordinator's decode verdict to each survivor
	tagCodedPool    = -1200 // share pooling for dead rank d: tagCodedPool - d
	tagCodedRefill  = -1300 // reconstructed chunk refill for dead rank d: tagCodedRefill - d
	tagCodedGather  = -1400 // degraded gather; dead rank d's block: tagCodedGather - 1 - d
)

// CodedComm is the transport surface the coded exchange needs: the
// plain Comm collectives for the halo, plus per-peer checked send and
// receive, where a dead peer is an error to route around rather than a
// rank-fatal panic. Both *mpi.Comm and *mpinet.Proc satisfy it.
type CodedComm interface {
	Comm
	SendChecked(to, tag int, data any) error
	RecvCChecked(from, tag int) ([]complex128, error)
}

// CodedExchangeFailpoint, when non-nil, is invoked on every rank between
// the coded send fan-out and the view round. A non-nil return makes the
// rank exit with that error — the chaos suite's seam for killing a rank
// at the exact protocol point the parity is designed to survive. Test
// hook only; set before the transform and clear after.
var CodedExchangeFailpoint func(rank int) error

// DegradedError reports a transform that COMPLETED with the correct,
// bit-exact spectrum after reconstructing one or more dead ranks'
// contributions from parity. It is informational: localOut is fully
// valid when RunDistributedCoded returns it. It is deliberately not a
// Fault — RecoverFault must never swallow it.
type DegradedError struct {
	// ReconstructedRanks lists the dead ranks whose codewords were
	// rebuilt, ascending. Every survivor reports the same set.
	ReconstructedRanks []int
	// Coordinator is the survivor (min rank alive) that pooled shares,
	// decoded, and took over the dead ranks' output blocks.
	Coordinator int
	// ParityBytes counts erasure parity payload this rank sent.
	ParityBytes int64
	// RecoveryBytes counts view/agreement/pooling/refill payload this
	// rank sent.
	RecoveryBytes int64
	// TakenOver maps each dead rank to its recomputed output block.
	// Populated only on the coordinator; GatherDegraded routes it.
	TakenOver map[int][]complex128
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("core: transform completed degraded: rank(s) %v reconstructed from parity by rank %d",
		e.ReconstructedRanks, e.Coordinator)
}

// UnrecoverableLossError reports a coded exchange whose losses exceeded
// the parity budget (or a loss pattern the protocol cannot repair, such
// as a link failure between two live ranks). It is a Fault: the
// transform failed, localOut is invalid.
type UnrecoverableLossError struct {
	DeadRanks []int // dead peers, ascending (empty for live-link losses)
	Parity    int   // the parity budget m that was exceeded
	Cause     error // optional detail (e.g. erasure.ErrTooFewShares)
}

func (e *UnrecoverableLossError) Error() string {
	msg := fmt.Sprintf("core: coded exchange lost rank(s) %v, beyond the m=%d parity budget", e.DeadRanks, e.Parity)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

func (e *UnrecoverableLossError) Unwrap() error { return e.Cause }

// CommFault marks the loss as a typed communication fault.
func (e *UnrecoverableLossError) CommFault() {}

// ValidateCoded checks a coded-mode configuration: m parity shares on r
// ranks requires 0 ≤ m ≤ r−1 (each parity share lives on a distinct
// peer) and r+m ≤ 52 (the protocol's receipt masks travel as exact
// integers in a float64 mantissa).
func ValidateCoded(r, m int) error {
	switch {
	case r <= 0:
		return fmt.Errorf("core: rank count must be positive, got %d: %w", r, ErrPlanMismatch)
	case m < 0 || m > r-1:
		return fmt.Errorf("core: coded parity m=%d must be in [0, ranks-1=%d]: %w", m, r-1, ErrPlanMismatch)
	case r+m > 52:
		return fmt.Errorf("core: ranks+parity %d exceeds the 52-share protocol limit: %w", r+m, ErrPlanMismatch)
	}
	return nil
}

// RunDistributedCoded is RunDistributed with an erasure-protected
// exchange: each rank encodes its R outgoing chunks (its own included)
// into m parity shares over GF(2^8) and fans data plus parity across its
// peers, so the transform survives rank deaths mid-exchange.
//
// Outcomes:
//   - no loss: identical to RunDistributed, bit for bit, at a wire cost
//     of (R−1+m)/(R−1) times the plain exchange;
//   - ranks die but every lost codeword retains ≥ R of its R+m shares
//     (guaranteed for any single death with m ≥ 1 when the victim's
//     sends flushed): every survivor finishes with the bit-exact
//     spectrum and returns *DegradedError naming the reconstructed
//     ranks; the coordinator additionally recomputes the dead ranks'
//     output blocks (DegradedError.TakenOver, routed by GatherDegraded);
//   - loss beyond the budget: every survivor returns a typed
//     *UnrecoverableLossError naming the dead peers, within the
//     transport's deadline bounds.
//
// The protocol detects deaths with a two-round view/agreement exchange
// after the data fan-out; it therefore handles ranks that crash up to
// that point. Deaths during the recovery itself surface as typed
// transport errors (clean failure, never a wrong answer).
//
// Deprecated: call RunDistributed with WithCoding(m), which is this
// path (and composes with WithAsyncWindow).
func (pl *Plan) RunDistributedCoded(c CodedComm, m int, localOut, localIn []complex128) (DistributedTimes, error) {
	return pl.RunDistributed(context.Background(), c, localOut, localIn, WithCoding(m))
}

// RunDistributedCodedContext is RunDistributedCoded with cancellation
// checks at phase boundaries.
//
// Deprecated: call RunDistributed with WithCoding(m).
func (pl *Plan) RunDistributedCodedContext(ctx context.Context, c CodedComm, m int, localOut, localIn []complex128) (DistributedTimes, error) {
	return pl.RunDistributed(ctx, c, localOut, localIn, WithCoding(m))
}

// runCoded is the erasure-protected distributed transform behind
// RunDistributed(..., WithCoding(m)): phases 1–2, the coded exchange
// (blocking fan-out, or streamed tile fan-out when an async window is
// configured and the transport supports it), detection/recovery, then
// phase 4 with output takeover on the coordinator.
func (pl *Plan) runCoded(ctx context.Context, c Comm, cfg distOptions, localOut, localIn []complex128) (dt DistributedTimes, err error) {
	defer RecoverFault(&err)
	cc, ok := c.(CodedComm)
	if !ok {
		return dt, fmt.Errorf("core: WithCoding needs checked peer messaging, which %T lacks: %w", c, ErrPlanMismatch)
	}
	m := cfg.parity
	if err := ValidateCoded(cc.Size(), m); err != nil {
		return dt, err
	}
	rec := cfg.rec
	e, err := pl.newDistExec(ctx, cfg, instrumentComm(c, rec), localOut, localIn)
	if err != nil {
		return dt, err
	}

	cx := &codedExchange{e: e, c: cc, m: m}
	var deg *DegradedError
	if _, streams := c.(StreamComm); streams && cfg.window > 0 {
		deg, err = cx.runStreamed(ctx, localIn)
		if err != nil {
			return e.dt, err
		}
	} else {
		cx.send, err = e.phase12(ctx, localIn)
		if err != nil {
			return e.dt, err
		}
		t0 := time.Now()
		e.tr.Begin(e.tid, e.rank, instrument.StageExchange.String())
		deg, err = cx.run()
		e.dt.Exchange = time.Since(t0)
		e.tr.End(e.tid, e.rank, instrument.StageExchange.String())
		if err != nil {
			return e.dt, err
		}
	}
	if err := ctx.Err(); err != nil {
		return e.dt, err
	}

	t0 := time.Now()
	e.tr.Begin(e.tid, e.rank, instrument.StageSegmentFFT.String())
	e.phase4(cx.columnChunk, localOut)
	if deg != nil && e.rank == deg.Coordinator {
		// Take over the dead ranks' segment assembly: the pipeline is
		// owner-agnostic, so feeding it dead rank d's column (pooled
		// survivor chunks plus decoded chunks) yields d's exact block.
		for _, d := range deg.ReconstructedRanks {
			out := make([]complex128, e.nLocal)
			e.phase4(func(src int) []complex128 { return cx.column(d, src) }, out)
			deg.TakenOver[d] = out
		}
	}
	e.dt.SegmentFT = time.Since(t0)
	e.tr.End(e.tid, e.rank, instrument.StageSegmentFFT.String())

	e.report()
	if deg != nil {
		if rec.On() {
			rec.CountDegraded()
		}
		return e.dt, deg
	}
	return e.dt, nil
}

// codedExchange is the per-rank state of one erasure-protected exchange.
type codedExchange struct {
	e    *distExec
	c    CodedComm
	m    int
	send []complex128 // packed phase-2 buffer; dest t's chunk at [t·chunk, (t+1)·chunk)

	recv     [][]complex128 // recv[src] = C_{src→rank}; nil until received/refilled
	parityIn map[int][]complex128
	dead     []bool
	masks    []uint64 // view round: masks[x] bit j ⇔ rank x received C_{j→x}

	// Coordinator-only recovery state.
	decoded   map[int][][]complex128 // dead d → all R data chunks of d's codeword
	columns   map[int][][]complex128 // dead d → pooled survivor chunks C_{s→d}
	poolMasks map[int]uint64         // dead d → union of survivors' held data-share bits

	parityBytes, recoveryBytes int64
}

// columnChunk returns source src's contribution to this rank's own
// output column (after any refill, every source is present).
func (cx *codedExchange) columnChunk(src int) []complex128 { return cx.recv[src] }

// column returns source src's contribution to dead rank d's output
// column (coordinator only, after recovery).
func (cx *codedExchange) column(d, src int) []complex128 {
	if cx.dead[src] {
		return cx.decoded[src][d]
	}
	return cx.columns[d][src]
}

func (cx *codedExchange) markDead(rank int) { cx.dead[rank] = true }

// setup initializes the per-rank exchange state shared by the blocking
// and streamed fan-outs (cx.send must already be packed or, for the
// streamed path, be the persistent buffer the producer packs).
func (cx *codedExchange) setup() {
	r := cx.e.r
	cx.recv = make([][]complex128, r)
	cx.parityIn = make(map[int][]complex128)
	cx.dead = make([]bool, r)
	cx.masks = make([]uint64, r)
}

// encodeParity encodes this rank's codeword: the R outgoing chunks — the
// unsent self-chunk included, so the exchange's redundancy also covers
// this rank's contribution to its own column — plus m parity shares.
// Coding is on the Float64bits byte image, so any k-of-n subset decodes
// to bit-identical chunks.
func (cx *codedExchange) encodeParity() (*erasure.Code, [][]complex128, error) {
	r, chunk, m := cx.e.r, cx.e.chunk, cx.m
	if m == 0 {
		return nil, nil, nil
	}
	code, err := erasure.New(r, m)
	if err != nil {
		return nil, nil, err
	}
	data := make([][]byte, r)
	for j := 0; j < r; j++ {
		data[j] = erasure.ComplexToBytes(nil, cx.send[j*chunk:(j+1)*chunk])
	}
	parity := make([][]byte, m)
	for i := range parity {
		parity[i] = make([]byte, chunk*16)
	}
	if err := code.Encode(data, parity); err != nil {
		return nil, nil, err
	}
	parityOut := make([][]complex128, m)
	for i := range parity {
		parityOut[i], _ = erasure.BytesToComplex(nil, parity[i])
	}
	return code, parityOut, nil
}

// sendParity ships parity share i to rank+1+i (the blocking and streamed
// fan-outs share it; on the streamed path the per-link FIFO places these
// frames after every data tile, so receivers drain the stream first).
func (cx *codedExchange) sendParity(parityOut [][]complex128, rec *instrument.Recorder) {
	e, c := cx.e, cx.c
	for i := 0; i < cx.m; i++ {
		s := (e.rank + 1 + i) % e.r
		if err := c.SendChecked(s, tagCodedParity-i, parityOut[i]); err != nil {
			cx.markDead(s)
			continue
		}
		cx.parityBytes += int64(e.chunk) * 16
	}
	rec.CountParityBytes(cx.parityBytes)
}

// run executes the blocking coded exchange: encode, fan out, detect, and
// (when needed and possible) recover. On success every survivor's own
// column is complete; a non-nil *DegradedError reports reconstructions.
func (cx *codedExchange) run() (*DegradedError, error) {
	e, c, m := cx.e, cx.c, cx.m
	r, rank, chunk := e.r, e.rank, e.chunk
	rec := e.rec
	if !rec.On() { // match the uncoded path: count only when observing
		rec = nil
	}
	cx.setup()
	cx.recv[rank] = cx.send[rank*chunk : (rank+1)*chunk]

	code, parityOut, err := cx.encodeParity()
	if err != nil {
		return nil, err
	}

	// Fan out: data chunk to every peer, parity share i to rank+1+i. A
	// send failure means the peer is already dead; note it and move on.
	if rank == 0 {
		rec.CountAlltoallOp()
	}
	rec.CountAlltoallBytes(int64(r-1) * int64(chunk) * 16)
	for off := 1; off < r; off++ {
		s := (rank + off) % r
		if err := c.SendChecked(s, tagCodedData, cx.send[s*chunk:(s+1)*chunk]); err != nil {
			cx.markDead(s)
		}
	}
	cx.sendParity(parityOut, rec)

	if fp := CodedExchangeFailpoint; fp != nil {
		if err := fp(rank); err != nil {
			return nil, err
		}
	}

	// Receive data (and the parity share each source addressed to us, if
	// any). Frame order per link is fixed — data, then parity — matching
	// the fan-out. Receives are attempted even from peers already marked
	// dead (e.g. because our send to them failed): a gracefully dying
	// peer flushes its frames before the FIN and the transport keeps a
	// dead link's queued frames readable, so the victim's contribution
	// usually survives it; a dead link with nothing queued fails
	// immediately, without a deadline wait.
	for off := 1; off < r; off++ {
		src := (rank + off) % r
		data, err := c.RecvCChecked(src, tagCodedData)
		if err != nil {
			cx.markDead(src)
			continue
		}
		if len(data) != chunk {
			return nil, &UnrecoverableLossError{Parity: m,
				Cause: fmt.Errorf("malformed coded chunk from rank %d: %d elements, want %d", src, len(data), chunk)}
		}
		cx.recv[src] = data
		if i := (rank - src - 1 + 2*r) % r; i < m {
			pdata, err := c.RecvCChecked(src, tagCodedParity-i)
			if err != nil {
				cx.markDead(src)
				continue
			}
			if len(pdata) != chunk {
				return nil, &UnrecoverableLossError{Parity: m,
					Cause: fmt.Errorf("malformed parity share from rank %d: %d elements, want %d", src, len(pdata), chunk)}
			}
			cx.parityIn[src] = pdata
		}
	}

	return cx.detect(code, rec)
}

// detect runs the view and agreement rounds over the received state and,
// when losses are within budget, the recovery — the shared tail of the
// blocking and streamed fan-outs.
func (cx *codedExchange) detect(code *erasure.Code, rec *instrument.Recorder) (*DegradedError, error) {
	e, m := cx.e, cx.m
	r, rank := e.r, e.rank

	// View round: exchange receipt masks. A peer unreachable here is
	// dead. Masks travel as exact float64 integers (≤ 52 bits, enforced
	// by ValidateCoded).
	myMask := uint64(1) << uint(rank)
	for j := 0; j < r; j++ {
		if cx.recv[j] != nil {
			myMask |= uint64(1) << uint(j)
		}
	}
	cx.masks[rank] = myMask
	cx.exchangeMasks(tagCodedView, myMask, cx.masks)

	// Agreement round: union everyone's observed dead set, so all
	// survivors run the same recovery (or fail the same way). Handles
	// crashes up to the start of the view round; later crashes surface
	// as typed transport errors during recovery.
	myDead := uint64(0)
	for j, d := range cx.dead {
		if d {
			myDead |= uint64(1) << uint(j)
		}
	}
	agreed := make([]uint64, r)
	agreed[rank] = myDead
	cx.exchangeMasks(tagCodedAgree, myDead, agreed)
	deadMask := uint64(0)
	for j, d := range cx.dead {
		if d { // include deaths first observed during the mask rounds
			deadMask |= uint64(1) << uint(j)
		}
		deadMask |= agreed[j]
	}

	var deadList []int
	for j := 0; j < r; j++ {
		if deadMask&(1<<uint(j)) != 0 {
			cx.dead[j] = true
			deadList = append(deadList, j)
		}
	}
	if len(deadList) > 0 { // mask rounds count as recovery traffic only on failure
		rec.CountRecoveryBytes(cx.recoveryBytes)
	}
	if deadMask&(1<<uint(rank)) != 0 {
		return nil, &UnrecoverableLossError{DeadRanks: deadList, Parity: m,
			Cause: errors.New("peers declared this rank dead (asymmetric link failure)")}
	}
	// A survivor missing a chunk from another survivor is a live-link
	// loss; the pooling protocol only repairs dead sources, so fail
	// typed rather than recover wrong.
	for x := 0; x < r; x++ {
		if cx.dead[x] {
			continue
		}
		for y := 0; y < r; y++ {
			if !cx.dead[y] && cx.masks[x]&(1<<uint(y)) == 0 {
				return nil, &UnrecoverableLossError{DeadRanks: deadList, Parity: m,
					Cause: fmt.Errorf("rank %d lost the chunk from live rank %d (link failure between survivors)", x, y)}
			}
		}
	}
	if len(deadList) == 0 {
		return nil, nil
	}
	if len(deadList) > m {
		return nil, &UnrecoverableLossError{DeadRanks: deadList, Parity: m}
	}

	deg, err := cx.recover(code, deadList)
	if err != nil {
		return nil, err
	}
	return deg, nil
}

// runStreamed executes the coded exchange over the streamed tile
// fan-out: data tiles travel through the windowed chunk stream
// (overlapped with convolution exactly as in the uncoded streamed path),
// parity is encoded over the completed packed buffer after the produce
// loop and ships on the usual parity tags — per-link FIFO places those
// frames after every data tile, so a receiver drains the stream fully
// and then finds the parity heading its mailboxes, the same per-link
// order as the blocking fan-out. Detection and recovery are the shared
// tail, so outcomes (clean, degraded bit-exact, typed loss) are
// identical to the blocking coded exchange.
func (cx *codedExchange) runStreamed(ctx context.Context, localIn []complex128) (deg *DegradedError, err error) {
	e, c, m := cx.e, cx.c, cx.m
	r, rank, chunk := e.r, e.rank, e.chunk
	rec := e.rec
	if !rec.On() {
		rec = nil
	}
	cx.setup()

	bounds := e.tileBounds()
	sizes := make([]int, len(bounds)-1)
	for k := range sizes {
		sizes[k] = (bounds[k+1] - bounds[k]) * e.spr
	}
	st := e.c.(StreamComm).StartAlltoallv(exch.Options{Sizes: sizes, Window: e.window})
	defer st.Close()
	streamStart := time.Now()

	// Remote sources scatter into pre-allocated chunk buffers (tile k at
	// [bounds[k]·spr, bounds[k+1]·spr)); the self-chunk aliases the packed
	// send buffer once the producer finishes.
	for src := 0; src < r; src++ {
		if src != rank {
			cx.recv[src] = make([]complex128, chunk)
		}
	}
	got := make([]int, r)
	consDone := make(chan error, 1)
	go func() { consDone <- cx.drainStream(st, bounds, got) }()

	send, sendWait, perr := e.produceStream(ctx, st, bounds, localIn, func(dst int, err error) error {
		cx.markDead(dst) // route around the dead peer; detection settles it
		return nil
	})
	cx.send = send
	tExch := time.Now()
	e.tr.Begin(e.tid, rank, instrument.StageExchange.String())
	defer func() {
		e.dt.Exchange = sendWait + time.Since(tExch)
		e.tr.End(e.tid, rank, instrument.StageExchange.String())
		hidden := time.Since(streamStart) - e.dt.Exchange
		if hidden < 0 {
			hidden = 0
		}
		if e.timed && hidden > 0 {
			e.rec.AddHiddenExchange(hidden)
		}
		// Degraded-but-complete runs still carry a valid overlap
		// measurement; only typed failures skip the controller.
		if err == nil && e.adaptive {
			e.observeAdaptive(hidden, sendWait)
		}
	}()
	if perr != nil {
		return nil, perr // context cancellation or a halo send failure
	}
	cx.recv[rank] = send[rank*chunk : (rank+1)*chunk]

	code, parityOut, err := cx.encodeParity()
	if err != nil {
		return nil, err
	}
	cx.sendParity(parityOut, rec)

	if fp := CodedExchangeFailpoint; fp != nil {
		if err := fp(rank); err != nil {
			return nil, err
		}
	}

	// Drain fully before any parity receive: the stream's per-source
	// receiver goroutines pop tile frames from the same per-link mailboxes
	// the checked receives use, so the parity frames are safe to receive
	// only once every receiver has delivered its last event.
	if err := <-consDone; err != nil {
		return nil, err
	}

	// A source whose stream ended early lost tiles: dead (its receiver may
	// have left tile frames queued, so its parity is unreachable — skip
	// it). Completed sources behave exactly as in the blocking receive
	// loop, a gracefully dying peer's flushed tiles and parity included.
	for off := 1; off < r; off++ {
		src := (rank + off) % r
		if got[src] < len(sizes) {
			cx.recv[src] = nil
			cx.markDead(src)
			continue
		}
		if i := (rank - src - 1 + 2*r) % r; i < m {
			pdata, err := c.RecvCChecked(src, tagCodedParity-i)
			if err != nil {
				cx.markDead(src)
				continue
			}
			if len(pdata) != chunk {
				return nil, &UnrecoverableLossError{Parity: m,
					Cause: fmt.Errorf("malformed parity share from rank %d: %d elements, want %d", src, len(pdata), chunk)}
			}
			cx.parityIn[src] = pdata
		}
	}

	return cx.detect(code, rec)
}

// drainStream scatters arriving data tiles into the per-source receive
// buffers while later tiles are still on the wire. Per-source stream
// failures are not fatal here — the caller infers them from the tile
// counts after the drain (and the view round settles the dead set); only
// a malformed frame aborts.
func (cx *codedExchange) drainStream(st exch.Stream, bounds []int, got []int) error {
	e := cx.e
	var firstErr error
	for {
		ch, ok := st.Next()
		if !ok {
			return firstErr
		}
		if ch.Err != nil {
			continue
		}
		lo, hi := bounds[ch.Index], bounds[ch.Index+1]
		if len(ch.Data) != (hi-lo)*e.spr {
			if firstErr == nil {
				firstErr = &UnrecoverableLossError{Parity: cx.m,
					Cause: fmt.Errorf("malformed coded stream chunk %d from rank %d: %d elements, want %d",
						ch.Index, ch.Src, len(ch.Data), (hi-lo)*e.spr)}
			}
			continue
		}
		if ch.Src == e.rank {
			got[e.rank]++
			continue // the self-chunk aliases the packed send buffer
		}
		e.tr.ChunkInstant(e.tid, e.rank, "exchange_chunk_recv", ch.Index)
		copy(cx.recv[ch.Src][lo*e.spr:hi*e.spr], ch.Data)
		got[ch.Src]++
	}
}

// exchangeMasks runs one all-pairs round of single-value control frames,
// filling out[src] for every live peer and marking unreachable peers
// dead.
func (cx *codedExchange) exchangeMasks(tag int, mine uint64, out []uint64) {
	e, c := cx.e, cx.c
	payload := []complex128{complex(float64(mine), 0)}
	for off := 1; off < e.r; off++ {
		s := (e.rank + off) % e.r
		if cx.dead[s] {
			continue
		}
		if err := c.SendChecked(s, tag, payload); err != nil {
			cx.markDead(s)
			continue
		}
		cx.recoveryBytes += 16
	}
	for off := 1; off < e.r; off++ {
		src := (e.rank + off) % e.r
		if cx.dead[src] {
			continue
		}
		v, err := c.RecvCChecked(src, tag)
		if err != nil || len(v) != 1 {
			cx.markDead(src)
			continue
		}
		out[src] = uint64(real(v[0]))
	}
}

// recover pools the surviving shares of every dead rank's codeword at
// the coordinator (min surviving rank), decodes them, refills survivors
// whose own chunks were lost, and retains the decoded columns for the
// coordinator's output takeover.
func (cx *codedExchange) recover(code *erasure.Code, deadList []int) (*DegradedError, error) {
	e, c, m := cx.e, cx.c, cx.m
	r, rank, chunk := e.r, e.rank, e.chunk
	rec := e.rec
	if !rec.On() {
		rec = nil
	}

	coord := -1
	for j := 0; j < r; j++ {
		if !cx.dead[j] {
			coord = j
			break
		}
	}
	cx.decoded = make(map[int][][]complex128)
	cx.columns = make(map[int][][]complex128)
	base := cx.recoveryBytes // mask-round bytes, already booked by run()

	var decodeErr error
	for _, d := range deadList {
		if rank != coord {
			if err := cx.sendPool(coord, d); err != nil {
				return nil, err
			}
			continue
		}
		if decodeErr != nil {
			continue // first failure decides; remaining pool frames stay queued
		}
		if err := cx.poolAndDecode(code, d, coord); err != nil {
			decodeErr = err
			continue
		}
		rec.CountReconstruction()
	}
	// Outcome round: the coordinator tells every survivor whether the
	// decodes succeeded, so an infeasible recovery fails typed on every
	// rank (and no survivor blocks on a refill that will never come).
	var lateErr error
	if rank == coord {
		verdict := []complex128{1}
		if decodeErr != nil {
			verdict[0] = 0
		}
		for s := 0; s < r; s++ {
			if s == coord || cx.dead[s] {
				continue
			}
			if err := c.SendChecked(s, tagCodedOutcome, verdict); err != nil {
				cx.markDead(s) // died during recovery; skip its refills
				if lateErr == nil {
					lateErr = err
				}
				continue
			}
			cx.recoveryBytes += 16
		}
		if decodeErr != nil {
			return nil, decodeErr
		}
	} else {
		v, err := c.RecvCChecked(coord, tagCodedOutcome)
		if err != nil {
			return nil, err
		}
		if len(v) != 1 || real(v[0]) == 0 {
			return nil, &UnrecoverableLossError{DeadRanks: deadList, Parity: m,
				Cause: errors.New("coordinator could not reconstruct the lost codewords")}
		}
	}
	// Refills, after all decodes: the coordinator returns each survivor
	// the chunks it was missing (per the pooled held-masks); survivors
	// block only on the chunks they know they lack.
	for _, d := range deadList {
		if rank == coord {
			for s := 0; s < r; s++ {
				if s == coord || cx.dead[s] || cx.heldBy(s, d) {
					continue
				}
				if err := c.SendChecked(s, tagCodedRefill-d, cx.decoded[d][s]); err != nil {
					return nil, err
				}
				cx.recoveryBytes += int64(chunk) * 16
			}
			continue
		}
		if cx.recv[d] == nil {
			data, err := c.RecvCChecked(coord, tagCodedRefill-d)
			if err != nil {
				return nil, err
			}
			if len(data) != chunk {
				return nil, &UnrecoverableLossError{DeadRanks: deadList, Parity: m,
					Cause: fmt.Errorf("malformed refill for rank %d: %d elements, want %d", d, len(data), chunk)}
			}
			cx.recv[d] = data
		}
	}
	rec.CountRecoveryBytes(cx.recoveryBytes - base)
	if lateErr != nil { // a survivor died mid-recovery; its column is gone
		return nil, lateErr
	}
	deg := &DegradedError{
		ReconstructedRanks: append([]int(nil), deadList...),
		Coordinator:        coord,
		ParityBytes:        cx.parityBytes,
		RecoveryBytes:      cx.recoveryBytes,
		TakenOver:          map[int][]complex128{},
	}
	sort.Ints(deg.ReconstructedRanks)
	return deg, nil
}

// heldBy reports whether survivor s received dead rank d's chunk
// directly (known to the coordinator from s's pooled held-mask).
func (cx *codedExchange) heldBy(s, d int) bool {
	return cx.poolMasks[d]&(1<<uint(s)) != 0
}

// sendPool ships this survivor's shares of dead rank d's codeword to
// the coordinator: a held-mask header, the held shares in ascending
// share-index order, then this rank's own column chunk C_{rank→d}.
func (cx *codedExchange) sendPool(coord, d int) error {
	e, chunk := cx.e, cx.e.chunk
	r, rank := e.r, e.rank
	held := uint64(0)
	frame := make([]complex128, 0, 1+2*chunk)
	frame = append(frame, 0) // mask patched below
	if cx.recv[d] != nil {   // data share index = this rank
		held |= 1 << uint(rank)
		frame = append(frame, cx.recv[d]...)
	}
	if p, ok := cx.parityIn[d]; ok { // parity share index = r + i
		i := (rank - d - 1 + 2*r) % r
		held |= 1 << uint(r+i)
		frame = append(frame, p...)
	}
	frame = append(frame, cx.send[d*chunk:(d+1)*chunk]...)
	frame[0] = complex(float64(held), 0)
	if err := cx.c.SendChecked(coord, tagCodedPool-d, frame); err != nil {
		return err
	}
	cx.recoveryBytes += int64(len(frame)) * 16
	return nil
}

// poolAndDecode (coordinator) gathers every survivor's pool frame for
// dead rank d, assembles the share set, reconstructs the codeword, and
// stores the decoded data chunks and the pooled column.
func (cx *codedExchange) poolAndDecode(code *erasure.Code, d, coord int) error {
	e, c, m := cx.e, cx.c, cx.m
	r, chunk := e.r, e.chunk
	if cx.poolMasks == nil {
		cx.poolMasks = make(map[int]uint64)
	}
	shares := make([][]byte, r+m)
	column := make([][]complex128, r)
	heldUnion := uint64(0)

	addShare := func(idx int, data []complex128) {
		shares[idx] = erasure.ComplexToBytes(nil, data)
	}
	// The coordinator's own holdings.
	if cx.recv[d] != nil {
		addShare(coord, cx.recv[d])
		heldUnion |= 1 << uint(coord)
	}
	if p, ok := cx.parityIn[d]; ok {
		i := (coord - d - 1 + 2*r) % r
		addShare(r+i, p)
	}
	column[coord] = cx.send[d*chunk : (d+1)*chunk]

	for s := 0; s < r; s++ {
		if s == coord || cx.dead[s] {
			continue
		}
		frame, err := c.RecvCChecked(s, tagCodedPool-d)
		if err != nil {
			return err
		}
		if len(frame) < 1+chunk {
			return &UnrecoverableLossError{DeadRanks: []int{d}, Parity: m,
				Cause: fmt.Errorf("malformed pool frame from rank %d: %d elements", s, len(frame))}
		}
		held := uint64(real(frame[0]))
		off := 1
		for idx := 0; idx < r+m; idx++ {
			if held&(1<<uint(idx)) == 0 {
				continue
			}
			if off+chunk > len(frame) {
				return &UnrecoverableLossError{DeadRanks: []int{d}, Parity: m,
					Cause: fmt.Errorf("truncated pool frame from rank %d", s)}
			}
			addShare(idx, frame[off:off+chunk])
			off += chunk
		}
		if off+chunk != len(frame) {
			return &UnrecoverableLossError{DeadRanks: []int{d}, Parity: m,
				Cause: fmt.Errorf("pool frame from rank %d has %d trailing elements, want %d", s, len(frame)-off, chunk)}
		}
		column[s] = frame[off : off+chunk]
		heldUnion |= held & ((1 << uint(r)) - 1)
	}
	cx.poolMasks[d] = heldUnion

	present := 0
	for _, sh := range shares {
		if sh != nil {
			present++
		}
	}
	if present < r {
		return &UnrecoverableLossError{DeadRanks: []int{d}, Parity: m,
			Cause: fmt.Errorf("%w: %d of %d shares survive for rank %d's codeword", erasure.ErrTooFewShares, present, r, d)}
	}
	if err := code.Reconstruct(shares); err != nil {
		return &UnrecoverableLossError{DeadRanks: []int{d}, Parity: m, Cause: err}
	}
	decoded := make([][]complex128, r)
	for j := 0; j < r; j++ {
		dc, err := erasure.BytesToComplex(nil, shares[j])
		if err != nil {
			return &UnrecoverableLossError{DeadRanks: []int{d}, Parity: m, Cause: err}
		}
		decoded[j] = dc
	}
	cx.decoded[d] = decoded
	cx.columns[d] = column
	// The coordinator's own column chunk from d may also have been lost.
	if cx.recv[d] == nil {
		cx.recv[d] = decoded[coord]
	}
	return nil
}

// GatherDegraded collects the full spectrum after a coded transform.
// With deg == nil it is a guarded plain Gather at root. After a
// degraded run, survivors route around the dead ranks: the gather lands
// at root if root survived, else at the recovery coordinator, and the
// coordinator contributes the taken-over blocks. It returns the full
// output (nil on ranks other than the effective root), the effective
// root's rank, and any typed transport failure.
func GatherDegraded(c CodedComm, root int, own []complex128, deg *DegradedError) (full []complex128, at int, err error) {
	if deg == nil {
		err = GuardComm(func() { full = c.Gather(root, own) })
		return full, root, err
	}
	r, rank, nLocal := c.Size(), c.Rank(), len(own)
	dead := make(map[int]bool, len(deg.ReconstructedRanks))
	for _, d := range deg.ReconstructedRanks {
		dead[d] = true
	}
	at = root
	if dead[root] {
		at = deg.Coordinator
	}
	if rank != at {
		if err := c.SendChecked(at, tagCodedGather, own); err != nil {
			return nil, at, err
		}
		if rank == deg.Coordinator {
			for _, d := range deg.ReconstructedRanks {
				if err := c.SendChecked(at, tagCodedGather-1-d, deg.TakenOver[d]); err != nil {
					return nil, at, err
				}
			}
		}
		return nil, at, nil
	}
	full = make([]complex128, r*nLocal)
	copy(full[rank*nLocal:], own)
	for s := 0; s < r; s++ {
		if s == rank || dead[s] {
			continue
		}
		data, err := c.RecvCChecked(s, tagCodedGather)
		if err != nil {
			return nil, at, err
		}
		if len(data) != nLocal {
			return nil, at, &UnrecoverableLossError{Parity: -1,
				Cause: fmt.Errorf("degraded gather: rank %d sent %d elements, want %d", s, len(data), nLocal)}
		}
		copy(full[s*nLocal:], data)
	}
	for _, d := range deg.ReconstructedRanks {
		var block []complex128
		if rank == deg.Coordinator {
			block = deg.TakenOver[d]
		} else {
			var err error
			block, err = c.RecvCChecked(deg.Coordinator, tagCodedGather-1-d)
			if err != nil {
				return nil, at, err
			}
		}
		if len(block) != nLocal {
			return nil, at, &UnrecoverableLossError{Parity: -1,
				Cause: fmt.Errorf("degraded gather: taken-over block for rank %d has %d elements, want %d", d, len(block), nLocal)}
		}
		copy(full[d*nLocal:], block)
	}
	return full, at, nil
}
