package core

// Numerical validation of the paper's mathematical foundations, directly
// from the definitions (no shared code with the fast path):
//
//   - Theorem 1 (hybrid convolution): F_M (1/M)·Samp(x*w; 1/M) equals
//     Peri(y·ŵ; M) for a smooth window pair.
//   - Section 8's exact factorization: with the rectangular window
//     (ŵ = 1 on [0, M−1], 0 outside (−1, M)), no oversampling and no
//     truncation, the factorization reproduces the DFT exactly — this is
//     how the framework subsumes Edelman et al.'s FFFT.

import (
	"math"
	"math/cmplx"
	"testing"

	"soifft/internal/fft"
	"soifft/internal/signal"
	"soifft/internal/window"
)

// TestHybridConvolutionTheorem checks Theorem 1 by brute force.
func TestHybridConvolutionTheorem(t *testing.T) {
	const (
		n = 48
		m = 12
	)
	w := window.TauSigma{Tau: 0.8, Sigma: 30}
	x := signal.Random(n, 5)
	y := make([]complex128, n)
	fft.Direct(y, x)

	// Left side: x̃_j = (1/M) Σ_ℓ w(j/M − ℓ/N) x_{ℓ mod N}, then F_M x̃.
	// H decays below 1e-16 for |t| > ~10 at σ=30, so ±12N covers the sum.
	xt := make([]complex128, m)
	for j := 0; j < m; j++ {
		var acc complex128
		for l := -12 * n; l <= 12*n; l++ {
			tArg := float64(j)/float64(m) - float64(l)/float64(n)
			h := w.HTime(tArg)
			if h == 0 {
				continue
			}
			acc += complex(h, 0) * x[((l%n)+n)%n]
		}
		xt[j] = acc / complex(float64(m), 0)
	}
	lhs := make([]complex128, m)
	fft.Direct(lhs, xt)

	// Right side: Peri(y·ŵ; M)_k = Σ_p y_{(k+pM) mod N} ŵ(k+pM).
	rhs := make([]complex128, m)
	for k := 0; k < m; k++ {
		var acc complex128
		for p := -40 * n / m; p <= 40*n/m; p++ {
			u := k + p*m
			hh := w.HHat(float64(u))
			if hh == 0 {
				continue
			}
			acc += y[((u%n)+n)%n] * complex(hh, 0)
		}
		rhs[k] = acc
	}

	for k := 0; k < m; k++ {
		if d := cmplx.Abs(lhs[k] - rhs[k]); d > 1e-9 {
			t.Errorf("Theorem 1 violated at k=%d: lhs %v rhs %v (|Δ|=%.3e)", k, lhs[k], rhs[k], d)
		}
	}
}

// TestExactRectangularFactorization builds the Section 8 exact
// factorization densely and checks it reproduces F_N x to rounding.
func TestExactRectangularFactorization(t *testing.T) {
	const (
		n = 48
		p = 4
		m = n / p
	)
	x := signal.Random(n, 6)
	want := make([]complex128, n)
	fft.Direct(want, x)

	// Dense convolution matrix: c_{jk} = (1/M) Σ_{ℓ=0}^{M−1} ω^ℓ with
	// ω = exp(i2π(j/M − k/N)) (paper's closed form for the rectangular
	// window; a permuted form of the FFFT's matrix M).
	c := make([][]complex128, m)
	for j := 0; j < m; j++ {
		c[j] = make([]complex128, n)
		for k := 0; k < n; k++ {
			omega := cmplx.Exp(complex(0, 2*math.Pi*(float64(j)/float64(m)-float64(k)/float64(n))))
			var sum complex128
			pw := complex(1, 0)
			for l := 0; l < m; l++ {
				sum += pw
				pw *= omega
			}
			c[j][k] = sum / complex(float64(m), 0)
		}
	}

	got := make([]complex128, n)
	for s := 0; s < p; s++ {
		// Phase-shift the input: Φ_s = diag(ω_P^{j·s}), ω_P = e^{-i2π/P}.
		xs := make([]complex128, n)
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64((j*s)%p) / float64(p)
			xs[j] = x[j] * cmplx.Exp(complex(0, ang))
		}
		// x̃ = C·Φ_s·x, then ỹ = F_M x̃; ŵ ≡ 1 on the segment, so no
		// demodulation is needed.
		xt := make([]complex128, m)
		for j := 0; j < m; j++ {
			var acc complex128
			for k := 0; k < n; k++ {
				acc += c[j][k] * xs[k]
			}
			xt[j] = acc
		}
		yt := make([]complex128, m)
		fft.Direct(yt, xt)
		copy(got[s*m:(s+1)*m], yt)
	}

	if e := signal.RelErrL2(got, want); e > 1e-10 {
		t.Errorf("exact factorization relative error %.3e; should be rounding-level", e)
	}
}

// TestInverseRoundTrip checks the SOI inverse path.
func TestInverseRoundTrip(t *testing.T) {
	p := Params{N: 1024, P: 8, Mu: 5, Nu: 4, B: 64}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(p.N, 7)
	freq := make([]complex128, p.N)
	back := make([]complex128, p.N)
	if err := pl.Transform(freq, src); err != nil {
		t.Fatal(err)
	}
	if err := pl.InverseTransform(back, freq); err != nil {
		t.Fatal(err)
	}
	if e := signal.RelErrL2(back, src); e > 1e-11 {
		t.Errorf("round trip error %.3e", e)
	}
}

// TestInverseMatchesDirect checks the inverse against the definition.
func TestInverseMatchesDirect(t *testing.T) {
	p := Params{N: 512, P: 8, Mu: 5, Nu: 4, B: 56}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(p.N, 8)
	want := make([]complex128, p.N)
	fft.DirectInverse(want, src)
	got := make([]complex128, p.N)
	if err := pl.InverseTransform(got, src); err != nil {
		t.Fatal(err)
	}
	if e := signal.RelErrL2(got, want); e > 1e-11 {
		t.Errorf("inverse vs direct error %.3e", e)
	}
}
