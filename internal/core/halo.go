package core

import (
	"fmt"

	"soifft/internal/exch"
)

// This file streams the halo exchange — the other communication phase.
// The blocking form posts the neighbour prefix(es) up front and then
// stalls the first boundary tile on one monolithic RecvC per depth. The
// streamed form chunks each prefix through the exch.HaloSizes schedule
// over checked sends and assembles arriving chunks in a background
// receiver, so by the time the producer's boundary tile asks, most (or
// all) of the halo has already landed behind the interior tiles'
// convolution; the boundary wait is only the residual chunks in flight.
//
// The chunks ride the transports' ordinary (positive-tag) mailboxes on
// tags exch.HaloTag(d, i). During the produce loop they are the only
// ordinary-tag traffic on their links, so the FIFO pop order matches the
// send order on both transports, and the coded exchange's parity frames
// — sent after the produce loop — queue strictly behind the last chunk.

// haloStream is the receive side of one streamed halo exchange.
type haloStream struct {
	done chan struct{}
	err  error // written before done closes
}

// wait blocks until every halo chunk landed (or the first failure).
func (hs *haloStream) wait() error {
	<-hs.done
	return hs.err
}

// startHaloStream posts this rank's prefix chunks to the preceding
// rank(s) and starts the background receiver assembling the neighbour
// prefix(es) into ext[nLocal:]. The receiver writes only past nLocal
// and the interior tiles read only below it, so the two proceed
// concurrently; boundary tiles synchronize through wait's channel.
// A send error (dead neighbour link) is returned immediately — the
// halo is not erasure-protected, so there is nothing to route around.
func (e *distExec) startHaloStream(localIn, ext []complex128) (*haloStream, error) {
	cc := e.c.(CheckedComm) // capability verified on the unwrapped Comm; the wrapper forwards
	rank, r := e.rank, e.r
	halo := e.pl.HaloLen()
	for d := 1; (d-1)*e.nLocal < halo; d++ {
		need := halo - (d-1)*e.nLocal
		if need > e.nLocal {
			need = e.nLocal
		}
		dst := (rank - d + r*d) % r
		off := 0
		for i, sz := range exch.HaloSizes(need) {
			if err := cc.SendChecked(dst, exch.HaloTag(d, i), localIn[off:off+sz]); err != nil {
				return nil, err
			}
			e.tr.ChunkInstant(e.tid, rank, "halo_chunk_send", i)
			off += sz
		}
	}
	hs := &haloStream{done: make(chan struct{})}
	go func() {
		defer close(hs.done)
		for d := 1; (d-1)*e.nLocal < halo; d++ {
			need := halo - (d-1)*e.nLocal
			if need > e.nLocal {
				need = e.nLocal
			}
			src := (rank + d) % r
			off := e.nLocal + (d-1)*e.nLocal
			for i, sz := range exch.HaloSizes(need) {
				data, err := cc.RecvCChecked(src, exch.HaloTag(d, i))
				if err != nil {
					hs.err = err
					return
				}
				if len(data) != sz {
					hs.err = fmt.Errorf("core: rank %d: halo chunk %d from %d has %d elements, want %d: %w",
						rank, i, src, len(data), sz, ErrLength)
					return
				}
				e.tr.ChunkInstant(e.tid, rank, "halo_chunk_recv", i)
				copy(ext[off:off+sz], data)
				off += sz
			}
		}
	}()
	return hs, nil
}
