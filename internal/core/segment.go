package core

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"
	"runtime"
	"time"

	"soifft/internal/instrument"
)

// TransformSegment computes a single frequency segment
// y[s·M : (s+1)·M] from the full input — the direct "pursuit of a
// segment of interest" of paper Fig 1. Instead of the I⊗F_P batch it
// evaluates only lane s of each block's P-point DFT (a dot product with
// the s-th DFT row), so the cost is the shared convolution plus one
// M'-point FFT: far cheaper than a full transform when only part of the
// spectrum is wanted.
func (pl *Plan) TransformSegment(dst, src []complex128, s int) error {
	return pl.TransformSegmentContext(context.Background(), dst, src, s)
}

// TransformSegmentContext is TransformSegment with cancellation checks
// between the convolution and the segment FFT.
func (pl *Plan) TransformSegmentContext(ctx context.Context, dst, src []complex128, s int) error {
	p := pl.prm
	if s < 0 || s >= p.P {
		return fmt.Errorf("core: segment %d out of range [0, %d): %w", s, p.P, ErrSegmentRange)
	}
	if len(src) != p.N || len(dst) != pl.m {
		return fmt.Errorf("core: need src %d dst %d, got %d/%d: %w", p.N, pl.m, len(src), len(dst), ErrLength)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rec := pl.rec
	timed := rec.Timing()
	var t0 time.Time
	if timed {
		t0 = time.Now()
	}

	ext := make([]complex128, p.N+pl.HaloLen())
	copy(ext, src)
	copy(ext[p.N:], src[:pl.HaloLen()])

	// s-th row of F_P: ω^{s·i}, ω = e^{-i2π/P}.
	row := make([]complex128, p.P)
	for i := 0; i < p.P; i++ {
		ang := -2 * math.Pi * float64((s*i)%p.P) / float64(p.P)
		row[i] = cmplx.Exp(complex(0, ang))
	}

	// x̃^(s)[j] = Σ_i ω^{si} · (W_j x)[i], fused with the convolution.
	xt := make([]complex128, pl.mp)
	parfor(workers, pl.mp, func(jLo, jHi int) {
		block := make([]complex128, (jHi-jLo)*p.P)
		pl.ConvolveRange(block, ext, jLo, jHi, 0)
		for j := jLo; j < jHi; j++ {
			b := block[(j-jLo)*p.P : (j-jLo+1)*p.P]
			var acc complex128
			for i, w := range row {
				acc += w * b[i]
			}
			xt[j] = acc
		}
	})
	var convWall time.Duration
	if timed {
		convWall = time.Since(t0)
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	if timed {
		t0 = time.Now()
	}
	yt := make([]complex128, pl.mp)
	pl.fftMP.Forward(yt, xt)
	pl.Demodulate(dst, yt)
	if rec.On() {
		var segWall time.Duration
		if timed {
			segWall = time.Since(t0)
		}
		// Segment pursuit: the convolution runs in full, but only one
		// lane of each P-point DFT is evaluated (2 flops per real op of
		// an 8-flop complex MAC ⇒ row dot product ≈ mp·P·8).
		rec.ObserveStage(instrument.StageConvolve, convWall, 0, workers,
			pl.ConvFlops()+int64(pl.mp)*int64(p.P)*8)
		rec.ObserveStage(instrument.StageSegmentFFT, segWall, 0, 1,
			int64(5*float64(pl.mp)*math.Log2(float64(pl.mp))))
	}
	return nil
}

// RunDistributedSegment computes one frequency segment over the
// communicator: every rank contributes its local convolution blocks'
// lane-s dot products, and rank `root` gathers the M' values, runs the
// segment FFT and demodulates. Communication is a single gather of M'/R
// points per rank plus the usual halo — far below even the SOI
// transform's all-to-all. Returns the segment (length M) on root, nil on
// other ranks.
func (pl *Plan) RunDistributedSegment(c Comm, localIn []complex128, s, root int) (out []complex128, err error) {
	defer RecoverFault(&err)
	p := pl.prm
	r := c.Size()
	if err := pl.ValidateDistributed(r); err != nil {
		return nil, err
	}
	c = instrumentComm(c, pl.rec)
	if s < 0 || s >= p.P {
		return nil, fmt.Errorf("core: segment %d out of range [0, %d): %w", s, p.P, ErrSegmentRange)
	}
	if root < 0 || root >= r {
		return nil, fmt.Errorf("core: root %d out of range [0, %d): %w", root, r, ErrPlanMismatch)
	}
	nLocal := p.N / r
	if len(localIn) != nLocal {
		return nil, fmt.Errorf("core: rank %d: need local length %d, got %d: %w", c.Rank(), nLocal, len(localIn), ErrLength)
	}
	rank := c.Rank()
	halo := pl.HaloLen()
	bpr := pl.mp / r

	// Halo exchange (same pattern as RunDistributed).
	ext := make([]complex128, nLocal+halo)
	copy(ext, localIn)
	if r == 1 {
		copy(ext[nLocal:], localIn[:halo])
	} else {
		depth := 0
		for d := 1; (d-1)*nLocal < halo; d++ {
			need := halo - (d-1)*nLocal
			if need > nLocal {
				need = nLocal
			}
			c.Send((rank-d+r*d)%r, tagHalo+d, localIn[:need])
			depth = d
		}
		for d := 1; d <= depth; d++ {
			data := c.RecvC((rank+d)%r, tagHalo+d)
			copy(ext[nLocal+(d-1)*nLocal:], data)
		}
	}

	// Local blocks' lane-s values: one convolution pass and a dot product
	// with the s-th DFT row per block.
	row := make([]complex128, p.P)
	for i := 0; i < p.P; i++ {
		ang := -2 * math.Pi * float64((s*i)%p.P) / float64(p.P)
		row[i] = cmplx.Exp(complex(0, ang))
	}
	jLo := rank * bpr
	block := make([]complex128, bpr*p.P)
	pl.ConvolveRange(block, ext, jLo, jLo+bpr, rank*nLocal)
	part := make([]complex128, bpr)
	for j := 0; j < bpr; j++ {
		var acc complex128
		for i, w := range row {
			acc += w * block[j*p.P+i]
		}
		part[j] = acc
	}

	xt := c.Gather(root, part)
	if rank != root {
		return nil, nil
	}
	yt := make([]complex128, pl.mp)
	pl.SegmentFFT(yt, xt)
	out = make([]complex128, pl.m)
	pl.Demodulate(out, yt)
	return out, nil
}
