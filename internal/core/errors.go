package core

import "errors"

// Sentinel errors of the execution surface. Every validation failure of
// Transform*, the distributed drivers and the convolution wraps one of
// these, so callers classify failures with errors.Is instead of matching
// message text. The public soifft package re-exports them.
var (
	// ErrLength reports a dst/src/filter slice whose length does not
	// match what the plan requires.
	ErrLength = errors.New("length mismatch")
	// ErrAlias reports dst and src sharing backing storage where the
	// pipeline requires distinct buffers.
	ErrAlias = errors.New("dst aliases src")
	// ErrSegmentRange reports a segment index outside [0, P).
	ErrSegmentRange = errors.New("segment index out of range")
	// ErrPlanMismatch reports an execution shape the plan cannot serve —
	// a rank count that does not divide the plan's segments or row
	// groups, a halo larger than the neighbour blocks, or a root rank
	// outside the world.
	ErrPlanMismatch = errors.New("execution shape incompatible with plan")
)
