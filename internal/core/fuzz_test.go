package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"soifft/internal/fft"
	"soifft/internal/signal"
)

// TestPropSOIAccuracyMatchesPrediction fuzzes random valid (N, P, β, B)
// combinations and checks that the measured error never exceeds the
// window-metric prediction by more than a safety factor — the paper's
// Section 4 error characterization, exercised across the design space.
func TestPropSOIAccuracyMatchesPrediction(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz is slow")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ratios := [][2]int{{5, 4}, {3, 2}, {9, 8}, {2, 1}}
		rat := ratios[rng.Intn(len(ratios))]
		ps := []int{1, 2, 4, 8}
		pSeg := ps[rng.Intn(len(ps))]
		// M must be a multiple of Nu and at least B.
		mult := 1 + rng.Intn(12)
		m := rat[1] * 8 * mult // multiple of Nu, 8·Nu..96·Nu
		b := 8 + rng.Intn(5)*8 // 8..40
		if b > m {
			b = m
		}
		p := Params{N: m * pSeg, P: pSeg, Mu: rat[0], Nu: rat[1], B: b}
		pl, err := NewPlan(p)
		if err != nil {
			t.Logf("seed %d: plan error %v for %+v", seed, err, p)
			return false
		}
		src := signal.Random(p.N, seed)
		want := make([]complex128, p.N)
		fft.Direct(want, src)
		got := make([]complex128, p.N)
		if err := pl.Transform(got, src); err != nil {
			return false
		}
		e := signal.RelErrL2(got, want)
		tol := math.Max(pl.PredictedError()*1000, 1e-10)
		if e > tol {
			t.Logf("seed %d: %+v err %.3e > tol %.3e", seed, p, e, tol)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropDistributedMatchesSerial fuzzes rank counts and segment shapes
// and requires bit-identical agreement between the distributed and the
// single-worker shared-memory paths.
func TestPropDistributedMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz is slow")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rs := []int{1, 2, 4, 8}
		r := rs[rng.Intn(len(rs))]
		spr := 1 + rng.Intn(3)
		pSeg := r * spr
		m := 4 * (8 + rng.Intn(24)) // multiple of Nu=4
		b := 8 + rng.Intn(3)*8
		if b > m {
			b = m
		}
		p := Params{N: m * pSeg, P: pSeg, Mu: 5, Nu: 4, B: b, Workers: 1}
		pl, err := NewPlan(p)
		if err != nil {
			return false
		}
		if pl.ValidateDistributed(r) != nil {
			return true // shape not distributable at this r; nothing to check
		}
		src := signal.Random(p.N, seed)
		serial := make([]complex128, p.N)
		if err := pl.Transform(serial, src); err != nil {
			return false
		}
		got, _, _ := runSOIDistributed(t, p, r, seed)
		return signal.MaxAbsErr(got, serial) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
