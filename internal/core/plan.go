package core

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
	"sync/atomic"

	"soifft/internal/adapt"
	"soifft/internal/fft"
	"soifft/internal/instrument"
	"soifft/internal/trace"
	"soifft/internal/window"
)

// Plan holds the precomputed tables of one SOI factorization: the weight
// tensor of the convolution operator W (μ·B·P distinct complex numbers,
// paper Fig 4), the inverse demodulation samples 1/ŵ(k), and the two FFT
// sub-plans F_P and F_M'. Plans are immutable and safe for concurrent use.
type Plan struct {
	prm    Params
	m      int // segment length M = N/P
	mp     int // oversampled segment length M' = M·μ/ν
	np     int // oversampled total N' = M'·P
	groups int // M'/μ row groups in the convolution

	// wt is the weight tensor, indexed wt[(r*B+b)*P+i] for row phase
	// r ∈ [0,μ), tap b ∈ [0,B), lane i ∈ [0,P).
	wt []complex128
	// The weight tensor factors exactly: wt[(r,b,i)] =
	// hre[(r*B+b)*P+i] · phase[r*P+i], with hre real. The hot
	// convolution kernel works on this split form — a real·complex MAC
	// is half the flops and half the tap-table traffic of the
	// complex·complex one, and all μ tap slabs (μ·B·P float64) fit in
	// L1/L2 where the full complex tensor does not.
	hre   []float64
	phase []complex128
	// dstart[r] = ⌊r·ν/μ⌋, the extra start-block offset of row phase r.
	dstart []int
	// invW[k] = 1/ŵ(k) for k ∈ [0,M): the demodulation diagonal.
	invW []complex128

	fftP  *fft.Plan
	fftMP *fft.Plan

	win     window.Window
	metrics window.Metrics

	// rec is the optional observability sink; nil (the default) keeps
	// every execution path at its uninstrumented cost apart from one
	// pointer test per stage.
	rec *instrument.Recorder

	// tr is the optional event tracer, with the same nil-is-free
	// contract as rec; a tracer on the context overrides it.
	tr *trace.Tracer

	// Adaptive-window controller state: one controller per rank (an
	// in-process world shares the plan across ranks), created lazily on
	// the first WithAdaptiveWindow run and persisting across transforms —
	// that persistence IS the adaptation. windowPrior is the predicted
	// wire/compute ratio seeding each controller (SetWindowPrior).
	adaptMu     sync.Mutex
	adaptCtl    map[int]*adapt.Controller
	windowPrior float64

	ws sync.Pool // *workspace, reused across Transform calls
}

// workspace holds the per-transform scratch buffers and timing cells so
// steady-state Transform calls allocate nothing (the serial path is
// exactly zero allocations; with workers > 1 only goroutine bookkeeping
// remains). The atomics live here rather than on the stack because the
// parallel path's closures would otherwise force a heap allocation per
// transform.
type workspace struct {
	ext  []complex128 // input + halo, N + (B−1)P
	conv []complex128 // convolution output, N'
	v    []complex128 // after I⊗F_P, N'
	seg  []complex128 // segment-major permutation, N'
	yb   []complex128 // segment spectra, N'

	busyConv, nsScatter atomic.Int64 // pass A worker busy / scatter slices
	busySeg, nsDemod    atomic.Int64 // pass B worker busy / demod slices
}

// NewPlan validates p, designs a window if none is given, and precomputes
// all tables.
func NewPlan(p Params) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Win == nil {
		p.Win = window.Design(p.B, p.Beta(), 1e3).Window
	}
	m := p.N / p.P
	mp := m / p.Nu * p.Mu
	pl := &Plan{
		prm:    p,
		m:      m,
		mp:     mp,
		np:     mp * p.P,
		groups: mp / p.Mu,
		win:    p.Win,
	}
	var err error
	if pl.fftP, err = fft.CachedPlan(p.P); err != nil {
		return nil, fmt.Errorf("core: F_P plan: %w", err)
	}
	if pl.fftMP, err = fft.CachedPlan(mp); err != nil {
		return nil, fmt.Errorf("core: F_M' plan: %w", err)
	}
	pl.buildWeights()
	pl.buildDemodulation()
	pl.metrics = window.Analyze(p.Win, p.Beta(), p.B)
	pl.ws.New = func() any {
		return &workspace{
			ext:  make([]complex128, pl.prm.N+pl.HaloLen()),
			conv: make([]complex128, pl.np),
			v:    make([]complex128, pl.np),
			seg:  make([]complex128, pl.np),
			yb:   make([]complex128, pl.np),
		}
	}
	return pl, nil
}

// buildWeights fills the μ·B·P weight tensor. For output row j = g·μ + r
// and tap block b, lane i, the convolution weight is
//
//	(1/M')·w(j/M' − (s_j+b)/M − i/N),  s_j = g·ν + dstart[r],
//
// where w(t) = M·exp(iπM(t+t₀))·H(M(t+t₀)), t₀ = B/(2M), is the
// time-domain window of ŵ(u) = exp(iπBPu/N)·Ĥ((u−M/2)/M). In the scaled
// variable α = M·(t+t₀) the dependence on g cancels:
//
//	α = r·ν/μ − (dstart[r]+b) − i/P + B/2
//	weight = (ν/μ)·exp(iπα)·H(α)
func (pl *Plan) buildWeights() {
	p := pl.prm
	pl.dstart = make([]int, p.Mu)
	for r := 0; r < p.Mu; r++ {
		pl.dstart[r] = r * p.Nu / p.Mu
	}
	pl.wt = make([]complex128, p.Mu*p.B*p.P)
	pl.hre = make([]float64, p.Mu*p.B*p.P)
	pl.phase = make([]complex128, p.Mu*p.P)
	scale := float64(p.Nu) / float64(p.Mu)
	for r := 0; r < p.Mu; r++ {
		rOff := float64(r)*scale + float64(p.B)/2 - float64(pl.dstart[r])
		// exp(iπα) = exp(iπ(rOff−i/P)) · (−1)^b exactly (b integer), so
		// the phase depends on (r, i) only and the tap table is real.
		for i := 0; i < p.P; i++ {
			pl.phase[r*p.P+i] = cmplx.Exp(complex(0, math.Pi*(rOff-float64(i)/float64(p.P))))
		}
		for b := 0; b < p.B; b++ {
			sign := scale
			if b&1 == 1 {
				sign = -scale
			}
			for i := 0; i < p.P; i++ {
				alpha := rOff - float64(b) - float64(i)/float64(p.P)
				h := pl.win.HTime(alpha)
				phase := cmplx.Exp(complex(0, math.Pi*alpha))
				pl.wt[(r*p.B+b)*p.P+i] = complex(scale*h, 0) * phase
				pl.hre[(r*p.B+b)*p.P+i] = sign * h
			}
		}
	}
}

// buildDemodulation fills invW[k] = 1/ŵ(k) = exp(−iπBk/M)/Ĥ((k−M/2)/M).
func (pl *Plan) buildDemodulation() {
	p := pl.prm
	pl.invW = make([]complex128, pl.m)
	for k := 0; k < pl.m; k++ {
		u := (float64(k) - float64(pl.m)/2) / float64(pl.m)
		hh := pl.win.HHat(u)
		phase := cmplx.Exp(complex(0, -math.Pi*float64(p.B)*float64(k)/float64(pl.m)))
		pl.invW[k] = phase * complex(1/hh, 0)
	}
}

// Params returns the parameters the plan was built with (window resolved).
func (pl *Plan) Params() Params { return pl.prm }

// SetRecorder attaches (or, with nil, detaches) an observability
// recorder. The recorder itself is concurrency-safe, but SetRecorder is
// a plain pointer write: install it before sharing the plan across
// goroutines, not while transforms are in flight.
func (pl *Plan) SetRecorder(r *instrument.Recorder) { pl.rec = r }

// Recorder returns the attached recorder (nil when observability is off).
func (pl *Plan) Recorder() *instrument.Recorder { return pl.rec }

// SetTracer attaches (or, with nil, detaches) an event tracer: each
// transform then emits begin/end spans per pipeline stage. Like
// SetRecorder this is a plain pointer write — install before sharing
// the plan. Execution paths also honor a tracer carried by the
// context (trace.WithTracer), which wins over the plan's own and is
// the race-free way to trace individual requests on a shared plan.
func (pl *Plan) SetTracer(t *trace.Tracer) { pl.tr = t }

// Tracer returns the attached tracer (nil when tracing is off).
func (pl *Plan) Tracer() *trace.Tracer { return pl.tr }

// SetWindowPrior seeds the adaptive window controllers with the
// perfmodel-predicted wire/compute ratio (Model.WireComputeRatio): the
// first WithAdaptiveWindow transform runs at adapt.PriorWindow(ratio)
// instead of the uncalibrated default. Like SetRecorder it is a plain
// write — install before sharing the plan. It has no effect on
// controllers that already exist.
func (pl *Plan) SetWindowPrior(ratio float64) { pl.windowPrior = ratio }

// adaptiveWindow returns rank's controller decision for the next
// transform, creating the controller at the model prior on first use.
// MaxWindow is the world size: in-flight chunks beyond one per
// destination stop buying overlap.
func (pl *Plan) adaptiveWindow(rank, size int) adapt.Decision {
	pl.adaptMu.Lock()
	defer pl.adaptMu.Unlock()
	if pl.adaptCtl == nil {
		pl.adaptCtl = make(map[int]*adapt.Controller)
	}
	ctl := pl.adaptCtl[rank]
	if ctl == nil {
		max := size
		if max < 2 {
			max = 2
		}
		ctl = adapt.New(adapt.Config{MaxWindow: max, Prior: pl.windowPrior})
		pl.adaptCtl[rank] = ctl
	}
	return ctl.Decision()
}

// adaptObserve folds one completed streamed transform into rank's
// controller and returns the decision for the next transform.
func (pl *Plan) adaptObserve(rank int, m adapt.Measurement) adapt.Decision {
	pl.adaptMu.Lock()
	defer pl.adaptMu.Unlock()
	ctl := pl.adaptCtl[rank]
	if ctl == nil {
		return adapt.Decision{}
	}
	return ctl.Observe(m)
}

// AdaptiveDecision reports rank's latest adaptive-window decision —
// the window its next WithAdaptiveWindow transform will stream with,
// the model prior it started from, and the controller's reasoning.
// ok is false before the rank's first adaptive run.
func (pl *Plan) AdaptiveDecision(rank int) (adapt.Decision, bool) {
	pl.adaptMu.Lock()
	defer pl.adaptMu.Unlock()
	ctl := pl.adaptCtl[rank]
	if ctl == nil {
		return adapt.Decision{}, false
	}
	return ctl.Decision(), true
}

// M returns the segment length N/P.
func (pl *Plan) M() int { return pl.m }

// MPrime returns the oversampled segment length M' = (1+β)M.
func (pl *Plan) MPrime() int { return pl.mp }

// NPrime returns the oversampled total length N' = (1+β)N; this is the
// volume of the single all-to-all.
func (pl *Plan) NPrime() int { return pl.np }

// rowEndCol returns the exclusive upper global column index read by
// convolution row j: (s_j + B)·P with s_j the row's start block.
func (pl *Plan) rowEndCol(j int) int {
	p := pl.prm
	sj := (j/p.Mu)*p.Nu + pl.dstart[j%p.Mu]
	return (sj + p.B) * p.P
}

// HaloLen returns how many elements beyond an input range the convolution
// reads: the taps of the last local output row extend (B−1)·P elements
// past the owned block (paper Fig 4's "(B−ν)P from its adjacent node",
// counted conservatively).
func (pl *Plan) HaloLen() int { return (pl.prm.B - 1) * pl.prm.P }

// Metrics reports the window accuracy metrics (κ, ε_alias, ε_trunc) of
// the plan's window at its (B, β).
func (pl *Plan) Metrics() window.Metrics { return pl.metrics }

// PredictedError is the paper's error-scale estimate κ(ε_fft+ε_alias+ε_trunc).
func (pl *Plan) PredictedError() float64 { return pl.metrics.TotalError() }

// ConvFlops counts the real floating-point operations of the convolution
// W·x (8 per complex multiply-add), the "extra" arithmetic SOI pays.
func (pl *Plan) ConvFlops() int64 {
	return int64(pl.np) * int64(pl.prm.B) * 8
}

// FFTFlops estimates the arithmetic of the FFT stages by the usual
// 5·n·log2(n) convention, over all P-point and M'-point sub-transforms.
func (pl *Plan) FFTFlops() int64 {
	lgP := math.Log2(float64(pl.prm.P))
	lgMP := math.Log2(float64(pl.mp))
	return int64(5*float64(pl.np)*lgP) + int64(5*float64(pl.np)*lgMP)
}
