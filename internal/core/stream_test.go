package core

import (
	"context"
	"testing"

	"soifft/internal/instrument"
	"soifft/internal/mpi"
	"soifft/internal/signal"
)

// streamParams has several convolution blocks and segments per rank on 4
// ranks, so the tile schedule is non-trivial at every window under test.
var streamParams = Params{N: 2048, P: 8, Mu: 5, Nu: 4, B: 32, Workers: 1}

// TestAsyncWindowBitIdentity: the streamed exchange re-orders pure data
// movement only — for every window the spectrum must match the blocking
// exchange bit for bit, with the same single-all-to-all accounting and
// the same analytic 16·(1+β)·N·(R−1)/R wire volume.
func TestAsyncWindowBitIdentity(t *testing.T) {
	const r, seed = 4, 301
	ref, _, refStats := runSOIDistributed(t, streamParams, r, seed)
	nPrime := streamParams.N / streamParams.Nu * streamParams.Mu
	wantBytes := int64(nPrime * 16 * (r - 1) / r)
	if refStats.AlltoallBytes != wantBytes {
		t.Fatalf("blocking volume %d, want analytic %d", refStats.AlltoallBytes, wantBytes)
	}
	for _, w := range []int{1, 2, r} {
		got, _, stats := runSOIDistributed(t, streamParams, r, seed, WithAsyncWindow(w))
		if e := signal.MaxAbsErr(got, ref); e != 0 {
			t.Errorf("window %d: streamed differs from blocking by %.3e", w, e)
		}
		if stats.Alltoalls != 1 {
			t.Errorf("window %d: %d all-to-alls, want exactly 1", w, stats.Alltoalls)
		}
		if stats.AlltoallBytes != wantBytes {
			t.Errorf("window %d: exchange carried %d bytes, want analytic %d",
				w, stats.AlltoallBytes, wantBytes)
		}
	}
}

// TestAsyncStreamRecorderBudget: the chunked frames must count against
// the same analytic exchange budget as the blocking call — one collective
// op, 16·(1+β)·N·(R−1)/R bytes regardless of window — plus a positive
// chunk count only the streamed path produces.
func TestAsyncStreamRecorderBudget(t *testing.T) {
	const r = 4
	pl, err := NewPlan(streamParams)
	if err != nil {
		t.Fatal(err)
	}
	rec := instrument.New(instrument.LevelTimers)
	src := signal.Random(streamParams.N, 17)
	got := make([]complex128, streamParams.N)
	w, err := mpi.NewWorld(r)
	if err != nil {
		t.Fatal(err)
	}
	nLocal := streamParams.N / r
	err = w.Run(func(c *mpi.Comm) error {
		_, err := pl.RunDistributed(context.Background(), c,
			got[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			src[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			WithAsyncWindow(2), WithRecorder(rec))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := rec.Snapshot()
	nPrime := streamParams.N / streamParams.Nu * streamParams.Mu
	wantBytes := int64(nPrime * 16 * (r - 1) / r)
	if snap.Comm.AlltoallBytes != wantBytes {
		t.Errorf("recorder all-to-all bytes %d, want analytic %d", snap.Comm.AlltoallBytes, wantBytes)
	}
	if snap.Comm.Alltoalls != 1 {
		t.Errorf("recorder counted %d all-to-all ops, want 1", snap.Comm.Alltoalls)
	}
	if snap.Comm.StreamChunks == 0 {
		t.Error("streamed run recorded zero chunks")
	}
	// Chunks partition the blocking payload: every rank ships T chunks to
	// each of the R−1 remote destinations.
	if snap.Comm.StreamChunks%int64(r*(r-1)) != 0 {
		t.Errorf("chunk count %d not a multiple of R(R-1)=%d", snap.Comm.StreamChunks, r*(r-1))
	}
	if ratio := snap.Comm.OverlapRatio(snap.Stages[instrument.StageExchange].Wall); ratio < 0 || ratio > 1 {
		t.Errorf("overlap ratio %.3f outside [0,1]", ratio)
	}
}

// opaqueComm hides every optional capability of the wrapped Comm: the
// promoted method set is exactly the Comm interface, so StreamComm and
// CheckedComm assertions fail and the driver must fall back.
type opaqueComm struct{ Comm }

// TestAsyncWindowFallbackWithoutCapability: a window on a transport
// without the StreamComm capability silently selects the blocking
// exchange — same bits, no streamed chunks.
func TestAsyncWindowFallbackWithoutCapability(t *testing.T) {
	const r, seed = 4, 302
	ref, _, _ := runSOIDistributed(t, streamParams, r, seed)
	pl, err := NewPlan(streamParams)
	if err != nil {
		t.Fatal(err)
	}
	rec := instrument.New(instrument.LevelCounters)
	src := signal.Random(streamParams.N, seed)
	got := make([]complex128, streamParams.N)
	w, err := mpi.NewWorld(r)
	if err != nil {
		t.Fatal(err)
	}
	nLocal := streamParams.N / r
	err = w.Run(func(c *mpi.Comm) error {
		_, err := pl.RunDistributed(context.Background(), opaqueComm{c},
			got[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			src[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			WithAsyncWindow(2), WithRecorder(rec))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := signal.MaxAbsErr(got, ref); e != 0 {
		t.Errorf("fallback result differs from blocking by %.3e", e)
	}
	if n := rec.Snapshot().Comm.StreamChunks; n != 0 {
		t.Errorf("capability-less transport streamed %d chunks, want 0", n)
	}
}

// TestAsyncCodedBitIdentity: coding composes with streaming — for every
// parity budget the streamed coded exchange must reproduce the blocking
// coded exchange (and hence the plain transform) bit for bit on a clean
// run.
func TestAsyncCodedBitIdentity(t *testing.T) {
	const r, seed = 4, 303
	pl, err := NewPlan(codedParams)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(codedParams.N, seed)
	ref, _, _ := runSOIDistributed(t, codedParams, r, seed)
	nLocal := codedParams.N / r
	for _, m := range []int{0, 1, 2} {
		for _, win := range []int{1, 2} {
			got := make([]complex128, codedParams.N)
			w, err := mpi.NewWorld(r)
			if err != nil {
				t.Fatal(err)
			}
			err = w.Run(func(c *mpi.Comm) error {
				rank := c.Rank()
				out := make([]complex128, nLocal)
				_, err := pl.RunDistributed(context.Background(), c, out,
					src[rank*nLocal:(rank+1)*nLocal],
					WithCoding(m), WithAsyncWindow(win))
				copy(got[rank*nLocal:(rank+1)*nLocal], out)
				return err
			})
			if err != nil {
				t.Fatalf("m=%d window=%d: %v", m, win, err)
			}
			if e := signal.MaxAbsErr(got, ref); e != 0 {
				t.Errorf("m=%d window=%d: streamed coded differs by %.3e", m, win, e)
			}
		}
	}
}

// TestDeprecatedWrappersDelegate: the pre-option entry points must keep
// compiling and produce bit-identical results by delegating to
// RunDistributed.
func TestDeprecatedWrappersDelegate(t *testing.T) {
	const r, seed = 4, 304
	ref, _, _ := runSOIDistributed(t, streamParams, r, seed)
	pl, err := NewPlan(streamParams)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(streamParams.N, seed)
	nLocal := streamParams.N / r

	runWorld := func(name string, body func(c *mpi.Comm, out, in []complex128) error) []complex128 {
		t.Helper()
		got := make([]complex128, streamParams.N)
		w, err := mpi.NewWorld(r)
		if err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(c *mpi.Comm) error {
			rank := c.Rank()
			return body(c, got[rank*nLocal:(rank+1)*nLocal], src[rank*nLocal:(rank+1)*nLocal])
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return got
	}

	plain := runWorld("RunDistributedContext", func(c *mpi.Comm, out, in []complex128) error {
		//lint:ignore SA1019 the wrapper's delegation contract is under test
		_, err := pl.RunDistributedContext(context.Background(), c, out, in)
		return err
	})
	if e := signal.MaxAbsErr(plain, ref); e != 0 {
		t.Errorf("RunDistributedContext differs from RunDistributed by %.3e", e)
	}

	coded := runWorld("RunDistributedCoded", func(c *mpi.Comm, out, in []complex128) error {
		//lint:ignore SA1019 the wrapper's delegation contract is under test
		_, err := pl.RunDistributedCoded(c, 1, out, in)
		return err
	})
	if e := signal.MaxAbsErr(coded, ref); e != 0 {
		t.Errorf("RunDistributedCoded differs from RunDistributed by %.3e", e)
	}

	codedCtx := runWorld("RunDistributedCodedContext", func(c *mpi.Comm, out, in []complex128) error {
		//lint:ignore SA1019 the wrapper's delegation contract is under test
		_, err := pl.RunDistributedCodedContext(context.Background(), c, 1, out, in)
		return err
	})
	if e := signal.MaxAbsErr(codedCtx, ref); e != 0 {
		t.Errorf("RunDistributedCodedContext differs from RunDistributed by %.3e", e)
	}

	// Inverse: forward then deprecated inverse must round-trip to the
	// same bits as the current inverse entry point.
	invNew := runWorld("RunDistributedInverse", func(c *mpi.Comm, out, in []complex128) error {
		rank := c.Rank()
		_, err := pl.RunDistributedInverse(context.Background(), c, out, ref[rank*nLocal:(rank+1)*nLocal])
		return err
	})
	invOld := runWorld("RunDistributedInverseContext", func(c *mpi.Comm, out, in []complex128) error {
		rank := c.Rank()
		//lint:ignore SA1019 the wrapper's delegation contract is under test
		_, err := pl.RunDistributedInverseContext(context.Background(), c, out, ref[rank*nLocal:(rank+1)*nLocal])
		return err
	})
	if e := signal.MaxAbsErr(invOld, invNew); e != 0 {
		t.Errorf("RunDistributedInverseContext differs from RunDistributedInverse by %.3e", e)
	}
}

// TestAsyncWindowPairwisePlanIgnored: a plan configured for the pairwise
// exchange still honours the async window (the streamed schedule is
// itself pairwise), staying bit-identical to both blocking variants.
func TestAsyncWindowPairwiseBitIdentity(t *testing.T) {
	const r, seed = 4, 305
	pw := streamParams
	pw.Exchange = ExchangePairwise
	ref, _, _ := runSOIDistributed(t, pw, r, seed)
	got, _, stats := runSOIDistributed(t, pw, r, seed, WithAsyncWindow(3))
	if e := signal.MaxAbsErr(got, ref); e != 0 {
		t.Errorf("streamed pairwise plan differs by %.3e", e)
	}
	if stats.Alltoalls != 1 {
		t.Errorf("%d all-to-alls, want 1", stats.Alltoalls)
	}
}
