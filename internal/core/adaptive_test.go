package core

import (
	"context"
	"testing"

	"soifft/internal/instrument"
	"soifft/internal/mpi"
	"soifft/internal/signal"
	"soifft/internal/trace"
)

// runAdaptive executes transforms adaptive transforms on a fresh
// in-process world and returns the assembled spectrum.
func runAdaptive(t *testing.T, pl *Plan, src []complex128, ranks, transforms int,
	ctx context.Context, opts ...DistOption) []complex128 {
	t.Helper()
	got := make([]complex128, len(src))
	nLocal := len(src) / ranks
	w, err := mpi.NewWorld(ranks)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *mpi.Comm) error {
		for i := 0; i < transforms; i++ {
			if _, err := pl.RunDistributed(ctx, c,
				got[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
				src[c.Rank()*nLocal:(c.Rank()+1)*nLocal], opts...); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestAdaptiveWindowBitIdentityAndPrior: WithAdaptiveWindow resolves the
// first window from the seeded model prior, every transform stays
// bit-identical to the blocking exchange, the per-rank decision is
// exposed through the plan API, and the streamed halo rides the same
// runs (halo chunk instants on the trace).
func TestAdaptiveWindowBitIdentityAndPrior(t *testing.T) {
	const r, seed = 4, 304
	ref, _, _ := runSOIDistributed(t, streamParams, r, seed)
	pl, err := NewPlan(streamParams)
	if err != nil {
		t.Fatal(err)
	}
	// ratio 1.6 → PriorWindow = ceil(3.2) = 4, inside MaxWindow = R.
	pl.SetWindowPrior(1.6)
	tr := trace.New(0)
	ctx := trace.WithTracer(trace.WithID(context.Background(), trace.NewID()), tr)
	src := signal.Random(streamParams.N, seed)
	got := runAdaptive(t, pl, src, r, 3, ctx, WithAdaptiveWindow())
	if e := signal.MaxAbsErr(got, ref); e != 0 {
		t.Errorf("adaptive run differs from blocking by %.3e (must be bit-identical)", e)
	}
	for rank := 0; rank < r; rank++ {
		d, ok := pl.AdaptiveDecision(rank)
		if !ok {
			t.Fatalf("rank %d: no adaptive decision after 3 transforms", rank)
		}
		if d.Prior != 4 {
			t.Errorf("rank %d: model prior window %d, want 4 from ratio 1.6", rank, d.Prior)
		}
		if d.Window < 1 || d.Window > r {
			t.Errorf("rank %d: settled window %d outside [1,%d]", rank, d.Window, r)
		}
	}
	var windows, haloSends int
	for _, ev := range tr.Snapshot() {
		switch ev.Name {
		case "adaptive_window":
			windows++
		case "halo_chunk_send":
			haloSends++
		}
	}
	if windows < 3*r {
		t.Errorf("trace has %d adaptive_window counters, want at least %d", windows, 3*r)
	}
	if haloSends == 0 {
		t.Error("no halo_chunk_send instants: streamed halo did not run")
	}
}

// TestAdaptiveComposesWithCoding: the controller and the coded exchange
// share the streamed path; a clean coded adaptive run must reproduce the
// blocking transform bit for bit and still record a decision.
func TestAdaptiveComposesWithCoding(t *testing.T) {
	const r, seed = 4, 305
	ref, _, _ := runSOIDistributed(t, codedParams, r, seed)
	pl, err := NewPlan(codedParams)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(codedParams.N, seed)
	got := runAdaptive(t, pl, src, r, 2, context.Background(),
		WithCoding(1), WithAdaptiveWindow())
	if e := signal.MaxAbsErr(got, ref); e != 0 {
		t.Errorf("coded adaptive run differs from blocking by %.3e", e)
	}
	if _, ok := pl.AdaptiveDecision(0); !ok {
		t.Error("no adaptive decision after a coded adaptive run")
	}
}

// TestAdaptiveFallbackWithoutCapability: on a transport without
// StreamComm the adaptive option degrades to the blocking exchange —
// same bits, no streamed chunks, no controller ever created.
func TestAdaptiveFallbackWithoutCapability(t *testing.T) {
	const r, seed = 4, 306
	ref, _, _ := runSOIDistributed(t, streamParams, r, seed)
	pl, err := NewPlan(streamParams)
	if err != nil {
		t.Fatal(err)
	}
	rec := instrument.New(instrument.LevelCounters)
	src := signal.Random(streamParams.N, seed)
	got := make([]complex128, streamParams.N)
	w, err := mpi.NewWorld(r)
	if err != nil {
		t.Fatal(err)
	}
	nLocal := streamParams.N / r
	err = w.Run(func(c *mpi.Comm) error {
		_, err := pl.RunDistributed(context.Background(), opaqueComm{c},
			got[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			src[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			WithAdaptiveWindow(), WithRecorder(rec))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := signal.MaxAbsErr(got, ref); e != 0 {
		t.Errorf("fallback result differs from blocking by %.3e", e)
	}
	if n := rec.Snapshot().Comm.StreamChunks; n != 0 {
		t.Errorf("capability-less transport streamed %d chunks, want 0", n)
	}
	if _, ok := pl.AdaptiveDecision(0); ok {
		t.Error("controller created despite the transport lacking StreamComm")
	}
}
