package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"soifft/internal/instrument"
	"soifft/internal/trace"
)

// tracerFor resolves the tracer and trace ID for one execution: a
// tracer carried by the context (per-request, race-free on shared
// plans) wins over the plan's own. Both may be nil/zero — the tracer's
// nil-safe methods make that the free path.
func (pl *Plan) tracerFor(ctx context.Context) (*trace.Tracer, trace.ID) {
	if t := trace.TracerFrom(ctx); t != nil {
		return t, trace.IDFrom(ctx)
	}
	return pl.tr, trace.IDFrom(ctx)
}

// PhaseTimes records wall time per pipeline stage of one transform; it
// feeds the performance-model calibration and the op-count ablation
// (paper Section 7.4 measures convolution time ≈ FFT time within SOI).
type PhaseTimes struct {
	Convolve  time.Duration // W·x plus the fused I_M'⊗F_P stage
	Transpose time.Duration // the stride-P permutation (shared-memory form)
	SegmentFT time.Duration // per-segment F_M'
	Demod     time.Duration // projection + Ŵ⁻¹ scaling
}

// Total returns the sum over phases.
func (t PhaseTimes) Total() time.Duration {
	return t.Convolve + t.Transpose + t.SegmentFT + t.Demod
}

// Transform computes dst = DFT(src) through the SOI factorization using
// shared-memory parallelism. dst and src must have length N and must not
// alias.
func (pl *Plan) Transform(dst, src []complex128) error {
	_, err := pl.transform(context.Background(), dst, src)
	return err
}

// TransformContext is Transform with cancellation checks at stage
// boundaries: when ctx is cancelled the pipeline stops before its next
// stage and returns ctx.Err(). A stage already running completes (stages
// are pure compute; the longest is a fraction of the transform).
func (pl *Plan) TransformContext(ctx context.Context, dst, src []complex128) error {
	_, err := pl.transform(ctx, dst, src)
	return err
}

// TransformTimed is Transform with per-phase wall-time reporting.
func (pl *Plan) TransformTimed(dst, src []complex128) (PhaseTimes, error) {
	return pl.transform(context.Background(), dst, src)
}

func (pl *Plan) transform(ctx context.Context, dst, src []complex128) (PhaseTimes, error) {
	var pt PhaseTimes
	p := pl.prm
	if len(src) != p.N || len(dst) != p.N {
		return pt, fmt.Errorf("core: need len %d, got dst %d src %d: %w", p.N, len(dst), len(src), ErrLength)
	}
	if len(src) > 0 && len(dst) > 0 && &dst[0] == &src[0] {
		return pt, fmt.Errorf("core: dst must not alias src: %w", ErrAlias)
	}
	if err := ctx.Err(); err != nil {
		return pt, err
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rec := pl.rec
	timed := rec.Timing()
	tr, tid := pl.tracerFor(ctx)

	// Extend the input with its own head so tap windows never wrap: this
	// is the shared-memory stand-in for the neighbour halo exchange.
	t0 := time.Now()
	tr.Begin(tid, 0, instrument.StageHalo.String())
	ws := pl.ws.Get().(*workspace)
	defer pl.ws.Put(ws)
	xext := ws.ext
	copy(xext, src)
	copy(xext[p.N:], src[:pl.HaloLen()])
	tr.End(tid, 0, instrument.StageHalo.String())

	// Stage 1+2 fused: convolution blocks and their P-point FFTs.
	tr.Begin(tid, 0, instrument.StageConvolve.String())
	v := ws.v
	var convBusy atomic.Int64
	parfor(workers, pl.mp, func(jLo, jHi int) {
		var w0 time.Time
		if timed {
			w0 = time.Now()
		}
		tmp := ws.conv[jLo*p.P : jHi*p.P]
		pl.ConvolveRange(tmp, xext, jLo, jHi, 0)
		pl.fftP.Batch(v[jLo*p.P:jHi*p.P], tmp, jHi-jLo)
		if timed {
			convBusy.Add(int64(time.Since(w0)))
		}
	})
	pt.Convolve = time.Since(t0)
	tr.End(tid, 0, instrument.StageConvolve.String())
	if err := ctx.Err(); err != nil {
		return pt, err
	}

	// Stage 3: stride-P permutation, gathering each segment contiguously.
	t0 = time.Now()
	tr.Begin(tid, 0, instrument.StageExchange.String())
	seg := ws.seg
	transpose(seg, v, pl.mp, p.P, workers)
	pt.Transpose = time.Since(t0)
	tr.End(tid, 0, instrument.StageExchange.String())
	if err := ctx.Err(); err != nil {
		return pt, err
	}

	// Stage 4: per-segment M'-point FFTs.
	t0 = time.Now()
	tr.Begin(tid, 0, instrument.StageSegmentFFT.String())
	ybuf := ws.yb
	var segBusy atomic.Int64
	parfor(workers, p.P, func(sLo, sHi int) {
		var w0 time.Time
		if timed {
			w0 = time.Now()
		}
		for s := sLo; s < sHi; s++ {
			pl.fftMP.Forward(ybuf[s*pl.mp:(s+1)*pl.mp], seg[s*pl.mp:(s+1)*pl.mp])
		}
		if timed {
			segBusy.Add(int64(time.Since(w0)))
		}
	})
	pt.SegmentFT = time.Since(t0)
	tr.End(tid, 0, instrument.StageSegmentFFT.String())
	if err := ctx.Err(); err != nil {
		return pt, err
	}

	// Stage 5: project to the top M entries of each segment, demodulate.
	t0 = time.Now()
	tr.Begin(tid, 0, instrument.StageDemod.String())
	parfor(workers, p.P, func(sLo, sHi int) {
		for s := sLo; s < sHi; s++ {
			pl.Demodulate(dst[s*pl.m:(s+1)*pl.m], ybuf[s*pl.mp:(s+1)*pl.mp])
		}
	})
	pt.Demod = time.Since(t0)
	tr.End(tid, 0, instrument.StageDemod.String())

	if rec.On() {
		rec.AddTransform()
		wall := pt
		if !timed {
			wall = PhaseTimes{} // counters level: events and FLOPs only
		}
		rec.ObserveStage(instrument.StageConvolve, wall.Convolve,
			time.Duration(convBusy.Load()), workers, pl.convStageFlops())
		rec.ObserveStage(instrument.StageExchange, wall.Transpose, 0, workers, 0)
		rec.ObserveStage(instrument.StageSegmentFFT, wall.SegmentFT,
			time.Duration(segBusy.Load()), workers, pl.segmentStageFlops())
		rec.ObserveStage(instrument.StageDemod, wall.Demod, 0, workers, pl.demodStageFlops())
	}
	return pt, nil
}

// ConvolveRange computes output blocks j ∈ [jLo, jHi) of the convolution
// W·x into dst (block-major: dst[(j−jLo)*P + i]). src is a contiguous
// window of the input starting at global column colOff; it must cover
// every tap of the requested rows, i.e. global columns
// [s_jLo·P, (s_{jHi−1}+B)·P). The caller supplies halo data past its own
// range; ConvolveRange never wraps indices.
//
// Each output element is a length-B stride-P inner product with one of μ
// weight rows (paper Section 6, loops a–d).
func (pl *Plan) ConvolveRange(dst, src []complex128, jLo, jHi, colOff int) {
	p := pl.prm
	for j := jLo; j < jHi; j++ {
		g, r := j/p.Mu, j%p.Mu
		start := (g*p.Nu+pl.dstart[r])*p.P - colOff
		w := pl.wt[r*p.B*p.P : (r*p.B+p.B)*p.P]
		out := dst[(j-jLo)*p.P : (j-jLo+1)*p.P]
		for i := range out {
			out[i] = 0
		}
		for b := 0; b < p.B; b++ {
			xb := src[start+b*p.P : start+(b+1)*p.P]
			wb := w[b*p.P : (b+1)*p.P]
			for i, xv := range xb {
				out[i] += wb[i] * xv
			}
		}
	}
}

// Demodulate converts one segment's oversampled spectrum ytilde (length
// M') into final DFT values: dst[k] = ytilde[k]/ŵ(k) for k ∈ [0, M).
func (pl *Plan) Demodulate(dst, ytilde []complex128) {
	for k := 0; k < pl.m; k++ {
		dst[k] = ytilde[k] * pl.invW[k]
	}
}

// convStageFlops estimates the arithmetic of the fused convolve + I⊗F_P
// stage of one full transform.
func (pl *Plan) convStageFlops() int64 {
	return pl.ConvFlops() + int64(5*float64(pl.np)*math.Log2(float64(pl.prm.P)))
}

// segmentStageFlops estimates the arithmetic of the per-segment F_M'
// batch of one full transform.
func (pl *Plan) segmentStageFlops() int64 {
	return int64(5 * float64(pl.np) * math.Log2(float64(pl.mp)))
}

// demodStageFlops estimates the arithmetic of the demodulation stage
// (one complex multiply per output point).
func (pl *Plan) demodStageFlops() int64 {
	return int64(pl.prm.N) * 6
}

// SegmentFFT runs the per-segment F_M' transform (exposed for the
// distributed driver).
func (pl *Plan) SegmentFFT(dst, src []complex128) { pl.fftMP.Forward(dst, src) }

// BlockFFTBatch applies F_P to count contiguous P-blocks (exposed for
// the distributed driver).
func (pl *Plan) BlockFFTBatch(dst, src []complex128, count int) {
	pl.fftP.Batch(dst, src, count)
}

// transpose writes dst[s*rows + j] = src[j*cols + s] for an rows×cols
// src, using simple cache blocking and row-band parallelism.
func transpose(dst, src []complex128, rows, cols, workers int) {
	const blk = 64
	parfor(workers, rows, func(lo, hi int) {
		for jb := lo; jb < hi; jb += blk {
			jEnd := min(jb+blk, hi)
			for sb := 0; sb < cols; sb += blk {
				sEnd := min(sb+blk, cols)
				for j := jb; j < jEnd; j++ {
					row := src[j*cols:]
					for s := sb; s < sEnd; s++ {
						dst[s*rows+j] = row[s]
					}
				}
			}
		}
	})
}

// parfor splits [0, n) into one contiguous span per worker.
func parfor(workers, n int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
