package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"soifft/internal/instrument"
	"soifft/internal/trace"
)

// tracerFor resolves the tracer and trace ID for one execution: a
// tracer carried by the context (per-request, race-free on shared
// plans) wins over the plan's own. Both may be nil/zero — the tracer's
// nil-safe methods make that the free path.
func (pl *Plan) tracerFor(ctx context.Context) (*trace.Tracer, trace.ID) {
	if t := trace.TracerFrom(ctx); t != nil {
		return t, trace.IDFrom(ctx)
	}
	return pl.tr, trace.IDFrom(ctx)
}

// PhaseTimes records wall time per pipeline stage of one transform; it
// feeds the performance-model calibration and the op-count ablation
// (paper Section 7.4 measures convolution time ≈ FFT time within SOI).
//
// The shared-memory pipeline runs fused (the permutation happens tile by
// tile inside the convolution pass, demodulation segment by segment
// inside the FFT pass), so Transpose and Demod report the accumulated
// time of those fused slices and Convolve/SegmentFT the remainder of
// their pass walls.
type PhaseTimes struct {
	Convolve  time.Duration // W·x plus the fused I_M'⊗F_P stage
	Transpose time.Duration // the stride-P permutation (shared-memory form)
	SegmentFT time.Duration // per-segment F_M'
	Demod     time.Duration // projection + Ŵ⁻¹ scaling
}

// Total returns the sum over phases.
func (t PhaseTimes) Total() time.Duration {
	return t.Convolve + t.Transpose + t.SegmentFT + t.Demod
}

// Transform computes dst = DFT(src) through the SOI factorization using
// shared-memory parallelism. dst and src must have length N and must not
// alias.
func (pl *Plan) Transform(dst, src []complex128) error {
	_, err := pl.transform(context.Background(), dst, src)
	return err
}

// TransformContext is Transform with cancellation checks at stage
// boundaries: when ctx is cancelled the pipeline stops before its next
// stage and returns ctx.Err(). A stage already running completes (stages
// are pure compute; the longest is a fraction of the transform).
func (pl *Plan) TransformContext(ctx context.Context, dst, src []complex128) error {
	_, err := pl.transform(ctx, dst, src)
	return err
}

// TransformTimed is Transform with per-phase wall-time reporting.
func (pl *Plan) TransformTimed(dst, src []complex128) (PhaseTimes, error) {
	return pl.transform(context.Background(), dst, src)
}

func (pl *Plan) transform(ctx context.Context, dst, src []complex128) (PhaseTimes, error) {
	var pt PhaseTimes
	p := pl.prm
	if len(src) != p.N || len(dst) != p.N {
		return pt, fmt.Errorf("core: need len %d, got dst %d src %d: %w", p.N, len(dst), len(src), ErrLength)
	}
	if len(src) > 0 && len(dst) > 0 && &dst[0] == &src[0] {
		return pt, fmt.Errorf("core: dst must not alias src: %w", ErrAlias)
	}
	if err := ctx.Err(); err != nil {
		return pt, err
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	rec := pl.rec
	timed := rec.Timing()
	tr, tid := pl.tracerFor(ctx)

	// Extend the input with its own head so tap windows never wrap: this
	// is the shared-memory stand-in for the neighbour halo exchange.
	t0 := time.Now()
	tr.Begin(tid, 0, instrument.StageHalo.String())
	ws := pl.ws.Get().(*workspace)
	defer pl.ws.Put(ws)
	xext := ws.ext
	copy(xext, src)
	copy(xext[p.N:], src[:pl.HaloLen()])
	tr.End(tid, 0, instrument.StageHalo.String())

	// Pass A — stages 1+2+3 fused per tile: convolution, P-point FFTs and
	// the stride-P scatter into segment-major layout run tile by tile, so
	// each tile's FFT and permutation read convolution output that is
	// still cache-hot, and (with workers > 1) the FFT/scatter of one tile
	// overlaps the convolution of the next across goroutines. The
	// standalone full-array transpose sweep of the unfused pipeline is
	// gone.
	ws.busyConv.Store(0)
	ws.nsScatter.Store(0)
	ws.busySeg.Store(0)
	ws.nsDemod.Store(0)
	tr.Begin(tid, 0, instrument.StageConvolve.String())
	if workers <= 1 {
		pl.convPass(ws, 0, pl.mp, timed)
	} else {
		parfor(workers, pl.mp, func(jLo, jHi int) {
			pl.convPass(ws, jLo, jHi, timed)
		})
	}
	pt.Transpose = time.Duration(ws.nsScatter.Load())
	pt.Convolve = time.Since(t0) - pt.Transpose
	tr.End(tid, 0, instrument.StageConvolve.String())
	if err := ctx.Err(); err != nil {
		return pt, err
	}

	// Pass B — stages 4+5 fused per segment: the M'-point FFT of segment
	// s feeds straight into its demodulation while the spectrum is hot.
	t0 = time.Now()
	tr.Begin(tid, 0, instrument.StageSegmentFFT.String())
	if workers <= 1 {
		pl.segPass(ws, dst, 0, p.P, timed)
	} else {
		parfor(workers, p.P, func(sLo, sHi int) {
			pl.segPass(ws, dst, sLo, sHi, timed)
		})
	}
	pt.Demod = time.Duration(ws.nsDemod.Load())
	pt.SegmentFT = time.Since(t0) - pt.Demod
	tr.End(tid, 0, instrument.StageSegmentFFT.String())

	if rec.On() {
		rec.AddTransform()
		wall := pt
		if !timed {
			wall = PhaseTimes{} // counters level: events and FLOPs only
		}
		rec.ObserveStage(instrument.StageConvolve, wall.Convolve,
			time.Duration(ws.busyConv.Load()), workers, pl.convStageFlops())
		rec.ObserveStage(instrument.StageExchange, wall.Transpose, 0, workers, 0)
		rec.ObserveStage(instrument.StageSegmentFFT, wall.SegmentFT,
			time.Duration(ws.busySeg.Load()), workers, pl.segmentStageFlops())
		rec.ObserveStage(instrument.StageDemod, wall.Demod, 0, workers, pl.demodStageFlops())
	}
	return pt, nil
}

// convTileRows is the tile height of the fused convolve→F_P→scatter
// pass: 256 rows × P lanes × 16 B ≈ 32 KiB per tile buffer at P = 8, so
// a tile's convolution output is still in L1/L2 when its FFTs and its
// scatter run.
const convTileRows = 256

// convPass runs the fused stage-1/2/3 pipeline for rows [jLo, jHi):
// convolve a tile of rows, apply the P-point FFT batch to it, scatter it
// into segment-major layout, then move to the next tile. Disjoint row
// ranges touch disjoint cells of every buffer, so ranges may run
// concurrently; per-call timing lands in the workspace atomics.
func (pl *Plan) convPass(ws *workspace, jLo, jHi int, timed bool) {
	var w0 time.Time
	if timed {
		w0 = time.Now()
	}
	lanes := pl.prm.P
	mp := pl.mp
	seg := ws.seg
	var scat int64
	for t := jLo; t < jHi; t += convTileRows {
		tEnd := min(t+convTileRows, jHi)
		tmp := ws.conv[t*lanes : tEnd*lanes]
		v := ws.v[t*lanes : tEnd*lanes]
		pl.ConvolveRange(tmp, ws.ext, t, tEnd, 0)
		pl.fftP.Batch(v, tmp, tEnd-t)
		s0 := time.Now()
		for s := 0; s < lanes; s++ {
			sgr := seg[s*mp:]
			for j := t; j < tEnd; j++ {
				sgr[j] = v[(j-t)*lanes+s]
			}
		}
		scat += int64(time.Since(s0))
	}
	ws.nsScatter.Add(scat)
	if timed {
		ws.busyConv.Add(int64(time.Since(w0)))
	}
}

// segPass runs the fused stage-4/5 pipeline for segments [sLo, sHi):
// each segment's M'-point FFT feeds its demodulation immediately.
func (pl *Plan) segPass(ws *workspace, dst []complex128, sLo, sHi int, timed bool) {
	var w0 time.Time
	if timed {
		w0 = time.Now()
	}
	var dem int64
	for s := sLo; s < sHi; s++ {
		pl.fftMP.Forward(ws.yb[s*pl.mp:(s+1)*pl.mp], ws.seg[s*pl.mp:(s+1)*pl.mp])
		d0 := time.Now()
		pl.Demodulate(dst[s*pl.m:(s+1)*pl.m], ws.yb[s*pl.mp:(s+1)*pl.mp])
		dem += int64(time.Since(d0))
	}
	ws.nsDemod.Add(dem)
	if timed {
		ws.busySeg.Add(int64(time.Since(w0)))
	}
}

// ConvolveRange computes output blocks j ∈ [jLo, jHi) of the convolution
// W·x into dst (block-major: dst[(j−jLo)*P + i]). src is a contiguous
// window of the input starting at global column colOff; it must cover
// every tap of the requested rows, i.e. global columns
// [s_jLo·P, (s_{jHi−1}+B)·P). The caller supplies halo data past its own
// range; ConvolveRange never wraps indices.
//
// Each output element is a length-B stride-P inner product with one of μ
// weight rows (paper Section 6, loops a–d).
//
// The kernel exploits the exact factorization of the weight tensor into
// a real tap table and a per-(r, i) phase (see buildWeights): each lane
// is a real·complex dot product over one contiguous B·P input slab —
// half the arithmetic and half the table traffic of the complex MAC
// form — followed by a single complex multiply by the lane phase.
func (pl *Plan) ConvolveRange(dst, src []complex128, jLo, jHi, colOff int) {
	p := pl.prm
	lanes, taps := p.P, p.B
	for j := jLo; j < jHi; j++ {
		g, r := j/p.Mu, j%p.Mu
		start := (g*p.Nu+pl.dstart[r])*lanes - colOff
		h := pl.hre[r*taps*lanes : (r*taps+taps)*lanes]
		xs := src[start : start+taps*lanes]
		ph := pl.phase[r*lanes : (r+1)*lanes]
		out := dst[(j-jLo)*lanes : (j-jLo+1)*lanes]
		convDot(out, h, xs, ph, lanes)
	}
}

// convDot computes out[i] = ph[i] · Σ_b h[b·lanes+i]·x[b·lanes+i] for
// each lane. h and x are one row's contiguous tap slab (len B·lanes);
// the per-lane walk is lanes-strided but the whole slab is L1-resident.
// Two accumulator pairs per lane break the add dependency chain.
func convDot(out []complex128, h []float64, x []complex128, ph []complex128, lanes int) {
	n := len(h)
	if len(x) < n {
		n = len(x)
	}
	step := 2 * lanes
	for i := range out {
		var re0, im0, re1, im1 float64
		k := i
		for ; k+lanes < n; k += step {
			h0, x0 := h[k], x[k]
			re0 += h0 * real(x0)
			im0 += h0 * imag(x0)
			h1, x1 := h[k+lanes], x[k+lanes]
			re1 += h1 * real(x1)
			im1 += h1 * imag(x1)
		}
		if k < n {
			h0, x0 := h[k], x[k]
			re0 += h0 * real(x0)
			im0 += h0 * imag(x0)
		}
		p := ph[i]
		re, im := re0+re1, im0+im1
		out[i] = complex(re*real(p)-im*imag(p), re*imag(p)+im*real(p))
	}
}

// convolveRangeRef is the pre-factorization reference kernel operating
// on the full complex weight tensor. It is retained as the ground truth
// the fast path is tested against (TestConvolveRangeMatchesReference).
func (pl *Plan) convolveRangeRef(dst, src []complex128, jLo, jHi, colOff int) {
	p := pl.prm
	for j := jLo; j < jHi; j++ {
		g, r := j/p.Mu, j%p.Mu
		start := (g*p.Nu+pl.dstart[r])*p.P - colOff
		w := pl.wt[r*p.B*p.P : (r*p.B+p.B)*p.P]
		out := dst[(j-jLo)*p.P : (j-jLo+1)*p.P]
		for i := range out {
			out[i] = 0
		}
		for b := 0; b < p.B; b++ {
			xb := src[start+b*p.P : start+(b+1)*p.P]
			wb := w[b*p.P : (b+1)*p.P]
			for i, xv := range xb {
				out[i] += wb[i] * xv
			}
		}
	}
}

// Demodulate converts one segment's oversampled spectrum ytilde (length
// M') into final DFT values: dst[k] = ytilde[k]/ŵ(k) for k ∈ [0, M).
func (pl *Plan) Demodulate(dst, ytilde []complex128) {
	for k := 0; k < pl.m; k++ {
		dst[k] = ytilde[k] * pl.invW[k]
	}
}

// convStageFlops estimates the arithmetic of the fused convolve + I⊗F_P
// stage of one full transform.
func (pl *Plan) convStageFlops() int64 {
	return pl.ConvFlops() + int64(5*float64(pl.np)*math.Log2(float64(pl.prm.P)))
}

// segmentStageFlops estimates the arithmetic of the per-segment F_M'
// batch of one full transform.
func (pl *Plan) segmentStageFlops() int64 {
	return int64(5 * float64(pl.np) * math.Log2(float64(pl.mp)))
}

// demodStageFlops estimates the arithmetic of the demodulation stage
// (one complex multiply per output point).
func (pl *Plan) demodStageFlops() int64 {
	return int64(pl.prm.N) * 6
}

// SegmentFFT runs the per-segment F_M' transform (exposed for the
// distributed driver).
func (pl *Plan) SegmentFFT(dst, src []complex128) { pl.fftMP.Forward(dst, src) }

// BlockFFTBatch applies F_P to count contiguous P-blocks (exposed for
// the distributed driver).
func (pl *Plan) BlockFFTBatch(dst, src []complex128, count int) {
	pl.fftP.Batch(dst, src, count)
}

// parfor splits [0, n) into one contiguous span per worker.
func parfor(workers, n int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
