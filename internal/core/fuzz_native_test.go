package core

// Native Go fuzz targets. Without -fuzz these run their seed corpus as
// ordinary tests; with `go test -fuzz=FuzzSOITransform ./internal/core`
// the engine explores the parameter space automatically.

import (
	"testing"

	"soifft/internal/fft"
	"soifft/internal/signal"
)

func FuzzSOITransform(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(8), uint8(3))
	f.Add(int64(7), uint8(0), uint8(16), uint8(1))
	f.Add(int64(42), uint8(3), uint8(4), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, pIdx, mMult, bIdx uint8) {
		ps := []int{1, 2, 4, 8}
		pSeg := ps[int(pIdx)%len(ps)]
		m := 4 * (4 + int(mMult)%40) // multiple of Nu=4, 16..172
		bs := []int{8, 16, 24, 32}
		b := bs[int(bIdx)%len(bs)]
		if b > m {
			b = m
		}
		p := Params{N: m * pSeg, P: pSeg, Mu: 5, Nu: 4, B: b}
		pl, err := NewPlan(p)
		if err != nil {
			t.Fatalf("valid-by-construction params rejected: %+v: %v", p, err)
		}
		src := signal.Random(p.N, seed)
		want := make([]complex128, p.N)
		fft.Direct(want, src)
		got := make([]complex128, p.N)
		if err := pl.Transform(got, src); err != nil {
			t.Fatal(err)
		}
		tol := pl.PredictedError() * 1000
		if tol < 1e-9 {
			tol = 1e-9
		}
		if e := signal.RelErrL2(got, want); e > tol {
			t.Errorf("params %+v: rel err %.3e > tol %.3e", p, e, tol)
		}
	})
}

func FuzzValidateNeverPanics(f *testing.F) {
	f.Add(64, 4, 5, 4, 8)
	f.Add(0, 0, 0, 0, 0)
	f.Add(-8, 3, 2, 7, 1)
	f.Fuzz(func(t *testing.T, n, p, mu, nu, b int) {
		prm := Params{N: n, P: p, Mu: mu, Nu: nu, B: b}
		// Must never panic, whatever the integers.
		err := prm.Validate()
		if err == nil {
			// If it validates, the plan must build.
			if _, err2 := NewPlan(prm); err2 != nil {
				t.Errorf("Validate accepted %+v but NewPlan failed: %v", prm, err2)
			}
		}
	})
}
