package core

// Independent validation of the weight-tensor index algebra: the
// convolution output is recomputed from the paper's definitions alone
// (Definition 1 and the window transform pair), bypassing the tensor.

import (
	"math"
	"math/cmplx"
	"testing"

	"soifft/internal/signal"
	"soifft/internal/window"
)

// convolveByDefinition computes x̃_j = (1/M')·Σ_ℓ w(j/M' − ℓ/N)·x_{ℓ mod N}
// with w(t) = M·e^{iπM(t+t₀)}·H(M(t+t₀)), t₀ = B/(2M), truncated to the
// same B-tap column range the fast path uses.
func convolveByDefinition(pl *Plan, x []complex128, j int) []complex128 {
	p := pl.prm
	m := pl.m
	mp := pl.mp
	n := p.N
	t0 := float64(p.B) / (2 * float64(m))
	out := make([]complex128, p.P)
	g, r := j/p.Mu, j%p.Mu
	sj := g*p.Nu + pl.dstart[r]
	for b := 0; b < p.B; b++ {
		for i := 0; i < p.P; i++ {
			l := (sj+b)*p.P + i
			tArg := float64(j)/float64(mp) - float64(l)/float64(n)
			alpha := float64(m) * (tArg + t0)
			wval := complex(float64(m)*pl.win.HTime(alpha), 0) *
				cmplx.Exp(complex(0, math.Pi*alpha))
			out[i] += wval * x[l%n] / complex(float64(mp), 0)
		}
	}
	return out
}

func TestConvolveRangeMatchesDefinition(t *testing.T) {
	p := Params{N: 480, P: 4, Mu: 5, Nu: 4, B: 24, Win: window.TauSigma{Tau: 0.8, Sigma: 90}}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	x := signal.Random(p.N, 31)
	ext := make([]complex128, p.N+pl.HaloLen())
	copy(ext, x)
	copy(ext[p.N:], x[:pl.HaloLen()])

	fast := make([]complex128, pl.MPrime()*p.P)
	pl.ConvolveRange(fast, ext, 0, pl.MPrime(), 0)

	// Spot-check rows across all μ phases and both block boundaries.
	rows := []int{0, 1, 2, 3, 4, 5, 7, 11, pl.MPrime() / 2, pl.MPrime() - 2, pl.MPrime() - 1}
	for _, j := range rows {
		want := convolveByDefinition(pl, x, j)
		got := fast[j*p.P : (j+1)*p.P]
		for i := range want {
			if d := cmplx.Abs(got[i] - want[i]); d > 1e-13 {
				t.Errorf("row %d lane %d: fast %v definition %v (|Δ|=%.3e)",
					j, i, got[i], want[i], d)
			}
		}
	}
}

func TestWeightTensorGroupInvariance(t *testing.T) {
	// Paper Fig 4: the matrix has only μ·P·B distinct elements — rows
	// j and j+μ must produce identical weights (shifted input).
	p := Params{N: 640, P: 4, Mu: 5, Nu: 4, B: 16}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	// Feed an impulse train so equal weights produce equal outputs:
	// x shifted by ν·P between row groups must reproduce outputs.
	x := signal.Random(p.N, 32)
	ext := make([]complex128, p.N+pl.HaloLen())
	copy(ext, x)
	copy(ext[p.N:], x[:pl.HaloLen()])
	out := make([]complex128, pl.MPrime()*p.P)
	pl.ConvolveRange(out, ext, 0, pl.MPrime(), 0)

	// Build a shifted input: x'(k) = x(k + ν·P); then row j on x' must
	// equal row j+μ on x.
	shift := p.Nu * p.P
	xs := make([]complex128, p.N)
	for k := range xs {
		xs[k] = x[(k+shift)%p.N]
	}
	exts := make([]complex128, p.N+pl.HaloLen())
	copy(exts, xs)
	copy(exts[p.N:], xs[:pl.HaloLen()])
	outs := make([]complex128, pl.MPrime()*p.P)
	pl.ConvolveRange(outs, exts, 0, pl.MPrime(), 0)

	for j := 0; j+p.Mu < pl.MPrime(); j += 7 {
		for i := 0; i < p.P; i++ {
			a := outs[j*p.P+i]
			b := out[(j+p.Mu)*p.P+i]
			if d := cmplx.Abs(a - b); d > 1e-13 {
				t.Errorf("row %d on shifted input != row %d: |Δ|=%.3e", j, j+p.Mu, d)
			}
		}
	}
}

func TestDemodulationUsesWindowSamples(t *testing.T) {
	// invW[k]·ŵ(k) must equal 1: ŵ(k) = e^{iπBk/M}·Ĥ((k−M/2)/M).
	p := Params{N: 512, P: 8, Mu: 5, Nu: 4, B: 32}
	pl, err := NewPlan(p)
	if err != nil {
		t.Fatal(err)
	}
	m := pl.M()
	for k := 0; k < m; k += 5 {
		u := (float64(k) - float64(m)/2) / float64(m)
		what := cmplx.Exp(complex(0, math.Pi*float64(p.B)*float64(k)/float64(m))) *
			complex(pl.win.HHat(u), 0)
		one := pl.invW[k] * what
		if cmplx.Abs(one-1) > 1e-12 {
			t.Errorf("k=%d: invW·ŵ = %v, want 1", k, one)
		}
	}
}
