package core

import (
	"context"
	"math/cmplx"
)

// InverseTransform computes dst = IDFT(src), scaled by 1/N so a
// forward-inverse round trip reproduces the input. It reuses the forward
// SOI factorization through the conjugation identity
//
//	IDFT(y) = conj(DFT(conj(y))) / N,
//
// so the inverse inherits the single-all-to-all property unchanged.
func (pl *Plan) InverseTransform(dst, src []complex128) error {
	return pl.InverseTransformContext(context.Background(), dst, src)
}

// InverseTransformContext is InverseTransform with the forward path's
// cancellation checks at stage boundaries.
func (pl *Plan) InverseTransformContext(ctx context.Context, dst, src []complex128) error {
	tmp := make([]complex128, len(src))
	conjInto(tmp, src)
	if err := pl.TransformContext(ctx, dst, tmp); err != nil {
		return err
	}
	conjScale(dst, 1/float64(pl.prm.N))
	return nil
}

// RunDistributedInverse is the distributed counterpart of
// InverseTransform: conjugation and scaling are rank-local, so the
// communication profile is identical to the forward run (one halo
// exchange plus a single all-to-all), and the forward driver's options
// (WithAsyncWindow, WithCoding, WithRecorder) apply unchanged.
func (pl *Plan) RunDistributedInverse(ctx context.Context, c Comm, localOut, localIn []complex128, opts ...DistOption) (DistributedTimes, error) {
	tmp := make([]complex128, len(localIn))
	conjInto(tmp, localIn)
	dt, err := pl.RunDistributed(ctx, c, localOut, tmp, opts...)
	if err != nil {
		return dt, err
	}
	conjScale(localOut, 1/float64(pl.prm.N))
	return dt, nil
}

// RunDistributedInverseContext is the pre-option spelling of
// RunDistributedInverse.
//
// Deprecated: call RunDistributedInverse, which now takes the context
// and options directly.
func (pl *Plan) RunDistributedInverseContext(ctx context.Context, c Comm, localOut, localIn []complex128) (DistributedTimes, error) {
	return pl.RunDistributedInverse(ctx, c, localOut, localIn)
}

func conjInto(dst, src []complex128) {
	for i, v := range src {
		dst[i] = cmplx.Conj(v)
	}
}

func conjScale(x []complex128, s float64) {
	for i, v := range x {
		x[i] = complex(real(v)*s, -imag(v)*s)
	}
}
