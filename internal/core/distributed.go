package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"soifft/internal/exch"
	"soifft/internal/instrument"
	"soifft/internal/telemetry"
	"soifft/internal/trace"
)

// Tags used by the distributed driver.
const (
	tagHalo = 100
)

// Comm is the communication surface the distributed driver needs. It is
// satisfied by *mpi.Comm (the in-process runtime) and by *mpinet.Proc
// (the TCP transport), so the same SOI code runs over goroutines or over
// real sockets.
type Comm interface {
	Rank() int
	Size() int
	Send(to, tag int, data any)
	RecvC(from, tag int) []complex128
	Alltoall(send []complex128, chunk int) []complex128
	PairwiseAlltoallv(send []complex128, sendCounts, recvCounts []int) []complex128
	Gather(root int, chunk []complex128) []complex128
}

// Fault is the marker interface for typed communication failures. A
// Comm implementation raises one as a panic when the transport itself
// breaks mid-collective (peer death, corrupted frame, expired I/O
// deadline); *mpinet.TransportError and *mpi.AbortError implement it.
// The distributed drivers recover Faults (and only Faults) into ordinary
// error returns, so a wire failure surfaces as a typed error from
// RunDistributed instead of a panic or a hang.
type Fault interface {
	error
	CommFault()
}

// RecoverFault converts an in-flight Fault panic into *err. Defer it (or
// use GuardComm) around any code that calls Comm methods directly.
// Non-fault panics — programming errors — propagate unchanged.
func RecoverFault(err *error) {
	r := recover()
	if r == nil {
		return
	}
	if f, ok := r.(Fault); ok {
		if *err == nil {
			*err = f
		}
		return
	}
	panic(r)
}

// GuardComm runs fn and returns the typed communication Fault it raised,
// if any — the bridge for callers driving a Comm outside the Run*
// helpers (e.g. a bare Gather or Barrier in cmd/soinode).
func GuardComm(fn func()) (err error) {
	defer RecoverFault(&err)
	fn()
	return nil
}

// DistributedTimes records the per-phase wall time of one rank's
// distributed transform; the single Exchange entry is the headline
// communication step the paper optimizes.
type DistributedTimes struct {
	Halo      time.Duration // neighbour exchange of (B−1)·P elements
	Convolve  time.Duration // W·x plus I⊗F_P on local blocks
	Exchange  time.Duration // the one and only all-to-all
	SegmentFT time.Duration // owned segments' F_M' + demodulation
}

// Total returns the sum over phases.
func (t DistributedTimes) Total() time.Duration {
	return t.Halo + t.Convolve + t.Exchange + t.SegmentFT
}

// ValidateDistributed checks that the plan can run on r ranks: the rank
// count must divide the segment count P and the convolution row groups
// M/ν (so each rank's block range starts on a μ-row group boundary), and
// the tap halo must fit within a single neighbour's block.
func (pl *Plan) ValidateDistributed(r int) error {
	p := pl.prm
	switch {
	case r <= 0:
		return fmt.Errorf("core: rank count must be positive, got %d: %w", r, ErrPlanMismatch)
	case p.P%r != 0:
		return fmt.Errorf("core: ranks=%d must divide segments P=%d: %w", r, p.P, ErrPlanMismatch)
	case pl.groups%r != 0:
		return fmt.Errorf("core: ranks=%d must divide row groups M/ν=%d: %w", r, pl.groups, ErrPlanMismatch)
	case r > 1 && pl.HaloLen() > (r-1)*(p.N/r):
		return fmt.Errorf("core: halo %d exceeds the %d available neighbour blocks of %d; decrease B or ranks: %w",
			pl.HaloLen(), r-1, p.N/r, ErrPlanMismatch)
	}
	return nil
}

// countingComm wraps a Comm once — whatever its optional capabilities —
// and mirrors its traffic into a Recorder: point-to-point payload bytes
// at the sender, all-to-all volume as this rank's inter-rank
// contribution (self-copies excluded, matching what a fabric would
// carry — summed over per-rank recorders, or accumulated in one shared
// recorder, the total is 16·(1+β)·N·(R−1)/R bytes per SOI transform,
// identical for the blocking, pairwise, and streamed exchanges). The
// collective op itself is counted once per world, on rank 0, mirroring
// the mpi.World statistics convention.
//
// The optional capabilities forward by asserting the inner Comm, so the
// wrapper exposes the full unified surface; callers must discover a
// capability on the unwrapped Comm before using it through the wrapper.
// Checked point-to-point traffic is deliberately NOT counted here: the
// only checked caller is the coded exchange, which classifies its own
// protocol traffic (parity vs recovery bytes) more precisely than a
// generic wrapper could.
type countingComm struct {
	Comm
	rec *instrument.Recorder
}

// instrumentComm wraps c when the recorder is observing; otherwise it
// returns c untouched so the uninstrumented path has zero indirection.
func instrumentComm(c Comm, rec *instrument.Recorder) Comm {
	if !rec.On() {
		return c
	}
	return &countingComm{Comm: c, rec: rec}
}

func (cc *countingComm) Send(to, tag int, data any) {
	cc.rec.CountMessage(payloadBytes(data))
	cc.Comm.Send(to, tag, data)
}

func (cc *countingComm) Alltoall(send []complex128, chunk int) []complex128 {
	if cc.Comm.Rank() == 0 {
		cc.rec.CountAlltoallOp()
	}
	cc.rec.CountAlltoallBytes(int64(cc.Comm.Size()-1) * int64(chunk) * 16)
	return cc.Comm.Alltoall(send, chunk)
}

func (cc *countingComm) PairwiseAlltoallv(send []complex128, sendCounts, recvCounts []int) []complex128 {
	if cc.Comm.Rank() == 0 {
		cc.rec.CountAlltoallOp()
	}
	var n int64
	for t, cnt := range sendCounts {
		if t != cc.Comm.Rank() {
			n += int64(cnt)
		}
	}
	cc.rec.CountAlltoallBytes(n * 16)
	return cc.Comm.PairwiseAlltoallv(send, sendCounts, recvCounts)
}

func (cc *countingComm) Gather(root int, chunk []complex128) []complex128 {
	if cc.Comm.Rank() != root {
		cc.rec.CountMessage(int64(len(chunk)) * 16)
	}
	return cc.Comm.Gather(root, chunk)
}

func (cc *countingComm) SendChecked(to, tag int, data any) error {
	return cc.Comm.(CheckedComm).SendChecked(to, tag, data)
}

func (cc *countingComm) RecvCChecked(from, tag int) ([]complex128, error) {
	return cc.Comm.(CheckedComm).RecvCChecked(from, tag)
}

// StartAlltoallv forwards the streaming capability and counts the
// chunked frames against the same analytic budget as the blocking
// exchange: the op once on rank 0, and every non-self chunk's payload at
// the sender. Summed over a stream, the chunks partition exactly the
// blocking exchange's (R−1)·chunk elements, so the live 3/(1+β) ratio
// check holds unchanged regardless of window size.
func (cc *countingComm) StartAlltoallv(o exch.Options) exch.Stream {
	if cc.Comm.Rank() == 0 {
		cc.rec.CountAlltoallOp()
	}
	return &countedStream{Stream: cc.Comm.(StreamComm).StartAlltoallv(o), cc: cc}
}

type countedStream struct {
	exch.Stream
	cc *countingComm
}

func (s *countedStream) Send(dst, idx int, data []complex128) error {
	if dst != s.cc.Comm.Rank() {
		s.cc.rec.CountAlltoallBytes(int64(len(data)) * 16)
		s.cc.rec.CountStreamChunk()
	}
	return s.Stream.Send(dst, idx, data)
}

// payloadBytes sizes the wire payload of a Send argument.
func payloadBytes(data any) int64 {
	switch d := data.(type) {
	case []complex128:
		return int64(len(d)) * 16
	case []float64:
		return int64(len(d)) * 8
	case []byte:
		return int64(len(d))
	default:
		return 0
	}
}

// RunDistributed executes the SOI factorization over the communicator:
// rank p provides localIn = x[p·N/R : (p+1)·N/R] and receives
// localOut = y[p·N/R : (p+1)·N/R]. Communication per rank is one
// neighbour halo of (B−1)·P points plus a single all-to-all of
// (1+β)·N/R points — versus three all-to-alls of N/R points for the
// standard algorithms in internal/baseline.
//
// Options select the exchange machinery without changing the spectrum
// (all variants are bit-identical on a clean run):
//   - WithAsyncWindow(w) streams the all-to-all in chunks, w in flight
//     per link, overlapped with convolution — wire time hides behind
//     compute, and the Exchange stage time reports only the un-hidden
//     remainder;
//   - WithAdaptiveWindow() has the plan's closed-loop controller pick w
//     per rank: the model prior first, then adapted between transforms
//     from the measured overlap and credit-stall;
//   - WithCoding(m) erasure-protects the exchange so the transform
//     survives up to m rank deaths (requires the CheckedComm
//     capability); coding composes with WithAsyncWindow and
//     WithAdaptiveWindow;
//   - WithRecorder(rec) observes the run with a specific recorder.
//
// On a streamed run over a Comm with checked messaging, the halo
// prefix exchange streams in chunks too (the exch.HaloSizes schedule),
// so both communication phases hide behind compute.
//
// A cancelled context stops this rank before its next local phase; it
// does not interrupt a collective already in flight (the transport's
// I/O deadline bounds those), and ranks that stop early leave peers to
// fail with their own deadline faults.
func (pl *Plan) RunDistributed(ctx context.Context, c Comm, localOut, localIn []complex128, opts ...DistOption) (DistributedTimes, error) {
	cfg := pl.resolveDistOptions(opts)
	// Capabilities are discovered on the unwrapped Comm (the counting
	// wrapper forwards them blindly).
	if _, ok := c.(CheckedComm); ok {
		cfg.haloChecked = true
	}
	if cfg.adaptive && cfg.window == 0 {
		if _, ok := c.(StreamComm); ok {
			cfg.window = pl.adaptiveWindow(c.Rank(), c.Size()).Window
		}
	}
	if cfg.coded {
		return pl.runCoded(ctx, c, cfg, localOut, localIn)
	}
	return pl.runFlat(ctx, c, cfg, localOut, localIn)
}

// RunDistributedContext is the pre-option spelling of RunDistributed.
//
// Deprecated: call RunDistributed, which now takes the context and
// options directly.
func (pl *Plan) RunDistributedContext(ctx context.Context, c Comm, localOut, localIn []complex128) (DistributedTimes, error) {
	return pl.RunDistributed(ctx, c, localOut, localIn)
}

// runFlat is the uncoded distributed transform: phases 1–2, the single
// all-to-all (blocking, or streamed when an async window is configured
// and the transport supports it), then phase 4.
func (pl *Plan) runFlat(ctx context.Context, c Comm, cfg distOptions, localOut, localIn []complex128) (dt DistributedTimes, err error) {
	defer RecoverFault(&err)
	e, err := pl.newDistExec(ctx, cfg, instrumentComm(c, cfg.rec), localOut, localIn)
	if err != nil {
		return dt, err
	}
	if _, ok := c.(StreamComm); ok && cfg.window > 0 {
		err = e.runStreamed(ctx, localOut, localIn)
		if err == nil {
			e.report()
		}
		return e.dt, err
	}
	send, err := e.phase12(ctx, localIn)
	if err != nil {
		return e.dt, err
	}

	// Phase 3: the single all-to-all (stride-P permutation P_perm^{P,N'}).
	t0 := time.Now()
	e.tr.Begin(e.tid, e.rank, instrument.StageExchange.String())
	var recv []complex128
	if pl.prm.Exchange == ExchangePairwise {
		counts := make([]int, e.r)
		for i := range counts {
			counts[i] = e.chunk
		}
		recv = e.c.PairwiseAlltoallv(send, counts, counts)
	} else {
		recv = e.c.Alltoall(send, e.chunk)
	}
	e.dt.Exchange = time.Since(t0)
	e.tr.End(e.tid, e.rank, instrument.StageExchange.String())
	if err := ctx.Err(); err != nil {
		return e.dt, err
	}

	// Phase 4: assemble each owned segment's oversampled sequence, run
	// F_M', project and demodulate.
	t0 = time.Now()
	e.tr.Begin(e.tid, e.rank, instrument.StageSegmentFFT.String())
	e.phase4(func(src int) []complex128 {
		return recv[src*e.chunk : (src+1)*e.chunk]
	}, localOut)
	e.dt.SegmentFT = time.Since(t0)
	e.tr.End(e.tid, e.rank, instrument.StageSegmentFFT.String())

	e.report()
	return e.dt, nil
}

// distExec is the per-rank execution state one distributed transform
// shares between its phases; the plain and coded drivers both build one
// and differ only in how chunks cross the wire between phase12 and
// phase4.
type distExec struct {
	pl                *Plan
	c                 Comm                 // collective/halo surface (instrument-wrapped when observing)
	rec               *instrument.Recorder // this run's recorder (plan's unless WithRecorder overrode it)
	rank, r           int
	workers           int
	nLocal            int
	bpr               int  // convolution blocks per rank
	spr               int  // segments per rank
	chunk             int  // elements per destination in the exchange (bpr·spr)
	window            int  // streamed-exchange in-flight window (0 = blocking)
	adaptive          bool // window chosen by the plan's controller; observe after the run
	haloChecked       bool // stream the halo through checked chunked sends
	tr                *trace.Tracer
	tid               trace.ID
	tele              *telemetry.Plane
	timed             bool
	convBusy, segBusy atomic.Int64
	dt                DistributedTimes
}

// newDistExec validates plan/world/buffer shapes and assembles the
// execution state.
func (pl *Plan) newDistExec(ctx context.Context, cfg distOptions, c Comm, localOut, localIn []complex128) (*distExec, error) {
	r := c.Size()
	if err := pl.ValidateDistributed(r); err != nil {
		return nil, err
	}
	p := pl.prm
	workers := p.Workers
	if workers <= 0 {
		workers = 1 // one goroutine per rank unless hybrid mode is requested
	}
	nLocal := p.N / r
	if len(localIn) != nLocal || len(localOut) != nLocal {
		return nil, fmt.Errorf("core: rank %d: need local length %d, got in %d out %d: %w",
			c.Rank(), nLocal, len(localIn), len(localOut), ErrLength)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e := &distExec{
		pl: pl, c: c, rec: cfg.rec, rank: c.Rank(), r: r, workers: workers, nLocal: nLocal,
		bpr: pl.mp / r, spr: p.P / r, chunk: (pl.mp / r) * (p.P / r),
		window:      cfg.window,
		adaptive:    cfg.adaptive && cfg.window > 0,
		haloChecked: cfg.haloChecked,
		tele:        cfg.tele,
		timed:       cfg.rec.Timing(),
	}
	e.tr, e.tid = pl.tracerFor(ctx)
	return e, nil
}

// phase12 runs the halo exchange and the convolution/block-FFT phase and
// returns the packed exchange buffer: destination t's chunk occupies
// [t·chunk, (t+1)·chunk).
func (e *distExec) phase12(ctx context.Context, localIn []complex128) ([]complex128, error) {
	pl, p, rank, r := e.pl, e.pl.prm, e.rank, e.r

	// Phase 1: halo exchange, overlapped with interior convolution. The
	// convolution of the last local rows reads up to (B−1)·P elements
	// past the owned block, so rank p posts its own prefix to the
	// preceding rank(s) immediately (sends are asynchronous), convolves
	// every row whose taps stay inside the owned block, and only then
	// waits for the neighbour prefix(es) to finish the boundary rows. In
	// production shapes the halo is a single short neighbour message
	// (paper: "typically less than 0.01% of M"); tiny test shapes may
	// span several neighbours.
	halo := pl.HaloLen()
	t0 := time.Now()
	e.tr.Begin(e.tid, rank, instrument.StageHalo.String())
	ext := make([]complex128, e.nLocal+halo)
	copy(ext, localIn)
	depth := 0 // neighbour distance the halo spans
	if r > 1 {
		for d := 1; (d-1)*e.nLocal < halo; d++ {
			need := halo - (d-1)*e.nLocal
			if need > e.nLocal {
				need = e.nLocal
			}
			e.c.Send((rank-d+r*d)%r, tagHalo+d, localIn[:need])
			depth = d
		}
	}
	e.dt.Halo = time.Since(t0)
	e.tr.End(e.tid, rank, instrument.StageHalo.String())

	// Phase 2: convolution rows and their P-point FFTs. Interior rows
	// (taps within the owned block) run while the halo is in flight.
	t0 = time.Now()
	e.tr.Begin(e.tid, rank, instrument.StageConvolve.String())
	jLo := rank * e.bpr
	jMid := jLo
	for jMid < jLo+e.bpr && pl.rowEndCol(jMid) <= (rank+1)*e.nLocal {
		jMid++
	}
	v := make([]complex128, e.bpr*p.P)
	conv := make([]complex128, e.bpr*p.P)
	parfor(e.workers, jMid-jLo, func(lo, hi int) {
		w0 := time.Now()
		pl.ConvolveRange(conv[lo*p.P:hi*p.P], ext, jLo+lo, jLo+hi, rank*e.nLocal)
		if e.timed {
			e.convBusy.Add(int64(time.Since(w0)))
		}
	})
	e.dt.Convolve = time.Since(t0)

	t0 = time.Now()
	e.tr.Begin(e.tid, rank, instrument.StageHalo.String())
	if r == 1 {
		copy(ext[e.nLocal:], localIn[:halo])
	} else {
		for d := 1; d <= depth; d++ {
			data := e.c.RecvC((rank+d)%r, tagHalo+d)
			copy(ext[e.nLocal+(d-1)*e.nLocal:], data)
		}
	}
	e.dt.Halo += time.Since(t0)
	e.tr.End(e.tid, rank, instrument.StageHalo.String())

	t0 = time.Now()
	pl.ConvolveRange(conv[(jMid-jLo)*p.P:], ext, jMid, jLo+e.bpr, rank*e.nLocal)
	if e.timed {
		e.convBusy.Add(int64(time.Since(t0)))
	}
	parfor(e.workers, e.bpr, func(lo, hi int) {
		w0 := time.Now()
		pl.BlockFFTBatch(v[lo*p.P:hi*p.P], conv[lo*p.P:hi*p.P], hi-lo)
		if e.timed {
			e.convBusy.Add(int64(time.Since(w0)))
		}
	})

	// Pack for the exchange: destination t gets lanes [t·spr, (t+1)·spr)
	// of every local block (the node-local permutation of paper Fig 3).
	send := make([]complex128, e.bpr*p.P)
	for t := 0; t < r; t++ {
		base := t * e.chunk
		for j := 0; j < e.bpr; j++ {
			copy(send[base+j*e.spr:base+(j+1)*e.spr], v[j*p.P+t*e.spr:j*p.P+(t+1)*e.spr])
		}
	}
	e.dt.Convolve += time.Since(t0)
	e.tr.End(e.tid, rank, instrument.StageConvolve.String())
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return send, nil
}

// phase4 assembles, segment-FFTs and demodulates one rank's worth of
// owned segments into out (nLocal elements). chunkOf(src) must return
// the bpr·spr chunk that source rank src addressed to the output owner;
// the segment pipeline itself is owner-agnostic (the global segment
// identity is baked into the chunk data by the phase-2 modulation), so
// the coded driver reuses it verbatim to take over a dead rank's output
// with bit-identical results.
func (e *distExec) phase4(chunkOf func(src int) []complex128, out []complex128) {
	pl := e.pl
	parfor(e.workers, e.spr, func(sLo, sHi int) {
		w0 := time.Now()
		xt := make([]complex128, pl.mp)
		yt := make([]complex128, pl.mp)
		for ss := sLo; ss < sHi; ss++ {
			for src := 0; src < e.r; src++ {
				cb := chunkOf(src)
				for j := 0; j < e.bpr; j++ {
					xt[src*e.bpr+j] = cb[j*e.spr+ss]
				}
			}
			pl.SegmentFFT(yt, xt)
			pl.Demodulate(out[ss*pl.m:(ss+1)*pl.m], yt)
		}
		if e.timed {
			e.segBusy.Add(int64(time.Since(w0)))
		}
	})
}

// report books the transform's stage observations into the plan's
// recorder (no-op when instrumentation is off) and, when a telemetry
// plane is attached, ships the rank's refreshed stat frame to rank 0.
func (e *distExec) report() {
	defer e.tele.OnTransformEnd() // after the recorder sees this transform
	rec := e.rec
	if !rec.On() {
		return
	}
	rec.AddTransform() // counts per-rank executions on the distributed path
	wall := e.dt
	if !rec.Timing() {
		wall = DistributedTimes{}
	}
	rec.ObserveStage(instrument.StageHalo, wall.Halo, 0, 1, 0)
	rec.ObserveStage(instrument.StageConvolve, wall.Convolve,
		time.Duration(e.convBusy.Load()), e.workers, e.pl.convStageFlops()/int64(e.r))
	rec.ObserveStage(instrument.StageExchange, wall.Exchange, 0, 1, 0)
	rec.ObserveStage(instrument.StageSegmentFFT, wall.SegmentFT,
		time.Duration(e.segBusy.Load()), e.workers,
		(e.pl.segmentStageFlops()+e.pl.demodStageFlops())/int64(e.r))
}
