package core

import (
	"soifft/internal/exch"
	"soifft/internal/instrument"
	"soifft/internal/telemetry"
)

// CheckedComm is the optional per-peer checked-messaging capability a
// Comm may implement (discovered by type assertion, like io.ReaderFrom):
// point-to-point operations that report a dead peer as an error to route
// around rather than a rank-fatal panic. Both *mpi.Comm and *mpinet.Proc
// implement it; WithCoding requires it.
type CheckedComm interface {
	SendChecked(to, tag int, data any) error
	RecvCChecked(from, tag int) ([]complex128, error)
}

// StreamComm is the optional streaming-collective capability a Comm may
// implement: a chunked, windowed, asynchronous all-to-all whose chunks
// the driver fans out while later tiles are still convolving. Both
// *mpi.Comm and *mpinet.Proc implement it; WithAsyncWindow uses it (and
// falls back to the blocking exchange when it is absent).
type StreamComm interface {
	StartAlltoallv(o exch.Options) exch.Stream
}

// DistOption configures one distributed transform run (see
// Plan.RunDistributed).
type DistOption func(*distOptions)

type distOptions struct {
	coded    bool
	parity   int
	window   int
	adaptive bool
	// haloChecked is derived, not an option: the run drivers set it when
	// the unwrapped Comm has the CheckedComm capability, enabling the
	// chunk-streamed halo on the streamed path.
	haloChecked bool
	rec         *instrument.Recorder
	tele        *telemetry.Plane
}

// resolveDistOptions folds the options over the plan's defaults.
func (pl *Plan) resolveDistOptions(opts []DistOption) distOptions {
	cfg := distOptions{rec: pl.rec}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	return cfg
}

// WithCoding runs the exchange erasure-protected with m parity shares
// per codeword, so the transform survives up to m rank deaths
// mid-exchange (bit-exact, reported via *DegradedError). Requires a Comm
// with the CheckedComm capability; m = 0 means detection without
// repair. See the former RunDistributedCoded for the full protocol
// contract.
func WithCoding(m int) DistOption {
	return func(o *distOptions) { o.coded = true; o.parity = m }
}

// WithAsyncWindow streams the exchange in chunks with at most w chunks
// in flight (queued but unflushed) per destination link, overlapping
// wire time with convolution on the send side and with segment assembly
// on the receive side. w <= 0 selects the blocking exchange (the
// default); so does a Comm without the StreamComm capability. Results
// are bit-identical to the blocking exchange for every window.
func WithAsyncWindow(w int) DistOption {
	return func(o *distOptions) {
		if w < 0 {
			w = 0
		}
		o.window = w
	}
}

// WithAdaptiveWindow lets the plan's closed-loop controller pick the
// streamed exchange's window instead of a fixed WithAsyncWindow(w): the
// first transform runs at the model prior (SetWindowPrior, or the
// adapt.DefaultWindow without one), and between transforms the
// controller adapts from the measured overlap ratio, credit-stall share
// and wire/compute ratio, with hysteresis so a noisy link doesn't
// thrash the schedule. Requires the StreamComm capability (falls back
// to the blocking exchange without it, like WithAsyncWindow); an
// explicit WithAsyncWindow(w > 0) in the same run overrides the
// controller. Composes with WithCoding. Results remain bit-identical to
// the blocking exchange at every chosen window.
func WithAdaptiveWindow() DistOption {
	return func(o *distOptions) { o.adaptive = true }
}

// WithRecorder observes this run with rec instead of the plan's own
// recorder (stage timers, comm counters). nil disables observation for
// the run.
func WithRecorder(rec *instrument.Recorder) DistOption {
	return func(o *distOptions) { o.rec = rec }
}

// WithTelemetry attaches this rank's cluster telemetry plane: each
// completed transform ships a fresh stat frame to rank 0 (one pointer
// test on the execution path; nil leaves the run exactly as without the
// option). The plane's lifetime belongs to the caller — the run only
// notifies it.
func WithTelemetry(p *telemetry.Plane) DistOption {
	return func(o *distOptions) { o.tele = p }
}
