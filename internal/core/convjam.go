package core

// ConvolveRangeJammed is the unroll-and-jam variant of ConvolveRange,
// mirroring the paper's Section 6 optimization recipe: all μ rows of a
// row group read the same input range and reuse the same μ·B·P weight
// block, so jamming the row loop inside the tap loop turns B·μ strided
// passes into B passes with μ accumulators — better locality for both
// the weights and the input (the paper reports 40% of peak for its SIMD
// version of this kernel).
//
// Measured finding (BenchmarkConvolveJammed vs BenchmarkConvolve): with
// Go's scalar code generation the jam is ~20% *slower* than the simple
// loop nest — the transformation pays off when it feeds SIMD registers,
// which the paper's C intrinsics had and Go does not. Both kernels are
// kept: one as the production path, one as the faithful Section 6
// reproduction.
//
// The range [jLo, jHi) must be row-group aligned: μ | jLo and μ | jHi.
// Results are bit-identical to ConvolveRange (same per-element operation
// order).
func (pl *Plan) ConvolveRangeJammed(dst, src []complex128, jLo, jHi, colOff int) {
	p := pl.prm
	if jLo%p.Mu != 0 || jHi%p.Mu != 0 {
		// Fall back for unaligned ranges rather than corrupting results.
		pl.ConvolveRange(dst, src, jLo, jHi, colOff)
		return
	}
	mu, bTaps, lanes := p.Mu, p.B, p.P
	for g := jLo / mu; g < jHi/mu; g++ {
		base := (g*mu - jLo) * lanes
		out := dst[base : base+mu*lanes]
		for i := range out {
			out[i] = 0
		}
		groupStart := g * p.Nu * lanes
		for b := 0; b < bTaps; b++ {
			for r := 0; r < mu; r++ {
				start := groupStart + (pl.dstart[r]+b)*lanes - colOff
				xb := src[start : start+lanes]
				wb := pl.wt[(r*bTaps+b)*lanes : (r*bTaps+b+1)*lanes]
				o := out[r*lanes : (r+1)*lanes]
				for i, xv := range xb {
					o[i] += wb[i] * xv
				}
			}
		}
	}
}
