// Trace propagation and the transport's flight-recorder hook. The
// trace ID crosses the wire as a control frame (reserved tag, like the
// barrier and gather tags), so every rank of a distributed run tags
// its events with the same ID without any side channel; a typed
// transport fault then dumps the attached tracer's ring to disk with
// that ID on the fault marker.

package mpinet

import (
	"errors"
	"math"

	"soifft/internal/trace"
)

// tagTraceID is the reserved control tag trace IDs travel under; it
// sits with the other negative collective tags (-4 gather, -5 barrier,
// -6 alltoallv).
const tagTraceID = -7

// SetTracer attaches (or, with nil, detaches) the event tracer the
// transport dumps on typed faults and tags wire-level instants with.
// Safe to call concurrently with traffic.
func (p *Proc) SetTracer(t *trace.Tracer) { p.tr.Store(t) }

// Tracer returns the attached tracer (nil when absent).
func (p *Proc) Tracer() *trace.Tracer { return p.tr.Load() }

// TraceID returns the trace ID most recently agreed via ShareTraceID
// (zero before any agreement).
func (p *Proc) TraceID() trace.ID { return trace.ID(p.traceID.Load()) }

// ShareTraceID makes rank 0's trace ID the run's: rank 0 broadcasts id
// to every peer as a control frame, other ranks receive it (their id
// argument is ignored), and all ranks return — and remember — the
// agreed value. The uint64 rides in the real part of one complex128
// bit-for-bit (the frame codec moves raw Float64bits, so NaN-pattern
// payloads survive). Transport failures raise the usual typed
// *TransportError panic; wrap with core.GuardComm when calling
// directly.
func (p *Proc) ShareTraceID(id trace.ID) trace.ID {
	if p.size > 1 {
		if p.rank == 0 {
			frame := []complex128{complex(math.Float64frombits(uint64(id)), 0)}
			for r := 1; r < p.size; r++ {
				p.Send(r, tagTraceID, frame)
			}
		} else {
			data := p.RecvC(0, tagTraceID)
			if len(data) != 1 {
				panic(&TransportError{Rank: 0, Op: "trace-id",
					Err: errors.New("malformed trace-id frame")})
			}
			id = trace.ID(math.Float64bits(real(data[0])))
		}
	}
	p.traceID.Store(uint64(id))
	return id
}

// flightFault classifies a wire fault and triggers the attached
// tracer's flight dump (a no-op without a tracer or armed directory).
func (p *Proc) flightFault(cause error) {
	t := p.tr.Load()
	if t == nil {
		return
	}
	reason := "link"
	switch {
	case errors.Is(cause, ErrDeadline):
		reason = "deadline"
	case errors.Is(cause, ErrChecksum):
		reason = "checksum"
	case errors.Is(cause, ErrBadFrame):
		reason = "bad_frame"
	case errors.Is(cause, ErrFrameTooLarge):
		reason = "frame_too_large"
	case errors.Is(cause, ErrPeerClosed):
		reason = "peer_closed"
	}
	t.Fault(p.TraceID(), p.rank, reason) //nolint:errcheck // best-effort dump on the failure path
}
