// Package mpinet is a TCP transport for the distributed SOI driver: the
// same core.Comm surface as the in-process runtime, but between real
// processes over real sockets (stdlib net only). Ranks form a full mesh —
// rank r dials every lower rank and accepts from every higher one — and
// exchange length-prefixed frames of complex128 data.
//
// The wire layer is hardened for real fabrics: every frame carries a
// magic word and a CRC32C checksum covering header and payload, frame
// lengths are bounded by MaxFrameElems before any allocation, and an
// optional per-operation I/O deadline (SetIOTimeout) bounds every send,
// receive, and idle wait. With a deadline set, each link emits heartbeat
// frames while idle, so a silently hung peer is detected within one
// deadline instead of never. Every wire anomaly — checksum mismatch,
// oversized or malformed frame, reset, timeout, peer death — surfaces as
// a typed *TransportError naming the peer rank and the operation; the
// collectives raise it as a panic that core.RunDistributed (via
// core.RecoverFault) converts back into an ordinary error return.
//
// It exists to show the algorithm end-to-end outside a single address
// space (cmd/soinode runs one rank per OS process); the in-process
// runtime remains the tool for experiments because it can count traffic
// and simulate fabrics.
package mpinet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"soifft/internal/instrument"
	"soifft/internal/telemetry"
	"soifft/internal/trace"
)

// Node is a rank that has opened its listener but not yet met its peers.
type Node struct {
	rank, size     int
	ln             net.Listener
	connectTimeout time.Duration
	dialInterval   time.Duration
	wrap           func(peerRank int, c net.Conn) net.Conn
}

// DefaultConnectTimeout is how long Connect waits for the full mesh
// (every dial and accept) before giving up.
const DefaultConnectTimeout = 15 * time.Second

// MaxFrameElems caps the complex128 element count a frame header may
// claim (1<<26 elements = 1 GiB of payload). It bounds the allocation a
// corrupted or hostile length field can trigger; larger counts kill the
// link with ErrFrameTooLarge instead of attempting the allocation.
var MaxFrameElems = 1 << 26

// Typed causes chained inside *TransportError, matchable with errors.Is.
var (
	// ErrPeerClosed means the peer hung up (EOF/reset) or this side shut
	// the link down.
	ErrPeerClosed = errors.New("connection closed by peer")
	// ErrDeadline means an operation exceeded the SetIOTimeout budget —
	// a hung or unreachable peer, or a link too slow for the deadline.
	ErrDeadline = errors.New("i/o deadline exceeded")
	// ErrChecksum means a frame arrived with a CRC32C mismatch: payload
	// bits were corrupted in flight.
	ErrChecksum = errors.New("frame checksum mismatch (payload corrupted in flight)")
	// ErrBadFrame means a frame header failed validation (bad magic):
	// corruption or a desynchronized stream.
	ErrBadFrame = errors.New("malformed frame header (corrupted or desynchronized stream)")
	// ErrFrameTooLarge means a frame header claimed more than
	// MaxFrameElems elements.
	ErrFrameTooLarge = errors.New("frame length exceeds MaxFrameElems")
)

// PeerError reports a peer that could not be reached while forming the
// mesh; it names the peer's rank and address and wraps the underlying
// cause.
type PeerError struct {
	Rank int
	Addr string
	Err  error
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("mpinet: peer rank %d at %s unreachable: %v", e.Rank, e.Addr, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// TransportError is the typed failure of an established link: the peer
// rank involved, the operation that observed the fault ("send", "recv",
// "alltoallv", ...), and the wire-level cause (one of the Err* sentinels
// or an OS error). Collectives raise it as a panic; core.RecoverFault
// (deferred inside core.RunDistributed and friends, or via
// core.GuardComm) converts it into an ordinary error return.
type TransportError struct {
	Rank int    // peer rank on the failed link
	Op   string // operation that observed the fault
	Err  error  // wire-level cause
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("mpinet: %s involving rank %d failed: %v", e.Op, e.Rank, e.Err)
}

func (e *TransportError) Unwrap() error { return e.Err }

// CommFault marks the error as a typed communication fault for
// core.RecoverFault.
func (e *TransportError) CommFault() {}

// Timeout reports whether the fault was a deadline expiry.
func (e *TransportError) Timeout() bool {
	if errors.Is(e.Err, ErrDeadline) || errors.Is(e.Err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(e.Err, &ne) && ne.Timeout()
}

// NewNode starts rank's listener on listenAddr (use "127.0.0.1:0" to let
// the OS choose a port; Addr reports the result).
func NewNode(rank, size int, listenAddr string) (*Node, error) {
	if size <= 0 || rank < 0 || rank >= size {
		return nil, fmt.Errorf("mpinet: rank %d out of range for size %d", rank, size)
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("mpinet: listen: %w", err)
	}
	return &Node{
		rank: rank, size: size, ln: ln,
		connectTimeout: DefaultConnectTimeout,
		dialInterval:   150 * time.Millisecond,
	}, nil
}

// SetConnectTimeout bounds how long Connect waits for the whole mesh to
// form (peers may start in arbitrary order, so dials retry and accepts
// wait until this deadline). Non-positive d restores the default.
func (n *Node) SetConnectTimeout(d time.Duration) {
	if d <= 0 {
		d = DefaultConnectTimeout
	}
	n.connectTimeout = d
}

// SetConnWrapper installs f over every peer link, applied right after
// the hello exchange — the hook internal/faultnet uses to inject faults
// into live meshes (`soinode -fault-plan`) and chaos tests. f receives
// the peer's rank so each link can draw its own deterministic fault
// stream. Call before Connect.
func (n *Node) SetConnWrapper(f func(peerRank int, c net.Conn) net.Conn) {
	n.wrap = f
}

// Addr returns the listener's address for sharing with peers.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Connect completes the mesh: addrs[r] must hold every rank's listen
// address (addrs[n.rank] is ignored). Blocks until all size-1 links are
// up, then returns the ready communicator.
func (n *Node) Connect(addrs []string) (*Proc, error) {
	if len(addrs) != n.size {
		return nil, fmt.Errorf("mpinet: need %d addresses, got %d", n.size, len(addrs))
	}
	p := &Proc{rank: n.rank, size: n.size, peers: make([]*peer, n.size)}
	deadline := time.Now().Add(n.connectTimeout)

	// Dial lower ranks, identifying ourselves with an 8-byte hello.
	// Peers may not have opened their listeners yet (processes start in
	// arbitrary order), so retry until the connect deadline.
	for r := 0; r < n.rank; r++ {
		conn, err := dialRetry(addrs[r], deadline, n.dialInterval, &p.stats.dialRetries)
		if err != nil {
			return nil, &PeerError{Rank: r, Addr: addrs[r],
				Err: fmt.Errorf("rank %d gave up dialing after %v: %w", n.rank, n.connectTimeout, err)}
		}
		var hello [8]byte
		binary.LittleEndian.PutUint64(hello[:], uint64(n.rank))
		if _, err := conn.Write(hello[:]); err != nil {
			return nil, &PeerError{Rank: r, Addr: addrs[r], Err: fmt.Errorf("hello: %w", err)}
		}
		if n.wrap != nil {
			conn = n.wrap(r, conn)
		}
		p.peers[r] = newPeer(conn, r, p)
	}
	// Accept higher ranks, bounded by the same deadline.
	if tl, ok := n.ln.(*net.TCPListener); ok {
		_ = tl.SetDeadline(deadline)
	}
	for got := n.rank + 1; got < n.size; got++ {
		conn, err := n.ln.Accept()
		if err != nil {
			missing := n.size - got
			return nil, fmt.Errorf("mpinet: rank %d timed out waiting for %d higher rank(s) to connect within %v: %w",
				n.rank, missing, n.connectTimeout, err)
		}
		var hello [8]byte
		if _, err := io.ReadFull(conn, hello[:]); err != nil {
			return nil, fmt.Errorf("mpinet: reading hello: %w", err)
		}
		r := int(binary.LittleEndian.Uint64(hello[:]))
		if r <= n.rank || r >= n.size || p.peers[r] != nil {
			return nil, fmt.Errorf("mpinet: unexpected hello from rank %d", r)
		}
		if n.wrap != nil {
			conn = n.wrap(r, conn)
		}
		p.peers[r] = newPeer(conn, r, p)
	}
	_ = n.ln.Close()
	for _, pe := range p.peers {
		if pe != nil {
			go pe.readLoop()
			go pe.writeLoop()
		}
	}
	return p, nil
}

// dialRetry dials with a fixed retry interval while peers are still
// launching, giving up at the deadline; retries tick the given counter.
func dialRetry(addr string, deadline time.Time, interval time.Duration, retries *atomic.Int64) (net.Conn, error) {
	var lastErr error
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("connect deadline passed")
			}
			return nil, lastErr
		}
		dialBudget := remaining
		if dialBudget > 2*time.Second {
			dialBudget = 2 * time.Second
		}
		conn, err := net.DialTimeout("tcp", addr, dialBudget)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		retries.Add(1)
		if time.Until(deadline) < interval {
			return nil, lastErr
		}
		time.Sleep(interval)
	}
}

// Proc is a connected rank; it satisfies core.Comm.
type Proc struct {
	rank, size  int
	peers       []*peer
	ioTimeoutNs atomic.Int64
	rec         atomic.Pointer[instrument.Recorder]
	tr          atomic.Pointer[trace.Tracer]
	traceID     atomic.Uint64
	stats       netStats
}

// netStats is the transport's internal accumulator (atomic counters).
type netStats struct {
	framesSent, bytesSent         atomic.Int64
	framesReceived, bytesReceived atomic.Int64
	heartbeatsSent                atomic.Int64
	dialRetries                   atomic.Int64
	deadlineEvents                atomic.Int64
	checksumErrors                atomic.Int64
	linkFailures                  atomic.Int64
}

// NetStats is a point-in-time snapshot of a rank's wire activity since
// Connect. Frame and byte counts cover data frames only (header plus
// payload); keep-alives are reported separately as HeartbeatsSent.
type NetStats struct {
	// FramesSent/BytesSent count data frames this rank wrote.
	FramesSent, BytesSent int64
	// FramesReceived/BytesReceived count validated data frames read.
	FramesReceived, BytesReceived int64
	// HeartbeatsSent counts keep-alive frames written on idle links.
	HeartbeatsSent int64
	// DialRetries counts redials while the mesh formed.
	DialRetries int64
	// DeadlineEvents counts expired I/O deadlines (hung-peer detections).
	DeadlineEvents int64
	// ChecksumErrors counts frames rejected with CRC mismatches.
	ChecksumErrors int64
	// LinkFailures counts links declared dead (any cause).
	LinkFailures int64
}

// Stats snapshots the transport counters.
func (p *Proc) Stats() NetStats {
	return NetStats{
		FramesSent:     p.stats.framesSent.Load(),
		BytesSent:      p.stats.bytesSent.Load(),
		FramesReceived: p.stats.framesReceived.Load(),
		BytesReceived:  p.stats.bytesReceived.Load(),
		HeartbeatsSent: p.stats.heartbeatsSent.Load(),
		DialRetries:    p.stats.dialRetries.Load(),
		DeadlineEvents: p.stats.deadlineEvents.Load(),
		ChecksumErrors: p.stats.checksumErrors.Load(),
		LinkFailures:   p.stats.linkFailures.Load(),
	}
}

// SetRecorder mirrors transport fault events (deadline expiries,
// checksum rejections, dial retries) into an observability recorder, so
// a plan's CommReport surfaces wire trouble alongside its own traffic
// counts. Payload bytes are NOT mirrored — the distributed driver
// already counts logical traffic at the Comm layer — only fault events.
// nil detaches.
func (p *Proc) SetRecorder(r *instrument.Recorder) {
	p.rec.Store(r)
	if r.On() {
		for n := p.stats.dialRetries.Load(); n > 0; n-- {
			r.CountRetransmit() // retries that happened before attach
		}
	}
}

// noteFailure books a dead link and classifies its cause into the fault
// counters (the attached recorder, if any, and the flight recorder:
// a typed transport fault dumps the event ring to disk).
func (p *Proc) noteFailure(cause error) {
	p.stats.linkFailures.Add(1)
	rec := p.rec.Load()
	switch {
	case errors.Is(cause, ErrDeadline):
		p.stats.deadlineEvents.Add(1)
		rec.CountDeadline()
	case errors.Is(cause, ErrChecksum):
		p.stats.checksumErrors.Add(1)
		rec.CountChecksumError()
	}
	p.flightFault(cause)
}

// Rank returns this process's rank.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.size }

// SetIOTimeout installs the per-operation I/O deadline: the longest any
// single send, receive, or idle wait may take before the link is
// declared dead with a typed ErrDeadline fault. While a deadline is set,
// idle links carry heartbeat frames (every d/3), so a healthy-but-quiet
// peer is never misdeclared, and a hung one is caught within ~d.
// d <= 0 disables deadlines (the pre-hardening blocking behavior).
// Call right after Connect, before the first collective.
func (p *Proc) SetIOTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.ioTimeoutNs.Store(int64(d))
}

// IOTimeout returns the current per-operation deadline (0 = none).
func (p *Proc) IOTimeout() time.Duration {
	return time.Duration(p.ioTimeoutNs.Load())
}

// Close tears down all links.
func (p *Proc) Close() {
	for _, pe := range p.peers {
		if pe != nil {
			pe.close()
		}
	}
}

// Shutdown is the graceful half of dying: every link flushes its queued
// frames and half-closes its write side (FIN, not RST), while reads stay
// open so in-flight traffic from peers is still acknowledged and
// drained. Peers observe a clean end-of-stream AFTER everything this
// rank already sent — the post-flush death the coded exchange's parity
// budget is specified against, and what a SIGTERM handler should call
// before exiting. Abrupt deaths (Close, kill -9, RST) may instead
// destroy this rank's frames still buffered in peers' kernels; coded
// mode then fails typed rather than recovering. Call Close afterwards to
// release the sockets.
func (p *Proc) Shutdown() {
	for _, pe := range p.peers {
		if pe != nil {
			pe.shutdown()
		}
	}
}

// Send transmits a []complex128 payload (the only type the SOI driver
// moves) to rank `to`. Asynchronous: the frame is queued for the writer.
// If the link to `to` has already failed, Send raises the peer's typed
// *TransportError instead of queueing into the void (or blocking forever
// on a full queue — the fail-fast path for dead peers).
func (p *Proc) Send(to, tag int, data any) {
	if err := p.SendChecked(to, tag, data); err != nil {
		panic(err)
	}
}

// SendChecked is Send returning the typed *TransportError instead of
// raising it — the primitive the coded exchange uses, where a dead peer
// is an expected outcome to route around rather than a rank-fatal fault.
// Invalid payload types and ranks (programming errors) still panic.
func (p *Proc) SendChecked(to, tag int, data any) error {
	buf, ok := data.([]complex128)
	if !ok {
		panic(fmt.Sprintf("mpinet: unsupported payload type %T", data))
	}
	if to < 0 || to >= p.size || to == p.rank {
		panic(fmt.Sprintf("mpinet: send to invalid rank %d", to))
	}
	pe := p.peers[to]
	if err := pe.send(encodeFrame(tag, buf)); err != nil {
		pe.wire.sendErrors.Add(1)
		return &TransportError{Rank: to, Op: "send", Err: err}
	}
	return nil
}

// RecvC blocks for the next frame from rank `from` and checks its tag.
// A dead link, a corrupted frame, or an expired I/O deadline raises a
// typed *TransportError naming `from`.
func (p *Proc) RecvC(from, tag int) []complex128 {
	out, err := p.RecvCChecked(from, tag)
	if err != nil {
		panic(err)
	}
	return out
}

// RecvCChecked is RecvC returning the typed *TransportError instead of
// raising it. All bookkeeping (deadline counters, flight dumps) is
// identical to RecvC.
func (p *Proc) RecvCChecked(from, tag int) ([]complex128, error) {
	if from < 0 || from >= p.size || from == p.rank {
		panic(fmt.Sprintf("mpinet: recv from invalid rank %d", from))
	}
	pe := p.peers[from]
	return p.recvFromBox(pe, pe.box, from, tag)
}

// recvFromBox pops the next frame of one peer mailbox and checks its
// tag; ordinary receives and the streamed exchange each drain their own
// box, so their consumers never race for a frame.
func (p *Proc) recvFromBox(pe *peer, box *netMailbox, from, tag int) ([]complex128, error) {
	pkt, err := box.get(p.IOTimeout())
	if err != nil {
		select {
		case <-pe.dead:
			// The link's own failure was already booked by noteFailure.
		default:
			if errors.Is(err, ErrDeadline) {
				p.stats.deadlineEvents.Add(1)
				p.rec.Load().CountDeadline()
				p.flightFault(err)
			}
		}
		return nil, &TransportError{Rank: from, Op: "recv", Err: err}
	}
	if pkt.tag != tag {
		return nil, &TransportError{Rank: from, Op: "recv",
			Err: fmt.Errorf("tag mismatch: want %d got %d", tag, pkt.tag)}
	}
	return pkt.data, nil
}

// Alltoall is the equal-counts personalized exchange (see mpi.Alltoall).
func (p *Proc) Alltoall(send []complex128, chunk int) []complex128 {
	counts := make([]int, p.size)
	for i := range counts {
		counts[i] = chunk
	}
	return p.PairwiseAlltoallv(send, counts, counts)
}

// PairwiseAlltoallv exchanges variable-size chunks in rank order.
func (p *Proc) PairwiseAlltoallv(send []complex128, sendCounts, recvCounts []int) []complex128 {
	offs := prefix(sendCounts)
	roffs := prefix(recvCounts)
	if len(send) != offs[p.size] {
		panic(fmt.Sprintf("mpinet: alltoallv send length %d, counts sum %d", len(send), offs[p.size]))
	}
	const tag = -6
	for r := 0; r < p.size; r++ {
		if r == p.rank {
			continue
		}
		p.Send(r, tag, send[offs[r]:offs[r+1]])
	}
	out := make([]complex128, roffs[p.size])
	copy(out[roffs[p.rank]:roffs[p.rank+1]], send[offs[p.rank]:offs[p.rank+1]])
	for r := 0; r < p.size; r++ {
		if r == p.rank {
			continue
		}
		data := p.RecvC(r, tag)
		if len(data) != recvCounts[r] {
			panic(&TransportError{Rank: r, Op: "alltoallv",
				Err: fmt.Errorf("expected %d elements, got %d", recvCounts[r], len(data))})
		}
		copy(out[roffs[r]:roffs[r+1]], data)
	}
	return out
}

// Gather concatenates equal-length chunks at root (nil elsewhere).
func (p *Proc) Gather(root int, chunk []complex128) []complex128 {
	const tag = -4
	if p.rank != root {
		p.Send(root, tag, chunk)
		return nil
	}
	out := make([]complex128, len(chunk)*p.size)
	copy(out[p.rank*len(chunk):], chunk)
	for r := 0; r < p.size; r++ {
		if r == root {
			continue
		}
		data := p.RecvC(r, tag)
		copy(out[r*len(chunk):], data)
	}
	return out
}

// Barrier blocks until every rank has entered (gather at 0, then notify).
func (p *Proc) Barrier() {
	const tag = -5
	if p.rank == 0 {
		for r := 1; r < p.size; r++ {
			p.RecvC(r, tag)
		}
		for r := 1; r < p.size; r++ {
			p.Send(r, tag, []complex128{})
		}
		return
	}
	p.Send(0, tag, []complex128{})
	p.RecvC(0, tag)
}

func prefix(counts []int) []int {
	offs := make([]int, len(counts)+1)
	for i, n := range counts {
		offs[i+1] = offs[i] + n
	}
	return offs
}

// --- wire details ---

// Frame layout: [tag int64][count uint64][crc32c uint32][magic uint32]
// followed by count little-endian complex128 values. The CRC covers the
// first 16 header bytes plus the payload; the trailing magic word lets
// the reader distinguish a desynchronized stream from a checksum-only
// corruption.
const (
	frameHdrLen = 24
	frameMagic  = 0x31494F53 // "SOI1" little-endian

	// tagHeartbeat marks the empty keep-alive frames idle links carry
	// while an I/O deadline is armed; readers drop them silently.
	tagHeartbeat = -1 << 62

	// ioChunk is the unit of deadline refresh: large frames move in
	// chunks this big, each under a fresh deadline, so a slow-but-live
	// link is judged on progress while a stalled one still dies within
	// one deadline.
	ioChunk = 256 << 10
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// epoch anchors the monotonic timestamps heartbeat pings carry. Only
// the stamping process ever interprets them (the peer reflects the bits
// verbatim), so no cross-host clock agreement is needed.
var epoch = time.Now()

func nowNs() int64 { return int64(time.Since(epoch)) }

// heartbeatFrame encodes one keep-alive: a single element whose real
// bits carry the ping's monotonic timestamp and whose imaginary part
// marks it as ping (0) or echo (1). The sender of the ping turns the
// reflected timestamp into the link's RTT sample. Legacy empty
// keep-alives (count 0) remain valid and are dropped silently.
func heartbeatFrame(ts int64, echo bool) []byte {
	marker := 0.0
	if echo {
		marker = 1
	}
	return encodeFrame(tagHeartbeat, []complex128{complex(math.Float64frombits(uint64(ts)), marker)})
}

// encodeFrame lays out the header and payload and stamps the checksum.
func encodeFrame(tag int, data []complex128) []byte {
	buf := make([]byte, frameHdrLen+16*len(data))
	binary.LittleEndian.PutUint64(buf[:8], uint64(int64(tag)))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(data)))
	binary.LittleEndian.PutUint32(buf[20:24], frameMagic)
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[frameHdrLen+i*16:], math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(buf[frameHdrLen+i*16+8:], math.Float64bits(imag(v)))
	}
	crc := crc32.Checksum(buf[:16], castagnoli)
	crc = crc32.Update(crc, castagnoli, buf[frameHdrLen:])
	binary.LittleEndian.PutUint32(buf[16:20], crc)
	return buf
}

type packet struct {
	tag  int
	data []complex128
}

// outFrame is one queued wire frame: the encoded bytes plus an optional
// flush notification, invoked by the writer after the frame's last byte
// reached the socket. The callback is the windowed stream's credit
// release — it is never invoked if the link dies first (senders observe
// the death through pe.dead instead). Control frames (heartbeats) are
// excluded from the data-frame counters and flush timing.
type outFrame struct {
	buf     []byte
	flushed func()
	control bool
}

// wireStats is one directed link's counters — the per-peer split of
// netStats that telemetry.LinkStat is built from.
type wireStats struct {
	framesSent, bytesSent         atomic.Int64
	framesReceived, bytesReceived atomic.Int64
	// flushNs is wall time the writer spent pushing this link's data
	// frames into the socket: its effective service time.
	flushNs atomic.Int64
	// creditStallNs is time streamed sends to this peer spent blocked on
	// a full credit window.
	creditStallNs atomic.Int64
	// rttNs holds the latest heartbeat echo round-trip sample.
	rttNs      atomic.Int64
	sendErrors atomic.Int64
}

type peer struct {
	rank int
	conn net.Conn
	out  chan outFrame
	box  *netMailbox
	sbox *netMailbox // streamed-exchange chunk frames (tag band <= exch.TagBase)
	tbox *netMailbox // telemetry stat frames (tag telemetry.TagStat)
	pr   *Proc       // back-reference for the I/O deadline and wire counters
	wire wireStats
	// echo hands a received ping's timestamp to the writer for
	// reflection. It bypasses pe.out, which close/shutdown may have
	// closed while reads are still draining.
	echo chan int64

	outOnce   sync.Once // closes out exactly once (close and shutdown share it)
	closeOnce sync.Once
	drained   chan struct{} // closed when writeLoop has exited

	failOnce sync.Once
	failErr  error         // cause; written before dead closes
	dead     chan struct{} // closed once the link has failed
}

func newPeer(conn net.Conn, rank int, pr *Proc) *peer {
	return &peer{
		rank:    rank,
		conn:    conn,
		out:     make(chan outFrame, 4096),
		box:     newNetMailbox(),
		sbox:    newNetMailbox(),
		tbox:    newNetMailbox(),
		pr:      pr,
		echo:    make(chan int64, 1),
		drained: make(chan struct{}),
		dead:    make(chan struct{}),
	}
}

func (pe *peer) timeout() time.Duration {
	return time.Duration(pe.pr.ioTimeoutNs.Load())
}

// fail marks the link dead exactly once: it records the cause, wakes
// blocked senders and receivers, and closes the socket so both loops
// unwind promptly and consistently.
func (pe *peer) fail(cause error) {
	pe.failOnce.Do(func() {
		pe.failErr = cause
		pe.pr.noteFailure(cause)
		close(pe.dead)
		pe.box.kill(cause)
		pe.sbox.kill(cause)
		pe.tbox.kill(cause)
		_ = pe.conn.Close()
	})
}

// failure returns the recorded cause; only valid after dead is closed.
func (pe *peer) failure() error {
	<-pe.dead
	return pe.failErr
}

// send queues a frame for the writer, failing fast if the link is dead
// (a failed writeLoop no longer drains out at full rate, so blocking on
// a dead peer's queue would hang forever once 4096 frames pile up).
func (pe *peer) send(frame []byte) error {
	return pe.sendFrame(frame, nil)
}

// sendFrame is send with an optional flush callback, run by the writer
// once the frame's bytes have all reached the socket. If the link dies
// before the frame flushes, the callback is dropped along with the frame.
func (pe *peer) sendFrame(frame []byte, flushed func()) error {
	select {
	case <-pe.dead:
		return pe.failure()
	default:
	}
	select {
	case pe.out <- outFrame{buf: frame, flushed: flushed}:
		return nil
	case <-pe.dead:
		return pe.failure()
	}
}

// classify folds OS-level errors into the package's typed causes.
func classify(err error, d time.Duration) error {
	switch {
	case errors.Is(err, os.ErrDeadlineExceeded):
		return fmt.Errorf("%w after %v (peer hung, dead, or too slow)", ErrDeadline, d)
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, net.ErrClosed):
		return fmt.Errorf("%w: %v", ErrPeerClosed, err)
	default:
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return fmt.Errorf("%w after %v: %v", ErrDeadline, d, err)
		}
		return fmt.Errorf("%w: %v", ErrPeerClosed, err)
	}
}

// writeFrame moves one frame in deadline-refreshed chunks.
func (pe *peer) writeFrame(frame []byte) error {
	for off := 0; off < len(frame); off += ioChunk {
		end := off + ioChunk
		if end > len(frame) {
			end = len(frame)
		}
		if d := pe.timeout(); d > 0 {
			_ = pe.conn.SetWriteDeadline(time.Now().Add(d))
		}
		if _, err := pe.conn.Write(frame[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// writeLoop drains the send queue; with a deadline armed it inserts
// heartbeat frames whenever the link has been idle for a third of it.
// On a write error it marks the peer dead and keeps draining the queue
// (discarding) so senders blocked on a full queue are never stranded.
func (pe *peer) writeLoop() {
	defer close(pe.drained)
	for {
		var fr outFrame
		var ok bool
		if d := pe.timeout(); d > 0 {
			t := time.NewTimer(d / 3)
			select {
			case fr, ok = <-pe.out:
				t.Stop()
			case ts := <-pe.echo:
				t.Stop()
				fr, ok = outFrame{buf: heartbeatFrame(ts, true), control: true}, true
			case <-t.C:
				fr, ok = outFrame{buf: heartbeatFrame(nowNs(), false), control: true}, true
			}
		} else {
			// No deadline: poll so a later SetIOTimeout still takes
			// effect on an idle link (no heartbeats are sent meanwhile,
			// but pings from a deadline-armed peer are still echoed).
			t := time.NewTimer(500 * time.Millisecond)
			select {
			case fr, ok = <-pe.out:
				t.Stop()
			case ts := <-pe.echo:
				t.Stop()
				fr, ok = outFrame{buf: heartbeatFrame(ts, true), control: true}, true
			case <-t.C:
				continue
			}
		}
		if !ok {
			return
		}
		start := time.Now()
		if err := pe.writeFrame(fr.buf); err != nil {
			pe.fail(classify(err, pe.timeout()))
			for range pe.out { // drain until close() closes the channel
			}
			return
		}
		if fr.flushed != nil {
			fr.flushed()
		}
		if fr.control {
			pe.pr.stats.heartbeatsSent.Add(1)
		} else {
			pe.pr.stats.framesSent.Add(1)
			pe.pr.stats.bytesSent.Add(int64(len(fr.buf)))
			pe.wire.framesSent.Add(1)
			pe.wire.bytesSent.Add(int64(len(fr.buf)))
			pe.wire.flushNs.Add(int64(time.Since(start)))
		}
	}
}

// handleHeartbeat reacts to a validated keep-alive payload: a ping is
// reflected back through the writer's echo slot (never the closable out
// queue), an echo closes the loop into an RTT sample. The empty legacy
// form is dropped without a reply.
func (pe *peer) handleHeartbeat(raw []byte) {
	if len(raw) < 16 {
		return
	}
	ts := int64(binary.LittleEndian.Uint64(raw[:8]))
	if binary.LittleEndian.Uint64(raw[8:16]) == 0 { // imag 0: ping
		select {
		case pe.echo <- ts:
		default: // an echo is already queued; this ping's sample is lost
		}
		return
	}
	if rtt := nowNs() - ts; rtt > 0 {
		pe.wire.rttNs.Store(rtt)
	}
}

// readFull fills buf in deadline-refreshed chunks.
func (pe *peer) readFull(buf []byte) error {
	for len(buf) > 0 {
		n := len(buf)
		if n > ioChunk {
			n = ioChunk
		}
		if d := pe.timeout(); d > 0 {
			_ = pe.conn.SetReadDeadline(time.Now().Add(d))
		}
		if _, err := io.ReadFull(pe.conn, buf[:n]); err != nil {
			return err
		}
		buf = buf[n:]
	}
	return nil
}

// readLoop validates and delivers inbound frames, killing the link with
// a typed cause on the first anomaly.
func (pe *peer) readLoop() {
	hdr := make([]byte, frameHdrLen)
	for {
		if err := pe.readFull(hdr); err != nil {
			pe.fail(classify(err, pe.timeout()))
			return
		}
		if m := binary.LittleEndian.Uint32(hdr[20:24]); m != frameMagic {
			pe.fail(fmt.Errorf("%w: magic %#x, want %#x", ErrBadFrame, m, frameMagic))
			return
		}
		tag := int(int64(binary.LittleEndian.Uint64(hdr[:8])))
		count := binary.LittleEndian.Uint64(hdr[8:16])
		if count > uint64(MaxFrameElems) {
			pe.fail(fmt.Errorf("%w: header claims %d elements (limit %d)",
				ErrFrameTooLarge, count, MaxFrameElems))
			return
		}
		raw := make([]byte, count*16)
		if err := pe.readFull(raw); err != nil {
			pe.fail(classify(err, pe.timeout()))
			return
		}
		crc := crc32.Checksum(hdr[:16], castagnoli)
		crc = crc32.Update(crc, castagnoli, raw)
		if want := binary.LittleEndian.Uint32(hdr[16:20]); crc != want {
			pe.fail(fmt.Errorf("%w: computed %#x, frame says %#x", ErrChecksum, crc, want))
			return
		}
		if tag == tagHeartbeat {
			pe.handleHeartbeat(raw)
			continue
		}
		pe.pr.stats.framesReceived.Add(1)
		pe.pr.stats.bytesReceived.Add(int64(frameHdrLen + len(raw)))
		pe.wire.framesReceived.Add(1)
		pe.wire.bytesReceived.Add(int64(frameHdrLen + len(raw)))
		data := make([]complex128, count)
		for i := range data {
			re := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*16:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*16+8:]))
			data[i] = complex(re, im)
		}
		// Stream chunks and telemetry frames land in their own
		// mailboxes: their consumers (the windowed exchange's receiver
		// goroutines, rank 0's telemetry drain) run concurrently with
		// ordinary receives (halo, parity) on the same link, and a
		// shared FIFO would let any consumer pop another's frame.
		switch {
		case isStreamTag(tag):
			pe.sbox.put(packet{tag: tag, data: data})
		case tag == telemetry.TagStat:
			pe.tbox.put(packet{tag: tag, data: data})
		default:
			pe.box.put(packet{tag: tag, data: data})
		}
	}
}

// close shuts the link down gracefully: stop accepting frames, give the
// writer a bounded window to flush, then close the socket. The wait is
// bounded by twice the I/O deadline (when one is set) so a hung link can
// never wedge Close itself.
func (pe *peer) close() {
	pe.closeOnce.Do(func() {
		pe.outOnce.Do(func() { close(pe.out) })
		if d := pe.timeout(); d > 0 {
			t := time.NewTimer(2 * d)
			select {
			case <-pe.drained:
				t.Stop()
			case <-t.C:
			}
			_ = pe.conn.Close() // unblocks a stuck writer
			<-pe.drained
		} else {
			<-pe.drained
			_ = pe.conn.Close()
		}
	})
}

// shutdown flushes the send queue and half-closes the write direction:
// the peer sees FIN strictly after every queued frame, and this side
// keeps reading. Falls back to a full close on transports without
// CloseWrite. The drain wait is bounded like close()'s.
func (pe *peer) shutdown() {
	pe.outOnce.Do(func() { close(pe.out) })
	if d := pe.timeout(); d > 0 {
		t := time.NewTimer(2 * d)
		select {
		case <-pe.drained:
			t.Stop()
		case <-t.C:
		}
	} else {
		<-pe.drained
	}
	if cw, ok := pe.conn.(interface{ CloseWrite() error }); ok {
		_ = cw.CloseWrite()
	} else {
		_ = pe.conn.Close()
	}
}

// netMailbox is an unbounded FIFO of received packets with a typed death
// cause and deadline-bounded waits.
type netMailbox struct {
	mu     sync.Mutex
	queue  []packet
	dead   bool
	cause  error
	notify chan struct{} // 1-buffered wake-up for the single consumer
}

func newNetMailbox() *netMailbox {
	return &netMailbox{notify: make(chan struct{}, 1)}
}

func (m *netMailbox) put(p packet) {
	m.mu.Lock()
	m.queue = append(m.queue, p)
	m.mu.Unlock()
	m.wake()
}

// kill marks the mailbox dead with a cause; queued packets stay
// readable, matching the wire (they arrived intact before the fault).
func (m *netMailbox) kill(cause error) {
	m.mu.Lock()
	if !m.dead {
		m.dead = true
		m.cause = cause
	}
	m.mu.Unlock()
	m.wake()
}

func (m *netMailbox) wake() {
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// get pops the next packet, waiting at most timeout (0 = forever). It
// returns the link's death cause once the queue is empty and the link is
// dead, or ErrDeadline if nothing arrives in time.
func (m *netMailbox) get(timeout time.Duration) (packet, error) {
	var expire <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expire = t.C
	}
	for {
		m.mu.Lock()
		if len(m.queue) > 0 {
			p := m.queue[0]
			m.queue[0] = packet{}
			m.queue = m.queue[1:]
			m.mu.Unlock()
			return p, nil
		}
		if m.dead {
			cause := m.cause
			m.mu.Unlock()
			if cause == nil {
				cause = ErrPeerClosed
			}
			return packet{}, cause
		}
		m.mu.Unlock()
		select {
		case <-m.notify:
		case <-expire:
			return packet{}, fmt.Errorf("%w: no frame within %v", ErrDeadline, timeout)
		}
	}
}
