// Package mpinet is a TCP transport for the distributed SOI driver: the
// same core.Comm surface as the in-process runtime, but between real
// processes over real sockets (stdlib net only). Ranks form a full mesh —
// rank r dials every lower rank and accepts from every higher one — and
// exchange length-prefixed frames of complex128 data.
//
// It exists to show the algorithm end-to-end outside a single address
// space (cmd/soinode runs one rank per OS process); the in-process
// runtime remains the tool for experiments because it can count traffic
// and simulate fabrics.
package mpinet

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"time"
)

// Node is a rank that has opened its listener but not yet met its peers.
type Node struct {
	rank, size     int
	ln             net.Listener
	connectTimeout time.Duration
	dialInterval   time.Duration
}

// DefaultConnectTimeout is how long Connect waits for the full mesh
// (every dial and accept) before giving up.
const DefaultConnectTimeout = 15 * time.Second

// PeerError reports a peer that could not be reached while forming the
// mesh; it names the peer's rank and address and wraps the underlying
// cause.
type PeerError struct {
	Rank int
	Addr string
	Err  error
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("mpinet: peer rank %d at %s unreachable: %v", e.Rank, e.Addr, e.Err)
}

func (e *PeerError) Unwrap() error { return e.Err }

// NewNode starts rank's listener on listenAddr (use "127.0.0.1:0" to let
// the OS choose a port; Addr reports the result).
func NewNode(rank, size int, listenAddr string) (*Node, error) {
	if size <= 0 || rank < 0 || rank >= size {
		return nil, fmt.Errorf("mpinet: rank %d out of range for size %d", rank, size)
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("mpinet: listen: %w", err)
	}
	return &Node{
		rank: rank, size: size, ln: ln,
		connectTimeout: DefaultConnectTimeout,
		dialInterval:   150 * time.Millisecond,
	}, nil
}

// SetConnectTimeout bounds how long Connect waits for the whole mesh to
// form (peers may start in arbitrary order, so dials retry and accepts
// wait until this deadline). Non-positive d restores the default.
func (n *Node) SetConnectTimeout(d time.Duration) {
	if d <= 0 {
		d = DefaultConnectTimeout
	}
	n.connectTimeout = d
}

// Addr returns the listener's address for sharing with peers.
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Connect completes the mesh: addrs[r] must hold every rank's listen
// address (addrs[n.rank] is ignored). Blocks until all size-1 links are
// up, then returns the ready communicator.
func (n *Node) Connect(addrs []string) (*Proc, error) {
	if len(addrs) != n.size {
		return nil, fmt.Errorf("mpinet: need %d addresses, got %d", n.size, len(addrs))
	}
	p := &Proc{rank: n.rank, size: n.size, peers: make([]*peer, n.size)}
	deadline := time.Now().Add(n.connectTimeout)

	// Dial lower ranks, identifying ourselves with an 8-byte hello.
	// Peers may not have opened their listeners yet (processes start in
	// arbitrary order), so retry until the connect deadline.
	for r := 0; r < n.rank; r++ {
		conn, err := dialRetry(addrs[r], deadline, n.dialInterval)
		if err != nil {
			return nil, &PeerError{Rank: r, Addr: addrs[r],
				Err: fmt.Errorf("rank %d gave up dialing after %v: %w", n.rank, n.connectTimeout, err)}
		}
		var hello [8]byte
		binary.LittleEndian.PutUint64(hello[:], uint64(n.rank))
		if _, err := conn.Write(hello[:]); err != nil {
			return nil, &PeerError{Rank: r, Addr: addrs[r], Err: fmt.Errorf("hello: %w", err)}
		}
		p.peers[r] = newPeer(conn)
	}
	// Accept higher ranks, bounded by the same deadline.
	if tl, ok := n.ln.(*net.TCPListener); ok {
		_ = tl.SetDeadline(deadline)
	}
	for got := n.rank + 1; got < n.size; got++ {
		conn, err := n.ln.Accept()
		if err != nil {
			missing := n.size - got
			return nil, fmt.Errorf("mpinet: rank %d timed out waiting for %d higher rank(s) to connect within %v: %w",
				n.rank, missing, n.connectTimeout, err)
		}
		var hello [8]byte
		if _, err := io.ReadFull(conn, hello[:]); err != nil {
			return nil, fmt.Errorf("mpinet: reading hello: %w", err)
		}
		r := int(binary.LittleEndian.Uint64(hello[:]))
		if r <= n.rank || r >= n.size || p.peers[r] != nil {
			return nil, fmt.Errorf("mpinet: unexpected hello from rank %d", r)
		}
		p.peers[r] = newPeer(conn)
	}
	_ = n.ln.Close()
	for r, pe := range p.peers {
		if pe != nil {
			go pe.readLoop()
			go pe.writeLoop()
			_ = r
		}
	}
	return p, nil
}

// dialRetry dials with a fixed retry interval while peers are still
// launching, giving up at the deadline.
func dialRetry(addr string, deadline time.Time, interval time.Duration) (net.Conn, error) {
	var lastErr error
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			if lastErr == nil {
				lastErr = fmt.Errorf("connect deadline passed")
			}
			return nil, lastErr
		}
		dialBudget := remaining
		if dialBudget > 2*time.Second {
			dialBudget = 2 * time.Second
		}
		conn, err := net.DialTimeout("tcp", addr, dialBudget)
		if err == nil {
			return conn, nil
		}
		lastErr = err
		if time.Until(deadline) < interval {
			return nil, lastErr
		}
		time.Sleep(interval)
	}
}

// Proc is a connected rank; it satisfies core.Comm.
type Proc struct {
	rank, size int
	peers      []*peer
}

// Rank returns this process's rank.
func (p *Proc) Rank() int { return p.rank }

// Size returns the world size.
func (p *Proc) Size() int { return p.size }

// Close tears down all links.
func (p *Proc) Close() {
	for _, pe := range p.peers {
		if pe != nil {
			pe.close()
		}
	}
}

// Send transmits a []complex128 payload (the only type the SOI driver
// moves) to rank `to`. Asynchronous: the frame is queued for the writer.
func (p *Proc) Send(to, tag int, data any) {
	buf, ok := data.([]complex128)
	if !ok {
		panic(fmt.Sprintf("mpinet: unsupported payload type %T", data))
	}
	if to < 0 || to >= p.size || to == p.rank {
		panic(fmt.Sprintf("mpinet: send to invalid rank %d", to))
	}
	p.peers[to].send(encodeFrame(tag, buf))
}

// RecvC blocks for the next frame from rank `from` and checks its tag.
func (p *Proc) RecvC(from, tag int) []complex128 {
	if from < 0 || from >= p.size || from == p.rank {
		panic(fmt.Sprintf("mpinet: recv from invalid rank %d", from))
	}
	pkt, ok := p.peers[from].box.get()
	if !ok {
		panic(fmt.Sprintf("mpinet: rank %d: connection to %d closed", p.rank, from))
	}
	if pkt.tag != tag {
		panic(fmt.Sprintf("mpinet: tag mismatch from rank %d: want %d got %d", from, tag, pkt.tag))
	}
	return pkt.data
}

// Alltoall is the equal-counts personalized exchange (see mpi.Alltoall).
func (p *Proc) Alltoall(send []complex128, chunk int) []complex128 {
	counts := make([]int, p.size)
	for i := range counts {
		counts[i] = chunk
	}
	return p.PairwiseAlltoallv(send, counts, counts)
}

// PairwiseAlltoallv exchanges variable-size chunks in rank order.
func (p *Proc) PairwiseAlltoallv(send []complex128, sendCounts, recvCounts []int) []complex128 {
	offs := prefix(sendCounts)
	roffs := prefix(recvCounts)
	if len(send) != offs[p.size] {
		panic(fmt.Sprintf("mpinet: alltoallv send length %d, counts sum %d", len(send), offs[p.size]))
	}
	const tag = -6
	for r := 0; r < p.size; r++ {
		if r == p.rank {
			continue
		}
		p.Send(r, tag, send[offs[r]:offs[r+1]])
	}
	out := make([]complex128, roffs[p.size])
	copy(out[roffs[p.rank]:roffs[p.rank+1]], send[offs[p.rank]:offs[p.rank+1]])
	for r := 0; r < p.size; r++ {
		if r == p.rank {
			continue
		}
		data := p.RecvC(r, tag)
		if len(data) != recvCounts[r] {
			panic(fmt.Sprintf("mpinet: expected %d from rank %d, got %d", recvCounts[r], r, len(data)))
		}
		copy(out[roffs[r]:roffs[r+1]], data)
	}
	return out
}

// Gather concatenates equal-length chunks at root (nil elsewhere).
func (p *Proc) Gather(root int, chunk []complex128) []complex128 {
	const tag = -4
	if p.rank != root {
		p.Send(root, tag, chunk)
		return nil
	}
	out := make([]complex128, len(chunk)*p.size)
	copy(out[p.rank*len(chunk):], chunk)
	for r := 0; r < p.size; r++ {
		if r == root {
			continue
		}
		data := p.RecvC(r, tag)
		copy(out[r*len(chunk):], data)
	}
	return out
}

// Barrier blocks until every rank has entered (gather at 0, then notify).
func (p *Proc) Barrier() {
	const tag = -5
	if p.rank == 0 {
		for r := 1; r < p.size; r++ {
			p.RecvC(r, tag)
		}
		for r := 1; r < p.size; r++ {
			p.Send(r, tag, []complex128{})
		}
		return
	}
	p.Send(0, tag, []complex128{})
	p.RecvC(0, tag)
}

func prefix(counts []int) []int {
	offs := make([]int, len(counts)+1)
	for i, n := range counts {
		offs[i+1] = offs[i] + n
	}
	return offs
}

// --- wire details ---

type packet struct {
	tag  int
	data []complex128
}

type peer struct {
	conn    net.Conn
	out     chan []byte
	box     *netMailbox
	once    sync.Once
	drained chan struct{} // closed when writeLoop has flushed everything
}

func newPeer(conn net.Conn) *peer {
	return &peer{
		conn:    conn,
		out:     make(chan []byte, 4096),
		box:     newNetMailbox(),
		drained: make(chan struct{}),
	}
}

func (pe *peer) send(frame []byte) { pe.out <- frame }

func (pe *peer) writeLoop() {
	defer close(pe.drained)
	for frame := range pe.out {
		if _, err := pe.conn.Write(frame); err != nil {
			pe.box.kill()
			return
		}
	}
}

func (pe *peer) readLoop() {
	var hdr [16]byte
	for {
		if _, err := io.ReadFull(pe.conn, hdr[:]); err != nil {
			pe.box.kill()
			return
		}
		tag := int(int64(binary.LittleEndian.Uint64(hdr[:8])))
		count := int(binary.LittleEndian.Uint64(hdr[8:]))
		raw := make([]byte, count*16)
		if _, err := io.ReadFull(pe.conn, raw); err != nil {
			pe.box.kill()
			return
		}
		data := make([]complex128, count)
		for i := range data {
			re := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*16:]))
			im := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*16+8:]))
			data[i] = complex(re, im)
		}
		pe.box.put(packet{tag: tag, data: data})
	}
}

func (pe *peer) close() {
	pe.once.Do(func() {
		// Stop accepting frames, let the writer flush what is queued,
		// then close the socket.
		close(pe.out)
		<-pe.drained
		_ = pe.conn.Close()
	})
}

// encodeFrame lays out [tag int64][count int64][count × complex128].
func encodeFrame(tag int, data []complex128) []byte {
	buf := make([]byte, 16+16*len(data))
	binary.LittleEndian.PutUint64(buf[:8], uint64(int64(tag)))
	binary.LittleEndian.PutUint64(buf[8:16], uint64(len(data)))
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[16+i*16:], math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(buf[16+i*16+8:], math.Float64bits(imag(v)))
	}
	return buf
}

// netMailbox is an unbounded FIFO of received packets.
type netMailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []packet
	dead  bool
}

func newNetMailbox() *netMailbox {
	m := &netMailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *netMailbox) put(p packet) {
	m.mu.Lock()
	m.queue = append(m.queue, p)
	m.mu.Unlock()
	m.cond.Signal()
}

func (m *netMailbox) get() (packet, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.dead {
		m.cond.Wait()
	}
	if len(m.queue) == 0 {
		return packet{}, false
	}
	p := m.queue[0]
	m.queue[0] = packet{}
	m.queue = m.queue[1:]
	return p, true
}

func (m *netMailbox) kill() {
	m.mu.Lock()
	m.dead = true
	m.mu.Unlock()
	m.cond.Broadcast()
}
