// Flight-recorder chaos tests: a typed wire fault must leave a
// Perfetto dump behind, and the trace ID control frame must survive
// the codec bit-exactly.
package mpinet

import (
	"encoding/json"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"soifft/internal/core"
	"soifft/internal/faultnet"
	"soifft/internal/trace"
)

// TestShareTraceID: rank 0 mints an ID and every rank ends up holding
// the same one after the broadcast.
func TestShareTraceID(t *testing.T) {
	const ranks = 4
	procs := chaosMesh(t, ranks, 0, nil)
	want := trace.NewID()
	got := make([]trace.ID, ranks)
	errs, _ := runRanks(t, procs, 2*time.Second, func(p *Proc) error {
		return core.GuardComm(func() {
			id := trace.ID(0)
			if p.Rank() == 0 {
				id = want
			}
			got[p.Rank()] = p.ShareTraceID(id)
		})
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r, id := range got {
		if id != want {
			t.Fatalf("rank %d holds trace ID %v, want %v", r, id, want)
		}
		if procs[r].TraceID() != want {
			t.Fatalf("rank %d proc retains %v, want %v", r, procs[r].TraceID(), want)
		}
	}
}

// TestChaosFlightDumpOnChecksumFault is the flight-recorder acceptance
// check: when faultnet flips a bit in flight and the receiver fails
// with a typed checksum error, the receiver's tracer must have dumped
// the ring — fault instant included — to the armed directory.
func TestChaosFlightDumpOnChecksumFault(t *testing.T) {
	const sender = 1
	dir := t.TempDir()
	plan := faultnet.Plan{Seed: 11, CorruptProb: 1}
	procs := chaosMesh(t, 2, 0, func(self, peer int, c net.Conn) net.Conn {
		if self != sender {
			return c
		}
		return plan.Conn(c, faultnet.LinkID(self, peer))
	})
	tr := trace.New(1024)
	tr.SetFlightDir(dir)
	procs[0].SetTracer(tr)

	payload := make([]complex128, 256)
	for i := range payload {
		payload[i] = complex(float64(i), -float64(i))
	}
	errs, _ := runRanks(t, procs, 2*time.Second, func(p *Proc) error {
		if p.Rank() == sender {
			return core.GuardComm(func() { p.Send(0, 9, payload) })
		}
		return core.GuardComm(func() { p.RecvC(sender, 9) })
	})
	if errs[0] == nil {
		t.Fatal("receiver accepted a corrupted frame")
	}
	if !errors.Is(errs[0], ErrChecksum) {
		t.Fatalf("receiver failed with %v, want ErrChecksum", errs[0])
	}

	if n := tr.FlightDumps(); n != 1 {
		t.Fatalf("flight recorder wrote %d dumps, want 1", n)
	}
	files, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("flight dir holds %v (err %v), want one dump", files, err)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("dump is not trace JSON: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "i" && ev.Name == "fault:checksum" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dump lacks the fault:checksum instant (%d events)", len(doc.TraceEvents))
	}
}
