// Coded-exchange chaos: rank death mid-transform over real TCP. The
// invariant is strictly stronger than the plain chaos matrix's: with m
// parity shares, killing a single rank after its exchange frames
// flushed must yield the bit-exact spectrum on every survivor plus a
// typed *core.DegradedError naming the victim; killing more ranks than
// the parity budget covers must fail typed on every survivor within the
// deadline bounds — never a hang, never a silently wrong spectrum.
package mpinet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"soifft/internal/core"
	"soifft/internal/faultnet"
	"soifft/internal/instrument"
	"soifft/internal/signal"
)

const codedRanks = 4

// codedChaosPlan builds the chaos-suite plan shape and its serial
// reference spectrum; the distributed pipeline matches the serial one
// bit for bit, so comparisons below demand exact equality.
func codedChaosPlan(t *testing.T) (*core.Plan, []complex128, []complex128) {
	t.Helper()
	pl, err := core.NewPlan(core.Params{N: 2048, P: 8, Mu: 5, Nu: 4, B: 48})
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(2048, 13)
	want := make([]complex128, len(src))
	if err := pl.Transform(want, src); err != nil {
		t.Fatal(err)
	}
	return pl, src, want
}

var errChaosKill = errors.New("chaos: failpoint kill")

// killAtExchange arms the coded failpoint to kill the victims right
// after their exchange frames are queued: Shutdown flushes the queue
// and half-closes (FIN after the frames, never an RST that would
// destroy them in survivors' kernel buffers) — the graceful post-flush
// death the parity budget is specified for. chaosMesh's cleanup still
// fully Closes every proc at the end.
func killAtExchange(t *testing.T, procs []*Proc, victims ...int) {
	t.Helper()
	vset := make(map[int]bool, len(victims))
	for _, v := range victims {
		vset[v] = true
	}
	prev := core.CodedExchangeFailpoint
	core.CodedExchangeFailpoint = func(rank int) error {
		if vset[rank] {
			procs[rank].Shutdown()
			return errChaosKill
		}
		return nil
	}
	t.Cleanup(func() { core.CodedExchangeFailpoint = prev })
}

// TestChaosCodedSurvivesRankDeathMidExchange is the headline
// acceptance: R=4, m=1, kill any single rank mid-exchange; every
// survivor completes with the bit-exact spectrum and a DegradedError
// naming the victim, and the degraded gather still assembles the full
// bit-exact result. Counters for the run are exported for CI when
// CODED_COUNTERS_JSON is set.
func TestChaosCodedSurvivesRankDeathMidExchange(t *testing.T) {
	const ioT = time.Second
	pl, src, want := codedChaosPlan(t)
	nLocal := len(src) / codedRanks
	rec := instrument.New(instrument.LevelCounters)
	pl.SetRecorder(rec)
	defer pl.SetRecorder(nil)

	for victim := 0; victim < codedRanks; victim++ {
		victim := victim
		t.Run(fmt.Sprintf("victim%d", victim), func(t *testing.T) {
			procs := chaosMesh(t, codedRanks, ioT, nil)
			killAtExchange(t, procs, victim)
			wantCoord := 0
			if victim == 0 {
				wantCoord = 1
			}
			wantAt := 0 // gather root, rerouted to the coordinator if dead
			if victim == 0 {
				wantAt = wantCoord
			}
			fulls := make([][]complex128, codedRanks)
			degs := make([]*core.DegradedError, codedRanks)
			errs, elapsed := runRanks(t, procs, 2*ioT, func(p *Proc) error {
				rank := p.Rank()
				out := make([]complex128, nLocal)
				_, err := pl.RunDistributed(context.Background(), p, out, src[rank*nLocal:(rank+1)*nLocal], core.WithCoding(1))
				if rank == victim {
					return err
				}
				var deg *core.DegradedError
				if !errors.As(err, &deg) {
					return fmt.Errorf("transform: %w", err)
				}
				degs[rank] = deg
				full, at, err := core.GatherDegraded(p, 0, out, deg)
				if err != nil {
					return fmt.Errorf("degraded gather: %w", err)
				}
				if at != wantAt {
					return fmt.Errorf("gathered at rank %d, want %d", at, wantAt)
				}
				fulls[rank] = full
				return nil
			})
			for rank, err := range errs {
				if rank == victim {
					if !errors.Is(err, errChaosKill) {
						t.Errorf("victim: err %v, want the failpoint kill", err)
					}
					continue
				}
				if err != nil {
					t.Errorf("survivor %d: %v", rank, err)
					continue
				}
				deg := degs[rank]
				if len(deg.ReconstructedRanks) != 1 || deg.ReconstructedRanks[0] != victim {
					t.Errorf("survivor %d: reconstructed %v, want [%d]", rank, deg.ReconstructedRanks, victim)
				}
				if deg.Coordinator != wantCoord {
					t.Errorf("survivor %d: coordinator %d, want %d", rank, deg.Coordinator, wantCoord)
				}
			}
			if fulls[wantAt] == nil {
				t.Fatal("no rank holds the gathered spectrum")
			}
			if e := signal.MaxAbsErr(fulls[wantAt], want); e != 0 {
				t.Errorf("degraded spectrum differs from the reference by %.3e (must be bit-exact)", e)
			}
			if limit := 2*ioT + 2*time.Second; elapsed > limit {
				t.Errorf("degraded run took %v, over the %v bound", elapsed, limit)
			}
		})
	}

	s := rec.Snapshot().Comm
	if s.Reconstructions < int64(codedRanks) {
		t.Errorf("reconstructions = %d, want >= %d (one per victim run)", s.Reconstructions, codedRanks)
	}
	if s.DegradedTransforms < int64(codedRanks*(codedRanks-1)) {
		t.Errorf("degraded transforms = %d, want >= %d", s.DegradedTransforms, codedRanks*(codedRanks-1))
	}
	if s.ParityBytes == 0 || s.RecoveryBytes == 0 {
		t.Errorf("parity/recovery bytes not booked: %+v", s)
	}
	if path := os.Getenv("CODED_COUNTERS_JSON"); path != "" {
		b, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			t.Fatalf("marshal counters: %v", err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
		t.Logf("coded counters written to %s", path)
	}
}

// TestChaosCodedDoubleDeathBeyondBudgetFailsTyped kills m+1 ranks
// against m=1: every survivor must fail with a typed
// UnrecoverableLossError naming both dead peers, within 2× the I/O
// deadline.
func TestChaosCodedDoubleDeathBeyondBudgetFailsTyped(t *testing.T) {
	const ioT = 500 * time.Millisecond
	pl, src, _ := codedChaosPlan(t)
	nLocal := len(src) / codedRanks
	procs := chaosMesh(t, codedRanks, ioT, nil)
	killAtExchange(t, procs, 1, 2)
	errs, elapsed := runRanks(t, procs, 2*ioT, func(p *Proc) error {
		out := make([]complex128, nLocal)
		_, err := pl.RunDistributed(context.Background(), p, out, src[p.Rank()*nLocal:(p.Rank()+1)*nLocal], core.WithCoding(1))
		return err
	})
	for _, rank := range []int{0, 3} {
		var loss *core.UnrecoverableLossError
		if !errors.As(errs[rank], &loss) {
			t.Fatalf("survivor %d: err %v, want UnrecoverableLossError", rank, errs[rank])
		}
		if len(loss.DeadRanks) != 2 || loss.DeadRanks[0] != 1 || loss.DeadRanks[1] != 2 {
			t.Errorf("survivor %d: dead ranks %v, want [1 2]", rank, loss.DeadRanks)
		}
		if loss.Parity != 1 {
			t.Errorf("survivor %d: parity %d, want 1", rank, loss.Parity)
		}
	}
	if limit := 2 * ioT; elapsed > limit {
		t.Errorf("beyond-budget failure took %v, over the 2x-deadline %v bound", elapsed, limit)
	}
}

// TestChaosCodedDeathWithoutParityFailsTyped: m=0 runs the detection
// protocol with no repair capacity, so a single death is a typed loss
// naming the victim on every survivor.
func TestChaosCodedDeathWithoutParityFailsTyped(t *testing.T) {
	const ioT = 500 * time.Millisecond
	pl, src, _ := codedChaosPlan(t)
	nLocal := len(src) / codedRanks
	procs := chaosMesh(t, codedRanks, ioT, nil)
	killAtExchange(t, procs, 2)
	errs, _ := runRanks(t, procs, 2*ioT, func(p *Proc) error {
		out := make([]complex128, nLocal)
		_, err := pl.RunDistributed(context.Background(), p, out, src[p.Rank()*nLocal:(p.Rank()+1)*nLocal], core.WithCoding(0))
		return err
	})
	for _, rank := range []int{0, 1, 3} {
		var loss *core.UnrecoverableLossError
		if !errors.As(errs[rank], &loss) {
			t.Fatalf("survivor %d: err %v, want UnrecoverableLossError", rank, errs[rank])
		}
		if len(loss.DeadRanks) != 1 || loss.DeadRanks[0] != 2 {
			t.Errorf("survivor %d: dead ranks %v, want [2]", rank, loss.DeadRanks)
		}
	}
}

// TestChaosCodedMatrix runs the coded transform under the seeded fault
// families with rank 1's links faulty. The contract per rank: finish
// clean, finish degraded (bit-exact spectrum after reconstructing the
// unreachable rank), or fail with a typed fault within the bounds —
// untyped errors, hangs, and wrong spectra are the only failures.
func TestChaosCodedMatrix(t *testing.T) {
	const ioT = 500 * time.Millisecond
	pl, src, want := codedChaosPlan(t)
	nLocal := len(src) / codedRanks
	scenarios := []struct {
		name string
		plan faultnet.Plan
	}{
		{"drop", faultnet.Plan{DropProb: 0.4, After: 2}},
		{"corrupt", faultnet.Plan{CorruptProb: 0.4, After: 2}},
		{"reset", faultnet.Plan{ResetProb: 0.4, After: 2}},
	}
	for _, sc := range scenarios {
		for seed := int64(1); seed <= 2; seed++ {
			sc, seed := sc, seed
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				plan := sc.plan
				plan.Seed = seed
				procs := chaosMesh(t, codedRanks, ioT, func(self, peer int, c net.Conn) net.Conn {
					if self != 1 {
						return c
					}
					return plan.Conn(c, faultnet.LinkID(self, peer))
				})
				fulls := make([][]complex128, codedRanks)
				errs, elapsed := runRanks(t, procs, 10*ioT, func(p *Proc) error {
					rank := p.Rank()
					out := make([]complex128, nLocal)
					_, err := pl.RunDistributed(context.Background(), p, out, src[rank*nLocal:(rank+1)*nLocal], core.WithCoding(1))
					var deg *core.DegradedError
					if err != nil && !errors.As(err, &deg) {
						return err
					}
					full, _, gerr := core.GatherDegraded(p, 0, out, deg)
					if gerr != nil {
						return gerr
					}
					fulls[rank] = full
					return nil
				})
				for rank, err := range errs {
					if err == nil {
						continue
					}
					var fault core.Fault
					if !errors.As(err, &fault) {
						t.Errorf("rank %d returned untyped error %T: %v", rank, err, err)
					} else {
						t.Logf("rank %d: typed fault after %v: %v", rank, elapsed, err)
					}
				}
				// Any rank that assembled a spectrum must have the exact one.
				for rank, full := range fulls {
					if full == nil {
						continue
					}
					if e := signal.MaxAbsErr(full, want); e != 0 {
						t.Errorf("rank %d gathered a wrong spectrum: max err %.3e", rank, e)
					}
				}
				if limit := 10*ioT + 2*time.Second; elapsed > limit {
					t.Errorf("run took %v, over the %v bound", elapsed, limit)
				}
			})
		}
	}
}
