// Adaptive-window e2e: the closed-loop controller on a real TCP mesh
// with faultnet supplying the wire cost. This is the PR's acceptance
// run: on a throttled mesh where the wire outlasts compute by ~1.5×,
// a burst of adaptive transforms must settle within ±1 of the best
// fixed window found by a sweep, with spectra bit-identical to the
// blocking exchange and the chosen window visible in the decision API
// and the trace.
package mpinet

import (
	"context"
	"encoding/json"
	"net"
	"os"
	"testing"
	"time"

	"soifft/internal/core"
	"soifft/internal/faultnet"
	"soifft/internal/fft"
	"soifft/internal/signal"
	"soifft/internal/trace"
)

func TestAdaptiveWindowConvergesOnThrottledLink(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock convergence measurement")
	}
	// Same shape as the overlap acceptance: two ranks keep scheduler
	// noise down, Workers=1 and a deep filter make convolution the
	// stage the stream hides wire behind. The window range is still
	// meaningful — HaloSizes plus per-destination credits give windows
	// 1..R distinct schedules even at R=2.
	const n, ranks = 1 << 18, 2
	const transforms = 4
	pl, err := core.NewPlan(core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: 512, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 97)
	want, err := fft.Forward(src)
	if err != nil {
		t.Fatal(err)
	}

	// Pass 1, clean mesh: calibrate the throttle so one rank's exchange
	// payload takes ~1.5 clean walls on the wire — the wire-bound regime
	// the controller exists for.
	clean := mesh(t, ranks)
	refOut, _, cleanWall := runAsyncTimed(t, clean, pl, src, 30*time.Second)
	if e := signal.RelErrL2(refOut, want); e > 1e-8 {
		t.Fatalf("clean run wrong: rel err %.3e", e)
	}
	const wireComputeRatio = 1.5
	nPrime := n / 4 * 5
	perLinkBytes := int64(nPrime) * 16 / int64(ranks*ranks)
	plan := faultnet.Plan{Seed: 3, BandwidthBps: float64(perLinkBytes) / (wireComputeRatio * cleanWall.Seconds())}
	throttled := func() []*Proc {
		return chaosMesh(t, ranks, 60*time.Second, func(self, peer int, c net.Conn) net.Conn {
			return plan.Conn(c, faultnet.LinkID(self, peer))
		})
	}

	// Fixed-window sweep on identically throttled meshes: the reference
	// the controller is judged against.
	bestWindow, bestWall := 0, time.Duration(0)
	sweepWalls := make(map[int]time.Duration, ranks)
	var blockOut []complex128
	for w := 1; w <= ranks; w++ {
		out, _, wall := runAsyncTimed(t, throttled(), pl, src, 90*time.Second, core.WithAsyncWindow(w))
		sweepWalls[w] = wall
		if blockOut == nil {
			blockOut = out
		} else if e := signal.MaxAbsErr(out, blockOut); e != 0 {
			t.Fatalf("window %d spectrum differs by %.3e (must be bit-identical)", w, e)
		}
		if bestWindow == 0 || wall < bestWall {
			bestWindow, bestWall = w, wall
		}
		t.Logf("fixed window %d: wall %v", w, wall)
	}

	// Adaptive burst: the first transform runs at the model prior (the
	// ratio the throttle was built to), the rest steer on measured
	// overlap and credit-stall. One mesh for the whole burst, the way a
	// long-lived soinode job would run it.
	pl.SetWindowPrior(wireComputeRatio)
	tr := trace.New(0)
	ctx := trace.WithTracer(trace.WithID(context.Background(), trace.NewID()), tr)
	procs := throttled()
	nLocal := n / ranks
	got := make([]complex128, n)
	errs, _ := runRanks(t, procs, time.Duration(transforms)*90*time.Second, func(p *Proc) error {
		rank := p.Rank()
		for i := 0; i < transforms; i++ {
			if _, err := pl.RunDistributed(ctx, p,
				got[rank*nLocal:(rank+1)*nLocal], src[rank*nLocal:(rank+1)*nLocal],
				core.WithAdaptiveWindow()); err != nil {
				return err
			}
		}
		return nil
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	if e := signal.MaxAbsErr(got, blockOut); e != 0 {
		t.Fatalf("adaptive spectrum differs from fixed-window by %.3e (must be bit-identical)", e)
	}

	// Convergence: every rank's settled window within ±1 of the sweep's
	// best, and the decision exposed through the plan API.
	chosen := make(map[int]int, ranks)
	for r := 0; r < ranks; r++ {
		d, ok := pl.AdaptiveDecision(r)
		if !ok {
			t.Fatalf("rank %d: no adaptive decision recorded", r)
		}
		chosen[r] = d.Window
		t.Logf("rank %d settled: %s", r, d)
		if diff := d.Window - bestWindow; diff < -1 || diff > 1 {
			t.Errorf("rank %d settled at window %d, best fixed window is %d (want within ±1)",
				r, d.Window, bestWindow)
		}
	}

	// The chosen window must be on the trace: an adaptive_window counter
	// per transform per rank, matching the settled value at the end.
	counters, decisions := 0, 0
	var lastCounter int64 = -1
	for _, ev := range tr.Snapshot() {
		switch ev.Name {
		case "adaptive_window":
			counters++
			if ev.Rank == 0 {
				lastCounter = ev.Arg
			}
		case "adaptive_decision":
			decisions++
		}
	}
	if counters < transforms*ranks {
		t.Errorf("trace has %d adaptive_window counters, want at least %d", counters, transforms*ranks)
	}
	if lastCounter != int64(chosen[0]) {
		t.Errorf("last traced window %d != settled window %d", lastCounter, chosen[0])
	}
	t.Logf("trace: %d adaptive_window counters, %d decision instants", counters, decisions)

	// CI artifact: the convergence record next to the sweep it beat.
	if path := os.Getenv("ADAPTIVE_JSON"); path != "" {
		rec := struct {
			ModelPrior  float64       `json:"model_prior_ratio"`
			BestWindow  int           `json:"best_fixed_window"`
			SweepWallNs map[int]int64 `json:"sweep_wall_ns"`
			Chosen      map[int]int   `json:"chosen_window_by_rank"`
			Transforms  int           `json:"transforms"`
		}{wireComputeRatio, bestWindow, map[int]int64{}, chosen, transforms}
		for w, wall := range sweepWalls {
			rec.SweepWallNs[w] = wall.Nanoseconds()
		}
		b, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			t.Fatalf("marshal convergence record: %v", err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
		t.Logf("convergence record written to %s", path)
	}
}
