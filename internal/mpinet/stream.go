package mpinet

import (
	"fmt"
	"time"

	"soifft/internal/exch"
)

// StartAlltoallv begins a chunked, windowed, asynchronous all-to-all
// (the streaming collective surface core.StreamComm). Unlike the generic
// exch implementation, the window here is real: Send blocks while
// o.Window chunks for that destination are queued but not yet flushed to
// the socket, so a producer racing ahead of a slow link is paced by the
// wire instead of buffering without bound. Each chunk travels as one
// ordinary framed message (CRC32C, size guard) under the per-operation
// I/O deadline, and a dead or hung peer surfaces as one per-source
// *TransportError through Next — the stream analogue of the blocking
// collectives' typed faults.
//
// One goroutine may produce (Send) while one other consumes (Next); the
// stream must be fully drained or abandoned before the next collective
// on this Proc.
func (p *Proc) StartAlltoallv(o exch.Options) exch.Stream {
	w := o.Window
	if w < 1 {
		w = 1
	}
	s := &netStream{
		p:      p,
		o:      o,
		trk:    exch.NewTracker(p.size, len(o.Sizes)),
		credit: make([]chan struct{}, p.size),
	}
	for r := 0; r < p.size; r++ {
		if r == p.rank {
			continue
		}
		s.credit[r] = make(chan struct{}, w)
		go s.recvLoop(r)
	}
	return s
}

type netStream struct {
	p      *Proc
	o      exch.Options
	trk    *exch.Tracker
	credit []chan struct{} // per-destination in-flight window tokens
}

func (s *netStream) Send(dst, idx int, data []complex128) error {
	p := s.p
	if dst == p.rank {
		s.trk.Deliver(exch.Chunk{Src: dst, Index: idx, Data: data})
		return nil
	}
	if dst < 0 || dst >= p.size {
		panic(fmt.Sprintf("mpinet: stream send to invalid rank %d", dst))
	}
	wire := data
	if s.o.Codec != nil {
		wire = s.o.Codec.EncodeChunk(data)
	}
	pe := p.peers[dst]
	cr := s.credit[dst]
	// Acquire a window slot: backpressure against the link's real flush
	// progress. A dying link wakes the wait with its typed cause. When
	// the window is full the blocked time is booked as credit-stall —
	// per destination on the link and in aggregate on the recorder — the
	// producer-outran-this-link signal the explainer attributes excess
	// exchange time to, and the input a future adaptive window reads.
	select {
	case cr <- struct{}{}:
	default:
		start := time.Now()
		select {
		case cr <- struct{}{}:
			d := time.Since(start)
			pe.wire.creditStallNs.Add(int64(d))
			p.rec.Load().AddCreditStall(d)
		case <-pe.dead:
			return &TransportError{Rank: dst, Op: "stream-send", Err: pe.failure()}
		}
	}
	if err := pe.sendFrame(encodeFrame(exch.Tag(idx), wire), func() { <-cr }); err != nil {
		return &TransportError{Rank: dst, Op: "stream-send", Err: err}
	}
	return nil
}

// recvLoop drives source src's chunk sequence: per-link FIFO delivery
// means chunk idx always heads the mailbox when its turn comes, each
// under a fresh I/O deadline. The first anomaly (death, deadline,
// checksum, tag desync) ends the source's stream with one typed failure
// event.
func (s *netStream) recvLoop(src int) {
	pe := s.p.peers[src]
	for idx := range s.o.Sizes {
		data, err := s.p.recvFromBox(pe, pe.sbox, src, exch.Tag(idx))
		if err == nil && s.o.Codec != nil {
			data, err = s.o.Codec.DecodeChunk(data, s.o.Sizes[idx])
			if err != nil {
				err = &TransportError{Rank: src, Op: "stream-recv", Err: err}
			}
		}
		if err != nil {
			s.trk.Deliver(exch.Chunk{Src: src, Err: err})
			return
		}
		s.trk.Deliver(exch.Chunk{Src: src, Index: idx, Data: data})
	}
}

func (s *netStream) Next() (exch.Chunk, bool) { return s.trk.Next() }

// isStreamTag reports whether a frame tag belongs to the streamed
// exchange's band; readLoop routes those to the peer's dedicated stream
// mailbox.
func isStreamTag(tag int) bool { return tag <= exch.TagBase }

// Close abandons the stream: a consumer blocked in Next wakes with
// ok=false even when slots are outstanding (the escape hatch for a
// producer that failed mid-schedule and so can never fill its own
// self-delivery slots). Receiver goroutines never block on the tracker
// (its channel holds the worst case), so they unwind on their own
// deadlines or when the Proc closes.
func (s *netStream) Close() { s.trk.Abort() }
