// Telemetry-plane e2e over real TCP: stat frames ride the transform's
// own links on the dedicated control tag, rank 0 aggregates and runs
// the perfmodel-backed explainer. The two contracts under test: a rank
// dying mid-run freezes as stale without blocking the aggregation
// (Final returns within its bound), and a genuinely throttled link is
// what the explainer names as the top finding — with the measured
// ratio, not a guess.
package mpinet

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"soifft/internal/core"
	"soifft/internal/faultnet"
	"soifft/internal/instrument"
	"soifft/internal/signal"
	"soifft/internal/telemetry"
)

// armPlanes starts one telemetry plane per rank, each on its own
// recorder, over the procs' own links.
func armPlanes(t *testing.T, procs []*Proc, recs []*instrument.Recorder,
	shape telemetry.Shape, finalTimeout time.Duration) []*telemetry.Plane {
	t.Helper()
	planes := make([]*telemetry.Plane, len(procs))
	for r, p := range procs {
		pl, err := telemetry.Start(telemetry.Config{
			Conn:         p,
			Recorder:     recs[r],
			Shape:        shape,
			FinalTimeout: finalTimeout,
		})
		if err != nil {
			t.Fatalf("rank %d: start plane: %v", r, err)
		}
		planes[r] = pl
	}
	return planes
}

// TestChaosTelemetryRankDeath: after a clean transform, one rank dies
// without shipping its final frame. Rank 0's Final must return within
// its bound (stale, not hang), freezing the victim at its last good
// frame and ranking the staleness as the top finding, while the
// survivors' rows finish final.
func TestChaosTelemetryRankDeath(t *testing.T) {
	const n, ranks, victim = 2048, 4, 2
	const ioT = time.Second
	pl, err := core.NewPlan(core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: 48})
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 17)
	procs := chaosMesh(t, ranks, ioT, nil)
	recs := make([]*instrument.Recorder, ranks)
	for r := range recs {
		recs[r] = instrument.New(instrument.LevelTimers)
	}
	planes := armPlanes(t, procs, recs,
		telemetry.Shape{N: n, Segments: 8, Beta: 0.25, Parity: -1}, 3*time.Second)

	nLocal := n / ranks
	got := make([]complex128, n)
	errs, _ := runRanks(t, procs, 10*time.Second, func(p *Proc) error {
		rank := p.Rank()
		_, err := pl.RunDistributed(context.Background(), p,
			got[rank*nLocal:(rank+1)*nLocal], src[rank*nLocal:(rank+1)*nLocal],
			core.WithRecorder(recs[rank]), core.WithTelemetry(planes[rank]))
		return err
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d clean transform: %v", r, err)
		}
	}

	// Give rank 0's drains a beat to consume the end-of-transform frames,
	// then kill the victim before it ships a final frame.
	time.Sleep(100 * time.Millisecond)
	procs[victim].Close()
	for r := 1; r < ranks; r++ {
		if r != victim {
			planes[r].Final()
		}
	}

	start := time.Now()
	snap := planes[0].Final()
	elapsed := time.Since(start)
	if snap == nil {
		t.Fatal("rank 0 Final returned no snapshot")
	}
	if limit := 3*time.Second + 2*time.Second; elapsed > limit {
		t.Errorf("Final took %v, over the %v stale bound: aggregation hung on the dead rank", elapsed, limit)
	}
	for r, rs := range snap.Ranks {
		switch r {
		case victim:
			if !rs.Stale {
				t.Errorf("victim rank %d not stale: %+v", r, rs)
			}
			if rs.Reported && rs.Transforms != 1 {
				t.Errorf("victim frozen at %d transforms, want the last good frame's 1", rs.Transforms)
			}
		case 0:
			if !rs.Final {
				t.Errorf("rank 0 row not final: %+v", rs)
			}
		default:
			if !rs.Final || rs.Stale {
				t.Errorf("survivor rank %d final=%v stale=%v, want final and not stale", r, rs.Final, rs.Stale)
			}
		}
	}
	if len(snap.Findings) == 0 {
		t.Fatal("no findings on a run with a dead rank")
	}
	top := snap.Findings[0]
	if top.Kind != telemetry.KindStaleRank || top.Rank != victim {
		t.Errorf("top finding = %+v, want stale-rank for rank %d", top, victim)
	}
}

// TestAsyncThrottledLinkExplained is the telemetry acceptance run: a
// 4-rank TCP mesh with exactly one directed link (3→1) throttled by
// faultnet, a streamed transform, and the assertion that the explainer's
// top finding names that link with a measured ratio above the 1.5×
// threshold. When CLUSTER_JSON names a path, the aggregated snapshot is
// written there — the CI artifact.
func TestAsyncThrottledLinkExplained(t *testing.T) {
	const n, ranks = 1 << 16, 4
	const slowSrc, slowDst = 3, 1
	const ioT = 10 * time.Second
	pl, err := core.NewPlan(core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: 48})
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 23)

	// Size the throttle from the analytic per-link exchange volume:
	// 16·(1+β)·N/R² bytes should take ~0.5s on the slow link while every
	// other link runs at loopback speed.
	perLinkBytes := float64(n) * 1.25 * 16 / float64(ranks*ranks)
	plan := faultnet.Plan{Seed: 7, BandwidthBps: perLinkBytes / 0.5}
	procs := chaosMesh(t, ranks, ioT, func(self, peer int, c net.Conn) net.Conn {
		if self == slowSrc && peer == slowDst {
			return plan.Conn(c, faultnet.LinkID(self, peer))
		}
		return c
	})
	recs := make([]*instrument.Recorder, ranks)
	for r := range recs {
		recs[r] = instrument.New(instrument.LevelTimers)
	}
	planes := armPlanes(t, procs, recs,
		telemetry.Shape{N: n, Segments: 8, Beta: 0.25, Parity: -1, Window: 2}, ioT)

	nLocal := n / ranks
	got := make([]complex128, n)
	errs, _ := runRanks(t, procs, 2*ioT, func(p *Proc) error {
		rank := p.Rank()
		_, err := pl.RunDistributed(context.Background(), p,
			got[rank*nLocal:(rank+1)*nLocal], src[rank*nLocal:(rank+1)*nLocal],
			core.WithAsyncWindow(2),
			core.WithRecorder(recs[rank]), core.WithTelemetry(planes[rank]))
		return err
	})
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r := 1; r < ranks; r++ {
		planes[r].Final()
	}
	snap := planes[0].Final()
	if snap == nil {
		t.Fatal("rank 0 Final returned no snapshot")
	}
	if path := os.Getenv("CLUSTER_JSON"); path != "" {
		b, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			t.Fatalf("marshal snapshot: %v", err)
		}
		if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
		t.Logf("cluster snapshot written to %s", path)
	}

	if len(snap.Findings) == 0 {
		t.Fatal("no findings despite a link throttled well past the threshold")
	}
	for i, f := range snap.Findings {
		t.Logf("finding %d: severity %.1f %s", i, f.Severity, f)
	}
	top := snap.Findings[0]
	if top.Kind != telemetry.KindSlowLink || top.Rank != slowSrc || top.Peer != slowDst {
		t.Errorf("top finding = [%s] rank %d peer %d, want slow-link %d→%d",
			top.Kind, top.Rank, top.Peer, slowSrc, slowDst)
	}
	if top.Ratio <= telemetry.RatioThreshold {
		t.Errorf("top finding ratio %.2f, want > %.1f for a link this throttled",
			top.Ratio, telemetry.RatioThreshold)
	}
	if want := fmt.Sprintf("%d→%d", slowSrc, slowDst); !containsStr(top.Detail, want) {
		t.Errorf("top finding detail %q does not name link %s", top.Detail, want)
	}
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}
