package mpinet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"soifft/internal/core"
	"soifft/internal/fft"
	"soifft/internal/signal"
)

// mesh builds a fully connected localhost world of the given size, one
// goroutine per rank (the wire is still real TCP).
func mesh(t *testing.T, size int) []*Proc {
	t.Helper()
	nodes := make([]*Node, size)
	addrs := make([]string, size)
	for r := 0; r < size; r++ {
		n, err := NewNode(r, size, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		nodes[r] = n
		addrs[r] = n.Addr()
	}
	procs := make([]*Proc, size)
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			procs[r], errs[r] = nodes[r].Connect(addrs)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Close()
		}
	})
	return procs
}

// spmd runs fn on every proc concurrently and reports the first error.
func spmd(t *testing.T, procs []*Proc, fn func(p *Proc) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(procs))
	for i, p := range procs {
		wg.Add(1)
		go func(i int, p *Proc) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("rank %d panicked: %v", i, r)
				}
			}()
			errs[i] = fn(p)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestTCPSendRecv(t *testing.T) {
	procs := mesh(t, 3)
	spmd(t, procs, func(p *Proc) error {
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() - 1 + p.Size()) % p.Size()
		p.Send(next, 7, []complex128{complex(float64(p.Rank()), -1)})
		got := p.RecvC(prev, 7)
		if len(got) != 1 || got[0] != complex(float64(prev), -1) {
			return fmt.Errorf("rank %d got %v", p.Rank(), got)
		}
		return nil
	})
}

func TestTCPAlltoall(t *testing.T) {
	const size, chunk = 4, 3
	procs := mesh(t, size)
	spmd(t, procs, func(p *Proc) error {
		send := make([]complex128, size*chunk)
		for r := 0; r < size; r++ {
			for k := 0; k < chunk; k++ {
				send[r*chunk+k] = complex(float64(p.Rank()), float64(r*chunk+k))
			}
		}
		got := p.Alltoall(send, chunk)
		for r := 0; r < size; r++ {
			for k := 0; k < chunk; k++ {
				want := complex(float64(r), float64(p.Rank()*chunk+k))
				if got[r*chunk+k] != want {
					return fmt.Errorf("rank %d slot (%d,%d): %v want %v", p.Rank(), r, k, got[r*chunk+k], want)
				}
			}
		}
		return nil
	})
}

func TestTCPGatherBarrier(t *testing.T) {
	procs := mesh(t, 4)
	spmd(t, procs, func(p *Proc) error {
		p.Barrier()
		g := p.Gather(2, []complex128{complex(float64(p.Rank()), 0)})
		if p.Rank() == 2 {
			for r := 0; r < 4; r++ {
				if g[r] != complex(float64(r), 0) {
					return fmt.Errorf("gather[%d] = %v", r, g[r])
				}
			}
		} else if g != nil {
			return fmt.Errorf("non-root got data")
		}
		p.Barrier()
		return nil
	})
}

// TestTCPDistributedSOI is the point of the package: the full SOI
// algorithm over real sockets, checked against the direct DFT.
func TestTCPDistributedSOI(t *testing.T) {
	const n, ranks = 2048, 4
	pl, err := core.NewPlan(core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: 48})
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 13)
	want := make([]complex128, n)
	fft.Direct(want, src)
	got := make([]complex128, n)
	procs := mesh(t, ranks)
	nLocal := n / ranks
	spmd(t, procs, func(p *Proc) error {
		out := got[p.Rank()*nLocal : (p.Rank()+1)*nLocal]
		_, err := pl.RunDistributed(context.Background(), p, out, src[p.Rank()*nLocal:(p.Rank()+1)*nLocal])
		return err
	})
	if e := signal.RelErrL2(got, want); e > 1e-10 {
		t.Errorf("TCP distributed SOI rel err %.3e", e)
	}
	// And the inverse round trip over the same mesh.
	back := make([]complex128, n)
	spmd(t, procs, func(p *Proc) error {
		out := back[p.Rank()*nLocal : (p.Rank()+1)*nLocal]
		_, err := pl.RunDistributedInverse(context.Background(), p, out, got[p.Rank()*nLocal:(p.Rank()+1)*nLocal])
		return err
	})
	if e := signal.RelErrL2(back, src); e > 1e-10 {
		t.Errorf("TCP round trip rel err %.3e", e)
	}
}

func TestTCPDistributedSegment(t *testing.T) {
	const n, ranks = 1024, 4
	pl, err := core.NewPlan(core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: 24})
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 14)
	full := make([]complex128, n)
	if err := pl.Transform(full, src); err != nil {
		t.Fatal(err)
	}
	procs := mesh(t, ranks)
	nLocal := n / ranks
	var seg []complex128
	spmd(t, procs, func(p *Proc) error {
		out, err := pl.RunDistributedSegment(p, src[p.Rank()*nLocal:(p.Rank()+1)*nLocal], 3, 1)
		if p.Rank() == 1 {
			seg = out
		}
		return err
	})
	m := pl.M()
	if e := signal.MaxAbsErr(seg, full[3*m:4*m]); e > 1e-10 {
		t.Errorf("TCP segment differs by %.3e", e)
	}
}

// unusedAddr reserves then releases a port, returning an address with
// no listener behind it.
func unusedAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestConnectDialTimeoutNamesPeer checks that a dial that never
// succeeds gives up within the configured window and identifies the
// unreachable peer's rank and address in a typed, wrapped error.
func TestConnectDialTimeoutNamesPeer(t *testing.T) {
	n, err := NewNode(1, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.SetConnectTimeout(400 * time.Millisecond)
	dead := unusedAddr(t)
	start := time.Now()
	_, err = n.Connect([]string{dead, n.Addr()})
	if err == nil {
		t.Fatal("Connect to a dead peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Connect hung %v past its 400ms window", elapsed)
	}
	var pe *PeerError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *PeerError: %v", err, err)
	}
	if pe.Rank != 0 || pe.Addr != dead {
		t.Errorf("PeerError names rank %d addr %s, want rank 0 addr %s", pe.Rank, pe.Addr, dead)
	}
	if !strings.Contains(err.Error(), dead) || !strings.Contains(err.Error(), "rank 0") {
		t.Errorf("error text %q does not name the peer", err)
	}
}

// TestConnectAcceptTimeout checks that a rank waiting for higher ranks
// that never appear errors out instead of hanging.
func TestConnectAcceptTimeout(t *testing.T) {
	n, err := NewNode(0, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n.SetConnectTimeout(300 * time.Millisecond)
	start := time.Now()
	_, err = n.Connect([]string{n.Addr(), unusedAddr(t)})
	if err == nil {
		t.Fatal("Connect with an absent higher rank succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Connect hung %v past its 300ms window", elapsed)
	}
	if !strings.Contains(err.Error(), "waiting for 1 higher rank") {
		t.Errorf("error text %q does not explain the missing peer", err)
	}
}

func TestNodeValidation(t *testing.T) {
	if _, err := NewNode(3, 2, "127.0.0.1:0"); err == nil {
		t.Error("expected rank range error")
	}
	n, err := NewNode(0, 2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect([]string{"only-one"}); err == nil {
		t.Error("expected address count error")
	}
}
