package mpinet

import (
	"fmt"

	"soifft/internal/telemetry"
)

// Telemetry capabilities: together with Rank/Size/SendChecked these make
// *Proc satisfy telemetry.Conn, telemetry.Receiver and
// telemetry.LinkStatser, so the cluster plane discovers everything it
// needs from the transport handle by type assertion.

// RecvTelemetry blocks for the next stat frame from rank `from`. Stat
// frames ride the dedicated telemetry mailbox (tag telemetry.TagStat),
// so this wait never competes with halo, parity, collective or stream
// receives on the same link. It waits without a deadline — frames are
// sparse and their absence is not a fault — and returns the link's
// typed death cause once the peer is gone, which is the drain
// goroutine's signal to mark the rank stale.
func (p *Proc) RecvTelemetry(from int) ([]complex128, error) {
	if from < 0 || from >= p.size || from == p.rank {
		panic(fmt.Sprintf("mpinet: recv telemetry from invalid rank %d", from))
	}
	pe := p.peers[from]
	pkt, err := pe.tbox.get(0)
	if err != nil {
		return nil, &TransportError{Rank: from, Op: "recv-telemetry", Err: err}
	}
	return pkt.data, nil
}

// LinkStats snapshots every live link's wire counters, sender-side.
func (p *Proc) LinkStats() []telemetry.LinkStat {
	out := make([]telemetry.LinkStat, 0, p.size-1)
	for _, pe := range p.peers {
		if pe == nil {
			continue
		}
		out = append(out, telemetry.LinkStat{
			Peer:           pe.rank,
			FramesSent:     pe.wire.framesSent.Load(),
			BytesSent:      pe.wire.bytesSent.Load(),
			FramesReceived: pe.wire.framesReceived.Load(),
			BytesReceived:  pe.wire.bytesReceived.Load(),
			FlushNs:        pe.wire.flushNs.Load(),
			CreditStallNs:  pe.wire.creditStallNs.Load(),
			HeartbeatRTTNs: pe.wire.rttNs.Load(),
			SendErrors:     pe.wire.sendErrors.Load(),
		})
	}
	return out
}
