// Chaos suite: full distributed SOI transforms across in-process ranks
// over real TCP, under a matrix of seeded faultnet plans. The invariant
// under test is the transport's whole contract: every run either
// produces a correct spectrum or returns typed *TransportError values
// within twice the configured I/O deadline — never a panic escaping to
// the caller, never a hang. CI runs this file with
// `go test -race -run Chaos ./...`.
package mpinet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"soifft/internal/core"
	"soifft/internal/faultnet"
	"soifft/internal/fft"
	"soifft/internal/signal"
)

// chaosMesh is mesh() plus fault injection and deadlines: wrap (if non
// nil) decorates every link right after the hello exchange, and each
// proc gets the given per-operation I/O deadline.
func chaosMesh(t *testing.T, size int, ioTimeout time.Duration,
	wrap func(self, peer int, c net.Conn) net.Conn) []*Proc {
	t.Helper()
	nodes := make([]*Node, size)
	addrs := make([]string, size)
	for r := 0; r < size; r++ {
		n, err := NewNode(r, size, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		if wrap != nil {
			self := r
			n.SetConnWrapper(func(peer int, c net.Conn) net.Conn {
				return wrap(self, peer, c)
			})
		}
		nodes[r] = n
		addrs[r] = n.Addr()
	}
	procs := make([]*Proc, size)
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			procs[r], errs[r] = nodes[r].Connect(addrs)
			if errs[r] == nil {
				procs[r].SetIOTimeout(ioTimeout)
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d connect: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, p := range procs {
			p.Close()
		}
	})
	return procs
}

// runRanks executes fn on every rank concurrently with a watchdog: a run
// that has not finished well past the 2×deadline budget is a hang, the
// exact failure mode the hardened transport must rule out.
func runRanks(t *testing.T, procs []*Proc, budget time.Duration, fn func(p *Proc) error) ([]error, time.Duration) {
	t.Helper()
	errs := make([]error, len(procs))
	start := time.Now()
	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for i, p := range procs {
			wg.Add(1)
			go func(i int, p *Proc) {
				defer wg.Done()
				errs[i] = fn(p)
			}(i, p)
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(budget + 8*time.Second):
		t.Fatalf("ranks still blocked %v past the %v fault budget: transport hung", 8*time.Second, budget)
	}
	return errs, time.Since(start)
}

// TestChaosMatrix drives the full distributed transform + gather under
// every fault family, three seeds each, with rank 1's links faulty.
func TestChaosMatrix(t *testing.T) {
	const n, ranks, faulty = 2048, 4, 1
	const ioT = time.Second
	pl, err := core.NewPlan(core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: 48})
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 13)
	want := make([]complex128, n)
	fft.Direct(want, src)
	nLocal := n / ranks

	scenarios := []struct {
		name string
		plan faultnet.Plan
	}{
		{"throttle", faultnet.Plan{BandwidthBps: 4 << 20, Latency: time.Millisecond}},
		{"drop", faultnet.Plan{DropProb: 0.4, After: 2}},
		{"corrupt", faultnet.Plan{CorruptProb: 0.4, After: 2}},
		{"reset", faultnet.Plan{ResetProb: 0.4, After: 2}},
		{"hang", faultnet.Plan{HangProb: 0.4, After: 2}},
		{"partial", faultnet.Plan{PartialProb: 0.5, After: 1}},
	}
	for _, sc := range scenarios {
		for seed := int64(1); seed <= 3; seed++ {
			sc, seed := sc, seed
			t.Run(fmt.Sprintf("%s/seed%d", sc.name, seed), func(t *testing.T) {
				plan := sc.plan
				plan.Seed = seed
				procs := chaosMesh(t, ranks, ioT, func(self, peer int, c net.Conn) net.Conn {
					if self != faulty {
						return c
					}
					return plan.Conn(c, faultnet.LinkID(self, peer))
				})
				got := make([]complex128, n)
				full := make([]complex128, n)
				errs, elapsed := runRanks(t, procs, 2*ioT, func(p *Proc) error {
					out := got[p.Rank()*nLocal : (p.Rank()+1)*nLocal]
					if _, err := pl.RunDistributed(context.Background(), p, out, src[p.Rank()*nLocal:(p.Rank()+1)*nLocal]); err != nil {
						return err
					}
					return core.GuardComm(func() {
						if g := p.Gather(0, out); p.Rank() == 0 {
							copy(full, g)
						}
					})
				})

				failed := false
				for r, err := range errs {
					if err == nil {
						continue
					}
					failed = true
					var te *TransportError
					var fault core.Fault
					if !errors.As(err, &te) || !errors.As(err, &fault) {
						t.Errorf("rank %d returned untyped error %T: %v", r, err, err)
					} else {
						t.Logf("rank %d: typed fault after %v: %v", r, elapsed, err)
					}
				}
				if !failed {
					if e := signal.RelErrL2(full, want); e > 1e-8 {
						t.Errorf("fault-free run produced wrong spectrum: rel err %.3e", e)
					}
					return
				}
				// The typed-error half of the invariant: failures must
				// land within 2× the deadline (plus compute slack).
				if limit := 2*ioT + 2*time.Second; elapsed > limit {
					t.Errorf("faulted run took %v, over the %v bound", elapsed, limit)
				}
			})
		}
	}
}

// TestChaosCorruptFrameNamesSender is the CRC acceptance check: a bit
// flipped in flight by faultnet must surface as a typed checksum error
// naming the sending rank.
func TestChaosCorruptFrameNamesSender(t *testing.T) {
	const sender = 1
	plan := faultnet.Plan{Seed: 11, CorruptProb: 1}
	procs := chaosMesh(t, 2, 0, func(self, peer int, c net.Conn) net.Conn {
		if self != sender {
			return c
		}
		return plan.Conn(c, faultnet.LinkID(self, peer))
	})
	payload := make([]complex128, 256) // header is <1% of the frame, so the flip lands in the payload
	for i := range payload {
		payload[i] = complex(float64(i), -float64(i))
	}
	errs, _ := runRanks(t, procs, 2*time.Second, func(p *Proc) error {
		if p.Rank() == sender {
			return core.GuardComm(func() { p.Send(0, 9, payload) })
		}
		return core.GuardComm(func() { p.RecvC(sender, 9) })
	})
	err := errs[0]
	if err == nil {
		t.Fatal("receiver accepted a corrupted frame")
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("receiver error is %T, want *TransportError: %v", err, err)
	}
	if te.Rank != sender {
		t.Errorf("TransportError names rank %d, want sender rank %d", te.Rank, sender)
	}
	if !errors.Is(err, ErrChecksum) {
		t.Errorf("cause is %v, want ErrChecksum", err)
	}
}

// TestChaosHungPeerDetectedWithinDeadline: a peer whose writes silently
// hang must be declared dead within the deadline budget, not never.
func TestChaosHungPeerDetectedWithinDeadline(t *testing.T) {
	const ioT = 500 * time.Millisecond
	plan := faultnet.Plan{Seed: 5, HangProb: 1}
	procs := chaosMesh(t, 2, ioT, func(self, peer int, c net.Conn) net.Conn {
		if self != 1 {
			return c
		}
		return plan.Conn(c, faultnet.LinkID(self, peer))
	})
	errs, elapsed := runRanks(t, procs, 2*ioT, func(p *Proc) error {
		if p.Rank() == 1 {
			return core.GuardComm(func() { p.Send(0, 3, []complex128{1}) })
		}
		return core.GuardComm(func() { p.RecvC(1, 3) })
	})
	err := errs[0]
	if err == nil {
		t.Fatal("receiver got data from a hung peer")
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("receiver error is %T, want *TransportError: %v", err, err)
	}
	if !te.Timeout() && !errors.Is(err, ErrPeerClosed) {
		t.Errorf("hung peer surfaced as %v, want a timeout or peer-death cause", err)
	}
	if limit := 2*ioT + time.Second; elapsed > limit {
		t.Errorf("hung peer detected after %v, over the %v bound", elapsed, limit)
	}
}

// TestChaosHeartbeatKeepsIdleLinkAlive: deadlines must not misfire on a
// healthy link that simply has nothing to say for longer than the
// deadline — heartbeats carry it.
func TestChaosHeartbeatKeepsIdleLinkAlive(t *testing.T) {
	const ioT = 300 * time.Millisecond
	procs := chaosMesh(t, 2, ioT, nil)
	errs, _ := runRanks(t, procs, 4*time.Second, func(p *Proc) error {
		time.Sleep(4 * ioT) // well past the deadline, link idle throughout
		other := 1 - p.Rank()
		return core.GuardComm(func() {
			p.Send(other, 8, []complex128{complex(float64(p.Rank()), 0)})
			got := p.RecvC(other, 8)
			if len(got) != 1 || got[0] != complex(float64(other), 0) {
				panic(fmt.Sprintf("rank %d got %v", p.Rank(), got))
			}
		})
	})
	for r, err := range errs {
		if err != nil {
			t.Errorf("idle-but-healthy link failed on rank %d: %v", r, err)
		}
	}
}

// peerDeath closes victim's proc outright (every socket dies, queued
// frames unflushed) while the survivors run fn; every survivor must get
// a typed transport error, promptly.
func peerDeath(t *testing.T, victim int, fn func(p *Proc) error) {
	t.Helper()
	const ioT = 500 * time.Millisecond
	procs := chaosMesh(t, 4, ioT, nil)
	errs, _ := runRanks(t, procs, 2*ioT, func(p *Proc) error {
		if p.Rank() == victim {
			p.Close()
			return nil
		}
		return fn(p)
	})
	for r, err := range errs {
		if r == victim {
			continue
		}
		if err == nil {
			t.Errorf("surviving rank %d returned nil, want a typed transport error", r)
			continue
		}
		var te *TransportError
		if !errors.As(err, &te) {
			t.Errorf("surviving rank %d returned untyped %T: %v", r, err, err)
		}
	}
}

func TestChaosPeerDeathAlltoall(t *testing.T) {
	peerDeath(t, 2, func(p *Proc) error {
		return core.GuardComm(func() {
			p.Alltoall(make([]complex128, 4*8), 8)
		})
	})
}

func TestChaosPeerDeathGather(t *testing.T) {
	// Root is a survivor: it errors on the dead rank's chunk; the other
	// survivors hit the barrier that follows (as every real driver does)
	// and find rank 0 already gone.
	peerDeath(t, 2, func(p *Proc) error {
		return core.GuardComm(func() {
			p.Gather(0, make([]complex128, 8))
			p.Barrier()
		})
	})
}

func TestChaosPeerDeathBarrier(t *testing.T) {
	peerDeath(t, 2, func(p *Proc) error {
		return core.GuardComm(p.Barrier)
	})
}

// TestChaosOversizedFrameRejected: a frame length from the wire must be
// validated against MaxFrameElems before any allocation happens (the
// readLoop OOM vector).
func TestChaosOversizedFrameRejected(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	pe := newPeer(a, 1, &Proc{rank: 0, size: 2})
	go pe.readLoop()

	hdr := encodeFrame(0, nil) // valid magic + checksum, then poison the count
	hdr[8] = 0xFF              // count LSB
	hdr[14] = 0xFF             // count ≈ 2^52 elements ≈ 2^56 bytes
	go func() { _, _ = b.Write(hdr) }()

	_, err := pe.box.get(5 * time.Second)
	if err == nil {
		t.Fatal("oversized frame was accepted")
	}
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame surfaced as %v, want ErrFrameTooLarge", err)
	}
}

// TestChaosSendFailsFastAfterWriterDeath is the deadlock regression: a
// dead writeLoop used to stop draining the 4096-frame queue, so the
// 4097th Send blocked forever. Sends to a dead peer must fail fast.
func TestChaosSendFailsFastAfterWriterDeath(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	pe := newPeer(a, 1, &Proc{rank: 0, size: 2})
	go pe.writeLoop()
	_ = b.Close() // every write on a now fails

	frame := encodeFrame(7, []complex128{1})
	done := make(chan error, 1)
	go func() {
		var firstErr error
		for i := 0; i < 10000; i++ { // far beyond the 4096 buffer
			if err := pe.send(frame); err != nil {
				firstErr = err
				break
			}
		}
		done <- firstErr
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("10000 sends to a dead peer all claimed success")
		}
		if !errors.Is(err, ErrPeerClosed) && !errors.Is(err, ErrDeadline) {
			t.Errorf("dead-peer send failed with %v, want a typed wire cause", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("send to a dead peer blocked instead of failing fast")
	}
	close(pe.out)
}
