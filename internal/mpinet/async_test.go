// Async-exchange e2e: the streamed all-to-all over real TCP, with wire
// cost injected by faultnet. The two halves of the streaming contract
// are under test here: with a window the transform must get measurably
// faster when the wire is slow (overlap hides wire time behind
// convolution) while staying bit-identical to the blocking exchange,
// and rank death mid-stream must surface as typed errors within the
// deadline bounds — the plain chaos invariant, on the async path.
package mpinet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"soifft/internal/core"
	"soifft/internal/faultnet"
	"soifft/internal/fft"
	"soifft/internal/signal"
)

// runAsyncTimed executes the distributed transform on every rank and
// returns per-rank outputs and times plus the wall time of the whole
// world.
func runAsyncTimed(t *testing.T, procs []*Proc, pl *core.Plan, src []complex128,
	budget time.Duration, opts ...core.DistOption) ([]complex128, []core.DistributedTimes, time.Duration) {
	t.Helper()
	nLocal := len(src) / len(procs)
	got := make([]complex128, len(src))
	dts := make([]core.DistributedTimes, len(procs))
	errs, elapsed := runRanks(t, procs, budget, func(p *Proc) error {
		rank := p.Rank()
		dt, err := pl.RunDistributed(context.Background(), p,
			got[rank*nLocal:(rank+1)*nLocal], src[rank*nLocal:(rank+1)*nLocal], opts...)
		dts[rank] = dt
		return err
	})
	for rank, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
	}
	return got, dts, elapsed
}

// TestAsyncOverlapHidesWireTime is the streaming tentpole's acceptance:
// throttle every link so the exchange wire time matches the measured
// convolution time, and the windowed exchange must cut the end-to-end
// wall by at least 20% versus the blocking exchange on the identically
// throttled mesh — with bit-identical spectra, and with the visible
// Exchange stage time (the un-hidden remainder) strictly smaller.
func TestAsyncOverlapHidesWireTime(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock overlap measurement")
	}
	// Two ranks keep the goroutine count low enough that scheduler noise
	// on a small CI box does not swamp the overlap signal; one link each
	// way is the cleanest wire to throttle. Workers=1 and a deep filter
	// make convolution the dominant local stage, which is what the
	// overlap can hide wire time behind.
	const n, ranks = 1 << 18, 2
	pl, err := core.NewPlan(core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: 512, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 41)
	want, err := fft.Forward(src)
	if err != nil {
		t.Fatal(err)
	}

	// Pass 1, clean mesh: measure the compute wall we can hide behind.
	clean := mesh(t, ranks)
	refOut, cleanDts, cleanWall := runAsyncTimed(t, clean, pl, src, 30*time.Second)
	if e := signal.RelErrL2(refOut, want); e > 1e-8 {
		t.Fatalf("clean run wrong: rel err %.3e", e)
	}
	var conv time.Duration
	for _, dt := range cleanDts {
		if dt.Convolve > conv {
			conv = dt.Convolve
		}
	}
	if conv <= 0 {
		t.Fatal("no convolution time measured")
	}

	// Throttle every link so draining one rank's exchange payload takes
	// about 1.5 clean-run walls: wire ≳ compute is where a blocking
	// exchange hurts most, and the slack above 1.0 keeps the comparison
	// decisive even when the calibration run lands on the fast side.
	nPrime := n / 4 * 5
	perLinkBytes := int64(nPrime) * 16 / int64(ranks*ranks)
	plan := faultnet.Plan{Seed: 1, BandwidthBps: float64(perLinkBytes) / (1.5 * cleanWall.Seconds())}
	throttled := func() []*Proc {
		return chaosMesh(t, ranks, 60*time.Second, func(self, peer int, c net.Conn) net.Conn {
			return plan.Conn(c, faultnet.LinkID(self, peer))
		})
	}

	// Wall time on a small shared box is noisy (one bad scheduler burst
	// shifts either side by tens of ms), so the timing claim gets up to
	// three attempts and passes on the first decisive one; correctness
	// (bit-identity, visible-exchange shrink) is asserted on every
	// attempt. Three straight misses means the overlap is really gone.
	const attempts = 3
	var blockWall, asyncWall time.Duration
	for attempt := 0; attempt < attempts; attempt++ {
		var blockOut, asyncOut []complex128
		var blockDts, asyncDts []core.DistributedTimes
		blockOut, blockDts, blockWall = runAsyncTimed(t, throttled(), pl, src, 90*time.Second)
		asyncOut, asyncDts, asyncWall = runAsyncTimed(t, throttled(), pl, src, 90*time.Second,
			core.WithAsyncWindow(4))

		if e := signal.MaxAbsErr(asyncOut, blockOut); e != 0 {
			t.Fatalf("async spectrum differs from blocking by %.3e (must be bit-identical)", e)
		}
		var blockExch, asyncExch time.Duration
		for r := 0; r < ranks; r++ {
			if blockDts[r].Exchange > blockExch {
				blockExch = blockDts[r].Exchange
			}
			if asyncDts[r].Exchange > asyncExch {
				asyncExch = asyncDts[r].Exchange
			}
		}
		if asyncExch >= blockExch {
			t.Errorf("visible exchange did not shrink: async %v vs blocking %v", asyncExch, blockExch)
		}
		t.Logf("attempt %d: conv %v; wall blocking %v async %v (%.1f%% saved); visible exchange blocking %v async %v",
			attempt, conv, blockWall, asyncWall,
			100*(1-float64(asyncWall)/float64(blockWall)), blockExch, asyncExch)
		if asyncWall <= blockWall*8/10 {
			return
		}
	}
	t.Errorf("async wall %v not >=20%% below blocking %v in any of %d attempts",
		asyncWall, blockWall, attempts)
}

// TestChaosAsyncRankDeathMidStream runs the windowed exchange under the
// kill-a-link fault families with rank 1 faulty: every run must either
// produce the correct spectrum or fail typed on every affected rank
// within twice the I/O deadline — never a hang, never a silently wrong
// spectrum, at any window.
func TestChaosAsyncRankDeathMidStream(t *testing.T) {
	const n, ranks, faulty = 2048, 4, 1
	const ioT = time.Second
	pl, err := core.NewPlan(core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: 48})
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(n, 13)
	want := make([]complex128, n)
	fft.Direct(want, src)
	nLocal := n / ranks

	scenarios := []struct {
		name string
		plan faultnet.Plan
	}{
		{"reset", faultnet.Plan{ResetProb: 0.4, After: 2}},
		{"hang", faultnet.Plan{HangProb: 0.4, After: 2}},
		{"corrupt", faultnet.Plan{CorruptProb: 0.4, After: 2}},
	}
	for _, sc := range scenarios {
		for _, window := range []int{1, 3} {
			for seed := int64(1); seed <= 2; seed++ {
				sc, window, seed := sc, window, seed
				t.Run(fmt.Sprintf("%s/w%d/seed%d", sc.name, window, seed), func(t *testing.T) {
					plan := sc.plan
					plan.Seed = seed
					procs := chaosMesh(t, ranks, ioT, func(self, peer int, c net.Conn) net.Conn {
						if self != faulty {
							return c
						}
						return plan.Conn(c, faultnet.LinkID(self, peer))
					})
					got := make([]complex128, n)
					errs, elapsed := runRanks(t, procs, 2*ioT, func(p *Proc) error {
						out := got[p.Rank()*nLocal : (p.Rank()+1)*nLocal]
						_, err := pl.RunDistributed(context.Background(), p, out,
							src[p.Rank()*nLocal:(p.Rank()+1)*nLocal],
							core.WithAsyncWindow(window))
						return err
					})
					failed := false
					for r, err := range errs {
						if err == nil {
							continue
						}
						failed = true
						var te *TransportError
						var fault core.Fault
						if !errors.As(err, &te) || !errors.As(err, &fault) {
							t.Errorf("rank %d returned untyped error %T: %v", r, err, err)
						}
					}
					if !failed {
						if e := signal.RelErrL2(got, want); e > 1e-8 {
							t.Errorf("fault-free streamed run produced wrong spectrum: rel err %.3e", e)
						}
						return
					}
					if limit := 2*ioT + 2*time.Second; elapsed > limit {
						t.Errorf("faulted streamed run took %v, over the %v bound", elapsed, limit)
					}
				})
			}
		}
	}
}

// TestChaosAsyncCodedDeathMidStream: coding composes with streaming
// under rank death. Kill each rank in turn right after its streamed
// tiles and parity flushed; every survivor must finish with the
// bit-exact spectrum and a DegradedError naming the victim — the same
// contract the blocking coded exchange guarantees.
func TestChaosAsyncCodedDeathMidStream(t *testing.T) {
	const ioT = time.Second
	pl, src, want := codedChaosPlan(t)
	nLocal := len(src) / codedRanks
	for victim := 0; victim < codedRanks; victim++ {
		victim := victim
		t.Run(fmt.Sprintf("victim%d", victim), func(t *testing.T) {
			procs := chaosMesh(t, codedRanks, ioT, nil)
			killAtExchange(t, procs, victim)
			outs := make([][]complex128, codedRanks)
			degs := make([]*core.DegradedError, codedRanks)
			errs, elapsed := runRanks(t, procs, 2*ioT, func(p *Proc) error {
				rank := p.Rank()
				out := make([]complex128, nLocal)
				_, err := pl.RunDistributed(context.Background(), p, out,
					src[rank*nLocal:(rank+1)*nLocal],
					core.WithCoding(1), core.WithAsyncWindow(2))
				outs[rank] = out
				if rank == victim {
					return err
				}
				var deg *core.DegradedError
				if !errors.As(err, &deg) {
					return fmt.Errorf("transform: %w", err)
				}
				degs[rank] = deg
				return nil
			})
			for rank, err := range errs {
				if rank == victim {
					if !errors.Is(err, errChaosKill) {
						t.Errorf("victim: err %v, want the failpoint kill", err)
					}
					continue
				}
				if err != nil {
					t.Errorf("survivor %d: %v", rank, err)
					continue
				}
				deg := degs[rank]
				if len(deg.ReconstructedRanks) != 1 || deg.ReconstructedRanks[0] != victim {
					t.Errorf("survivor %d: reconstructed %v, want [%d]", rank, deg.ReconstructedRanks, victim)
				}
				if e := signal.MaxAbsErr(outs[rank], want[rank*nLocal:(rank+1)*nLocal]); e != 0 {
					t.Errorf("survivor %d: streamed degraded block differs by %.3e (must be bit-exact)", rank, e)
				}
			}
			if limit := 2*ioT + 2*time.Second; elapsed > limit {
				t.Errorf("degraded streamed run took %v, over the %v bound", elapsed, limit)
			}
		})
	}
}
