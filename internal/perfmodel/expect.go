package perfmodel

// Per-run expectations for the telemetry explainer: what the Section 7.4
// model says one concrete distributed transform of N points on R ranks
// should have moved. The time-side constants of Model (Alpha, Tconv,
// Fabric) are fleet-specific and must be calibrated; the byte-side
// expectations below are exact consequences of the factorization and
// need only (N, R, β), so the explainer can compare measured wire
// volumes and per-link shares against them without any calibration.

// ExpectedExchangeBytes is the analytic per-rank all-to-all volume of
// one SOI transform: 16·(1+β)·N·(R−1)/R² bytes leave each rank
// (self-copies excluded, matching the instrument counters).
func ExpectedExchangeBytes(n, r int, beta float64) int64 {
	if r <= 1 {
		return 0
	}
	perRank := float64(n) * (1 + beta) * 16 / float64(r)
	return int64(perRank * float64(r-1) / float64(r))
}

// ExpectedLinkBytes is the analytic volume one directed link carries in
// the exchange: each rank's (1+β)·N/R elements split evenly over R
// destinations, so every src→dst link moves 16·(1+β)·N/R² bytes.
func ExpectedLinkBytes(n, r int, beta float64) int64 {
	if r <= 1 {
		return 0
	}
	return int64(float64(n) * (1 + beta) * 16 / float64(r) / float64(r))
}

// ExpectedParityBytes is the wire overhead the coded exchange adds for m
// parity shares: m/(R−1) of the data volume (each codeword of R−1 data
// chunks gains m shares of the same chunk size).
func ExpectedParityBytes(n, r, m int, beta float64) int64 {
	if r <= 1 || m <= 0 {
		return 0
	}
	return ExpectedExchangeBytes(n, r, beta) * int64(m) / int64(r-1)
}
