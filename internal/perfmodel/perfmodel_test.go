package perfmodel

import (
	"math"
	"testing"
	"time"

	"soifft/internal/netsim"
)

// paperModel builds a model with constants in the ballpark of the paper's
// measurements: 2^28 points/node, node-local FFT of a few seconds,
// convolution comparable to the FFT (Section 7.4).
func paperModel(fabric netsim.Fabric) Model {
	m := Model{
		PointsPerNode: 1 << 28,
		Tconv:         1400 * time.Millisecond,
		Beta:          0.25,
		C:             1.0,
		Fabric:        fabric,
	}
	m.CalibrateAlpha(1300 * time.Millisecond)
	return m
}

func TestValidate(t *testing.T) {
	m := paperModel(netsim.Gordon())
	if err := m.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := m
	bad.Alpha = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected alpha error")
	}
	bad = m
	bad.Fabric = nil
	if err := bad.Validate(); err == nil {
		t.Error("expected fabric error")
	}
	bad = m
	bad.C = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected c error")
	}
}

func TestAsymptoticSpeedup(t *testing.T) {
	m := paperModel(netsim.TenGigE())
	if got := m.AsymptoticSpeedup(); math.Abs(got-2.4) > 1e-12 {
		t.Errorf("3/(1+β) = %g, want 2.4", got)
	}
}

func TestEthernetSpeedupNearTheory(t *testing.T) {
	// Paper Fig 8: on 10GbE, measured speedups fell in [2.3, 2.4],
	// essentially the 3/(1+β) communication-bound limit.
	m := paperModel(netsim.TenGigE())
	for _, n := range []int{8, 16, 32, 64} {
		s := m.Speedup(n)
		if s < 2.2 || s > 2.4 {
			t.Errorf("n=%d: modeled 10GbE speedup %.3f outside [2.2, 2.4]", n, s)
		}
	}
}

func TestTorusSpeedupGrowsThenSaturates(t *testing.T) {
	// Fig 9 shape: speedup grows with n (bisection tightens) and stays
	// below the asymptote.
	m := paperModel(netsim.Gordon())
	prev := 0.0
	for _, n := range TorusNodes(2, 10) {
		s := m.Speedup(n)
		if s <= prev-0.01 {
			t.Errorf("speedup not (weakly) growing at n=%d: %.3f after %.3f", n, s, prev)
		}
		if s >= m.AsymptoticSpeedup()+1e-9 {
			t.Errorf("speedup %.3f exceeds asymptote %.3f", s, m.AsymptoticSpeedup())
		}
		prev = s
	}
	// At Jaguar scale the paper projects around 2x; accept a broad band.
	if s := m.Speedup(16000); s < 1.5 || s > 2.4 {
		t.Errorf("16K-node projection %.3f outside [1.5, 2.4]", s)
	}
}

func TestSpeedupAboveOneOnIB(t *testing.T) {
	// SOI must win on both IB fabrics at every evaluated scale — the
	// paper's headline result (Figs 5 and 6).
	for _, fab := range []netsim.Fabric{netsim.Endeavor(), netsim.Gordon()} {
		m := paperModel(fab)
		for _, n := range []int{2, 4, 8, 16, 32, 64} {
			if s := m.Speedup(n); s <= 1 {
				t.Errorf("%s n=%d: speedup %.3f ≤ 1", fab.Name(), n, s)
			}
		}
	}
}

func TestCFactorOrdering(t *testing.T) {
	m := paperModel(netsim.Gordon())
	lo, mid, hi := m, m, m
	lo.C, mid.C, hi.C = 0.75, 1.0, 1.25
	n := 1024
	if !(lo.Speedup(n) > mid.Speedup(n) && mid.Speedup(n) > hi.Speedup(n)) {
		t.Errorf("speedup must fall as convolution cost rises: %.3f %.3f %.3f",
			lo.Speedup(n), mid.Speedup(n), hi.Speedup(n))
	}
}

func TestProjectionCurve(t *testing.T) {
	m := paperModel(netsim.Gordon())
	pts := m.Projection(TorusNodes(2, 6), []float64{0.75, 1.0, 1.25})
	if len(pts) != 5 {
		t.Fatalf("expected 5 points, got %d", len(pts))
	}
	for _, pt := range pts {
		if len(pt.Speedups) != 3 {
			t.Errorf("n=%d: %d c-curves", pt.Nodes, len(pt.Speedups))
		}
		if !(pt.Speedups[0.75] > pt.Speedups[1.25]) {
			t.Errorf("n=%d: optimistic curve below pessimistic", pt.Nodes)
		}
	}
}

func TestTorusNodes(t *testing.T) {
	nodes := TorusNodes(1, 3)
	want := []int{16, 128, 432}
	for i := range want {
		if nodes[i] != want[i] {
			t.Errorf("TorusNodes[%d] = %d, want %d", i, nodes[i], want[i])
		}
	}
}

func TestGFLOPSMetric(t *testing.T) {
	m := paperModel(netsim.Gordon())
	g1 := m.GFLOPS(1, 2*time.Second)
	if g1 <= 0 {
		t.Fatal("GFLOPS must be positive")
	}
	// Halving the time doubles the rate.
	g2 := m.GFLOPS(1, time.Second)
	if math.Abs(g2/g1-2) > 1e-9 {
		t.Errorf("GFLOPS not inversely proportional to time: %.3f vs %.3f", g1, g2)
	}
	if m.GFLOPS(1, 0) != 0 {
		t.Error("zero time must yield zero GFLOPS")
	}
}

func TestWeakScalingFFTTime(t *testing.T) {
	m := paperModel(netsim.Gordon())
	// Tfft grows only logarithmically with n.
	t1, t64 := m.Tfft(1), m.Tfft(64)
	if t64 <= t1 {
		t.Error("Tfft must grow with n")
	}
	growth := float64(t64) / float64(t1)
	want := (28.0 + 6.0) / 28.0
	if math.Abs(growth-want) > 0.01 {
		t.Errorf("Tfft(64)/Tfft(1) = %.4f, want %.4f", growth, want)
	}
}

func TestStrongScalingModel(t *testing.T) {
	// Strong scaling (fixed total size): per-node payloads shrink like
	// 1/n, so bandwidth terms fall while the per-exchange *latency* is
	// paid 3× by the standard algorithm and once by SOI. The model's
	// finding: SOI's advantage survives — and in the latency-dominated
	// tail it is bounded by the exchange-count ratio rather than the
	// bandwidth ratio.
	base := paperModel(netsim.Gordon())
	sm := StrongModel{Model: base, TotalPoints: 1 << 34}
	s8 := sm.SpeedupStrong(8)
	if s8 < 1 {
		t.Errorf("strong-scaling speedup at 8 nodes %.2f; SOI should win", s8)
	}
	big := sm.SpeedupStrong(16384)
	if big < 1 || big > 3 {
		t.Errorf("16K-node strong-scaling speedup %.2f outside (1, 3): latency ratio bounds it", big)
	}
	// The speedup must never exceed 3 (the exchange-count ratio), the
	// ultimate ceiling when latency dominates everything.
	for _, n := range []int{8, 64, 512, 4096, 16384} {
		if s := sm.SpeedupStrong(n); s > 3 {
			t.Errorf("n=%d: speedup %.2f exceeds the 3x exchange-count ceiling", n, s)
		}
	}
}

func TestTSOIUsesOversampledBytes(t *testing.T) {
	// The SOI exchange must be priced at (1+β)·bytes with latency paid
	// once — check against hand computation on the Ethernet model.
	m := paperModel(netsim.TenGigE())
	n := 16
	want := m.Fabric.AlltoallTime(n, int64(float64(m.PointsPerNode*16)*1.25))
	got := m.TSOI(n) - m.TfftOversampled(n) - time.Duration(float64(m.Tconv)*m.C)
	if got != want {
		t.Errorf("SOI comm term %v, want %v", got, want)
	}
}

func TestWireComputeRatio(t *testing.T) {
	// The controller prior: comm over hideable compute. On a
	// communication-bound fabric (10GbE) it must exceed the ratio on a
	// fat IB fabric at the same scale, and pricing must match the TSOI
	// decomposition exactly.
	n := 16
	eth, ib := paperModel(netsim.TenGigE()), paperModel(netsim.Gordon())
	re, ri := eth.WireComputeRatio(n), ib.WireComputeRatio(n)
	if re <= 0 || ri <= 0 {
		t.Fatalf("ratios must be positive: eth %.3f ib %.3f", re, ri)
	}
	if re <= ri {
		t.Errorf("10GbE ratio %.3f not above Gordon IB ratio %.3f", re, ri)
	}
	comm := eth.Fabric.AlltoallTime(n, int64(float64(eth.PointsPerNode*16)*1.25))
	compute := eth.TfftOversampled(n) + time.Duration(float64(eth.Tconv)*eth.C)
	if want := float64(comm) / float64(compute); math.Abs(re-want) > 1e-12 {
		t.Errorf("ratio %.6f, want comm/compute %.6f", re, want)
	}
	zero := eth
	zero.Alpha, zero.Tconv = 0, 0
	if zero.WireComputeRatio(n) != 0 {
		t.Error("zero compute must yield ratio 0, not Inf")
	}
}

func TestProjectionDeterministic(t *testing.T) {
	m := paperModel(netsim.Gordon())
	a := m.Projection(TorusNodes(2, 4), []float64{1})
	b := m.Projection(TorusNodes(2, 4), []float64{1})
	for i := range a {
		if a[i].Speedups[1] != b[i].Speedups[1] {
			t.Fatal("projection not deterministic")
		}
	}
}
