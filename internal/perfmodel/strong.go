package perfmodel

import (
	"math"
	"time"
)

// Strong-scaling variant of the Section 7.4 model: the total problem
// size is fixed at TotalPoints while the node count grows, so per-node
// compute and exchange volume both shrink like 1/n. The paper evaluates
// weak scaling only; this extension asks where SOI's advantage goes when
// the per-node payload gets small (answer: latency terms erode it).

// StrongModel prices a fixed-size problem across node counts.
type StrongModel struct {
	Model
	TotalPoints int64
}

// TfftStrong models the per-node FFT time at n nodes.
func (m StrongModel) TfftStrong(n int) time.Duration {
	perNode := float64(m.TotalPoints) / float64(n)
	lg := math.Log2(float64(m.TotalPoints))
	// Rate calibrated from Alpha: Alpha·log2(ppn) was the single-node
	// time for PointsPerNode, i.e. rate = PointsPerNode/Alpha per log.
	scale := perNode / float64(m.PointsPerNode)
	return time.Duration(float64(m.Alpha) * lg * scale)
}

// TconvStrong shrinks the convolution with the per-node share.
func (m StrongModel) TconvStrong(n int) time.Duration {
	return time.Duration(float64(m.Tconv) * m.C / float64(n) *
		float64(m.TotalPoints) / float64(m.PointsPerNode))
}

// TmpiStrong prices one all-to-all of the per-node share.
func (m StrongModel) TmpiStrong(n int) time.Duration {
	perNodeBytes := m.TotalPoints * 16 / int64(n)
	return m.Fabric.AlltoallTime(n, perNodeBytes)
}

// SpeedupStrong is the SOI speedup at n nodes under strong scaling. The
// oversampled exchange carries (1+β)× the bytes but pays latency once.
func (m StrongModel) SpeedupStrong(n int) float64 {
	tstd := m.TfftStrong(n) + 3*m.TmpiStrong(n)
	perNodeBytes := int64(float64(m.TotalPoints*16) / float64(n) * (1 + m.Beta))
	comm := m.Fabric.AlltoallTime(n, perNodeBytes)
	tfftOv := time.Duration(float64(m.TfftStrong(n)) * (1 + m.Beta))
	tsoi := tfftOv + m.TconvStrong(n) + comm
	return float64(tstd) / float64(tsoi)
}
