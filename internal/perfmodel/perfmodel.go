// Package perfmodel implements the execution-time model of paper
// Section 7.4 and its speedup projection (Fig 9).
//
// For a weak-scaling run with PointsPerNode complex points on each of n
// nodes:
//
//	T_fft(n)  ≈ α·(log2(PointsPerNode) + log2(n))     node-local FFT
//	T_conv(n) ≈ c·T_conv                              constant per node
//	T_mpi(n)  = fabric all-to-all of PointsPerNode·16 bytes per node
//
//	T_mkl(n) ≈ T_fft(n) + 3·T_mpi(n)
//	T_soi(n) ≈ T_fft((1+β)·n) + c·T_conv + (1+β)·T_mpi(n)
//
// with c ∈ [0.75, 1.25] expressing convolution-efficiency uncertainty.
package perfmodel

import (
	"fmt"
	"math"
	"time"

	"soifft/internal/netsim"
)

// Model carries the calibrated constants of the Section 7.4 projection.
type Model struct {
	// PointsPerNode is the weak-scaling load (paper: 2^28 complex points).
	PointsPerNode int64
	// Alpha is the fitted node-local FFT constant: Tfft(1) = Alpha ·
	// log2(PointsPerNode). Calibrate from a measured single-node FFT.
	Alpha time.Duration
	// Tconv is the measured node-local convolution time.
	Tconv time.Duration
	// Beta is the oversampling fraction (paper: 1/4).
	Beta float64
	// C scales Tconv: 1.0 is the measurement, 0.75 an optimistic 50%%-
	// efficiency convolution, 1.25 pessimistic.
	C float64
	// Fabric prices the all-to-all.
	Fabric netsim.Fabric
}

// CalibrateAlpha fits Alpha from a measured single-node FFT time.
func (m *Model) CalibrateAlpha(tfft1 time.Duration) {
	m.Alpha = time.Duration(float64(tfft1) / math.Log2(float64(m.PointsPerNode)))
}

// Validate reports configuration errors.
func (m Model) Validate() error {
	switch {
	case m.PointsPerNode <= 0:
		return fmt.Errorf("perfmodel: PointsPerNode must be positive")
	case m.Alpha <= 0:
		return fmt.Errorf("perfmodel: Alpha must be calibrated and positive")
	case m.Tconv < 0:
		return fmt.Errorf("perfmodel: Tconv must be nonnegative")
	case m.Beta <= 0:
		return fmt.Errorf("perfmodel: Beta must be positive")
	case m.C <= 0:
		return fmt.Errorf("perfmodel: C must be positive")
	case m.Fabric == nil:
		return fmt.Errorf("perfmodel: Fabric is required")
	}
	return nil
}

// Tfft models the node-local FFT time at n nodes (weak scaling: problem
// size grows with n, so only the log factor grows).
func (m Model) Tfft(n int) time.Duration {
	lg := math.Log2(float64(m.PointsPerNode)) + math.Log2(float64(n))
	return time.Duration(float64(m.Alpha) * lg)
}

// TfftOversampled is Tfft on the (1+β)-inflated problem.
func (m Model) TfftOversampled(n int) time.Duration {
	lg := math.Log2(float64(m.PointsPerNode)*(1+m.Beta)) + math.Log2(float64(n))
	return time.Duration(float64(m.Alpha) * lg * (1 + m.Beta))
}

// Tmpi models one all-to-all of the weak-scaling payload.
func (m Model) Tmpi(n int) time.Duration {
	return m.Fabric.AlltoallTime(n, m.PointsPerNode*16)
}

// TStandard models the triple-all-to-all library time (MKL class).
func (m Model) TStandard(n int) time.Duration {
	return m.Tfft(n) + 3*m.Tmpi(n)
}

// TSOI models the single-all-to-all SOI time. Oversampling inflates the
// exchanged *bytes* by (1+β); the per-exchange latency is paid once
// (versus three times for the standard algorithm).
func (m Model) TSOI(n int) time.Duration {
	comm := m.Fabric.AlltoallTime(n, int64(float64(m.PointsPerNode*16)*(1+m.Beta)))
	conv := time.Duration(float64(m.Tconv) * m.C)
	return m.TfftOversampled(n) + conv + comm
}

// WireComputeRatio predicts the single all-to-all's wire time over the
// compute it can hide behind (the oversampled FFT batch plus the
// convolution) at n nodes. This is the adaptive window controller's
// prior ρ: adapt.PriorWindow(ρ) sizes the streamed exchange's first
// window before any measurement exists. Above 1 the wire outlasts the
// compute — the exchange cannot be fully hidden at any window.
func (m Model) WireComputeRatio(n int) float64 {
	comm := m.Fabric.AlltoallTime(n, int64(float64(m.PointsPerNode*16)*(1+m.Beta)))
	compute := m.TfftOversampled(n) + time.Duration(float64(m.Tconv)*m.C)
	if compute <= 0 {
		return 0
	}
	return float64(comm) / float64(compute)
}

// Speedup is TStandard/TSOI at n nodes.
func (m Model) Speedup(n int) float64 {
	return float64(m.TStandard(n)) / float64(m.TSOI(n))
}

// AsymptoticSpeedup is the communication-dominated limit 3/(1+β)
// (paper Section 7.4: ≈2.4 at β=1/4, observed on 10GbE in Fig 8).
func (m Model) AsymptoticSpeedup() float64 { return 3 / (1 + m.Beta) }

// GFLOPS converts an execution time for the n-node weak-scaling problem
// into the paper's reporting metric 5·N·log2(N)/time.
func (m Model) GFLOPS(n int, t time.Duration) float64 {
	if t <= 0 {
		return 0
	}
	nTotal := float64(m.PointsPerNode) * float64(n)
	return 5 * nTotal * math.Log2(nTotal) / t.Seconds() / 1e9
}

// ProjectionPoint is one sample of the Fig 9 curve.
type ProjectionPoint struct {
	Nodes    int
	Speedups map[float64]float64 // keyed by the convolution factor c
}

// Projection reproduces Fig 9: the speedup over a node sweep for each
// convolution-efficiency factor. nodes should follow the paper's torus
// population n = 16k³.
func (m Model) Projection(nodes []int, cs []float64) []ProjectionPoint {
	out := make([]ProjectionPoint, 0, len(nodes))
	for _, n := range nodes {
		pt := ProjectionPoint{Nodes: n, Speedups: map[float64]float64{}}
		for _, c := range cs {
			mm := m
			mm.C = c
			pt.Speedups[c] = mm.Speedup(n)
		}
		out = append(out, pt)
	}
	return out
}

// TorusNodes returns the paper's torus populations 16k³ for k in [kMin,
// kMax], e.g. k=10 ⇒ 16000 nodes (Jaguar scale ~18K).
func TorusNodes(kMin, kMax int) []int {
	var nodes []int
	for k := kMin; k <= kMax; k++ {
		nodes = append(nodes, 16*k*k*k)
	}
	return nodes
}
