// Package logutil builds the slog loggers the commands share: a
// -log-level / -log-format flag pair maps onto one constructor, so
// soiserve and soinode log identically (text for humans, JSON for
// collectors) without repeating handler wiring.
package logutil

import (
	"fmt"
	"io"
	"log/slog"
)

// New builds a logger writing to w. format is "text" or "json"; level
// is "debug", "info", "warn" or "error".
func New(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info", "":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text", "":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}
