package serve

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"soifft"
	"soifft/internal/trace"
)

// Config tunes a Server. The zero value of every field selects a
// sensible default.
type Config struct {
	// Addr is the TCP listen address for ListenAndServe (default
	// "127.0.0.1:7080").
	Addr string
	// CacheCapacity bounds the plan cache (default 32 plans).
	CacheCapacity int
	// Workers bounds the goroutines executing transforms (default
	// GOMAXPROCS).
	Workers int
	// MaxBatch caps how many same-plan requests coalesce into one
	// TransformBatch call (default 8).
	MaxBatch int
	// MaxLinger is how long the first request of a batch waits for
	// company before the batch flushes anyway (default 2ms; 0 flushes
	// immediately, disabling coalescing).
	MaxLinger time.Duration
	// QueueDepth caps requests admitted but not yet executed; beyond it
	// the server rejects with StatusOverloaded (default 256).
	QueueDepth int
	// MaxN rejects requests longer than this many points (default 2^22).
	MaxN int
	// RetryAfter is the hint attached to backpressure rejections
	// (default 2×MaxLinger, at least 10ms).
	RetryAfter time.Duration
	// IdleTimeout closes a connection when no complete request arrives
	// within it — one absolute deadline covers the idle wait plus the
	// request read, so a slow-loris sender cannot pin a connection
	// goroutine forever (0 = no limit).
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response; a client that stops
	// reading is disconnected rather than wedging the handler
	// (0 = no limit).
	WriteTimeout time.Duration
	// Instrument selects the observability level attached to every plan
	// the server builds or warms (default soifft.InstrumentOff). With it
	// on, the debug endpoint's /metrics page exposes per-plan stage and
	// communication counters in Prometheus text format.
	Instrument soifft.InstrumentLevel
	// Logger receives structured connection- and request-level records
	// (default: discard). Request-scoped records carry a trace_id
	// attribute when tracing is on.
	Logger *slog.Logger
	// Tracer, when set, records a per-request timeline: every request
	// gets a trace ID (the client's via the v2 header, or a fresh one)
	// and request / batch_linger / queue_wait / execute / write_back
	// spans, with the plan's pipeline-stage spans nested under execute.
	Tracer *trace.Tracer
	// FlightDir arms the tracer's flight recorder: typed faults
	// (including backpressure rejections) dump the event ring to a
	// timestamped Perfetto JSON file in this directory.
	FlightDir string
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:7080"
	}
	if c.CacheCapacity <= 0 {
		c.CacheCapacity = 32
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxN <= 0 {
		c.MaxN = 1 << 22
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 2 * c.MaxLinger
		if c.RetryAfter < 10*time.Millisecond {
			c.RetryAfter = 10 * time.Millisecond
		}
	}
	if c.Logger == nil {
		// slog.DiscardHandler is 1.24+; build the discard logger by hand.
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// job is one admitted request travelling through a batch.
type job struct {
	src, dst []complex128
	err      error
	done     chan struct{}
	start    time.Time
	id       trace.ID // request trace ID (zero when tracing is off)
	lane     int      // tracer lane the request's spans render on
}

// batchKey groups jobs that can execute under one plan call.
type batchKey struct {
	plan    soifft.PlanKey
	inverse bool
}

// batcher accumulates same-plan jobs until MaxBatch or MaxLinger.
type batcher struct {
	plan  *soifft.Plan
	jobs  []*job
	timer *time.Timer
}

// batch is one unit of worker-pool work.
type batch struct {
	plan    *soifft.Plan
	inverse bool
	jobs    []*job
}

// Server is the FFT service. Create with New, start with ListenAndServe
// (or Listen + Serve), stop with Shutdown.
type Server struct {
	cfg     Config
	cache   *soifft.PlanCache
	metrics *Metrics

	work    chan *batch
	queued  atomic.Int64  // jobs admitted but not yet executed
	laneSeq atomic.Uint64 // rotating tracer lanes so concurrent request spans don't collide

	mu       sync.Mutex
	ln       net.Listener
	draining bool
	batchers map[batchKey]*batcher
	conns    map[net.Conn]struct{}
	execHook func() // test seam: runs at the start of every batch

	inflight sync.WaitGroup // accepted requests, until their response is written
	connWG   sync.WaitGroup
	workerWG sync.WaitGroup
}

// New builds a server; it owns a fresh plan cache (reachable via Cache
// for wisdom warming) and starts its worker pool immediately so warmed
// plans can serve as soon as a listener is attached.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    soifft.NewPlanCache(cfg.CacheCapacity),
		metrics:  newMetrics(),
		work:     make(chan *batch, cfg.QueueDepth),
		batchers: make(map[batchKey]*batcher),
		conns:    make(map[net.Conn]struct{}),
	}
	s.metrics.queueDepth = s.queued.Load
	s.metrics.cacheVars = s.cacheVars
	s.metrics.plans = s.cache.Plans
	if cfg.Tracer != nil {
		if cfg.FlightDir != "" {
			cfg.Tracer.SetFlightDir(cfg.FlightDir)
		}
		s.metrics.flight = cfg.Tracer.WritePerfetto
	}
	s.metrics.healthy = func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return !s.draining
	}
	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

// Cache exposes the server's plan cache (for wisdom warming at startup).
func (s *Server) Cache() *soifft.PlanCache { return s.cache }

// WarmWisdom loads one wisdom document into the cache and applies the
// server's configured instrumentation level to the rebuilt plan, so
// warmed plans report like built ones.
func (s *Server) WarmWisdom(r io.Reader) (*soifft.Plan, error) {
	p, err := s.cache.WarmWisdom(r)
	if err != nil {
		return nil, err
	}
	if s.cfg.Instrument > soifft.InstrumentOff {
		p.Instrument(s.cfg.Instrument)
	}
	return p, nil
}

// Metrics exposes the server's live counters.
func (s *Server) Metrics() *Metrics { return s.metrics }

func (s *Server) cacheVars() map[string]any {
	st := s.cache.Stats()
	perPlan := map[string]any{}
	for _, p := range st.PerPlan {
		perPlan[p.Key.String()] = p.Hits
	}
	return map[string]any{
		"size":      st.Size,
		"capacity":  st.Capacity,
		"hits":      st.Hits,
		"misses":    st.Misses,
		"evictions": st.Evictions,
		"hit_rate":  st.HitRate(),
		"per_plan":  perPlan,
	}
}

// Listen binds the configured address. Call before Serve when the
// ephemeral port must be known (tests, port-0 configs).
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	return nil
}

// Addr returns the bound listen address (nil before Listen).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// ListenAndServe binds cfg.Addr and runs the accept loop until Shutdown.
func (s *Server) ListenAndServe() error {
	if err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// Serve runs the accept loop on the listener bound by Listen. It
// returns nil after Shutdown closes the listener.
func (s *Server) Serve() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln == nil {
		return errors.New("serve: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			_ = conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	br := bufio.NewReader(&countingReader{r: conn, n: &s.metrics.bytesIn})
	cw := &countingWriter{w: conn, n: &s.metrics.bytesOut}
	bw := bufio.NewWriter(cw)
	writeResp := func(resp *Response) error {
		if s.cfg.WriteTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		if err := WriteResponse(bw, resp); err != nil {
			return err
		}
		return bw.Flush()
	}
	log := s.cfg.Logger.With("remote", conn.RemoteAddr().String())
	tr := s.cfg.Tracer
	for {
		if s.cfg.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		req, err := ReadRequest(br, s.cfg.MaxN)
		if err != nil {
			// EOF between frames is a client hanging up and an expired
			// idle deadline is a quiet disconnect; anything else is a
			// framing error worth one reply attempt.
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
				!errors.Is(err, net.ErrClosed) && !errors.Is(err, os.ErrDeadlineExceeded) {
				log.Warn("request read failed", "err", err)
				_ = writeResp(&Response{Status: StatusBadRequest, Msg: err.Error()})
			}
			return
		}
		// Admission: the draining check and the in-flight registration
		// are atomic with respect to Shutdown, so every accepted
		// request gets its response written before drain completes.
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			s.metrics.drained.Add(1)
			_ = writeResp(&Response{
				Status: StatusDraining, RetryAfter: s.cfg.RetryAfter,
				Msg: "server is draining", Proto: req.Proto,
			})
			return
		}
		s.inflight.Add(1)
		s.mu.Unlock()

		resp, id, lane := s.process(req, log)
		resp.Proto = req.Proto // echo the requester's version; v1 clients reject anything else
		tr.Begin(id, lane, "write_back")
		err = writeResp(resp)
		tr.End(id, lane, "write_back")
		s.inflight.Done()
		if err != nil {
			log.Warn("response write failed", "err", err, "trace_id", id.String())
			return
		}
	}
}

// process executes one admitted request and builds its response. It
// returns the request's trace ID and tracer lane so the caller can
// bracket the response write.
func (s *Server) process(req *Request, log *slog.Logger) (*Response, trace.ID, int) {
	start := time.Now()
	s.metrics.requests.Add(1)

	// Every traced request gets an ID — the client's (v2 header) or a
	// fresh one — and a rotating lane, so concurrent request spans land
	// on distinct tracks.
	tr := s.cfg.Tracer
	id := trace.ID(req.TraceID)
	var lane int
	if tr != nil {
		if id == 0 {
			id = trace.NewID()
		}
		lane = int(s.laneSeq.Add(1) & 0x1fff)
		tr.Begin(id, lane, "request")
	}
	defer func() {
		d := time.Since(start)
		s.metrics.observeLatency(d)
		s.metrics.latTotal.observe(d)
		tr.End(id, lane, "request")
	}()

	switch req.Op {
	case OpPing:
		return &Response{Status: StatusOK}, id, lane
	case OpForward, OpInverse:
	default:
		s.metrics.errors.Add(1)
		return &Response{Status: StatusBadRequest, Msg: fmt.Sprintf("unknown op %d", req.Op)}, id, lane
	}
	if req.N <= 0 || len(req.Data) != req.N {
		s.metrics.errors.Add(1)
		return &Response{Status: StatusBadRequest,
			Msg: fmt.Sprintf("payload has %d points, header says n=%d", len(req.Data), req.N)}, id, lane
	}

	plan, resp := s.resolvePlan(req)
	if resp != nil {
		return resp, id, lane
	}

	// Backpressure: admit-and-check keeps the depth accounting exact
	// under concurrent submissions. A rejection is a typed fault: it
	// marks the timeline and (when armed) dumps the flight recorder.
	if q := s.queued.Add(1); q > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.metrics.rejected.Add(1)
		if tr != nil {
			if path, _ := tr.Fault(id, lane, "backpressure"); path != "" {
				log.Warn("flight recorder dumped", "reason", "backpressure", "path", path, "trace_id", id.String())
			}
		}
		return &Response{
			Status: StatusOverloaded, RetryAfter: s.cfg.RetryAfter,
			Msg: fmt.Sprintf("queue full (%d jobs)", s.cfg.QueueDepth),
		}, id, lane
	}

	j := &job{
		src:   req.Data,
		dst:   make([]complex128, req.N),
		done:  make(chan struct{}),
		start: start,
		id:    id,
		lane:  lane,
	}
	s.enqueue(plan, batchKey{plan: plan.Key(), inverse: req.Op == OpInverse}, j)
	<-j.done
	if j.err != nil {
		s.metrics.errors.Add(1)
		log.Error("transform failed", "err", j.err, "n", req.N, "trace_id", id.String())
		return &Response{Status: StatusInternal, Msg: j.err.Error()}, id, lane
	}
	return &Response{Status: StatusOK, Data: j.dst}, id, lane
}

// resolvePlan maps request parameters to a cached plan, building through
// the cache on a miss. A nil plan comes with a ready error response.
func (s *Server) resolvePlan(req *Request) (*soifft.Plan, *Response) {
	var opts []soifft.Option
	if req.Segments > 0 {
		opts = append(opts, soifft.WithSegments(req.Segments))
	}
	if req.Mu > 0 && req.Nu > 0 {
		opts = append(opts, soifft.WithOversampling(req.Mu, req.Nu))
	}
	if req.Accuracy >= 0 {
		opts = append(opts, soifft.WithAccuracy(soifft.Accuracy(req.Accuracy)))
	} else if req.Taps > 0 {
		opts = append(opts, soifft.WithTaps(req.Taps))
	}
	if s.cfg.Instrument > soifft.InstrumentOff {
		// Excluded from the cache key (it does not change the transform),
		// so instrumented and plain requests share one plan.
		opts = append(opts, soifft.WithInstrumentation(s.cfg.Instrument))
	}
	plan, _, err := s.cache.Get(req.N, opts...)
	if err != nil {
		s.metrics.errors.Add(1)
		return nil, &Response{Status: StatusBadRequest, Msg: err.Error()}
	}
	return plan, nil
}

// enqueue adds a job to the key's batcher, flushing when the batch is
// full (or immediately while draining or when coalescing is off).
func (s *Server) enqueue(plan *soifft.Plan, key batchKey, j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.batchers[key]
	if b == nil {
		b = &batcher{plan: plan}
		s.batchers[key] = b
	}
	b.jobs = append(b.jobs, j)
	s.cfg.Tracer.Begin(j.id, j.lane, "batch_linger")
	if len(b.jobs) >= s.cfg.MaxBatch || s.cfg.MaxLinger <= 0 || s.draining {
		s.flushLocked(key, b)
		return
	}
	if len(b.jobs) == 1 {
		b.timer = time.AfterFunc(s.cfg.MaxLinger, func() {
			s.mu.Lock()
			defer s.mu.Unlock()
			if cur := s.batchers[key]; cur == b && len(b.jobs) > 0 {
				s.flushLocked(key, b)
			}
		})
	}
}

// flushLocked hands the batcher's jobs to the worker pool. Callers hold
// s.mu. The work channel's capacity equals QueueDepth, which bounds
// total queued jobs (and hence batches), so the send cannot block.
func (s *Server) flushLocked(key batchKey, b *batcher) {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	jobs := b.jobs
	b.jobs = nil
	delete(s.batchers, key)
	for _, j := range jobs {
		s.cfg.Tracer.End(j.id, j.lane, "batch_linger")
		s.cfg.Tracer.Begin(j.id, j.lane, "queue_wait")
	}
	s.work <- &batch{plan: b.plan, inverse: key.inverse, jobs: jobs}
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for b := range s.work {
		s.runBatch(b)
	}
}

// runBatch executes one batch: forward batches through one contiguous
// TransformBatch call, inverse batches as a loop under one work unit.
func (s *Server) runBatch(b *batch) {
	s.mu.Lock()
	hook := s.execHook
	s.mu.Unlock()
	if hook != nil {
		hook()
	}
	m := len(b.jobs)
	s.metrics.observeBatch(m)
	n := b.plan.N()

	// Close out the queue-wait spans, open execute, and build the batch
	// context: the tracer and the first job's trace ID ride it so the
	// plan's pipeline-stage spans nest under this batch without mutating
	// the shared cached plan.
	tr := s.cfg.Tracer
	execStart := time.Now()
	ctx := context.Background()
	if tr != nil {
		for _, j := range b.jobs {
			tr.End(j.id, j.lane, "queue_wait")
			tr.Begin(j.id, j.lane, "execute")
			s.metrics.latQueue.observe(execStart.Sub(j.start))
		}
		ctx = trace.WithTracer(trace.WithID(ctx, b.jobs[0].id), tr)
	} else {
		for _, j := range b.jobs {
			s.metrics.latQueue.observe(execStart.Sub(j.start))
		}
	}

	switch {
	case b.inverse:
		for _, j := range b.jobs {
			j.err = b.plan.InverseContext(ctx, j.dst, j.src)
		}
	case m == 1:
		b.jobs[0].err = b.plan.TransformContext(ctx, b.jobs[0].dst, b.jobs[0].src)
	default:
		src := make([]complex128, m*n)
		dst := make([]complex128, m*n)
		for i, j := range b.jobs {
			copy(src[i*n:(i+1)*n], j.src)
		}
		err := b.plan.TransformBatchContext(ctx, dst, src, m)
		for i, j := range b.jobs {
			if err != nil {
				j.err = err
			} else {
				copy(j.dst, dst[i*n:(i+1)*n])
			}
		}
	}

	execDur := time.Since(execStart)
	for _, j := range b.jobs {
		s.metrics.latExec.observe(execDur)
		tr.End(j.id, j.lane, "execute")
	}
	s.queued.Add(int64(-m))
	for _, j := range b.jobs {
		close(j.done)
	}
}

// Shutdown drains the server: it stops accepting connections, lets every
// accepted request finish and receive its response, flushes lingering
// batches immediately, stops the workers and closes idle connections.
// Requests arriving on open connections after drain begins receive
// StatusDraining. If ctx expires first, remaining connections are closed
// and ctx's error returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	for key, b := range s.batchers {
		if len(b.jobs) > 0 {
			s.flushLocked(key, b)
		}
	}
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		// Force path: sever the connections but leave the worker pool
		// running — handlers may still be enqueueing, and closing the
		// work channel under them would panic. Workers idle harmlessly
		// until process exit.
		s.closeConns()
		return ctx.Err()
	}
	close(s.work)
	s.workerWG.Wait()
	s.closeConns()
	s.connWG.Wait()
	return nil
}

func (s *Server) closeConns() {
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
}
