package serve

// SetExecHook installs a function the worker pool runs at the start of
// every batch — a test seam for holding the queue occupied
// deterministically.
func (s *Server) SetExecHook(fn func()) {
	s.mu.Lock()
	s.execHook = fn
	s.mu.Unlock()
}
