package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"soifft"
	"soifft/client"
	"soifft/internal/serve"
	"soifft/internal/signal"
	"soifft/internal/trace"
)

// TestProtocolVersionRoundTrip pins the two wire forms: a v2 request
// carries its trace ID through, and a v1 request (8 bytes shorter) is
// still accepted with a zero trace ID and its version recorded.
func TestProtocolVersionRoundTrip(t *testing.T) {
	data := signal.Random(16, 3)

	var v2 bytes.Buffer
	req := &serve.Request{Op: serve.OpForward, N: 16, Accuracy: serve.AccuracyNone,
		TraceID: 0xdeadbeefcafe, Data: data}
	if err := serve.WriteRequest(&v2, req); err != nil {
		t.Fatal(err)
	}
	v2Len := v2.Len()
	got, err := serve.ReadRequest(&v2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 0xdeadbeefcafe || got.Proto != serve.Version {
		t.Fatalf("v2 round trip: TraceID=%#x Proto=%d", got.TraceID, got.Proto)
	}

	var v1 bytes.Buffer
	reqV1 := &serve.Request{Op: serve.OpForward, N: 16, Accuracy: serve.AccuracyNone,
		TraceID: 0xdeadbeefcafe, Proto: serve.VersionV1, Data: data}
	if err := serve.WriteRequest(&v1, reqV1); err != nil {
		t.Fatal(err)
	}
	if want := v2Len - 8; v1.Len() != want {
		t.Fatalf("v1 frame is %d bytes, want %d (no trace ID)", v1.Len(), want)
	}
	gotV1, err := serve.ReadRequest(&v1, 1<<20)
	if err != nil {
		t.Fatalf("v1 frame rejected: %v", err)
	}
	if gotV1.TraceID != 0 || gotV1.Proto != serve.VersionV1 {
		t.Fatalf("v1 round trip: TraceID=%#x Proto=%d", gotV1.TraceID, gotV1.Proto)
	}

	// Responses echo the requested version byte so a v1 reader accepts
	// what a v2 server writes back.
	var resp bytes.Buffer
	if err := serve.WriteResponse(&resp, &serve.Response{Proto: serve.VersionV1, Data: data}); err != nil {
		t.Fatal(err)
	}
	r, err := serve.ReadResponse(&resp, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Proto != serve.VersionV1 {
		t.Fatalf("response version = %d, want echoed v1", r.Proto)
	}
}

// TestV1ClientAgainstServer speaks the old protocol over a real
// connection: a v2 server must answer a 44-byte-header client with a
// correct transform and a v1 version byte.
func TestV1ClientAgainstServer(t *testing.T) {
	s := startServer(t, serve.Config{Workers: 1, MaxBatch: 1})
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	src := signal.Random(1024, 11)
	req := &serve.Request{Op: serve.OpForward, N: len(src), Accuracy: serve.AccuracyNone,
		Segments: 8, Taps: 32, Proto: serve.VersionV1, Data: src}
	bw := bufio.NewWriter(conn)
	if err := serve.WriteRequest(bw, req); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	resp, err := serve.ReadResponse(bufio.NewReader(conn), 1<<20)
	if err != nil {
		t.Fatalf("v1 client could not read response: %v", err)
	}
	if resp.Status != serve.StatusOK {
		t.Fatalf("status %v: %s", resp.Status, resp.Msg)
	}
	if resp.Proto != serve.VersionV1 {
		t.Fatalf("server answered a v1 request with version %d", resp.Proto)
	}
	ref, err := soifft.FFT(src)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(resp.Data, ref); e > 1e-3 {
		t.Fatalf("v1 transform rel err %.3e", e)
	}
}

// TestRequestTraceSpans drives a traced request end to end: the trace
// ID minted client-side must stamp the server's request span and all
// four lifecycle children, and /debug/flight must serve the ring.
func TestRequestTraceSpans(t *testing.T) {
	tr := trace.New(4096)
	s := startServer(t, serve.Config{Workers: 1, MaxBatch: 2, Tracer: tr})
	c := dial(t, s)

	id := trace.NewID()
	ctx := trace.WithID(context.Background(), id)
	src := signal.Random(1024, 5)
	if _, err := c.TransformContext(ctx, src, &client.Options{Segments: 8, Taps: 32}); err != nil {
		t.Fatal(err)
	}

	want := map[string]bool{
		"request": false, "batch_linger": false, "queue_wait": false,
		"execute": false, "write_back": false,
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		for _, ev := range tr.Snapshot() {
			if ev.Trace != id || ev.Kind != trace.KindBegin {
				continue
			}
			if _, ok := want[ev.Name]; ok {
				want[ev.Name] = true
			}
		}
		missing := 0
		for _, seen := range want {
			if !seen {
				missing++
			}
		}
		if missing == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("spans missing for trace %v: %v", id, want)
		}
		time.Sleep(10 * time.Millisecond) // write_back lands after the response
	}

	rr := httptest.NewRecorder()
	rq := httptest.NewRequest("GET", "/debug/flight", nil)
	s.Metrics().Handler().ServeHTTP(rr, rq)
	if rr.Code != 200 {
		t.Fatalf("/debug/flight status %d", rr.Code)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/debug/flight body is not trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("/debug/flight returned an empty timeline")
	}
}
