// Package serve is the FFT-as-a-service layer: a TCP server that
// resolves transform requests through an LRU plan cache, coalesces
// same-plan requests into batches executed on a bounded worker pool,
// applies backpressure when the queue fills, drains gracefully on
// shutdown, and exports live metrics over HTTP.
//
// The wire protocol is length-prefixed frames in the style of
// internal/mpinet (stdlib only, little-endian): one request frame in,
// one response frame out, repeated over a long-lived connection. A
// request names the plan (n, segments, oversampling, taps or accuracy
// rung) and direction, followed by the payload; the response carries a
// status, an optional message and retry hint, and the transformed
// payload.
package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// Wire constants. Protocol v2 appends a trace ID to the request header
// (trailing 8 bytes); v1 requests — the original 44-byte header — are
// still accepted, and responses echo the requester's version so v1
// clients never see a version byte they would reject.
const (
	Magic     = 0x53494F53 // "SOIS"
	Version   = 2
	VersionV1 = 1

	reqHeaderLenV1 = 44
	reqHeaderLen   = reqHeaderLenV1 + 8 // + trace ID
	respHeaderLen  = 24
)

// Op selects the operation a request performs.
type Op uint8

// Operations.
const (
	OpForward Op = 1 // dst = DFT(src)
	OpInverse Op = 2 // dst = IDFT(src)
	OpPing    Op = 3 // empty round trip (health/latency probe)
)

// AccuracyNone marks a request that sizes the convolution by explicit
// taps (or server defaults) rather than an accuracy rung.
const AccuracyNone = -1

// Request is one transform request. Zero parameter fields mean "server
// default" (the server resolves them exactly as soifft.NewPlan would).
type Request struct {
	Op       Op
	N        int
	Segments int    // 0 = default
	Mu, Nu   int    // 0,0 = default oversampling 5/4
	Taps     int    // 0 = default (ignored when Accuracy >= 0)
	Accuracy int    // AccuracyNone, or a soifft.Accuracy value
	TraceID  uint64 // distributed-tracing correlation ID (0 = untraced; v2 only)
	Proto    uint8  // wire version to use / that was used (0 = current Version)
	Data     []complex128
}

// proto resolves the version a frame should be written with.
func (req *Request) proto() uint8 {
	if req.Proto == 0 {
		return Version
	}
	return req.Proto
}

// Status is the response disposition.
type Status uint8

// Response statuses.
const (
	StatusOK         Status = 0
	StatusBadRequest Status = 1 // malformed or unplannable request
	StatusOverloaded Status = 2 // queue full; retry after the hint
	StatusDraining   Status = 3 // server is shutting down; retry elsewhere
	StatusInternal   Status = 4 // transform failed server-side
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBadRequest:
		return "bad-request"
	case StatusOverloaded:
		return "overloaded"
	case StatusDraining:
		return "draining"
	case StatusInternal:
		return "internal"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Response is one reply frame.
type Response struct {
	Status     Status
	RetryAfter time.Duration // backpressure hint (Overloaded/Draining)
	Msg        string        // human-readable detail for non-OK statuses
	Proto      uint8         // version byte to write / that was read (0 = current Version)
	Data       []complex128
}

// ServerError is the typed error a non-OK response converts to on the
// client side.
type ServerError struct {
	Status     Status
	Msg        string
	RetryAfter time.Duration
}

func (e *ServerError) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("soiserve: %s: %s", e.Status, e.Msg)
	}
	return fmt.Sprintf("soiserve: %s", e.Status)
}

// Temporary reports whether retrying the same request later can succeed.
func (e *ServerError) Temporary() bool {
	return e.Status == StatusOverloaded || e.Status == StatusDraining
}

// IsOverloaded reports whether err is a backpressure rejection, and if
// so returns the server's retry-after hint.
func IsOverloaded(err error) (time.Duration, bool) {
	var se *ServerError
	if errors.As(err, &se) && se.Status == StatusOverloaded {
		return se.RetryAfter, true
	}
	return 0, false
}

// IsDraining reports whether err is a shutdown rejection.
func IsDraining(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Status == StatusDraining
}

// WriteRequest writes one request frame, in the version req.Proto
// selects (current when zero; the v1 form drops the trace ID).
func WriteRequest(w io.Writer, req *Request) error {
	var hdr [reqHeaderLen]byte
	ver := req.proto()
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	hdr[4] = ver
	hdr[5] = byte(req.Op)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(req.N))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(req.Segments))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(req.Mu))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(req.Nu))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(req.Taps))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(int32(req.Accuracy)))
	binary.LittleEndian.PutUint64(hdr[36:], uint64(len(req.Data)))
	n := reqHeaderLenV1
	if ver >= Version {
		binary.LittleEndian.PutUint64(hdr[reqHeaderLenV1:], req.TraceID)
		n = reqHeaderLen
	}
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	return writeComplex(w, req.Data)
}

// ReadRequest reads one request frame, rejecting payloads longer than
// maxCount points. Both protocol versions are accepted: the version
// byte decides whether the trailing trace ID is present, and the frame
// version read is recorded in req.Proto so responses can echo it.
func ReadRequest(r io.Reader, maxCount int) (*Request, error) {
	var hdr [reqHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:reqHeaderLenV1]); err != nil {
		return nil, err
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != Magic {
		return nil, fmt.Errorf("serve: bad magic %#x", m)
	}
	ver := hdr[4]
	if ver != VersionV1 && ver != Version {
		return nil, fmt.Errorf("serve: protocol version %d unsupported (want %d or %d)", ver, VersionV1, Version)
	}
	req := &Request{
		Op:       Op(hdr[5]),
		N:        int(binary.LittleEndian.Uint64(hdr[8:])),
		Segments: int(binary.LittleEndian.Uint32(hdr[16:])),
		Mu:       int(binary.LittleEndian.Uint32(hdr[20:])),
		Nu:       int(binary.LittleEndian.Uint32(hdr[24:])),
		Taps:     int(binary.LittleEndian.Uint32(hdr[28:])),
		Accuracy: int(int32(binary.LittleEndian.Uint32(hdr[32:]))),
		Proto:    ver,
	}
	count := binary.LittleEndian.Uint64(hdr[36:])
	if ver >= Version {
		if _, err := io.ReadFull(r, hdr[reqHeaderLenV1:]); err != nil {
			return nil, err
		}
		req.TraceID = binary.LittleEndian.Uint64(hdr[reqHeaderLenV1:])
	}
	if count > uint64(maxCount) {
		return nil, fmt.Errorf("serve: payload of %d points exceeds limit %d", count, maxCount)
	}
	data, err := readComplex(r, int(count))
	if err != nil {
		return nil, err
	}
	req.Data = data
	return req, nil
}

// WriteResponse writes one response frame. The response layout is
// identical across protocol versions; the version byte echoes
// resp.Proto (current when zero) so a v1 client reads a v1 byte back.
func WriteResponse(w io.Writer, resp *Response) error {
	msg := []byte(resp.Msg)
	ver := resp.Proto
	if ver == 0 {
		ver = Version
	}
	var hdr [respHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], Magic)
	hdr[4] = ver
	hdr[5] = byte(resp.Status)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(resp.RetryAfter/time.Millisecond))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(msg)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(len(resp.Data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(msg) > 0 {
		if _, err := w.Write(msg); err != nil {
			return err
		}
	}
	return writeComplex(w, resp.Data)
}

// ReadResponse reads one response frame, rejecting payloads longer than
// maxCount points.
func ReadResponse(r io.Reader, maxCount int) (*Response, error) {
	var hdr [respHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != Magic {
		return nil, fmt.Errorf("serve: bad magic %#x", m)
	}
	v := hdr[4]
	if v != VersionV1 && v != Version {
		return nil, fmt.Errorf("serve: protocol version %d unsupported (want %d or %d)", v, VersionV1, Version)
	}
	resp := &Response{
		Status:     Status(hdr[5]),
		RetryAfter: time.Duration(binary.LittleEndian.Uint32(hdr[8:])) * time.Millisecond,
		Proto:      v,
	}
	msgLen := binary.LittleEndian.Uint32(hdr[12:])
	count := binary.LittleEndian.Uint64(hdr[16:])
	if msgLen > 1<<16 {
		return nil, fmt.Errorf("serve: message of %d bytes exceeds limit", msgLen)
	}
	if count > uint64(maxCount) {
		return nil, fmt.Errorf("serve: payload of %d points exceeds limit %d", count, maxCount)
	}
	if msgLen > 0 {
		msg := make([]byte, msgLen)
		if _, err := io.ReadFull(r, msg); err != nil {
			return nil, err
		}
		resp.Msg = string(msg)
	}
	data, err := readComplex(r, int(count))
	if err != nil {
		return nil, err
	}
	resp.Data = data
	return resp, nil
}

// Err converts a non-OK response into a *ServerError (nil for OK).
func (resp *Response) Err() error {
	if resp.Status == StatusOK {
		return nil
	}
	return &ServerError{Status: resp.Status, Msg: resp.Msg, RetryAfter: resp.RetryAfter}
}

func writeComplex(w io.Writer, data []complex128) error {
	if len(data) == 0 {
		return nil
	}
	buf := make([]byte, 16*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(buf[i*16:], math.Float64bits(real(v)))
		binary.LittleEndian.PutUint64(buf[i*16+8:], math.Float64bits(imag(v)))
	}
	_, err := w.Write(buf)
	return err
}

func readComplex(r io.Reader, count int) ([]complex128, error) {
	if count == 0 {
		return nil, nil
	}
	raw := make([]byte, 16*count)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, err
	}
	data := make([]complex128, count)
	for i := range data {
		re := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*16:]))
		im := math.Float64frombits(binary.LittleEndian.Uint64(raw[i*16+8:]))
		data[i] = complex(re, im)
	}
	return data, nil
}
