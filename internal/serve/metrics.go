package serve

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"soifft"
	"soifft/internal/telemetry"
)

// Metrics is the server's live instrumentation: monotonic counters
// updated on the hot path plus computed gauges (queue depth, cache
// stats) sampled at scrape time. All methods are safe for concurrent
// use.
type Metrics struct {
	start time.Time

	requests atomic.Int64 // accepted transform/ping requests
	rejected atomic.Int64 // backpressure rejections
	drained  atomic.Int64 // requests refused because the server is draining
	errors   atomic.Int64 // bad-request + internal errors
	bytesIn  atomic.Int64
	bytesOut atomic.Int64

	batches  atomic.Int64 // TransformBatch/inverse batches executed
	batchJob atomic.Int64 // jobs carried by those batches
	maxBatch atomic.Int64 // largest batch observed

	// batchBuckets histograms batch sizes: 1, 2-3, 4-7, 8-15, >=16.
	batchBuckets [5]atomic.Int64
	// latBuckets histograms request latency: <1ms, <10ms, <100ms, <1s, >=1s.
	latBuckets [5]atomic.Int64
	latTotalUS atomic.Int64

	// Per-request latency histograms with log2 buckets (1µs·2^i),
	// split by where the time went.
	latQueue latHist // admission to batch execution start
	latExec  latHist // batch transform duration
	latTotal latHist // request round trip inside the server

	// sampled at scrape time by the owning server.
	queueDepth func() int64
	cacheVars  func() map[string]any
	healthy    func() bool
	plans      func() []soifft.CachedPlan
	// flight, when set, streams the tracer's flight-recorder ring as
	// Perfetto JSON (the /debug/flight endpoint).
	flight func(w io.Writer) error
}

// latHistBuckets is the bucket count of the log2 latency histograms:
// upper bounds 1µs·2^i for i ∈ [0, latHistBuckets), ~1µs to ~1s, plus
// the implicit +Inf bucket.
const latHistBuckets = 21

// latHist is a log2-bucketed latency histogram in the Prometheus
// cumulative style: bucket i counts observations ≤ 1µs·2^i, overflow
// lands in +Inf, and sum/count give the mean.
type latHist struct {
	buckets [latHistBuckets + 1]atomic.Int64
	sumUS   atomic.Int64
	count   atomic.Int64
}

func (h *latHist) observe(d time.Duration) {
	us := d.Microseconds()
	h.sumUS.Add(us)
	h.count.Add(1)
	i := 0
	for i < latHistBuckets && us > int64(1)<<i {
		i++
	}
	h.buckets[i].Add(1)
}

// snapshot renders the histogram as upper-bound → count pairs
// (cumulative) plus sum and count.
func (h *latHist) snapshot() map[string]any {
	counts := map[string]int64{}
	var cum int64
	for i := 0; i <= latHistBuckets; i++ {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < latHistBuckets {
			le = fmt.Sprintf("%dus", int64(1)<<i)
		}
		if cum > 0 {
			counts[le] = cum
		}
	}
	return map[string]any{
		"buckets": counts,
		"sum_us":  h.sumUS.Load(),
		"count":   h.count.Load(),
	}
}

// writeProm emits the histogram as a Prometheus histogram series
// (cumulative _bucket with le labels in seconds, _sum, _count).
func (h *latHist) writeProm(w io.Writer, name string) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	var cum int64
	for i := 0; i <= latHistBuckets; i++ {
		cum += h.buckets[i].Load()
		if i < latHistBuckets {
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", name, float64(int64(1)<<i)/1e6, cum)
		} else {
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		}
	}
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumUS.Load())/1e6)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

var batchBucketNames = [5]string{"1", "2-3", "4-7", "8-15", "16+"}
var latBucketNames = [5]string{"lt_1ms", "lt_10ms", "lt_100ms", "lt_1s", "ge_1s"}

func newMetrics() *Metrics {
	return &Metrics{start: time.Now()}
}

func (m *Metrics) observeBatch(size int) {
	m.batches.Add(1)
	m.batchJob.Add(int64(size))
	for {
		cur := m.maxBatch.Load()
		if int64(size) <= cur || m.maxBatch.CompareAndSwap(cur, int64(size)) {
			break
		}
	}
	switch {
	case size <= 1:
		m.batchBuckets[0].Add(1)
	case size <= 3:
		m.batchBuckets[1].Add(1)
	case size <= 7:
		m.batchBuckets[2].Add(1)
	case size <= 15:
		m.batchBuckets[3].Add(1)
	default:
		m.batchBuckets[4].Add(1)
	}
}

func (m *Metrics) observeLatency(d time.Duration) {
	m.latTotalUS.Add(d.Microseconds())
	switch {
	case d < time.Millisecond:
		m.latBuckets[0].Add(1)
	case d < 10*time.Millisecond:
		m.latBuckets[1].Add(1)
	case d < 100*time.Millisecond:
		m.latBuckets[2].Add(1)
	case d < time.Second:
		m.latBuckets[3].Add(1)
	default:
		m.latBuckets[4].Add(1)
	}
}

// Counter accessors for tests and operators.

// Requests returns the count of accepted requests.
func (m *Metrics) Requests() int64 { return m.requests.Load() }

// Rejected returns the count of backpressure rejections.
func (m *Metrics) Rejected() int64 { return m.rejected.Load() }

// Batches returns the count of executed batches.
func (m *Metrics) Batches() int64 { return m.batches.Load() }

// MaxBatch returns the largest batch size observed.
func (m *Metrics) MaxBatch() int64 { return m.maxBatch.Load() }

// BytesIn returns the bytes read from clients.
func (m *Metrics) BytesIn() int64 { return m.bytesIn.Load() }

// BytesOut returns the bytes written to clients.
func (m *Metrics) BytesOut() int64 { return m.bytesOut.Load() }

// Snapshot renders every metric as a JSON-encodable tree, the value
// served under the "soiserve" key of /debug/vars.
func (m *Metrics) Snapshot() map[string]any {
	batchHist := map[string]int64{}
	for i, name := range batchBucketNames {
		batchHist[name] = m.batchBuckets[i].Load()
	}
	latHist := map[string]int64{}
	for i, name := range latBucketNames {
		latHist[name] = m.latBuckets[i].Load()
	}
	snap := map[string]any{
		"uptime_seconds":   int64(time.Since(m.start).Seconds()),
		"requests_total":   m.requests.Load(),
		"rejected_total":   m.rejected.Load(),
		"drained_total":    m.drained.Load(),
		"errors_total":     m.errors.Load(),
		"bytes_in":         m.bytesIn.Load(),
		"bytes_out":        m.bytesOut.Load(),
		"batches_total":    m.batches.Load(),
		"batched_jobs":     m.batchJob.Load(),
		"batch_size_max":   m.maxBatch.Load(),
		"batch_size_hist":  batchHist,
		"latency_hist":     latHist,
		"latency_total_us": m.latTotalUS.Load(),
		"latency_log2": map[string]any{
			"queue_wait": m.latQueue.snapshot(),
			"execute":    m.latExec.snapshot(),
			"total":      m.latTotal.snapshot(),
		},
	}
	if m.queueDepth != nil {
		snap["queue_depth"] = m.queueDepth()
	}
	if m.cacheVars != nil {
		snap["plan_cache"] = m.cacheVars()
	}
	return snap
}

// Health is the JSON body /healthz serves alongside its status code:
// enough detail for a gateway to weight replicas (queue depth, warm
// plan count) and to distinguish draining from dead. The status-code
// contract is unchanged — 200 while serving, 503 once draining — so
// existing bare probes keep working.
type Health struct {
	Status     string `json:"status"` // "ok" or "draining"
	Draining   bool   `json:"draining"`
	QueueDepth int64  `json:"queue_depth"`
	WarmPlans  int    `json:"warm_plans"` // resident plans in the cache
}

// Health assembles the current /healthz body.
func (m *Metrics) Health() Health {
	h := Health{Status: "ok"}
	if m.healthy != nil && !m.healthy() {
		h.Status, h.Draining = "draining", true
	}
	if m.queueDepth != nil {
		h.QueueDepth = m.queueDepth()
	}
	if m.plans != nil {
		h.WarmPlans = len(m.plans())
	}
	return h
}

// Handler returns the metrics HTTP mux: /debug/vars in expvar format
// (process-wide expvar variables plus this server's "soiserve" tree)
// and /healthz reporting 200 while serving, 503 once draining, with a
// JSON Health body either way.
func (m *Metrics) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprintf(w, "{\n")
		first := true
		expvar.Do(func(kv expvar.KeyValue) {
			if !first {
				fmt.Fprintf(w, ",\n")
			}
			first = false
			fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
		})
		own, err := json.Marshal(m.Snapshot())
		if err != nil {
			own = []byte(`"unserializable"`)
		}
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		fmt.Fprintf(w, "%q: %s", "soiserve", own)
		fmt.Fprintf(w, "\n}\n")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		h := m.Health()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if h.Draining {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(h)
	})
	mux.HandleFunc("/metrics", m.writePrometheus)
	mux.Handle("/debug/cluster", telemetry.Handler(m.ClusterSnapshot))
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		if m.flight == nil {
			http.Error(w, "tracing is not enabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := m.flight(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writePrometheus serves /metrics: the server's own counters as
// soiserve_* series, then — when the owning server instruments its plans
// — every resident plan's pipeline counters as soifft_* series labelled
// with the plan's canonical key.
func (m *Metrics) writePrometheus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE soiserve_%s counter\n", name)
		fmt.Fprintf(w, "soiserve_%s %d\n", name, v)
	}
	gauge := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE soiserve_%s gauge\n", name)
		fmt.Fprintf(w, "soiserve_%s %d\n", name, v)
	}
	counter("requests_total", m.requests.Load())
	counter("rejected_total", m.rejected.Load())
	counter("drained_total", m.drained.Load())
	counter("errors_total", m.errors.Load())
	counter("bytes_in_total", m.bytesIn.Load())
	counter("bytes_out_total", m.bytesOut.Load())
	counter("batches_total", m.batches.Load())
	counter("batched_jobs_total", m.batchJob.Load())
	gauge("batch_size_max", m.maxBatch.Load())
	gauge("uptime_seconds", int64(time.Since(m.start).Seconds()))
	if m.queueDepth != nil {
		gauge("queue_depth", m.queueDepth())
	}
	m.latQueue.writeProm(w, "soiserve_queue_wait_seconds")
	m.latExec.writeProm(w, "soiserve_execute_seconds")
	m.latTotal.writeProm(w, "soiserve_request_seconds")
	if m.plans != nil {
		for _, cp := range m.plans() {
			_ = cp.Plan.WriteMetrics(w, map[string]string{"plan": cp.Key.String()})
		}
	}
}

// countingReader counts bytes read into the metrics.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// countingWriter counts bytes written into the metrics.
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}
