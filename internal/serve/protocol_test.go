package serve

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestRequestRoundTrip(t *testing.T) {
	req := &Request{
		Op: OpForward, N: 4, Segments: 2, Mu: 5, Nu: 4, Taps: 24,
		Accuracy: AccuracyNone,
		Data:     []complex128{1, 2i, -3, complex(0.5, -0.25)},
	}
	var buf bytes.Buffer
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(&buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != req.Op || got.N != req.N || got.Segments != req.Segments ||
		got.Mu != req.Mu || got.Nu != req.Nu || got.Taps != req.Taps ||
		got.Accuracy != req.Accuracy {
		t.Fatalf("header round trip: %+v != %+v", got, req)
	}
	for i := range req.Data {
		if got.Data[i] != req.Data[i] {
			t.Fatalf("payload[%d] = %v, want %v", i, got.Data[i], req.Data[i])
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{
		Status: StatusOverloaded, RetryAfter: 25 * time.Millisecond,
		Msg: "queue full (256 jobs)",
	}
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(&buf, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != resp.Status || got.RetryAfter != resp.RetryAfter || got.Msg != resp.Msg {
		t.Fatalf("round trip: %+v != %+v", got, resp)
	}
	var se *ServerError
	if err := got.Err(); !errors.As(err, &se) || !se.Temporary() {
		t.Fatalf("expected temporary ServerError, got %v", err)
	}
	if wait, ok := IsOverloaded(got.Err()); !ok || wait != 25*time.Millisecond {
		t.Fatalf("IsOverloaded = %v, %v", wait, ok)
	}
}

func TestReadRequestLimits(t *testing.T) {
	var buf bytes.Buffer
	req := &Request{Op: OpForward, N: 16, Accuracy: AccuracyNone, Data: make([]complex128, 16)}
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRequest(&buf, 8); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversize payload: err = %v", err)
	}
	// Bad magic.
	if _, err := ReadRequest(strings.NewReader(strings.Repeat("x", reqHeaderLen)), 8); err == nil {
		t.Fatal("bad magic accepted")
	}
}
