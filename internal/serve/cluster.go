package serve

import (
	"soifft/internal/telemetry"
)

// ClusterSnapshot assembles the serving tier's single-replica telemetry
// view: the replica is a world of one rank whose counters sum over
// every resident instrumented plan, run through the same aggregator and
// explainer as a distributed run so /debug/cluster serves the identical
// document shape on a replica and on soinode rank 0 — and so a gateway
// can merge replica snapshots into its fleet roll-up. Returns nil when
// no resident plan is instrumented (the endpoint answers 404).
func (m *Metrics) ClusterSnapshot() *telemetry.ClusterSnapshot {
	if m.plans == nil {
		return nil
	}
	f := &telemetry.StatFrame{World: 1, Seq: 1, Shape: telemetry.Shape{Parity: -1}}
	var shapeTransforms int64 = -1
	for _, cp := range m.plans() {
		rec := cp.Plan.Internal().Recorder()
		if !rec.On() {
			continue
		}
		snap := rec.Snapshot()
		f.Accumulate(snap)
		// The frame carries one shape; report the busiest plan's.
		if snap.Transforms > shapeTransforms {
			shapeTransforms = snap.Transforms
			f.Shape = telemetry.Shape{
				N:        cp.Plan.N(),
				Segments: cp.Plan.Segments(),
				Taps:     cp.Plan.Taps(),
				Beta:     cp.Plan.Oversampling(),
				Parity:   -1,
			}
		}
	}
	if shapeTransforms < 0 {
		return nil
	}
	agg := telemetry.NewAggregator(1)
	agg.Observe(f)
	s := agg.Snapshot()
	telemetry.Explain(s)
	return s
}
