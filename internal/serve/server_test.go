package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"soifft"
	"soifft/client"
	"soifft/internal/serve"
	"soifft/internal/signal"
	"soifft/internal/telemetry"
)

// startServer binds an ephemeral port and runs the accept loop,
// shutting the server down at test end.
func startServer(t *testing.T, cfg serve.Config) *serve.Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s := serve.New(cfg)
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return s
}

func dial(t *testing.T, s *serve.Server) *client.Client {
	t.Helper()
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// relErr is the L2 relative error between two complex vectors.
func relErr(got, ref []complex128) float64 { return signal.RelErrL2(got, ref) }

// TestConcurrentClientsBatching is the serving-shape test: M goroutines
// submit same-shape requests; every answer must match soifft.FFT within
// the plan's PredictedDigits, at least one multi-request batch must
// form, and the plan cache must show a >= 90% hit rate after warmup.
func TestConcurrentClientsBatching(t *testing.T) {
	const (
		n        = 1024
		clients  = 8
		perConn  = 5
		segments = 8
		taps     = 32
	)
	s := startServer(t, serve.Config{
		Workers:   2,
		MaxBatch:  4,
		MaxLinger: 50 * time.Millisecond,
	})
	opt := &client.Options{Segments: segments, Taps: taps}

	// Warm the plan (the one cold build the cache amortizes).
	warm := dial(t, s)
	src := signal.Random(n, 7)
	if _, err := warm.Transform(src, opt); err != nil {
		t.Fatal(err)
	}

	plan, err := soifft.NewPlan(n, soifft.WithSegments(segments), soifft.WithTaps(taps))
	if err != nil {
		t.Fatal(err)
	}
	tol := math.Pow(10, -(plan.PredictedDigits() - 1))
	ref, err := soifft.FFT(src)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients*perConn)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := client.Dial(s.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for k := 0; k < perConn; k++ {
				got, err := c.Transform(src, opt)
				if err != nil {
					errs <- err
					return
				}
				if e := relErr(got, ref); e > tol {
					errs <- fmt.Errorf("rel err %.3e exceeds tolerance %.3e", e, tol)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if got := s.Metrics().Requests(); got != clients*perConn+1 {
		t.Errorf("requests_total = %d, want %d", got, clients*perConn+1)
	}
	if max := s.Metrics().MaxBatch(); max < 2 {
		t.Errorf("no multi-request batch formed (max batch %d)", max)
	}
	st := s.Cache().Stats()
	if st.Misses != 1 {
		t.Errorf("plan built %d times, want 1", st.Misses)
	}
	if rate := st.HitRate(); rate < 0.9 {
		t.Errorf("plan cache hit rate %.2f after warmup, want >= 0.90", rate)
	}
}

// TestInverseAndAccuracyRung covers the inverse direction and
// accuracy-rung plan addressing through the service.
func TestInverseAndAccuracyRung(t *testing.T) {
	const n = 1024
	s := startServer(t, serve.Config{MaxLinger: time.Millisecond})
	c := dial(t, s)
	src := signal.Random(n, 3)

	acc := soifft.Accuracy230dB
	opt := &client.Options{Segments: 8, Accuracy: acc, UseAccuracy: true}
	spec, err := c.Transform(src, opt)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.Inverse(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(back, src); e > 1e-8 {
		t.Errorf("service round trip rel err %.3e", e)
	}
	// Forward and inverse share one cached plan.
	if st := s.Cache().Stats(); st.Size != 1 || st.Misses != 1 {
		t.Errorf("cache after fwd+inv: %+v", st)
	}
}

// TestBackpressure fills a one-deep queue and checks that overflow gets
// a typed retryable rejection rather than blocking, and that the server
// keeps serving afterwards. An execution hook parks the worker so the
// queue is deterministically occupied when the overflow request lands.
func TestBackpressure(t *testing.T) {
	const n = 4096
	s := startServer(t, serve.Config{
		Workers:    1,
		MaxBatch:   1,
		QueueDepth: 1,
	})
	opt := &client.Options{Segments: 8, Taps: 48}
	// Warm the plan before installing the hook.
	if _, err := dial(t, s).Transform(signal.Random(n, 1), opt); err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	s.SetExecHook(func() { <-release })

	// Occupy the only queue slot: this request is admitted and its
	// batch handed to the (parked) worker, so queue depth stays 1.
	src := signal.Random(n, 2)
	occupier := dial(t, s)
	occupierDone := make(chan error, 1)
	go func() {
		_, err := occupier.Transform(src, opt)
		occupierDone <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.Metrics().Requests() < 2 { // warm + occupier admitted
		if time.Now().After(deadline) {
			t.Fatal("occupier request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	// Overflow: with the slot held, this must be rejected, typed and
	// with a retry hint — not blocked.
	_, err := dial(t, s).Transform(src, opt)
	if err == nil {
		t.Fatal("overflow request succeeded with a full queue")
	}
	wait, isOver := client.IsOverloaded(err)
	if !isOver || wait <= 0 {
		t.Fatalf("overflow error = %v, want typed overloaded with retry-after", err)
	}
	if got := s.Metrics().Rejected(); got != 1 {
		t.Errorf("rejected_total = %d, want 1", got)
	}

	// Release the worker: the occupied request completes normally and
	// the retry helper rides out any residual backpressure.
	close(release)
	if err := <-occupierDone; err != nil {
		t.Errorf("occupier request failed: %v", err)
	}
	c := dial(t, s)
	if _, err := c.TransformRetry(context.Background(), src, opt, 5); err != nil {
		t.Errorf("retry after backpressure: %v", err)
	}
}

// TestGracefulDrain checks the shutdown contract: every accepted
// request completes with an OK response (no connection reset), and
// requests arriving after drain begins get StatusDraining.
func TestGracefulDrain(t *testing.T) {
	const n = 4096
	cfg := serve.Config{
		Workers:   2,
		MaxBatch:  16,
		MaxLinger: 300 * time.Millisecond, // park requests in the linger window
	}
	cfg.Addr = "127.0.0.1:0"
	s := serve.New(cfg)
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve() }()

	opt := &client.Options{Segments: 8, Taps: 32}
	// Warm the plan so in-flight requests sit in the batcher, not a build.
	wc, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wc.Transform(signal.Random(n, 1), opt); err != nil {
		t.Fatal(err)
	}

	const loaded = 4
	src := signal.Random(n, 9)
	results := make(chan error, loaded)
	conns := make([]*client.Client, loaded)
	for i := range conns {
		c, err := client.Dial(s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	for _, c := range conns {
		go func(c *client.Client) {
			_, err := c.Transform(src, opt)
			results <- err
		}(c)
	}
	// Give the requests time to be accepted into the linger window,
	// then pull the plug while they are in flight.
	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for i := 0; i < loaded; i++ {
		if err := <-results; err != nil {
			t.Errorf("accepted request failed during drain: %v", err)
		}
	}
	if err := <-serveDone; err != nil {
		t.Errorf("serve returned %v", err)
	}

	// A request on a surviving connection now reports draining (or the
	// connection is already closed — never a silent wrong answer).
	if _, err := wc.Transform(src, opt); err == nil {
		t.Error("post-drain request succeeded")
	}
	for _, c := range conns {
		c.Close()
	}
	wc.Close()
}

// TestWisdomWarmedServer warms the cache from a wisdom document and
// checks the first request is a hit (no cold build), matching the
// wisdom plan bit-for-bit.
func TestWisdomWarmedServer(t *testing.T) {
	const n = 2048
	cold, err := soifft.NewPlan(n, soifft.WithSegments(8), soifft.WithTaps(48))
	if err != nil {
		t.Fatal(err)
	}
	var wisdom bytes.Buffer
	if err := cold.WriteWisdom(&wisdom); err != nil {
		t.Fatal(err)
	}

	s := startServer(t, serve.Config{MaxLinger: time.Millisecond})
	if _, err := s.Cache().WarmWisdom(&wisdom); err != nil {
		t.Fatal(err)
	}

	src := signal.Random(n, 5)
	want := make([]complex128, n)
	if err := cold.Transform(want, src); err != nil {
		t.Fatal(err)
	}
	got, err := dial(t, s).Transform(src, &client.Options{Segments: 8, Taps: 48})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("served spectrum differs from wisdom plan at %d", i)
		}
	}
	st := s.Cache().Stats()
	if st.Misses != 0 || st.Hits != 1 {
		t.Errorf("warmed cache: hits=%d misses=%d", st.Hits, st.Misses)
	}
}

// TestBadRequestAndPing covers validation failures and the health probe.
func TestBadRequestAndPing(t *testing.T) {
	s := startServer(t, serve.Config{})
	c := dial(t, s)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	// Segments that do not divide N are unplannable.
	_, err := c.Transform(make([]complex128, 1000), &client.Options{Segments: 7})
	if err == nil {
		t.Fatal("unplannable request succeeded")
	}
	if _, isOver := client.IsOverloaded(err); isOver || client.IsDraining(err) {
		t.Fatalf("validation failure mapped to wrong status: %v", err)
	}
}

// TestMetricsEndpoints scrapes /debug/vars and /healthz.
func TestMetricsEndpoints(t *testing.T) {
	const n = 512
	s := startServer(t, serve.Config{MaxLinger: time.Millisecond})
	c := dial(t, s)
	if _, err := c.Transform(signal.Random(n, 1), &client.Options{Segments: 4, Taps: 24}); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(s.Metrics().Handler())
	defer ts.Close()

	res, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != 200 {
		t.Errorf("healthz status %d", res.StatusCode)
	}
	// The body carries the health detail the gateway's prober reads:
	// status, draining flag, queue depth and warm-plan count.
	var h serve.Health
	if err := json.NewDecoder(res.Body).Decode(&h); err != nil {
		t.Fatalf("healthz body is not JSON: %v", err)
	}
	res.Body.Close()
	if h.Status != "ok" || h.Draining {
		t.Errorf("healthz body = %+v, want status ok and not draining", h)
	}
	if h.WarmPlans != 1 {
		t.Errorf("healthz warm_plans = %d, want 1 (one plan resolved)", h.WarmPlans)
	}

	res, err = ts.Client().Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var vars struct {
		Soiserve struct {
			Requests  int64          `json:"requests_total"`
			BytesIn   int64          `json:"bytes_in"`
			BytesOut  int64          `json:"bytes_out"`
			BatchHist map[string]any `json:"batch_size_hist"`
			PlanCache struct {
				Misses  uint64                 `json:"misses"`
				PerPlan map[string]interface{} `json:"per_plan"`
			} `json:"plan_cache"`
		} `json:"soiserve"`
	}
	if err := json.NewDecoder(res.Body).Decode(&vars); err != nil {
		t.Fatalf("debug/vars is not JSON: %v", err)
	}
	sv := vars.Soiserve
	if sv.Requests != 1 || sv.BytesIn == 0 || sv.BytesOut == 0 {
		t.Errorf("counters: requests=%d in=%d out=%d", sv.Requests, sv.BytesIn, sv.BytesOut)
	}
	if sv.PlanCache.Misses != 1 || len(sv.PlanCache.PerPlan) != 1 {
		t.Errorf("plan cache vars: %+v", sv.PlanCache)
	}
}

// TestPrometheusEndpoint scrapes /metrics on an instrumented server:
// the soiserve_* counters must reflect the request, and the resolved
// plan's own soifft_* pipeline counters must appear under its key label.
func TestPrometheusEndpoint(t *testing.T) {
	const n = 512
	s := startServer(t, serve.Config{
		MaxLinger:  time.Millisecond,
		Instrument: soifft.InstrumentCounters,
	})
	c := dial(t, s)
	if _, err := c.Transform(signal.Random(n, 1), &client.Options{Segments: 4, Taps: 24}); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(s.Metrics().Handler())
	defer ts.Close()
	res, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("/metrics status %d", res.StatusCode)
	}
	raw, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"soiserve_requests_total 1",
		"# TYPE soiserve_requests_total counter",
		"soiserve_queue_depth",
		`soifft_transforms_total{plan="n=512 p=4 mu=5 nu=4 b=24 win=auto"} 1`,
		`soifft_stage_calls_total{plan="n=512 p=4 mu=5 nu=4 b=24 win=auto",stage="convolve"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\n---\n%s", want, body)
		}
	}

	// pprof must be mounted on the same mux.
	res, err = ts.Client().Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Errorf("/debug/pprof/cmdline status %d", res.StatusCode)
	}
}

// TestDebugClusterEndpoint: /debug/cluster answers 404 on an
// uninstrumented server and serves the single-replica
// soifft-cluster/v1 snapshot — one rank carrying the summed plan
// counters — once the server instruments its plans.
func TestDebugClusterEndpoint(t *testing.T) {
	const n = 512
	bare := startServer(t, serve.Config{MaxLinger: time.Millisecond})
	cb := dial(t, bare)
	if _, err := cb.Transform(signal.Random(n, 1), &client.Options{Segments: 4, Taps: 24}); err != nil {
		t.Fatal(err)
	}
	tb := httptest.NewServer(bare.Metrics().Handler())
	defer tb.Close()
	res, err := tb.Client().Get(tb.URL + "/debug/cluster")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 404 {
		t.Errorf("uninstrumented /debug/cluster status = %d, want 404", res.StatusCode)
	}

	inst := startServer(t, serve.Config{
		MaxLinger:  time.Millisecond,
		Instrument: soifft.InstrumentTimers,
	})
	ci := dial(t, inst)
	if _, err := ci.Transform(signal.Random(n, 1), &client.Options{Segments: 4, Taps: 24}); err != nil {
		t.Fatal(err)
	}
	ti := httptest.NewServer(inst.Metrics().Handler())
	defer ti.Close()
	res, err = ti.Client().Get(ti.URL + "/debug/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("instrumented /debug/cluster status = %d, want 200", res.StatusCode)
	}
	var snap telemetry.ClusterSnapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatalf("cluster body is not JSON: %v", err)
	}
	if snap.Schema != telemetry.SnapshotSchema || snap.World != 1 || len(snap.Ranks) != 1 {
		t.Fatalf("snapshot schema=%q world=%d ranks=%d, want %q/1/1",
			snap.Schema, snap.World, len(snap.Ranks), telemetry.SnapshotSchema)
	}
	r0 := snap.Ranks[0]
	if !r0.Reported || r0.Transforms != 1 {
		t.Errorf("rank 0 reported=%v transforms=%d, want true/1", r0.Reported, r0.Transforms)
	}
	if r0.StageNs["convolve"] <= 0 {
		t.Errorf("convolve stage ns = %d, want > 0 with timers on", r0.StageNs["convolve"])
	}
	if snap.Shape.N != n {
		t.Errorf("snapshot shape N = %d, want %d", snap.Shape.N, n)
	}
}

// TestClientContext: a context cancelled before the request returns the
// context's error without poisoning the connection (nothing was sent),
// and the context-aware verbs work when the context is live.
func TestClientContext(t *testing.T) {
	const n = 512
	s := startServer(t, serve.Config{MaxLinger: time.Millisecond})
	c := dial(t, s)
	opt := &client.Options{Segments: 4, Taps: 24}
	src := signal.Random(n, 1)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.TransformContext(cancelled, src, opt); err != context.Canceled {
		t.Errorf("pre-cancelled TransformContext: %v, want context.Canceled", err)
	}
	if err := c.PingContext(cancelled); err != context.Canceled {
		t.Errorf("pre-cancelled PingContext: %v, want context.Canceled", err)
	}

	// The connection never carried the cancelled request, so it still works.
	if err := c.PingContext(context.Background()); err != nil {
		t.Fatalf("ping after cancelled request: %v", err)
	}
	got, err := c.TransformContext(context.Background(), src, opt)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := soifft.FFT(src)
	if err != nil {
		t.Fatal(err)
	}
	if re := relErr(got, ref); re > 1e-3 {
		t.Errorf("TransformContext answer off: rel err %g", re)
	}
}
