package fft2d

import (
	"strings"
	"testing"

	"soifft/internal/fft"
	"soifft/internal/mpi"
	"soifft/internal/signal"
)

// scatter returns rank r's local block of a row-major rows×cols matrix.
func scatter(g Grid, global []complex128, rank int) []complex128 {
	i, j := g.Coords(rank)
	lr, lc := g.LocalRows(), g.LocalCols()
	local := make([]complex128, lr*lc)
	for r := 0; r < lr; r++ {
		copy(local[r*lc:(r+1)*lc],
			global[(i*lr+r)*g.Cols+j*lc:(i*lr+r)*g.Cols+(j+1)*lc])
	}
	return local
}

// gather writes rank r's local block back into the global matrix.
func gather(g Grid, global, local []complex128, rank int) {
	i, j := g.Coords(rank)
	lr, lc := g.LocalRows(), g.LocalCols()
	for r := 0; r < lr; r++ {
		copy(global[(i*lr+r)*g.Cols+j*lc:(i*lr+r)*g.Cols+(j+1)*lc],
			local[r*lc:(r+1)*lc])
	}
}

func runGrid(t *testing.T, g Grid, src []complex128, inverse bool) ([]complex128, mpi.Stats) {
	t.Helper()
	w, err := mpi.NewWorld(g.Pr * g.Pc)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]complex128, g.Rows*g.Cols)
	err = w.Run(func(c *mpi.Comm) error {
		local := scatter(g, src, c.Rank())
		var res []complex128
		var err error
		if inverse {
			res, err = g.Inverse(c, local)
		} else {
			res, err = g.Forward(c, local)
		}
		if err != nil {
			return err
		}
		gather(g, out, res, c.Rank())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, w.Stats()
}

func TestDistributed2DMatchesSerial(t *testing.T) {
	cases := []struct{ rows, cols, pr, pc int }{
		{8, 8, 2, 2},
		{16, 32, 2, 4},
		{32, 16, 4, 2},
		{24, 36, 2, 3},
		{64, 64, 4, 4},
		{12, 12, 1, 2}, // degenerate row groups
		{12, 12, 3, 1}, // degenerate column groups
	}
	for _, cse := range cases {
		g, err := NewGrid(cse.rows, cse.cols, cse.pr, cse.pc)
		if err != nil {
			t.Errorf("NewGrid(%+v): %v", cse, err)
			continue
		}
		src := signal.Random(cse.rows*cse.cols, int64(cse.rows*cse.cols))
		serial, err := fft.NewPlan2D(cse.rows, cse.cols)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]complex128, len(src))
		serial.Forward(want, src)
		got, _ := runGrid(t, g, src, false)
		if e := signal.RelErrL2(got, want); e > 1e-10 {
			t.Errorf("%dx%d on %dx%d grid: rel err %.3e", cse.rows, cse.cols, cse.pr, cse.pc, e)
		}
	}
}

func TestDistributed2DRoundTrip(t *testing.T) {
	g, err := NewGrid(16, 24, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(16*24, 9)
	freq, _ := runGrid(t, g, src, false)
	back, _ := runGrid(t, g, freq, true)
	if e := signal.MaxAbsErr(back, src); e > 1e-11 {
		t.Errorf("round trip error %.3e", e)
	}
}

func TestDistributed2DSubgroupExchanges(t *testing.T) {
	// Four subgroup all-to-alls per transform: the multi-dimensional FFT
	// never needs a full-machine exchange, unlike in-order 1-D.
	g, err := NewGrid(32, 32, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(32*32, 10)
	_, stats := runGrid(t, g, src, false)
	// Two groups run row-phase a2a (counted once per group leader) and
	// two groups run the column phase: 2 phases × 2 a2a each... each
	// lineFFT does 2 alltoalls, counted once per subgroup leader. With
	// Pr=Pc=2 there are 2 row groups and 2 column groups.
	if stats.Alltoalls != 8 {
		t.Errorf("subgroup all-to-alls = %d, want 8 (2 phases × 2 exchanges × 2 groups)", stats.Alltoalls)
	}
}

func TestNewGridErrors(t *testing.T) {
	bad := []struct {
		rows, cols, pr, pc int
		frag               string
	}{
		{0, 8, 2, 2, "positive"},
		{9, 8, 2, 2, "divide rows"},
		{8, 9, 2, 2, "divide cols"},
		{8, 8, 4, 4, "local row count"},
		{16, 12, 4, 2, "local column count"},
	}
	for _, c := range bad {
		_, err := NewGrid(c.rows, c.cols, c.pr, c.pc)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("NewGrid(%d,%d,%d,%d) err %v, want fragment %q",
				c.rows, c.cols, c.pr, c.pc, err, c.frag)
		}
	}
}

func TestTransformArgErrors(t *testing.T) {
	g, err := NewGrid(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := mpi.NewWorld(2) // wrong world size
	err = w.Run(func(c *mpi.Comm) error {
		_, err := g.Forward(c, make([]complex128, 16))
		return err
	})
	if err == nil {
		t.Error("expected world-size error")
	}
	w2, _ := mpi.NewWorld(4)
	err = w2.Run(func(c *mpi.Comm) error {
		_, err := g.Forward(c, make([]complex128, 3))
		return err
	})
	if err == nil {
		t.Error("expected local-length error")
	}
}
