package fft2d

import (
	"math"
	"math/cmplx"
	"testing"

	"soifft/internal/mpi"
	"soifft/internal/signal"
)

// direct3D is the brute-force 3-D DFT reference (tiny sizes only).
func direct3D(src []complex128, n1, n2, n3 int) []complex128 {
	out := make([]complex128, n1*n2*n3)
	for k1 := 0; k1 < n1; k1++ {
		for k2 := 0; k2 < n2; k2++ {
			for k3 := 0; k3 < n3; k3++ {
				var acc complex128
				for x := 0; x < n1; x++ {
					for y := 0; y < n2; y++ {
						for z := 0; z < n3; z++ {
							ang := -2 * math.Pi * (float64(x*k1)/float64(n1) +
								float64(y*k2)/float64(n2) + float64(z*k3)/float64(n3))
							acc += src[(x*n2+y)*n3+z] * cmplx.Exp(complex(0, ang))
						}
					}
				}
				out[(k1*n2+k2)*n3+k3] = acc
			}
		}
	}
	return out
}

func scatter3(g Grid3D, global []complex128, rank int) []complex128 {
	i, j := g.Coords(rank)
	l1, l2 := g.LocalN1(), g.LocalN2()
	local := make([]complex128, g.LocalLen())
	for x := 0; x < l1; x++ {
		for y := 0; y < l2; y++ {
			gx, gy := i*l1+x, j*l2+y
			copy(local[(x*l2+y)*g.N3:(x*l2+y+1)*g.N3],
				global[(gx*g.N2+gy)*g.N3:(gx*g.N2+gy+1)*g.N3])
		}
	}
	return local
}

func gather3(g Grid3D, global, local []complex128, rank int) {
	i, j := g.Coords(rank)
	l1, l2 := g.LocalN1(), g.LocalN2()
	for x := 0; x < l1; x++ {
		for y := 0; y < l2; y++ {
			gx, gy := i*l1+x, j*l2+y
			copy(global[(gx*g.N2+gy)*g.N3:(gx*g.N2+gy+1)*g.N3],
				local[(x*l2+y)*g.N3:(x*l2+y+1)*g.N3])
		}
	}
}

func runGrid3(t *testing.T, g Grid3D, src []complex128, inverse bool) []complex128 {
	t.Helper()
	w, err := mpi.NewWorld(g.Pr * g.Pc)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]complex128, g.N1*g.N2*g.N3)
	err = w.Run(func(c *mpi.Comm) error {
		local := scatter3(g, src, c.Rank())
		var res []complex128
		var err error
		if inverse {
			res, err = g.Inverse(c, local)
		} else {
			res, err = g.Forward(c, local)
		}
		if err != nil {
			return err
		}
		gather3(g, out, res, c.Rank())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestDistributed3DMatchesDirect(t *testing.T) {
	cases := []struct{ n1, n2, n3, pr, pc int }{
		{4, 4, 4, 2, 2},
		{8, 4, 6, 2, 2},
		{6, 6, 4, 3, 2},
		{4, 4, 8, 1, 4},
	}
	for _, cse := range cases {
		g, err := NewGrid3D(cse.n1, cse.n2, cse.n3, cse.pr, cse.pc)
		if err != nil {
			t.Errorf("NewGrid3D(%+v): %v", cse, err)
			continue
		}
		src := signal.Random(cse.n1*cse.n2*cse.n3, int64(cse.n1*100+cse.n2))
		want := direct3D(src, cse.n1, cse.n2, cse.n3)
		got := runGrid3(t, g, src, false)
		if e := signal.RelErrL2(got, want); e > 1e-10 {
			t.Errorf("%dx%dx%d on %dx%d: rel err %.3e", cse.n1, cse.n2, cse.n3, cse.pr, cse.pc, e)
		}
	}
}

func TestDistributed3DRoundTrip(t *testing.T) {
	g, err := NewGrid3D(8, 8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	src := signal.Random(512, 11)
	freq := runGrid3(t, g, src, false)
	back := runGrid3(t, g, freq, true)
	if e := signal.MaxAbsErr(back, src); e > 1e-11 {
		t.Errorf("3-D round trip error %.3e", e)
	}
}

func TestNewGrid3DErrors(t *testing.T) {
	if _, err := NewGrid3D(0, 4, 4, 2, 2); err == nil {
		t.Error("expected dims error")
	}
	if _, err := NewGrid3D(5, 4, 4, 2, 2); err == nil {
		t.Error("expected Pr divisibility error")
	}
	if _, err := NewGrid3D(4, 5, 4, 2, 2); err == nil {
		t.Error("expected Pc divisibility error")
	}
}

func TestPermutationsInvert(t *testing.T) {
	const l1, l2, n3 = 3, 4, 5
	src := signal.Random(l1*l2*n3, 12)
	mid := make([]complex128, len(src))
	back := make([]complex128, len(src))
	permute3(mid, src, l1, l2, n3, false)
	permute3(back, mid, l1, l2, n3, true)
	if e := signal.MaxAbsErr(back, src); e != 0 {
		t.Error("permute3 round trip failed")
	}
	permuteXFront(mid, src, l1, l2, n3, false)
	permuteXFront(back, mid, l1, l2, n3, true)
	if e := signal.MaxAbsErr(back, src); e != 0 {
		t.Error("permuteXFront round trip failed")
	}
}
