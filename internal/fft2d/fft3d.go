package fft2d

import (
	"fmt"

	"soifft/internal/fft"
	"soifft/internal/mpi"
)

// Grid3D distributes an n1×n2×n3 volume over a Pr×Pc process grid in
// the first two dimensions (the classic pencil decomposition used by
// production 3-D FFTs): rank (i, j) owns the pencil
// [i·n1/Pr, (i+1)·n1/Pr) × [j·n2/Pc, (j+1)·n2/Pc) × [0, n3), stored
// x-major then y then z (z contiguous). The z-dimension transforms are
// entirely local; x and y reuse the subgroup line machinery of Grid.
type Grid3D struct {
	N1, N2, N3 int
	Pr, Pc     int
}

// NewGrid3D validates the pencil constraints.
func NewGrid3D(n1, n2, n3, pr, pc int) (Grid3D, error) {
	g := Grid3D{N1: n1, N2: n2, N3: n3, Pr: pr, Pc: pc}
	switch {
	case n1 <= 0 || n2 <= 0 || n3 <= 0 || pr <= 0 || pc <= 0:
		return g, fmt.Errorf("fft2d: all 3-D dimensions must be positive")
	case n1%pr != 0:
		return g, fmt.Errorf("fft2d: Pr=%d must divide n1=%d", pr, n1)
	case n2%pc != 0:
		return g, fmt.Errorf("fft2d: Pc=%d must divide n2=%d", pc, n2)
	case (n1 / pr * n3 % pc) != 0:
		return g, fmt.Errorf("fft2d: Pc=%d must divide the local x-z line count %d", pc, n1/pr*n3)
	case (n2 / pc * n3 % pr) != 0:
		return g, fmt.Errorf("fft2d: Pr=%d must divide the local y-z line count %d", pr, n2/pc*n3)
	}
	return g, nil
}

// LocalN1 returns the per-rank extent in the first dimension.
func (g Grid3D) LocalN1() int { return g.N1 / g.Pr }

// LocalN2 returns the per-rank extent in the second dimension.
func (g Grid3D) LocalN2() int { return g.N2 / g.Pc }

// LocalLen returns the per-rank element count.
func (g Grid3D) LocalLen() int { return g.LocalN1() * g.LocalN2() * g.N3 }

// Coords returns the grid coordinates of a world rank.
func (g Grid3D) Coords(rank int) (int, int) { return rank / g.Pc, rank % g.Pc }

// Forward computes the 3-D DFT of the distributed volume; the result
// keeps the same pencil distribution. The z transforms are local; the y
// and x phases each cost two subgroup all-to-alls.
func (g Grid3D) Forward(c *mpi.Comm, local []complex128) ([]complex128, error) {
	return g.transform(c, local, false)
}

// Inverse computes the inverse 3-D DFT scaled by 1/(n1·n2·n3).
func (g Grid3D) Inverse(c *mpi.Comm, local []complex128) ([]complex128, error) {
	return g.transform(c, local, true)
}

func (g Grid3D) transform(c *mpi.Comm, local []complex128, inverse bool) ([]complex128, error) {
	if c.Size() != g.Pr*g.Pc {
		return nil, fmt.Errorf("fft2d: 3-D grid %dx%d needs %d ranks, world has %d",
			g.Pr, g.Pc, g.Pr*g.Pc, c.Size())
	}
	l1, l2 := g.LocalN1(), g.LocalN2()
	if len(local) != l1*l2*g.N3 {
		return nil, fmt.Errorf("fft2d: local pencil must be %d elements, got %d", l1*l2*g.N3, len(local))
	}
	i, j := g.Coords(c.Rank())

	// Phase z: every (x, y) line in z is fully local and contiguous.
	a := append([]complex128(nil), local...)
	if err := batchLines(a, g.N3, inverse); err != nil {
		return nil, err
	}

	// Phase y: view the pencil as l1·N3 lines along y (stride l2·? — we
	// first permute so y becomes contiguous: (x, y, z) → (x, z, y)).
	ayz := make([]complex128, len(a))
	permute3(ayz, a, l1, l2, g.N3, false)
	rowComm := c.Split(i, j) // ranks sharing i span the full y extent
	by, err := lineFFT(rowComm, ayz, l1*g.N3, l2, g.N2, inverse)
	if err != nil {
		return nil, err
	}
	b := make([]complex128, len(a))
	permute3(b, by, l1, l2, g.N3, true)

	// Phase x: permute so x becomes contiguous: (x, y, z) → (y, z, x).
	cxz := make([]complex128, len(b))
	permuteXFront(cxz, b, l1, l2, g.N3, false)
	colComm := c.Split(j, i) // ranks sharing j span the full x extent
	dx, err := lineFFT(colComm, cxz, l2*g.N3, l1, g.N1, inverse)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(b))
	permuteXFront(out, dx, l1, l2, g.N3, true)
	return out, nil
}

// batchLines FFTs contiguous lines of length n in place.
func batchLines(a []complex128, n int, inverse bool) error {
	plan, err := fft.CachedPlan(n)
	if err != nil {
		return err
	}
	count := len(a) / n
	if inverse {
		plan.InverseBatch(a, a, count)
	} else {
		plan.Batch(a, a, count)
	}
	return nil
}

// permute3 reorders (x, y, z) → (x, z, y):
// dst[(x*N3+z)*l2+y] = src[(x*l2+y)*N3+z]; back=true inverts the mapping.
func permute3(dst, src []complex128, l1, l2, n3 int, back bool) {
	for x := 0; x < l1; x++ {
		for y := 0; y < l2; y++ {
			for z := 0; z < n3; z++ {
				a := (x*l2+y)*n3 + z
				b := (x*n3+z)*l2 + y
				if back {
					dst[a] = src[b]
				} else {
					dst[b] = src[a]
				}
			}
		}
	}
}

// permuteXFront reorders (x, y, z) → (y, z, x):
// dst[(y*N3+z)*l1+x] = src[(x*l2+y)*N3+z]; back=true inverts.
func permuteXFront(dst, src []complex128, l1, l2, n3 int, back bool) {
	for x := 0; x < l1; x++ {
		for y := 0; y < l2; y++ {
			for z := 0; z < n3; z++ {
				a := (x*l2+y)*n3 + z
				b := (y*n3+z)*l1 + x
				if back {
					dst[a] = src[b]
				} else {
					dst[b] = src[a]
				}
			}
		}
	}
}
