// Package fft2d implements a distributed 2-D FFT over a 2-D process
// grid (pencil decomposition) — the serial 2-D transform's scalable
// sibling, and the natural first step of the paper's Section 8 future
// work ("generalize to higher-dimensional FFTs").
//
// A rows×cols matrix is block-distributed over a Pr×Pc rank grid: rank
// (i, j) owns the submatrix [i·rows/Pr, (i+1)·rows/Pr) ×
// [j·cols/Pc, (j+1)·cols/Pc). Each dimension is transformed by
// redistributing *within* the corresponding grid communicator (row
// groups of Pc ranks, column groups of Pr ranks) so each rank
// temporarily holds complete lines, running node-local FFTs, and
// redistributing back. All exchanges are subgroup all-to-alls; nothing
// ever crosses the full machine at once — the communication structure
// that makes multi-dimensional FFTs fundamentally cheaper than 1-D,
// which is exactly why the paper's single-all-to-all 1-D result matters.
package fft2d

import (
	"fmt"

	"soifft/internal/fft"
	"soifft/internal/mpi"
)

// Grid describes the process grid and the matrix it distributes.
type Grid struct {
	Rows, Cols int // global matrix shape
	Pr, Pc     int // process grid shape; world size must equal Pr·Pc
}

// NewGrid validates the divisibility constraints of the pencil layout.
func NewGrid(rows, cols, pr, pc int) (Grid, error) {
	g := Grid{Rows: rows, Cols: cols, Pr: pr, Pc: pc}
	switch {
	case rows <= 0 || cols <= 0 || pr <= 0 || pc <= 0:
		return g, fmt.Errorf("fft2d: all dimensions must be positive")
	case rows%pr != 0:
		return g, fmt.Errorf("fft2d: Pr=%d must divide rows=%d", pr, rows)
	case cols%pc != 0:
		return g, fmt.Errorf("fft2d: Pc=%d must divide cols=%d", pc, cols)
	case (rows/pr)%pc != 0:
		return g, fmt.Errorf("fft2d: Pc=%d must divide the local row count %d", pc, rows/pr)
	case (cols/pc)%pr != 0:
		return g, fmt.Errorf("fft2d: Pr=%d must divide the local column count %d", pr, cols/pc)
	}
	return g, nil
}

// LocalRows returns the per-rank row count rows/Pr.
func (g Grid) LocalRows() int { return g.Rows / g.Pr }

// LocalCols returns the per-rank column count cols/Pc.
func (g Grid) LocalCols() int { return g.Cols / g.Pc }

// Coords returns the grid coordinates (i, j) of a world rank.
func (g Grid) Coords(rank int) (int, int) { return rank / g.Pc, rank % g.Pc }

// Forward computes the 2-D DFT of the distributed matrix: local is rank
// (i,j)'s LocalRows()×LocalCols() block in row-major order; the result
// has the same distribution. Four subgroup all-to-alls.
func (g Grid) Forward(c *mpi.Comm, local []complex128) ([]complex128, error) {
	return g.transform(c, local, false)
}

// Inverse computes the inverse 2-D DFT (scaled by 1/(rows·cols)).
func (g Grid) Inverse(c *mpi.Comm, local []complex128) ([]complex128, error) {
	return g.transform(c, local, true)
}

func (g Grid) transform(c *mpi.Comm, local []complex128, inverse bool) ([]complex128, error) {
	if c.Size() != g.Pr*g.Pc {
		return nil, fmt.Errorf("fft2d: grid %dx%d needs %d ranks, world has %d",
			g.Pr, g.Pc, g.Pr*g.Pc, c.Size())
	}
	lr, lc := g.LocalRows(), g.LocalCols()
	if len(local) != lr*lc {
		return nil, fmt.Errorf("fft2d: local block must be %d elements, got %d", lr*lc, len(local))
	}
	i, j := g.Coords(c.Rank())

	// Row phase: within the row communicator (ranks sharing i), gather
	// complete rows, transform, scatter back.
	rowComm := c.Split(i, j)
	a, err := lineFFT(rowComm, local, lr, lc, g.Cols, inverse)
	if err != nil {
		return nil, err
	}

	// Column phase: transpose the local block so columns become rows,
	// run the same machinery in the column communicator, transpose back.
	colComm := c.Split(j, i) // ranks sharing column j, ordered by row index
	at := make([]complex128, lr*lc)
	localTranspose(at, a, lr, lc)
	bt, err := lineFFT(colComm, at, lc, lr, g.Rows, inverse)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, lr*lc)
	localTranspose(out, bt, lc, lr)
	return out, nil
}

// lineFFT transforms the distributed lines of one dimension: each rank
// holds nLines local lines of seg elements; the group's ranks together
// hold complete lines of length full = seg·groupSize. Redistribute so
// each rank owns nLines/groupSize complete lines, FFT them, and
// redistribute back. Two subgroup all-to-alls.
func lineFFT(sc *mpi.SubComm, local []complex128, nLines, seg, full int, inverse bool) ([]complex128, error) {
	gs := sc.Size()
	if seg*gs != full {
		return nil, fmt.Errorf("fft2d: line segments %d×%d != full length %d", seg, gs, full)
	}
	per := nLines / gs // complete lines each rank owns mid-phase
	if per*gs != nLines {
		return nil, fmt.Errorf("fft2d: group size %d must divide local lines %d", gs, nLines)
	}
	chunk := per * seg

	// Pack: destination t gets my segment of its line subset
	// [t·per, (t+1)·per), line-major.
	send := make([]complex128, nLines*seg)
	for t := 0; t < gs; t++ {
		for l := 0; l < per; l++ {
			srcLine := t*per + l
			copy(send[t*chunk+l*seg:t*chunk+(l+1)*seg], local[srcLine*seg:(srcLine+1)*seg])
		}
	}
	recv := sc.Alltoall(send, chunk)

	// Assemble complete lines: line l, segment from group rank r.
	lines := make([]complex128, per*full)
	for r := 0; r < gs; r++ {
		for l := 0; l < per; l++ {
			copy(lines[l*full+r*seg:l*full+(r+1)*seg], recv[r*chunk+l*seg:r*chunk+(l+1)*seg])
		}
	}
	plan, err := fft.CachedPlan(full)
	if err != nil {
		return nil, err
	}
	if inverse {
		plan.InverseBatch(lines, lines, per)
	} else {
		plan.Batch(lines, lines, per)
	}

	// Scatter back: group rank r gets segment r of each of my lines.
	back := make([]complex128, per*full)
	for r := 0; r < gs; r++ {
		for l := 0; l < per; l++ {
			copy(back[r*chunk+l*seg:r*chunk+(l+1)*seg], lines[l*full+r*seg:l*full+(r+1)*seg])
		}
	}
	recv2 := sc.Alltoall(back, chunk)
	out := make([]complex128, nLines*seg)
	for t := 0; t < gs; t++ {
		for l := 0; l < per; l++ {
			dstLine := t*per + l
			copy(out[dstLine*seg:(dstLine+1)*seg], recv2[t*chunk+l*seg:t*chunk+(l+1)*seg])
		}
	}
	return out, nil
}

func localTranspose(dst, src []complex128, rows, cols int) {
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			dst[c*rows+r] = src[r*cols+c]
		}
	}
}
