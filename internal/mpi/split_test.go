package mpi

import (
	"fmt"
	"testing"
)

func TestSplitFormsGroups(t *testing.T) {
	// 6 ranks → colors {0,1} by parity: two groups of 3, ordered by key.
	w := mustWorld(t, 6)
	err := w.Run(func(c *Comm) error {
		color := c.Rank() % 2
		key := -c.Rank() // reverse order within the group
		sc := c.Split(color, key)
		if sc.Size() != 3 {
			return fmt.Errorf("rank %d: subcomm size %d", c.Rank(), sc.Size())
		}
		// With negative keys, higher parent ranks come first.
		wantRank := map[int]int{4: 0, 2: 1, 0: 2, 5: 0, 3: 1, 1: 2}[c.Rank()]
		if sc.Rank() != wantRank {
			return fmt.Errorf("rank %d: subcomm rank %d, want %d", c.Rank(), sc.Rank(), wantRank)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitSendRecv(t *testing.T) {
	w := mustWorld(t, 4)
	err := w.Run(func(c *Comm) error {
		sc := c.Split(c.Rank()/2, c.Rank()) // pairs {0,1}, {2,3}
		partner := 1 - sc.Rank()
		sc.Send(partner, 3, []complex128{complex(float64(c.Rank()), 0)})
		got := sc.RecvC(partner, 3)
		wantParent := c.Rank() ^ 1
		if real(got[0]) != float64(wantParent) {
			return fmt.Errorf("rank %d: got %v, want from parent %d", c.Rank(), got, wantParent)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubcommAlltoall(t *testing.T) {
	// 6 ranks in two groups of 3; exchange within groups only.
	w := mustWorld(t, 6)
	err := w.Run(func(c *Comm) error {
		g := c.Rank() / 3
		sc := c.Split(g, c.Rank())
		const chunk = 2
		send := make([]complex128, sc.Size()*chunk)
		for r := 0; r < sc.Size(); r++ {
			for k := 0; k < chunk; k++ {
				send[r*chunk+k] = complex(float64(c.Rank()), float64(r*chunk+k))
			}
		}
		got := sc.Alltoall(send, chunk)
		for r := 0; r < sc.Size(); r++ {
			srcParent := g*3 + r
			for k := 0; k < chunk; k++ {
				want := complex(float64(srcParent), float64(sc.Rank()*chunk+k))
				if got[r*chunk+k] != want {
					return fmt.Errorf("rank %d: got[%d]=%v want %v", c.Rank(), r*chunk+k, got[r*chunk+k], want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubcommAllgather(t *testing.T) {
	w := mustWorld(t, 4)
	err := w.Run(func(c *Comm) error {
		sc := c.Split(c.Rank()%2, c.Rank())
		all := sc.Allgather([]complex128{complex(float64(c.Rank()), 0)})
		if len(all) != 2 {
			return fmt.Errorf("allgather length %d", len(all))
		}
		for i, v := range all {
			wantParent := c.Rank()%2 + 2*i
			if real(v) != float64(wantParent) {
				return fmt.Errorf("rank %d: all[%d]=%v want %d", c.Rank(), i, v, wantParent)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
