package mpi

import "fmt"

// Collective tags live in a reserved band so they can never collide with
// user point-to-point tags (which should be small non-negative ints).
const (
	tagBarrier = -(1 + iota)
	tagBcast
	tagReduce
	tagGather
	tagAllgather
	tagAlltoall
)

// Barrier blocks until every rank has entered it. Implementation:
// gather-to-root then broadcast, which is O(log R) rounds in message
// depth through the binomial trees below.
func (c *Comm) Barrier() {
	if c.rank == 0 {
		c.world.stats.barriers.Add(1)
	}
	c.reduceInternal(0, tagBarrier, complex(0, 0))
	c.bcastInternal(0, tagBcast, nil)
}

// Bcast distributes root's payload to every rank and returns it (ranks
// other than root pass data=nil).
func (c *Comm) Bcast(root int, data any) any {
	if c.rank == root {
		c.world.stats.bcasts.Add(1)
	}
	return c.bcastInternal(root, tagBcast, data)
}

// bcastInternal runs a binomial-tree broadcast rooted at root.
func (c *Comm) bcastInternal(root, tag int, data any) any {
	size := c.world.size
	// Rotate so the root is virtual rank 0.
	vrank := (c.rank - root + size) % size
	if vrank != 0 {
		// Receive from parent: clear the lowest set bit.
		parent := (vrank&(vrank-1) + root) % size
		data = c.recv(parent, tag)
	}
	// Forward to children: set successively higher bits.
	mask := 1
	for mask < size {
		if vrank&(mask-1) == 0 && vrank&mask == 0 {
			child := vrank | mask
			if child < size {
				c.send((child+root)%size, tag, data)
			}
		}
		mask <<= 1
	}
	return data
}

// Reduce combines one complex value per rank with + at the root and
// returns the sum there (zero elsewhere).
func (c *Comm) Reduce(root int, v complex128) complex128 {
	if c.rank == root {
		c.world.stats.reduces.Add(1)
	}
	if root != 0 {
		// Fold through virtual rank 0 for simplicity of the tree math.
		sum := c.reduceInternal(0, tagReduce, v)
		if c.rank == 0 {
			c.send(root, tagReduce, sum)
		}
		if c.rank == root {
			return c.recv(0, tagReduce).(complex128)
		}
		return 0
	}
	return c.reduceInternal(0, tagReduce, v)
}

// Allreduce is Reduce followed by Bcast.
func (c *Comm) Allreduce(v complex128) complex128 {
	if c.rank == 0 {
		c.world.stats.allreduces.Add(1)
	}
	sum := c.reduceInternal(0, tagReduce, v)
	return c.bcastInternal(0, tagBcast, sum).(complex128)
}

// reduceInternal folds values up a binomial tree rooted at rank 0.
func (c *Comm) reduceInternal(root, tag int, v complex128) complex128 {
	size := c.world.size
	vrank := c.rank
	mask := 1
	acc := v
	for mask < size {
		if vrank&mask != 0 {
			c.send(vrank&^mask, tag, acc)
			return 0
		}
		partner := vrank | mask
		if partner < size {
			acc += c.recv(partner, tag).(complex128)
		}
		mask <<= 1
	}
	_ = root
	return acc
}

// Gather concatenates equal-length chunks at the root: the result at root
// is size*len(chunk) elements ordered by rank; other ranks get nil. A
// chunk-length mismatch panics with a typed *CollectiveError (use
// GatherChecked for an error return).
func (c *Comm) Gather(root int, chunk []complex128) []complex128 {
	out, err := c.GatherChecked(root, chunk)
	if err != nil {
		panic(err)
	}
	return out
}

// GatherChecked is Gather returning typed errors instead of panicking:
// *CollectiveError wrapping ErrCountMismatch when a peer's chunk length
// disagrees with ours, or the abort fault if the world died mid-call.
func (c *Comm) GatherChecked(root int, chunk []complex128) (out []complex128, err error) {
	defer recoverFault(&err)
	if c.rank == root {
		c.world.stats.gathers.Add(1)
	}
	if c.rank != root {
		c.send(root, tagGather, chunk)
		return nil, nil
	}
	out = make([]complex128, len(chunk)*c.world.size)
	copy(out[c.rank*len(chunk):], chunk)
	for r := 0; r < c.world.size; r++ {
		if r == root {
			continue
		}
		data := c.recv(r, tagGather).([]complex128)
		if len(data) != len(chunk) {
			return nil, &CollectiveError{Op: "gather", Rank: c.rank, Err: fmt.Errorf(
				"%w: chunk from rank %d is %d elements, want %d", ErrCountMismatch, r, len(data), len(chunk))}
		}
		copy(out[r*len(chunk):], data)
	}
	return out, nil
}

// Allgather gives every rank the concatenation of all chunks.
func (c *Comm) Allgather(chunk []complex128) []complex128 {
	if c.rank == 0 {
		c.world.stats.allgathers.Add(1)
	}
	all := c.Gather(0, chunk)
	res := c.bcastInternal(0, tagAllgather, all)
	return res.([]complex128)
}

// Alltoall performs the equal-counts personalized exchange: send must be
// size*chunk elements; chunk elements go to each rank; the returned slice
// holds, in rank order, the chunk each rank sent to us. This is the
// paper's "global transpose" primitive.
func (c *Comm) Alltoall(send []complex128, chunk int) []complex128 {
	counts := make([]int, c.world.size)
	for i := range counts {
		counts[i] = chunk
	}
	return c.Alltoallv(send, counts, counts)
}

// Alltoallv is Alltoall with per-destination counts. send holds the
// outgoing chunks back-to-back in rank order with lengths sendCounts;
// the result holds incoming chunks in rank order with lengths recvCounts.
// Malformed counts panic with a typed *CollectiveError (use
// AlltoallvChecked for an error return).
func (c *Comm) Alltoallv(send []complex128, sendCounts, recvCounts []int) []complex128 {
	out, err := c.AlltoallvChecked(send, sendCounts, recvCounts)
	if err != nil {
		panic(err)
	}
	return out
}

// AlltoallvChecked is Alltoallv returning typed errors instead of
// panicking: *CollectiveError wrapping ErrCountMismatch for count/length
// disagreements (naming the offending peer), or the abort fault if the
// world died mid-call.
func (c *Comm) AlltoallvChecked(send []complex128, sendCounts, recvCounts []int) (out []complex128, err error) {
	defer recoverFault(&err)
	size := c.world.size
	if len(sendCounts) != size || len(recvCounts) != size {
		return nil, &CollectiveError{Op: "alltoallv", Rank: c.rank, Err: fmt.Errorf(
			"%w: needs %d counts, got %d/%d", ErrCountMismatch, size, len(sendCounts), len(recvCounts))}
	}
	if c.rank == 0 {
		c.world.stats.alltoalls.Add(1)
	}
	offs := prefix(sendCounts)
	if len(send) != offs[size] {
		return nil, &CollectiveError{Op: "alltoallv", Rank: c.rank, Err: fmt.Errorf(
			"%w: send length %d, counts sum %d", ErrCountMismatch, len(send), offs[size])}
	}
	// Post every send first (buffered, cannot block), then drain receives.
	for r := 0; r < size; r++ {
		if r == c.rank {
			continue
		}
		chunk := send[offs[r]:offs[r+1]]
		c.world.stats.alltoallBytes.Add(sizeOf(chunk))
		c.send(r, tagAlltoall, chunk)
	}
	roffs := prefix(recvCounts)
	out = make([]complex128, roffs[size])
	copy(out[roffs[c.rank]:roffs[c.rank+1]], send[offs[c.rank]:offs[c.rank+1]])
	for r := 0; r < size; r++ {
		if r == c.rank {
			continue
		}
		data := c.recv(r, tagAlltoall).([]complex128)
		if len(data) != recvCounts[r] {
			return nil, &CollectiveError{Op: "alltoallv", Rank: c.rank, Err: fmt.Errorf(
				"%w: expected %d elements from rank %d, got %d", ErrCountMismatch, recvCounts[r], r, len(data))}
		}
		copy(out[roffs[r]:roffs[r+1]], data)
	}
	return out, nil
}
