// Package mpi is an in-process message-passing runtime with MPI-shaped
// semantics: a World of R ranks, each running the same SPMD function on
// its own goroutine, communicating through point-to-point sends/receives
// and collectives (Barrier, Bcast, Reduce, Allreduce, Gather, Allgather,
// Alltoall, Alltoallv, Sendrecv).
//
// It substitutes for the MPI layer of the paper's implementation (Go has
// no MPI ecosystem): the programming model, message matching and
// communication patterns are preserved, and every byte that would cross
// the wire is counted, so the interconnect models in internal/netsim can
// price a run on the paper's fabrics.
//
// Semantics notes: sends are buffered and asynchronous (the payload is
// copied, so buffers are immediately reusable); receives match per
// (source, tag) in FIFO order. A rank returning an error aborts the
// world, waking any blocked receivers.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// TagMismatchError reports an out-of-sequence message, which indicates a
// bug in the SPMD program.
type TagMismatchError struct{ Want, Got int }

func (e *TagMismatchError) Error() string {
	return fmt.Sprintf("mpi: tag mismatch: receiver wants %d, next queued message has %d", e.Want, e.Got)
}

// AbortError is returned by Run for ranks interrupted by another rank's
// failure.
type AbortError struct{ Rank int }

func (e *AbortError) Error() string {
	return fmt.Sprintf("mpi: rank %d aborted: another rank failed", e.Rank)
}

// CommFault marks aborts as typed communication faults, so
// core.RecoverFault converts a mid-collective abort into an error return
// instead of letting the panic unwind the rank.
func (e *AbortError) CommFault() {}

// Stats aggregates communication volume over a world's lifetime.
// Collective byte counts include every payload byte moved between
// distinct ranks (self-copies are excluded, matching what a fabric would
// carry).
type Stats struct {
	P2PMessages   int64
	P2PBytes      int64
	Barriers      int64
	Bcasts        int64
	Reduces       int64
	Allreduces    int64
	Gathers       int64
	Allgathers    int64
	Alltoalls     int64 // number of all-to-all collectives — the paper's key metric
	AlltoallBytes int64 // inter-rank bytes carried by all-to-alls
	Sendrecvs     int64
}

// World is a fixed-size set of ranks sharing mailboxes and counters.
type World struct {
	size   int
	boxes  []*mailbox // boxes[src*size+dst], ordinary tag space
	sboxes []*mailbox // same geometry, streamed-exchange band (tag <= exch.TagBase)
	tboxes []*mailbox // same geometry, telemetry stat frames (tag telemetry.TagStat)

	abortOnce sync.Once
	aborted   atomic.Bool

	stats struct {
		p2pMessages, p2pBytes atomic.Int64
		barriers, bcasts      atomic.Int64
		reduces, allreduces   atomic.Int64
		gathers, allgathers   atomic.Int64
		alltoalls             atomic.Int64
		alltoallBytes         atomic.Int64
		sendrecvs             atomic.Int64
	}
}

// NewWorld creates a world of size ranks.
func NewWorld(size int) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive, got %d", size)
	}
	w := &World{
		size:   size,
		boxes:  make([]*mailbox, size*size),
		sboxes: make([]*mailbox, size*size),
		tboxes: make([]*mailbox, size*size),
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
		w.sboxes[i] = newMailbox()
		w.tboxes[i] = newMailbox()
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes fn once per rank, each on its own goroutine, and waits for
// all of them. The first non-nil error aborts the world (blocked
// receivers are woken) and is returned; ranks that were interrupted
// report AbortError, which Run folds into the primary error.
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if ae, ok := p.(*AbortError); ok {
						errs[rank] = ae
						return
					}
					if cf, ok := p.(commFault); ok {
						// Typed communication faults (CollectiveError,
						// transport errors) stay typed through Run.
						errs[rank] = cf
						w.abort()
						return
					}
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					w.abort()
				}
			}()
			errs[rank] = fn(&Comm{world: w, rank: rank})
			if errs[rank] != nil {
				w.abort()
			}
		}(r)
	}
	wg.Wait()
	// Prefer a root-cause error over secondary AbortErrors.
	var abortErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if _, isAbort := err.(*AbortError); isAbort {
			abortErr = err
			continue
		}
		return err
	}
	return abortErr
}

func (w *World) abort() {
	w.abortOnce.Do(func() {
		w.aborted.Store(true)
		for _, b := range w.boxes {
			b.kill()
		}
		for _, b := range w.sboxes {
			b.kill()
		}
		for _, b := range w.tboxes {
			b.kill()
		}
	})
}

// Stats snapshots the accumulated communication counters.
func (w *World) Stats() Stats {
	return Stats{
		P2PMessages:   w.stats.p2pMessages.Load(),
		P2PBytes:      w.stats.p2pBytes.Load(),
		Barriers:      w.stats.barriers.Load(),
		Bcasts:        w.stats.bcasts.Load(),
		Reduces:       w.stats.reduces.Load(),
		Allreduces:    w.stats.allreduces.Load(),
		Gathers:       w.stats.gathers.Load(),
		Allgathers:    w.stats.allgathers.Load(),
		Alltoalls:     w.stats.alltoalls.Load(),
		AlltoallBytes: w.stats.alltoallBytes.Load(),
		Sendrecvs:     w.stats.sendrecvs.Load(),
	}
}

// sizeOf estimates the wire size of a payload in bytes.
func sizeOf(data any) int64 {
	switch v := data.(type) {
	case []complex128:
		return int64(len(v)) * 16
	case []float64:
		return int64(len(v)) * 8
	case []int:
		return int64(len(v)) * 8
	case []byte:
		return int64(len(v))
	case complex128:
		return 16
	case float64, int, int64:
		return 8
	case nil:
		return 0
	default:
		return 8 // conservative placeholder for small control values
	}
}

// copyPayload deep-copies slice payloads so senders can reuse buffers
// immediately (MPI buffered-send semantics).
func copyPayload(data any) any {
	switch v := data.(type) {
	case []complex128:
		return append([]complex128(nil), v...)
	case []float64:
		return append([]float64(nil), v...)
	case []int:
		return append([]int(nil), v...)
	case []byte:
		return append([]byte(nil), v...)
	default:
		return data
	}
}
