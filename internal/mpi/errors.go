package mpi

import (
	"errors"
	"fmt"
)

// ErrCountMismatch is the sentinel cause for collective calls whose
// count arguments or received payload lengths disagree with the world
// size or the peer's counts. Match with errors.Is.
var ErrCountMismatch = errors.New("mpi: count mismatch")

// CollectiveError is a typed failure of one collective call on one
// rank. It implements the core.Fault contract (CommFault), so a panic
// carrying it is converted to an error return by core.RecoverFault and
// stored typed by World.Run instead of being flattened into a generic
// "rank panicked" string.
type CollectiveError struct {
	Op   string // "gather", "alltoallv", "pairwise_alltoallv", ...
	Rank int    // the rank that detected the failure
	Err  error  // cause; wraps ErrCountMismatch for shape errors
}

func (e *CollectiveError) Error() string {
	return fmt.Sprintf("mpi: %s on rank %d: %v", e.Op, e.Rank, e.Err)
}

func (e *CollectiveError) Unwrap() error { return e.Err }

// CommFault marks the error as a communication fault.
func (e *CollectiveError) CommFault() {}

// commFault matches any typed communication fault carried by a panic
// (AbortError, CollectiveError, mpinet.TransportError, ...).
type commFault interface {
	error
	CommFault()
}

// recoverFault converts a comm-fault panic into an error return for the
// *Checked collective variants. Non-fault panics (tag mismatches,
// invalid ranks — SPMD programming bugs) keep propagating.
func recoverFault(err *error) {
	if p := recover(); p != nil {
		if e, ok := p.(commFault); ok {
			*err = e
			return
		}
		panic(p)
	}
}
