package mpi

import (
	"fmt"

	"soifft/internal/exch"
	"soifft/internal/telemetry"
)

// Comm is one rank's handle on the world. All methods must be called only
// from that rank's goroutine.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this rank's id in [0, Size).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send delivers data to rank `to` with a matching tag. Slice payloads are
// copied; Send never blocks.
func (c *Comm) Send(to, tag int, data any) {
	c.send(to, tag, data)
}

// Recv blocks until the next message from rank `from` arrives and returns
// its payload. The message's tag must equal tag.
func (c *Comm) Recv(from, tag int) any {
	return c.recv(from, tag)
}

// RecvC is Recv for []complex128 payloads.
func (c *Comm) RecvC(from, tag int) []complex128 {
	return c.recv(from, tag).([]complex128)
}

// SendChecked is Send returning the abort fault as an error instead of
// letting it unwind the rank. On the in-process runtime sends are
// buffered and cannot otherwise fail.
func (c *Comm) SendChecked(to, tag int, data any) (err error) {
	defer recoverFault(&err)
	c.send(to, tag, data)
	return nil
}

// RecvCChecked is RecvC returning typed faults (the abort error when the
// world died mid-receive) instead of panicking.
func (c *Comm) RecvCChecked(from, tag int) (out []complex128, err error) {
	defer recoverFault(&err)
	return c.recv(from, tag).([]complex128), nil
}

// Sendrecv exchanges payloads with two (possibly distinct) partners in a
// deadlock-free way and returns the received payload.
func (c *Comm) Sendrecv(to, sendTag int, data any, from, recvTag int) any {
	c.world.stats.sendrecvs.Add(1)
	c.send(to, sendTag, data)
	return c.recv(from, recvTag)
}

// box selects the FIFO for one (src, dst, tag) triple: the streamed
// exchange's tag band and the telemetry control tag each get their own
// per-pair mailbox, because their consumers (stream receiver
// goroutines, rank 0's telemetry drain) run concurrently with ordinary
// receives (halo, parity) on the same pair and a shared FIFO would let
// any consumer pop another's message.
func (w *World) box(src, dst, tag int) *mailbox {
	switch {
	case tag <= exch.TagBase:
		return w.sboxes[src*w.size+dst]
	case tag == telemetry.TagStat:
		return w.tboxes[src*w.size+dst]
	default:
		return w.boxes[src*w.size+dst]
	}
}

// send counts every message at the wire level (collectives included) and
// enqueues a copy of the payload.
func (c *Comm) send(to, tag int, data any) {
	if to < 0 || to >= c.world.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d (size %d)", to, c.world.size))
	}
	c.world.stats.p2pMessages.Add(1)
	c.world.stats.p2pBytes.Add(sizeOf(data))
	c.world.box(c.rank, to, tag).put(packet{tag: tag, data: copyPayload(data)})
}

func (c *Comm) recv(from, tag int) any {
	if from < 0 || from >= c.world.size {
		panic(fmt.Sprintf("mpi: recv from invalid rank %d (size %d)", from, c.world.size))
	}
	p, ok := c.world.box(from, c.rank, tag).get(tag)
	if !ok {
		panic(&AbortError{Rank: c.rank})
	}
	return p.data
}
