package mpi

import (
	"fmt"

	"soifft/internal/telemetry"
)

// RecvTelemetry blocks for the next telemetry stat frame from rank
// `from` — the telemetry.Receiver capability, making *Comm (together
// with Rank/Size/SendChecked) a full telemetry.Conn. Stat frames ride
// their own per-pair mailbox, so this wait never competes with the
// rank's ordinary or streamed receives, and it is the one Comm receive
// safe to call from a goroutine other than the rank's own (the plane's
// drain): the telemetry mailbox has exactly one consumer. A world abort
// surfaces as the typed error the drain turns into a stale mark.
//
// The in-process runtime has no wire, so there is no LinkStats here —
// the plane simply finds the capability absent.
func (c *Comm) RecvTelemetry(from int) ([]complex128, error) {
	if from < 0 || from >= c.world.size {
		panic(fmt.Sprintf("mpi: recv telemetry from invalid rank %d (size %d)", from, c.world.size))
	}
	p, ok := c.world.tboxes[from*c.world.size+c.rank].get(telemetry.TagStat)
	if !ok {
		return nil, &AbortError{Rank: c.rank}
	}
	return p.data.([]complex128), nil
}
