package mpi

import (
	"errors"
	"testing"
)

// TestGatherMismatchTyped: a rank sending the wrong chunk length must
// surface as a typed CollectiveError from World.Run, not a crash.
func TestGatherMismatchTyped(t *testing.T) {
	w, err := NewWorld(3)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(func(c *Comm) error {
		n := 4
		if c.Rank() == 2 {
			n = 5 // malformed: disagrees with the other ranks
		}
		c.Gather(0, make([]complex128, n))
		return nil
	})
	var ce *CollectiveError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v (%T), want *CollectiveError", err, err)
	}
	if ce.Op != "gather" || ce.Rank != 0 {
		t.Errorf("fault attributed to op=%q rank=%d, want gather on rank 0", ce.Op, ce.Rank)
	}
	if !errors.Is(err, ErrCountMismatch) {
		t.Errorf("error %v does not wrap ErrCountMismatch", err)
	}
}

// TestGatherCheckedMismatch: the checked variant returns the error
// directly on the detecting rank.
func TestGatherCheckedMismatch(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		n := 2 + c.Rank()
		out, err := c.GatherChecked(0, make([]complex128, n))
		if c.Rank() == 0 {
			if !errors.Is(err, ErrCountMismatch) {
				t.Errorf("rank 0: got %v, want ErrCountMismatch", err)
			}
			if out != nil {
				t.Errorf("rank 0: got partial result alongside error")
			}
		}
		return nil
	})
	// Rank 0 swallowed the typed error deliberately; the world stays up.
	if err != nil {
		t.Fatalf("world failed: %v", err)
	}
}

// TestAlltoallvMalformedCounts: wrong count-slice lengths and
// inconsistent send lengths are typed errors for both implementations.
func TestAlltoallvMalformedCounts(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if _, err := c.AlltoallvChecked(nil, []int{1}, []int{1, 1}); !errors.Is(err, ErrCountMismatch) {
			t.Errorf("alltoallv short counts: %v", err)
		}
		if _, err := c.AlltoallvChecked(make([]complex128, 3), []int{1, 1}, []int{1, 1}); !errors.Is(err, ErrCountMismatch) {
			t.Errorf("alltoallv bad send length: %v", err)
		}
		if _, err := c.PairwiseAlltoallvChecked(nil, []int{1}, []int{1, 1}); !errors.Is(err, ErrCountMismatch) {
			t.Errorf("pairwise short counts: %v", err)
		}
		if _, err := c.PairwiseAlltoallvChecked(make([]complex128, 3), []int{1, 1}, []int{1, 1}); !errors.Is(err, ErrCountMismatch) {
			t.Errorf("pairwise bad send length: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("world failed: %v", err)
	}
}

// TestAlltoallvPeerCountMismatch: ranks disagreeing about recvCounts is
// detected on receive and names the offending peer.
func TestAlltoallvPeerCountMismatch(t *testing.T) {
	w, _ := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		sendCounts := []int{1, 1}
		recvCounts := []int{1, 1}
		if c.Rank() == 0 {
			recvCounts = []int{1, 2} // expects more than rank 1 sends
		}
		c.Alltoallv(make([]complex128, 2), sendCounts, recvCounts)
		return nil
	})
	var ce *CollectiveError
	if !errors.As(err, &ce) {
		t.Fatalf("got %v (%T), want *CollectiveError", err, err)
	}
	if !errors.Is(err, ErrCountMismatch) {
		t.Errorf("error %v does not wrap ErrCountMismatch", err)
	}
}

// TestRunKeepsTypedFaults: a panic carrying a comm fault comes back from
// Run as that same typed error.
func TestRunKeepsTypedFaults(t *testing.T) {
	w, _ := NewWorld(2)
	want := &CollectiveError{Op: "test", Rank: 1, Err: ErrCountMismatch}
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			panic(want)
		}
		c.Recv(1, 0) // blocks until the abort wakes it
		return nil
	})
	var ce *CollectiveError
	if !errors.As(err, &ce) || ce != want {
		t.Fatalf("got %v, want the original *CollectiveError", err)
	}
}

// TestCheckedAbortSurfaces: SendChecked/RecvCChecked convert the abort
// fault to an error return.
func TestCheckedAbortSurfaces(t *testing.T) {
	w, _ := NewWorld(2)
	errs := make([]error, 2)
	_ = w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return errors.New("rank 1 dies")
		}
		_, err := c.RecvCChecked(1, 7)
		errs[0] = err
		return nil
	})
	var ae *AbortError
	if !errors.As(errs[0], &ae) {
		t.Fatalf("rank 0 RecvCChecked: got %v, want *AbortError", errs[0])
	}
}
