package mpi

import (
	"fmt"
	"testing"
)

func TestSplitSingletonGroups(t *testing.T) {
	// Every rank its own color: size-1 subcommunicators must still
	// support the collectives (trivially).
	w := mustWorld(t, 4)
	err := w.Run(func(c *Comm) error {
		sc := c.Split(c.Rank(), 0)
		if sc.Size() != 1 || sc.Rank() != 0 {
			return fmt.Errorf("rank %d: size %d rank %d", c.Rank(), sc.Size(), sc.Rank())
		}
		out := sc.Alltoall([]complex128{42}, 1)
		if len(out) != 1 || out[0] != 42 {
			return fmt.Errorf("singleton alltoall: %v", out)
		}
		all := sc.Allgather([]complex128{7i})
		if len(all) != 1 || all[0] != 7i {
			return fmt.Errorf("singleton allgather: %v", all)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitAllOneGroup(t *testing.T) {
	// Single color: the subcommunicator must mirror the parent ordering.
	w := mustWorld(t, 5)
	err := w.Run(func(c *Comm) error {
		sc := c.Split(0, c.Rank())
		if sc.Size() != 5 || sc.Rank() != c.Rank() {
			return fmt.Errorf("rank %d: subcomm (%d, %d)", c.Rank(), sc.Size(), sc.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubcommAlltoallLengthPanicSurfaces(t *testing.T) {
	w := mustWorld(t, 2)
	err := w.Run(func(c *Comm) error {
		sc := c.Split(0, c.Rank())
		sc.Alltoall(make([]complex128, 3), 2) // wrong length: 2 ranks × 2
		return nil
	})
	if err == nil {
		t.Fatal("expected surfaced panic for wrong alltoall length")
	}
}

func TestSequentialSplitsKeepWorking(t *testing.T) {
	// Two different groupings back to back exercise tag reuse across
	// subcommunicator generations.
	w := mustWorld(t, 6)
	err := w.Run(func(c *Comm) error {
		a := c.Split(c.Rank()%2, c.Rank())
		got := a.Allgather([]complex128{complex(float64(c.Rank()), 0)})
		if len(got) != 3 {
			return fmt.Errorf("first split gathered %d", len(got))
		}
		b := c.Split(c.Rank()/3, c.Rank())
		got = b.Allgather([]complex128{complex(float64(c.Rank()), 0)})
		if len(got) != 3 {
			return fmt.Errorf("second split gathered %d", len(got))
		}
		// Membership check: group of rank 4 under /3 coloring is {3,4,5}.
		if c.Rank() == 4 {
			for i, v := range got {
				if real(v) != float64(3+i) {
					return fmt.Errorf("second split contents: %v", got)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
