package mpi

import "fmt"

// PairwiseAlltoallv is an alternative all-to-all implementation built
// from pairwise Sendrecv exchanges (paper Fig 3: "implemented via the
// MPI all-to-all primitive, or by other techniques such as non-blocking
// send-receive"). It performs size−1 rounds; in round d, rank p exchanges
// with rank p XOR-free partner (p+d) mod size and (p−d) mod size, which
// keeps every link busy without hot spots. Semantics and counters are
// identical to Alltoallv.
func (c *Comm) PairwiseAlltoallv(send []complex128, sendCounts, recvCounts []int) []complex128 {
	out, err := c.PairwiseAlltoallvChecked(send, sendCounts, recvCounts)
	if err != nil {
		panic(err)
	}
	return out
}

// PairwiseAlltoallvChecked is PairwiseAlltoallv returning typed errors
// instead of panicking, mirroring AlltoallvChecked.
func (c *Comm) PairwiseAlltoallvChecked(send []complex128, sendCounts, recvCounts []int) (out []complex128, err error) {
	defer recoverFault(&err)
	size := c.world.size
	if len(sendCounts) != size || len(recvCounts) != size {
		return nil, &CollectiveError{Op: "pairwise_alltoallv", Rank: c.rank, Err: fmt.Errorf(
			"%w: needs %d counts, got %d/%d", ErrCountMismatch, size, len(sendCounts), len(recvCounts))}
	}
	if c.rank == 0 {
		c.world.stats.alltoalls.Add(1)
	}
	offs := prefix(sendCounts)
	roffs := prefix(recvCounts)
	if len(send) != offs[size] {
		return nil, &CollectiveError{Op: "pairwise_alltoallv", Rank: c.rank, Err: fmt.Errorf(
			"%w: send length %d, counts sum %d", ErrCountMismatch, len(send), offs[size])}
	}
	out = make([]complex128, roffs[size])
	copy(out[roffs[c.rank]:roffs[c.rank+1]], send[offs[c.rank]:offs[c.rank+1]])
	for d := 1; d < size; d++ {
		to := (c.rank + d) % size
		from := (c.rank - d + size) % size
		chunk := send[offs[to]:offs[to+1]]
		c.world.stats.alltoallBytes.Add(sizeOf(chunk))
		data := c.Sendrecv(to, tagAlltoall-d, chunk, from, tagAlltoall-d).([]complex128)
		if len(data) != recvCounts[from] {
			return nil, &CollectiveError{Op: "pairwise_alltoallv", Rank: c.rank, Err: fmt.Errorf(
				"%w: expected %d elements from rank %d, got %d", ErrCountMismatch, recvCounts[from], from, len(data))}
		}
		copy(out[roffs[from]:roffs[from+1]], data)
	}
	return out, nil
}

// PairwiseAlltoall is the equal-counts form of PairwiseAlltoallv.
func (c *Comm) PairwiseAlltoall(send []complex128, chunk int) []complex128 {
	counts := make([]int, c.world.size)
	for i := range counts {
		counts[i] = chunk
	}
	return c.PairwiseAlltoallv(send, counts, counts)
}

func prefix(counts []int) []int {
	offs := make([]int, len(counts)+1)
	for i, n := range counts {
		offs[i+1] = offs[i] + n
	}
	return offs
}
