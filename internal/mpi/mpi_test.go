package mpi

import (
	"errors"
	"fmt"
	"math/cmplx"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// worldSizes covers degenerate, power-of-two and odd sizes (binomial
// trees must handle non-powers of two).
var worldSizes = []int{1, 2, 3, 4, 5, 7, 8, 13, 16}

func mustWorld(t *testing.T, size int) *World {
	t.Helper()
	w, err := NewWorld(size)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorldRejectsBadSize(t *testing.T) {
	for _, s := range []int{0, -1} {
		if _, err := NewWorld(s); err == nil {
			t.Errorf("NewWorld(%d): expected error", s)
		}
	}
}

func TestSendRecvRing(t *testing.T) {
	for _, size := range worldSizes {
		w := mustWorld(t, size)
		err := w.Run(func(c *Comm) error {
			next := (c.Rank() + 1) % size
			prev := (c.Rank() - 1 + size) % size
			c.Send(next, 7, []complex128{complex(float64(c.Rank()), 0)})
			got := c.RecvC(prev, 7)
			if len(got) != 1 || real(got[0]) != float64(prev) {
				return fmt.Errorf("rank %d: got %v from %d", c.Rank(), got, prev)
			}
			return nil
		})
		if err != nil {
			t.Errorf("size %d: %v", size, err)
		}
	}
}

func TestSendCopiesPayload(t *testing.T) {
	w := mustWorld(t, 2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			buf := []complex128{1, 2, 3}
			c.Send(1, 0, buf)
			buf[0] = 99 // must not be visible to the receiver
			return nil
		}
		got := c.RecvC(0, 0)
		if got[0] != 1 {
			return fmt.Errorf("send did not copy: got %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageOrderPreserved(t *testing.T) {
	w := mustWorld(t, 2)
	err := w.Run(func(c *Comm) error {
		const n = 100
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 3, []complex128{complex(float64(i), 0)})
			}
			return nil
		}
		for i := 0; i < n; i++ {
			got := c.RecvC(0, 3)
			if real(got[0]) != float64(i) {
				return fmt.Errorf("message %d arrived out of order: %v", i, got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendrecvExchange(t *testing.T) {
	w := mustWorld(t, 4)
	err := w.Run(func(c *Comm) error {
		partner := c.Rank() ^ 1
		got := c.Sendrecv(partner, 1, []complex128{complex(float64(c.Rank()), 0)}, partner, 1)
		v := got.([]complex128)
		if real(v[0]) != float64(partner) {
			return fmt.Errorf("rank %d: exchange got %v", c.Rank(), v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, size := range worldSizes {
		w := mustWorld(t, size)
		var phase atomic.Int64
		err := w.Run(func(c *Comm) error {
			phase.Add(1)
			c.Barrier()
			// After the barrier every rank must observe all arrivals.
			if got := phase.Load(); got != int64(size) {
				return fmt.Errorf("rank %d: phase %d after barrier, want %d", c.Rank(), got, size)
			}
			return nil
		})
		if err != nil {
			t.Errorf("size %d: %v", size, err)
		}
	}
}

func TestBcastFromEveryRoot(t *testing.T) {
	for _, size := range []int{1, 3, 4, 7, 8} {
		for root := 0; root < size; root++ {
			w := mustWorld(t, size)
			err := w.Run(func(c *Comm) error {
				var payload any
				if c.Rank() == root {
					payload = []complex128{complex(float64(root), 1)}
				}
				got := c.Bcast(root, payload).([]complex128)
				if got[0] != complex(float64(root), 1) {
					return fmt.Errorf("rank %d: bcast got %v", c.Rank(), got)
				}
				return nil
			})
			if err != nil {
				t.Errorf("size %d root %d: %v", size, root, err)
			}
		}
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, size := range worldSizes {
		for root := 0; root < size; root += 2 {
			w := mustWorld(t, size)
			want := complex(float64(size*(size-1)/2), float64(size))
			err := w.Run(func(c *Comm) error {
				v := complex(float64(c.Rank()), 1)
				sum := c.Reduce(root, v)
				if c.Rank() == root && cmplx.Abs(sum-want) > 1e-12 {
					return fmt.Errorf("reduce at root %d: %v want %v", root, sum, want)
				}
				all := c.Allreduce(v)
				if cmplx.Abs(all-want) > 1e-12 {
					return fmt.Errorf("allreduce rank %d: %v want %v", c.Rank(), all, want)
				}
				return nil
			})
			if err != nil {
				t.Errorf("size %d root %d: %v", size, root, err)
			}
		}
	}
}

func TestGatherAllgather(t *testing.T) {
	for _, size := range worldSizes {
		w := mustWorld(t, size)
		err := w.Run(func(c *Comm) error {
			chunk := []complex128{complex(float64(c.Rank()), 0), complex(0, float64(c.Rank()))}
			all := c.Allgather(chunk)
			if len(all) != 2*size {
				return fmt.Errorf("allgather length %d", len(all))
			}
			for r := 0; r < size; r++ {
				if all[2*r] != complex(float64(r), 0) || all[2*r+1] != complex(0, float64(r)) {
					return fmt.Errorf("allgather chunk %d corrupt: %v", r, all[2*r:2*r+2])
				}
			}
			g := c.Gather(1%size, chunk)
			if c.Rank() == 1%size {
				if len(g) != 2*size {
					return fmt.Errorf("gather length %d", len(g))
				}
			} else if g != nil {
				return fmt.Errorf("non-root gather returned data")
			}
			return nil
		})
		if err != nil {
			t.Errorf("size %d: %v", size, err)
		}
	}
}

func TestAlltoallTransposesRankChunks(t *testing.T) {
	for _, size := range worldSizes {
		const chunk = 3
		w := mustWorld(t, size)
		err := w.Run(func(c *Comm) error {
			send := make([]complex128, size*chunk)
			for r := 0; r < size; r++ {
				for k := 0; k < chunk; k++ {
					send[r*chunk+k] = complex(float64(c.Rank()), float64(r*chunk+k))
				}
			}
			got := c.Alltoall(send, chunk)
			for r := 0; r < size; r++ {
				for k := 0; k < chunk; k++ {
					want := complex(float64(r), float64(c.Rank()*chunk+k))
					if got[r*chunk+k] != want {
						return fmt.Errorf("rank %d: from %d slot %d got %v want %v",
							c.Rank(), r, k, got[r*chunk+k], want)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Errorf("size %d: %v", size, err)
		}
	}
}

func TestAlltoallvUnequalCounts(t *testing.T) {
	const size = 4
	w := mustWorld(t, size)
	err := w.Run(func(c *Comm) error {
		// Rank r sends r+d+1 elements to rank d, value-tagged.
		sendCounts := make([]int, size)
		recvCounts := make([]int, size)
		for d := 0; d < size; d++ {
			sendCounts[d] = c.Rank() + d + 1
			recvCounts[d] = d + c.Rank() + 1
		}
		var send []complex128
		for d := 0; d < size; d++ {
			for k := 0; k < sendCounts[d]; k++ {
				send = append(send, complex(float64(c.Rank()*100+d), float64(k)))
			}
		}
		got := c.Alltoallv(send, sendCounts, recvCounts)
		idx := 0
		for r := 0; r < size; r++ {
			for k := 0; k < recvCounts[r]; k++ {
				want := complex(float64(r*100+c.Rank()), float64(k))
				if got[idx] != want {
					return fmt.Errorf("rank %d: got[%d]=%v want %v", c.Rank(), idx, got[idx], want)
				}
				idx++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounting(t *testing.T) {
	w := mustWorld(t, 4)
	err := w.Run(func(c *Comm) error {
		send := make([]complex128, 4*10)
		c.Alltoall(send, 10)
		c.Barrier()
		if c.Rank() == 0 {
			c.Send(1, 5, []complex128{1, 2})
		}
		if c.Rank() == 1 {
			c.RecvC(0, 5)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := w.Stats()
	if s.Alltoalls != 1 {
		t.Errorf("Alltoalls = %d, want 1", s.Alltoalls)
	}
	// 4 ranks × 3 foreign destinations × 10 complex × 16 bytes.
	if want := int64(4 * 3 * 10 * 16); s.AlltoallBytes != want {
		t.Errorf("AlltoallBytes = %d, want %d", s.AlltoallBytes, want)
	}
	if s.Barriers != 1 {
		t.Errorf("Barriers = %d, want 1", s.Barriers)
	}
	if s.P2PMessages == 0 || s.P2PBytes == 0 {
		t.Error("expected nonzero wire counters")
	}
}

func TestRunPropagatesError(t *testing.T) {
	w := mustWorld(t, 3)
	boom := errors.New("boom")
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 2 {
			return boom
		}
		// Other ranks block forever; the abort must wake them.
		c.RecvC(2, 9)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want boom", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	w := mustWorld(t, 2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			panic("kaboom")
		}
		c.RecvC(0, 1)
		return nil
	})
	if err == nil {
		t.Fatal("expected error from panicking rank")
	}
}

func TestTagMismatchPanics(t *testing.T) {
	w := mustWorld(t, 2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 1, []complex128{1})
			return nil
		}
		c.RecvC(0, 2) // wrong tag: must panic, surfaced as error
		return nil
	})
	if err == nil {
		t.Fatal("expected tag mismatch error")
	}
}

func TestInvalidRankPanicsSurface(t *testing.T) {
	w := mustWorld(t, 2)
	if err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(5, 0, nil)
		}
		return nil
	}); err == nil {
		t.Fatal("expected error for out-of-range destination")
	}
}

// TestPropAlltoallIsPermutation: an all-to-all must move every element
// exactly once — the multiset of values is preserved globally.
func TestPropAlltoallIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 1 + rng.Intn(9)
		chunk := 1 + rng.Intn(20)
		w, err := NewWorld(size)
		if err != nil {
			return false
		}
		inSum := make([]complex128, size)
		outSum := make([]complex128, size)
		err = w.Run(func(c *Comm) error {
			local := rand.New(rand.NewSource(seed + int64(c.Rank())))
			send := make([]complex128, size*chunk)
			var s complex128
			for i := range send {
				send[i] = complex(local.Float64(), local.Float64())
				s += send[i]
			}
			inSum[c.Rank()] = s
			got := c.Alltoall(send, chunk)
			var o complex128
			for _, v := range got {
				o += v
			}
			outSum[c.Rank()] = o
			return nil
		})
		if err != nil {
			return false
		}
		var ti, to complex128
		for r := 0; r < size; r++ {
			ti += inSum[r]
			to += outSum[r]
		}
		return cmplx.Abs(ti-to) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPairwiseAlltoallMatchesCollective(t *testing.T) {
	for _, size := range worldSizes {
		const chunk = 5
		w := mustWorld(t, size)
		err := w.Run(func(c *Comm) error {
			send := make([]complex128, size*chunk)
			for i := range send {
				send[i] = complex(float64(c.Rank()), float64(i))
			}
			a := c.Alltoall(append([]complex128(nil), send...), chunk)
			b := c.PairwiseAlltoall(send, chunk)
			for i := range a {
				if a[i] != b[i] {
					return fmt.Errorf("rank %d: pairwise[%d]=%v collective=%v", c.Rank(), i, b[i], a[i])
				}
			}
			return nil
		})
		if err != nil {
			t.Errorf("size %d: %v", size, err)
		}
	}
}

func TestPairwiseAlltoallvUnequal(t *testing.T) {
	const size = 5
	w := mustWorld(t, size)
	err := w.Run(func(c *Comm) error {
		sendCounts := make([]int, size)
		recvCounts := make([]int, size)
		for d := 0; d < size; d++ {
			sendCounts[d] = (c.Rank()+d)%3 + 1
			recvCounts[d] = (d+c.Rank())%3 + 1
		}
		var send []complex128
		for d := 0; d < size; d++ {
			for k := 0; k < sendCounts[d]; k++ {
				send = append(send, complex(float64(c.Rank()*10+d), float64(k)))
			}
		}
		got := c.PairwiseAlltoallv(send, sendCounts, recvCounts)
		idx := 0
		for r := 0; r < size; r++ {
			for k := 0; k < recvCounts[r]; k++ {
				want := complex(float64(r*10+c.Rank()), float64(k))
				if got[idx] != want {
					return fmt.Errorf("rank %d: got[%d]=%v want %v", c.Rank(), idx, got[idx], want)
				}
				idx++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPairwiseCountsAsOneAlltoall(t *testing.T) {
	w := mustWorld(t, 4)
	if err := w.Run(func(c *Comm) error {
		c.PairwiseAlltoall(make([]complex128, 4*3), 3)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := w.Stats().Alltoalls; got != 1 {
		t.Errorf("pairwise exchange counted as %d all-to-alls, want 1", got)
	}
}
