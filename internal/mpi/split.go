package mpi

import (
	"fmt"
	"sort"
)

// SubComm is a communicator over a subset of a world's ranks, created by
// Split. It offers the same collectives, implemented by delegating to
// the parent world's mailboxes with translated ranks.
type SubComm struct {
	parent  *Comm
	members []int // parent ranks, sorted by (key, parent rank)
	rank    int   // this rank's index within members
	tagBase int   // tag offset separating concurrent subcommunicators
}

const tagSplit = -1000

// Split partitions the caller's world like MPI_Comm_split: every rank
// calls Split with a color and key; ranks sharing a color form a
// subcommunicator, ordered by key (ties broken by parent rank). The call
// is collective over the whole world.
func (c *Comm) Split(color, key int) *SubComm {
	// Allgather the (color, key) pairs through the parent collectives.
	pair := []complex128{complex(float64(color), float64(key))}
	all := c.Allgather(pair)
	type member struct{ rank, color, key int }
	var mine []member
	for r := 0; r < c.Size(); r++ {
		col := int(real(all[r]))
		if col != color {
			continue
		}
		mine = append(mine, member{rank: r, color: col, key: int(imag(all[r]))})
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].key != mine[j].key {
			return mine[i].key < mine[j].key
		}
		return mine[i].rank < mine[j].rank
	})
	// A fixed tag base suffices: two distinct subcommunicators never
	// share a (sender, receiver) pair unless they are the same group, and
	// per-pair FIFO keeps sequential collectives ordered.
	sc := &SubComm{parent: c, tagBase: tagSplit}
	for i, m := range mine {
		sc.members = append(sc.members, m.rank)
		if m.rank == c.Rank() {
			sc.rank = i
		}
	}
	return sc
}

// Rank returns this rank's id within the subcommunicator.
func (s *SubComm) Rank() int { return s.rank }

// Size returns the subcommunicator's size.
func (s *SubComm) Size() int { return len(s.members) }

// Send delivers data to subcommunicator rank `to`.
func (s *SubComm) Send(to, tag int, data any) {
	s.parent.send(s.members[to], s.tagBase-tag, data)
}

// Recv blocks for the next message from subcommunicator rank `from`.
func (s *SubComm) Recv(from, tag int) any {
	return s.parent.recv(s.members[from], s.tagBase-tag)
}

// RecvC is Recv for []complex128 payloads.
func (s *SubComm) RecvC(from, tag int) []complex128 {
	return s.Recv(from, tag).([]complex128)
}

// Alltoall performs the equal-counts exchange within the subgroup.
func (s *SubComm) Alltoall(send []complex128, chunk int) []complex128 {
	size := len(s.members)
	if len(send) != size*chunk {
		panic(fmt.Sprintf("mpi: subcomm alltoall send length %d, want %d", len(send), size*chunk))
	}
	if s.rank == 0 {
		s.parent.world.stats.alltoalls.Add(1)
	}
	for r := 0; r < size; r++ {
		if r == s.rank {
			continue
		}
		payload := send[r*chunk : (r+1)*chunk]
		s.parent.world.stats.alltoallBytes.Add(sizeOf(payload))
		s.Send(r, 1, payload)
	}
	out := make([]complex128, size*chunk)
	copy(out[s.rank*chunk:(s.rank+1)*chunk], send[s.rank*chunk:(s.rank+1)*chunk])
	for r := 0; r < size; r++ {
		if r == s.rank {
			continue
		}
		data := s.RecvC(r, 1)
		copy(out[r*chunk:(r+1)*chunk], data)
	}
	return out
}

// Allgather concatenates equal-length chunks across the subgroup.
func (s *SubComm) Allgather(chunk []complex128) []complex128 {
	size := len(s.members)
	for r := 0; r < size; r++ {
		if r == s.rank {
			continue
		}
		s.Send(r, 2, chunk)
	}
	out := make([]complex128, size*len(chunk))
	copy(out[s.rank*len(chunk):], chunk)
	for r := 0; r < size; r++ {
		if r == s.rank {
			continue
		}
		data := s.RecvC(r, 2)
		copy(out[r*len(chunk):], data)
	}
	return out
}
