package mpi

import "soifft/internal/exch"

// StartAlltoallv begins a chunked, asynchronous all-to-all (the
// streaming collective surface core.StreamComm) over the in-process
// runtime. Sends are buffered and complete immediately, so the in-flight
// window never blocks here; the value of the in-process stream is that
// the same streamed driver code runs under the world's traffic counters
// (the collective op counted once, payload bytes at each sender —
// exactly the blocking Alltoall's accounting, regardless of chunking).
func (c *Comm) StartAlltoallv(o exch.Options) exch.Stream {
	if c.rank == 0 {
		c.world.stats.alltoalls.Add(1)
	}
	return &countedStream{Stream: exch.Start(c, o), c: c}
}

// countedStream mirrors streamed payloads into the world statistics at
// the sender, self-chunks excluded, matching Alltoallv.
type countedStream struct {
	exch.Stream
	c *Comm
}

func (s *countedStream) Send(dst, idx int, data []complex128) error {
	if dst != s.c.rank {
		s.c.world.stats.alltoallBytes.Add(int64(len(data)) * 16)
	}
	return s.Stream.Send(dst, idx, data)
}
