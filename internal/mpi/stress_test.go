package mpi

import (
	"fmt"
	"math/cmplx"
	"math/rand"
	"testing"
)

// TestCollectiveStress runs a randomized but rank-deterministic sequence
// of mixed collectives and point-to-point traffic on one world and
// cross-checks every result against a sequential oracle. This guards the
// FIFO/tag-matching discipline that all higher layers rely on.
func TestCollectiveStress(t *testing.T) {
	const (
		size   = 6
		rounds = 60
		seed   = 12345
	)
	// The op schedule must be identical on every rank (SPMD), so derive
	// it from a shared seed before spawning.
	sched := rand.New(rand.NewSource(seed))
	type op struct {
		kind  int
		root  int
		chunk int
	}
	ops := make([]op, rounds)
	for i := range ops {
		ops[i] = op{kind: sched.Intn(6), root: sched.Intn(size), chunk: 1 + sched.Intn(7)}
	}

	w := mustWorld(t, size)
	err := w.Run(func(c *Comm) error {
		val := func(i int) complex128 {
			return complex(float64(c.Rank()*1000+i), float64(i))
		}
		for i, o := range ops {
			switch o.kind {
			case 0: // barrier
				c.Barrier()
			case 1: // bcast
				var payload any
				if c.Rank() == o.root {
					payload = []complex128{val(i)}
				}
				got := c.Bcast(o.root, payload).([]complex128)
				want := complex(float64(o.root*1000+i), float64(i))
				if got[0] != want {
					return fmt.Errorf("op %d bcast: got %v want %v", i, got[0], want)
				}
			case 2: // allreduce
				got := c.Allreduce(val(i))
				var want complex128
				for r := 0; r < size; r++ {
					want += complex(float64(r*1000+i), float64(i))
				}
				if cmplx.Abs(got-want) > 1e-9 {
					return fmt.Errorf("op %d allreduce: got %v want %v", i, got, want)
				}
			case 3: // allgather
				all := c.Allgather([]complex128{val(i)})
				for r := 0; r < size; r++ {
					if all[r] != complex(float64(r*1000+i), float64(i)) {
						return fmt.Errorf("op %d allgather slot %d: %v", i, r, all[r])
					}
				}
			case 4: // alltoall
				send := make([]complex128, size*o.chunk)
				for r := 0; r < size; r++ {
					for k := 0; k < o.chunk; k++ {
						send[r*o.chunk+k] = complex(float64(c.Rank()), float64(r*o.chunk+k))
					}
				}
				got := c.Alltoall(send, o.chunk)
				for r := 0; r < size; r++ {
					for k := 0; k < o.chunk; k++ {
						want := complex(float64(r), float64(c.Rank()*o.chunk+k))
						if got[r*o.chunk+k] != want {
							return fmt.Errorf("op %d alltoall: slot (%d,%d) %v want %v",
								i, r, k, got[r*o.chunk+k], want)
						}
					}
				}
			case 5: // ring sendrecv
				next := (c.Rank() + 1) % size
				prev := (c.Rank() - 1 + size) % size
				got := c.Sendrecv(next, 50+i, []complex128{val(i)}, prev, 50+i).([]complex128)
				want := complex(float64(prev*1000+i), float64(i))
				if got[0] != want {
					return fmt.Errorf("op %d ring: got %v want %v", i, got[0], want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
