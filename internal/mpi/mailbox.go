package mpi

import "sync"

// packet is one in-flight message.
type packet struct {
	tag  int
	data any
}

// mailbox is an unbounded FIFO queue of packets for one (sender,
// receiver) pair. Unboundedness is essential: it gives MPI's buffered
// standard-send semantics, so an SPMD exchange where every rank posts all
// sends before any receive cannot deadlock.
type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []packet
	dead  bool // set when the world aborts; wakes blocked receivers
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(p packet) {
	m.mu.Lock()
	m.queue = append(m.queue, p)
	m.mu.Unlock()
	m.cond.Signal()
}

// get blocks for the next packet and checks its tag. A tag mismatch means
// the SPMD program's sends and receives are mis-sequenced, which is a
// programming error: it panics with a diagnostic.
func (m *mailbox) get(tag int) (packet, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 && !m.dead {
		m.cond.Wait()
	}
	if m.dead && len(m.queue) == 0 {
		return packet{}, false
	}
	p := m.queue[0]
	// Drop the reference so the backing array can be collected.
	m.queue[0] = packet{}
	m.queue = m.queue[1:]
	if p.tag != tag {
		panic(&TagMismatchError{Want: tag, Got: p.tag})
	}
	return p, true
}

// kill wakes all blocked receivers; subsequent gets fail once drained.
func (m *mailbox) kill() {
	m.mu.Lock()
	m.dead = true
	m.mu.Unlock()
	m.cond.Broadcast()
}
