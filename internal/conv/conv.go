// Package conv implements distributed cyclic convolution, the
// application the paper's introduction singles out: "the numbers of
// global transposes can be reduced if out-of-order data can be
// accommodated such as when FFT is used to compute a convolution".
//
// Three strategies over block-distributed data, with a cached filter
// spectrum (the steady-state case of repeated filtering):
//
//   - InOrder: conventional six-step FFT → pointwise → six-step inverse:
//     3 + 3 = 6 all-to-alls of N points each.
//   - OutOfOrder: six-step forward *without* the final output transpose,
//     pointwise multiply in the transposed layout, inverse that starts
//     from that layout: 2 + 2 = 4 all-to-alls.
//   - SOI: forward SOI → pointwise → inverse SOI: 1 + 1 = 2 all-to-alls
//     of (1+β)N points — the low-communication framework compounds when
//     transforms are chained.
package conv

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"

	"soifft/internal/baseline"
	"soifft/internal/core"
	"soifft/internal/fft"
	"soifft/internal/mpi"
)

// SOI performs localOut = IDFT(DFT(x)·filterSpec) with two SOI passes.
// filterSpecLocal is this rank's natural-order block of the filter's
// spectrum (length N/R), typically computed once and cached. Options
// (e.g. core.WithAsyncWindow) apply to both passes.
func SOI(c *mpi.Comm, pl *core.Plan, localOut, localX, filterSpecLocal []complex128, opts ...core.DistOption) error {
	spec := make([]complex128, len(localX))
	if _, err := pl.RunDistributed(context.Background(), c, spec, localX, opts...); err != nil {
		return err
	}
	for i := range spec {
		spec[i] *= filterSpecLocal[i]
	}
	_, err := pl.RunDistributedInverse(context.Background(), c, localOut, spec, opts...)
	return err
}

// InOrder performs the same convolution with the conventional in-order
// transpose algorithm on both sides (6 exchanges).
func InOrder(c *mpi.Comm, localOut, localX, filterSpecLocal []complex128, n int) error {
	alg := baseline.SixStep{}
	spec := make([]complex128, len(localX))
	if _, err := alg.Transform(c, spec, localX, n); err != nil {
		return err
	}
	for i := range spec {
		spec[i] *= filterSpecLocal[i]
	}
	// Inverse via the conjugation identity; scaling is local.
	conjInPlace(spec)
	if _, err := alg.Transform(c, localOut, spec, n); err != nil {
		return err
	}
	inv := 1 / float64(n)
	for i, v := range localOut {
		localOut[i] = complex(real(v)*inv, -imag(v)*inv)
	}
	return nil
}

// OutOfOrder is a distributed FFT pair that stops short of natural
// order: Forward leaves the spectrum in the transposed n1×n2 layout
// (2 exchanges), Inverse starts from it (2 exchanges). Pointwise
// operations between the two are layout-agnostic as long as both
// operands use the same layout (use ForwardSpectrum for the filter).
type OutOfOrder struct {
	N1, N2 int // N = N1·N2, both divisible by the rank count
}

// PlanOutOfOrder chooses a square-ish split for n on r ranks.
func PlanOutOfOrder(n, r int) (OutOfOrder, error) {
	best := -1
	for n1 := r; n1*n1 <= n*r; n1++ {
		if n%n1 != 0 {
			continue
		}
		n2 := n / n1
		if n1%r != 0 || n2%r != 0 {
			continue
		}
		if best == -1 || absInt(n1*n1-n) < absInt(best*best-n) {
			best = n1
		}
	}
	if best == -1 {
		return OutOfOrder{}, fmt.Errorf("conv: no N1·N2 split of %d for %d ranks", n, r)
	}
	return OutOfOrder{N1: best, N2: n / best}, nil
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Forward computes the spectrum of localIn in the transposed layout:
// the returned slice is this rank's rows of the n1×n2 matrix
// Z[k1][j2→k2], i.e. Z[k1][k2] = y[k2·N1 + k1]. Two exchanges.
func (o OutOfOrder) Forward(c *mpi.Comm, localIn []complex128) ([]complex128, error) {
	r := c.Size()
	n := o.N1 * o.N2
	rn2 := o.N2 / r
	// Steps 1-5 of the six-step algorithm (see baseline.SixStep), minus
	// the final transpose.
	a, err := distTransposeHere(c, localIn, o.N1, o.N2)
	if err != nil {
		return nil, err
	}
	p1, err := fft.CachedPlan(o.N1)
	if err != nil {
		return nil, err
	}
	p1.Batch(a, a, rn2)
	base := c.Rank() * rn2
	for j2 := 0; j2 < rn2; j2++ {
		g := float64(base + j2)
		row := a[j2*o.N1 : (j2+1)*o.N1]
		for k1 := 1; k1 < o.N1; k1++ {
			ang := -2 * math.Pi * g * float64(k1) / float64(n)
			row[k1] *= cmplx.Exp(complex(0, ang))
		}
	}
	b, err := distTransposeHere(c, a, o.N2, o.N1)
	if err != nil {
		return nil, err
	}
	p2, err := fft.CachedPlan(o.N2)
	if err != nil {
		return nil, err
	}
	p2.Batch(b, b, o.N1/r)
	return b, nil
}

// Inverse reconstructs the natural-order block-distributed sequence from
// a transposed-layout spectrum. Two exchanges.
func (o OutOfOrder) Inverse(c *mpi.Comm, localZ []complex128) ([]complex128, error) {
	r := c.Size()
	n := o.N1 * o.N2
	rn1 := o.N1 / r
	// Undo step 5: inverse row FFTs of length n2 (local).
	p2, err := fft.CachedPlan(o.N2)
	if err != nil {
		return nil, err
	}
	z := append([]complex128(nil), localZ...)
	p2.InverseBatch(z, z, rn1)
	// Undo step 4: transpose back to the n2×n1 view.
	a, err := distTransposeHere(c, z, o.N1, o.N2)
	if err != nil {
		return nil, err
	}
	// Undo step 3: conjugate twiddles.
	rn2 := o.N2 / r
	base := c.Rank() * rn2
	for j2 := 0; j2 < rn2; j2++ {
		g := float64(base + j2)
		row := a[j2*o.N1 : (j2+1)*o.N1]
		for k1 := 1; k1 < o.N1; k1++ {
			ang := 2 * math.Pi * g * float64(k1) / float64(n)
			row[k1] *= cmplx.Exp(complex(0, ang))
		}
	}
	// Undo step 2: inverse FFTs of length n1 (local rows).
	p1, err := fft.CachedPlan(o.N1)
	if err != nil {
		return nil, err
	}
	p1.InverseBatch(a, a, rn2)
	// Undo step 1: transpose back to natural order.
	return distTransposeHere(c, a, o.N2, o.N1)
}

// Convolve runs the 4-exchange out-of-order convolution; filterSpecT is
// the filter spectrum in the same transposed layout (from Forward).
func (o OutOfOrder) Convolve(c *mpi.Comm, localOut, localX, filterSpecT []complex128) error {
	spec, err := o.Forward(c, localX)
	if err != nil {
		return err
	}
	for i := range spec {
		spec[i] *= filterSpecT[i]
	}
	back, err := o.Inverse(c, spec)
	if err != nil {
		return err
	}
	copy(localOut, back)
	return nil
}

func conjInPlace(x []complex128) {
	for i, v := range x {
		x[i] = cmplx.Conj(v)
	}
}

// distTransposeHere mirrors baseline's global transpose (kept local to
// avoid exporting an internal detail from that package).
func distTransposeHere(c *mpi.Comm, local []complex128, n1, n2 int) ([]complex128, error) {
	r := c.Size()
	if n1%r != 0 || n2%r != 0 {
		return nil, fmt.Errorf("conv: transpose dims %dx%d not divisible by ranks %d", n1, n2, r)
	}
	rn1, rn2 := n1/r, n2/r
	if len(local) != rn1*n2 {
		return nil, fmt.Errorf("conv: transpose local length %d, want %d", len(local), rn1*n2)
	}
	send := make([]complex128, rn1*n2)
	for t := 0; t < r; t++ {
		base := t * rn1 * rn2
		for j2 := 0; j2 < rn2; j2++ {
			col := t*rn2 + j2
			for j1 := 0; j1 < rn1; j1++ {
				send[base+j2*rn1+j1] = local[j1*n2+col]
			}
		}
	}
	recv := c.Alltoall(send, rn1*rn2)
	out := make([]complex128, rn2*n1)
	for src := 0; src < r; src++ {
		chunk := recv[src*rn1*rn2 : (src+1)*rn1*rn2]
		for j2 := 0; j2 < rn2; j2++ {
			copy(out[j2*n1+src*rn1:j2*n1+(src+1)*rn1], chunk[j2*rn1:(j2+1)*rn1])
		}
	}
	return out, nil
}
