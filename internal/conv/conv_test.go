package conv

import (
	"testing"

	"soifft/internal/core"
	"soifft/internal/fft"
	"soifft/internal/mpi"
	"soifft/internal/signal"
)

// directCyclic is the O(N²) convolution reference.
func directCyclic(x, h []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for i := 0; i < n; i++ {
		var acc complex128
		for j := 0; j < n; j++ {
			acc += x[j] * h[(i-j+n)%n]
		}
		out[i] = acc
	}
	return out
}

// setup builds an input, filter, filter spectrum (natural order) and the
// direct-convolution reference.
func setup(n int, seed int64) (x, h, spec, want []complex128) {
	x = signal.Random(n, seed)
	h = signal.Random(n, seed+1)
	var err error
	spec, err = fft.Forward(h)
	if err != nil {
		panic(err)
	}
	want = directCyclic(x, h)
	return
}

func TestSOIConvolutionMatchesDirect(t *testing.T) {
	const n, r = 1024, 4
	x, _, spec, want := setup(n, 3)
	pl, err := core.NewPlan(core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: 48})
	if err != nil {
		t.Fatal(err)
	}
	got := make([]complex128, n)
	w, _ := mpi.NewWorld(r)
	nLocal := n / r
	err = w.Run(func(c *mpi.Comm) error {
		return SOI(c,
			pl,
			got[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			x[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			spec[c.Rank()*nLocal:(c.Rank()+1)*nLocal])
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := signal.RelErrL2(got, want); e > 1e-9 {
		t.Errorf("SOI convolution rel err %.3e", e)
	}
	if a := w.Stats().Alltoalls; a != 2 {
		t.Errorf("SOI convolution used %d all-to-alls, want 2", a)
	}
}

func TestInOrderConvolutionMatchesDirect(t *testing.T) {
	const n, r = 1024, 4
	x, _, spec, want := setup(n, 4)
	got := make([]complex128, n)
	w, _ := mpi.NewWorld(r)
	nLocal := n / r
	err := w.Run(func(c *mpi.Comm) error {
		return InOrder(c,
			got[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			x[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			spec[c.Rank()*nLocal:(c.Rank()+1)*nLocal], n)
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := signal.RelErrL2(got, want); e > 1e-10 {
		t.Errorf("in-order convolution rel err %.3e", e)
	}
	if a := w.Stats().Alltoalls; a != 6 {
		t.Errorf("in-order convolution used %d all-to-alls, want 6", a)
	}
}

func TestOutOfOrderRoundTrip(t *testing.T) {
	const n, r = 1024, 4
	o, err := PlanOutOfOrder(n, r)
	if err != nil {
		t.Fatal(err)
	}
	if o.N1*o.N2 != n {
		t.Fatalf("bad split %dx%d", o.N1, o.N2)
	}
	x := signal.Random(n, 5)
	back := make([]complex128, n)
	w, _ := mpi.NewWorld(r)
	nLocal := n / r
	err = w.Run(func(c *mpi.Comm) error {
		spec, err := o.Forward(c, x[c.Rank()*nLocal:(c.Rank()+1)*nLocal])
		if err != nil {
			return err
		}
		inv, err := o.Inverse(c, spec)
		if err != nil {
			return err
		}
		copy(back[c.Rank()*nLocal:(c.Rank()+1)*nLocal], inv)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := signal.MaxAbsErr(back, x); e > 1e-11 {
		t.Errorf("out-of-order round trip error %.3e", e)
	}
}

func TestOutOfOrderSpectrumLayout(t *testing.T) {
	// Forward's output must be the natural spectrum permuted to the
	// transposed layout: Z[k1][k2] = y[k2*N1 + k1].
	const n, r = 256, 2
	o, err := PlanOutOfOrder(n, r)
	if err != nil {
		t.Fatal(err)
	}
	x := signal.Random(n, 6)
	y, err := fft.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	w, _ := mpi.NewWorld(r)
	nLocal := n / r
	err = w.Run(func(c *mpi.Comm) error {
		spec, err := o.Forward(c, x[c.Rank()*nLocal:(c.Rank()+1)*nLocal])
		if err != nil {
			return err
		}
		rn1 := o.N1 / r
		for k1loc := 0; k1loc < rn1; k1loc++ {
			k1 := c.Rank()*rn1 + k1loc
			for k2 := 0; k2 < o.N2; k2++ {
				got := spec[k1loc*o.N2+k2]
				want := y[k2*o.N1+k1]
				if d := got - want; real(d)*real(d)+imag(d)*imag(d) > 1e-18 {
					t.Errorf("Z[%d][%d] = %v, want y[%d] = %v", k1, k2, got, k2*o.N1+k1, want)
					return nil
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOutOfOrderConvolutionMatchesDirect(t *testing.T) {
	const n, r = 1024, 4
	x, h, _, want := setup(n, 7)
	o, err := PlanOutOfOrder(n, r)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]complex128, n)
	w, _ := mpi.NewWorld(r)
	nLocal := n / r
	err = w.Run(func(c *mpi.Comm) error {
		// Filter spectrum in the transposed layout, computed once.
		hs, err := o.Forward(c, h[c.Rank()*nLocal:(c.Rank()+1)*nLocal])
		if err != nil {
			return err
		}
		return o.Convolve(c,
			got[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			x[c.Rank()*nLocal:(c.Rank()+1)*nLocal], hs)
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := signal.RelErrL2(got, want); e > 1e-10 {
		t.Errorf("out-of-order convolution rel err %.3e", e)
	}
	// 2 for the filter spectrum + 4 for the convolution.
	if a := w.Stats().Alltoalls; a != 6 {
		t.Errorf("total all-to-alls %d, want 6 (2 filter + 4 convolve)", a)
	}
}

func TestExchangeLadder(t *testing.T) {
	// The headline of this package: steady-state exchanges per
	// convolution are 2 (SOI) < 4 (out-of-order) < 6 (in-order).
	const n, r = 1024, 4
	x, _, spec, _ := setup(n, 8)
	nLocal := n / r

	pl, err := core.NewPlan(core.Params{N: n, P: 8, Mu: 5, Nu: 4, B: 32})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int64{}

	wSOI, _ := mpi.NewWorld(r)
	out := make([]complex128, n)
	if err := wSOI.Run(func(c *mpi.Comm) error {
		return SOI(c, pl, out[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			x[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			spec[c.Rank()*nLocal:(c.Rank()+1)*nLocal])
	}); err != nil {
		t.Fatal(err)
	}
	counts["soi"] = wSOI.Stats().Alltoalls

	o, _ := PlanOutOfOrder(n, r)
	hsT := make([][]complex128, r)
	wPre, _ := mpi.NewWorld(r)
	if err := wPre.Run(func(c *mpi.Comm) error {
		hs, err := o.Forward(c, spec[c.Rank()*nLocal:(c.Rank()+1)*nLocal])
		hsT[c.Rank()] = hs
		return err
	}); err != nil {
		t.Fatal(err)
	}
	wOOO, _ := mpi.NewWorld(r)
	if err := wOOO.Run(func(c *mpi.Comm) error {
		return o.Convolve(c, out[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			x[c.Rank()*nLocal:(c.Rank()+1)*nLocal], hsT[c.Rank()])
	}); err != nil {
		t.Fatal(err)
	}
	counts["ooo"] = wOOO.Stats().Alltoalls

	wIn, _ := mpi.NewWorld(r)
	if err := wIn.Run(func(c *mpi.Comm) error {
		return InOrder(c, out[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			x[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			spec[c.Rank()*nLocal:(c.Rank()+1)*nLocal], n)
	}); err != nil {
		t.Fatal(err)
	}
	counts["inorder"] = wIn.Stats().Alltoalls

	if counts["soi"] != 2 || counts["ooo"] != 4 || counts["inorder"] != 6 {
		t.Errorf("exchange ladder = %v, want soi:2 ooo:4 inorder:6", counts)
	}
}

func TestPlanOutOfOrderErrors(t *testing.T) {
	if _, err := PlanOutOfOrder(30, 4); err == nil {
		t.Error("expected split error")
	}
}

func TestConvErrorPaths(t *testing.T) {
	// SOI convolution must surface distributed-validation errors.
	pl, err := core.NewPlan(core.Params{N: 256, P: 4, Mu: 5, Nu: 4, B: 16})
	if err != nil {
		t.Fatal(err)
	}
	w, _ := mpi.NewWorld(3) // 3 does not divide P=4
	err = w.Run(func(c *mpi.Comm) error {
		buf := make([]complex128, 256/3+1)
		return SOI(c, pl, buf, buf, buf)
	})
	if err == nil {
		t.Error("expected rank-divisibility error")
	}
	// Out-of-order transform shape errors.
	o := OutOfOrder{N1: 16, N2: 16}
	w2, _ := mpi.NewWorld(3)
	err = w2.Run(func(c *mpi.Comm) error {
		_, err := o.Forward(c, make([]complex128, 256/3))
		return err
	})
	if err == nil {
		t.Error("expected transpose divisibility error")
	}
}
