// Package netsim models the interconnect fabrics of the paper's test
// systems (Table 1) so weak-scaling experiments can be priced at paper
// scale on a single machine.
//
// The methodology is the paper's own Section 7.4: communication time is
// derived from link bandwidths and topology (per-node injection limits
// for small systems, bisection limits for large ones), while compute
// times come from real measured execution. We apply that model to every
// scaling figure, not just the projection.
//
// All models answer one question: how long does an all-to-all take when
// each of n nodes exchanges a given number of bytes with the others?
package netsim

import (
	"fmt"
	"math"
	"time"
)

// Gbit converts gigabits per second to bytes per second.
const Gbit = 1e9 / 8

// Fabric prices collective and point-to-point operations on a topology.
type Fabric interface {
	// Name identifies the fabric in tables.
	Name() string
	// AlltoallTime models one all-to-all among n nodes in which every
	// node sends bytesPerNode in total (its full local payload, split
	// across the other n−1 nodes).
	AlltoallTime(n int, bytesPerNode int64) time.Duration
	// P2PTime models one neighbour message of the given size.
	P2PTime(bytes int64) time.Duration
}

// FatTree models Endeavor's two-level 14-ary fat tree on 4× QDR
// InfiniBand: per-node injection bandwidth is the binding constraint and
// aggregate bandwidth scales linearly up to LinearNodes nodes, degrading
// gently beyond (paper Section 7.1).
type FatTree struct {
	LinkGbit    float64 // per-node link, Gbit/s (QDR 4× = 40)
	Efficiency  float64 // achievable all-to-all fraction of link peak
	LatencyUS   float64 // per-message latency, microseconds
	LinearNodes int     // linear aggregate scaling up to here
	Contention  float64 // bandwidth degradation per log2(n) (routing congestion)
}

// Endeavor returns the paper's fat-tree cluster fabric. Efficiency and
// Contention are calibrated so the modeled MKL-class communication share
// (50–90%% of total time) and SOI speedups (≈1.2 at small n rising to
// ≈1.9 at 64 nodes, paper Fig 5) match the published measurements: large
// MPI all-to-alls typically sustain 20–30%% of link peak, falling with
// node count as static-routing hot spots multiply.
func Endeavor() FatTree {
	return FatTree{LinkGbit: 40, Efficiency: 0.25, LatencyUS: 2, LinearNodes: 32, Contention: 0.08}
}

// Name identifies the fabric.
func (f FatTree) Name() string { return "fat-tree QDR IB" }

// AlltoallTime: injection-bandwidth bound, with a contention factor once
// the aggregate exceeds the linearly-scaling region.
func (f FatTree) AlltoallTime(n int, bytesPerNode int64) time.Duration {
	if n <= 1 || bytesPerNode <= 0 {
		return 0
	}
	bw := f.LinkGbit * Gbit * f.Efficiency / (1 + f.Contention*math.Log2(float64(n)))
	if n > f.LinearNodes {
		// Upper tiers carry cross-branch traffic for n/LinearNodes
		// sub-trees; model a square-root contention penalty.
		bw /= math.Sqrt(float64(n) / float64(f.LinearNodes))
	}
	xfer := float64(bytesPerNode) / bw
	lat := f.LatencyUS * 1e-6 * float64(n-1)
	return secToDur(xfer + lat)
}

// P2PTime prices one message at full link speed.
func (f FatTree) P2PTime(bytes int64) time.Duration {
	return secToDur(float64(bytes)/(f.LinkGbit*Gbit*f.Efficiency) + f.LatencyUS*1e-6)
}

// Torus3D models Gordon's 4-ary 3-D torus with concentration factor 16:
// n = Concentration·k³ compute nodes on k³ switches; local (node-switch)
// channels are one QDR 4× link and global (switch-switch) channels are
// three. Below BisectionFree nodes the local channel binds; beyond, the
// bisection (4n/k global channels, half the traffic crossing) binds —
// exactly the paper's Section 7.4 model, including footnote 7.
type Torus3D struct {
	LocalGbit     float64 // node-to-switch channel, Gbit/s
	GlobalGbit    float64 // switch-to-switch channel, Gbit/s
	Efficiency    float64 // achievable all-to-all fraction of peak
	LatencyUS     float64
	Concentration int     // compute nodes per switch
	Contention    float64 // bandwidth degradation per log2(n)
}

// Gordon returns the paper's 3-D torus cluster fabric. The torus degrades
// faster than the fat tree under all-to-all traffic (multi-hop paths
// contend on shared ring links), which reproduces the paper's Fig 6
// observation of larger SOI gains on Gordon from 32 nodes onwards.
func Gordon() Torus3D {
	return Torus3D{
		LocalGbit:     40,
		GlobalGbit:    120,
		Efficiency:    0.25,
		LatencyUS:     2.5,
		Concentration: 16,
		Contention:    0.2,
	}
}

// Name identifies the fabric.
func (t Torus3D) Name() string { return "3-D torus QDR IB" }

// Radix returns the torus arity k for n nodes: the smallest k with
// Concentration·k³ ≥ n.
func (t Torus3D) Radix(n int) int {
	k := 1
	for t.Concentration*k*k*k < n {
		k++
	}
	return k
}

// AlltoallTime implements the paper's model: local-channel bound for
// small systems, bisection bound otherwise.
func (t Torus3D) AlltoallTime(n int, bytesPerNode int64) time.Duration {
	if n <= 1 || bytesPerNode <= 0 {
		return 0
	}
	eff := t.Efficiency / (1 + t.Contention*math.Log2(float64(n)))
	local := float64(bytesPerNode) / (t.LocalGbit * Gbit * eff)
	k := t.Radix(n)
	// Data crossing a bisection: half the total traffic (symmetry);
	// bisection capacity: 4n/k global channels (paper footnote 7).
	total := float64(bytesPerNode) * float64(n)
	channels := 4 * float64(n) / float64(k)
	bis := (total / 2) / (channels * t.GlobalGbit * Gbit * t.Efficiency)
	xfer := math.Max(local, bis)
	lat := t.LatencyUS * 1e-6 * float64(n-1)
	return secToDur(xfer + lat)
}

// P2PTime prices one neighbour message over the local channel.
func (t Torus3D) P2PTime(bytes int64) time.Duration {
	return secToDur(float64(bytes)/(t.LocalGbit*Gbit*t.Efficiency) + t.LatencyUS*1e-6)
}

// Ethernet models the 10 GbE interconnect of the paper's Fig 8
// experiment: a flat, purely injection-bound network where communication
// dwarfs computation.
type Ethernet struct {
	LinkGbit   float64
	Efficiency float64
	LatencyUS  float64
}

// TenGigE returns the paper's 10 Gigabit Ethernet fabric. The tiny
// all-to-all efficiency reflects TCP incast collapse: many-to-one bursts
// overrun shallow switch buffers, and measured large all-to-alls on
// 10GbE sustain only a few percent of link rate. This is what makes the
// Fig 8 experiment communication-dominated, pushing the SOI speedup to
// the 3/(1+β) = 2.4 asymptote.
func TenGigE() Ethernet {
	return Ethernet{LinkGbit: 10, Efficiency: 0.04, LatencyUS: 10}
}

// Name identifies the fabric.
func (e Ethernet) Name() string { return "10GbE" }

// AlltoallTime is injection-bandwidth bound.
func (e Ethernet) AlltoallTime(n int, bytesPerNode int64) time.Duration {
	if n <= 1 || bytesPerNode <= 0 {
		return 0
	}
	xfer := float64(bytesPerNode) / (e.LinkGbit * Gbit * e.Efficiency)
	lat := e.LatencyUS * 1e-6 * float64(n-1)
	return secToDur(xfer + lat)
}

// P2PTime prices one message.
func (e Ethernet) P2PTime(bytes int64) time.Duration {
	return secToDur(float64(bytes)/(e.LinkGbit*Gbit*e.Efficiency) + e.LatencyUS*1e-6)
}

// System describes one evaluation platform (paper Table 1).
type System struct {
	Name       string
	Fabric     Fabric
	NodeGFLOPS float64 // peak double-precision GFLOPS per node
	Sockets    int
	CoresPer   int
	ClockGHz   float64
}

// Endeavor/Gordon node parameters from Table 1 (Xeon E5-2670).
func systems() []System {
	node := func(name string, f Fabric) System {
		return System{Name: name, Fabric: f, NodeGFLOPS: 330, Sockets: 2, CoresPer: 8, ClockGHz: 2.6}
	}
	return []System{
		node("Endeavor (fat tree)", Endeavor()),
		node("Gordon (3-D torus)", Gordon()),
		node("Endeavor (10GbE)", TenGigE()),
	}
}

// Systems returns the three evaluation platforms of the paper.
func Systems() []System { return systems() }

// String formats a System as a Table 1 style row.
func (s System) String() string {
	return fmt.Sprintf("%-22s %d×%d cores @ %.2f GHz, %.0f DP GFLOPS, %s",
		s.Name, s.Sockets, s.CoresPer, s.ClockGHz, s.NodeGFLOPS, s.Fabric.Name())
}

func secToDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
