package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestFatTreeBasics(t *testing.T) {
	f := Endeavor()
	if f.AlltoallTime(1, 1<<20) != 0 {
		t.Error("single node all-to-all must be free")
	}
	if f.AlltoallTime(8, 0) != 0 {
		t.Error("zero bytes must be free")
	}
	// Within the linear region, per-node time grows only mildly (routing
	// congestion term) for fixed per-node bytes.
	a := f.AlltoallTime(4, 1<<30)
	b := f.AlltoallTime(32, 1<<30)
	if ratio := float64(b) / float64(a); ratio > 1.35 {
		t.Errorf("fat tree should scale near-linearly to 32 nodes, 32/4 ratio %.3f", ratio)
	}
	// Beyond the linear region, the upper-tier penalty kicks in: the jump
	// from 32 to 128 nodes must exceed the in-region drift from 4 to 32.
	c := f.AlltoallTime(128, 1<<30)
	if float64(c)/float64(b) <= float64(b)/float64(a) {
		t.Error("fat tree beyond 32 nodes should degrade faster than within the linear region")
	}
}

func TestTorusBisectionRegime(t *testing.T) {
	g := Gordon()
	// Small systems: local channel binds; time drifts up only through the
	// contention term.
	a := g.AlltoallTime(16, 1<<30)
	b := g.AlltoallTime(64, 1<<30)
	if float64(b)/float64(a) > 1.4 {
		t.Errorf("torus below 128 nodes should be near local-bound, ratio %.3f", float64(b)/float64(a))
	}
	// Large systems: bisection binds and per-node time grows like k²/…
	big := g.AlltoallTime(16*8*8*8, 1<<30) // k=8, 8192 nodes
	if big <= b {
		t.Error("torus at 8K nodes must be slower than at 64")
	}
	// Monotone in n for fixed payload.
	prev := time.Duration(0)
	for _, n := range []int{2, 16, 128, 1024, 4096, 16000} {
		cur := g.AlltoallTime(n, 1<<28)
		if cur < prev {
			t.Errorf("torus time not monotone at n=%d: %v < %v", n, cur, prev)
		}
		prev = cur
	}
}

func TestTorusRadix(t *testing.T) {
	g := Gordon()
	cases := map[int]int{1: 1, 16: 1, 17: 2, 128: 2, 129: 3, 1024: 4, 16000: 10}
	for n, k := range cases {
		if got := g.Radix(n); got != k {
			t.Errorf("Radix(%d) = %d, want %d", n, got, k)
		}
	}
}

func TestEthernetSlowestFabric(t *testing.T) {
	const n, bytes = 16, int64(1 << 30)
	e := TenGigE().AlltoallTime(n, bytes)
	f := Endeavor().AlltoallTime(n, bytes)
	g := Gordon().AlltoallTime(n, bytes)
	if e <= f || e <= g {
		t.Errorf("10GbE (%v) must be slower than IB fabrics (%v, %v)", e, f, g)
	}
}

func TestP2PTimes(t *testing.T) {
	for _, f := range []Fabric{Endeavor(), Gordon(), TenGigE()} {
		small := f.P2PTime(1024)
		large := f.P2PTime(1 << 30)
		if small <= 0 || large <= small {
			t.Errorf("%s: p2p times small=%v large=%v", f.Name(), small, large)
		}
	}
}

func TestSystemsTable(t *testing.T) {
	sys := Systems()
	if len(sys) != 3 {
		t.Fatalf("expected 3 systems, got %d", len(sys))
	}
	for _, s := range sys {
		if s.NodeGFLOPS != 330 {
			t.Errorf("%s: NodeGFLOPS %.0f, Table 1 says 330", s.Name, s.NodeGFLOPS)
		}
		if s.String() == "" || s.Fabric == nil {
			t.Errorf("%s: incomplete row", s.Name)
		}
	}
}

// TestPropMoreBytesMoreTime: every fabric must be monotone in payload.
func TestPropMoreBytesMoreTime(t *testing.T) {
	fabrics := []Fabric{Endeavor(), Gordon(), TenGigE()}
	f := func(n16 uint8, kb uint16) bool {
		n := 2 + int(n16)%512
		b := int64(kb)*1024 + 1024
		for _, fab := range fabrics {
			if fab.AlltoallTime(n, 2*b) < fab.AlltoallTime(n, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDragonflyRegimes(t *testing.T) {
	d := Slingshot()
	if d.AlltoallTime(1, 1<<30) != 0 {
		t.Error("single node must be free")
	}
	// Within one group: injection bound, flat in n.
	a := d.AlltoallTime(8, 1<<30)
	b := d.AlltoallTime(16, 1<<30)
	if float64(b)/float64(a) > 1.05 {
		t.Errorf("in-group scaling should be flat, ratio %.3f", float64(b)/float64(a))
	}
	// Far beyond one group: the global links bind and per-node time grows.
	big := d.AlltoallTime(4096, 1<<30)
	if big <= b {
		t.Error("global-link saturation should slow large systems")
	}
	// Faster links than the paper-era fabrics at equal payload and scale.
	if d.AlltoallTime(64, 1<<30) >= Gordon().AlltoallTime(64, 1<<30) {
		t.Error("slingshot-class fabric should beat QDR-era torus")
	}
	if d.P2PTime(1<<20) <= 0 {
		t.Error("p2p must be positive")
	}
}
