package netsim

import (
	"math"
	"time"
)

// Dragonfly models a modern two-tier direct network (the topology of
// Cray Slingshot / Aries-class systems): groups of routers with
// all-to-all local links and all-to-all global links between groups.
// It post-dates the paper — included to ask the paper's question on
// today's fabrics: adaptive routing keeps bandwidth high until the
// global (inter-group) links saturate, after which per-node all-to-all
// bandwidth declines roughly with the fraction of traffic forced across
// groups.
type Dragonfly struct {
	LinkGbit    float64 // node injection link
	GlobalGbit  float64 // per-router global link
	Efficiency  float64
	LatencyUS   float64
	GroupSize   int // nodes per group
	GlobalLinks int // global links per group
}

// Slingshot returns a contemporary dragonfly configuration (200 Gbit
// links, 16-node groups, calibrated all-to-all efficiency like the
// paper-era fabrics).
func Slingshot() Dragonfly {
	return Dragonfly{
		LinkGbit:    200,
		GlobalGbit:  200,
		Efficiency:  0.3,
		LatencyUS:   1.5,
		GroupSize:   16,
		GlobalLinks: 8,
	}
}

// Name identifies the fabric.
func (d Dragonfly) Name() string { return "dragonfly" }

// AlltoallTime is injection-bound for small systems; once traffic is
// mostly inter-group, the aggregate global-link capacity binds.
func (d Dragonfly) AlltoallTime(n int, bytesPerNode int64) time.Duration {
	if n <= 1 || bytesPerNode <= 0 {
		return 0
	}
	inj := float64(bytesPerNode) / (d.LinkGbit * Gbit * d.Efficiency)
	groups := (n + d.GroupSize - 1) / d.GroupSize
	t := inj
	if groups > 1 {
		// Fraction of each node's traffic that leaves its group.
		frac := float64(n-d.GroupSize) / float64(n-1)
		crossBytes := float64(bytesPerNode) * frac * float64(n)
		capacity := float64(groups*d.GlobalLinks) * d.GlobalGbit * Gbit * d.Efficiency
		global := crossBytes / capacity
		t = math.Max(inj, global)
	}
	lat := d.LatencyUS * 1e-6 * float64(n-1)
	return secToDur(t + lat)
}

// P2PTime prices one message.
func (d Dragonfly) P2PTime(bytes int64) time.Duration {
	return secToDur(float64(bytes)/(d.LinkGbit*Gbit*d.Efficiency) + d.LatencyUS*1e-6)
}
