// Package signal provides test-signal generators and accuracy metrics
// used throughout the evaluation (paper Section 7 reports accuracy as
// signal-to-noise ratio in dB).
package signal

import (
	"math"
	"math/cmplx"
	"math/rand"
)

// Random returns n complex points with independent real and imaginary
// parts uniform on [-1, 1), from a deterministic seed.
func Random(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return v
}

// Tones synthesizes a sum of complex exponentials: amplitude amps[i] at
// integer frequency bins freqs[i] of an n-point grid.
func Tones(n int, freqs []int, amps []complex128) []complex128 {
	v := make([]complex128, n)
	for j := 0; j < n; j++ {
		for t, f := range freqs {
			ang := 2 * math.Pi * float64((f%n)*j%n) / float64(n)
			v[j] += amps[t] * cmplx.Exp(complex(0, ang))
		}
	}
	return v
}

// NoisyTones is Tones plus additive complex Gaussian noise of the given
// standard deviation per component.
func NoisyTones(n int, freqs []int, amps []complex128, sigma float64, seed int64) []complex128 {
	v := Tones(n, freqs, amps)
	rng := rand.New(rand.NewSource(seed))
	for i := range v {
		v[i] += complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
	return v
}

// Chirp returns a linear-frequency chirp sweeping f0..f1 bins across n
// samples — a broadband signal with energy in every segment.
func Chirp(n int, f0, f1 float64) []complex128 {
	v := make([]complex128, n)
	for j := 0; j < n; j++ {
		ph := 2 * math.Pi * (f0*float64(j) + 0.5*(f1-f0)*float64(j)*float64(j)/float64(n))
		v[j] = cmplx.Exp(complex(0, ph))
	}
	return v
}

// Impulse returns a unit impulse at position k.
func Impulse(n, k int) []complex128 {
	v := make([]complex128, n)
	v[k%n] = 1
	return v
}

// SNRdB returns the signal-to-noise ratio of got against the reference,
// 10·log10(Σ|ref|² / Σ|got−ref|²), in decibels. A perfect match returns
// +Inf.
func SNRdB(got, ref []complex128) float64 {
	var sig, noise float64
	for i := range ref {
		sig += re2(ref[i])
		noise += re2(got[i] - ref[i])
	}
	if noise == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sig/noise)
}

// RelErrL2 returns ‖got−ref‖₂ / ‖ref‖₂.
func RelErrL2(got, ref []complex128) float64 {
	var num, den float64
	for i := range ref {
		num += re2(got[i] - ref[i])
		den += re2(ref[i])
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// MaxAbsErr returns max_i |got[i] − ref[i]|.
func MaxAbsErr(got, ref []complex128) float64 {
	var m float64
	for i := range ref {
		if d := cmplx.Abs(got[i] - ref[i]); d > m {
			m = d
		}
	}
	return m
}

// Digits converts a relative error to decimal digits of accuracy.
func Digits(relErr float64) float64 {
	if relErr <= 0 {
		return math.Inf(1)
	}
	return -math.Log10(relErr)
}

// DBToDigits converts an SNR in dB to decimal digits (20 dB per digit).
func DBToDigits(db float64) float64 { return db / 20 }

func re2(z complex128) float64 { return real(z)*real(z) + imag(z)*imag(z) }
