package signal

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"soifft/internal/fft"
)

func TestRandomDeterministic(t *testing.T) {
	a := Random(100, 7)
	b := Random(100, 7)
	c := Random(100, 8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
	for _, v := range a {
		if real(v) < -1 || real(v) >= 1 || imag(v) < -1 || imag(v) >= 1 {
			t.Fatalf("value %v outside [-1,1)", v)
		}
	}
}

func TestTonesSpectrum(t *testing.T) {
	const n = 64
	x := Tones(n, []int{5, 20}, []complex128{2, 1i})
	y := make([]complex128, n)
	fft.Direct(y, x)
	for k := 0; k < n; k++ {
		want := complex128(0)
		switch k {
		case 5:
			want = complex(2*float64(n), 0)
		case 20:
			want = complex(0, float64(n))
		}
		if cmplx.Abs(y[k]-want) > 1e-9 {
			t.Errorf("bin %d = %v, want %v", k, y[k], want)
		}
	}
}

func TestImpulse(t *testing.T) {
	x := Impulse(8, 3)
	for i, v := range x {
		want := complex128(0)
		if i == 3 {
			want = 1
		}
		if v != want {
			t.Fatalf("impulse[%d] = %v", i, v)
		}
	}
	// Index wraps.
	if Impulse(8, 11)[3] != 1 {
		t.Error("impulse index should wrap mod n")
	}
}

func TestChirpUnitMagnitude(t *testing.T) {
	x := Chirp(128, 0, 40)
	for i, v := range x {
		if math.Abs(cmplx.Abs(v)-1) > 1e-12 {
			t.Fatalf("chirp[%d] magnitude %f", i, cmplx.Abs(v))
		}
	}
}

func TestNoisyTonesSigmaZero(t *testing.T) {
	a := Tones(32, []int{3}, []complex128{1})
	b := NoisyTones(32, []int{3}, []complex128{1}, 0, 1)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("zero-noise NoisyTones must equal Tones")
		}
	}
}

func TestSNRdB(t *testing.T) {
	ref := []complex128{1, 1, 1, 1}
	if !math.IsInf(SNRdB(ref, ref), 1) {
		t.Error("identical signals: SNR must be +Inf")
	}
	// Noise at 1e-3 of signal: SNR = 60 dB.
	got := []complex128{1 + 1e-3, 1, 1, 1 - 1e-3}
	snr := SNRdB(got, ref)
	want := 10 * math.Log10(4/(2e-6))
	if math.Abs(snr-want) > 1e-9 {
		t.Errorf("SNR %.3f, want %.3f", snr, want)
	}
}

func TestRelErrAndDigits(t *testing.T) {
	ref := []complex128{3, 4}
	got := []complex128{3, 4.0000005}
	e := RelErrL2(got, ref)
	if e <= 0 || e > 1e-6 {
		t.Errorf("rel err %.3e", e)
	}
	if d := Digits(e); d < 6 || d > 8 {
		t.Errorf("digits %.1f", d)
	}
	if !math.IsInf(Digits(0), 1) {
		t.Error("Digits(0) must be +Inf")
	}
	if RelErrL2(got, []complex128{0, 0}) == 0 {
		t.Error("zero reference should fall back to absolute norm")
	}
}

func TestMaxAbsErr(t *testing.T) {
	a := []complex128{1, 2, 3}
	b := []complex128{1, 2 + 2i, 3}
	if e := MaxAbsErr(a, b); math.Abs(e-2) > 1e-15 {
		t.Errorf("max abs err %.3f, want 2", e)
	}
}

func TestDBToDigits(t *testing.T) {
	if DBToDigits(290) != 14.5 {
		t.Errorf("290 dB = %.2f digits, want 14.5", DBToDigits(290))
	}
}

// TestPropSNRScaleInvariant: SNR must be invariant to a common scale.
func TestPropSNRScaleInvariant(t *testing.T) {
	f := func(seed int64, scale8 uint8) bool {
		scale := 0.5 + float64(scale8)/32
		ref := Random(50, seed)
		got := Random(50, seed+1)
		a := SNRdB(got, ref)
		gs := make([]complex128, 50)
		rs := make([]complex128, 50)
		for i := range ref {
			gs[i] = got[i] * complex(scale, 0)
			rs[i] = ref[i] * complex(scale, 0)
		}
		b := SNRdB(gs, rs)
		return math.Abs(a-b) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
