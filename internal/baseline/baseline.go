// Package baseline implements standard in-order distributed 1-D FFT
// algorithms of the class the paper compares against (Intel MKL, FFTW,
// FFTE): all require three global data exchanges, which is precisely the
// communication SOI eliminates.
//
// Two algorithm families are provided:
//
//   - SixStep: the transpose algorithm (Bailey): global transpose, local
//     FFTs of length N1, twiddle scaling, global transpose, local FFTs of
//     length N2, global transpose back to natural order — 3 all-to-alls
//     of N points.
//   - BinaryExchange: the hypercube butterfly algorithm: log2(R)
//     full-block pairwise exchanges followed by local FFTs and one final
//     all-to-all to restore natural order — communication grows with
//     log(R), which is how some older libraries behave at scale.
//
// Both operate on the same block data distribution as the SOI driver:
// rank p holds x[p·N/R : (p+1)·N/R] in and y[p·N/R : (p+1)·N/R] out.
package baseline

import (
	"fmt"
	"time"

	"soifft/internal/mpi"
)

// Times records one rank's phase breakdown; Exchanges is the total time
// spent in global data exchanges (the dominant term at scale).
type Times struct {
	Compute   time.Duration
	Exchanges time.Duration
	NumXchg   int // number of global exchange steps performed
}

// Total returns compute plus exchange time.
func (t Times) Total() time.Duration { return t.Compute + t.Exchanges }

// Algorithm is an in-order distributed DFT on block-distributed data.
type Algorithm interface {
	// Name identifies the algorithm in benchmark tables.
	Name() string
	// Transform computes the N-point DFT: localIn/localOut have length
	// N/R on every rank, block distribution, natural order.
	Transform(c *mpi.Comm, localOut, localIn []complex128, n int) (Times, error)
}

// checkArgs validates the common distribution contract.
func checkArgs(c *mpi.Comm, localOut, localIn []complex128, n int) (nLocal int, err error) {
	r := c.Size()
	if n <= 0 || n%r != 0 {
		return 0, fmt.Errorf("baseline: N=%d must be a positive multiple of ranks=%d", n, r)
	}
	nLocal = n / r
	if len(localIn) != nLocal || len(localOut) != nLocal {
		return 0, fmt.Errorf("baseline: rank %d: need local length %d, got in %d out %d",
			c.Rank(), nLocal, len(localIn), len(localOut))
	}
	return nLocal, nil
}

// distTranspose redistributes an n1×n2 row-major matrix, block-distributed
// by rows (rank p owns rows [p·n1/R, (p+1)·n1/R)), into its n2×n1
// transpose with the same row-block distribution. This is the "local
// permutation + all-to-all" global transpose of paper Fig 3.
func distTranspose(c *mpi.Comm, local []complex128, n1, n2 int) ([]complex128, error) {
	r := c.Size()
	if n1%r != 0 || n2%r != 0 {
		return nil, fmt.Errorf("baseline: transpose dims %dx%d not divisible by ranks %d", n1, n2, r)
	}
	rn1, rn2 := n1/r, n2/r
	if len(local) != rn1*n2 {
		return nil, fmt.Errorf("baseline: transpose local length %d, want %d", len(local), rn1*n2)
	}
	// Pack: destination t receives my columns [t·rn2, (t+1)·rn2), laid out
	// so each of its future rows is contiguous.
	send := make([]complex128, rn1*n2)
	for t := 0; t < r; t++ {
		base := t * rn1 * rn2
		for j2 := 0; j2 < rn2; j2++ {
			col := t*rn2 + j2
			for j1 := 0; j1 < rn1; j1++ {
				send[base+j2*rn1+j1] = local[j1*n2+col]
			}
		}
	}
	recv := c.Alltoall(send, rn1*rn2)
	out := make([]complex128, rn2*n1)
	for src := 0; src < r; src++ {
		chunk := recv[src*rn1*rn2 : (src+1)*rn1*rn2]
		for j2 := 0; j2 < rn2; j2++ {
			copy(out[j2*n1+src*rn1:j2*n1+(src+1)*rn1], chunk[j2*rn1:(j2+1)*rn1])
		}
	}
	return out, nil
}
