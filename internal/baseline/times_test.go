package baseline

import (
	"testing"
	"time"

	"soifft/internal/mpi"
	"soifft/internal/signal"
)

func TestTimesAccessors(t *testing.T) {
	tm := Times{Compute: time.Second, Exchanges: 2 * time.Second, NumXchg: 3}
	if tm.Total() != 3*time.Second {
		t.Errorf("Total = %v", tm.Total())
	}
}

func TestAlgorithmNames(t *testing.T) {
	if (SixStep{}).Name() != "sixstep" {
		t.Error((SixStep{}).Name())
	}
	if (SixStep{Split: SplitTall}).Name() != "sixstep-tall" {
		t.Error((SixStep{Split: SplitTall}).Name())
	}
	if (BinaryExchange{}).Name() != "binexchange" {
		t.Error((BinaryExchange{}).Name())
	}
}

func TestSixStepReportsThreeExchanges(t *testing.T) {
	const n, r = 256, 4
	src := signal.Random(n, 1)
	got := make([]complex128, n)
	w, _ := mpi.NewWorld(r)
	nLocal := n / r
	err := w.Run(func(c *mpi.Comm) error {
		tm, err := SixStep{}.Transform(c,
			got[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
			src[c.Rank()*nLocal:(c.Rank()+1)*nLocal], n)
		if err != nil {
			return err
		}
		if tm.NumXchg != 3 {
			t.Errorf("rank %d: NumXchg = %d", c.Rank(), tm.NumXchg)
		}
		if tm.Total() <= 0 {
			t.Errorf("rank %d: nonpositive total", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDistTransposeDimensionErrors(t *testing.T) {
	w, _ := mpi.NewWorld(3)
	err := w.Run(func(c *mpi.Comm) error {
		_, err := distTranspose(c, make([]complex128, 8), 4, 6) // 3 does not divide 4
		return err
	})
	if err == nil {
		t.Error("expected dims error")
	}
	err = w.Run(func(c *mpi.Comm) error {
		_, err := distTranspose(c, make([]complex128, 5), 6, 6) // wrong local length
		return err
	})
	if err == nil {
		t.Error("expected length error")
	}
}
