package baseline

import (
	"fmt"
	"math"
	"math/cmplx"
	"time"

	"soifft/internal/fft"
	"soifft/internal/mpi"
)

// SixStep is the transpose-based in-order distributed FFT. Split controls
// the N = N1·N2 factor choice: SplitSquare picks N1 ≈ √N (the usual
// MKL/FFTW-class choice), SplitTall biases N1 upward, which changes cache
// and message granularity the way FFTE-class implementations do.
type SixStep struct {
	Split SplitKind
}

// SplitKind selects the N1·N2 factorization heuristic.
type SplitKind int

// Split heuristics for the six-step factorization.
const (
	SplitSquare SplitKind = iota
	SplitTall
)

// Name identifies the variant in benchmark tables.
func (s SixStep) Name() string {
	if s.Split == SplitTall {
		return "sixstep-tall"
	}
	return "sixstep"
}

// chooseSplit returns n1, n2 with n = n1·n2, both divisible by r.
func chooseSplit(n, r int, kind SplitKind) (int, int, error) {
	best := -1
	for n1 := r; n1 <= n/r; n1++ {
		if n%n1 != 0 {
			continue
		}
		n2 := n / n1
		if n1%r != 0 || n2%r != 0 {
			continue
		}
		switch kind {
		case SplitSquare:
			// Prefer n1 closest to sqrt(n).
			if best == -1 || absInt(n1*n1-n) < absInt(best*best-n) {
				best = n1
			}
		case SplitTall:
			// Prefer the largest feasible n1.
			if n1 > best {
				best = n1
			}
		}
	}
	if best == -1 {
		return 0, 0, fmt.Errorf("baseline: no N1·N2 split of N=%d with both factors divisible by ranks=%d", n, r)
	}
	return best, n / best, nil
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Transform runs the six-step algorithm; see the package comment for the
// step list. The three distTranspose calls are the triple all-to-all.
func (s SixStep) Transform(c *mpi.Comm, localOut, localIn []complex128, n int) (Times, error) {
	var tm Times
	nLocal, err := checkArgs(c, localOut, localIn, n)
	if err != nil {
		return tm, err
	}
	r := c.Size()
	n1, n2, err := chooseSplit(n, r, s.Split)
	if err != nil {
		return tm, err
	}
	rn1, rn2 := n1/r, n2/r
	_ = nLocal

	// Step 1: transpose the n1×n2 view to n2×n1.
	t0 := time.Now()
	a, err := distTranspose(c, localIn, n1, n2)
	if err != nil {
		return tm, err
	}
	tm.Exchanges += time.Since(t0)
	tm.NumXchg++

	// Step 2: rn2 local FFTs of length n1.
	t0 = time.Now()
	p1, err := fft.CachedPlan(n1)
	if err != nil {
		return tm, err
	}
	p1.Batch(a, a, rn2)

	// Step 3: twiddle scale by ω_N^{j2·k1}, j2 the global row index.
	base := c.Rank() * rn2
	for j2 := 0; j2 < rn2; j2++ {
		g := float64(base + j2)
		row := a[j2*n1 : (j2+1)*n1]
		for k1 := 1; k1 < n1; k1++ {
			ang := -2 * math.Pi * g * float64(k1) / float64(n)
			row[k1] *= cmplx.Exp(complex(0, ang))
		}
	}
	tm.Compute += time.Since(t0)

	// Step 4: transpose back to the n1×n2 view.
	t0 = time.Now()
	b, err := distTranspose(c, a, n2, n1)
	if err != nil {
		return tm, err
	}
	tm.Exchanges += time.Since(t0)
	tm.NumXchg++

	// Step 5: rn1 local FFTs of length n2.
	t0 = time.Now()
	p2, err := fft.CachedPlan(n2)
	if err != nil {
		return tm, err
	}
	p2.Batch(b, b, rn1)
	tm.Compute += time.Since(t0)

	// Step 6: final transpose delivers y in natural order.
	t0 = time.Now()
	y, err := distTranspose(c, b, n1, n2)
	if err != nil {
		return tm, err
	}
	tm.Exchanges += time.Since(t0)
	tm.NumXchg++
	copy(localOut, y)
	return tm, nil
}
