package baseline

import (
	"fmt"
	"testing"

	"soifft/internal/fft"
	"soifft/internal/mpi"
	"soifft/internal/signal"
)

// runDistributed executes alg on a fresh world of r ranks over a random
// N-point input and returns the gathered result, the reference DFT and
// the world's communication stats.
func runDistributed(t *testing.T, alg Algorithm, n, r int, seed int64) ([]complex128, []complex128, mpi.Stats) {
	t.Helper()
	src := signal.Random(n, seed)
	want := make([]complex128, n)
	fft.Direct(want, src)
	got := make([]complex128, n)
	w, err := mpi.NewWorld(r)
	if err != nil {
		t.Fatal(err)
	}
	nLocal := n / r
	err = w.Run(func(c *mpi.Comm) error {
		in := src[c.Rank()*nLocal : (c.Rank()+1)*nLocal]
		out := got[c.Rank()*nLocal : (c.Rank()+1)*nLocal]
		_, err := alg.Transform(c, out, in, n)
		return err
	})
	if err != nil {
		t.Fatalf("%s N=%d R=%d: %v", alg.Name(), n, r, err)
	}
	return got, want, w.Stats()
}

func TestSixStepMatchesDirect(t *testing.T) {
	cases := []struct{ n, r int }{
		{64, 1}, {64, 2}, {256, 4}, {1024, 8}, {4096, 16},
		{576, 4},  // N = 24² (non power of two)
		{1296, 6}, // 6 ranks, N = 36²
		{900, 3},  // odd rank count
	}
	for _, split := range []SplitKind{SplitSquare, SplitTall} {
		alg := SixStep{Split: split}
		for _, c := range cases {
			got, want, _ := runDistributed(t, alg, c.n, c.r, int64(c.n))
			if e := signal.RelErrL2(got, want); e > 1e-10 {
				t.Errorf("%s N=%d R=%d: rel error %.3e", alg.Name(), c.n, c.r, e)
			}
		}
	}
}

func TestSixStepUsesThreeAlltoalls(t *testing.T) {
	_, _, stats := runDistributed(t, SixStep{}, 1024, 8, 1)
	if stats.Alltoalls != 3 {
		t.Errorf("six-step used %d all-to-alls, the paper says this class needs 3", stats.Alltoalls)
	}
}

func TestBinaryExchangeMatchesDirect(t *testing.T) {
	cases := []struct{ n, r int }{
		{64, 1}, {64, 2}, {64, 4}, {256, 8}, {1024, 16}, {4096, 8},
		{768, 4}, // non power-of-two N with power-of-two ranks
	}
	alg := BinaryExchange{}
	for _, c := range cases {
		got, want, _ := runDistributed(t, alg, c.n, c.r, int64(3*c.n))
		if e := signal.RelErrL2(got, want); e > 1e-10 {
			t.Errorf("binexchange N=%d R=%d: rel error %.3e", c.n, c.r, e)
		}
	}
}

func TestBinaryExchangeCommGrowsWithLogR(t *testing.T) {
	var counts []int
	for _, r := range []int{2, 4, 8} {
		n := 64 * r * r
		src := signal.Random(n, 7)
		got := make([]complex128, n)
		w, _ := mpi.NewWorld(r)
		nLocal := n / r
		err := w.Run(func(c *mpi.Comm) error {
			tm, err := BinaryExchange{}.Transform(c,
				got[c.Rank()*nLocal:(c.Rank()+1)*nLocal],
				src[c.Rank()*nLocal:(c.Rank()+1)*nLocal], n)
			if err == nil && c.Rank() == 0 {
				counts = append(counts, tm.NumXchg)
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// log2(R)+1 exchanges: 2, 3, 4.
	for i, want := range []int{2, 3, 4} {
		if counts[i] != want {
			t.Errorf("R=%d: %d exchanges, want %d", 1<<(i+1), counts[i], want)
		}
	}
}

func TestBinaryExchangeRejectsBadShapes(t *testing.T) {
	w, _ := mpi.NewWorld(3)
	err := w.Run(func(c *mpi.Comm) error {
		buf := make([]complex128, 16)
		_, err := BinaryExchange{}.Transform(c, buf, buf, 48)
		return err
	})
	if err == nil {
		t.Error("expected error for non power-of-two rank count")
	}
	w2, _ := mpi.NewWorld(8)
	err = w2.Run(func(c *mpi.Comm) error {
		buf := make([]complex128, 4)
		_, err := BinaryExchange{}.Transform(c, buf, buf, 32) // N < R²
		return err
	})
	if err == nil {
		t.Error("expected error for N < R²")
	}
}

func TestChooseSplit(t *testing.T) {
	n1, n2, err := chooseSplit(4096, 8, SplitSquare)
	if err != nil || n1*n2 != 4096 || n1%8 != 0 || n2%8 != 0 {
		t.Fatalf("square split: %d×%d err=%v", n1, n2, err)
	}
	if n1 != 64 {
		t.Errorf("square split of 4096 should be 64×64, got %d×%d", n1, n2)
	}
	t1, t2, err := chooseSplit(4096, 8, SplitTall)
	if err != nil || t1*t2 != 4096 {
		t.Fatalf("tall split: %d×%d err=%v", t1, t2, err)
	}
	if t1 <= n1 {
		t.Errorf("tall split n1=%d should exceed square n1=%d", t1, n1)
	}
	if _, _, err := chooseSplit(30, 4, SplitSquare); err == nil {
		t.Error("expected no-split error for N=30, R=4")
	}
}

func TestSixStepRejectsBadArgs(t *testing.T) {
	w, _ := mpi.NewWorld(4)
	err := w.Run(func(c *mpi.Comm) error {
		buf := make([]complex128, 5)
		_, err := SixStep{}.Transform(c, buf, buf, 20) // N/R=5, no valid split
		return err
	})
	if err == nil {
		t.Error("expected split error")
	}
	err = w.Run(func(c *mpi.Comm) error {
		buf := make([]complex128, 3)
		_, err := SixStep{}.Transform(c, buf, buf, 64) // wrong local length
		return err
	})
	if err == nil {
		t.Error("expected local length error")
	}
}

func TestDistTransposeRoundTrip(t *testing.T) {
	const n1, n2, r = 8, 12, 4
	w, _ := mpi.NewWorld(r)
	src := signal.Random(n1*n2, 5)
	out := make([]complex128, n1*n2)
	err := w.Run(func(c *mpi.Comm) error {
		rows := n1 / r
		local := src[c.Rank()*rows*n2 : (c.Rank()+1)*rows*n2]
		tr, err := distTranspose(c, local, n1, n2)
		if err != nil {
			return err
		}
		back, err := distTranspose(c, tr, n2, n1)
		if err != nil {
			return err
		}
		copy(out[c.Rank()*rows*n2:(c.Rank()+1)*rows*n2], back)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := signal.MaxAbsErr(out, src); e != 0 {
		t.Errorf("transpose round trip differs by %.3e", e)
	}
}

func TestDistTransposeValues(t *testing.T) {
	const n1, n2, r = 4, 8, 2
	w, _ := mpi.NewWorld(r)
	src := make([]complex128, n1*n2)
	for i := range src {
		src[i] = complex(float64(i/n2), float64(i%n2)) // (row, col)
	}
	err := w.Run(func(c *mpi.Comm) error {
		rows := n1 / r
		local := src[c.Rank()*rows*n2 : (c.Rank()+1)*rows*n2]
		tr, err := distTranspose(c, local, n1, n2)
		if err != nil {
			return err
		}
		trRows := n2 / r
		for j2 := 0; j2 < trRows; j2++ {
			for j1 := 0; j1 < n1; j1++ {
				got := tr[j2*n1+j1]
				want := complex(float64(j1), float64(c.Rank()*trRows+j2))
				if got != want {
					return fmt.Errorf("rank %d: tr[%d][%d] = %v want %v", c.Rank(), j2, j1, got, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
