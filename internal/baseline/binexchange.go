package baseline

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
	"time"

	"soifft/internal/fft"
	"soifft/internal/mpi"
)

// BinaryExchange is the hypercube (butterfly) distributed FFT: log2(R)
// decimation-in-frequency stages exchange entire blocks between partner
// ranks, the residual length-N/R sub-transforms run locally, and one
// final all-to-all restores natural output order. Total communication is
// (log2(R)+1) block exchanges per rank, which exceeds the transpose
// algorithm's three once R > 4 — a useful contrast series for the
// weak-scaling figures.
type BinaryExchange struct{}

// Name identifies the algorithm in benchmark tables.
func (BinaryExchange) Name() string { return "binexchange" }

const tagButterfly = 200

// Transform requires a power-of-two rank count and N divisible by R².
func (BinaryExchange) Transform(c *mpi.Comm, localOut, localIn []complex128, n int) (Times, error) {
	var tm Times
	nLocal, err := checkArgs(c, localOut, localIn, n)
	if err != nil {
		return tm, err
	}
	r := c.Size()
	if r&(r-1) != 0 {
		return tm, fmt.Errorf("baseline: binexchange needs power-of-two ranks, got %d", r)
	}
	if nLocal%r != 0 {
		return tm, fmt.Errorf("baseline: binexchange needs N ≥ R²; N/R=%d not divisible by R=%d", nLocal, r)
	}
	rho := bits.Len(uint(r)) - 1
	p := c.Rank()
	cur := append([]complex128(nil), localIn...)

	// Cross-rank DIF butterfly stages: at stage ℓ the sub-problem length
	// is m = n / 2^ℓ and the partner differs in rank bit (ρ−1−ℓ).
	for l := 0; l < rho; l++ {
		m := n >> l
		h := m >> 1
		partner := p ^ (h / nLocal)
		t0 := time.Now()
		other := c.Sendrecv(partner, tagButterfly+l, cur, partner, tagButterfly+l).([]complex128)
		tm.Exchanges += time.Since(t0)
		tm.NumXchg++

		t0 = time.Now()
		high := p > partner // I hold the x[g+h] half of each pair
		for i := 0; i < nLocal; i++ {
			if !high {
				cur[i] += other[i]
				continue
			}
			g := p*nLocal + i
			j := g % h
			ang := -2 * math.Pi * float64(j) / float64(m)
			cur[i] = (other[i] - cur[i]) * cmplx.Exp(complex(0, ang))
		}
		tm.Compute += time.Since(t0)
	}

	// Local residual transform: the block now holds one complete
	// sub-problem whose DFT yields outputs y[q·R + bitrev(p)].
	t0 := time.Now()
	plan, err := fft.CachedPlan(nLocal)
	if err != nil {
		return tm, err
	}
	plan.Forward(cur, cur)
	tm.Compute += time.Since(t0)

	// Final all-to-all: redistribute the stride-R outputs into natural
	// block order.
	t0 = time.Now()
	qPer := nLocal / r
	// Element q of cur is y[q·R + br]; destination rank is (q·R+br)/nLocal
	// = q/qPer, so contiguous q-ranges map to ranks in order: cur is
	// already packed correctly for an equal-count all-to-all.
	recv := c.Alltoall(cur, qPer)
	for src := 0; src < r; src++ {
		sbr := reverseBits(src, rho)
		chunk := recv[src*qPer : (src+1)*qPer]
		for qq := 0; qq < qPer; qq++ {
			localOut[qq*r+sbr] = chunk[qq]
		}
	}
	tm.Exchanges += time.Since(t0)
	tm.NumXchg++
	return tm, nil
}

func reverseBits(v, width int) int {
	out := 0
	for i := 0; i < width; i++ {
		out = out<<1 | (v & 1)
		v >>= 1
	}
	return out
}
