// Package exch defines the chunked, windowed, asynchronous all-to-all
// stream the distributed SOI driver uses to hide wire time behind
// convolution. It is a leaf package: both transports (internal/mpi,
// internal/mpinet) implement the Stream surface against these types, and
// internal/core consumes it, so the three packages agree on one schedule
// and one event shape without import cycles.
//
// Protocol: all ranks derive the same chunk schedule (Options.Sizes, an
// element count per chunk index) and each rank streams chunk idx to
// destination dst as soon as the data exists, tagged Tag(idx). Per link,
// chunks travel strictly in index order, so the receive side needs no
// reordering. A bounded per-destination window (Options.Window) caps how
// many chunks may be queued-but-unflushed per link; Send blocks on the
// window (backpressure) rather than buffering without limit. Each chunk
// is delivered — or fails — independently: a dead or hung source yields
// one Chunk with Err set (typed, deadline-bounded by the transport) and
// ends that source's stream without disturbing the others.
package exch

import "sync"

// TagBase is the top of the stream tag band: chunk idx travels with tag
// TagBase-idx. The band grows downward from -2000, clear of both
// transports' collective tags (mpi -1..-6 and the pairwise -6-d series,
// mpinet -4..-7), the positive halo band, and the coded-exchange bands
// (-1000..-1400s).
const TagBase = -2000

// Tag returns the wire tag of chunk index idx.
func Tag(idx int) int { return TagBase - idx }

// The halo exchange streams through the same chunk-schedule idea as the
// all-to-all, but over the transports' ordinary (positive-tag) mailboxes:
// the neighbour prefix to depth d is split into HaloSizes chunks, each
// sent checked with HaloTag(d, i), and the boundary tiles of the
// streamed producer wait only for the residual chunks still in flight.
// Per link the chunks are the only ordinary-tag traffic during the
// produce loop, so both transports' FIFO pop order matches the send
// order, and any coded-exchange parity frames queue strictly behind the
// last chunk.

// MaxHaloChunks caps the chunk schedule per neighbour link.
const MaxHaloChunks = 8

// minHaloChunkElems floors the chunk size at 16 Ki complex elements
// (one 256 KiB frame, the transports' I/O chunk), so a modest halo
// travels as the single frame the blocking swap would send — per-frame
// costs (headers, shaper pacing, syscalls) are amortized exactly as
// before — and only a halo big enough to be worth overlapping splits.
const minHaloChunkElems = 16384

// HaloTagBase is the bottom of the positive halo-stream band, above the
// blocking halo tags (100+d, d < world size).
const HaloTagBase = 200

// HaloTag returns the wire tag of halo chunk i to neighbour depth d
// (d ≥ 1, i < MaxHaloChunks).
func HaloTag(d, i int) int { return HaloTagBase + d*MaxHaloChunks + i }

// HaloSizes splits a halo prefix of total elements into the chunk
// schedule — near-equal chunks, at most MaxHaloChunks, none smaller
// than minHaloChunkElems (except the sole chunk of a tiny halo). Both
// ends derive it independently from total alone.
func HaloSizes(total int) []int {
	if total <= 0 {
		return nil
	}
	n := (total + minHaloChunkElems - 1) / minHaloChunkElems
	if n > MaxHaloChunks {
		n = MaxHaloChunks
	}
	sizes := make([]int, n)
	lo := 0
	for i := range sizes {
		hi := (i + 1) * total / n
		sizes[i] = hi - lo
		lo = hi
	}
	return sizes
}

// Chunk is one delivered piece of a streamed all-to-all: chunk Index of
// source rank Src's contribution to this rank, or — when Err is non-nil
// — the typed failure that ended Src's stream (Data is nil then, and no
// further chunks from Src will arrive).
type Chunk struct {
	Src   int
	Index int
	Data  []complex128
	Err   error
}

// Codec transforms chunk payloads on the wire — the seam for compressed
// frames (the reference implementation's variable-length coding of the
// oversampled exchange). Encode maps a payload to its wire form; Decode
// inverts it given the expected decoded element count. A nil Codec means
// identity. Self-deliveries never pass through the codec (they never
// touch the wire). Implementations must round-trip bit-exactly for the
// driver's bit-identity guarantees to hold.
type Codec interface {
	EncodeChunk(src []complex128) []complex128
	DecodeChunk(wire []complex128, n int) ([]complex128, error)
}

// Options is the shared schedule of one streamed all-to-all. Every rank
// must start its stream with identical Sizes (and compatible Codec);
// Window is local pacing and may differ per rank.
type Options struct {
	// Sizes holds the element count of each chunk index; the same
	// schedule applies to every (source, destination) pair.
	Sizes []int
	// Window caps the queued-but-unflushed chunks per destination link;
	// values below 1 are treated as 1. Transports whose sends complete
	// synchronously (the in-process runtime) treat every send as
	// immediately flushed, so the window never blocks there.
	Window int
	// Codec optionally transforms payloads on the wire; nil = identity.
	Codec Codec
}

// Stream is a handle on one in-flight chunked all-to-all. One goroutine
// may call Send (the producer) while one other calls Next (the
// consumer); neither method is safe for further concurrency.
type Stream interface {
	// Send queues chunk idx for destination dst (dst may be this rank:
	// self-chunks are delivered through Next like any other, keeping the
	// consumer uniform). It blocks while dst's in-flight window is full
	// and returns the transport's typed error if the link is dead; a
	// non-nil error means the chunk was not delivered.
	Send(dst, idx int, data []complex128) error
	// Next blocks for the next chunk from any source, in arrival order.
	// ok=false means every source has either delivered all its chunks or
	// failed (each failure was yielded once as a Chunk with Err set).
	Next() (Chunk, bool)
	// Close abandons the stream: the consumer's next Next returns
	// ok=false even if chunk slots are still outstanding (a producer
	// that failed mid-schedule can never fill its own self-delivery
	// slots, so the consumer must not wait for them). Buffering
	// guarantees that transport goroutines never block on an abandoned
	// stream, so Close never waits; in-flight frames from peers stay in
	// their per-link mailboxes.
	Close()
}

// Conn is the checked peer-messaging surface the generic Stream
// implementation runs on; *mpi.Comm satisfies it (and *mpinet.Proc would,
// though mpinet ships its own natively windowed implementation).
type Conn interface {
	Rank() int
	Size() int
	SendChecked(to, tag int, data any) error
	RecvCChecked(from, tag int) ([]complex128, error)
}

// Tracker is the consumer-side bookkeeping shared by Stream
// implementations: a buffered event channel sized so producers can never
// block (even on an abandoned stream), and the completion arithmetic for
// Next. Deliver may be called from any goroutine; Next from exactly one.
type Tracker struct {
	events    chan Chunk
	chunks    int   // schedule length per source
	remaining int   // chunk slots still outstanding
	got       []int // delivered count per source
	aborted   chan struct{}
	abortOnce sync.Once
}

// NewTracker sizes the bookkeeping for size ranks and a chunks-long
// schedule. The channel holds the worst case — every chunk plus one
// failure event per source — so Deliver is always non-blocking.
func NewTracker(size, chunks int) *Tracker {
	return &Tracker{
		events:    make(chan Chunk, size*(chunks+1)),
		chunks:    chunks,
		remaining: size * chunks,
		got:       make([]int, size),
		aborted:   make(chan struct{}),
	}
}

// Deliver hands one chunk (or one per-source failure) to the consumer.
func (t *Tracker) Deliver(c Chunk) { t.events <- c }

// Abort ends the stream from the producer side: Next stops waiting and
// reports completion even with slots outstanding. This is how a
// producer that failed mid-schedule (and so can never fill its own
// self-delivery slots) releases a consumer blocked on them. Idempotent
// and safe concurrently with Next.
func (t *Tracker) Abort() { t.abortOnce.Do(func() { close(t.aborted) }) }

// Next implements Stream.Next over the delivered events.
func (t *Tracker) Next() (Chunk, bool) {
	if t.remaining <= 0 {
		return Chunk{}, false
	}
	var c Chunk
	select {
	case c = <-t.events:
	case <-t.aborted:
		return Chunk{}, false
	}
	if c.Err != nil {
		// The source's stream is over: retire its undelivered slots.
		t.remaining -= t.chunks - t.got[c.Src]
		t.got[c.Src] = t.chunks
		return c, true
	}
	t.got[c.Src]++
	t.remaining--
	return c, true
}

// stream is the generic Stream over a checked point-to-point Conn. Sends
// delegate to SendChecked (window pacing is left to the transport: on
// the in-process runtime sends are buffered and complete immediately);
// one goroutine per source drives sequential checked receives.
type stream struct {
	c   Conn
	o   Options
	trk *Tracker
}

// Start begins a streamed all-to-all over c with the given schedule.
// Every rank of the world must start a stream with the same Sizes before
// blocking on Next, or peers stall until their transport deadlines.
func Start(c Conn, o Options) Stream {
	s := &stream{c: c, o: o, trk: NewTracker(c.Size(), len(o.Sizes))}
	for src := 0; src < c.Size(); src++ {
		if src != c.Rank() {
			go s.recvLoop(src)
		}
	}
	return s
}

func (s *stream) Send(dst, idx int, data []complex128) error {
	if dst == s.c.Rank() {
		s.trk.Deliver(Chunk{Src: dst, Index: idx, Data: data})
		return nil
	}
	wire := data
	if s.o.Codec != nil {
		wire = s.o.Codec.EncodeChunk(data)
	}
	return s.c.SendChecked(dst, Tag(idx), wire)
}

func (s *stream) recvLoop(src int) {
	for idx := range s.o.Sizes {
		data, err := s.c.RecvCChecked(src, Tag(idx))
		if err == nil && s.o.Codec != nil {
			data, err = s.o.Codec.DecodeChunk(data, s.o.Sizes[idx])
		}
		if err != nil {
			s.trk.Deliver(Chunk{Src: src, Err: err})
			return
		}
		s.trk.Deliver(Chunk{Src: src, Index: idx, Data: data})
	}
}

func (s *stream) Next() (Chunk, bool) { return s.trk.Next() }

func (s *stream) Close() { s.trk.Abort() }
