package exch

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// fakeWorld is a minimal in-memory checked transport: one FIFO mailbox
// per directed link, with per-link induced failures.
type fakeWorld struct {
	size  int
	mu    sync.Mutex
	cond  *sync.Cond
	boxes map[[2]int][]fakeMsg // {from, to} -> queued messages
	dead  map[[2]int]error     // {from, to} -> induced failure
}

type fakeMsg struct {
	tag  int
	data []complex128
}

func newFakeWorld(size int) *fakeWorld {
	w := &fakeWorld{size: size, boxes: map[[2]int][]fakeMsg{}, dead: map[[2]int]error{}}
	w.cond = sync.NewCond(&w.mu)
	return w
}

func (w *fakeWorld) kill(from, to int, err error) {
	w.mu.Lock()
	w.dead[[2]int{from, to}] = err
	w.mu.Unlock()
	w.cond.Broadcast()
}

type fakeConn struct {
	w    *fakeWorld
	rank int
}

func (c *fakeConn) Rank() int { return c.rank }
func (c *fakeConn) Size() int { return c.w.size }

func (c *fakeConn) SendChecked(to, tag int, data any) error {
	buf := data.([]complex128)
	w := c.w
	w.mu.Lock()
	defer w.mu.Unlock()
	key := [2]int{c.rank, to}
	if err := w.dead[key]; err != nil {
		return err
	}
	w.boxes[key] = append(w.boxes[key], fakeMsg{tag: tag, data: append([]complex128(nil), buf...)})
	w.cond.Broadcast()
	return nil
}

func (c *fakeConn) RecvCChecked(from, tag int) ([]complex128, error) {
	w := c.w
	key := [2]int{from, c.rank}
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if q := w.boxes[key]; len(q) > 0 {
			m := q[0]
			w.boxes[key] = q[1:]
			if m.tag != tag {
				return nil, fmt.Errorf("tag mismatch: want %d got %d", tag, m.tag)
			}
			return m.data, nil
		}
		if err := w.dead[key]; err != nil {
			return nil, err
		}
		w.cond.Wait()
	}
}

// payload builds a distinguishable chunk for (src, dst, idx).
func payload(src, dst, idx, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(float64(src*1000+dst*100+idx*10), float64(i))
	}
	return out
}

// runWorld streams the full schedule on every rank and returns the
// chunks each rank consumed, keyed (src, idx).
func runWorld(t *testing.T, w *fakeWorld, o Options) []map[[2]int][]complex128 {
	t.Helper()
	got := make([]map[[2]int][]complex128, w.size)
	var wg sync.WaitGroup
	for rank := 0; rank < w.size; rank++ {
		rank := rank
		got[rank] = map[[2]int][]complex128{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := Start(&fakeConn{w: w, rank: rank}, o)
			defer s.Close()
			done := make(chan struct{})
			go func() {
				defer close(done)
				for {
					c, ok := s.Next()
					if !ok {
						return
					}
					if c.Err != nil {
						t.Errorf("rank %d: src %d failed: %v", rank, c.Src, c.Err)
						return
					}
					got[rank][[2]int{c.Src, c.Index}] = c.Data
				}
			}()
			for idx, n := range o.Sizes {
				for dst := 0; dst < w.size; dst++ {
					if err := s.Send(dst, idx, payload(rank, dst, idx, n)); err != nil {
						t.Errorf("rank %d send to %d: %v", rank, dst, err)
					}
				}
			}
			<-done
		}()
	}
	wg.Wait()
	return got
}

func TestStreamDeliversAllChunks(t *testing.T) {
	const size = 4
	o := Options{Sizes: []int{3, 1, 5}, Window: 2}
	got := runWorld(t, newFakeWorld(size), o)
	for rank := 0; rank < size; rank++ {
		for src := 0; src < size; src++ {
			for idx, n := range o.Sizes {
				want := payload(src, rank, idx, n)
				data, ok := got[rank][[2]int{src, idx}]
				if !ok {
					t.Fatalf("rank %d missing chunk (src=%d idx=%d)", rank, src, idx)
				}
				if len(data) != len(want) {
					t.Fatalf("rank %d chunk (src=%d idx=%d): %d elements, want %d", rank, src, idx, len(data), len(want))
				}
				for i := range want {
					if data[i] != want[i] {
						t.Fatalf("rank %d chunk (src=%d idx=%d)[%d] = %v, want %v", rank, src, idx, i, data[i], want[i])
					}
				}
			}
		}
	}
}

// scaleCodec is a trivially reversible frame codec exercising the
// pluggable-codec seam: wire form is the payload negated.
type scaleCodec struct{}

func (scaleCodec) EncodeChunk(src []complex128) []complex128 {
	out := make([]complex128, len(src))
	for i, v := range src {
		out[i] = -v
	}
	return out
}

func (scaleCodec) DecodeChunk(wire []complex128, n int) ([]complex128, error) {
	if len(wire) != n {
		return nil, fmt.Errorf("codec: %d elements, want %d", len(wire), n)
	}
	out := make([]complex128, len(wire))
	for i, v := range wire {
		out[i] = -v
	}
	return out, nil
}

func TestStreamCodecRoundTrip(t *testing.T) {
	const size = 3
	o := Options{Sizes: []int{2, 2}, Window: 1, Codec: scaleCodec{}}
	got := runWorld(t, newFakeWorld(size), o)
	for rank := 0; rank < size; rank++ {
		for src := 0; src < size; src++ {
			for idx, n := range o.Sizes {
				want := payload(src, rank, idx, n)
				data := got[rank][[2]int{src, idx}]
				for i := range want {
					if data[i] != want[i] {
						t.Fatalf("rank %d chunk (src=%d idx=%d)[%d] = %v, want %v (codec must be invisible)",
							rank, src, idx, i, data[i], want[i])
					}
				}
			}
		}
	}
}

func TestStreamDeadSourceYieldsOneTypedFailure(t *testing.T) {
	w := newFakeWorld(3)
	boom := errors.New("induced link death")
	o := Options{Sizes: []int{2, 2, 2}, Window: 1}

	// Rank 1's link to rank 0 dies after one chunk; ranks 1<->2 and
	// 0->1, 0->2, 2->0 stay healthy. Run only rank 0's consumer; feed it
	// by hand from ranks 1 and 2.
	s := Start(&fakeConn{w: w, rank: 0}, o)
	defer s.Close()
	c1 := &fakeConn{w: w, rank: 1}
	c2 := &fakeConn{w: w, rank: 2}
	if err := c1.SendChecked(0, Tag(0), payload(1, 0, 0, 2)); err != nil {
		t.Fatal(err)
	}
	w.kill(1, 0, boom)
	for idx := range o.Sizes {
		if err := c2.SendChecked(0, Tag(idx), payload(2, 0, idx, 2)); err != nil {
			t.Fatal(err)
		}
	}
	for idx := range o.Sizes {
		if err := s.Send(0, idx, payload(0, 0, idx, 2)); err != nil {
			t.Fatal(err)
		}
	}

	var fails, chunks int
	for {
		c, ok := s.Next()
		if !ok {
			break
		}
		if c.Err != nil {
			fails++
			if c.Src != 1 || !errors.Is(c.Err, boom) {
				t.Fatalf("unexpected failure event: src=%d err=%v", c.Src, c.Err)
			}
			continue
		}
		chunks++
	}
	if fails != 1 {
		t.Fatalf("got %d failure events, want exactly 1", fails)
	}
	// 3 self + 3 from rank 2 + 1 from rank 1 before its link died.
	if chunks != 7 {
		t.Fatalf("got %d data chunks, want 7", chunks)
	}
}

func TestTrackerArithmetic(t *testing.T) {
	trk := NewTracker(2, 3)
	trk.Deliver(Chunk{Src: 0, Index: 0, Data: []complex128{1}})
	trk.Deliver(Chunk{Src: 1, Err: errors.New("dead")})
	trk.Deliver(Chunk{Src: 0, Index: 1, Data: []complex128{2}})
	trk.Deliver(Chunk{Src: 0, Index: 2, Data: []complex128{3}})
	seen := 0
	for {
		_, ok := trk.Next()
		if !ok {
			break
		}
		seen++
	}
	if seen != 4 { // 3 chunks from src 0 + 1 failure from src 1
		t.Fatalf("consumed %d events, want 4", seen)
	}
}

func TestHaloSizes(t *testing.T) {
	cases := []struct {
		total   int
		wantLen int
	}{
		{0, 0},
		{-5, 0},
		{1, 1},                   // tiny halo: one chunk, even below the floor
		{376, 1},                 // the B=48, P=8 test halo: single frame
		{4088, 1},                // a typical production halo: still one frame
		{16384, 1},               // exactly the floor
		{16385, 2},               // just over: two chunks
		{1 << 17, MaxHaloChunks}, // 128 Ki elements: exactly at the cap
		{1 << 20, MaxHaloChunks}, // huge halo capped at the schedule limit
	}
	for _, tc := range cases {
		sizes := HaloSizes(tc.total)
		if len(sizes) != tc.wantLen {
			t.Errorf("HaloSizes(%d) has %d chunks, want %d", tc.total, len(sizes), tc.wantLen)
			continue
		}
		sum := 0
		for i, s := range sizes {
			if s <= 0 {
				t.Errorf("HaloSizes(%d)[%d] = %d, want positive", tc.total, i, s)
			}
			sum += s
		}
		if tc.total > 0 && sum != tc.total {
			t.Errorf("HaloSizes(%d) sums to %d", tc.total, sum)
		}
	}
}

func TestHaloTagBand(t *testing.T) {
	// The halo-stream band must stay positive (ordinary mailboxes) and
	// collision-free across (depth, chunk) pairs.
	seen := map[int]bool{}
	for d := 1; d <= 16; d++ {
		for i := 0; i < MaxHaloChunks; i++ {
			tag := HaloTag(d, i)
			if tag <= HaloTagBase-1 {
				t.Fatalf("HaloTag(%d, %d) = %d below the band", d, i, tag)
			}
			if seen[tag] {
				t.Fatalf("HaloTag(%d, %d) = %d collides", d, i, tag)
			}
			seen[tag] = true
		}
	}
}
