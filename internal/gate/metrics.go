package gate

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// latHistBuckets is the bucket count of the log2 latency histograms:
// upper bounds 1µs·2^i, ~1µs to ~1s, plus the implicit +Inf bucket —
// the same shape internal/serve exports, so gateway and replica
// histograms line up in one dashboard.
const latHistBuckets = 21

// latHist is a log2-bucketed latency histogram in the Prometheus
// cumulative style.
type latHist struct {
	buckets [latHistBuckets + 1]atomic.Int64
	sumUS   atomic.Int64
	count   atomic.Int64
}

func (h *latHist) observe(d time.Duration) {
	us := d.Microseconds()
	h.sumUS.Add(us)
	h.count.Add(1)
	i := 0
	for i < latHistBuckets && us > int64(1)<<i {
		i++
	}
	h.buckets[i].Add(1)
}

// writeProm emits the histogram as a Prometheus histogram series with
// optional extra labels.
func (h *latHist) writeProm(w io.Writer, name, labels string) {
	var cum int64
	for i := 0; i <= latHistBuckets; i++ {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < latHistBuckets {
			le = fmt.Sprintf("%g", float64(int64(1)<<i)/1e6)
		}
		if labels != "" {
			fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, labels, le, cum)
		} else {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		}
	}
	sep := ""
	if labels != "" {
		sep = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, sep, float64(h.sumUS.Load())/1e6)
	fmt.Fprintf(w, "%s_count%s %d\n", name, sep, h.count.Load())
}

// Metrics is the gateway's live instrumentation: routing counters on
// the proxy hot path plus per-replica latency histograms, exported in
// Prometheus text form on /metrics and as JSON on /debug/ring.
type Metrics struct {
	start time.Time

	requests       atomic.Int64 // transform requests accepted from clients
	routedFirst    atomic.Int64 // requests that reached a first routing attempt
	proxied        atomic.Int64 // request attempts forwarded to replicas
	primaryRoutes  atomic.Int64 // requests whose first attempt hit the ring primary
	spills         atomic.Int64 // first attempts diverted by the bounded-load rule
	unhealthySkips atomic.Int64 // first attempts diverted because the primary was unhealthy
	failovers      atomic.Int64 // extra attempts after transport error / draining
	backoffs       atomic.Int64 // RetryAfter-aware sleeps taken before a retry pass
	rejectedTenant atomic.Int64 // admission-control rejections (tenant queue full)
	rejectedNoRep  atomic.Int64 // requests with no routable replica
	errors         atomic.Int64 // requests answered non-OK after all attempts
	pings          atomic.Int64 // OpPing answered by the gateway itself
	bytesIn        atomic.Int64
	bytesOut       atomic.Int64

	latTotal latHist // client-observed round trip through the gateway

	gw *Gateway // backref for ring/replica snapshots at scrape time
}

func newMetrics(gw *Gateway) *Metrics {
	return &Metrics{start: time.Now(), gw: gw}
}

// Requests returns accepted transform requests.
func (m *Metrics) Requests() int64 { return m.requests.Load() }

// Failovers returns attempts retried on another replica after a
// transport error or a draining reply.
func (m *Metrics) Failovers() int64 { return m.failovers.Load() }

// Spills returns first attempts diverted off the primary by bounded load.
func (m *Metrics) Spills() int64 { return m.spills.Load() }

// Rejected returns admission-control rejections.
func (m *Metrics) Rejected() int64 { return m.rejectedTenant.Load() }

// Affinity reports the fraction of routed requests whose first attempt
// landed on the ring primary — the batching-affinity number the e2e
// acceptance gate checks (>90% when the primary is healthy and under
// its load bound).
func (m *Metrics) Affinity() float64 {
	total := m.routedFirst.Load()
	if total <= 0 {
		return 1
	}
	return float64(m.primaryRoutes.Load()) / float64(total)
}

// ReplicaStatus is one replica's row in the /debug/ring snapshot.
type ReplicaStatus struct {
	Addr       string    `json:"addr"`
	State      string    `json:"state"`
	Inflight   int64     `json:"inflight"`
	Routed     int64     `json:"routed_total"`
	Failed     int64     `json:"failed_total"`
	QueueDepth int64     `json:"queue_depth"`
	WarmPlans  int       `json:"warm_plans"`
	LastErr    string    `json:"last_err,omitempty"`
	LastProbe  time.Time `json:"last_probe"`
}

// RingStatus is the /debug/ring JSON document.
type RingStatus struct {
	Replicas       []ReplicaStatus `json:"replicas"`
	VNodes         int             `json:"vnodes_per_replica"`
	LoadFactor     float64         `json:"bounded_load_factor"`
	AdmissionQueue int             `json:"admission_queued"`
	Requests       int64           `json:"requests_total"`
	PrimaryRoutes  int64           `json:"primary_routes_total"`
	Spills         int64           `json:"spills_total"`
	Failovers      int64           `json:"failovers_total"`
	Affinity       float64         `json:"affinity"`
}

// RingSnapshot assembles the current routing state (also the backing of
// /debug/ring).
func (m *Metrics) RingSnapshot() RingStatus {
	st := RingStatus{
		VNodes:         m.gw.cfg.VNodes,
		LoadFactor:     m.gw.cfg.BoundedLoadFactor,
		AdmissionQueue: m.gw.adm.queued(),
		Requests:       m.requests.Load(),
		PrimaryRoutes:  m.primaryRoutes.Load(),
		Spills:         m.spills.Load(),
		Failovers:      m.failovers.Load(),
		Affinity:       m.Affinity(),
	}
	for _, r := range m.gw.reg.all() {
		r.mu.Lock()
		row := ReplicaStatus{
			Addr:       r.addr,
			State:      r.state.String(),
			QueueDepth: r.queueDepth,
			WarmPlans:  r.warmPlans,
			LastErr:    r.lastErr,
			LastProbe:  r.lastProbe,
		}
		r.mu.Unlock()
		row.Inflight = r.inflight.Load()
		row.Routed = r.routed.Load()
		row.Failed = r.failed.Load()
		st.Replicas = append(st.Replicas, row)
	}
	return st
}

// ReplicaRouted returns the routed-request counter for one replica
// address (0 when unknown) — the per-replica affinity probe tests use.
func (m *Metrics) ReplicaRouted(addr string) int64 {
	if r := m.gw.reg.get(addr); r != nil {
		return r.routed.Load()
	}
	return 0
}

// Handler returns the gateway's HTTP mux: Prometheus /metrics with
// per-replica latency histograms and routing counters, /debug/ring with
// the live ring snapshot, and /healthz (200 while at least one replica
// is routable, 503 otherwise) carrying the same JSON health shape the
// replicas serve.
func (m *Metrics) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", m.writePrometheus)
	mux.HandleFunc("/debug/ring", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.RingSnapshot())
	})
	mux.HandleFunc("/debug/cluster", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(m.gw.ClusterRollup())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		n, _ := m.gw.reg.healthyCount()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		status := "ok"
		if n == 0 {
			status = "no-healthy-replicas"
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(map[string]any{
			"status": status, "healthy_replicas": n, "queued": m.gw.adm.queued(),
		})
	})
	return mux
}

func (m *Metrics) writePrometheus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name string, v int64) {
		fmt.Fprintf(w, "# TYPE soigate_%s counter\n", name)
		fmt.Fprintf(w, "soigate_%s %d\n", name, v)
	}
	counter("requests_total", m.requests.Load())
	counter("proxied_total", m.proxied.Load())
	counter("primary_routes_total", m.primaryRoutes.Load())
	counter("spills_total", m.spills.Load())
	counter("unhealthy_skips_total", m.unhealthySkips.Load())
	counter("failovers_total", m.failovers.Load())
	counter("backoffs_total", m.backoffs.Load())
	counter("rejected_tenant_total", m.rejectedTenant.Load())
	counter("rejected_no_replica_total", m.rejectedNoRep.Load())
	counter("errors_total", m.errors.Load())
	counter("pings_total", m.pings.Load())
	counter("bytes_in_total", m.bytesIn.Load())
	counter("bytes_out_total", m.bytesOut.Load())
	fmt.Fprintf(w, "# TYPE soigate_uptime_seconds gauge\nsoigate_uptime_seconds %d\n",
		int64(time.Since(m.start).Seconds()))
	fmt.Fprintf(w, "# TYPE soigate_admission_queued gauge\nsoigate_admission_queued %d\n",
		m.gw.adm.queued())

	fmt.Fprintf(w, "# TYPE soigate_request_seconds histogram\n")
	m.latTotal.writeProm(w, "soigate_request_seconds", "")

	fmt.Fprintf(w, "# TYPE soigate_replica_inflight gauge\n")
	fmt.Fprintf(w, "# TYPE soigate_replica_routed_total counter\n")
	fmt.Fprintf(w, "# TYPE soigate_replica_failed_total counter\n")
	fmt.Fprintf(w, "# TYPE soigate_replica_healthy gauge\n")
	replicas := m.gw.reg.all()
	for _, r := range replicas {
		lbl := fmt.Sprintf("replica=%q", r.addr)
		healthy := 0
		if r.getState() == StateHealthy {
			healthy = 1
		}
		fmt.Fprintf(w, "soigate_replica_inflight{%s} %d\n", lbl, r.inflight.Load())
		fmt.Fprintf(w, "soigate_replica_routed_total{%s} %d\n", lbl, r.routed.Load())
		fmt.Fprintf(w, "soigate_replica_failed_total{%s} %d\n", lbl, r.failed.Load())
		fmt.Fprintf(w, "soigate_replica_healthy{%s} %d\n", lbl, healthy)
	}
	fmt.Fprintf(w, "# TYPE soigate_replica_request_seconds histogram\n")
	for _, r := range replicas {
		r.lat.writeProm(w, "soigate_replica_request_seconds", fmt.Sprintf("replica=%q", r.addr))
	}
}
