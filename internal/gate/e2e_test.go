package gate_test

import (
	"context"
	"encoding/json"
	"net"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"soifft"
	"soifft/client"
	"soifft/internal/faultnet"
	"soifft/internal/gate"
	"soifft/internal/loadgen"
	"soifft/internal/serve"
	"soifft/internal/signal"
	"soifft/internal/telemetry"
)

// startReplica runs a real serve.Server on an ephemeral port with an
// httptest /healthz endpoint in front of its metrics handler, returning
// the spec the gateway registers it under.
func startReplica(t *testing.T, cfg serve.Config) (gate.ReplicaSpec, *serve.Server) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s := serve.New(cfg)
	if err := s.Listen(); err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.Serve() }()
	hs := httptest.NewServer(s.Metrics().Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return gate.ReplicaSpec{Addr: s.Addr().String(), HealthURL: hs.URL + "/healthz"}, s
}

// planMix is the weighted multi-key workload the scaling and affinity
// tests offer: six distinct PlanKeys so the ring has something to
// shard, weighted toward the mid-size plans.
func planMix() []loadgen.Spec {
	return []loadgen.Spec{
		{N: 8192, Accuracy: -1, Weight: 2},
		{N: 8192, Segments: 16, Accuracy: -1, Weight: 1},
		{N: 16384, Accuracy: -1, Weight: 3},
		{N: 16384, Taps: 48, Accuracy: -1, Weight: 1},
		{N: 32768, Accuracy: -1, Weight: 2},
		{N: 32768, Segments: 32, Accuracy: -1, Weight: 1},
	}
}

// writeSLO writes a loadgen report to the file named by env (the CI
// artifact hook); unset env means skip.
func writeSLO(t *testing.T, env string, res *loadgen.Result) {
	t.Helper()
	path := os.Getenv(env)
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		t.Logf("SLO report not written: %v", err)
		return
	}
	defer f.Close()
	if err := res.WriteJSON(f); err != nil {
		t.Logf("SLO report not written: %v", err)
	}
}

// TestGateScaling1To3 is the capacity half of the serving-tier e2e:
// real replicas doing real transforms, an open-loop plan-mix workload,
// and the assertion that a 3-replica tier completes at least 2x the
// OK-throughput of a 1-replica tier behind the same gateway.
//
// The replicas run in-process and their work is CPU-bound, so the
// ratio can only materialize when the host can actually run three
// worker goroutines in parallel; below 3 CPUs the test skips (the CI
// gate job runs on 4-vCPU runners and asserts it for every change).
// TestGateScalingWaitBound keeps a scaling assertion alive on small
// machines.
func TestGateScaling1To3(t *testing.T) {
	if runtime.NumCPU() < 3 {
		t.Skipf("scaling needs >= 3 CPUs for 3 CPU-bound replicas; have %d", runtime.NumCPU())
	}
	run := func(nReplicas int) *loadgen.Result {
		var specs []gate.ReplicaSpec
		for i := 0; i < nReplicas; i++ {
			sp, _ := startReplica(t, serve.Config{Workers: 1})
			specs = append(specs, sp)
		}
		g := startGateway(t, gate.Config{Replicas: specs})
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			Addr:        g.Addr().String(),
			Rate:        1600,
			Duration:    2 * time.Second,
			MaxInflight: 96,
			Mix:         planMix(),
			Seed:        42,
			Warmup:      true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%d replica(s):\n%s", nReplicas, res)
		return res
	}
	one := run(1)
	three := run(3)
	writeSLO(t, "GATE_SLO_JSON", three)

	if one.OK == 0 {
		t.Fatal("single-replica run completed no requests")
	}
	ratio := three.ThroughputOK / one.ThroughputOK
	if ratio < 2.0 {
		t.Errorf("3-replica throughput %.1f ok/s is only %.2fx the 1-replica %.1f ok/s; want >= 2x",
			three.ThroughputOK, ratio, one.ThroughputOK)
	}
	if three.Failed > 0 || three.Corrupted > 0 {
		t.Errorf("3-replica run had %d failed / %d corrupted requests", three.Failed, three.Corrupted)
	}
}

// waitMix is the wait-bound scaling workload: six distinct PlanKeys
// like planMix, but with tiny payloads so per-request CPU (copies,
// framing) is negligible next to the replicas' scripted service time
// even on a one-CPU host under the race detector.
func waitMix() []loadgen.Spec {
	return []loadgen.Spec{
		{N: 64, Accuracy: -1, Weight: 2},
		{N: 64, Segments: 4, Accuracy: -1, Weight: 1},
		{N: 128, Accuracy: -1, Weight: 3},
		{N: 128, Taps: 24, Accuracy: -1, Weight: 1},
		{N: 256, Accuracy: -1, Weight: 2},
		{N: 256, Segments: 8, Accuracy: -1, Weight: 1},
	}
}

// slowSerialReplica is a scripted wire peer whose service time is a
// sleep under a per-replica mutex: capacity ~1/delay per replica,
// wait-bound rather than CPU-bound, so tier throughput scales with
// replica count on any machine.
func slowSerialReplica(t *testing.T, delay time.Duration) *fakeReplica {
	t.Helper()
	var mu sync.Mutex
	return newFakeReplica(t, func(req *serve.Request) *serve.Response {
		if req.Op == serve.OpPing {
			return &serve.Response{Status: serve.StatusOK}
		}
		mu.Lock()
		time.Sleep(delay)
		mu.Unlock()
		return okEcho(req)
	})
}

// TestGateScalingWaitBound asserts the gateway itself imposes no
// serialization: with wait-bound replicas of fixed unit capacity, a
// 3-replica tier must complete at least 2x the OK-throughput of a
// 1-replica tier even on a single-CPU host. Routing (affinity plus
// bounded-load spill off the saturated primary) is what spreads the
// six-key mix across the tier.
func TestGateScalingWaitBound(t *testing.T) {
	const delay = 25 * time.Millisecond
	run := func(nReplicas int) *loadgen.Result {
		var reps []*fakeReplica
		for i := 0; i < nReplicas; i++ {
			reps = append(reps, slowSerialReplica(t, delay))
		}
		g := startGateway(t, gate.Config{Replicas: specsOf(reps...)})
		res, err := loadgen.Run(context.Background(), loadgen.Config{
			Addr:        g.Addr().String(),
			Rate:        200,
			Duration:    1500 * time.Millisecond,
			MaxInflight: 32,
			Mix:         waitMix(),
			Seed:        7,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%d replica(s):\n%s", nReplicas, res)
		return res
	}
	one := run(1)
	three := run(3)
	if one.OK == 0 {
		t.Fatal("single-replica run completed no requests")
	}
	ratio := three.ThroughputOK / one.ThroughputOK
	if ratio < 2.0 {
		t.Errorf("3-replica throughput %.1f ok/s is only %.2fx the 1-replica %.1f ok/s; want >= 2x",
			three.ThroughputOK, ratio, one.ThroughputOK)
	}
	if three.Failed > 0 {
		t.Errorf("3-replica run had %d failed requests", three.Failed)
	}
}

// TestGateAffinity checks the routing half of the sharding story: under
// a light plan-mix load (sequential, so no bounded-load spill), more
// than 90% of first routing decisions land on the key's ring primary —
// the property that keeps each replica's plan cache warm and same-plan
// batching effective.
func TestGateAffinity(t *testing.T) {
	var specs []gate.ReplicaSpec
	for i := 0; i < 3; i++ {
		sp, _ := startReplica(t, serve.Config{})
		specs = append(specs, sp)
	}
	g := startGateway(t, gate.Config{Replicas: specs})
	mix := []loadgen.Spec{
		{N: 1024, Accuracy: -1, Weight: 2},
		{N: 2048, Accuracy: -1, Weight: 2},
		{N: 4096, Accuracy: -1, Weight: 1},
		{N: 1024, Segments: 8, Accuracy: -1, Weight: 1},
		{N: 2048, Taps: 48, Accuracy: -1, Weight: 1},
		{N: 4096, Segments: 16, Accuracy: -1, Weight: 1},
	}
	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Addr:        g.Addr().String(),
		Rate:        60,
		Duration:    2 * time.Second,
		MaxInflight: 1,
		Mix:         mix,
		Seed:        3,
		BitCheck:    true,
		Warmup:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("affinity run:\n%s", res)
	if res.OK == 0 || res.Failed > 0 || res.Corrupted > 0 {
		t.Fatalf("light load should fully succeed: ok=%d failed=%d corrupted=%d",
			res.OK, res.Failed, res.Corrupted)
	}
	if aff := g.Metrics().Affinity(); aff < 0.9 {
		t.Errorf("PlanKey affinity %.3f under light load, want > 0.9 (spills=%d)",
			aff, g.Metrics().Spills())
	}
}

// TestGateChaosKillReplicaFailover is the fault half of the e2e:
// mid-stream, the primary replica for the workload's key is killed —
// its link starts resetting every write via faultnet and the server is
// force-shutdown, severing pooled and in-flight connections. Every
// request must still succeed through failover, every spectrum must be
// bit-identical to a locally computed reference, and p99 latency must
// stay within 2x the per-attempt deadline.
func TestGateChaosKillReplicaFailover(t *testing.T) {
	var specs []gate.ReplicaSpec
	servers := map[string]*serve.Server{}
	for i := 0; i < 3; i++ {
		sp, s := startReplica(t, serve.Config{})
		specs = append(specs, sp)
		servers[sp.Addr] = s
	}

	// The chaos dialer: once doomed holds an address, every new
	// connection to it resets on the first write (faultnet makes the
	// link loss deterministic, not a timing accident).
	var doomed atomic.Value
	doomed.Store("")
	chaos := faultnet.Plan{ResetProb: 1, Seed: 11}
	dial := func(addr string) (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		if addr == doomed.Load().(string) {
			return chaos.Conn(c, faultnet.LinkID(0, 1)), nil
		}
		return c, nil
	}

	// A long health interval keeps the active prober from marking the
	// victim draining (its httptest /healthz outlives the force
	// shutdown and reports 503) before traffic trips over the severed
	// connections: the kill must be discovered passively, through the
	// transport-error failover path this test exists to exercise.
	const attemptTimeout = 2 * time.Second
	g := startGateway(t, gate.Config{
		Replicas:       specs,
		HealthInterval: time.Hour,
		AttemptTimeout: attemptTimeout,
		Dial:           dial,
	})

	spec := loadgen.Spec{N: 4096, Accuracy: -1, Weight: 1}
	primary := g.PrimaryFor(soifft.KeyOf(spec.N))
	if _, ok := servers[primary]; !ok {
		t.Fatalf("primary %s is not one of the replicas", primary)
	}

	// Kill the primary mid-stream: arm the resetting link, then sever
	// its existing connections with a force shutdown (expired context).
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(800 * time.Millisecond)
		doomed.Store(primary)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_ = servers[primary].Shutdown(ctx)
	}()

	res, err := loadgen.Run(context.Background(), loadgen.Config{
		Addr:           g.Addr().String(),
		Rate:           150,
		Duration:       2500 * time.Millisecond,
		MaxInflight:    8,
		Mix:            []loadgen.Spec{spec},
		Seed:           5,
		RequestTimeout: 2 * attemptTimeout,
		BitCheck:       true,
		Warmup:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	<-killed
	t.Logf("chaos run:\n%s", res)
	writeSLO(t, "GATE_CHAOS_JSON", res)

	if res.OK == 0 {
		t.Fatal("no requests completed")
	}
	if res.Failed > 0 || res.Rejected > 0 {
		t.Errorf("killing one of three replicas lost requests: failed=%d rejected=%d (failover should absorb it)",
			res.Failed, res.Rejected)
	}
	if res.Corrupted > 0 {
		t.Errorf("%d corrupted spectra after failover; answers must stay bit-exact", res.Corrupted)
	}
	if res.Latency.P99 > 2*attemptTimeout {
		t.Errorf("p99 latency %v exceeds 2x the per-attempt deadline %v", res.Latency.P99, attemptTimeout)
	}
	if g.Metrics().Failovers() == 0 {
		t.Error("failovers counter did not move despite the killed primary")
	}
}

// TestGateClusterRollup: the gateway's /debug/cluster roll-up gathers
// the instrumented replica's telemetry snapshot (fetched from the
// /debug/cluster endpoint next to its /healthz) and reports the
// uninstrumented replica with an explanatory error instead.
func TestGateClusterRollup(t *testing.T) {
	spInst, _ := startReplica(t, serve.Config{
		Workers:    1,
		Instrument: soifft.InstrumentTimers,
	})
	spBare, _ := startReplica(t, serve.Config{Workers: 1})

	// One direct transform resolves an instrumented plan on the first
	// replica, giving its serving tier something to snapshot.
	c, err := client.Dial(spInst.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Transform(signal.Random(4096, 1), &client.Options{Segments: 8, Taps: 24}); err != nil {
		t.Fatal(err)
	}

	g := startGateway(t, gate.Config{Replicas: []gate.ReplicaSpec{spInst, spBare}})
	roll := g.ClusterRollup()
	if roll.Schema != gate.RollupSchema || len(roll.Replicas) != 2 {
		t.Fatalf("rollup schema=%q replicas=%d, want %q/2", roll.Schema, len(roll.Replicas), gate.RollupSchema)
	}
	if roll.Gathered != 1 {
		t.Fatalf("rollup gathered %d snapshots, want 1:\n%+v", roll.Gathered, roll.Replicas)
	}
	for _, rc := range roll.Replicas {
		switch rc.Addr {
		case spInst.Addr:
			var snap telemetry.ClusterSnapshot
			if err := json.Unmarshal(rc.Snapshot, &snap); err != nil {
				t.Fatalf("instrumented replica snapshot is not a cluster document: %v", err)
			}
			if snap.World != 1 || len(snap.Ranks) != 1 || snap.Ranks[0].Transforms == 0 {
				t.Errorf("instrumented replica snapshot = world %d, %d ranks, %d transforms; want 1/1/>0",
					snap.World, len(snap.Ranks), snap.Ranks[0].Transforms)
			}
		case spBare.Addr:
			if rc.Snapshot != nil || !strings.Contains(rc.Error, "uninstrumented") {
				t.Errorf("bare replica entry = %+v, want an uninstrumented error and no snapshot", rc)
			}
		default:
			t.Errorf("rollup names unknown replica %q", rc.Addr)
		}
	}
}
