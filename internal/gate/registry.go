package gate

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"soifft/internal/serve"
)

// State is a replica's health disposition as the gateway sees it.
type State int32

// Replica health states.
const (
	// StateHealthy replicas receive traffic.
	StateHealthy State = iota
	// StateDraining replicas answered /healthz with 503 or a request
	// with StatusDraining: in-flight work completes elsewhere and no new
	// work is routed until a probe sees 200 again.
	StateDraining
	// StateDown replicas failed dials, probes or enough transport-level
	// request errors; only a successful health probe restores them.
	StateDown
)

func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDraining:
		return "draining"
	case StateDown:
		return "down"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// ReplicaSpec names one replica: the transform TCP address and an
// optional /healthz URL (empty = passive health only: transport errors
// mark the replica down, a successful pooled Ping restores it).
type ReplicaSpec struct {
	Addr      string
	HealthURL string
}

// downAfter is how many consecutive probe/transport failures demote a
// replica to StateDown (one flaky pooled connection is not an outage).
const downAfter = 2

// replica is the registry's per-replica record: routing state, the
// connection pool, health detail from the last probe, and counters.
type replica struct {
	addr      string
	healthURL string
	pool      *pool

	inflight atomic.Int64 // requests currently proxied to this replica

	mu         sync.Mutex
	state      State
	fails      int   // consecutive probe/transport failures
	queueDepth int64 // from the last /healthz JSON body
	warmPlans  int
	lastErr    string
	lastProbe  time.Time

	routed atomic.Int64 // requests sent here (including retries)
	failed atomic.Int64 // transport-level failures observed here
	lat    latHist      // per-replica request round-trip latency
}

func (r *replica) getState() State {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// noteFailure records one transport-level failure; the replica goes
// down after downAfter consecutive ones. immediate forces StateDown
// right away (a refused dial is unambiguous).
func (r *replica) noteFailure(err error, immediate bool) {
	r.failed.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fails++
	r.lastErr = err.Error()
	if immediate || r.fails >= downAfter {
		r.state = StateDown
	}
}

// noteDraining marks the replica draining (it answered a request with
// StatusDraining); a later 200 probe restores it.
func (r *replica) noteDraining() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state = StateDraining
}

// noteHealthy records a successful probe with its health detail.
func (r *replica) noteHealthy(h serve.Health) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state = StateHealthy
	r.fails = 0
	r.lastErr = ""
	r.queueDepth = h.QueueDepth
	r.warmPlans = h.WarmPlans
	r.lastProbe = time.Now()
}

// registry is the replica set plus the consistent-hash ring over its
// members. Membership changes rebuild the ring; health changes do not
// (unhealthy replicas stay on the ring and are skipped at routing time,
// so a recovered replica gets its old keys back — affinity survives the
// outage).
type registry struct {
	mu       sync.RWMutex
	replicas map[string]*replica
	ring     *ring
	vnodes   int
	dial     dialFunc
	maxIdle  int
}

func newRegistry(vnodes, maxIdle int, dial dialFunc) *registry {
	return &registry{
		replicas: make(map[string]*replica),
		ring:     newRing(nil, vnodes),
		vnodes:   vnodes,
		dial:     dial,
		maxIdle:  maxIdle,
	}
}

// update reconciles the replica set with specs: new replicas are added
// healthy, vanished ones have their pools closed, and the ring is
// rebuilt only when membership actually changed. It returns the number
// of added and removed replicas.
func (g *registry) update(specs []ReplicaSpec) (added, removed int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	want := make(map[string]ReplicaSpec, len(specs))
	for _, sp := range specs {
		if sp.Addr == "" {
			continue
		}
		want[sp.Addr] = sp
	}
	for addr, sp := range want {
		if r, ok := g.replicas[addr]; ok {
			r.mu.Lock()
			r.healthURL = sp.HealthURL
			r.mu.Unlock()
			continue
		}
		g.replicas[addr] = &replica{
			addr:      addr,
			healthURL: sp.HealthURL,
			pool:      newPool(addr, g.dial, g.maxIdle),
		}
		added++
	}
	for addr, r := range g.replicas {
		if _, ok := want[addr]; !ok {
			r.pool.closeAll()
			delete(g.replicas, addr)
			removed++
		}
	}
	if added > 0 || removed > 0 {
		addrs := make([]string, 0, len(g.replicas))
		for addr := range g.replicas {
			addrs = append(addrs, addr)
		}
		sort.Strings(addrs)
		g.ring = newRing(addrs, g.vnodes)
	}
	return added, removed
}

// get returns the record for addr (nil if it left the set).
func (g *registry) get(addr string) *replica {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.replicas[addr]
}

// candidates returns the ring's preference order for key over current
// membership (health is the router's concern, not the ring's).
func (g *registry) candidates(key string) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.ring.candidates(key, len(g.replicas))
}

// all returns every replica record, address-sorted (stable for /debug/ring).
func (g *registry) all() []*replica {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*replica, 0, len(g.replicas))
	for _, r := range g.replicas {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

// healthyCount returns how many replicas are currently routable and the
// total in-flight across them (the inputs to the bounded-load rule).
func (g *registry) healthyCount() (n int, inflight int64) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, r := range g.replicas {
		if r.getState() == StateHealthy {
			n++
			inflight += r.inflight.Load()
		}
	}
	return n, inflight
}

// closeAll shuts every pool down (gateway shutdown).
func (g *registry) closeAll() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, r := range g.replicas {
		r.pool.closeAll()
	}
}

// probe runs one health check against r. With a health URL it GETs
// /healthz and parses the serve.Health JSON body (200 = healthy with
// queue/warm detail, 503 = draining); without one it falls back to a
// pooled protocol Ping. Probe failures demote to down after downAfter
// consecutive misses.
func (g *registry) probe(r *replica, hc *http.Client, pingTimeout time.Duration) {
	r.mu.Lock()
	url := r.healthURL
	r.mu.Unlock()
	if url == "" {
		if err := r.pool.ping(pingTimeout); err != nil {
			r.noteFailure(err, false)
			return
		}
		r.noteHealthy(serve.Health{Status: "ok"})
		return
	}
	resp, err := hc.Get(url)
	if err != nil {
		r.noteFailure(err, false)
		return
	}
	defer resp.Body.Close()
	var h serve.Health
	_ = json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&h)
	switch {
	case resp.StatusCode == http.StatusOK:
		r.noteHealthy(h)
	case resp.StatusCode == http.StatusServiceUnavailable || h.Draining:
		r.noteDraining()
	default:
		r.noteFailure(fmt.Errorf("healthz: unexpected status %d", resp.StatusCode), false)
	}
}
