package gate

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// admitAsync queues one admit call and reports its grant on a channel.
func admitAsync(t *testing.T, a *admission, tenant string) (granted chan func(), cancel context.CancelFunc) {
	t.Helper()
	granted = make(chan func(), 1)
	ctx, cancelFn := context.WithCancel(context.Background())
	go func() {
		release, err := a.admit(ctx, tenant)
		if err == nil {
			granted <- release
		} else {
			close(granted)
		}
	}()
	// Give the goroutine time to enqueue before the caller proceeds.
	time.Sleep(20 * time.Millisecond)
	return granted, cancelFn
}

// TestAdmissionFairQueueing is the starvation test: with one slot held
// and tenant A's backlog queued ahead of tenant B's single request, B
// is granted on the second release — round-robin across tenants — not
// behind A's whole flood.
func TestAdmissionFairQueueing(t *testing.T) {
	a := newAdmission(1, 16)
	release, err := a.admit(context.Background(), "holder")
	if err != nil {
		t.Fatal(err)
	}

	var grants []chan func()
	var cancels []context.CancelFunc
	for i := 0; i < 3; i++ {
		g, c := admitAsync(t, a, "tenantA")
		grants = append(grants, g)
		cancels = append(cancels, c)
	}
	gB, cB := admitAsync(t, a, "tenantB")
	cancels = append(cancels, cB)
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	wait := func(ch chan func(), who string) func() {
		t.Helper()
		select {
		case rel, ok := <-ch:
			if !ok {
				t.Fatalf("%s admit failed", who)
			}
			return rel
		case <-time.After(2 * time.Second):
			t.Fatalf("%s never granted", who)
			return nil
		}
	}
	assertPending := func(ch chan func(), who string) {
		t.Helper()
		select {
		case <-ch:
			t.Fatalf("%s granted too early", who)
		case <-time.After(30 * time.Millisecond):
		}
	}

	// First release goes to A (first in rotation)...
	release()
	relA := wait(grants[0], "tenantA[0]")
	assertPending(gB, "tenantB")
	// ...and the second to B, despite A's remaining backlog of two.
	relA()
	relB := wait(gB, "tenantB")
	assertPending(grants[2], "tenantA[2]")
	relB()
	relA1 := wait(grants[1], "tenantA[1]")
	relA1()
	relA2 := wait(grants[2], "tenantA[2]")
	relA2()
}

// TestAdmissionTenantQueueCap checks a flooding tenant gets the typed
// rejection once its queue is full, while capacity itself is unchanged.
func TestAdmissionTenantQueueCap(t *testing.T) {
	a := newAdmission(1, 2)
	release, err := a.admit(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	g1, c1 := admitAsync(t, a, "t")
	defer c1()
	g2, c2 := admitAsync(t, a, "t")
	defer c2()
	_ = g1
	_ = g2

	if _, err := a.admit(context.Background(), "t"); !errors.Is(err, ErrTenantOverloaded) {
		t.Fatalf("third waiter got %v, want ErrTenantOverloaded", err)
	}
	// A different tenant still queues fine.
	_, c3 := admitAsync(t, a, "other")
	defer c3()
	if got := a.queued(); got != 3 {
		t.Errorf("queued() = %d, want 3", got)
	}
}

// TestAdmissionCancelledWaiter checks a cancelled waiter releases its
// queue slot and never consumes capacity.
func TestAdmissionCancelledWaiter(t *testing.T) {
	a := newAdmission(1, 4)
	release, err := a.admit(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := a.admit(ctx, "t")
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}
	if got := a.queued(); got != 0 {
		t.Errorf("queued() = %d after cancellation, want 0", got)
	}
	// Capacity is fully available again after release.
	release()
	done := make(chan struct{})
	go func() {
		rel, err := a.admit(context.Background(), "t")
		if err == nil {
			rel()
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("slot never became available after cancel+release")
	}
}

// TestAdmissionConcurrency hammers admit/release from many goroutines
// under the race detector and checks the slot accounting ends at zero.
func TestAdmissionConcurrency(t *testing.T) {
	a := newAdmission(4, 64)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tenant := string(rune('a' + id%4))
			for k := 0; k < 50; k++ {
				release, err := a.admit(context.Background(), tenant)
				if err != nil {
					continue
				}
				release()
			}
		}(i)
	}
	wg.Wait()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.inflight != 0 {
		t.Errorf("inflight = %d after all releases, want 0", a.inflight)
	}
	if len(a.order) != 0 || len(a.tenants) != 0 {
		t.Errorf("waiter books not empty: order=%v tenants=%d", a.order, len(a.tenants))
	}
}
