package gate

import (
	"bufio"
	"net"
	"sync"
	"time"

	"soifft/internal/serve"
)

// dialFunc opens a connection to a replica. The default is a plain TCP
// dial; tests substitute one that injects faultnet faults on chosen
// links.
type dialFunc func(addr string) (net.Conn, error)

// pconn is one pooled protocol connection: the raw conn plus its framed
// reader/writer. A pconn carries at most one request at a time (the
// protocol is strict request/response).
type pconn struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// pool is the per-replica connection pool. Connections are created on
// demand, reused LIFO (warm TCP windows first), and discarded on any
// transport error — the framing on a failed connection is no longer
// trustworthy, exactly the client package's broken-connection rule.
type pool struct {
	addr    string
	dial    dialFunc
	maxIdle int

	mu     sync.Mutex
	idle   []*pconn
	closed bool
}

func newPool(addr string, dial dialFunc, maxIdle int) *pool {
	if maxIdle <= 0 {
		maxIdle = 8
	}
	return &pool{addr: addr, dial: dial, maxIdle: maxIdle}
}

// get pops an idle connection or dials a fresh one.
func (p *pool) get() (*pconn, error) {
	p.mu.Lock()
	if n := len(p.idle); n > 0 {
		pc := p.idle[n-1]
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return pc, nil
	}
	p.mu.Unlock()
	conn, err := p.dial(p.addr)
	if err != nil {
		return nil, err
	}
	return &pconn{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}, nil
}

// put returns a healthy connection to the idle list (or closes it when
// the pool is full or closed).
func (p *pool) put(pc *pconn) {
	p.mu.Lock()
	if !p.closed && len(p.idle) < p.maxIdle {
		p.idle = append(p.idle, pc)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	_ = pc.conn.Close()
}

// closeAll drops every idle connection and marks the pool closed.
func (p *pool) closeAll() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, pc := range idle {
		_ = pc.conn.Close()
	}
}

// do round-trips one request on a pooled connection under the given
// deadline. A transport-level failure (dial, write, read, deadline)
// closes the connection and returns a non-nil error with dialFailed
// telling the caller whether the replica refused the connection
// outright; a decoded response — whatever its status — returns err nil.
func (p *pool) do(req *serve.Request, timeout time.Duration, maxN int) (resp *serve.Response, dialFailed bool, err error) {
	pc, err := p.get()
	if err != nil {
		return nil, true, err
	}
	if timeout > 0 {
		_ = pc.conn.SetDeadline(time.Now().Add(timeout))
	}
	if err := serve.WriteRequest(pc.bw, req); err != nil {
		_ = pc.conn.Close()
		return nil, false, err
	}
	if err := pc.bw.Flush(); err != nil {
		_ = pc.conn.Close()
		return nil, false, err
	}
	resp, err = serve.ReadResponse(pc.br, maxN)
	if err != nil {
		_ = pc.conn.Close()
		return nil, false, err
	}
	if timeout > 0 {
		_ = pc.conn.SetDeadline(time.Time{})
	}
	// A draining reply is the replica's last frame on this connection
	// (the server closes after writing it), so don't pool it.
	if resp.Status == serve.StatusDraining {
		_ = pc.conn.Close()
	} else {
		p.put(pc)
	}
	return resp, false, nil
}

// ping round-trips an OpPing (the passive health probe for replicas
// without a /healthz URL).
func (p *pool) ping(timeout time.Duration) error {
	resp, _, err := p.do(&serve.Request{Op: serve.OpPing, Accuracy: serve.AccuracyNone}, timeout, 1)
	if err != nil {
		return err
	}
	return resp.Err()
}
