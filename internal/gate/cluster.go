package gate

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
)

// RollupSchema versions the gateway's fleet telemetry roll-up document.
const RollupSchema = "soigate-cluster/v1"

// ReplicaCluster is one replica's entry in the roll-up: the replica's
// own /debug/cluster document (the soifft-cluster/v1 snapshot its
// serving tier exports), or the reason it could not be fetched.
type ReplicaCluster struct {
	Addr     string          `json:"addr"`
	State    string          `json:"state"`
	Error    string          `json:"error,omitempty"`
	Snapshot json.RawMessage `json:"snapshot,omitempty"`
}

// ClusterRollup is the /debug/cluster JSON document the gateway serves:
// every replica's telemetry snapshot fetched at request time and merged
// into one address-sorted fleet view, so one scrape of the gateway
// shows each replica's per-stage profile and explainer findings.
type ClusterRollup struct {
	Schema string `json:"schema"`
	// Gathered counts replicas that returned a snapshot.
	Gathered int              `json:"gathered"`
	Replicas []ReplicaCluster `json:"replicas"`
}

// ClusterRollup fetches every replica's /debug/cluster concurrently
// (each GET bounded by the health-probe timeout) and merges the
// results. The endpoint URL is derived from the replica's health URL —
// both routes live on the same serving-tier metrics mux — so replicas
// registered without one, and replicas whose serving tier is
// uninstrumented (404), carry an explanatory error instead of a
// snapshot.
func (g *Gateway) ClusterRollup() ClusterRollup {
	hc := &http.Client{Timeout: g.probeTimeout()}
	reps := g.reg.all()
	out := ClusterRollup{Schema: RollupSchema, Replicas: make([]ReplicaCluster, len(reps))}
	var wg sync.WaitGroup
	for i, r := range reps {
		r.mu.Lock()
		url := r.healthURL
		state := r.state.String()
		r.mu.Unlock()
		rc := &out.Replicas[i]
		rc.Addr, rc.State = r.addr, state
		switch {
		case url == "":
			rc.Error = "no health url: cannot locate the replica's /debug/cluster"
			continue
		case !strings.HasSuffix(url, "/healthz"):
			rc.Error = "cannot derive /debug/cluster from health url " + url
			continue
		}
		wg.Add(1)
		go func(rc *ReplicaCluster, url string) {
			defer wg.Done()
			resp, err := hc.Get(url)
			if err != nil {
				rc.Error = err.Error()
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<22))
			switch {
			case err != nil:
				rc.Error = err.Error()
			case resp.StatusCode == http.StatusNotFound:
				rc.Error = "replica serves no telemetry snapshot (uninstrumented)"
			case resp.StatusCode != http.StatusOK:
				rc.Error = fmt.Sprintf("cluster snapshot: unexpected status %d", resp.StatusCode)
			case !json.Valid(body):
				rc.Error = "cluster snapshot: invalid JSON"
			default:
				rc.Snapshot = body
			}
		}(rc, strings.TrimSuffix(url, "/healthz")+"/debug/cluster")
	}
	wg.Wait()
	for i := range out.Replicas {
		if out.Replicas[i].Snapshot != nil {
			out.Gathered++
		}
	}
	return out
}
