// Package gate is the soigate serving tier: a TCP gateway that speaks
// the internal/serve protocol on both sides, routes each transform to a
// replica by consistent-hashing its PlanKey (so identical plans land on
// the replica whose cache is already warm and same-plan batching keeps
// paying off), spills off overloaded replicas with a bounded-load rule,
// fails over on transport errors and draining replicas, and applies
// per-tenant admission control with fair queueing in front of the
// replicas' typed backpressure.
//
// The gateway is a wire peer, not a new protocol: existing clients
// point at it unchanged, and it forwards the v2 trace ID so a request's
// spans still join one timeline across client, gateway and replica.
package gate

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over replica addresses. Each replica
// owns vnodes points so removing one replica only remaps its own keys,
// preserving every other replica's warm plan caches.
type ring struct {
	vnodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	replica string
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	// splitmix64 finalizer: FNV alone leaves similar short strings
	// (replica addresses differing in one digit) on clustered arcs;
	// the extra avalanche evens the ring out.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// newRing builds a ring over the given replicas. vnodes <= 0 selects the
// default of 64 points per replica.
func newRing(replicas []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &ring{vnodes: vnodes}
	for _, rep := range replicas {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(fmt.Sprintf("%s#%d", rep, i)),
				replica: rep,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// candidates walks clockwise from the key's point and returns up to max
// distinct replicas in preference order. Index 0 is the key's primary —
// the replica whose plan cache stays warm for it; later entries are the
// spill/failover order, stable for a fixed membership.
func (r *ring) candidates(key string, max int) []string {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, max)
	out := make([]string, 0, max)
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.replica] {
			seen[p.replica] = true
			out = append(out, p.replica)
		}
	}
	return out
}
