package gate

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"soifft"
	"soifft/internal/serve"
)

// Config tunes a Gateway. The zero value of every field selects a
// sensible default.
type Config struct {
	// Addr is the TCP listen address clients connect to (default
	// "127.0.0.1:7090").
	Addr string
	// Replicas is the initial replica set. SetReplicas updates it live
	// (file-based discovery in cmd/soigate goes through it).
	Replicas []ReplicaSpec
	// HealthInterval is the /healthz polling period (default 2s).
	HealthInterval time.Duration
	// VNodes is the number of ring points per replica (default 64).
	VNodes int
	// BoundedLoadFactor caps a replica's share of in-flight work at
	// factor × the healthy-replica average before the router spills a
	// key to the next ring candidate (default 1.25; <1 disables the
	// bound). Spill preserves liveness under hot keys at a bounded cost
	// to affinity.
	BoundedLoadFactor float64
	// AttemptTimeout bounds one proxied attempt to one replica: dial,
	// write, replica time, read (default 30s).
	AttemptTimeout time.Duration
	// MaxAttempts bounds total replica attempts per request, across
	// failover and backoff passes (default: replica count + 1).
	MaxAttempts int
	// MaxBackoff caps the RetryAfter-derived sleep between the first
	// and second routing pass (default 1s).
	MaxBackoff time.Duration
	// MaxInflight is the gateway-wide admission cap on concurrently
	// proxied requests (default 1024).
	MaxInflight int
	// TenantQueue caps one tenant's waiting requests; beyond it the
	// tenant gets typed StatusOverloaded backpressure (default 128).
	TenantQueue int
	// RetryAfter is the hint attached to gateway-level rejections
	// (default 50ms).
	RetryAfter time.Duration
	// MaxN rejects requests longer than this many points (default 2^22).
	MaxN int
	// MaxIdlePerReplica caps each replica pool's idle connections
	// (default 8).
	MaxIdlePerReplica int
	// IdleTimeout closes a client connection when no complete request
	// arrives within it (0 = no limit).
	IdleTimeout time.Duration
	// WriteTimeout bounds writing one response to a client (0 = no limit).
	WriteTimeout time.Duration
	// Dial opens replica connections (default: 5s TCP dial). Tests
	// substitute a faultnet-wrapping dialer to chaos a chosen link.
	Dial func(addr string) (net.Conn, error)
	// Logger receives structured connection- and routing-level records
	// (default: discard).
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:7090"
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.BoundedLoadFactor == 0 {
		c.BoundedLoadFactor = 1.25
	}
	if c.AttemptTimeout <= 0 {
		c.AttemptTimeout = 30 * time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = time.Second
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 1024
	}
	if c.TenantQueue <= 0 {
		c.TenantQueue = 128
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 50 * time.Millisecond
	}
	if c.MaxN <= 0 {
		c.MaxN = 1 << 22
	}
	if c.MaxIdlePerReplica <= 0 {
		c.MaxIdlePerReplica = 8
	}
	if c.Dial == nil {
		c.Dial = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 5*time.Second)
		}
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Gateway is the serving-tier front door. Create with New, start with
// ListenAndServe (or Listen + Serve), stop with Shutdown.
type Gateway struct {
	cfg     Config
	reg     *registry
	adm     *admission
	metrics *Metrics

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool

	healthStop chan struct{}
	healthWG   sync.WaitGroup
	connWG     sync.WaitGroup
	inflight   sync.WaitGroup
}

// New builds a gateway over the configured replica set and starts its
// health loop immediately (every replica gets one synchronous probe so
// routing state is populated before the first request).
func New(cfg Config) *Gateway {
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:        cfg,
		adm:        newAdmission(cfg.MaxInflight, cfg.TenantQueue),
		conns:      make(map[net.Conn]struct{}),
		healthStop: make(chan struct{}),
	}
	g.reg = newRegistry(cfg.VNodes, cfg.MaxIdlePerReplica, cfg.Dial)
	g.metrics = newMetrics(g)
	g.reg.update(cfg.Replicas)
	g.probeAll()
	g.healthWG.Add(1)
	go g.healthLoop()
	return g
}

// Metrics exposes the gateway's live counters.
func (g *Gateway) Metrics() *Metrics { return g.metrics }

// SetReplicas reconciles the replica set (file-based discovery). New
// replicas are probed immediately.
func (g *Gateway) SetReplicas(specs []ReplicaSpec) {
	added, removed := g.reg.update(specs)
	if added > 0 || removed > 0 {
		g.cfg.Logger.Info("replica set updated", "added", added, "removed", removed, "size", len(specs))
		g.probeAll()
	}
}

// PrimaryFor returns the ring primary for the plan key — the replica a
// healthy, unloaded tier routes the key to (tests and /debug/ring use
// it; routing itself may spill or fail over).
func (g *Gateway) PrimaryFor(key soifft.PlanKey) string {
	cands := g.reg.candidates(key.String())
	if len(cands) == 0 {
		return ""
	}
	return cands[0]
}

// probeTimeout bounds one health probe: the polling period, capped at
// 2s so a sparse polling schedule doesn't imply a patient probe.
func (g *Gateway) probeTimeout() time.Duration {
	if g.cfg.HealthInterval < 2*time.Second {
		return g.cfg.HealthInterval
	}
	return 2 * time.Second
}

func (g *Gateway) probeAll() {
	to := g.probeTimeout()
	hc := &http.Client{Timeout: to}
	var wg sync.WaitGroup
	for _, r := range g.reg.all() {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			g.reg.probe(r, hc, to)
		}(r)
	}
	wg.Wait()
}

// healthLoop re-probes the replica set forever. Both the period and the
// per-replica probe launch are jittered: gateways restarted together
// (a fleet rollout) would otherwise align their probes into
// synchronized bursts that hit every replica at the same instant. The
// period wanders ±1/5 around the configured interval, and within each
// round every replica's probe starts at an independent random offset
// inside a window of at most interval/5 (capped at 2s).
func (g *Gateway) healthLoop() {
	defer g.healthWG.Done()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	t := time.NewTimer(jitteredInterval(g.cfg.HealthInterval, rng))
	defer t.Stop()
	for {
		select {
		case <-g.healthStop:
			return
		case <-t.C:
			g.probeStaggered(rng)
			t.Reset(jitteredInterval(g.cfg.HealthInterval, rng))
		}
	}
}

// jitteredInterval spreads d uniformly over [4d/5, 6d/5].
func jitteredInterval(d time.Duration, rng *rand.Rand) time.Duration {
	j := d / 5
	if j <= 0 {
		return d
	}
	return d - j + time.Duration(rng.Int63n(int64(2*j)+1))
}

// probeStaggered is the periodic sibling of probeAll: same fan-out, but
// each replica's probe is delayed by a random offset so one round does
// not land on every replica simultaneously. The synchronous probeAll
// stays un-staggered — New and SetReplicas need routing state now.
func (g *Gateway) probeStaggered(rng *rand.Rand) {
	to := g.probeTimeout()
	hc := &http.Client{Timeout: to}
	window := g.cfg.HealthInterval / 5
	if window > 2*time.Second {
		window = 2 * time.Second
	}
	var wg sync.WaitGroup
	for _, r := range g.reg.all() {
		delay := time.Duration(rng.Int63n(int64(window) + 1))
		wg.Add(1)
		go func(r *replica, delay time.Duration) {
			defer wg.Done()
			select {
			case <-time.After(delay):
			case <-g.healthStop:
				return
			}
			g.reg.probe(r, hc, to)
		}(r, delay)
	}
	wg.Wait()
}

// Listen binds the configured address.
func (g *Gateway) Listen() error {
	ln, err := net.Listen("tcp", g.cfg.Addr)
	if err != nil {
		return err
	}
	g.mu.Lock()
	g.ln = ln
	g.mu.Unlock()
	return nil
}

// Addr returns the bound listen address (nil before Listen).
func (g *Gateway) Addr() net.Addr {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ln == nil {
		return nil
	}
	return g.ln.Addr()
}

// ListenAndServe binds cfg.Addr and runs the accept loop until Shutdown.
func (g *Gateway) ListenAndServe() error {
	if err := g.Listen(); err != nil {
		return err
	}
	return g.Serve()
}

// Serve runs the accept loop. It returns nil after Shutdown closes the
// listener.
func (g *Gateway) Serve() error {
	g.mu.Lock()
	ln := g.ln
	g.mu.Unlock()
	if ln == nil {
		return errors.New("gate: Serve before Listen")
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			g.mu.Lock()
			draining := g.draining
			g.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		g.mu.Lock()
		if g.draining {
			g.mu.Unlock()
			_ = conn.Close()
			continue
		}
		g.conns[conn] = struct{}{}
		g.mu.Unlock()
		g.connWG.Add(1)
		go g.handleConn(conn)
	}
}

func (g *Gateway) handleConn(conn net.Conn) {
	defer g.connWG.Done()
	defer func() {
		g.mu.Lock()
		delete(g.conns, conn)
		g.mu.Unlock()
		_ = conn.Close()
	}()
	br := bufio.NewReader(&countingReader{r: conn, n: &g.metrics.bytesIn})
	bw := bufio.NewWriter(&countingWriter{w: conn, n: &g.metrics.bytesOut})
	writeResp := func(resp *serve.Response) error {
		if g.cfg.WriteTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(g.cfg.WriteTimeout))
		}
		if err := serve.WriteResponse(bw, resp); err != nil {
			return err
		}
		return bw.Flush()
	}
	tenant := tenantOf(conn.RemoteAddr())
	log := g.cfg.Logger.With("remote", conn.RemoteAddr().String(), "tenant", tenant)
	for {
		if g.cfg.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(g.cfg.IdleTimeout))
		}
		req, err := serve.ReadRequest(br, g.cfg.MaxN)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) &&
				!errors.Is(err, net.ErrClosed) && !errors.Is(err, os.ErrDeadlineExceeded) {
				log.Warn("request read failed", "err", err)
				_ = writeResp(&serve.Response{Status: serve.StatusBadRequest, Msg: err.Error()})
			}
			return
		}
		g.mu.Lock()
		if g.draining {
			g.mu.Unlock()
			_ = writeResp(&serve.Response{
				Status: serve.StatusDraining, RetryAfter: g.cfg.RetryAfter,
				Msg: "gateway is draining", Proto: req.Proto,
			})
			return
		}
		g.inflight.Add(1)
		g.mu.Unlock()

		resp := g.process(req, tenant, log)
		resp.Proto = req.Proto // echo the client's wire version
		err = writeResp(resp)
		g.inflight.Done()
		if err != nil {
			log.Warn("response write failed", "err", err)
			return
		}
	}
}

// process admits and routes one request, returning the response to
// relay. All gateway-level rejections reuse the replicas' typed
// statuses, so clients see one backpressure vocabulary end to end.
func (g *Gateway) process(req *serve.Request, tenant string, log *slog.Logger) *serve.Response {
	start := time.Now()
	g.metrics.requests.Add(1)
	defer func() { g.metrics.latTotal.observe(time.Since(start)) }()

	if req.Op == serve.OpPing {
		// The gateway is the ping's destination: answering locally keeps
		// probes meaningful when every replica is down.
		g.metrics.pings.Add(1)
		return &serve.Response{Status: serve.StatusOK}
	}
	if req.N <= 0 || len(req.Data) != req.N {
		g.metrics.errors.Add(1)
		return &serve.Response{Status: serve.StatusBadRequest,
			Msg: fmt.Sprintf("payload has %d points, header says n=%d", len(req.Data), req.N)}
	}

	// Per-tenant admission: a slot under the global cap, granted fairly
	// across tenants. The wait is bounded by the attempt timeout so a
	// stalled tier converts to typed backpressure, not a hang.
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.AttemptTimeout)
	release, err := g.adm.admit(ctx, tenant)
	cancel()
	if err != nil {
		g.metrics.rejectedTenant.Add(1)
		msg := "admission queue full for tenant"
		if !errors.Is(err, ErrTenantOverloaded) {
			msg = "admission wait timed out"
		}
		return &serve.Response{Status: serve.StatusOverloaded, RetryAfter: g.cfg.RetryAfter, Msg: msg}
	}
	defer release()
	return g.route(req, log)
}

// route consistent-hashes the request's PlanKey onto the ring and walks
// the candidate order: the primary first (affinity), spilling past
// replicas over their load bound, skipping unhealthy ones, and failing
// over on transport errors and draining replies. If the first pass ends
// with only backpressure, one RetryAfter-aware jittered backoff buys a
// second pass before the rejection is relayed.
func (g *Gateway) route(req *serve.Request, log *slog.Logger) *serve.Response {
	key := planKeyOf(req)
	cands := g.reg.candidates(key.String())
	if len(cands) == 0 {
		g.metrics.rejectedNoRep.Add(1)
		return &serve.Response{Status: serve.StatusOverloaded, RetryAfter: g.cfg.RetryAfter,
			Msg: "no replicas configured"}
	}
	maxAttempts := g.cfg.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = len(cands) + 1
	}

	// Forward in the current wire version regardless of what the client
	// spoke: v2 carries the trace ID through, and the response Proto is
	// restored for the client by the caller.
	fwd := *req
	fwd.Proto = serve.Version

	var lastResp *serve.Response
	var lastHint time.Duration
	attempt := 0
	for pass := 0; pass < 2 && attempt < maxAttempts; pass++ {
		if pass == 1 {
			// RetryAfter-aware backoff: honor the strongest hint the tier
			// gave us, with full jitter, capped.
			hint := lastHint
			if hint <= 0 {
				hint = g.cfg.RetryAfter
			}
			if hint > g.cfg.MaxBackoff {
				hint = g.cfg.MaxBackoff
			}
			g.metrics.backoffs.Add(1)
			time.Sleep(jitter(hint))
		}
		order, primaryOverloaded := g.routeOrder(cands)
		for _, r := range order {
			if attempt >= maxAttempts {
				break
			}
			if attempt == 0 {
				g.metrics.routedFirst.Add(1)
				switch {
				case r.addr == cands[0]:
					g.metrics.primaryRoutes.Add(1)
				case primaryOverloaded:
					g.metrics.spills.Add(1)
				default:
					g.metrics.unhealthySkips.Add(1)
				}
			} else {
				g.metrics.failovers.Add(1)
			}
			attempt++
			resp, err := g.attempt(r, &fwd)
			if err != nil {
				log.Warn("replica attempt failed", "replica", r.addr, "err", err, "attempt", attempt)
				continue
			}
			switch resp.Status {
			case serve.StatusDraining:
				r.noteDraining()
				lastResp, lastHint = resp, resp.RetryAfter
				log.Info("replica draining, failing over", "replica", r.addr)
				continue
			case serve.StatusOverloaded:
				lastResp, lastHint = resp, resp.RetryAfter
				continue
			default:
				// OK, BadRequest and Internal are authoritative: retrying a
				// malformed or failed transform elsewhere cannot help.
				return resp
			}
		}
	}
	g.metrics.errors.Add(1)
	if lastResp != nil {
		return lastResp
	}
	return &serve.Response{Status: serve.StatusOverloaded, RetryAfter: g.cfg.RetryAfter,
		Msg: "no healthy replica"}
}

// routeOrder filters the ring candidates down to routable replicas:
// healthy ones under the bounded-load limit in ring order first, then
// healthy-but-over-bound ones (never rejecting solely for load). It
// also reports whether the primary was healthy but diverted by load —
// the spill-vs-unhealthy accounting routing metrics use.
func (g *Gateway) routeOrder(cands []string) (order []*replica, primaryOverloaded bool) {
	healthyN, totalInflight := g.reg.healthyCount()
	bound := int64(-1)
	if g.cfg.BoundedLoadFactor >= 1 && healthyN > 0 {
		avg := float64(totalInflight+1) / float64(healthyN)
		bound = int64(g.cfg.BoundedLoadFactor*avg) + 1
	}
	var over []*replica
	for i, addr := range cands {
		r := g.reg.get(addr)
		if r == nil || r.getState() != StateHealthy {
			continue
		}
		if bound >= 0 && r.inflight.Load() >= bound {
			if i == 0 {
				primaryOverloaded = true
			}
			over = append(over, r)
			continue
		}
		order = append(order, r)
	}
	return append(order, over...), primaryOverloaded
}

// attempt proxies one request to one replica through its pool,
// recording load, latency and failure state.
func (g *Gateway) attempt(r *replica, req *serve.Request) (*serve.Response, error) {
	g.metrics.proxied.Add(1)
	r.routed.Add(1)
	r.inflight.Add(1)
	start := time.Now()
	resp, dialFailed, err := r.pool.do(req, g.cfg.AttemptTimeout, g.cfg.MaxN)
	r.inflight.Add(-1)
	r.lat.observe(time.Since(start))
	if err != nil {
		r.noteFailure(err, dialFailed)
		return nil, err
	}
	r.noteSuccess()
	return resp, nil
}

// Shutdown stops the gateway: the health loop exits, the listener
// closes, in-flight requests get their responses, then connections and
// pools are torn down. If ctx expires first, connections are severed
// and ctx's error returned.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		return nil
	}
	g.draining = true
	ln := g.ln
	g.mu.Unlock()
	close(g.healthStop)
	g.healthWG.Wait()
	if ln != nil {
		_ = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		g.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
	}
	g.mu.Lock()
	for c := range g.conns {
		_ = c.Close()
	}
	g.mu.Unlock()
	if err == nil {
		g.connWG.Wait()
	}
	g.reg.closeAll()
	return err
}

// noteSuccess clears the consecutive-failure count after any decoded
// response (a stale pooled connection error must not accumulate into a
// down-marking across otherwise healthy traffic).
func (r *replica) noteSuccess() {
	r.mu.Lock()
	r.fails = 0
	r.mu.Unlock()
}

// planKeyOf resolves the request's parameters to the canonical plan key
// exactly as the replica's plan cache would (same defaulting rules), so
// the ring and the replicas agree on what "the same plan" means.
func planKeyOf(req *serve.Request) soifft.PlanKey {
	var opts []soifft.Option
	if req.Segments > 0 {
		opts = append(opts, soifft.WithSegments(req.Segments))
	}
	if req.Mu > 0 && req.Nu > 0 {
		opts = append(opts, soifft.WithOversampling(req.Mu, req.Nu))
	}
	if req.Accuracy >= 0 {
		opts = append(opts, soifft.WithAccuracy(soifft.Accuracy(req.Accuracy)))
	} else if req.Taps > 0 {
		opts = append(opts, soifft.WithTaps(req.Taps))
	}
	return soifft.KeyOf(req.N, opts...)
}

// jitter spreads d over [d/2, d) so synchronized retries desynchronize.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)/2))
}

// tenantOf maps a client address to its admission-control tenant (the
// remote host; every connection from one host shares one fair-queue
// lane).
func tenantOf(addr net.Addr) string {
	host, _, err := net.SplitHostPort(addr.String())
	if err != nil {
		return addr.String()
	}
	return host
}

// countingReader counts bytes read into the metrics.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// countingWriter counts bytes written into the metrics.
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n.Add(int64(n))
	return n, err
}
