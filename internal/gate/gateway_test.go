package gate_test

import (
	"bufio"
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"soifft"
	"soifft/client"
	"soifft/internal/gate"
	"soifft/internal/serve"
)

// fakeReplica is a scripted wire peer: it answers every request with
// handle's response (or closes the connection when handle returns nil),
// recording what it saw. It lets the gateway tests pin failover
// semantics without real FFT work.
type fakeReplica struct {
	t  *testing.T
	ln net.Listener

	mu       sync.Mutex
	requests []*serve.Request
	handle   func(req *serve.Request) *serve.Response

	wg sync.WaitGroup
}

func newFakeReplica(t *testing.T, handle func(req *serve.Request) *serve.Response) *fakeReplica {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeReplica{t: t, ln: ln, handle: handle}
	f.wg.Add(1)
	go f.acceptLoop()
	t.Cleanup(f.close)
	return f
}

func (f *fakeReplica) addr() string { return f.ln.Addr().String() }

func (f *fakeReplica) close() {
	_ = f.ln.Close()
	f.wg.Wait()
}

func (f *fakeReplica) seen() []*serve.Request {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*serve.Request(nil), f.requests...)
}

func (f *fakeReplica) setHandle(h func(req *serve.Request) *serve.Response) {
	f.mu.Lock()
	f.handle = h
	f.mu.Unlock()
}

func (f *fakeReplica) acceptLoop() {
	defer f.wg.Done()
	for {
		conn, err := f.ln.Accept()
		if err != nil {
			return
		}
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			defer conn.Close()
			br := bufio.NewReader(conn)
			bw := bufio.NewWriter(conn)
			for {
				req, err := serve.ReadRequest(br, 1<<22)
				if err != nil {
					return
				}
				f.mu.Lock()
				f.requests = append(f.requests, req)
				h := f.handle
				f.mu.Unlock()
				resp := h(req)
				if resp == nil {
					return // scripted connection kill
				}
				resp.Proto = req.Proto
				if err := serve.WriteResponse(bw, resp); err != nil {
					return
				}
				if err := bw.Flush(); err != nil {
					return
				}
			}
		}()
	}
}

// okEcho answers any transform with an OK echo of its payload.
func okEcho(req *serve.Request) *serve.Response {
	return &serve.Response{Status: serve.StatusOK, Data: req.Data}
}

// startGateway builds and runs a gateway over the given replica addrs.
func startGateway(t *testing.T, cfg gate.Config) *gate.Gateway {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 100 * time.Millisecond
	}
	g := gate.New(cfg)
	if err := g.Listen(); err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- g.Serve() }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := g.Shutdown(ctx); err != nil {
			t.Errorf("gateway shutdown: %v", err)
		}
		if err := <-serveDone; err != nil {
			t.Errorf("gateway serve: %v", err)
		}
	})
	return g
}

func specsOf(reps ...*fakeReplica) []gate.ReplicaSpec {
	var specs []gate.ReplicaSpec
	for _, r := range reps {
		specs = append(specs, gate.ReplicaSpec{Addr: r.addr()})
	}
	return specs
}

// TestGatewayProxiesAndTraceID checks the basic proxy path: a client
// request flows through the gateway to a replica and back, and the v2
// trace ID rides the forwarded header (trace passthrough).
func TestGatewayProxiesAndTraceID(t *testing.T) {
	rep := newFakeReplica(t, okEcho)
	g := startGateway(t, gate.Config{Replicas: specsOf(rep)})

	c, err := client.Dial(g.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const traceID = 0xDEADBEEF12345678
	ctx := soifft.WithTraceID(context.Background(), soifft.TraceID(traceID))
	data := make([]complex128, 64)
	for i := range data {
		data[i] = complex(float64(i), -float64(i))
	}
	got, err := c.TransformContext(ctx, data, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data) || got[3] != data[3] {
		t.Fatalf("echo mismatch: got %d points", len(got))
	}
	seen := rep.seen()
	if len(seen) == 0 {
		t.Fatal("replica saw no requests")
	}
	last := seen[len(seen)-1]
	if last.TraceID != uint64(traceID) {
		t.Errorf("replica saw trace ID %#x, want %#x (passthrough broken)", last.TraceID, uint64(traceID))
	}
	if last.Proto != serve.Version {
		t.Errorf("replica saw protocol v%d, want v%d", last.Proto, serve.Version)
	}
	if g.Metrics().Requests() == 0 {
		t.Error("gateway requests counter did not move")
	}
}

// primaryOf returns which of the two fake replicas the ring prefers
// for the default plan of length n (so tests can script the primary's
// behavior deterministically).
func primaryOf(t *testing.T, g *gate.Gateway, n int, reps ...*fakeReplica) (primary, other *fakeReplica) {
	t.Helper()
	addr := g.PrimaryFor(soifft.KeyOf(n))
	for i, r := range reps {
		if r.addr() == addr {
			return r, reps[(i+1)%len(reps)]
		}
	}
	t.Fatalf("primary %s is not one of the test replicas", addr)
	return nil, nil
}

// transformsSeen counts non-ping requests a fake replica handled
// (health probes ping, which is not traffic).
func transformsSeen(f *fakeReplica) int {
	n := 0
	for _, req := range f.seen() {
		if req.Op != serve.OpPing {
			n++
		}
	}
	return n
}

// TestGatewayFailoverOnDraining checks the failover contract: a replica
// answering StatusDraining is skipped to the next ring candidate, the
// request still succeeds, and the draining replica is marked so the
// next request avoids it outright.
func TestGatewayFailoverOnDraining(t *testing.T) {
	repA := newFakeReplica(t, okEcho)
	repB := newFakeReplica(t, okEcho)
	g := startGateway(t, gate.Config{
		Replicas:       specsOf(repA, repB),
		HealthInterval: time.Hour, // no periodic probes: passive signals only
	})
	const n = 32
	primary, _ := primaryOf(t, g, n, repA, repB)
	var drainingReqs atomic.Int64
	primary.setHandle(func(req *serve.Request) *serve.Response {
		if req.Op == serve.OpPing {
			return &serve.Response{Status: serve.StatusOK}
		}
		drainingReqs.Add(1)
		return &serve.Response{Status: serve.StatusDraining, RetryAfter: 5 * time.Millisecond, Msg: "draining"}
	})

	c, err := client.Dial(g.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := make([]complex128, n)
	for i := 0; i < 8; i++ {
		if _, err := c.Transform(data, nil); err != nil {
			t.Fatalf("request %d failed despite a healthy failover target: %v", i, err)
		}
	}
	// The first request hit the draining primary and failed over; the
	// markdown then keeps later requests off it entirely.
	if n := drainingReqs.Load(); n == 0 || n > 2 {
		t.Errorf("draining primary saw %d transform requests, want 1 (failover then markdown)", n)
	}
	if g.Metrics().Failovers() == 0 {
		t.Error("failovers counter did not move despite a draining primary")
	}
}

// TestGatewayFailoverOnConnKill checks transport-error failover: a
// replica that kills connections mid-request (reply never written)
// fails over to the healthy one and the request completes.
func TestGatewayFailoverOnConnKill(t *testing.T) {
	repA := newFakeReplica(t, okEcho)
	repB := newFakeReplica(t, okEcho)
	g := startGateway(t, gate.Config{
		Replicas:       specsOf(repA, repB),
		HealthInterval: time.Hour,
		AttemptTimeout: 2 * time.Second,
	})
	const n = 16
	killer, _ := primaryOf(t, g, n, repA, repB)
	killer.setHandle(func(req *serve.Request) *serve.Response { return nil })

	c, err := client.Dial(g.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := make([]complex128, n)
	for i := 0; i < 6; i++ {
		if _, err := c.Transform(data, nil); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// After downAfter consecutive transport failures the killer must be
	// marked down: from then on its request log stops growing.
	before := transformsSeen(killer)
	if before == 0 {
		t.Fatal("killer primary never saw a request; ring primary discovery is wrong")
	}
	for i := 0; i < 6; i++ {
		if _, err := c.Transform(data, nil); err != nil {
			t.Fatalf("request %d after markdown: %v", i, err)
		}
	}
	if after := transformsSeen(killer); after > before {
		t.Errorf("killed replica still receiving traffic after markdown: %d -> %d requests", before, after)
	}
	if g.Metrics().Failovers() == 0 {
		t.Error("failovers counter did not move")
	}
}

// TestGatewayOverloadedSpill checks bounded-load/backpressure spill: a
// replica answering StatusOverloaded is bypassed for one that isn't,
// without sleeping through the first pass.
func TestGatewayOverloadedSpill(t *testing.T) {
	over := newFakeReplica(t, func(req *serve.Request) *serve.Response {
		return &serve.Response{Status: serve.StatusOverloaded, RetryAfter: 10 * time.Millisecond, Msg: "queue full"}
	})
	healthy := newFakeReplica(t, okEcho)
	g := startGateway(t, gate.Config{
		Replicas:       specsOf(over, healthy),
		HealthInterval: time.Hour,
	})
	c, err := client.Dial(g.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := make([]complex128, 16)
	start := time.Now()
	if _, err := c.Transform(data, nil); err != nil {
		t.Fatalf("request failed despite a non-overloaded replica: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("spill took %v; should not sleep when a healthy replica has room", d)
	}
}

// TestGatewayAllOverloadedRelaysHint checks that when the whole tier is
// overloaded the client gets the typed rejection back with a retry
// hint, after one RetryAfter-aware backoff pass.
func TestGatewayAllOverloadedRelaysHint(t *testing.T) {
	mk := func() *fakeReplica {
		return newFakeReplica(t, func(req *serve.Request) *serve.Response {
			return &serve.Response{Status: serve.StatusOverloaded, RetryAfter: 7 * time.Millisecond, Msg: "queue full"}
		})
	}
	r1, r2 := mk(), mk()
	g := startGateway(t, gate.Config{
		Replicas:       specsOf(r1, r2),
		HealthInterval: time.Hour,
		MaxBackoff:     20 * time.Millisecond,
	})
	c, err := client.Dial(g.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Transform(make([]complex128, 16), nil)
	if err == nil {
		t.Fatal("expected a typed overloaded error from a fully overloaded tier")
	}
	wait, ok := client.IsOverloaded(err)
	if !ok {
		t.Fatalf("got %v, want an overloaded ServerError", err)
	}
	if wait != 7*time.Millisecond {
		t.Errorf("retry hint %v not relayed from replicas (want 7ms)", wait)
	}
}

// TestGatewayPingAnsweredLocally checks OpPing terminates at the
// gateway (probes stay meaningful when the tier is down).
func TestGatewayPingAnsweredLocally(t *testing.T) {
	rep := newFakeReplica(t, okEcho)
	g := startGateway(t, gate.Config{Replicas: specsOf(rep), HealthInterval: time.Hour})
	c, err := client.Dial(g.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Health probes legitimately ping the replica; the client's ping
	// must not add to that count.
	before := len(rep.seen())
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if after := len(rep.seen()); after != before {
		t.Errorf("client ping reached the replica (%d -> %d requests); should be answered by the gateway", before, after)
	}
}

// TestGatewayTenantQueueBackpressure checks admission control converts
// a flooding tenant's overflow into typed StatusOverloaded instead of
// queueing without bound.
func TestGatewayTenantQueueBackpressure(t *testing.T) {
	block := make(chan struct{})
	slow := newFakeReplica(t, func(req *serve.Request) *serve.Response {
		if req.Op == serve.OpPing {
			return &serve.Response{Status: serve.StatusOK}
		}
		<-block
		return okEcho(req)
	})
	defer close(block)
	g := startGateway(t, gate.Config{
		Replicas:       specsOf(slow),
		HealthInterval: time.Hour,
		MaxInflight:    1,
		TenantQueue:    1,
		RetryAfter:     5 * time.Millisecond,
		AttemptTimeout: 10 * time.Second,
	})

	data := make([]complex128, 8)
	// Fill the slot and the tenant queue with two stuck requests.
	for i := 0; i < 2; i++ {
		go func() {
			c, err := client.Dial(g.Addr().String())
			if err != nil {
				return
			}
			defer c.Close()
			_, _ = c.Transform(data, nil)
		}()
	}
	deadline := time.After(5 * time.Second)
	for g.Metrics().Requests() < 2 {
		select {
		case <-deadline:
			t.Fatal("stuck requests never admitted")
		case <-time.After(5 * time.Millisecond):
		}
	}

	c, err := client.Dial(g.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Transform(data, nil)
	if _, ok := client.IsOverloaded(err); !ok {
		t.Fatalf("third concurrent request got %v, want typed overloaded backpressure", err)
	}
	if g.Metrics().Rejected() == 0 {
		t.Error("tenant rejection counter did not move")
	}
}
