package gate

import (
	"context"
	"errors"
	"sync"
)

// ErrTenantOverloaded is returned when a tenant's waiting queue is full:
// the gateway converts it to a typed StatusOverloaded response with the
// retry-after hint, the same backpressure contract the replicas use.
var ErrTenantOverloaded = errors.New("gate: tenant queue full")

// admission is the gateway's per-tenant admission controller: a global
// concurrency cap shared out by round-robin fair queueing across
// tenants. A tenant that floods the gateway queues behind its own FIFO
// and, past its queue cap, gets typed backpressure — while a quiet
// tenant's next request is granted on the next free slot, not behind
// the flood. Tenants are identified by the client's remote host.
type admission struct {
	capacity int // concurrent admitted requests
	queueCap int // max waiting requests per tenant

	mu       sync.Mutex
	inflight int
	tenants  map[string]*tenantQ
	order    []string // round-robin rotation over tenants with waiters
	next     int
}

// tenantQ is one tenant's FIFO of waiters.
type tenantQ struct {
	waiters []chan struct{}
}

func newAdmission(capacity, queueCap int) *admission {
	if capacity <= 0 {
		capacity = 1024
	}
	if queueCap <= 0 {
		queueCap = 128
	}
	return &admission{
		capacity: capacity,
		queueCap: queueCap,
		tenants:  make(map[string]*tenantQ),
	}
}

// admit blocks until the request holds one of the capacity slots (or
// ctx ends, or the tenant's queue is full). The returned release func
// must be called exactly once when the request finishes.
func (a *admission) admit(ctx context.Context, tenant string) (release func(), err error) {
	a.mu.Lock()
	if a.inflight < a.capacity && len(a.order) == 0 {
		a.inflight++
		a.mu.Unlock()
		return a.release, nil
	}
	q := a.tenants[tenant]
	if q == nil {
		q = &tenantQ{}
		a.tenants[tenant] = q
	}
	if len(q.waiters) >= a.queueCap {
		a.mu.Unlock()
		return nil, ErrTenantOverloaded
	}
	ch := make(chan struct{})
	q.waiters = append(q.waiters, ch)
	if len(q.waiters) == 1 {
		a.order = append(a.order, tenant)
	}
	a.mu.Unlock()

	select {
	case <-ch:
		return a.release, nil
	case <-ctx.Done():
		a.mu.Lock()
		// The grant may have raced the cancellation: if ch was already
		// granted, the slot is ours to give back via release.
		select {
		case <-ch:
			a.mu.Unlock()
			a.release()
			return nil, ctx.Err()
		default:
		}
		a.removeWaiter(tenant, ch)
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// release frees one slot and grants it to the next waiter, rotating
// round-robin across tenants so no tenant's backlog starves the rest.
func (a *admission) release() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inflight--
	a.grantLocked()
}

// grantLocked hands free slots to waiters in round-robin tenant order.
func (a *admission) grantLocked() {
	for a.inflight < a.capacity && len(a.order) > 0 {
		if a.next >= len(a.order) {
			a.next = 0
		}
		tenant := a.order[a.next]
		q := a.tenants[tenant]
		if q == nil || len(q.waiters) == 0 {
			a.order = append(a.order[:a.next], a.order[a.next+1:]...)
			continue
		}
		ch := q.waiters[0]
		q.waiters = q.waiters[1:]
		if len(q.waiters) == 0 {
			delete(a.tenants, tenant)
			a.order = append(a.order[:a.next], a.order[a.next+1:]...)
		} else {
			a.next++
		}
		a.inflight++
		close(ch)
	}
	if len(a.order) == 0 {
		a.next = 0
	}
}

// removeWaiter unlinks a cancelled waiter. Callers hold a.mu.
func (a *admission) removeWaiter(tenant string, ch chan struct{}) {
	q := a.tenants[tenant]
	if q == nil {
		return
	}
	for i, w := range q.waiters {
		if w == ch {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			break
		}
	}
	if len(q.waiters) == 0 {
		delete(a.tenants, tenant)
		for i, t := range a.order {
			if t == tenant {
				a.order = append(a.order[:i], a.order[i+1:]...)
				if a.next > i {
					a.next--
				}
				break
			}
		}
	}
}

// queued reports the number of waiting requests (for /debug/ring).
func (a *admission) queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, q := range a.tenants {
		n += len(q.waiters)
	}
	return n
}
