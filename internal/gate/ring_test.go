package gate

import (
	"fmt"
	"testing"
)

// TestRingDistribution checks that vnode hashing spreads many keys
// roughly evenly over replicas (no replica under half or over double
// the fair share across 3000 keys).
func TestRingDistribution(t *testing.T) {
	replicas := []string{"a:1", "b:1", "c:1", "d:1"}
	r := newRing(replicas, 64)
	counts := map[string]int{}
	const keys = 3000
	for i := 0; i < keys; i++ {
		c := r.candidates(fmt.Sprintf("n=%d p=8 mu=5 nu=4 b=72 win=auto", 1024+i), 1)
		if len(c) != 1 {
			t.Fatalf("candidates returned %d replicas, want 1", len(c))
		}
		counts[c[0]]++
	}
	fair := keys / len(replicas)
	for _, rep := range replicas {
		if counts[rep] < fair/2 || counts[rep] > fair*2 {
			t.Errorf("replica %s owns %d of %d keys; fair share is %d", rep, counts[rep], keys, fair)
		}
	}
}

// TestRingStability checks the consistent-hashing contract: removing
// one replica only remaps that replica's keys, so every other replica
// keeps its warm plans.
func TestRingStability(t *testing.T) {
	all := []string{"a:1", "b:1", "c:1", "d:1"}
	full := newRing(all, 64)
	reduced := newRing(all[:3], 64) // "d:1" removed

	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("n=%d p=4 mu=5 nu=4 b=32 win=auto", i)
		before := full.candidates(key, 1)[0]
		after := reduced.candidates(key, 1)[0]
		if before == "d:1" {
			continue // its keys must move somewhere
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the removed replica changed owner; consistent hashing should move none", moved)
	}
}

// TestRingCandidatesDistinct checks the failover order lists each
// replica at most once and starts with the primary.
func TestRingCandidatesDistinct(t *testing.T) {
	replicas := []string{"a:1", "b:1", "c:1"}
	r := newRing(replicas, 32)
	c := r.candidates("some-plan-key", 3)
	if len(c) != 3 {
		t.Fatalf("got %d candidates, want 3", len(c))
	}
	seen := map[string]bool{}
	for _, rep := range c {
		if seen[rep] {
			t.Errorf("replica %s appears twice in candidate order %v", rep, c)
		}
		seen[rep] = true
	}
	if first := r.candidates("some-plan-key", 1); first[0] != c[0] {
		t.Errorf("primary differs between calls: %s vs %s", first[0], c[0])
	}
}

// TestRingEmpty checks the degenerate cases return nothing rather than
// panicking.
func TestRingEmpty(t *testing.T) {
	r := newRing(nil, 16)
	if c := r.candidates("key", 2); c != nil {
		t.Errorf("empty ring returned candidates %v", c)
	}
	r2 := newRing([]string{"a:1"}, 16)
	if c := r2.candidates("key", 0); c != nil {
		t.Errorf("max=0 returned candidates %v", c)
	}
}
