package fft

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
)

// bluestein implements the chirp-z transform: an arbitrary-length DFT
// expressed as a cyclic convolution, evaluated with power-of-two FFTs.
// It serves lengths whose factorization contains a prime > maxSmallPrime.
type bluestein struct {
	n     int
	m     int          // power-of-two convolution length, m >= 2n-1
	w     []complex128 // chirp: w[j] = exp(-i*pi*j*j/n)
	bhat  []complex128 // forward FFT of the chirp filter
	inner *Plan        // power-of-two plan of length m
	pool  sync.Pool    // scratch of length m
}

func newBluestein(n int) (*bluestein, error) {
	m := 1
	for m < 2*n-1 {
		m *= 2
	}
	inner, err := NewPlan(m)
	if err != nil {
		return nil, fmt.Errorf("fft: bluestein inner plan: %w", err)
	}
	b := &bluestein{n: n, m: m, inner: inner}
	b.pool.New = func() any { buf := make([]complex128, m); return &buf }

	b.w = make([]complex128, n)
	for j := 0; j < n; j++ {
		// j*j mod 2n keeps the angle argument small for large n.
		jj := (int64(j) * int64(j)) % int64(2*n)
		ang := -math.Pi * float64(jj) / float64(n)
		b.w[j] = cmplx.Exp(complex(0, ang))
	}

	filt := make([]complex128, m)
	filt[0] = cmplx.Conj(b.w[0])
	for j := 1; j < n; j++ {
		c := cmplx.Conj(b.w[j])
		filt[j] = c
		filt[m-j] = c
	}
	b.bhat = make([]complex128, m)
	inner.Forward(b.bhat, filt)
	return b, nil
}

func (b *bluestein) transform(dst, src []complex128) {
	ap := b.pool.Get().(*[]complex128)
	tp := b.pool.Get().(*[]complex128)
	defer b.pool.Put(ap)
	defer b.pool.Put(tp)
	a, t := *ap, *tp

	for j := 0; j < b.n; j++ {
		a[j] = src[j] * b.w[j]
	}
	for j := b.n; j < b.m; j++ {
		a[j] = 0
	}
	b.inner.Forward(t, a)
	for j := range t {
		t[j] *= b.bhat[j]
	}
	b.inner.Inverse(a, t)
	for k := 0; k < b.n; k++ {
		dst[k] = a[k] * b.w[k]
	}
}
