package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randomVec(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return v
}

func maxAbsErr(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func relErr(got, want []complex128) float64 {
	var num, den float64
	for i := range got {
		d := got[i] - want[i]
		num += real(d)*real(d) + imag(d)*imag(d)
		den += real(want[i])*real(want[i]) + imag(want[i])*imag(want[i])
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// Lengths chosen to exercise every kernel: powers of two (radix 4/2),
// 3/5/7-smooth sizes, generic small primes, and Bluestein primes.
var testLengths = []int{
	1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16, 17, 20, 24, 25,
	27, 30, 31, 32, 35, 36, 48, 49, 60, 64, 81, 100, 101, 121, 125, 128,
	135, 144, 169, 210, 211, 240, 243, 256, 257, 343, 360, 512, 625,
	1000, 1009, 1024, 1280, 2048, 2310, 4096,
}

func TestForwardMatchesDirect(t *testing.T) {
	for _, n := range testLengths {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatalf("NewPlan(%d): %v", n, err)
		}
		src := randomVec(n, int64(n))
		want := make([]complex128, n)
		Direct(want, src)
		got := make([]complex128, n)
		p.Forward(got, src)
		tol := 1e-11 * math.Sqrt(float64(n))
		if e := relErr(got, want); e > tol {
			t.Errorf("n=%d: relative error %.3e > %.3e", n, e, tol)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, n := range testLengths {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatalf("NewPlan(%d): %v", n, err)
		}
		src := randomVec(n, int64(3*n+1))
		freq := make([]complex128, n)
		back := make([]complex128, n)
		p.Forward(freq, src)
		p.Inverse(back, freq)
		if e := maxAbsErr(back, src); e > 1e-10 {
			t.Errorf("n=%d: round-trip error %.3e", n, e)
		}
	}
}

func TestForwardInPlace(t *testing.T) {
	for _, n := range []int{8, 12, 30, 101, 128, 625} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		src := randomVec(n, 7)
		want := make([]complex128, n)
		p.Forward(want, src)
		buf := append([]complex128(nil), src...)
		p.Forward(buf, buf)
		if e := maxAbsErr(buf, want); e > 1e-12 {
			t.Errorf("n=%d: in-place differs from out-of-place by %.3e", n, e)
		}
	}
}

func TestInverseInPlace(t *testing.T) {
	n := 96
	p, _ := NewPlan(n)
	src := randomVec(n, 8)
	want := make([]complex128, n)
	p.Inverse(want, src)
	buf := append([]complex128(nil), src...)
	p.Inverse(buf, buf)
	if e := maxAbsErr(buf, want); e > 1e-12 {
		t.Errorf("in-place inverse differs by %.3e", e)
	}
}

func TestKnownValues(t *testing.T) {
	// DFT of an impulse is all ones.
	p, _ := NewPlan(16)
	x := make([]complex128, 16)
	x[0] = 1
	y := make([]complex128, 16)
	p.Forward(y, x)
	for k, v := range y {
		if cmplx.Abs(v-1) > 1e-14 {
			t.Fatalf("impulse DFT[%d] = %v, want 1", k, v)
		}
	}
	// DFT of exp(+i*2*pi*j*k0/n) is n at bin k0, 0 elsewhere.
	const k0 = 5
	for j := range x {
		x[j] = cmplx.Exp(complex(0, 2*math.Pi*float64(j*k0)/16))
	}
	p.Forward(y, x)
	for k, v := range y {
		want := complex128(0)
		if k == k0 {
			want = 16
		}
		if cmplx.Abs(v-want) > 1e-12 {
			t.Fatalf("tone DFT[%d] = %v, want %v", k, v, want)
		}
	}
}

func TestDCComponent(t *testing.T) {
	for _, n := range []int{4, 15, 49, 101, 210} {
		p, _ := NewPlan(n)
		src := randomVec(n, int64(n)*11)
		var sum complex128
		for _, v := range src {
			sum += v
		}
		y := make([]complex128, n)
		p.Forward(y, src)
		if cmplx.Abs(y[0]-sum) > 1e-11*float64(n) {
			t.Errorf("n=%d: DC bin %v != element sum %v", n, y[0], sum)
		}
	}
}

func TestParseval(t *testing.T) {
	for _, n := range []int{32, 60, 101, 343} {
		p, _ := NewPlan(n)
		src := randomVec(n, int64(n)+100)
		y := make([]complex128, n)
		p.Forward(y, src)
		var et, ef float64
		for i := range src {
			et += real(src[i])*real(src[i]) + imag(src[i])*imag(src[i])
			ef += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
		}
		ef /= float64(n)
		if math.Abs(et-ef) > 1e-9*et {
			t.Errorf("n=%d: Parseval violated: time %.15g freq %.15g", n, et, ef)
		}
	}
}

func TestNewPlanErrors(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d): expected error", n)
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	p, _ := NewPlan(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	p.Forward(make([]complex128, 4), make([]complex128, 8))
}

func TestFactorize(t *testing.T) {
	cases := []struct {
		n    int
		rem  int
		prod int
	}{
		{1, 1, 1}, {2, 1, 2}, {4, 1, 4}, {8, 1, 8}, {360, 1, 360},
		{37 * 8, 37, 8}, {1009, 1009, 1}, {31 * 31, 1, 961},
	}
	for _, c := range cases {
		radices, rem := factorize(c.n)
		prod := 1
		for _, r := range radices {
			prod *= r
		}
		if rem != c.rem || prod != c.prod {
			t.Errorf("factorize(%d) = %v rem %d, want prod %d rem %d",
				c.n, radices, rem, c.prod, c.rem)
		}
		if prod*rem != c.n {
			t.Errorf("factorize(%d): prod*rem = %d", c.n, prod*rem)
		}
	}
}

func TestPlanConcurrentUse(t *testing.T) {
	p, _ := NewPlan(256)
	src := randomVec(256, 42)
	want := make([]complex128, 256)
	p.Forward(want, src)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			got := make([]complex128, 256)
			for i := 0; i < 50; i++ {
				p.Forward(got, src)
			}
			if maxAbsErr(got, want) > 1e-13 {
				done <- errMismatch
				return
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent transform mismatch" }
