package fft

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func randomReal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

func TestRealForwardMatchesComplex(t *testing.T) {
	for _, n := range []int{2, 4, 6, 8, 10, 16, 30, 64, 100, 128, 1024} {
		rp, err := NewRealPlan(n)
		if err != nil {
			t.Fatalf("NewRealPlan(%d): %v", n, err)
		}
		src := randomReal(n, int64(n))
		// Reference: complex transform of the real-extended input.
		csrc := make([]complex128, n)
		for i, v := range src {
			csrc[i] = complex(v, 0)
		}
		want := make([]complex128, n)
		Direct(want, csrc)

		got := make([]complex128, n/2+1)
		rp.Forward(got, src)
		for k := 0; k <= n/2; k++ {
			if d := cmplx.Abs(got[k] - want[k]); d > 1e-10 {
				t.Errorf("n=%d: bin %d differs by %.3e", n, k, d)
			}
		}
	}
}

func TestRealRoundTrip(t *testing.T) {
	for _, n := range []int{2, 8, 30, 128, 1000} {
		rp, err := NewRealPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		src := randomReal(n, int64(n)+5)
		spec := make([]complex128, n/2+1)
		back := make([]float64, n)
		rp.Forward(spec, src)
		rp.Inverse(back, spec)
		for i := range src {
			if d := back[i] - src[i]; d > 1e-11 || d < -1e-11 {
				t.Errorf("n=%d: element %d off by %.3e", n, i, d)
				break
			}
		}
	}
}

func TestRealPlanErrors(t *testing.T) {
	for _, n := range []int{0, 1, 3, 7, -4} {
		if _, err := NewRealPlan(n); err == nil {
			t.Errorf("NewRealPlan(%d): expected error", n)
		}
	}
	rp, _ := NewRealPlan(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	rp.Forward(make([]complex128, 3), make([]float64, 8))
}

func TestRealSymmetryProperties(t *testing.T) {
	// The DC and Nyquist bins of a real signal are real.
	const n = 64
	rp, _ := NewRealPlan(n)
	src := randomReal(n, 77)
	spec := make([]complex128, n/2+1)
	rp.Forward(spec, src)
	if imag(spec[0]) != 0 {
		t.Errorf("DC bin has imaginary part %g", imag(spec[0]))
	}
	if imag(spec[n/2]) != 0 {
		t.Errorf("Nyquist bin has imaginary part %g", imag(spec[n/2]))
	}
}
