package fft

import "fmt"

// Plan2D computes 2-D DFTs of row-major rows×cols matrices by the
// row-column method: transform the rows, transpose, transform the
// (former) columns, transpose back. It exists both as a library feature
// and as the serial seed of the paper's "generalize to higher-dimensional
// FFTs" future-work direction.
type Plan2D struct {
	rows, cols int
	rowPlan    *Plan
	colPlan    *Plan
}

// NewPlan2D creates a plan for rows×cols transforms.
func NewPlan2D(rows, cols int) (*Plan2D, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("fft: 2-D dims must be positive, got %dx%d", rows, cols)
	}
	rp, err := NewPlan(cols) // transforms along a row have length cols
	if err != nil {
		return nil, err
	}
	cp, err := NewPlan(rows)
	if err != nil {
		return nil, err
	}
	return &Plan2D{rows: rows, cols: cols, rowPlan: rp, colPlan: cp}, nil
}

// Rows returns the row count.
func (p *Plan2D) Rows() int { return p.rows }

// Cols returns the column count.
func (p *Plan2D) Cols() int { return p.cols }

// Forward computes dst = DFT2(src); dst and src have rows*cols elements
// in row-major order and may be the same slice.
func (p *Plan2D) Forward(dst, src []complex128) {
	p.apply(dst, src, false)
}

// Inverse computes the inverse 2-D DFT scaled by 1/(rows·cols).
func (p *Plan2D) Inverse(dst, src []complex128) {
	p.apply(dst, src, true)
}

func (p *Plan2D) apply(dst, src []complex128, inverse bool) {
	n := p.rows * p.cols
	if len(dst) != n || len(src) != n {
		panic(fmt.Sprintf("fft: 2-D plan %dx%d needs %d elements, got dst %d src %d",
			p.rows, p.cols, n, len(dst), len(src)))
	}
	row := func(pl *Plan, d, s []complex128) {
		if inverse {
			pl.Inverse(d, s)
		} else {
			pl.Forward(d, s)
		}
	}
	// Rows.
	tmp := make([]complex128, n)
	for r := 0; r < p.rows; r++ {
		row(p.rowPlan, tmp[r*p.cols:(r+1)*p.cols], src[r*p.cols:(r+1)*p.cols])
	}
	// Transpose, transform, transpose back.
	tr := make([]complex128, n)
	transpose2D(tr, tmp, p.rows, p.cols)
	for c := 0; c < p.cols; c++ {
		row(p.colPlan, tr[c*p.rows:(c+1)*p.rows], tr[c*p.rows:(c+1)*p.rows])
	}
	transpose2D(dst, tr, p.cols, p.rows)
}

// transpose2D writes dst[c*rows+r] = src[r*cols+c] with cache blocking.
func transpose2D(dst, src []complex128, rows, cols int) {
	const blk = 64
	for rb := 0; rb < rows; rb += blk {
		rEnd := rb + blk
		if rEnd > rows {
			rEnd = rows
		}
		for cb := 0; cb < cols; cb += blk {
			cEnd := cb + blk
			if cEnd > cols {
				cEnd = cols
			}
			for r := rb; r < rEnd; r++ {
				row := src[r*cols:]
				for c := cb; c < cEnd; c++ {
					dst[c*rows+r] = row[c]
				}
			}
		}
	}
}
