package fft

import (
	"math"
	"testing"
)

// TestKernelEquivalenceRadix2Reference pins the production power-of-two
// path — tiny-size codelets, the stride-1 first-pass kernels and the
// radix-4/8 passes — to a pure radix-2 decomposition of the same length.
// The radix-2 kernel is the simplest possible butterfly, so agreement to
// machine precision across sizes certifies every faster kernel.
func TestKernelEquivalenceRadix2Reference(t *testing.T) {
	for n := 2; n <= 1<<14; n *= 2 {
		src := randomVec(n, int64(n)+17)

		// Reference: pure radix-2 Stockham passes.
		radices := make([]int, 0, 14)
		for m := n; m > 1; m /= 2 {
			radices = append(radices, 2)
		}
		want := runStages(n, radices, src)

		// Production path (codelet for n ≤ 8, radix-8/4 otherwise).
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]complex128, n)
		p.Forward(got, src)

		// Machine precision: both are O(log n)-depth summations of the
		// same data, so errors stay within a few ulps of each other.
		tol := 1e-13 * math.Sqrt(float64(n))
		if e := relErr(got, want); e > tol {
			t.Errorf("n=%d: production path differs from radix-2 reference by %.3e (tol %.3e)", n, e, tol)
		}
	}
}

// TestCodeletsMatchDirectDFT checks each unrolled codelet against the
// O(n²) direct DFT, including the in-place (dst == src) contract.
func TestCodeletsMatchDirectDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		c := codeletFor(n)
		if c == nil {
			t.Fatalf("n=%d: expected a codelet", n)
		}
		src := randomVec(n, int64(n)*3+1)
		want := make([]complex128, n)
		Direct(want, src)

		got := make([]complex128, n)
		c(got, src)
		if e := relErr(got, want); e > 1e-14 {
			t.Errorf("n=%d: codelet differs from direct DFT by %.3e", n, e)
		}

		inPlace := append([]complex128(nil), src...)
		c(inPlace, inPlace)
		for i := range got {
			if got[i] != inPlace[i] {
				t.Errorf("n=%d: in-place codelet differs at %d", n, i)
			}
		}
	}
}

// TestStride1KernelsBitIdenticalToGeneral verifies the s==1 first-pass
// specializations produce bit-identical output to the general-stride
// kernels they replace: same operations in the same order, so not even
// the last ulp may move.
func TestStride1KernelsBitIdenticalToGeneral(t *testing.T) {
	cases := []struct {
		radix int
		gen   func(*stage, []complex128, []complex128, int, int)
		spec  func(*stage, []complex128, []complex128, int, int)
	}{
		{2, stageRadix2, stageRadix2S1},
		{4, stageRadix4, stageRadix4S1},
		{8, stageRadix8, stageRadix8S1},
	}
	const m = 96
	for _, tc := range cases {
		n := tc.radix * m
		st := buildStages(n, []int{tc.radix, m})[0]
		if st.s != 1 {
			t.Fatalf("radix %d: first stage stride %d, want 1", tc.radix, st.s)
		}
		src := randomVec(n, int64(tc.radix)*7+5)
		a := make([]complex128, n)
		b := make([]complex128, n)
		tc.gen(&st, src, a, 0, st.m)
		tc.spec(&st, src, b, 0, st.m)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("radix %d: s==1 kernel differs at %d: %v vs %v", tc.radix, i, a[i], b[i])
			}
		}
		// Split ranges must agree too (the parallel-path invariant).
		c := make([]complex128, n)
		tc.spec(&st, src, c, 0, st.m/3)
		tc.spec(&st, src, c, st.m/3, st.m)
		for i := range a {
			if a[i] != c[i] {
				t.Fatalf("radix %d: split s==1 kernel differs at %d", tc.radix, i)
			}
		}
	}
}
