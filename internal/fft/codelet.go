package fft

// Codelets: fully unrolled DFTs for the tiny lengths that sit on the SOI
// hot path. The I⊗F_P stage of the SOI pipeline applies one P-point DFT
// per convolution block — for N = 2^20 at P = 8 that is 160k+ plan
// invocations per transform — so these sizes bypass the generic Stockham
// machinery (stage dispatch, twiddle loads that are all 1 for a
// single-stage plan, scratch ping-pong) entirely. Each codelet reads all
// of src into locals before writing dst, so dst == src (in-place) is
// safe without a scratch copy.

// codeletFunc is a direct small-n DFT: dst = DFT_n(src).
type codeletFunc func(dst, src []complex128)

// codeletFor returns the unrolled kernel for n, or nil when n has none.
func codeletFor(n int) codeletFunc {
	switch n {
	case 1:
		return codelet1
	case 2:
		return codelet2
	case 4:
		return codelet4
	case 8:
		return codelet8
	}
	return nil
}

func codelet1(dst, src []complex128) { dst[0] = src[0] }

func codelet2(dst, src []complex128) {
	a, b := src[0], src[1]
	dst[0] = a + b
	dst[1] = a - b
}

func codelet4(dst, src []complex128) {
	a, b, c, d := src[0], src[1], src[2], src[3]
	t0 := a + c
	t1 := a - c
	t2 := b + d
	bd := b - d
	t3 := complex(imag(bd), -real(bd)) // -i·(b-d), forward sign
	dst[0] = t0 + t2
	dst[1] = t1 + t3
	dst[2] = t0 - t2
	dst[3] = t1 - t3
}

func codelet8(dst, src []complex128) {
	const rt = 0.7071067811865476 // √2/2
	a0, a1, a2, a3 := src[0], src[1], src[2], src[3]
	a4, a5, a6, a7 := src[4], src[5], src[6], src[7]
	// Even half: radix-4 on a_t + a_{t+4}.
	b0, b1, b2, b3 := a0+a4, a1+a5, a2+a6, a3+a7
	c0, c1 := b0+b2, b0-b2
	c2 := b1 + b3
	d := b1 - b3
	c3 := complex(imag(d), -real(d)) // -i·(b1-b3)
	// Odd half: radix-4 on (a_t − a_{t+4})·ω8^t.
	d0 := a0 - a4
	t1 := a1 - a5
	d1 := complex(rt*(real(t1)+imag(t1)), rt*(imag(t1)-real(t1))) // ·ω8
	t2 := a2 - a6
	d2 := complex(imag(t2), -real(t2)) // ·(−i)
	t3 := a3 - a7
	d3 := complex(rt*(imag(t3)-real(t3)), -rt*(real(t3)+imag(t3))) // ·ω8³
	e0, e1 := d0+d2, d0-d2
	e2 := d1 + d3
	ed := d1 - d3
	e3 := complex(imag(ed), -real(ed))
	dst[0] = c0 + c2
	dst[1] = e0 + e2
	dst[2] = c1 + c3
	dst[3] = e1 + e3
	dst[4] = c0 - c2
	dst[5] = e0 - e2
	dst[6] = c1 - c3
	dst[7] = e1 - e3
}
