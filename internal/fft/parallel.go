package fft

import (
	"runtime"
	"sync"
)

// ForwardParallel computes the forward transform with each Stockham pass
// split across workers goroutines (GOMAXPROCS when workers <= 0). Every
// pass is data-parallel over its sub-block index and each range writes
// disjoint cells, so results are bit-identical to Forward. Useful for a
// single large transform; for many independent transforms prefer
// ParallelBatch, which parallelizes at cheaper granularity.
func (p *Plan) ForwardParallel(dst, src []complex128, workers int) {
	p.checkLen(dst, src)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if p.blue != nil || len(p.stages) == 0 || workers == 1 {
		p.Forward(dst, src)
		return
	}
	if sameSlice(dst, src) {
		tmp := p.getScratch()
		copy(*tmp, src)
		p.runParallel(dst, *tmp, workers)
		p.putScratch(tmp)
		return
	}
	p.runParallel(dst, src, workers)
}

// InverseParallel is ForwardParallel's inverse counterpart (1/n scaled).
func (p *Plan) InverseParallel(dst, src []complex128, workers int) {
	p.checkLen(dst, src)
	tmp := p.getScratch()
	for i, v := range src {
		(*tmp)[i] = complex(real(v), -imag(v))
	}
	p.ForwardParallel(dst, *tmp, workers)
	p.putScratch(tmp)
	inv := 1 / float64(p.n)
	for i, v := range dst {
		dst[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}

func (p *Plan) runParallel(dst, src []complex128, workers int) {
	k := len(p.stages)
	if k == 1 {
		parallelStage(&p.stages[0], src, dst, workers)
		return
	}
	sp := p.getScratch()
	defer p.putScratch(sp)
	scratch := *sp
	var x, y []complex128
	if k%2 == 1 {
		y = dst
	} else {
		y = scratch
	}
	x = src
	for i := 0; i < k; i++ {
		parallelStage(&p.stages[i], x, y, workers)
		if i == 0 {
			if k%2 == 1 {
				x, y = dst, scratch
			} else {
				x, y = scratch, dst
			}
		} else {
			x, y = y, x
		}
	}
}

// parallelStage splits the pass's sub-block loop into contiguous chunks.
// Late passes have few, huge sub-blocks; early ones have many. Chunks
// below a minimum width fall back to a serial pass to avoid goroutine
// overhead dominating.
func parallelStage(st *stage, x, y []complex128, workers int) {
	m := st.m
	if workers > m {
		workers = m
	}
	// Each sub-block costs ~radix·s cell updates; skip parallelism when
	// the whole stage is small.
	if workers <= 1 || m*st.s*st.radix < 1<<14 {
		applyStage(st, x, y)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * m / workers
		hi := (w + 1) * m / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			applyStageRange(st, x, y, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
