package fft

import (
	"testing"
)

// runStages executes a hand-chosen radix decomposition through the same
// ping-pong the production path uses, so different factorizations of the
// same length can be cross-checked.
func runStages(n int, radices []int, src []complex128) []complex128 {
	prod := 1
	for _, r := range radices {
		prod *= r
	}
	if prod != n {
		panic("radices do not factor n")
	}
	stages := buildStages(n, radices)
	dst := make([]complex128, n)
	scratch := make([]complex128, n)
	k := len(stages)
	if k == 0 {
		copy(dst, src)
		return dst
	}
	var x, y []complex128
	if k%2 == 1 {
		y = dst
	} else {
		y = scratch
	}
	x = src
	for i := 0; i < k; i++ {
		applyStage(&stages[i], x, y)
		if i == 0 {
			if k%2 == 1 {
				x, y = dst, scratch
			} else {
				x, y = scratch, dst
			}
		} else {
			x, y = y, x
		}
	}
	return dst
}

// TestRadixDecompositionsAgree runs several factorizations of the same
// length — pure radix-2, radix-4, radix-8, mixed, and composite radices
// through the generic kernel — and checks all against the direct DFT.
func TestRadixDecompositionsAgree(t *testing.T) {
	cases := map[int][][]int{
		64: {
			{2, 2, 2, 2, 2, 2},
			{4, 4, 4},
			{8, 8},
			{8, 4, 2},
			{16, 4}, // composite radix 16 exercises the generic kernel
		},
		360: {
			{8, 45},
			{2, 4, 45},
			{5, 8, 9},
			{3, 3, 5, 8},
			{6, 6, 10},
		},
		625: {
			{5, 5, 5, 5},
			{25, 25},
		},
	}
	for n, decomps := range cases {
		src := randomVec(n, int64(n))
		want := make([]complex128, n)
		Direct(want, src)
		for _, radices := range decomps {
			got := runStages(n, radices, src)
			if e := relErr(got, want); e > 1e-10 {
				t.Errorf("n=%d radices %v: rel err %.3e", n, radices, e)
			}
		}
	}
}

// TestStageRangeSplitMatchesWhole verifies that applying a stage in two
// chunks reproduces the single-pass result exactly (the invariant the
// parallel path relies on).
func TestStageRangeSplitMatchesWhole(t *testing.T) {
	const n = 480
	stages := buildStages(n, []int{4, 4, 10, 3})
	src := randomVec(n, 9)
	for i := range stages {
		st := &stages[i]
		whole := make([]complex128, n)
		applyStage(st, src, whole)
		split := make([]complex128, n)
		mid := st.m / 3
		applyStageRange(st, src, split, 0, mid)
		applyStageRange(st, src, split, mid, st.m)
		for j := range whole {
			if whole[j] != split[j] {
				t.Fatalf("stage %d (radix %d): split differs at %d", i, st.radix, j)
			}
		}
	}
}
