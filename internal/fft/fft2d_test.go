package fft

import (
	"math"
	"math/cmplx"
	"testing"
)

// direct2D is the O((rows·cols)²) 2-D DFT reference.
func direct2D(dst, src []complex128, rows, cols int) {
	for kr := 0; kr < rows; kr++ {
		for kc := 0; kc < cols; kc++ {
			var acc complex128
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					ang := -2 * math.Pi * (float64(r*kr)/float64(rows) + float64(c*kc)/float64(cols))
					acc += src[r*cols+c] * cmplx.Exp(complex(0, ang))
				}
			}
			dst[kr*cols+kc] = acc
		}
	}
}

func TestPlan2DMatchesDirect(t *testing.T) {
	cases := []struct{ rows, cols int }{
		{1, 1}, {2, 2}, {4, 8}, {8, 4}, {3, 5}, {16, 16}, {7, 12},
	}
	for _, c := range cases {
		p, err := NewPlan2D(c.rows, c.cols)
		if err != nil {
			t.Fatalf("NewPlan2D(%d,%d): %v", c.rows, c.cols, err)
		}
		n := c.rows * c.cols
		src := randomVec(n, int64(n))
		want := make([]complex128, n)
		direct2D(want, src, c.rows, c.cols)
		got := make([]complex128, n)
		p.Forward(got, src)
		if e := relErr(got, want); e > 1e-10 {
			t.Errorf("%dx%d: rel error %.3e", c.rows, c.cols, e)
		}
	}
}

func TestPlan2DRoundTrip(t *testing.T) {
	p, err := NewPlan2D(12, 20)
	if err != nil {
		t.Fatal(err)
	}
	src := randomVec(240, 3)
	freq := make([]complex128, 240)
	back := make([]complex128, 240)
	p.Forward(freq, src)
	p.Inverse(back, freq)
	if e := maxAbsErr(back, src); e > 1e-11 {
		t.Errorf("round trip error %.3e", e)
	}
}

func TestPlan2DInPlace(t *testing.T) {
	p, _ := NewPlan2D(8, 8)
	src := randomVec(64, 4)
	want := make([]complex128, 64)
	p.Forward(want, src)
	buf := append([]complex128(nil), src...)
	p.Forward(buf, buf)
	if e := maxAbsErr(buf, want); e > 1e-12 {
		t.Errorf("in-place 2-D differs by %.3e", e)
	}
}

func TestPlan2DImpulse(t *testing.T) {
	p, _ := NewPlan2D(4, 6)
	src := make([]complex128, 24)
	src[0] = 1
	got := make([]complex128, 24)
	p.Forward(got, src)
	for i, v := range got {
		if cmplx.Abs(v-1) > 1e-13 {
			t.Fatalf("impulse 2-D DFT[%d] = %v, want 1", i, v)
		}
	}
}

func TestPlan2DErrors(t *testing.T) {
	if _, err := NewPlan2D(0, 4); err == nil {
		t.Error("expected dims error")
	}
	p, _ := NewPlan2D(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong length")
		}
	}()
	p.Forward(make([]complex128, 3), make([]complex128, 4))
}

func TestTranspose2D(t *testing.T) {
	const rows, cols = 5, 9
	src := randomVec(rows*cols, 7)
	dst := make([]complex128, rows*cols)
	transpose2D(dst, src, rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if dst[c*rows+r] != src[r*cols+c] {
				t.Fatalf("transpose mismatch at (%d,%d)", r, c)
			}
		}
	}
}
