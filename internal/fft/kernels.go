package fft

import "math"

// The stage kernels implement one decimation-in-frequency Stockham pass.
// Input element (lane q, block p, component t) is read from
// x[q + s*(p + m*t)] and output (lane q, block p, frequency u) is written
// to y[q + s*(radix*p + u)], multiplied by the stage twiddle w^(p*u).

func stageRadix2(st *stage, x, y []complex128, lo, hi int) {
	m, s := st.m, st.s
	for p := lo; p < hi; p++ {
		w1 := st.tw[p]
		x0 := x[s*p:]
		x1 := x[s*(p+m):]
		yp := y[s*2*p:]
		for q := 0; q < s; q++ {
			a, b := x0[q], x1[q]
			yp[q] = a + b
			yp[q+s] = (a - b) * w1
		}
	}
}

func stageRadix3(st *stage, x, y []complex128, lo, hi int) {
	m, s := st.m, st.s
	const half = 0.5
	sin3 := math.Sqrt(3) / 2
	for p := lo; p < hi; p++ {
		w1 := st.tw[p*2]
		w2 := st.tw[p*2+1]
		x0 := x[s*p:]
		x1 := x[s*(p+m):]
		x2 := x[s*(p+2*m):]
		yp := y[s*3*p:]
		for q := 0; q < s; q++ {
			a, b, c := x0[q], x1[q], x2[q]
			t1 := b + c
			t2 := a - complex(half, 0)*t1
			// t3 = -i*sin3*(b-c) for the forward (negative exponent) sign.
			d := b - c
			t3 := complex(sin3*imag(d), -sin3*real(d))
			yp[q] = a + t1
			yp[q+s] = (t2 + t3) * w1
			yp[q+2*s] = (t2 - t3) * w2
		}
	}
}

func stageRadix4(st *stage, x, y []complex128, lo, hi int) {
	m, s := st.m, st.s
	for p := lo; p < hi; p++ {
		w1 := st.tw[p*3]
		w2 := st.tw[p*3+1]
		w3 := st.tw[p*3+2]
		x0 := x[s*p:]
		x1 := x[s*(p+m):]
		x2 := x[s*(p+2*m):]
		x3 := x[s*(p+3*m):]
		yp := y[s*4*p:]
		for q := 0; q < s; q++ {
			a, b, c, d := x0[q], x1[q], x2[q], x3[q]
			t0 := a + c
			t1 := a - c
			t2 := b + d
			// t3 = -i*(b-d) for the forward sign.
			bd := b - d
			t3 := complex(imag(bd), -real(bd))
			yp[q] = t0 + t2
			yp[q+s] = (t1 + t3) * w1
			yp[q+2*s] = (t0 - t2) * w2
			yp[q+3*s] = (t1 - t3) * w3
		}
	}
}

func stageRadix5(st *stage, x, y []complex128, lo, hi int) {
	m, s := st.m, st.s
	// Real and imaginary parts of exp(-2*pi*i*k/5), k = 1, 2.
	c1 := math.Cos(2 * math.Pi / 5)
	s1 := math.Sin(2 * math.Pi / 5)
	c2 := math.Cos(4 * math.Pi / 5)
	s2 := math.Sin(4 * math.Pi / 5)
	for p := lo; p < hi; p++ {
		w1 := st.tw[p*4]
		w2 := st.tw[p*4+1]
		w3 := st.tw[p*4+2]
		w4 := st.tw[p*4+3]
		x0 := x[s*p:]
		x1 := x[s*(p+m):]
		x2 := x[s*(p+2*m):]
		x3 := x[s*(p+3*m):]
		x4 := x[s*(p+4*m):]
		yp := y[s*5*p:]
		for q := 0; q < s; q++ {
			a0, a1, a2, a3, a4 := x0[q], x1[q], x2[q], x3[q], x4[q]
			t1 := a1 + a4
			t2 := a2 + a3
			t3 := a1 - a4
			t4 := a2 - a3
			m1 := a0 + complex(c1, 0)*t1 + complex(c2, 0)*t2
			m2 := a0 + complex(c2, 0)*t1 + complex(c1, 0)*t2
			// n1 = -i*(s1*t3 + s2*t4), n2 = -i*(s2*t3 - s1*t4)
			u := complex(s1*real(t3)+s2*real(t4), s1*imag(t3)+s2*imag(t4))
			v := complex(s2*real(t3)-s1*real(t4), s2*imag(t3)-s1*imag(t4))
			n1 := complex(imag(u), -real(u))
			n2 := complex(imag(v), -real(v))
			yp[q] = a0 + t1 + t2
			yp[q+s] = (m1 + n1) * w1
			yp[q+2*s] = (m2 + n2) * w2
			yp[q+3*s] = (m2 - n2) * w3
			yp[q+4*s] = (m1 - n1) * w4
		}
	}
}

func stageRadix8(st *stage, x, y []complex128, lo, hi int) {
	m, s := st.m, st.s
	const rt = 0.7071067811865476 // √2/2
	for p := lo; p < hi; p++ {
		tw := st.tw[p*7 : p*7+7]
		var xi [8][]complex128
		for t := 0; t < 8; t++ {
			xi[t] = x[s*(p+t*m):]
		}
		yp := y[s*8*p:]
		for q := 0; q < s; q++ {
			a0, a1, a2, a3 := xi[0][q], xi[1][q], xi[2][q], xi[3][q]
			a4, a5, a6, a7 := xi[4][q], xi[5][q], xi[6][q], xi[7][q]
			// Even half: radix-4 on a_t + a_{t+4}.
			b0, b1, b2, b3 := a0+a4, a1+a5, a2+a6, a3+a7
			c0, c1 := b0+b2, b0-b2
			c2 := b1 + b3
			d := b1 - b3
			c3 := complex(imag(d), -real(d)) // -i·(b1-b3)
			// Odd half: radix-4 on (a_t − a_{t+4})·ω8^t.
			d0 := a0 - a4
			t1 := a1 - a5
			d1 := complex(rt*(real(t1)+imag(t1)), rt*(imag(t1)-real(t1))) // ·ω8
			t2 := a2 - a6
			d2 := complex(imag(t2), -real(t2)) // ·(−i)
			t3 := a3 - a7
			d3 := complex(rt*(imag(t3)-real(t3)), -rt*(real(t3)+imag(t3))) // ·ω8³
			e0, e1 := d0+d2, d0-d2
			e2 := d1 + d3
			ed := d1 - d3
			e3 := complex(imag(ed), -real(ed))
			yp[q] = c0 + c2
			yp[q+s] = (e0 + e2) * tw[0]
			yp[q+2*s] = (c1 + c3) * tw[1]
			yp[q+3*s] = (e1 + e3) * tw[2]
			yp[q+4*s] = (c0 - c2) * tw[3]
			yp[q+5*s] = (e0 - e2) * tw[4]
			yp[q+6*s] = (c1 - c3) * tw[5]
			yp[q+7*s] = (e1 - e3) * tw[6]
		}
	}
}

// stageRadix2S1 is the stride-1 (first pass) radix-2 kernel: the lane
// loop collapses to one iteration, so inputs are read m-strided directly.
func stageRadix2S1(st *stage, x, y []complex128, lo, hi int) {
	m := st.m
	for p := lo; p < hi; p++ {
		a, b := x[p], x[p+m]
		y[2*p] = a + b
		y[2*p+1] = (a - b) * st.tw[p]
	}
}

// stageRadix4S1 is the stride-1 radix-4 kernel.
func stageRadix4S1(st *stage, x, y []complex128, lo, hi int) {
	m := st.m
	for p := lo; p < hi; p++ {
		a, b, c, d := x[p], x[p+m], x[p+2*m], x[p+3*m]
		t0 := a + c
		t1 := a - c
		t2 := b + d
		bd := b - d
		t3 := complex(imag(bd), -real(bd)) // -i·(b-d), forward sign
		tw := st.tw[p*3 : p*3+3]
		yp := y[4*p : 4*p+4]
		yp[0] = t0 + t2
		yp[1] = (t1 + t3) * tw[0]
		yp[2] = (t0 - t2) * tw[1]
		yp[3] = (t1 - t3) * tw[2]
	}
}

// stageRadix8S1 is the stride-1 radix-8 kernel.
func stageRadix8S1(st *stage, x, y []complex128, lo, hi int) {
	m := st.m
	const rt = 0.7071067811865476 // √2/2
	for p := lo; p < hi; p++ {
		a0, a1, a2, a3 := x[p], x[p+m], x[p+2*m], x[p+3*m]
		a4, a5, a6, a7 := x[p+4*m], x[p+5*m], x[p+6*m], x[p+7*m]
		// Even half: radix-4 on a_t + a_{t+4}.
		b0, b1, b2, b3 := a0+a4, a1+a5, a2+a6, a3+a7
		c0, c1 := b0+b2, b0-b2
		c2 := b1 + b3
		d := b1 - b3
		c3 := complex(imag(d), -real(d)) // -i·(b1-b3)
		// Odd half: radix-4 on (a_t − a_{t+4})·ω8^t.
		d0 := a0 - a4
		t1 := a1 - a5
		d1 := complex(rt*(real(t1)+imag(t1)), rt*(imag(t1)-real(t1))) // ·ω8
		t2 := a2 - a6
		d2 := complex(imag(t2), -real(t2)) // ·(−i)
		t3 := a3 - a7
		d3 := complex(rt*(imag(t3)-real(t3)), -rt*(real(t3)+imag(t3))) // ·ω8³
		e0, e1 := d0+d2, d0-d2
		e2 := d1 + d3
		ed := d1 - d3
		e3 := complex(imag(ed), -real(ed))
		tw := st.tw[p*7 : p*7+7]
		yp := y[8*p : 8*p+8]
		yp[0] = c0 + c2
		yp[1] = (e0 + e2) * tw[0]
		yp[2] = (c1 + c3) * tw[1]
		yp[3] = (e1 + e3) * tw[2]
		yp[4] = (c0 - c2) * tw[3]
		yp[5] = (e0 - e2) * tw[4]
		yp[6] = (c1 - c3) * tw[5]
		yp[7] = (e1 - e3) * tw[6]
	}
}

// stageGeneric handles any radix with an O(radix^2) butterfly using the
// precomputed radix-point roots. It is used for small primes 7..31.
// The lane buffer lives on the stack (radix ≤ maxSmallPrime), keeping
// the pass allocation-free.
func stageGeneric(st *stage, x, y []complex128, lo, hi int) {
	r, m, s := st.radix, st.m, st.s
	var lanes [maxSmallPrime]complex128
	var a []complex128
	if r <= maxSmallPrime {
		a = lanes[:r]
	} else { // custom stage lists may use larger composite radices
		a = make([]complex128, r)
	}
	for p := lo; p < hi; p++ {
		for q := 0; q < s; q++ {
			for t := 0; t < r; t++ {
				a[t] = x[q+s*(p+m*t)]
			}
			base := q + s*r*p
			// u = 0: plain sum, no twiddle.
			sum := a[0]
			for t := 1; t < r; t++ {
				sum += a[t]
			}
			y[base] = sum
			for u := 1; u < r; u++ {
				acc := a[0]
				idx := 0
				for t := 1; t < r; t++ {
					idx += u
					if idx >= r {
						idx -= r
					}
					acc += a[t] * st.wr[idx]
				}
				y[base+s*u] = acc * st.tw[p*(r-1)+u-1]
			}
		}
	}
}
