package fft

import (
	"testing"
)

func TestBatchMatchesSingle(t *testing.T) {
	const n, count = 64, 9
	p, _ := NewPlan(n)
	src := randomVec(n*count, 5)
	want := make([]complex128, n*count)
	for i := 0; i < count; i++ {
		p.Forward(want[i*n:(i+1)*n], src[i*n:(i+1)*n])
	}
	got := make([]complex128, n*count)
	p.Batch(got, src, count)
	if e := maxAbsErr(got, want); e > 0 {
		t.Errorf("Batch differs from loop of Forward by %.3e", e)
	}
}

func TestParallelBatchMatchesBatch(t *testing.T) {
	const n, count = 120, 33
	p, _ := NewPlan(n)
	src := randomVec(n*count, 6)
	want := make([]complex128, n*count)
	p.Batch(want, src, count)
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		got := make([]complex128, n*count)
		p.ParallelBatch(got, src, count, workers)
		if e := maxAbsErr(got, want); e > 0 {
			t.Errorf("workers=%d: ParallelBatch differs by %.3e", workers, e)
		}
	}
}

func TestInverseBatchRoundTrip(t *testing.T) {
	const n, count = 48, 5
	p, _ := NewPlan(n)
	src := randomVec(n*count, 7)
	freq := make([]complex128, n*count)
	back := make([]complex128, n*count)
	p.Batch(freq, src, count)
	p.InverseBatch(back, freq, count)
	if e := maxAbsErr(back, src); e > 1e-11 {
		t.Errorf("batch round trip error %.3e", e)
	}
}

func TestBatchZeroCount(t *testing.T) {
	p, _ := NewPlan(8)
	p.Batch(nil, nil, 0) // must not panic
}

func TestBatchShortBufferPanics(t *testing.T) {
	p, _ := NewPlan(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short batch buffer")
		}
	}()
	p.Batch(make([]complex128, 8), make([]complex128, 8), 2)
}

func TestCachedPlanReuse(t *testing.T) {
	a, err := CachedPlan(96)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CachedPlan(96)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("CachedPlan returned distinct plans for the same length")
	}
	if _, err := CachedPlan(-3); err == nil {
		t.Error("CachedPlan(-3): expected error")
	}
}

func TestConvenienceForwardInverse(t *testing.T) {
	src := randomVec(100, 9)
	f, err := Forward(src)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Inverse(f)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxAbsErr(back, src); e > 1e-11 {
		t.Errorf("convenience round trip error %.3e", e)
	}
}

func TestForwardParallelBitIdentical(t *testing.T) {
	for _, n := range []int{64, 1 << 12, 1 << 16, 3 * 1 << 10, 5 * 7 * 64} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		src := randomVec(n, int64(n))
		want := make([]complex128, n)
		p.Forward(want, src)
		for _, workers := range []int{0, 2, 4, 16} {
			got := make([]complex128, n)
			p.ForwardParallel(got, src, workers)
			if e := maxAbsErr(got, want); e != 0 {
				t.Errorf("n=%d workers=%d: parallel differs by %.3e", n, workers, e)
			}
		}
		// In-place parallel.
		buf := append([]complex128(nil), src...)
		p.ForwardParallel(buf, buf, 4)
		if e := maxAbsErr(buf, want); e != 0 {
			t.Errorf("n=%d: in-place parallel differs", n)
		}
	}
}

func TestInverseParallelRoundTrip(t *testing.T) {
	const n = 1 << 14
	p, _ := NewPlan(n)
	src := randomVec(n, 77)
	freq := make([]complex128, n)
	back := make([]complex128, n)
	p.ForwardParallel(freq, src, 4)
	p.InverseParallel(back, freq, 4)
	if e := maxAbsErr(back, src); e > 1e-11 {
		t.Errorf("parallel round trip error %.3e", e)
	}
}

func TestForwardParallelBluesteinFallsBack(t *testing.T) {
	p, err := NewPlan(1009) // prime: Bluestein path
	if err != nil {
		t.Fatal(err)
	}
	src := randomVec(1009, 5)
	want := make([]complex128, 1009)
	p.Forward(want, src)
	got := make([]complex128, 1009)
	p.ForwardParallel(got, src, 8)
	if e := maxAbsErr(got, want); e != 0 {
		t.Error("bluestein parallel fallback differs")
	}
}
