// Package fft implements fast Fourier transforms of complex vectors.
//
// It is the node-local FFT substrate for the SOI low-communication FFT
// (the role Intel MKL plays in the paper). The implementation is a
// self-sorting mixed-radix Stockham algorithm with hand-written kernels
// for radices 2, 3, 4, 5 and 8, a generic kernel for the remaining small
// primes, and a Bluestein chirp-z fallback for lengths containing large
// prime factors. Plans are reusable and safe for concurrent use.
//
// Conventions: the forward transform computes
//
//	y[k] = sum_j x[j] * exp(-i*2*pi*j*k/n)
//
// and Inverse applies the conjugate transform scaled by 1/n, so that
// Inverse(Forward(x)) == x up to rounding.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
	"sync"
)

// maxSmallPrime is the largest prime handled by the generic mixed-radix
// kernel; lengths with larger prime factors go through Bluestein.
const maxSmallPrime = 31

// stage describes one mixed-radix Stockham pass.
type stage struct {
	radix int
	m     int          // transform sub-length after this stage's split
	s     int          // number of interleaved sequences (stride)
	tw    []complex128 // twiddles, indexed [p*(radix-1) + (u-1)]
	wr    []complex128 // radix-point roots for the generic kernel (nil for 2..5)
}

// Plan holds precomputed tables for transforms of a fixed length.
// A Plan may be shared freely between goroutines.
type Plan struct {
	n       int
	stages  []stage
	codelet codeletFunc // non-nil for tiny n: direct unrolled DFT
	blue    *bluestein  // non-nil when the length needs the chirp-z path
	scratch sync.Pool
}

// NewPlan creates a transform plan for length n.
func NewPlan(n int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fft: length must be positive, got %d", n)
	}
	p := &Plan{n: n}
	p.scratch.New = func() any { b := make([]complex128, n); return &b }
	radices, rem := factorize(n)
	if rem != 1 {
		b, err := newBluestein(n)
		if err != nil {
			return nil, err
		}
		p.blue = b
		return p, nil
	}
	p.stages = buildStages(n, radices)
	p.codelet = codeletFor(n)
	return p, nil
}

// N returns the transform length the plan was built for.
func (p *Plan) N() int { return p.n }

// factorize splits n into a radix sequence preferring radix 8, then 4,
// then 2 for the power-of-two part (fewer, wider passes mean fewer
// memory sweeps), then odd small primes in increasing order. The second
// return value is the cofactor left after removing all primes <=
// maxSmallPrime.
func factorize(n int) (radices []int, rem int) {
	rem = n
	e2 := 0
	for rem%2 == 0 {
		rem /= 2
		e2++
	}
	for ; e2 >= 3; e2 -= 3 {
		radices = append(radices, 8)
	}
	if e2 == 2 {
		radices = append(radices, 4)
	}
	if e2 == 1 {
		radices = append(radices, 2)
	}
	for f := 3; f <= maxSmallPrime; f += 2 {
		for rem%f == 0 {
			rem /= f
			radices = append(radices, f)
		}
	}
	return radices, rem
}

// buildStages precomputes per-stage twiddle tables for the Stockham passes.
func buildStages(n int, radices []int) []stage {
	stages := make([]stage, len(radices))
	cur, s := n, 1
	for i, r := range radices {
		m := cur / r
		st := stage{radix: r, m: m, s: s}
		st.tw = make([]complex128, m*(r-1))
		theta := -2 * math.Pi / float64(cur)
		for q := 0; q < m; q++ {
			for u := 1; u < r; u++ {
				ang := theta * float64(q*u)
				st.tw[q*(r-1)+u-1] = cmplx.Exp(complex(0, ang))
			}
		}
		if r > 5 && r != 8 {
			st.wr = make([]complex128, r)
			for t := 0; t < r; t++ {
				ang := -2 * math.Pi * float64(t) / float64(r)
				st.wr[t] = cmplx.Exp(complex(0, ang))
			}
		}
		stages[i] = st
		cur = m
		s *= r
	}
	return stages
}

// getScratch/putScratch hold *[]complex128 in the pool: storing the
// pointer (not the slice header) avoids an interface-boxing allocation
// on every Put.
func (p *Plan) getScratch() *[]complex128  { return p.scratch.Get().(*[]complex128) }
func (p *Plan) putScratch(b *[]complex128) { p.scratch.Put(b) }

// Forward computes the forward DFT of src into dst. dst and src must both
// have length n; they may be the same slice, or must not overlap.
func (p *Plan) Forward(dst, src []complex128) {
	p.checkLen(dst, src)
	if p.codelet != nil { // reads everything before writing: in-place safe
		p.codelet(dst, src)
		return
	}
	if p.blue != nil {
		p.blue.transform(dst, src)
		return
	}
	if len(p.stages) == 0 { // n == 1
		dst[0] = src[0]
		return
	}
	if sameSlice(dst, src) {
		tmp := p.getScratch()
		copy(*tmp, src)
		p.run(dst, *tmp)
		p.putScratch(tmp)
		return
	}
	p.run(dst, src)
}

// Inverse computes the inverse DFT of src into dst, scaled by 1/n so that
// a forward-inverse round trip reproduces the input.
func (p *Plan) Inverse(dst, src []complex128) {
	p.checkLen(dst, src)
	tmp := p.getScratch()
	for i, v := range src {
		(*tmp)[i] = cmplx.Conj(v)
	}
	p.Forward(dst, *tmp)
	p.putScratch(tmp)
	inv := 1 / float64(p.n)
	for i, v := range dst {
		dst[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}

func (p *Plan) checkLen(dst, src []complex128) {
	if len(dst) != p.n || len(src) != p.n {
		panic(fmt.Sprintf("fft: plan length %d, got dst %d src %d", p.n, len(dst), len(src)))
	}
}

func sameSlice(a, b []complex128) bool {
	return len(a) > 0 && len(b) > 0 && &a[0] == &b[0]
}

// run executes the Stockham passes, reading src on the first pass and
// arranging the ping-pong so the final pass writes into dst.
func (p *Plan) run(dst, src []complex128) {
	k := len(p.stages)
	if k == 1 {
		// Single pass: no ping-pong buffer needed.
		applyStage(&p.stages[0], src, dst)
		return
	}
	sp := p.getScratch()
	defer p.putScratch(sp)
	scratch := *sp

	// Choose the first target so that pass k lands in dst.
	var x, y []complex128
	if k%2 == 1 {
		y = dst
	} else {
		y = scratch
	}
	x = src
	for i := 0; i < k; i++ {
		applyStage(&p.stages[i], x, y)
		if i == 0 {
			if k%2 == 1 {
				x, y = dst, scratch
			} else {
				x, y = scratch, dst
			}
		} else {
			x, y = y, x
		}
	}
}

// applyStage performs one radix-r Stockham pass: the array is viewed as s
// interleaved sequences of length radix*m; element (q, t) of sub-block p
// lives at x[lane + s*(p + m*t)].
func applyStage(st *stage, x, y []complex128) {
	applyStageRange(st, x, y, 0, st.m)
}

// applyStageRange runs the pass for sub-blocks [lo, hi) only; disjoint
// ranges touch disjoint output cells, so ranges may run concurrently.
func applyStageRange(st *stage, x, y []complex128, lo, hi int) {
	if st.s == 1 {
		// The first pass of every plan runs at stride 1: its inner lane
		// loop is a single iteration, so dedicated kernels that read the
		// m-strided inputs directly (no per-block slicing) win big — this
		// pass has the most sub-blocks of any in the plan.
		switch st.radix {
		case 2:
			stageRadix2S1(st, x, y, lo, hi)
			return
		case 4:
			stageRadix4S1(st, x, y, lo, hi)
			return
		case 8:
			stageRadix8S1(st, x, y, lo, hi)
			return
		}
	}
	switch st.radix {
	case 2:
		stageRadix2(st, x, y, lo, hi)
	case 3:
		stageRadix3(st, x, y, lo, hi)
	case 4:
		stageRadix4(st, x, y, lo, hi)
	case 5:
		stageRadix5(st, x, y, lo, hi)
	case 8:
		stageRadix8(st, x, y, lo, hi)
	default:
		stageGeneric(st, x, y, lo, hi)
	}
}
