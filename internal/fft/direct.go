package fft

import (
	"math"
	"math/cmplx"
)

// Direct computes the forward DFT by the O(n^2) definition. It is the
// reference oracle for tests and for very small transforms; it must stay
// independent of the fast path.
func Direct(dst, src []complex128) {
	n := len(src)
	if len(dst) != n {
		panic("fft: Direct length mismatch")
	}
	out := dst
	if n > 0 && sameSlice(dst, src) {
		out = make([]complex128, n)
	}
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			// Reduce j*k mod n before forming the angle to avoid the
			// catastrophic cancellation of huge arguments.
			ang := -2 * math.Pi * float64((j*k)%n) / float64(n)
			acc += src[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = acc
	}
	if &out[0] != &dst[0] {
		copy(dst, out)
	}
}

// DirectInverse computes the inverse DFT (scaled by 1/n) by definition.
func DirectInverse(dst, src []complex128) {
	n := len(src)
	if len(dst) != n {
		panic("fft: DirectInverse length mismatch")
	}
	out := dst
	if n > 0 && sameSlice(dst, src) {
		out = make([]complex128, n)
	}
	inv := 1 / float64(n)
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			ang := 2 * math.Pi * float64((j*k)%n) / float64(n)
			acc += src[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = acc * complex(inv, 0)
	}
	if &out[0] != &dst[0] {
		copy(dst, out)
	}
}
