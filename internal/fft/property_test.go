package fft

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickConfig bounds the number of iterations so property tests stay fast.
var quickConfig = &quick.Config{MaxCount: 40}

// TestPropLinearity checks F(a*x + b*y) == a*F(x) + b*F(y) for random
// lengths, coefficients and inputs.
func TestPropLinearity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		p, err := NewPlan(n)
		if err != nil {
			return false
		}
		x := randomVec(n, seed+1)
		y := randomVec(n, seed+2)
		a := complex(rng.Float64()*2-1, rng.Float64()*2-1)
		b := complex(rng.Float64()*2-1, rng.Float64()*2-1)
		comb := make([]complex128, n)
		for i := range comb {
			comb[i] = a*x[i] + b*y[i]
		}
		fx := make([]complex128, n)
		fy := make([]complex128, n)
		fc := make([]complex128, n)
		p.Forward(fx, x)
		p.Forward(fy, y)
		p.Forward(fc, comb)
		for i := range fc {
			if cmplx.Abs(fc[i]-(a*fx[i]+b*fy[i])) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Error(err)
	}
}

// TestPropConvolutionTheorem checks that pointwise product in frequency
// equals cyclic convolution in time.
func TestPropConvolutionTheorem(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(160)
		p, err := NewPlan(n)
		if err != nil {
			return false
		}
		x := randomVec(n, seed+10)
		h := randomVec(n, seed+20)
		// Direct cyclic convolution.
		conv := make([]complex128, n)
		for i := 0; i < n; i++ {
			var acc complex128
			for j := 0; j < n; j++ {
				acc += x[j] * h[(i-j+n)%n]
			}
			conv[i] = acc
		}
		fx := make([]complex128, n)
		fh := make([]complex128, n)
		p.Forward(fx, x)
		p.Forward(fh, h)
		for i := range fx {
			fx[i] *= fh[i]
		}
		viaFFT := make([]complex128, n)
		p.Inverse(viaFFT, fx)
		return relErr(viaFFT, conv) < 1e-9
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Error(err)
	}
}

// TestPropShiftTheorem checks that a cyclic time shift multiplies the
// spectrum by a linear phase.
func TestPropShiftTheorem(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(200)
		shift := rng.Intn(n)
		p, err := NewPlan(n)
		if err != nil {
			return false
		}
		x := randomVec(n, seed+30)
		shifted := make([]complex128, n)
		for i := range shifted {
			shifted[i] = x[(i-shift+n)%n]
		}
		fx := make([]complex128, n)
		fs := make([]complex128, n)
		p.Forward(fx, x)
		p.Forward(fs, shifted)
		for k := range fx {
			phase := cmplx.Exp(complex(0, -2*3.141592653589793*float64((k*shift)%n)/float64(n)))
			if cmplx.Abs(fs[k]-fx[k]*phase) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Error(err)
	}
}

// TestPropRoundTripRandomLengths fuzzes forward/inverse consistency over
// arbitrary lengths, including Bluestein ones.
func TestPropRoundTripRandomLengths(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(2000)
		p, err := NewPlan(n)
		if err != nil {
			return false
		}
		x := randomVec(n, seed+40)
		fx := make([]complex128, n)
		back := make([]complex128, n)
		p.Forward(fx, x)
		p.Inverse(back, fx)
		return maxAbsErr(back, x) < 1e-9
	}
	if err := quick.Check(f, quickConfig); err != nil {
		t.Error(err)
	}
}
