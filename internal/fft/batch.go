package fft

import (
	"fmt"
	"runtime"
	"sync"
)

// Batch applies the plan's forward transform to count contiguous vectors:
// transform i reads src[i*n:(i+1)*n] and writes dst[i*n:(i+1)*n].
func (p *Plan) Batch(dst, src []complex128, count int) {
	p.checkBatch(dst, src, count)
	n := p.n
	if c := p.codelet; c != nil {
		// Tiny transforms: one indirect call per vector, no per-call
		// length checks or stage dispatch. This is the I⊗F_P hot loop of
		// the SOI pipeline (count ≈ M' calls per transform).
		for i := 0; i < count; i++ {
			c(dst[i*n:(i+1)*n], src[i*n:(i+1)*n])
		}
		return
	}
	for i := 0; i < count; i++ {
		p.Forward(dst[i*n:(i+1)*n], src[i*n:(i+1)*n])
	}
}

// InverseBatch is Batch for the inverse transform.
func (p *Plan) InverseBatch(dst, src []complex128, count int) {
	p.checkBatch(dst, src, count)
	n := p.n
	for i := 0; i < count; i++ {
		p.Inverse(dst[i*n:(i+1)*n], src[i*n:(i+1)*n])
	}
}

// ParallelBatch is Batch with the transforms spread over workers
// goroutines (GOMAXPROCS when workers <= 0). It models the intra-node
// OpenMP threading of the paper's implementation.
func (p *Plan) ParallelBatch(dst, src []complex128, count, workers int) {
	p.checkBatch(dst, src, count)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		p.Batch(dst, src, count)
		return
	}
	n := p.n
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * count / workers
		hi := (w + 1) * count / workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				p.Forward(dst[i*n:(i+1)*n], src[i*n:(i+1)*n])
			}
		}(lo, hi)
	}
	wg.Wait()
}

func (p *Plan) checkBatch(dst, src []complex128, count int) {
	if count < 0 {
		panic(fmt.Sprintf("fft: negative batch count %d", count))
	}
	if len(dst) < count*p.n || len(src) < count*p.n {
		panic(fmt.Sprintf("fft: batch of %d x %d needs %d elements, got dst %d src %d",
			count, p.n, count*p.n, len(dst), len(src)))
	}
}

var planCache sync.Map // int -> *Plan

// CachedPlan returns a shared plan for length n, creating it on first use.
// Plans are immutable after construction, so sharing is safe.
func CachedPlan(n int) (*Plan, error) {
	if v, ok := planCache.Load(n); ok {
		return v.(*Plan), nil
	}
	p, err := NewPlan(n)
	if err != nil {
		return nil, err
	}
	actual, _ := planCache.LoadOrStore(n, p)
	return actual.(*Plan), nil
}

// Forward is a convenience wrapper that transforms x into a fresh slice
// using the shared plan cache.
func Forward(x []complex128) ([]complex128, error) {
	p, err := CachedPlan(len(x))
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(x))
	p.Forward(out, x)
	return out, nil
}

// Inverse is the convenience inverse-transform counterpart of Forward.
func Inverse(x []complex128) ([]complex128, error) {
	p, err := CachedPlan(len(x))
	if err != nil {
		return nil, err
	}
	out := make([]complex128, len(x))
	p.Inverse(out, x)
	return out, nil
}
