package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// RealPlan transforms real-valued input of even length n using one
// complex transform of length n/2 plus an O(n) untangling pass — the
// standard packing trick. The forward output is the non-redundant half
// spectrum X[0..n/2] (n/2+1 bins); the remaining bins follow from the
// conjugate symmetry X[n−k] = conj(X[k]).
type RealPlan struct {
	n    int
	half *Plan
	tw   []complex128 // e^{-i2πk/n}, k = 0..n/2-1
}

// NewRealPlan creates a real-input plan for even length n ≥ 2.
func NewRealPlan(n int) (*RealPlan, error) {
	if n < 2 || n%2 != 0 {
		return nil, fmt.Errorf("fft: real transform needs even length ≥ 2, got %d", n)
	}
	half, err := NewPlan(n / 2)
	if err != nil {
		return nil, err
	}
	tw := make([]complex128, n/2)
	for k := range tw {
		tw[k] = cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
	}
	return &RealPlan{n: n, half: half, tw: tw}, nil
}

// N returns the (real) transform length.
func (p *RealPlan) N() int { return p.n }

// Forward computes the half spectrum of src: dst[k] = Σ_j src[j]·
// exp(-i2πjk/n) for k = 0..n/2. len(src) must be n and len(dst) n/2+1.
func (p *RealPlan) Forward(dst []complex128, src []float64) {
	m := p.n / 2
	if len(src) != p.n || len(dst) != m+1 {
		panic(fmt.Sprintf("fft: real forward needs src %d dst %d, got %d/%d",
			p.n, m+1, len(src), len(dst)))
	}
	z := make([]complex128, m)
	for j := 0; j < m; j++ {
		z[j] = complex(src[2*j], src[2*j+1])
	}
	p.half.Forward(z, z)
	// Untangle: E[k] = (Z[k]+conj(Z[m−k]))/2 is the even subsequence's
	// spectrum, O[k] = (Z[k]−conj(Z[m−k]))/(2i) the odd one's.
	for k := 0; k <= m/2; k++ {
		k2 := (m - k) % m
		zk, zk2 := z[k], cmplx.Conj(z[k2])
		e := (zk + zk2) / 2
		o := (zk - zk2) / complex(0, 2)
		dst[k] = e + p.tw[k]*o
		if k2 != k {
			e2 := cmplx.Conj(e) // E[m−k] = conj(E[k]) for real input
			o2 := cmplx.Conj(o)
			dst[k2] = e2 + p.tw[k2]*o2
		}
	}
	// Nyquist bin: X[m] = E[0] − O[0].
	z0 := z[0]
	dst[m] = complex(real(z0)-imag(z0), 0)
	dst[0] = complex(real(z0)+imag(z0), 0)
}

// Inverse reconstructs the real sequence from its half spectrum
// (scaled by 1/n): len(src) must be n/2+1, len(dst) n.
func (p *RealPlan) Inverse(dst []float64, src []complex128) {
	m := p.n / 2
	if len(dst) != p.n || len(src) != m+1 {
		panic(fmt.Sprintf("fft: real inverse needs src %d dst %d, got %d/%d",
			m+1, p.n, len(src), len(dst)))
	}
	z := make([]complex128, m)
	for k := 0; k < m; k++ {
		var xk2 complex128
		if k == 0 {
			xk2 = cmplx.Conj(src[m])
		} else {
			xk2 = cmplx.Conj(src[m-k])
		}
		e := (src[k] + xk2) / 2
		o := (src[k] - xk2) / 2 * cmplx.Conj(p.tw[k])
		z[k] = e + complex(0, 1)*o
	}
	p.half.Inverse(z, z)
	for j := 0; j < m; j++ {
		dst[2*j] = real(z[j])
		dst[2*j+1] = imag(z[j])
	}
}
