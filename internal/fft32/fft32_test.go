package fft32

import (
	"math"
	"math/cmplx"
	"testing"

	"soifft/internal/fft"
	"soifft/internal/signal"
)

func TestForwardMatchesDoubleEngine(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 12, 30, 64, 100, 240, 1024, 3 * 1024} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatalf("NewPlan(%d): %v", n, err)
		}
		src64 := signal.Random(n, int64(n))
		src := FromComplex128(src64)
		want := make([]complex128, n)
		fft.Direct(want, src64)
		dst := make([]complex64, n)
		p.Forward(dst, src)
		got := ToComplex128(dst)
		// Single precision: expect ~1e-6 relative accuracy scaled by √n.
		tol := 5e-6 * math.Sqrt(float64(n))
		if e := signal.RelErrL2(got, want); e > tol {
			t.Errorf("n=%d: rel err %.3e > %.3e", n, e, tol)
		}
	}
}

func TestSinglePrecisionDigits(t *testing.T) {
	// The Section 7.3 premise: single precision delivers ~6-7 digits.
	const n = 1 << 16
	p, err := NewPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	src64 := signal.Random(n, 9)
	ref, err := fft.Forward(src64)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex64, n)
	p.Forward(dst, FromComplex128(src64))
	snr := signal.SNRdB(ToComplex128(dst), ref)
	digits := signal.DBToDigits(snr)
	if digits < 5 || digits > 8.5 {
		t.Errorf("single-precision FFT at N=%d: %.1f digits (SNR %.0f dB); expected ~6-7", n, digits, snr)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	for _, n := range []int{8, 60, 512, 1000} {
		p, err := NewPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		src := FromComplex128(signal.Random(n, int64(n)+3))
		freq := make([]complex64, n)
		back := make([]complex64, n)
		p.Forward(freq, src)
		p.Inverse(back, freq)
		for i := range src {
			if d := cmplx.Abs(complex128(back[i] - src[i])); d > 1e-4 {
				t.Errorf("n=%d: element %d off by %.3e", n, i, d)
				break
			}
		}
	}
}

func TestInPlace(t *testing.T) {
	const n = 256
	p, _ := NewPlan(n)
	src := FromComplex128(signal.Random(n, 5))
	want := make([]complex64, n)
	p.Forward(want, src)
	buf := append([]complex64(nil), src...)
	p.Forward(buf, buf)
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("in-place differs at %d", i)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := NewPlan(0); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := NewPlan(37 * 64); err == nil {
		t.Error("expected error for large prime factor")
	}
	p, _ := NewPlan(8)
	defer func() {
		if recover() == nil {
			t.Fatal("expected length panic")
		}
	}()
	p.Forward(make([]complex64, 4), make([]complex64, 8))
}

func TestConversionHelpers(t *testing.T) {
	x := []complex128{1 + 2i, -3.5}
	y := ToComplex128(FromComplex128(x))
	for i := range x {
		if cmplx.Abs(y[i]-x[i]) > 1e-6 {
			t.Errorf("conversion round trip: %v vs %v", y[i], x[i])
		}
	}
}
