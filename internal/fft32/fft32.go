// Package fft32 is a single-precision (complex64) FFT engine. The paper's
// Section 7.3 argues that a 6-digit single-precision library's best-case
// speedup (half the bytes on the wire) is matched by 10-digit
// double-precision SOI; this package provides the measured single-
// precision accuracy side of that comparison, and gives the library a
// storage-efficient transform for callers who can live with ~6-7 digits.
//
// The implementation is a compact mixed-radix Stockham engine: radix
// 2 and 4 fast paths plus a generic small-prime kernel (factors up to
// 31). Twiddles are computed in float64 and rounded once, so the only
// precision loss is the complex64 arithmetic itself.
package fft32

import (
	"fmt"
	"math"
)

const maxSmallPrime = 31

type stage struct {
	radix int
	m     int
	s     int
	tw    []complex64
	wr    []complex64
}

// Plan holds precomputed tables for complex64 transforms of one length.
// Plans are safe for concurrent use when callers supply distinct buffers.
type Plan struct {
	n      int
	stages []stage
}

// NewPlan creates a single-precision plan. The length must factor into
// primes ≤ 31 (no Bluestein fallback at this precision — the chirp
// products would cost most of the 24-bit mantissa).
func NewPlan(n int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fft32: length must be positive, got %d", n)
	}
	radices, rem := factorize(n)
	if rem != 1 {
		return nil, fmt.Errorf("fft32: length %d has prime factor > %d; single-precision plans need smooth lengths", n, maxSmallPrime)
	}
	p := &Plan{n: n}
	cur, s := n, 1
	for _, r := range radices {
		m := cur / r
		st := stage{radix: r, m: m, s: s}
		st.tw = make([]complex64, m*(r-1))
		theta := -2 * math.Pi / float64(cur)
		for q := 0; q < m; q++ {
			for u := 1; u < r; u++ {
				ang := theta * float64(q*u)
				st.tw[q*(r-1)+u-1] = complex64(complex(math.Cos(ang), math.Sin(ang)))
			}
		}
		if r != 2 && r != 4 { // the generic kernel needs the radix roots
			st.wr = make([]complex64, r)
			for t := 0; t < r; t++ {
				ang := -2 * math.Pi * float64(t) / float64(r)
				st.wr[t] = complex64(complex(math.Cos(ang), math.Sin(ang)))
			}
		}
		p.stages = append(p.stages, st)
		cur = m
		s *= r
	}
	return p, nil
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

func factorize(n int) (radices []int, rem int) {
	rem = n
	e2 := 0
	for rem%2 == 0 {
		rem /= 2
		e2++
	}
	for ; e2 >= 2; e2 -= 2 {
		radices = append(radices, 4)
	}
	if e2 == 1 {
		radices = append(radices, 2)
	}
	for f := 3; f <= maxSmallPrime; f += 2 {
		for rem%f == 0 {
			rem /= f
			radices = append(radices, f)
		}
	}
	return radices, rem
}

// Forward computes the forward DFT of src into dst (both length n; dst
// must not alias src unless identical, which is handled via a copy).
func (p *Plan) Forward(dst, src []complex64) {
	if len(dst) != p.n || len(src) != p.n {
		panic(fmt.Sprintf("fft32: plan length %d, got dst %d src %d", p.n, len(dst), len(src)))
	}
	if len(p.stages) == 0 {
		dst[0] = src[0]
		return
	}
	if &dst[0] == &src[0] {
		tmp := make([]complex64, p.n)
		copy(tmp, src)
		p.run(dst, tmp)
		return
	}
	p.run(dst, src)
}

// Inverse computes the 1/n-scaled inverse DFT.
func (p *Plan) Inverse(dst, src []complex64) {
	tmp := make([]complex64, p.n)
	for i, v := range src {
		tmp[i] = complex(real(v), -imag(v))
	}
	p.Forward(dst, tmp)
	inv := float32(1) / float32(p.n)
	for i, v := range dst {
		dst[i] = complex(real(v)*inv, -imag(v)*inv)
	}
}

func (p *Plan) run(dst, src []complex64) {
	k := len(p.stages)
	if k == 1 {
		applyStage(&p.stages[0], src, dst)
		return
	}
	scratch := make([]complex64, p.n)
	var x, y []complex64
	if k%2 == 1 {
		y = dst
	} else {
		y = scratch
	}
	x = src
	for i := 0; i < k; i++ {
		applyStage(&p.stages[i], x, y)
		if i == 0 {
			if k%2 == 1 {
				x, y = dst, scratch
			} else {
				x, y = scratch, dst
			}
		} else {
			x, y = y, x
		}
	}
}

func applyStage(st *stage, x, y []complex64) {
	switch st.radix {
	case 2:
		m, s := st.m, st.s
		for p := 0; p < m; p++ {
			w1 := st.tw[p]
			x0, x1 := x[s*p:], x[s*(p+m):]
			yp := y[s*2*p:]
			for q := 0; q < s; q++ {
				a, b := x0[q], x1[q]
				yp[q] = a + b
				yp[q+s] = (a - b) * w1
			}
		}
	case 4:
		m, s := st.m, st.s
		for p := 0; p < m; p++ {
			w1, w2, w3 := st.tw[p*3], st.tw[p*3+1], st.tw[p*3+2]
			x0, x1 := x[s*p:], x[s*(p+m):]
			x2, x3 := x[s*(p+2*m):], x[s*(p+3*m):]
			yp := y[s*4*p:]
			for q := 0; q < s; q++ {
				a, b, c, d := x0[q], x1[q], x2[q], x3[q]
				t0, t1 := a+c, a-c
				t2 := b + d
				bd := b - d
				t3 := complex(imag(bd), -real(bd))
				yp[q] = t0 + t2
				yp[q+s] = (t1 + t3) * w1
				yp[q+2*s] = (t0 - t2) * w2
				yp[q+3*s] = (t1 - t3) * w3
			}
		}
	default:
		r, m, s := st.radix, st.m, st.s
		a := make([]complex64, r)
		for p := 0; p < m; p++ {
			for q := 0; q < s; q++ {
				for t := 0; t < r; t++ {
					a[t] = x[q+s*(p+m*t)]
				}
				base := q + s*r*p
				sum := a[0]
				for t := 1; t < r; t++ {
					sum += a[t]
				}
				y[base] = sum
				for u := 1; u < r; u++ {
					acc := a[0]
					idx := 0
					for t := 1; t < r; t++ {
						idx += u
						if idx >= r {
							idx -= r
						}
						acc += a[t] * st.wr[idx]
					}
					y[base+s*u] = acc * st.tw[p*(r-1)+u-1]
				}
			}
		}
	}
}

// FromComplex128 converts a double-precision vector (rounding once).
func FromComplex128(x []complex128) []complex64 {
	out := make([]complex64, len(x))
	for i, v := range x {
		out[i] = complex64(v)
	}
	return out
}

// ToComplex128 widens a single-precision vector.
func ToComplex128(x []complex64) []complex128 {
	out := make([]complex128, len(x))
	for i, v := range x {
		out[i] = complex128(v)
	}
	return out
}
