package instrument

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	if r.On() || r.Timing() {
		t.Fatal("nil recorder must report off")
	}
	if r.Level() != LevelOff {
		t.Fatalf("nil level = %v, want off", r.Level())
	}
	// Every method must be a no-op, not a panic.
	r.AddTransform()
	r.ObserveStage(StageConvolve, time.Second, time.Second, 4, 100)
	r.CountMessage(16)
	r.CountAlltoallBytes(16)
	r.CountAlltoallOp()
	r.CountRetransmit()
	r.CountDeadline()
	r.CountChecksumError()
	r.Reset()
	s := r.Snapshot()
	if s.Transforms != 0 || s.Comm.Bytes != 0 {
		t.Fatalf("nil snapshot not zero: %+v", s)
	}
	if s.Stages[StageDemod].Stage != StageDemod {
		t.Fatal("nil snapshot must still carry stage identifiers")
	}
}

func TestNewOffIsNil(t *testing.T) {
	if New(LevelOff) != nil {
		t.Fatal("New(LevelOff) must return nil")
	}
	if New(-1) != nil {
		t.Fatal("New(negative) must return nil")
	}
}

func TestRecorderAccumulates(t *testing.T) {
	r := New(LevelTimers)
	if !r.On() || !r.Timing() || r.Level() != LevelTimers {
		t.Fatalf("level wiring broken: %v", r.Level())
	}
	r.AddTransform()
	r.AddTransform()
	r.ObserveStage(StageConvolve, 100*time.Millisecond, 300*time.Millisecond, 4, 1000)
	r.ObserveStage(StageConvolve, 100*time.Millisecond, 100*time.Millisecond, 2, 500)
	r.CountMessage(128)
	r.CountAlltoallOp()
	r.CountAlltoallBytes(4096)

	s := r.Snapshot()
	if s.Transforms != 2 {
		t.Fatalf("transforms = %d, want 2", s.Transforms)
	}
	cv := s.Stages[StageConvolve]
	if cv.Calls != 2 || cv.Wall != 200*time.Millisecond || cv.Busy != 400*time.Millisecond {
		t.Fatalf("convolve counters wrong: %+v", cv)
	}
	if cv.Workers != 4 {
		t.Fatalf("workers should keep the max span, got %d", cv.Workers)
	}
	if cv.Flops != 1500 {
		t.Fatalf("flops = %d, want 1500", cv.Flops)
	}
	// busy 400ms over wall 200ms × 4 workers = 0.5 occupancy.
	if occ := cv.Occupancy(); occ < 0.49 || occ > 0.51 {
		t.Fatalf("occupancy = %f, want 0.5", occ)
	}
	if s.Comm.Messages != 1 || s.Comm.Bytes != 128 ||
		s.Comm.Alltoalls != 1 || s.Comm.AlltoallBytes != 4096 {
		t.Fatalf("comm counters wrong: %+v", s.Comm)
	}

	r.Reset()
	s = r.Snapshot()
	if s.Transforms != 0 || s.Stages[StageConvolve].Calls != 0 || s.Comm.AlltoallBytes != 0 {
		t.Fatalf("reset left residue: %+v", s)
	}
	if s.Level != LevelTimers {
		t.Fatal("reset must keep the level")
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := New(LevelCounters)
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.AddTransform()
				r.CountMessage(16)
				r.ObserveStage(StageExchange, 0, 0, 1, 10)
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Transforms != goroutines*per {
		t.Fatalf("transforms = %d, want %d", s.Transforms, goroutines*per)
	}
	if s.Comm.Bytes != goroutines*per*16 {
		t.Fatalf("bytes = %d, want %d", s.Comm.Bytes, goroutines*per*16)
	}
	if s.Stages[StageExchange].Flops != goroutines*per*10 {
		t.Fatalf("flops = %d", s.Stages[StageExchange].Flops)
	}
}

func TestStageStrings(t *testing.T) {
	want := map[Stage]string{
		StageHalo: "halo", StageConvolve: "convolve", StageExchange: "exchange",
		StageSegmentFFT: "segment_fft", StageDemod: "demod",
	}
	for s, name := range want {
		if s.String() != name {
			t.Fatalf("stage %d = %q, want %q", s, s.String(), name)
		}
	}
	if Stage(99).String() != "unknown" {
		t.Fatal("out-of-range stage must render unknown")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := New(LevelTimers)
	r.AddTransform()
	r.ObserveStage(StageConvolve, 250*time.Millisecond, time.Second, 4, 12345)
	r.CountAlltoallOp()
	r.CountAlltoallBytes(61440)

	var b strings.Builder
	WritePrometheus(&b, "soifft", map[string]string{"plan": "n=4096 p=8"}, r.Snapshot())
	out := b.String()

	for _, want := range []string{
		"# TYPE soifft_transforms_total counter",
		`soifft_transforms_total{plan="n=4096 p=8"} 1`,
		`soifft_stage_seconds_total{plan="n=4096 p=8",stage="convolve"} 0.250000000`,
		`soifft_stage_flops_total{plan="n=4096 p=8",stage="convolve"} 12345`,
		`soifft_comm_alltoall_bytes_total{plan="n=4096 p=8"} 61440`,
		`soifft_comm_alltoalls_total{plan="n=4096 p=8"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusNoLabels(t *testing.T) {
	var b strings.Builder
	WritePrometheus(&b, "", nil, (*Recorder)(nil).Snapshot())
	out := b.String()
	if !strings.Contains(out, "soifft_transforms_total 0") {
		t.Fatalf("default prefix / bare series broken:\n%s", out)
	}
	if strings.Contains(out, "{}") {
		t.Fatalf("empty label block rendered:\n%s", out)
	}
}
