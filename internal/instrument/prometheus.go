package instrument

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): `# TYPE` headers, counter names suffixed
// `_total`, durations in seconds. labels are attached to every series;
// the caller typically passes {"plan": key.String()} so several plans'
// series coexist under one endpoint.
func WritePrometheus(w io.Writer, prefix string, labels map[string]string, s Snapshot) {
	if prefix == "" {
		prefix = "soifft"
	}
	base := formatLabels(labels)
	counter := func(name string, help string, v int64, extra string) {
		fmt.Fprintf(w, "# TYPE %s_%s counter\n", prefix, name)
		_ = help
		fmt.Fprintf(w, "%s_%s%s %d\n", prefix, name, mergeLabels(base, extra), v)
	}
	counter("transforms_total", "completed transforms", s.Transforms, "")

	fmt.Fprintf(w, "# TYPE %s_stage_seconds_total counter\n", prefix)
	for _, st := range s.Stages {
		fmt.Fprintf(w, "%s_stage_seconds_total%s %.9f\n",
			prefix, mergeLabels(base, `stage="`+st.Stage.String()+`"`), st.Wall.Seconds())
	}
	fmt.Fprintf(w, "# TYPE %s_stage_busy_seconds_total counter\n", prefix)
	for _, st := range s.Stages {
		fmt.Fprintf(w, "%s_stage_busy_seconds_total%s %.9f\n",
			prefix, mergeLabels(base, `stage="`+st.Stage.String()+`"`), st.Busy.Seconds())
	}
	fmt.Fprintf(w, "# TYPE %s_stage_calls_total counter\n", prefix)
	for _, st := range s.Stages {
		fmt.Fprintf(w, "%s_stage_calls_total%s %d\n",
			prefix, mergeLabels(base, `stage="`+st.Stage.String()+`"`), st.Calls)
	}
	fmt.Fprintf(w, "# TYPE %s_stage_flops_total counter\n", prefix)
	for _, st := range s.Stages {
		fmt.Fprintf(w, "%s_stage_flops_total%s %d\n",
			prefix, mergeLabels(base, `stage="`+st.Stage.String()+`"`), st.Flops)
	}

	counter("comm_messages_total", "", s.Comm.Messages, "")
	counter("comm_bytes_total", "", s.Comm.Bytes, "")
	counter("comm_alltoalls_total", "", s.Comm.Alltoalls, "")
	counter("comm_alltoall_bytes_total", "", s.Comm.AlltoallBytes, "")
	counter("comm_retransmits_total", "", s.Comm.Retransmits, "")
	counter("comm_deadline_events_total", "", s.Comm.DeadlineEvents, "")
	counter("comm_checksum_errors_total", "", s.Comm.ChecksumErrors, "")
	counter("comm_parity_bytes_total", "", s.Comm.ParityBytes, "")
	counter("comm_recovery_bytes_total", "", s.Comm.RecoveryBytes, "")
	counter("comm_reconstructions_total", "", s.Comm.Reconstructions, "")
	counter("comm_degraded_transforms_total", "", s.Comm.DegradedTransforms, "")
	counter("comm_stream_chunks_total", "", s.Comm.StreamChunks, "")
	fmt.Fprintf(w, "# TYPE %s_comm_hidden_exchange_seconds_total counter\n", prefix)
	fmt.Fprintf(w, "%s_comm_hidden_exchange_seconds_total%s %.9f\n",
		prefix, mergeLabels(base, ""), s.Comm.HiddenExchange.Seconds())
	fmt.Fprintf(w, "# TYPE %s_comm_credit_stall_seconds_total counter\n", prefix)
	fmt.Fprintf(w, "%s_comm_credit_stall_seconds_total%s %.9f\n",
		prefix, mergeLabels(base, ""), s.Comm.CreditStall.Seconds())
}

// formatLabels renders a label map in sorted order without braces
// ("k1=\"v1\",k2=\"v2\"").
func formatLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%q", k, labels[k]))
	}
	return strings.Join(parts, ",")
}

// mergeLabels combines the base label set with series-specific labels
// into a braced label block (empty string when both are empty).
func mergeLabels(base, extra string) string {
	switch {
	case base == "" && extra == "":
		return ""
	case base == "":
		return "{" + extra + "}"
	case extra == "":
		return "{" + base + "}"
	default:
		return "{" + base + "," + extra + "}"
	}
}
