// Package instrument is the pipeline observability layer: lock-free
// per-stage and per-operation counters that the SOI execution paths
// (core.Plan.Transform*, the distributed drivers, the transports) feed
// and that the public soifft.Plan.Report surface, the soiserve /metrics
// endpoint and the -report flags of the commands render.
//
// The design goal is a hot path that costs nothing when observability is
// off and only atomic adds when it is on:
//
//   - a nil *Recorder is fully inert — every method is nil-safe and the
//     execution paths guard with a single pointer test;
//   - LevelCounters updates monotonic atomic counters (calls, FLOPs,
//     bytes, messages) and never reads the clock;
//   - LevelTimers additionally records per-stage wall time and worker
//     busy time (occupancy), paying a handful of time.Now calls per
//     transform.
//
// All counters are cumulative since creation (or the last Reset); a
// Snapshot is a consistent-enough point-in-time copy for reporting (each
// counter is read atomically; cross-counter skew is bounded by one
// in-flight transform).
package instrument

import (
	"sync/atomic"
	"time"
)

// Level selects how much the recorder observes.
type Level int32

// Observability levels.
const (
	// LevelOff records nothing. A nil *Recorder behaves identically;
	// execution paths treat the two the same.
	LevelOff Level = iota
	// LevelCounters maintains atomic event counters (stage calls, FLOP
	// estimates, communication bytes/messages) without reading the clock.
	LevelCounters
	// LevelTimers additionally measures per-stage wall time and worker
	// busy time, enabling occupancy and rate reporting.
	LevelTimers
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelOff:
		return "off"
	case LevelCounters:
		return "counters"
	case LevelTimers:
		return "timers"
	default:
		return "unknown"
	}
}

// Stage identifies one factorization stage of the SOI pipeline, in
// execution order. The same identifiers serve the shared-memory path
// (where Exchange is the in-memory stride-P transpose) and the
// distributed path (where Exchange is the single all-to-all and Halo the
// neighbour prefix exchange).
type Stage int

// Pipeline stages.
const (
	// StageHalo is the neighbour halo exchange of (B−1)·P points
	// (distributed runs only; zero on the shared-memory path).
	StageHalo Stage = iota
	// StageConvolve is the oversampled convolution W·x fused with the
	// I⊗F_P block FFT batch — the extra arithmetic SOI pays.
	StageConvolve
	// StageExchange is the stride-P permutation: the in-memory transpose
	// on one machine, the single all-to-all across ranks.
	StageExchange
	// StageSegmentFFT is the per-segment F_M' batch.
	StageSegmentFFT
	// StageDemod is the projection to M entries and Ŵ⁻¹ demodulation.
	StageDemod

	// NumStages is the stage count (for iteration).
	NumStages
)

// String names the stage (stable identifiers used as metric labels).
func (s Stage) String() string {
	switch s {
	case StageHalo:
		return "halo"
	case StageConvolve:
		return "convolve"
	case StageExchange:
		return "exchange"
	case StageSegmentFFT:
		return "segment_fft"
	case StageDemod:
		return "demod"
	default:
		return "unknown"
	}
}

// stageCounters is the per-stage accumulator.
type stageCounters struct {
	calls  atomic.Int64
	wallNs atomic.Int64
	busyNs atomic.Int64
	flops  atomic.Int64
	// workers remembers the widest worker span observed for the stage,
	// the denominator of the occupancy ratio.
	workers atomic.Int64
}

// commCounters accumulates communication activity.
type commCounters struct {
	messages       atomic.Int64
	bytes          atomic.Int64
	alltoalls      atomic.Int64
	alltoallBytes  atomic.Int64
	retransmits    atomic.Int64
	deadlineEvents atomic.Int64
	checksumErrors atomic.Int64

	// Coded-exchange counters: the redundancy overhead (parity shares on
	// the wire), the repair traffic (view/agree/pool/refill frames), and
	// the outcomes (codewords rebuilt, transforms that finished degraded).
	parityBytes     atomic.Int64
	recoveryBytes   atomic.Int64
	reconstructions atomic.Int64
	degraded        atomic.Int64

	// Streamed-exchange counters: chunks shipped by the async pipelined
	// all-to-all, and the wire time it hid behind compute. With the
	// streamed exchange, the StageExchange wall timer reports only the
	// un-hidden remainder; hiddenExchangeNs preserves the overlapped
	// span so reports can show both halves.
	streamChunks     atomic.Int64
	hiddenExchangeNs atomic.Int64

	// creditStallNs is time streamed senders spent blocked on a full
	// per-destination credit window — the producer outrunning the wire.
	// It is the adaptive-window input: sustained stall means the window
	// (or the link) is too small for the compute rate.
	creditStallNs atomic.Int64
}

// Recorder accumulates observations. All methods are safe for concurrent
// use and safe on a nil receiver (no-ops), so execution paths can hold an
// optional *Recorder and call unconditionally on guarded branches.
type Recorder struct {
	level      atomic.Int32
	transforms atomic.Int64
	stages     [NumStages]stageCounters
	comm       commCounters
}

// New returns a recorder at the given level; LevelOff (or below) yields
// nil, the canonical "not observing" recorder.
func New(level Level) *Recorder {
	if level <= LevelOff {
		return nil
	}
	r := &Recorder{}
	r.level.Store(int32(level))
	return r
}

// Level returns the recorder's level (LevelOff for nil).
func (r *Recorder) Level() Level {
	if r == nil {
		return LevelOff
	}
	return Level(r.level.Load())
}

// On reports whether any observation is active.
func (r *Recorder) On() bool { return r != nil && Level(r.level.Load()) > LevelOff }

// Timing reports whether wall/busy time should be measured.
func (r *Recorder) Timing() bool { return r != nil && Level(r.level.Load()) >= LevelTimers }

// AddTransform counts one completed transform execution.
func (r *Recorder) AddTransform() {
	if r == nil {
		return
	}
	r.transforms.Add(1)
}

// ObserveStage records one execution of a stage: wall and busy time
// (zero unless the caller measured them), the worker span that executed
// it, and the estimated floating-point operations.
func (r *Recorder) ObserveStage(s Stage, wall, busy time.Duration, workers int, flops int64) {
	if r == nil || s < 0 || s >= NumStages {
		return
	}
	c := &r.stages[s]
	c.calls.Add(1)
	c.flops.Add(flops)
	if wall > 0 {
		c.wallNs.Add(int64(wall))
	}
	if busy > 0 {
		c.busyNs.Add(int64(busy))
	}
	w := int64(workers)
	for {
		cur := c.workers.Load()
		if w <= cur || c.workers.CompareAndSwap(cur, w) {
			break
		}
	}
}

// CountMessage records one point-to-point payload of the given size.
func (r *Recorder) CountMessage(bytes int64) {
	if r == nil {
		return
	}
	r.comm.messages.Add(1)
	r.comm.bytes.Add(bytes)
}

// CountAlltoallBytes adds this rank's inter-rank contribution to an
// all-to-all (self-copies excluded, matching what a fabric would carry).
func (r *Recorder) CountAlltoallBytes(bytes int64) {
	if r == nil {
		return
	}
	r.comm.alltoallBytes.Add(bytes)
}

// CountAlltoallOp counts one collective all-to-all (call once per
// collective, not once per rank).
func (r *Recorder) CountAlltoallOp() {
	if r == nil {
		return
	}
	r.comm.alltoalls.Add(1)
}

// CountParityBytes adds erasure parity payload this rank shipped in a
// coded exchange — the wire overhead the coded mode pays over the plain
// all-to-all's 16·(1+β)·N·(R−1)/R bytes.
func (r *Recorder) CountParityBytes(bytes int64) {
	if r == nil {
		return
	}
	r.comm.parityBytes.Add(bytes)
}

// CountRecoveryBytes adds control and repair payload moved by the coded
// exchange's failure protocol (view/agreement masks, share pooling,
// chunk refills, output takeover traffic).
func (r *Recorder) CountRecoveryBytes(bytes int64) {
	if r == nil {
		return
	}
	r.comm.recoveryBytes.Add(bytes)
}

// CountReconstruction records one erasure codeword rebuilt from parity
// (one per recovered source rank per transform).
func (r *Recorder) CountReconstruction() {
	if r == nil {
		return
	}
	r.comm.reconstructions.Add(1)
}

// CountDegraded records one transform that completed degraded (correct
// output, one or more ranks reconstructed).
func (r *Recorder) CountDegraded() {
	if r == nil {
		return
	}
	r.comm.degraded.Add(1)
}

// CountStreamChunk records one chunk shipped through the streamed
// (async pipelined) all-to-all, self-chunks excluded.
func (r *Recorder) CountStreamChunk() {
	if r == nil {
		return
	}
	r.comm.streamChunks.Add(1)
}

// AddHiddenExchange accumulates exchange wire time that ran concurrently
// with compute and therefore does not appear in StageExchange's wall
// time. HiddenExchange + StageExchange wall reconstructs the comparable
// blocking-exchange span for overlap-ratio reporting.
func (r *Recorder) AddHiddenExchange(d time.Duration) {
	if r == nil || d <= 0 {
		return
	}
	r.comm.hiddenExchangeNs.Add(int64(d))
}

// AddCreditStall accumulates time a streamed send spent blocked on a
// full per-destination credit window (queued-but-unflushed chunks at the
// window limit). Zero on transports whose sends complete synchronously.
func (r *Recorder) AddCreditStall(d time.Duration) {
	if r == nil || d <= 0 {
		return
	}
	r.comm.creditStallNs.Add(int64(d))
}

// CountRetransmit records a transport-level retry (e.g. a mesh dial
// retry while peers launch).
func (r *Recorder) CountRetransmit() {
	if r == nil {
		return
	}
	r.comm.retransmits.Add(1)
}

// CountDeadline records an expired I/O deadline.
func (r *Recorder) CountDeadline() {
	if r == nil {
		return
	}
	r.comm.deadlineEvents.Add(1)
}

// CountChecksumError records a corrupted-frame event.
func (r *Recorder) CountChecksumError() {
	if r == nil {
		return
	}
	r.comm.checksumErrors.Add(1)
}

// Reset zeroes every counter (the level is kept).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.transforms.Store(0)
	for i := range r.stages {
		c := &r.stages[i]
		c.calls.Store(0)
		c.wallNs.Store(0)
		c.busyNs.Store(0)
		c.flops.Store(0)
		c.workers.Store(0)
	}
	r.comm.messages.Store(0)
	r.comm.bytes.Store(0)
	r.comm.alltoalls.Store(0)
	r.comm.alltoallBytes.Store(0)
	r.comm.retransmits.Store(0)
	r.comm.deadlineEvents.Store(0)
	r.comm.checksumErrors.Store(0)
	r.comm.parityBytes.Store(0)
	r.comm.recoveryBytes.Store(0)
	r.comm.reconstructions.Store(0)
	r.comm.degraded.Store(0)
	r.comm.streamChunks.Store(0)
	r.comm.hiddenExchangeNs.Store(0)
	r.comm.creditStallNs.Store(0)
}

// StageSnapshot is the point-in-time copy of one stage's counters.
type StageSnapshot struct {
	Stage   Stage
	Calls   int64
	Wall    time.Duration
	Busy    time.Duration
	Workers int64
	Flops   int64
}

// Occupancy is the worker utilization of the stage: busy time divided by
// wall time times the worker span (1.0 = every worker busy for the whole
// stage). Zero when timing was not recorded.
func (s StageSnapshot) Occupancy() float64 {
	if s.Wall <= 0 || s.Workers <= 0 {
		return 0
	}
	return float64(s.Busy) / (float64(s.Wall) * float64(s.Workers))
}

// GFlopsPerSec is the stage's achieved rate from the FLOP estimate and
// wall time (zero when timing was not recorded).
func (s StageSnapshot) GFlopsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Flops) / s.Wall.Seconds() / 1e9
}

// CommSnapshot is the point-in-time copy of the communication counters.
type CommSnapshot struct {
	Messages       int64
	Bytes          int64
	Alltoalls      int64
	AlltoallBytes  int64
	Retransmits    int64
	DeadlineEvents int64
	ChecksumErrors int64

	// ParityBytes is erasure parity payload shipped by coded exchanges.
	ParityBytes int64
	// RecoveryBytes is coded-mode control/repair payload (view masks,
	// share pooling, refills, takeovers).
	RecoveryBytes int64
	// Reconstructions counts erasure codewords rebuilt from parity.
	Reconstructions int64
	// DegradedTransforms counts transforms completed with reconstruction.
	DegradedTransforms int64

	// StreamChunks counts chunks shipped via the streamed all-to-all.
	StreamChunks int64
	// HiddenExchange is exchange wire time overlapped with compute and
	// excluded from the StageExchange wall timer.
	HiddenExchange time.Duration
	// CreditStall is time streamed sends spent blocked on a full
	// per-destination window — the adaptive-window signal.
	CreditStall time.Duration
}

// OverlapRatio is the fraction of total exchange time hidden behind
// compute: hidden / (hidden + visible StageExchange wall). Zero without
// timing or without streamed exchanges.
func (c CommSnapshot) OverlapRatio(exchangeWall time.Duration) float64 {
	total := c.HiddenExchange + exchangeWall
	if total <= 0 {
		return 0
	}
	return float64(c.HiddenExchange) / float64(total)
}

// Snapshot is a point-in-time copy of every counter.
type Snapshot struct {
	Level      Level
	Transforms int64
	Stages     [NumStages]StageSnapshot
	Comm       CommSnapshot
}

// Snapshot copies the counters (zero value for nil).
func (r *Recorder) Snapshot() Snapshot {
	var s Snapshot
	for i := range s.Stages {
		s.Stages[i].Stage = Stage(i)
	}
	if r == nil {
		return s
	}
	s.Level = Level(r.level.Load())
	s.Transforms = r.transforms.Load()
	for i := range r.stages {
		c := &r.stages[i]
		s.Stages[i] = StageSnapshot{
			Stage:   Stage(i),
			Calls:   c.calls.Load(),
			Wall:    time.Duration(c.wallNs.Load()),
			Busy:    time.Duration(c.busyNs.Load()),
			Workers: c.workers.Load(),
			Flops:   c.flops.Load(),
		}
	}
	s.Comm = CommSnapshot{
		Messages:           r.comm.messages.Load(),
		Bytes:              r.comm.bytes.Load(),
		Alltoalls:          r.comm.alltoalls.Load(),
		AlltoallBytes:      r.comm.alltoallBytes.Load(),
		Retransmits:        r.comm.retransmits.Load(),
		DeadlineEvents:     r.comm.deadlineEvents.Load(),
		ChecksumErrors:     r.comm.checksumErrors.Load(),
		ParityBytes:        r.comm.parityBytes.Load(),
		RecoveryBytes:      r.comm.recoveryBytes.Load(),
		Reconstructions:    r.comm.reconstructions.Load(),
		DegradedTransforms: r.comm.degraded.Load(),
		StreamChunks:       r.comm.streamChunks.Load(),
		HiddenExchange:     time.Duration(r.comm.hiddenExchangeNs.Load()),
		CreditStall:        time.Duration(r.comm.creditStallNs.Load()),
	}
	return s
}
