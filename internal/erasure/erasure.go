// Package erasure is a systematic Reed–Solomon k-of-n erasure codec
// over GF(2^8), the redundancy layer of the coded all-to-all exchange
// (internal/core RunDistributedCoded). A Code splits a payload into k
// equal-length data shares and derives m parity shares; any k of the
// k+m shares reconstruct every data share byte-for-byte.
//
// The codec operates on raw bytes. For the SOI exchange the shares are
// the byte images of []complex128 chunks (ComplexToBytes/BytesToComplex
// move the exact Float64bits patterns), so a reconstructed chunk is
// bit-identical to the lost original — the degraded spectrum equals the
// fault-free spectrum exactly, not approximately. This is why the code
// works over GF(2^8) rather than the reals: real-field erasure codes
// (Vandermonde over float64) would reconstruct only up to rounding.
//
// Construction: the generator is the k×k identity stacked on an m×k
// Cauchy matrix with disjoint index sets, so the code is MDS — every
// k×k submatrix of the generator is invertible, hence any k shares
// decode (the property the recovery protocol relies on when it pools
// whatever shares survived a rank death).
package erasure

import (
	"errors"
	"fmt"
	"math"
)

// Typed failures, matchable with errors.Is.
var (
	// ErrParams reports an impossible code shape (k < 1, m < 0, or
	// k+m > 256 — GF(2^8) has only 256 distinct evaluation points).
	ErrParams = errors.New("erasure: invalid code parameters")
	// ErrShardCount reports a share slice whose length is not k (Encode
	// data), m (Encode parity) or k+m (Reconstruct).
	ErrShardCount = errors.New("erasure: wrong number of shares")
	// ErrShardSize reports shares of inconsistent byte lengths.
	ErrShardSize = errors.New("erasure: share length mismatch")
	// ErrTooFewShares reports a reconstruction attempt with fewer than k
	// surviving shares — the loss exceeded the parity budget.
	ErrTooFewShares = errors.New("erasure: fewer than k shares survive")
)

// GF(2^8) arithmetic with the AES-adjacent primitive polynomial 0x11d
// (x^8+x^4+x^3+x^2+1), via log/exp tables. exp is doubled so products
// of logs never need a modulo.
var (
	expTbl [510]byte
	logTbl [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTbl[i] = byte(x)
		expTbl[i+255] = byte(x)
		logTbl[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
}

// gmul multiplies in GF(2^8).
func gmul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTbl[int(logTbl[a])+int(logTbl[b])]
}

// ginv inverts a nonzero element.
func ginv(a byte) byte {
	if a == 0 {
		panic("erasure: inverse of zero")
	}
	return expTbl[255-int(logTbl[a])]
}

// Code is a systematic (k+m, k) Reed–Solomon code. It is immutable and
// safe for concurrent use.
type Code struct {
	k, m int
	// gen holds the m parity rows of the generator (the top k rows are
	// the identity and are never materialized): parity share i is
	// Σ_j gen[i][j]·data[j] in GF(2^8), applied byte-wise.
	gen [][]byte
}

// New builds a code with k data shares and m parity shares. k must be
// at least 1, m at least 0, and k+m at most 256.
func New(k, m int) (*Code, error) {
	if k < 1 || m < 0 || k+m > 256 {
		return nil, fmt.Errorf("%w: k=%d m=%d", ErrParams, k, m)
	}
	c := &Code{k: k, m: m, gen: make([][]byte, m)}
	// Cauchy rows: gen[i][j] = 1/(x_i ⊕ y_j) with x_i = k+i, y_j = j.
	// The index sets are disjoint, so every entry is defined, and the
	// stacked [I; C] generator is MDS.
	for i := 0; i < m; i++ {
		row := make([]byte, k)
		for j := 0; j < k; j++ {
			row[j] = ginv(byte(k+i) ^ byte(j))
		}
		c.gen[i] = row
	}
	return c, nil
}

// K returns the data share count.
func (c *Code) K() int { return c.k }

// M returns the parity share count.
func (c *Code) M() int { return c.m }

// Encode fills the m parity shares from the k data shares. All data
// shares must have equal length; each parity slice must be pre-allocated
// to that same length (they are overwritten, not appended).
func (c *Code) Encode(data, parity [][]byte) error {
	if len(data) != c.k {
		return fmt.Errorf("%w: %d data shares, code has k=%d", ErrShardCount, len(data), c.k)
	}
	if len(parity) != c.m {
		return fmt.Errorf("%w: %d parity shares, code has m=%d", ErrShardCount, len(parity), c.m)
	}
	size := -1
	for _, d := range data {
		if size == -1 {
			size = len(d)
		} else if len(d) != size {
			return fmt.Errorf("%w: data shares of %d and %d bytes", ErrShardSize, size, len(d))
		}
	}
	for _, p := range parity {
		if len(p) != size {
			return fmt.Errorf("%w: parity share of %d bytes, data shares of %d", ErrShardSize, len(p), size)
		}
	}
	for i := 0; i < c.m; i++ {
		out := parity[i]
		for b := range out {
			out[b] = 0
		}
		for j := 0; j < c.k; j++ {
			g := c.gen[i][j]
			if g == 0 {
				continue
			}
			src := data[j]
			for b, v := range src {
				out[b] ^= gmul(g, v)
			}
		}
	}
	return nil
}

// Reconstruct rebuilds the missing data shares in place. shares must
// have length k+m, indexed share order (data 0..k-1, parity k..k+m-1);
// nil entries are the erasures. On success every data entry (index < k)
// is non-nil and bit-identical to the original; surviving parity
// entries are left untouched and missing parity is not regenerated.
// With fewer than k surviving shares it returns ErrTooFewShares.
func (c *Code) Reconstruct(shares [][]byte) error {
	if len(shares) != c.k+c.m {
		return fmt.Errorf("%w: %d shares, code has n=%d", ErrShardCount, len(shares), c.k+c.m)
	}
	size := -1
	present := make([]int, 0, c.k)
	missing := make([]int, 0, c.k)
	for idx, s := range shares {
		if s == nil {
			if idx < c.k {
				missing = append(missing, idx)
			}
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("%w: shares of %d and %d bytes", ErrShardSize, size, len(s))
		}
		if len(present) < c.k {
			present = append(present, idx)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if len(present) < c.k {
		return fmt.Errorf("%w: %d of %d needed", ErrTooFewShares, len(present), c.k)
	}
	// Solve A·data = s for the chosen k survivors: A's row for a data
	// share is a unit row, for a parity share the Cauchy row. Any such
	// A is invertible (MDS), so inversion failing is a codec bug.
	a := make([][]byte, c.k)
	for r, idx := range present {
		row := make([]byte, c.k)
		if idx < c.k {
			row[idx] = 1
		} else {
			copy(row, c.gen[idx-c.k])
		}
		a[r] = row
	}
	inv, err := invertMatrix(a)
	if err != nil {
		return err
	}
	// Missing data share j is row j of inv times the survivor vector.
	for _, j := range missing {
		out := make([]byte, size)
		for t := 0; t < c.k; t++ {
			g := inv[j][t]
			if g == 0 {
				continue
			}
			src := shares[present[t]]
			for b, v := range src {
				out[b] ^= gmul(g, v)
			}
		}
		shares[j] = out
	}
	return nil
}

// invertMatrix inverts a k×k matrix over GF(2^8) by Gauss–Jordan
// elimination (the matrix is clobbered).
func invertMatrix(a [][]byte) ([][]byte, error) {
	k := len(a)
	inv := make([][]byte, k)
	for i := range inv {
		inv[i] = make([]byte, k)
		inv[i][i] = 1
	}
	for col := 0; col < k; col++ {
		// Pivot: find a row at or below col with a nonzero entry.
		pivot := -1
		for r := col; r < k; r++ {
			if a[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, fmt.Errorf("%w: singular decode matrix (codec bug)", ErrTooFewShares)
		}
		a[col], a[pivot] = a[pivot], a[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		// Scale the pivot row to 1.
		if p := a[col][col]; p != 1 {
			pi := ginv(p)
			for j := 0; j < k; j++ {
				a[col][j] = gmul(a[col][j], pi)
				inv[col][j] = gmul(inv[col][j], pi)
			}
		}
		// Eliminate the column everywhere else.
		for r := 0; r < k; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col]
			for j := 0; j < k; j++ {
				a[r][j] ^= gmul(f, a[col][j])
				inv[r][j] ^= gmul(f, inv[col][j])
			}
		}
	}
	return inv, nil
}

// ComplexToBytes appends the little-endian Float64bits image of src to
// dst and returns it (16 bytes per element, real then imaginary). The
// mapping is bijective on bit patterns — NaN payloads and signed zeros
// survive — so encode→decode over any channel that preserves bytes is
// the identity on complex128 values.
func ComplexToBytes(dst []byte, src []complex128) []byte {
	for _, v := range src {
		re := math.Float64bits(real(v))
		im := math.Float64bits(imag(v))
		dst = append(dst,
			byte(re), byte(re>>8), byte(re>>16), byte(re>>24),
			byte(re>>32), byte(re>>40), byte(re>>48), byte(re>>56),
			byte(im), byte(im>>8), byte(im>>16), byte(im>>24),
			byte(im>>32), byte(im>>40), byte(im>>48), byte(im>>56))
	}
	return dst
}

// BytesToComplex is the inverse of ComplexToBytes. len(src) must be a
// multiple of 16; the result holds len(src)/16 elements.
func BytesToComplex(dst []complex128, src []byte) ([]complex128, error) {
	if len(src)%16 != 0 {
		return nil, fmt.Errorf("%w: %d bytes is not a whole number of complex128", ErrShardSize, len(src))
	}
	for off := 0; off < len(src); off += 16 {
		re := uint64(src[off]) | uint64(src[off+1])<<8 | uint64(src[off+2])<<16 | uint64(src[off+3])<<24 |
			uint64(src[off+4])<<32 | uint64(src[off+5])<<40 | uint64(src[off+6])<<48 | uint64(src[off+7])<<56
		im := uint64(src[off+8]) | uint64(src[off+9])<<8 | uint64(src[off+10])<<16 | uint64(src[off+11])<<24 |
			uint64(src[off+12])<<32 | uint64(src[off+13])<<40 | uint64(src[off+14])<<48 | uint64(src[off+15])<<56
		dst = append(dst, complex(math.Float64frombits(re), math.Float64frombits(im)))
	}
	return dst, nil
}
