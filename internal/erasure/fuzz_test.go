package erasure

import (
	"bytes"
	"math/rand"
	"testing"
)

// FuzzErasureRoundtrip drives the codec with arbitrary shapes and
// erasure patterns: every call must either reconstruct the data shares
// bit-exactly or return one of the package's typed errors — never
// panic, never return a wrong answer silently.
func FuzzErasureRoundtrip(f *testing.F) {
	f.Add(int64(1), 4, 1, 64, uint64(0b1))
	f.Add(int64(2), 4, 2, 16, uint64(0b101))
	f.Add(int64(3), 1, 0, 1, uint64(0))
	f.Add(int64(4), 8, 3, 240, uint64(0b10010001))
	f.Add(int64(5), 0, -1, 7, uint64(^uint64(0)))
	f.Add(int64(6), 300, 5, 3, uint64(0b11))
	f.Fuzz(func(t *testing.T, seed int64, k, m, size int, eraseMask uint64) {
		c, err := New(k, m)
		if err != nil {
			return // typed rejection of the shape is a valid outcome
		}
		if size < 0 {
			size = -size
		}
		size %= 1 << 12

		rng := rand.New(rand.NewSource(seed))
		data := make([][]byte, k)
		for i := range data {
			data[i] = make([]byte, size)
			rng.Read(data[i])
		}
		orig := make([][]byte, k)
		for i := range orig {
			orig[i] = append([]byte(nil), data[i]...)
		}
		parity := make([][]byte, m)
		for i := range parity {
			parity[i] = make([]byte, size)
		}
		if err := c.Encode(data, parity); err != nil {
			t.Fatalf("encode of well-formed shares failed: %v", err)
		}

		shares := make([][]byte, k+m)
		copy(shares, data)
		copy(shares[k:], parity)
		erased := 0
		for i := range shares {
			if eraseMask&(1<<(uint(i)%64)) != 0 {
				shares[i] = nil
				erased++
			}
		}

		err = c.Reconstruct(shares)
		if k+m-erased < k {
			if err == nil {
				t.Fatalf("k=%d m=%d erased=%d: reconstruct succeeded past the parity budget", k, m, erased)
			}
			return
		}
		if err != nil {
			t.Fatalf("k=%d m=%d erased=%d: %v", k, m, erased, err)
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(shares[i], orig[i]) {
				t.Fatalf("k=%d m=%d erased=%d: data share %d not bit-exact", k, m, erased, i)
			}
		}
	})
}
