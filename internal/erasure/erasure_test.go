package erasure

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func randomShares(rng *rand.Rand, k, size int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
		rng.Read(data[i])
	}
	return data
}

func encodeAll(t *testing.T, c *Code, data [][]byte, size int) [][]byte {
	t.Helper()
	parity := make([][]byte, c.M())
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	if err := c.Encode(data, parity); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return parity
}

// TestGFArithmetic pins the field axioms the tables must satisfy.
func TestGFArithmetic(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := gmul(byte(a), ginv(byte(a))); got != 1 {
			t.Fatalf("a·a⁻¹ = %d for a=%d", got, a)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gmul(a, b) != gmul(b, a) {
			t.Fatalf("gmul not commutative at %d,%d", a, b)
		}
		if gmul(a, gmul(b, c)) != gmul(gmul(a, b), c) {
			t.Fatalf("gmul not associative at %d,%d,%d", a, b, c)
		}
		if gmul(a, b^c) != gmul(a, b)^gmul(a, c) {
			t.Fatalf("gmul not distributive at %d,%d,%d", a, b, c)
		}
	}
}

// TestReconstructEveryErasurePattern exhausts all erasure patterns of
// weight ≤ m for a small code: every one must reconstruct bit-exactly
// (the MDS property, which the coded exchange's "any k shares decode"
// recovery depends on).
func TestReconstructEveryErasurePattern(t *testing.T) {
	const k, m, size = 5, 3, 64
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	data := randomShares(rng, k, size)
	parity := encodeAll(t, c, data, size)

	n := k + m
	for mask := 0; mask < 1<<n; mask++ {
		erased := 0
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				erased++
			}
		}
		if erased > m {
			continue
		}
		shares := make([][]byte, n)
		for i := 0; i < k; i++ {
			if mask&(1<<i) == 0 {
				shares[i] = data[i]
			}
		}
		for i := 0; i < m; i++ {
			if mask&(1<<(k+i)) == 0 {
				shares[k+i] = parity[i]
			}
		}
		if err := c.Reconstruct(shares); err != nil {
			t.Fatalf("mask %#x: %v", mask, err)
		}
		for i := 0; i < k; i++ {
			if !bytes.Equal(shares[i], data[i]) {
				t.Fatalf("mask %#x: share %d reconstructed wrong", mask, i)
			}
		}
	}
}

// TestReconstructBeyondBudgetFailsTyped: losing more than m shares must
// yield ErrTooFewShares, never a wrong answer.
func TestReconstructBeyondBudgetFailsTyped(t *testing.T) {
	const k, m, size = 4, 1, 32
	c, err := New(k, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	data := randomShares(rng, k, size)
	parity := encodeAll(t, c, data, size)
	shares := [][]byte{nil, nil, data[2], data[3], parity[0]} // 2 erased, m=1
	if err := c.Reconstruct(shares); !errors.Is(err, ErrTooFewShares) {
		t.Fatalf("got %v, want ErrTooFewShares", err)
	}
}

// TestParamAndShapeErrors: every malformed input is a typed error.
func TestParamAndShapeErrors(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {-1, 0}, {200, 100}, {1, -1}} {
		if _, err := New(bad[0], bad[1]); !errors.Is(err, ErrParams) {
			t.Errorf("New(%d,%d) = %v, want ErrParams", bad[0], bad[1], err)
		}
	}
	c, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	data := [][]byte{make([]byte, 8), make([]byte, 8), make([]byte, 9)}
	parity := [][]byte{make([]byte, 8), make([]byte, 8)}
	if err := c.Encode(data, parity); !errors.Is(err, ErrShardSize) {
		t.Errorf("ragged data: %v, want ErrShardSize", err)
	}
	if err := c.Encode(data[:2], parity); !errors.Is(err, ErrShardCount) {
		t.Errorf("short data: %v, want ErrShardCount", err)
	}
	if err := c.Reconstruct(make([][]byte, 4)); !errors.Is(err, ErrShardCount) {
		t.Errorf("short shares: %v, want ErrShardCount", err)
	}
	if err := c.Reconstruct([][]byte{make([]byte, 4), make([]byte, 5), nil, nil, nil}); !errors.Is(err, ErrShardSize) {
		t.Errorf("ragged shares: %v, want ErrShardSize", err)
	}
}

// TestComplexBytesRoundtrip: the byte image is bijective on bit
// patterns, including NaN payloads, infinities and signed zeros.
func TestComplexBytesRoundtrip(t *testing.T) {
	vals := []complex128{
		0, complex(1, -1), complex(math.Inf(1), math.Inf(-1)),
		complex(math.NaN(), 0),
		complex(math.Float64frombits(0x7ff8dead_beef0001), math.Copysign(0, -1)),
		complex(math.SmallestNonzeroFloat64, -math.MaxFloat64),
	}
	raw := ComplexToBytes(nil, vals)
	if len(raw) != 16*len(vals) {
		t.Fatalf("byte image is %d bytes, want %d", len(raw), 16*len(vals))
	}
	back, err := BytesToComplex(nil, raw)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		wr, wi := math.Float64bits(real(vals[i])), math.Float64bits(imag(vals[i]))
		gr, gi := math.Float64bits(real(back[i])), math.Float64bits(imag(back[i]))
		if wr != gr || wi != gi {
			t.Errorf("element %d: bits %x/%x, want %x/%x", i, gr, gi, wr, wi)
		}
	}
	if _, err := BytesToComplex(nil, raw[:17]); !errors.Is(err, ErrShardSize) {
		t.Errorf("odd byte count: %v, want ErrShardSize", err)
	}
}

// TestReconstructRecoversComplexChunks is the end-to-end shape the
// coded exchange uses: R chunks of complex128, m parity, lose m shares,
// decode, and demand bit-identical chunks.
func TestReconstructRecoversComplexChunks(t *testing.T) {
	const r, m, chunk = 4, 2, 24
	c, err := New(r, m)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	orig := make([][]complex128, r)
	data := make([][]byte, r)
	for i := range orig {
		orig[i] = make([]complex128, chunk)
		for j := range orig[i] {
			orig[i][j] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		data[i] = ComplexToBytes(nil, orig[i])
	}
	parity := encodeAll(t, c, data, 16*chunk)
	shares := make([][]byte, r+m)
	copy(shares, data)
	copy(shares[r:], parity)
	shares[0], shares[2] = nil, nil // two dead ranks, m=2
	if err := c.Reconstruct(shares); err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 2} {
		got, err := BytesToComplex(nil, shares[idx])
		if err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != orig[idx][j] {
				t.Fatalf("chunk %d element %d: %v != %v", idx, j, got[j], orig[idx][j])
			}
		}
	}
}
