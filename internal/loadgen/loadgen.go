// Package loadgen drives a soiserve or soigate endpoint with an
// open-loop workload: Poisson arrivals at a configured rate, a weighted
// mix of plan shapes, an in-flight cap that drops (never queues) excess
// arrivals so the arrival process stays open-loop, and an SLO report
// with latency percentiles, per-status counts and achieved throughput.
//
// Open-loop matters for capacity measurement: a closed-loop driver
// slows down with the system under test and hides saturation, while an
// open-loop one keeps offering load and exposes it as rejections,
// drops and latency growth.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"soifft"
	"soifft/client"
	"soifft/internal/serve"
	"soifft/internal/signal"
)

// Spec names one plan shape in the workload mix.
type Spec struct {
	N        int     `json:"n"`
	Segments int     `json:"segments,omitempty"` // 0 = server default
	Mu       int     `json:"mu,omitempty"`       // 0,0 = server default
	Nu       int     `json:"nu,omitempty"`
	Taps     int     `json:"taps,omitempty"`     // 0 = server default
	Accuracy int     `json:"accuracy,omitempty"` // <0 = off
	Weight   float64 `json:"weight"`             // relative arrival share (default 1)
}

func (s Spec) String() string {
	return fmt.Sprintf("n=%d p=%d b=%d acc=%d", s.N, s.Segments, s.Taps, s.Accuracy)
}

func (s Spec) options() *client.Options {
	o := &client.Options{Segments: s.Segments, Mu: s.Mu, Nu: s.Nu, Taps: s.Taps}
	if s.Accuracy >= 0 {
		o.Accuracy = soifft.Accuracy(s.Accuracy)
		o.UseAccuracy = true
	}
	return o
}

// Config tunes one load-generation run.
type Config struct {
	// Addr is the endpoint under test (a soiserve replica or a soigate
	// front end — same protocol either way).
	Addr string
	// Rate is the Poisson arrival rate in requests/second.
	Rate float64
	// Duration bounds arrival generation; in-flight requests then drain.
	Duration time.Duration
	// MaxInflight caps concurrent outstanding requests; arrivals beyond
	// it are counted as dropped, preserving the open loop (default 64).
	MaxInflight int
	// Mix is the weighted plan mix (empty = one default-plan spec of
	// n=4096).
	Mix []Spec
	// Seed makes the arrival process and mix draws reproducible.
	Seed int64
	// RequestTimeout bounds each request round trip (default 30s).
	RequestTimeout time.Duration
	// BitCheck verifies every response bit-for-bit against a locally
	// computed reference spectrum for its spec (each spec sends one
	// fixed seeded input, so the reference is computed once).
	BitCheck bool
	// Warmup, when positive, sends one request per spec sequentially
	// before the clock starts, so plan construction on cold replicas is
	// excluded from the measured window.
	Warmup bool
}

// Percentiles summarizes a latency population.
type Percentiles struct {
	P50  time.Duration `json:"p50_ns"`
	P90  time.Duration `json:"p90_ns"`
	P99  time.Duration `json:"p99_ns"`
	Max  time.Duration `json:"max_ns"`
	Mean time.Duration `json:"mean_ns"`
}

// Result is one run's SLO report.
type Result struct {
	Addr         string        `json:"addr"`
	Rate         float64       `json:"offered_rate"`
	Elapsed      time.Duration `json:"elapsed_ns"`
	Offered      int           `json:"offered"`   // arrivals generated
	Sent         int           `json:"sent"`      // requests actually issued
	Dropped      int           `json:"dropped"`   // arrivals over the in-flight cap
	OK           int           `json:"ok"`        // StatusOK responses
	Rejected     int           `json:"rejected"`  // typed backpressure (overloaded/draining)
	Failed       int           `json:"failed"`    // transport or non-backpressure errors
	Corrupted    int           `json:"corrupted"` // BitCheck mismatches
	ThroughputOK float64       `json:"throughput_ok_rps"`
	Latency      Percentiles   `json:"latency"`
	Mix          []Spec        `json:"mix"`
}

// String renders the report as a compact human-readable block.
func (r *Result) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "loadgen: %s  offered %.0f rps for %v\n", r.Addr, r.Rate, r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  offered %d  sent %d  dropped %d\n", r.Offered, r.Sent, r.Dropped)
	fmt.Fprintf(&b, "  ok %d  rejected %d  failed %d  corrupted %d\n", r.OK, r.Rejected, r.Failed, r.Corrupted)
	fmt.Fprintf(&b, "  throughput %.1f ok/s\n", r.ThroughputOK)
	fmt.Fprintf(&b, "  latency p50 %v  p90 %v  p99 %v  max %v  mean %v\n",
		r.Latency.P50.Round(time.Microsecond), r.Latency.P90.Round(time.Microsecond),
		r.Latency.P99.Round(time.Microsecond), r.Latency.Max.Round(time.Microsecond),
		r.Latency.Mean.Round(time.Microsecond))
	return b.String()
}

// WriteJSON emits the report as indented JSON (the CI artifact format).
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// runner carries one run's shared state.
type runner struct {
	cfg  Config
	refs map[int][]complex128 // spec index -> reference spectrum (BitCheck)
	ins  map[int][]complex128 // spec index -> fixed input signal

	mu        sync.Mutex
	free      []*client.Client // idle connections, reused LIFO
	latencies []time.Duration
	ok        int
	rejected  int
	failed    int
	corrupted int
	sent      int
}

// Run executes one load-generation run. Context cancellation stops
// arrival generation early; in-flight requests still drain into the
// report.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: rate must be positive, got %g", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be positive, got %v", cfg.Duration)
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if len(cfg.Mix) == 0 {
		cfg.Mix = []Spec{{N: 4096, Accuracy: -1, Weight: 1}}
	}
	for i := range cfg.Mix {
		if cfg.Mix[i].Weight <= 0 {
			cfg.Mix[i].Weight = 1
		}
	}

	r := &runner{cfg: cfg, refs: map[int][]complex128{}, ins: map[int][]complex128{}}
	for i, sp := range cfg.Mix {
		r.ins[i] = signal.Random(sp.N, cfg.Seed+int64(i))
		if cfg.BitCheck {
			ref, err := localReference(sp, r.ins[i])
			if err != nil {
				return nil, fmt.Errorf("loadgen: reference for %s: %w", sp, err)
			}
			r.refs[i] = ref
		}
	}
	if cfg.Warmup {
		for i := range cfg.Mix {
			if err := r.fire(i); err != nil {
				return nil, fmt.Errorf("loadgen: warmup %s: %w", cfg.Mix[i], err)
			}
		}
		// Warmup flows through the same counters; reset for the window.
		r.mu.Lock()
		r.latencies, r.ok, r.rejected, r.failed, r.corrupted, r.sent = nil, 0, 0, 0, 0, 0
		r.mu.Unlock()
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	var wg sync.WaitGroup
	inflight := make(chan struct{}, cfg.MaxInflight)
	offered, dropped := 0, 0
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	next := start
	for next.Before(deadline) && ctx.Err() == nil {
		// Exponential inter-arrival: the Poisson process.
		next = next.Add(time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second)))
		if d := time.Until(next); d > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(d):
			}
		}
		if !next.Before(deadline) || ctx.Err() != nil {
			break
		}
		offered++
		spec := pickWeighted(rng, cfg.Mix)
		select {
		case inflight <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-inflight }()
				_ = r.fire(i)
			}(spec)
		default:
			dropped++
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.free {
		_ = c.Close()
	}
	res := &Result{
		Addr: cfg.Addr, Rate: cfg.Rate, Elapsed: elapsed,
		Offered: offered, Sent: r.sent, Dropped: dropped,
		OK: r.ok, Rejected: r.rejected, Failed: r.failed, Corrupted: r.corrupted,
		ThroughputOK: float64(r.ok) / elapsed.Seconds(),
		Latency:      percentiles(r.latencies),
		Mix:          cfg.Mix,
	}
	return res, nil
}

// fire issues one request for mix spec i on a pooled connection.
func (r *runner) fire(i int) error {
	c, err := r.takeClient()
	if err != nil {
		r.mu.Lock()
		r.sent++
		r.failed++
		r.mu.Unlock()
		return err
	}
	spec := r.cfg.Mix[i]
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.RequestTimeout)
	start := time.Now()
	got, err := c.TransformContext(ctx, r.ins[i], spec.options())
	lat := time.Since(start)
	cancel()

	r.mu.Lock()
	defer r.mu.Unlock()
	r.sent++
	if err != nil {
		var se *serve.ServerError
		if errors.As(err, &se) && se.Temporary() {
			r.rejected++
			r.free = append(r.free, c) // typed rejection: the connection is fine
		} else {
			r.failed++
			_ = c.Close() // transport-level: the connection is latched broken
		}
		return err
	}
	r.ok++
	r.latencies = append(r.latencies, lat)
	if ref := r.refs[i]; ref != nil && !bitEqual(got, ref) {
		r.corrupted++
	}
	r.free = append(r.free, c)
	return nil
}

func (r *runner) takeClient() (*client.Client, error) {
	r.mu.Lock()
	if n := len(r.free); n > 0 {
		c := r.free[n-1]
		r.free = r.free[:n-1]
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()
	return client.DialTimeout(r.cfg.Addr, 5*time.Second)
}

// localReference computes the spec's expected spectrum with the same
// plan parameters the server resolves, so a correct replica's answer is
// bit-identical (the pipeline is deterministic).
func localReference(sp Spec, in []complex128) ([]complex128, error) {
	var opts []soifft.Option
	if sp.Segments > 0 {
		opts = append(opts, soifft.WithSegments(sp.Segments))
	}
	if sp.Mu > 0 && sp.Nu > 0 {
		opts = append(opts, soifft.WithOversampling(sp.Mu, sp.Nu))
	}
	if sp.Accuracy >= 0 {
		opts = append(opts, soifft.WithAccuracy(soifft.Accuracy(sp.Accuracy)))
	} else if sp.Taps > 0 {
		opts = append(opts, soifft.WithTaps(sp.Taps))
	}
	plan, err := soifft.NewPlan(sp.N, opts...)
	if err != nil {
		return nil, err
	}
	out := make([]complex128, sp.N)
	if err := plan.Transform(out, in); err != nil {
		return nil, err
	}
	return out, nil
}

func bitEqual(a, b []complex128) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(real(a[i])) != math.Float64bits(real(b[i])) ||
			math.Float64bits(imag(a[i])) != math.Float64bits(imag(b[i])) {
			return false
		}
	}
	return true
}

func pickWeighted(rng *rand.Rand, mix []Spec) int {
	total := 0.0
	for _, sp := range mix {
		total += sp.Weight
	}
	x := rng.Float64() * total
	for i, sp := range mix {
		x -= sp.Weight
		if x < 0 {
			return i
		}
	}
	return len(mix) - 1
}

// percentiles computes the report quantiles (nearest-rank).
func percentiles(lats []time.Duration) Percentiles {
	if len(lats) == 0 {
		return Percentiles{}
	}
	s := make([]time.Duration, len(lats))
	copy(s, lats)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	at := func(q float64) time.Duration {
		i := int(math.Ceil(q*float64(len(s)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	var sum time.Duration
	for _, d := range s {
		sum += d
	}
	return Percentiles{
		P50:  at(0.50),
		P90:  at(0.90),
		P99:  at(0.99),
		Max:  s[len(s)-1],
		Mean: sum / time.Duration(len(s)),
	}
}
