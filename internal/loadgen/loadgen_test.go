package loadgen

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestPercentilesNearestRank pins the quantile convention on a known
// population: 1..100ms, where nearest-rank pN is exactly N ms.
func TestPercentilesNearestRank(t *testing.T) {
	var lats []time.Duration
	for i := 100; i >= 1; i-- { // unsorted on purpose
		lats = append(lats, time.Duration(i)*time.Millisecond)
	}
	p := percentiles(lats)
	want := Percentiles{
		P50:  50 * time.Millisecond,
		P90:  90 * time.Millisecond,
		P99:  99 * time.Millisecond,
		Max:  100 * time.Millisecond,
		Mean: 50*time.Millisecond + 500*time.Microsecond,
	}
	if p != want {
		t.Errorf("percentiles = %+v, want %+v", p, want)
	}
	if z := percentiles(nil); z != (Percentiles{}) {
		t.Errorf("empty population gave %+v, want zero", z)
	}
	one := percentiles([]time.Duration{7 * time.Millisecond})
	if one.P50 != 7*time.Millisecond || one.P99 != 7*time.Millisecond || one.Max != 7*time.Millisecond {
		t.Errorf("single-sample percentiles = %+v", one)
	}
}

// TestPickWeightedProportions draws many specs and checks the empirical
// shares track the configured weights.
func TestPickWeightedProportions(t *testing.T) {
	mix := []Spec{
		{N: 1024, Weight: 1},
		{N: 2048, Weight: 3},
		{N: 4096, Weight: 6},
	}
	rng := rand.New(rand.NewSource(1))
	const draws = 30000
	counts := make([]int, len(mix))
	for i := 0; i < draws; i++ {
		counts[pickWeighted(rng, mix)]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.02 {
			t.Errorf("spec %d drawn with share %.3f, want %.3f±0.02", i, got, want)
		}
	}
}

// TestBitEqual checks the corruption detector is exact: equal bits
// pass, a one-ulp perturbation or length mismatch fails.
func TestBitEqual(t *testing.T) {
	a := []complex128{complex(1.5, -2.25), complex(0, 3)}
	b := append([]complex128(nil), a...)
	if !bitEqual(a, b) {
		t.Error("identical slices reported unequal")
	}
	b[1] = complex(real(b[1]), math.Nextafter(imag(b[1]), 4))
	if bitEqual(a, b) {
		t.Error("one-ulp perturbation went undetected")
	}
	if bitEqual(a, a[:1]) {
		t.Error("length mismatch went undetected")
	}
}

// TestLocalReferenceMatchesSpecOptions checks the reference path and a
// direct plan agree for a non-default spec (same option resolution).
func TestLocalReferenceMatchesSpecOptions(t *testing.T) {
	sp := Spec{N: 256, Segments: 8, Taps: 24, Accuracy: -1}
	in := make([]complex128, sp.N)
	for i := range in {
		in[i] = complex(math.Sin(float64(i)), math.Cos(float64(2*i)))
	}
	ref, err := localReference(sp, in)
	if err != nil {
		t.Fatal(err)
	}
	again, err := localReference(sp, in)
	if err != nil {
		t.Fatal(err)
	}
	if !bitEqual(ref, again) {
		t.Error("reference spectrum is not deterministic")
	}
	if len(ref) != sp.N {
		t.Errorf("reference has %d points, want %d", len(ref), sp.N)
	}
}

// TestRunRejectsBadConfig checks the config validation errors.
func TestRunRejectsBadConfig(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{Rate: 0, Duration: time.Second}); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Run(ctx, Config{Rate: 10, Duration: 0}); err == nil {
		t.Error("zero duration accepted")
	}
}
