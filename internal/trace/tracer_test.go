package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestNewIDNonZeroAndDistinct(t *testing.T) {
	seen := map[ID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID()
		if id == 0 {
			t.Fatal("NewID returned zero")
		}
		if seen[id] {
			t.Fatalf("NewID repeated %v after %d draws", id, i)
		}
		seen[id] = true
	}
	if got := ID(0xabc).String(); got != "0000000000000abc" {
		t.Fatalf("ID.String = %q, want zero-padded hex", got)
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Begin(1, 0, "x")
	tr.End(1, 0, "x")
	tr.Instant(1, 0, "x")
	tr.Counter(1, 0, "x", 7)
	tr.Span(1, 0, "x")()
	tr.Sync(1, 0)
	tr.SetFlightDir("/nope")
	if path, err := tr.Fault(1, 0, "boom"); path != "" || err != nil {
		t.Fatalf("nil Fault = (%q, %v), want no-op", path, err)
	}
	if tr.Snapshot() != nil || tr.Len() != 0 || tr.FlightDumps() != 0 {
		t.Fatal("nil tracer retained state")
	}
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatalf("nil WritePerfetto: %v", err)
	}
}

func TestRingWrapKeepsNewestEvents(t *testing.T) {
	tr := New(8)
	for i := 0; i < 20; i++ {
		tr.Counter(1, 0, "tick", int64(i))
	}
	events := tr.Snapshot()
	if len(events) != 8 {
		t.Fatalf("snapshot holds %d events, want ring capacity 8", len(events))
	}
	for i, ev := range events {
		want := int64(12 + i) // the 8 newest of 20, oldest first
		if ev.Arg != want {
			t.Fatalf("event %d has arg %d, want %d", i, ev.Arg, want)
		}
	}
	if tr.Len() != 20 {
		t.Fatalf("Len = %d, want total emitted 20", tr.Len())
	}
}

func TestSnapshotOrderAndFields(t *testing.T) {
	tr := New(64)
	id := NewID()
	tr.Begin(id, 3, "halo")
	tr.End(id, 3, "halo")
	tr.Instant(id, 3, "mark")
	tr.Counter(id, 3, "queue_depth", 42)
	ev := tr.Snapshot()
	if len(ev) != 4 {
		t.Fatalf("got %d events, want 4", len(ev))
	}
	kinds := []Kind{KindBegin, KindEnd, KindInstant, KindCounter}
	for i, e := range ev {
		if e.Kind != kinds[i] {
			t.Fatalf("event %d kind %d, want %d", i, e.Kind, kinds[i])
		}
		if e.Trace != id || e.Rank != 3 {
			t.Fatalf("event %d = %+v, want trace %v rank 3", i, e, id)
		}
		if i > 0 && e.TS < ev[i-1].TS {
			t.Fatalf("timestamps not monotonic: %d after %d", e.TS, ev[i-1].TS)
		}
	}
	if ev[3].Name != "queue_depth" || ev[3].Arg != 42 {
		t.Fatalf("counter event = %+v", ev[3])
	}
}

func TestConcurrentEmitAndSnapshot(t *testing.T) {
	tr := New(256)
	var emitters sync.WaitGroup
	for g := 0; g < 4; g++ {
		emitters.Add(1)
		go func(g int) {
			defer emitters.Done()
			id := NewID()
			for i := 0; i < 5000; i++ {
				end := tr.Span(id, g, "work")
				tr.Counter(id, g, "i", int64(i))
				end()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() { emitters.Wait(); close(done) }()
	// Snapshot continuously while the emitters hammer the ring; every
	// surfaced event must be fully formed, never torn.
	for {
		for _, ev := range tr.Snapshot() {
			if ev.Kind < KindBegin || ev.Kind > KindCounter {
				t.Fatalf("snapshot surfaced invalid kind %d", ev.Kind)
			}
			if ev.Name != "work" && ev.Name != "i" {
				t.Fatalf("snapshot surfaced torn name %q", ev.Name)
			}
		}
		select {
		case <-done:
			return
		default:
		}
	}
}

// perfettoDoc mirrors the export schema for decoding in tests.
type perfettoDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   float64        `json:"ts"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestPerfettoExportDecodesAndNests(t *testing.T) {
	tr := New(1024)
	id := NewID()
	for rank := 0; rank < 2; rank++ {
		tr.Begin(id, rank, "convolve")
		tr.Begin(id, rank, "segment_fft") // nested on its own track
		tr.End(id, rank, "segment_fft")
		tr.End(id, rank, "convolve")
		tr.Instant(id, rank, "mark")
	}
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	var doc perfettoDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	type track struct{ pid, tid int }
	depth := map[track]int{}
	lastTS := map[track]float64{}
	procNames := map[int]bool{}
	var spans, instants int
	for _, ev := range doc.TraceEvents {
		k := track{ev.PID, ev.TID}
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				procNames[ev.PID] = true
			}
			continue
		case "B":
			depth[k]++
			spans++
			if got := ev.Args["trace"]; got != id.String() {
				t.Fatalf("begin event carries trace %v, want %v", got, id.String())
			}
		case "E":
			depth[k]--
			if depth[k] < 0 {
				t.Fatalf("track %+v closes a span that never opened", k)
			}
		case "i":
			instants++
		}
		if ev.TS < lastTS[k] {
			t.Fatalf("track %+v timestamps go backwards: %v after %v", k, ev.TS, lastTS[k])
		}
		lastTS[k] = ev.TS
	}
	for k, d := range depth {
		if d != 0 {
			t.Fatalf("track %+v left %d spans open", k, d)
		}
	}
	if spans != 4 || instants != 2 {
		t.Fatalf("exported %d begins and %d instants, want 4 and 2", spans, instants)
	}
	if !procNames[1] || !procNames[2] {
		t.Fatalf("missing process_name metadata for ranks: %v", procNames)
	}
}

func TestMergeRebasesOnSyncInstant(t *testing.T) {
	mk := func(pid int, sync, spanAt float64) string {
		doc := map[string]any{
			"displayTimeUnit": "ns",
			"traceEvents": []map[string]any{
				{"name": "process_name", "ph": "M", "pid": pid, "tid": 0, "args": map[string]any{"name": "rank"}},
				{"name": syncName, "ph": "i", "ts": sync, "pid": pid, "tid": 1, "s": "t"},
				{"name": "exchange", "ph": "B", "ts": spanAt, "pid": pid, "tid": 1},
				{"name": "exchange", "ph": "E", "ts": spanAt + 10, "pid": pid, "tid": 1},
			},
		}
		b, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	// Rank 0's clock started 200µs before rank 1's: same instants, offset
	// timestamps. After merge both exchange spans must coincide.
	a := mk(1, 100, 150)
	b := mk(2, 300, 350)

	var out bytes.Buffer
	if err := Merge(&out, strings.NewReader(a), strings.NewReader(b)); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	var doc perfettoDoc
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("merged output is not valid JSON: %v", err)
	}
	begins := map[int]float64{}
	tids := map[int]map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "B" && ev.Name == "exchange" {
			begins[ev.PID] = ev.TS
		}
		if ev.Ph != "M" {
			if tids[ev.PID] == nil {
				tids[ev.PID] = map[int]bool{}
			}
			tids[ev.PID][ev.TID] = true
		}
	}
	if len(begins) != 2 {
		t.Fatalf("merged file has exchange begins for %d pids, want 2", len(begins))
	}
	if begins[1] != begins[2] {
		t.Fatalf("sync re-base failed: rank clocks at %v vs %v after merge", begins[1], begins[2])
	}
	// Tracks from different files must land on distinct merged tids.
	for pid, set := range tids {
		for tid := range set {
			for otherPid, otherSet := range tids {
				if otherPid != pid && otherSet[tid] {
					t.Fatalf("tid %d shared between pid %d and %d after merge", tid, pid, otherPid)
				}
			}
		}
	}
}

func TestFlightDumpOnFaultAndRateLimit(t *testing.T) {
	dir := t.TempDir()
	tr := New(128)
	tr.SetFlightDir(dir)
	id := NewID()
	tr.Begin(id, 0, "exchange")
	tr.End(id, 0, "exchange")

	path, err := tr.Fault(id, 0, "checksum")
	if err != nil {
		t.Fatalf("Fault: %v", err)
	}
	if path == "" {
		t.Fatal("armed Fault returned no dump path")
	}
	if filepath.Dir(path) != dir {
		t.Fatalf("dump landed in %s, want %s", filepath.Dir(path), dir)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading dump: %v", err)
	}
	var doc perfettoDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("dump is not valid Perfetto JSON: %v", err)
	}
	var sawFault, sawSpan bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "i" && ev.Name == "fault:checksum" {
			sawFault = true
		}
		if ev.Ph == "B" && ev.Name == "exchange" {
			sawSpan = true
		}
	}
	if !sawFault || !sawSpan {
		t.Fatalf("dump missing events: fault=%v span=%v", sawFault, sawSpan)
	}
	if tr.FlightDumps() != 1 {
		t.Fatalf("FlightDumps = %d, want 1", tr.FlightDumps())
	}

	// A second fault inside the rate-limit window records the instant but
	// writes no file.
	path2, err := tr.Fault(id, 0, "deadline")
	if err != nil {
		t.Fatalf("second Fault: %v", err)
	}
	if path2 != "" {
		t.Fatalf("rate limit failed: second dump at %s", path2)
	}
	if tr.FlightDumps() != 1 {
		t.Fatalf("FlightDumps after suppressed fault = %d, want 1", tr.FlightDumps())
	}
	files, _ := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if len(files) != 1 {
		t.Fatalf("flight dir holds %d dumps, want 1", len(files))
	}
}
