// Context plumbing: the trace ID and the tracer ride the context
// through layers that must not mutate shared state — most importantly
// the serve path, where cached plans are shared across concurrent
// requests and a per-request SetTracer would race.

package trace

import "context"

type ctxKey int

const (
	idKey ctxKey = iota
	tracerKey
)

// WithID returns a context carrying the trace ID.
func WithID(ctx context.Context, id ID) context.Context {
	return context.WithValue(ctx, idKey, id)
}

// IDFrom extracts the trace ID from ctx (zero when absent).
func IDFrom(ctx context.Context) ID {
	id, _ := ctx.Value(idKey).(ID)
	return id
}

// WithTracer returns a context carrying the tracer.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom extracts the tracer from ctx (nil — i.e. inert — when
// absent).
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}
