package trace

import (
	"strings"
	"testing"
	"time"
)

func TestRenderBasics(t *testing.T) {
	var tl Timeline
	tl.Add(0, "compute", 0, 100*time.Millisecond)
	tl.Add(0, "comm", 100*time.Millisecond, 300*time.Millisecond)
	tl.Add(1, "compute", 0, 150*time.Millisecond)
	tl.Add(1, "comm", 150*time.Millisecond, 300*time.Millisecond)
	var sb strings.Builder
	tl.Render(&sb, 60)
	out := sb.String()
	for _, want := range []string{"rank 0", "rank 1", "A = compute", "B = comm", "total 300ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The comm phase is 2/3 of rank 0's bar: expect roughly twice as many
	// B cells as A cells in row 0.
	row := strings.SplitN(out, "\n", 2)[0]
	a := strings.Count(row, "A")
	b := strings.Count(row, "B")
	if b < a {
		t.Errorf("expected comm to dominate rank 0's row: A=%d B=%d", a, b)
	}
}

func TestRenderEmptyAndTiny(t *testing.T) {
	var tl Timeline
	var sb strings.Builder
	tl.Render(&sb, 40)
	if !strings.Contains(sb.String(), "empty") {
		t.Error("empty timeline should say so")
	}
	tl.Add(0, "blip", 0, 0) // zero-length span must still render
	sb.Reset()
	tl.Render(&sb, 5) // width clamped up
	if !strings.Contains(sb.String(), "A") {
		t.Errorf("zero-length span invisible:\n%s", sb.String())
	}
}

func TestManyLabels(t *testing.T) {
	var tl Timeline
	labels := []string{"one", "two", "three", "four", "five"}
	for i, l := range labels {
		tl.Add(0, l, time.Duration(i)*time.Second, time.Duration(i+1)*time.Second)
	}
	var sb strings.Builder
	tl.Render(&sb, 50)
	out := sb.String()
	for i := range labels {
		if !strings.Contains(out, string(byte('A'+i))+" = ") {
			t.Errorf("legend missing letter %c:\n%s", 'A'+i, out)
		}
	}
}
