// Chrome/Perfetto trace-event export: the ring's events become a JSON
// document loadable in https://ui.perfetto.dev or about://tracing,
// with one process row per rank and one thread row per track name, so
// a distributed transform renders as a per-rank, per-stage timeline.

package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// perfettoEvent is one entry of the trace-event JSON array. Fields
// follow the Chrome trace-event format spec: ph is the phase letter
// (B/E/i/C/M), ts is microseconds, pid/tid place the event on a row.
type perfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// perfettoFile is the top-level JSON object.
type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// syncName is the instant multi-process merges align on: each rank's
// node emits it at the barrier that opens a traced run, so clocks that
// started at different wall times land on one axis.
const syncName = "trace_sync"

// WritePerfetto dumps the ring as Chrome/Perfetto trace-event JSON.
// Each rank becomes a process row (pid = rank+1, "rank R"), each span
// or counter name becomes a thread row within it, so stages stack into
// a per-rank timeline. Safe to call while tracing continues; nil
// writes an empty trace.
func (t *Tracer) WritePerfetto(w io.Writer) error {
	return writePerfettoEvents(w, t.Snapshot())
}

// trackKey identifies one row: a rank's named track.
type trackKey struct {
	rank int
	name string
}

// writePerfettoEvents renders events (already in publication order)
// as one trace-event JSON document.
func writePerfettoEvents(w io.Writer, events []Event) error {
	out := perfettoFile{TraceEvents: []perfettoEvent{}, DisplayTimeUnit: "ns"}

	// Assign tid numbers per (rank, name) track, in first-seen order,
	// and emit metadata rows naming processes and threads.
	tids := map[trackKey]int{}
	ranks := map[int]bool{}
	for _, ev := range events {
		pid := ev.Rank + 1
		if !ranks[ev.Rank] {
			ranks[ev.Rank] = true
			pname := fmt.Sprintf("rank %d", ev.Rank)
			if ev.Rank < 0 {
				pname = "process"
			}
			out.TraceEvents = append(out.TraceEvents, perfettoEvent{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]any{"name": pname},
			})
		}
		key := trackKey{ev.Rank, ev.Name}
		tid, ok := tids[key]
		if !ok {
			tid = len(tids) + 1
			tids[key] = tid
			out.TraceEvents = append(out.TraceEvents, perfettoEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]any{"name": ev.Name},
			})
		}

		pe := perfettoEvent{
			Name: ev.Name,
			TS:   float64(ev.TS) / 1e3,
			PID:  pid,
			TID:  tid,
		}
		switch ev.Kind {
		case KindBegin:
			pe.Ph = "B"
			if ev.Trace != 0 {
				pe.Args = map[string]any{"trace": ev.Trace.String()}
			}
			if ev.Arg != 0 { // ChunkBegin: arg is the chunk index + 1
				if pe.Args == nil {
					pe.Args = map[string]any{}
				}
				pe.Args["chunk"] = ev.Arg - 1
			}
		case KindEnd:
			pe.Ph = "E"
		case KindInstant:
			pe.Ph = "i"
			pe.S = "t"
			if ev.Trace != 0 {
				pe.Args = map[string]any{"trace": ev.Trace.String()}
			}
			if ev.Arg != 0 { // ChunkInstant: arg is the chunk index + 1
				if pe.Args == nil {
					pe.Args = map[string]any{}
				}
				pe.Args["chunk"] = ev.Arg - 1
			}
		case KindCounter:
			pe.Ph = "C"
			pe.Args = map[string]any{"value": ev.Arg}
		default:
			continue
		}
		out.TraceEvents = append(out.TraceEvents, pe)
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trace: perfetto export: %w", err)
	}
	return bw.Flush()
}

// Merge stitches per-rank trace files (as written by WritePerfetto or
// soinode -trace-out) into one timeline. Each input keeps its own
// pid/tid rows; when an input contains a trace_sync instant, its
// timestamps are re-based so all sync instants coincide — aligning
// rank clocks that started at different wall times. Inputs without a
// sync marker are passed through unshifted.
func Merge(w io.Writer, inputs ...io.Reader) error {
	type parsed struct {
		file perfettoFile
		sync float64 // ts of the first trace_sync instant, or -1
	}
	files := make([]parsed, 0, len(inputs))
	maxSync := -1.0
	for i, r := range inputs {
		var f perfettoFile
		dec := json.NewDecoder(r)
		if err := dec.Decode(&f); err != nil {
			return fmt.Errorf("trace: merge input %d: %w", i, err)
		}
		p := parsed{file: f, sync: -1}
		for _, ev := range f.TraceEvents {
			if ev.Ph == "i" && ev.Name == syncName {
				p.sync = ev.TS
				break
			}
		}
		if p.sync > maxSync {
			maxSync = p.sync
		}
		files = append(files, p)
	}

	out := perfettoFile{TraceEvents: []perfettoEvent{}, DisplayTimeUnit: "ns"}
	// Remap tids so tracks from different files never collide on a
	// shared (pid, tid) row; pids are kept (they encode the rank).
	nextTID := 1
	tidMap := map[[3]int]int{} // {file, pid, tid} -> merged tid
	for fi, p := range files {
		shift := 0.0
		if p.sync >= 0 && maxSync >= 0 {
			shift = maxSync - p.sync
		}
		for _, ev := range p.file.TraceEvents {
			key := [3]int{fi, ev.PID, ev.TID}
			tid, ok := tidMap[key]
			if !ok {
				tid = nextTID
				nextTID++
				tidMap[key] = tid
			}
			ev.TID = tid
			if ev.Ph != "M" {
				ev.TS += shift
			}
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}
	// Stable ordering: metadata first, then by timestamp, so the merged
	// file is deterministic for tests and diffs.
	sort.SliceStable(out.TraceEvents, func(i, j int) bool {
		mi, mj := out.TraceEvents[i].Ph == "M", out.TraceEvents[j].Ph == "M"
		if mi != mj {
			return mi
		}
		if mi {
			return false
		}
		return out.TraceEvents[i].TS < out.TraceEvents[j].TS
	})

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trace: merge: %w", err)
	}
	return bw.Flush()
}

// Sync records the clock-alignment instant Merge looks for. Call it at
// a point all processes pass simultaneously (e.g. right after a
// barrier) before the traced work begins.
func (t *Tracer) Sync(id ID, rank int) { t.Instant(id, rank, syncName) }
