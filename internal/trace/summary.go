// Post-hoc trace analysis: fold a Perfetto trace file (one rank's, or
// several ranks merged by Merge) into a per-stage critical-path table —
// the terminal-friendly answer to "which stage, on which rank, bounds
// the run" without loading the timeline into a UI.

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// SpanSummary aggregates every span sharing one name across the trace.
type SpanSummary struct {
	Name string `json:"name"`
	// Ranks counts distinct ranks that ran the span.
	Ranks int `json:"ranks"`
	// Calls counts completed (begin/end paired) spans.
	Calls int64 `json:"calls"`
	// TotalNs sums span wall time over every rank.
	TotalNs int64 `json:"total_ns"`
	// MeanNs is the per-rank mean of the summed wall time.
	MeanNs int64 `json:"mean_rank_ns"`
	// MaxNs is the summed wall time of the slowest rank — the span's
	// contribution to the cluster's critical path.
	MaxNs int64 `json:"max_rank_ns"`
	// MaxRank is that straggler rank.
	MaxRank int `json:"max_rank"`
	// CritShare is MaxNs over the sum of every span's MaxNs: the
	// fraction of the straggler-bounded critical path this span holds.
	CritShare float64 `json:"critical_path_share"`
}

// Summary is the digest of one trace file.
type Summary struct {
	// Ranks counts distinct ranks observed (rank -1 process rows count).
	Ranks int `json:"ranks"`
	// WallNs spans the first begin to the last end in the trace.
	WallNs int64 `json:"wall_ns"`
	// Spans holds one row per span name, critical-path share descending.
	Spans []SpanSummary `json:"spans"`
	// Findings lists explainer findings mirrored into the trace as
	// instant events ("finding:<kind>: <detail>"), trace order.
	Findings []string `json:"findings,omitempty"`
}

// Summarize parses a Perfetto trace-event JSON document (as written by
// WritePerfetto or Merge) and aggregates it. Unpaired begins (the ring
// wrapped, or the trace ends mid-span) are dropped; unpaired ends
// likewise.
func Summarize(r io.Reader) (*Summary, error) {
	var f perfettoFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: summary: %w", err)
	}

	type rankAgg struct {
		ns    int64
		calls int64
	}
	type track struct{ pid, tid int }
	stacks := map[track][]perfettoEvent{}
	agg := map[string]map[int]*rankAgg{}
	ranks := map[int]bool{}
	s := &Summary{}
	var minTS, maxTS float64
	seenTS := false
	for _, ev := range f.TraceEvents {
		if ev.Ph == "M" {
			continue
		}
		rank := ev.PID - 1
		ranks[rank] = true
		if !seenTS || ev.TS < minTS {
			minTS = ev.TS
		}
		if !seenTS || ev.TS > maxTS {
			maxTS = ev.TS
		}
		seenTS = true
		switch ev.Ph {
		case "B":
			k := track{ev.PID, ev.TID}
			stacks[k] = append(stacks[k], ev)
		case "E":
			k := track{ev.PID, ev.TID}
			st := stacks[k]
			if len(st) == 0 {
				continue
			}
			b := st[len(st)-1]
			stacks[k] = st[:len(st)-1]
			name := b.Name
			if name == "" {
				name = ev.Name
			}
			byRank := agg[name]
			if byRank == nil {
				byRank = map[int]*rankAgg{}
				agg[name] = byRank
			}
			ra := byRank[rank]
			if ra == nil {
				ra = &rankAgg{}
				byRank[rank] = ra
			}
			d := int64((ev.TS - b.TS) * 1e3)
			if d < 0 {
				d = 0
			}
			ra.ns += d
			ra.calls++
		case "i":
			if strings.HasPrefix(ev.Name, "finding:") {
				s.Findings = append(s.Findings, fmt.Sprintf("rank %d: %s", rank, ev.Name))
			}
		}
	}

	s.Ranks = len(ranks)
	if seenTS {
		s.WallNs = int64((maxTS - minTS) * 1e3)
	}
	var critTotal int64
	for name, byRank := range agg {
		row := SpanSummary{Name: name, Ranks: len(byRank), MaxRank: -1}
		for rank, ra := range byRank {
			row.Calls += ra.calls
			row.TotalNs += ra.ns
			if ra.ns > row.MaxNs || row.MaxRank < 0 {
				row.MaxNs = ra.ns
				row.MaxRank = rank
			}
		}
		row.MeanNs = row.TotalNs / int64(len(byRank))
		critTotal += row.MaxNs
		s.Spans = append(s.Spans, row)
	}
	for i := range s.Spans {
		if critTotal > 0 {
			s.Spans[i].CritShare = float64(s.Spans[i].MaxNs) / float64(critTotal)
		}
	}
	sort.Slice(s.Spans, func(i, j int) bool {
		if s.Spans[i].MaxNs != s.Spans[j].MaxNs {
			return s.Spans[i].MaxNs > s.Spans[j].MaxNs
		}
		return s.Spans[i].Name < s.Spans[j].Name
	})
	return s, nil
}

// WriteTable renders the summary as the per-stage critical-path table:
// one row per span name, straggler-bounded time descending, with the
// straggler rank and the row's share of the critical path.
func (s *Summary) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "per-stage critical path over %d rank(s), wall %s:\n",
		s.Ranks, fmtNs(s.WallNs))
	if len(s.Spans) == 0 {
		fmt.Fprintln(w, "  (no completed spans in trace)")
		return
	}
	fmt.Fprintf(w, "  %-22s %8s %12s %12s %9s %10s\n",
		"stage", "calls", "mean/rank", "max/rank", "straggler", "crit-path")
	for _, row := range s.Spans {
		fmt.Fprintf(w, "  %-22s %8d %12s %12s %9s %9.1f%%\n",
			row.Name, row.Calls, fmtNs(row.MeanNs), fmtNs(row.MaxNs),
			fmt.Sprintf("rank %d", row.MaxRank), 100*row.CritShare)
	}
	if len(s.Findings) > 0 {
		fmt.Fprintln(w, "  findings:")
		for _, f := range s.Findings {
			fmt.Fprintf(w, "    %s\n", f)
		}
	}
}

// fmtNs renders nanoseconds with a duration unit fit to magnitude.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
