package trace

import (
	"bytes"
	"strings"
	"testing"
)

// TestSummarizeCriticalPath builds a two-rank trace with a known
// straggler, exports it through the Perfetto writer, and checks the
// digest: per-span calls, the straggler's identity, critical-path
// ordering, and finding instants surfacing.
func TestSummarizeCriticalPath(t *testing.T) {
	tr := New(0)
	id := NewID()
	// Rank 0: convolve 2 calls; rank 1 is the convolve straggler.
	// Exchange only on rank 1, shorter than its convolve.
	emit := func(rank int, name string, calls int) {
		for i := 0; i < calls; i++ {
			tr.Begin(id, rank, name)
			tr.End(id, rank, name)
		}
	}
	emit(0, "convolve", 2)
	emit(1, "convolve", 2)
	emit(1, "exchange", 1)
	tr.Instant(id, 1, "finding:slow-link: link 1->0 behind fleet median")

	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Ranks != 2 {
		t.Errorf("Ranks = %d, want 2", s.Ranks)
	}
	byName := map[string]SpanSummary{}
	for _, row := range s.Spans {
		byName[row.Name] = row
	}
	conv, ok := byName["convolve"]
	if !ok {
		t.Fatalf("no convolve row in %+v", s.Spans)
	}
	if conv.Calls != 4 || conv.Ranks != 2 {
		t.Errorf("convolve calls=%d ranks=%d, want 4 over 2 ranks", conv.Calls, conv.Ranks)
	}
	exch, ok := byName["exchange"]
	if !ok {
		t.Fatalf("no exchange row in %+v", s.Spans)
	}
	if exch.Calls != 1 || exch.MaxRank != 1 {
		t.Errorf("exchange calls=%d maxRank=%d, want 1 on rank 1", exch.Calls, exch.MaxRank)
	}
	var critTotal float64
	for _, row := range s.Spans {
		critTotal += row.CritShare
	}
	if critTotal < 0.999 || critTotal > 1.001 {
		t.Errorf("critical-path shares sum to %v, want 1", critTotal)
	}
	if len(s.Findings) != 1 || !strings.Contains(s.Findings[0], "rank 1: finding:slow-link") {
		t.Errorf("Findings = %v, want the rank-1 slow-link instant", s.Findings)
	}

	var table bytes.Buffer
	s.WriteTable(&table)
	for _, want := range []string{"critical path over 2 rank(s)", "convolve", "exchange", "findings:", "crit-path"} {
		if !strings.Contains(table.String(), want) {
			t.Errorf("table missing %q:\n%s", want, table.String())
		}
	}
}

// TestSummarizeRejectsGarbage: a non-JSON input reports an error
// instead of a zero digest.
func TestSummarizeRejectsGarbage(t *testing.T) {
	if _, err := Summarize(strings.NewReader("not json")); err == nil {
		t.Error("Summarize accepted garbage input")
	}
}

// TestSummarizeEmptyTrace: an empty ring still summarizes (no spans, no
// panic) so scripting the subcommand is safe on quiet runs.
func TestSummarizeEmptyTrace(t *testing.T) {
	tr := New(0)
	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := Summarize(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Spans) != 0 || s.Ranks != 0 {
		t.Errorf("empty trace summarized to %+v", s)
	}
	var table bytes.Buffer
	s.WriteTable(&table)
	if !strings.Contains(table.String(), "no completed spans") {
		t.Errorf("empty table = %q", table.String())
	}
}
