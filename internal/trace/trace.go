// ASCII Gantt rendering of labeled time spans — a lightweight way to
// see the execution structure of a distributed transform (which phase
// dominates, where ranks wait) in a terminal. The event-level tracer
// and Perfetto export live in tracer.go / perfetto.go.

package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Span is one labeled interval on one lane (rank).
type Span struct {
	Lane  int
	Label string
	Start time.Duration
	End   time.Duration
}

// Timeline collects spans for rendering.
type Timeline struct {
	spans []Span
}

// Add records a span; zero- or negative-length spans are kept (they
// render as a single cell) so very fast phases remain visible.
func (t *Timeline) Add(lane int, label string, start, end time.Duration) {
	t.spans = append(t.spans, Span{Lane: lane, Label: label, Start: start, End: end})
}

// Render draws one row per lane, width columns wide, with a legend
// mapping letters to labels and total span durations.
func (t *Timeline) Render(w io.Writer, width int) {
	if len(t.spans) == 0 {
		fmt.Fprintln(w, "(empty timeline)")
		return
	}
	if width < 10 {
		width = 10
	}
	var total time.Duration
	lanes := map[int]bool{}
	for _, s := range t.spans {
		if s.End > total {
			total = s.End
		}
		lanes[s.Lane] = true
	}
	if total <= 0 {
		total = 1
	}

	// Assign letters by first appearance; aggregate durations per label.
	letters := map[string]byte{}
	order := []string{}
	sums := map[string]time.Duration{}
	for _, s := range t.spans {
		if _, ok := letters[s.Label]; !ok {
			letters[s.Label] = byte('A' + len(order))
			order = append(order, s.Label)
		}
		sums[s.Label] += s.End - s.Start
	}

	laneIDs := make([]int, 0, len(lanes))
	for l := range lanes {
		laneIDs = append(laneIDs, l)
	}
	sort.Ints(laneIDs)
	scale := float64(width) / float64(total)
	for _, lane := range laneIDs {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, s := range t.spans {
			if s.Lane != lane {
				continue
			}
			a := int(float64(s.Start) * scale)
			b := int(float64(s.End) * scale)
			if b <= a {
				b = a + 1
			}
			if b > width {
				b = width
			}
			for i := a; i < b && i < width; i++ {
				row[i] = letters[s.Label]
			}
		}
		fmt.Fprintf(w, "  rank %-3d |%s|\n", lane, string(row))
	}
	fmt.Fprintf(w, "  total %v (legend durations are summed over the %d displayed lanes)\n",
		total.Round(time.Millisecond), len(laneIDs))
	for _, label := range order {
		fmt.Fprintf(w, "  %c = %-22s %v\n", letters[label], label, sums[label].Round(time.Millisecond))
	}
}
