// Package trace is the observability timeline layer: event-level
// distributed tracing with a fixed-size lock-free ring buffer that
// doubles as a flight recorder, Chrome/Perfetto trace-event export,
// and an ASCII Gantt renderer (trace.go) for terminals.
//
// Design (DESIGN.md §10): every event is one ring slot of five 64-bit
// words, each read and written atomically — timestamp, trace ID, packed
// metadata (kind, rank, interned name), argument, and a sequence word
// that publishes the slot. Writers claim slots with a single atomic
// add on the ring cursor and never block; readers (Perfetto export,
// flight dumps) validate each slot's sequence word before and after
// copying it, so a dump taken while tracing continues yields a
// consistent prefix and at worst drops slots being overwritten at the
// wrap boundary. Nothing is ever allocated on the emit path once a
// name has been interned.
//
// A nil *Tracer is fully inert: every method is nil-safe, and the
// execution paths guard with one pointer test — the same contract as
// instrument.Recorder, and the basis of the tracing-off overhead
// guard.
package trace

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"
)

// ID is a 64-bit trace identifier: every event of one logical request
// — across pipeline stages, goroutines, and ranks — carries the same
// ID, which is what lets a merged timeline group per-rank spans into
// one request. The zero ID means "untraced".
type ID uint64

// String renders the ID the way exports and logs spell it.
func (id ID) String() string { return fmt.Sprintf("%016x", uint64(id)) }

// idState drives NewID: a splitmix64 sequence seeded from the clock at
// process start, so IDs are unique within a process and collide across
// processes with negligible probability.
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano())) }

// NewID returns a fresh non-zero trace ID.
func NewID() ID {
	v := idState.Add(0x9E3779B97F4A7C15)
	v ^= v >> 30
	v *= 0xBF58476D1CE4E5B9
	v ^= v >> 27
	v *= 0x94D049BB133111EB
	v ^= v >> 31
	if v == 0 {
		v = 1
	}
	return ID(v)
}

// Kind classifies one event record.
type Kind uint8

// Event kinds, in the Chrome trace-event vocabulary: spans are a
// Begin/End pair on one (rank, name) track, instants mark a point in
// time, counters sample a value.
const (
	KindBegin Kind = iota + 1
	KindEnd
	KindInstant
	KindCounter
)

// Event is one decoded record from the ring (the Snapshot form; the
// ring itself stores packed words).
type Event struct {
	TS    int64 // nanoseconds since the tracer's epoch
	Trace ID
	Kind  Kind
	Rank  int // lane/rank the event belongs to (-1 = unknown)
	Name  string
	Arg   int64 // counter value; unused otherwise
	seq   uint64
}

// slot is one ring entry: five words, each accessed atomically so a
// concurrent dump is race-free. seq is 0 while a write is in progress
// and (index+1) once published.
type slot struct {
	seq   atomic.Uint64
	ts    atomic.Int64
	trace atomic.Uint64
	meta  atomic.Uint64 // kind<<56 | (rank+1)<<40 | nameID
	arg   atomic.Int64
}

// DefaultCapacity is the ring size New rounds to when given n <= 0:
// ~64k events (the flight-recorder depth the serve and transport
// layers retain).
const DefaultCapacity = 1 << 16

// Tracer records events into a fixed-size ring buffer. All methods are
// safe for concurrent use and safe on a nil receiver (no-ops).
type Tracer struct {
	epoch time.Time
	slots []slot
	mask  uint64
	pos   atomic.Uint64

	names struct {
		sync.RWMutex
		byName map[string]uint64
		list   []string
	}

	flight struct {
		sync.Mutex
		dir      string
		lastDump time.Time
		dumps    atomic.Int64
	}
}

// New returns a tracer whose ring holds at least capacity events
// (rounded up to a power of two; capacity <= 0 selects
// DefaultCapacity). The ring is the flight recorder: once full, new
// events overwrite the oldest, so the most recent window of activity
// is always available for export.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	t := &Tracer{epoch: time.Now(), slots: make([]slot, size), mask: uint64(size - 1)}
	t.names.byName = make(map[string]uint64)
	return t
}

// Enabled reports whether events are being recorded (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Now returns the current timestamp in the tracer's timebase
// (nanoseconds since creation); zero for nil.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch).Nanoseconds()
}

// nameID interns name, so steady-state emits carry a small integer
// instead of a string.
func (t *Tracer) nameID(name string) uint64 {
	t.names.RLock()
	id, ok := t.names.byName[name]
	t.names.RUnlock()
	if ok {
		return id
	}
	t.names.Lock()
	defer t.names.Unlock()
	if id, ok := t.names.byName[name]; ok {
		return id
	}
	id = uint64(len(t.names.list))
	t.names.list = append(t.names.list, name)
	t.names.byName[name] = id
	return id
}

// nameOf resolves an interned ID back to its string.
func (t *Tracer) nameOf(id uint64) string {
	t.names.RLock()
	defer t.names.RUnlock()
	if id < uint64(len(t.names.list)) {
		return t.names.list[id]
	}
	return fmt.Sprintf("name#%d", id)
}

// emit claims the next slot and publishes one event.
func (t *Tracer) emit(kind Kind, id ID, rank int, name string, arg int64) {
	if t == nil {
		return
	}
	ts := time.Since(t.epoch).Nanoseconds()
	nid := t.nameID(name)
	if rank < -1 || rank > 1<<15 {
		rank = -1
	}
	meta := uint64(kind)<<56 | uint64(uint16(rank+1))<<40 | (nid & (1<<40 - 1))
	i := t.pos.Add(1)
	s := &t.slots[(i-1)&t.mask]
	s.seq.Store(0) // invalidate while the words are in flux
	s.ts.Store(ts)
	s.trace.Store(uint64(id))
	s.meta.Store(meta)
	s.arg.Store(arg)
	s.seq.Store(i) // publish
}

// Begin opens a span on the (rank, name) track. Pair with End on the
// same track and trace ID.
func (t *Tracer) Begin(id ID, rank int, name string) { t.emit(KindBegin, id, rank, name, 0) }

// End closes the most recent span opened with Begin on the same track.
func (t *Tracer) End(id ID, rank int, name string) { t.emit(KindEnd, id, rank, name, 0) }

// Span opens a span and returns the closure that ends it — for
// defer-style stage bracketing. Safe on nil (returns a no-op).
func (t *Tracer) Span(id ID, rank int, name string) func() {
	if t == nil {
		return func() {}
	}
	t.Begin(id, rank, name)
	return func() { t.End(id, rank, name) }
}

// Instant records a point event (fault markers, dump triggers, sync
// points).
func (t *Tracer) Instant(id ID, rank int, name string) { t.emit(KindInstant, id, rank, name, 0) }

// ChunkBegin opens a span for one streamed-exchange chunk on the
// (rank, name) track, carrying the chunk index as the event argument so
// per-chunk wire activity renders chunk-granular in the Perfetto export.
// Pair with ChunkEnd on the same track.
func (t *Tracer) ChunkBegin(id ID, rank int, name string, idx int) {
	t.emit(KindBegin, id, rank, name, int64(idx)+1)
}

// ChunkEnd closes the span opened by ChunkBegin.
func (t *Tracer) ChunkEnd(id ID, rank int, name string, idx int) {
	t.emit(KindEnd, id, rank, name, int64(idx)+1)
}

// ChunkInstant records a point event for one streamed-exchange chunk
// (e.g. a chunk landing at the consumer), index as the argument.
func (t *Tracer) ChunkInstant(id ID, rank int, name string, idx int) {
	t.emit(KindInstant, id, rank, name, int64(idx)+1)
}

// Counter samples a value on the (rank, name) counter track.
func (t *Tracer) Counter(id ID, rank int, name string, v int64) {
	t.emit(KindCounter, id, rank, name, v)
}

// Len reports how many events have been emitted since creation (not
// how many the ring still holds).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return int(t.pos.Load())
}

// Snapshot copies the ring's published events, oldest first. Slots
// being overwritten during the copy are skipped (their sequence word
// reads 0 or changes between validation reads), so the result is
// always a set of complete events even while tracing continues.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	events := make([]Event, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		seq := s.seq.Load()
		if seq == 0 {
			continue
		}
		ev := Event{
			TS:    s.ts.Load(),
			Trace: ID(s.trace.Load()),
			Arg:   s.arg.Load(),
			seq:   seq,
		}
		meta := s.meta.Load()
		if s.seq.Load() != seq {
			continue // overwritten mid-copy
		}
		ev.Kind = Kind(meta >> 56)
		ev.Rank = int(uint16(meta>>40)) - 1
		ev.Name = t.nameOf(meta & (1<<40 - 1))
		if ev.Kind < KindBegin || ev.Kind > KindCounter {
			continue
		}
		events = append(events, ev)
	}
	// Ring order is publication order; sort by sequence so interleaved
	// shards of the ring come out as one chronological stream.
	sortEvents(events)
	return events
}

// sortEvents orders by sequence number (publication order), which is
// also timestamp order up to scheduler jitter between the clock read
// and the slot claim.
func sortEvents(events []Event) {
	// Insertion sort: snapshots are nearly sorted already (the ring is
	// scanned in index order and wraps at most once).
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].seq < events[j-1].seq; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

// --- flight recorder ---

// flightMinInterval rate-limits fault-triggered dumps: a fault storm
// produces one file per interval, not one per fault.
const flightMinInterval = time.Second

// SetFlightDir arms fault-triggered dumps: Fault writes the ring to a
// timestamped file under dir. An empty dir disarms (Fault still
// records the fault instant).
func (t *Tracer) SetFlightDir(dir string) {
	if t == nil {
		return
	}
	t.flight.Lock()
	t.flight.dir = dir
	t.flight.Unlock()
}

// FlightDumps reports how many fault dumps have been written.
func (t *Tracer) FlightDumps() int64 {
	if t == nil {
		return 0
	}
	return t.flight.dumps.Load()
}

// Fault records a typed-fault instant ("fault:<reason>") and, when a
// flight directory is armed, dumps the ring — the last ring-capacity
// events preceding the fault — to flight-<unixnano>.json in Perfetto
// trace-event format. Dumps are rate-limited to one per second; the
// path of the written file is returned ("" when disarmed, suppressed,
// or nil).
func (t *Tracer) Fault(id ID, rank int, reason string) (string, error) {
	if t == nil {
		return "", nil
	}
	t.Instant(id, rank, "fault:"+reason)
	t.flight.Lock()
	dir := t.flight.dir
	if dir == "" || time.Since(t.flight.lastDump) < flightMinInterval {
		t.flight.Unlock()
		return "", nil
	}
	t.flight.lastDump = time.Now()
	t.flight.Unlock()

	path := filepath.Join(dir, fmt.Sprintf("flight-%d.json", time.Now().UnixNano()))
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("trace: flight dump: %w", err)
	}
	if err := t.WritePerfetto(f); err != nil {
		f.Close()
		return "", fmt.Errorf("trace: flight dump: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("trace: flight dump: %w", err)
	}
	t.flight.dumps.Add(1)
	return path, nil
}
