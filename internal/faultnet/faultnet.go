// Package faultnet injects deterministic, seed-driven faults into
// net.Conn traffic so the multi-node transport (internal/mpinet) can be
// chaos-tested — and chaos-drilled live via `soinode -fault-plan` —
// without a real misbehaving fabric.
//
// A Plan describes what goes wrong on a link: added latency and jitter,
// bandwidth throttling, silently dropped writes, single-bit payload
// corruption, injected connection resets, partial writes that die
// mid-frame, and silent hangs (writes that block until the connection is
// closed or its write deadline passes). Every decision is drawn from a
// PRNG seeded by (Plan.Seed, link id), so a given plan replays the exact
// same fault sequence on every run — a failing chaos test is reproducible
// from its seed alone.
//
// Faults are injected on the write side only: a peer that stops writing
// is exactly what a hung, dead, or partitioned peer looks like to the
// reader on the other end, so write-side injection exercises both
// directions of the hardened transport.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Plan is a per-link fault schedule. The zero value injects nothing.
// Probabilities are per Write call, rolled in the order hang, reset,
// partial, drop, corrupt; latency and throttling apply to writes that
// survive the rolls.
type Plan struct {
	Seed    int64         // PRNG seed; combined with the link id
	After   int           // arm faults only after this many writes on the link
	Latency time.Duration // fixed delay added to every armed write
	Jitter  time.Duration // extra uniform delay in [0, Jitter)
	// BandwidthBps throttles armed writes to this many bytes/second
	// (0 = unlimited).
	BandwidthBps float64
	DropProb     float64 // write claims success but sends nothing
	CorruptProb  float64 // one random bit of the write is flipped
	ResetProb    float64 // connection is torn down mid-operation
	HangProb     float64 // write blocks until close or write deadline
	// PartialProb writes a strict prefix of the buffer and then the link
	// dies (reset or hang, chosen by the PRNG) — the mid-frame failure
	// that checksums and deadlines must catch.
	PartialProb float64
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	return p.Latency > 0 || p.Jitter > 0 || p.BandwidthBps > 0 ||
		p.DropProb > 0 || p.CorruptProb > 0 || p.ResetProb > 0 ||
		p.HangProb > 0 || p.PartialProb > 0
}

// String renders the plan in ParsePlan's key=value form.
func (p Plan) String() string {
	kv := map[string]string{}
	if p.Seed != 0 {
		kv["seed"] = strconv.FormatInt(p.Seed, 10)
	}
	if p.After != 0 {
		kv["after"] = strconv.Itoa(p.After)
	}
	if p.Latency != 0 {
		kv["latency"] = p.Latency.String()
	}
	if p.Jitter != 0 {
		kv["jitter"] = p.Jitter.String()
	}
	if p.BandwidthBps != 0 {
		kv["bw"] = strconv.FormatFloat(p.BandwidthBps, 'g', -1, 64)
	}
	for k, v := range map[string]float64{
		"drop": p.DropProb, "corrupt": p.CorruptProb, "reset": p.ResetProb,
		"hang": p.HangProb, "partial": p.PartialProb,
	} {
		if v != 0 {
			kv[k] = strconv.FormatFloat(v, 'g', -1, 64)
		}
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + kv[k]
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses "seed=42,latency=2ms,corrupt=0.01"-style plans (the
// `soinode -fault-plan` syntax). Keys: seed, after, latency, jitter, bw,
// drop, corrupt, reset, hang, partial. An empty string is the zero Plan.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	if strings.TrimSpace(s) == "" {
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return p, fmt.Errorf("faultnet: field %q is not key=value", field)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseInt(v, 10, 64)
		case "after":
			p.After, err = strconv.Atoi(v)
		case "latency":
			p.Latency, err = time.ParseDuration(v)
		case "jitter":
			p.Jitter, err = time.ParseDuration(v)
		case "bw":
			p.BandwidthBps, err = strconv.ParseFloat(v, 64)
		case "drop", "corrupt", "reset", "hang", "partial":
			var f float64
			f, err = strconv.ParseFloat(v, 64)
			if err == nil && (f < 0 || f > 1) {
				return p, fmt.Errorf("faultnet: %s=%v outside [0, 1]", k, f)
			}
			switch k {
			case "drop":
				p.DropProb = f
			case "corrupt":
				p.CorruptProb = f
			case "reset":
				p.ResetProb = f
			case "hang":
				p.HangProb = f
			case "partial":
				p.PartialProb = f
			}
		default:
			return p, fmt.Errorf("faultnet: unknown fault key %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("faultnet: bad value for %s: %v", k, err)
		}
	}
	return p, nil
}

// LinkID folds two rank ids into a stable link identifier, so a mesh of
// soinode processes derives the same per-link PRNG stream on every run.
func LinkID(self, peer int) int64 {
	return int64(self)<<32 | int64(uint32(peer))
}

// ErrInjectedReset is the cause chained into write errors produced by
// reset and partial faults.
var ErrInjectedReset = fmt.Errorf("faultnet: injected connection reset")

// Conn wraps a net.Conn with the plan's faults. Create with Plan.Conn.
type Conn struct {
	net.Conn
	plan Plan

	mu        sync.Mutex
	rng       *rand.Rand
	writes    int
	wdeadline time.Time

	closed    chan struct{}
	closeOnce sync.Once
}

// Conn wraps c under the plan. id selects the link's deterministic PRNG
// stream (use LinkID for rank meshes). A disabled plan returns c as-is.
func (p Plan) Conn(c net.Conn, id int64) net.Conn {
	if !p.Enabled() {
		return c
	}
	return &Conn{
		Conn:   c,
		plan:   p,
		rng:    rand.New(rand.NewSource(p.Seed ^ int64(uint64(id+1)*0x9E3779B97F4A7C15))),
		closed: make(chan struct{}),
	}
}

// Close tears down the wrapper (unblocking injected hangs and sleeps)
// and the underlying connection.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

// SetDeadline records the write half for hang bounding and passes both
// halves through.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdeadline = t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

// SetWriteDeadline records the deadline (injected hangs honor it, like a
// kernel write on a wedged socket would) and passes it through.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdeadline = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

// roll draws this write's fault decisions under the lock, keeping the
// PRNG stream deterministic even with concurrent writers.
type decision struct {
	armed                bool
	hang, reset, partial bool
	drop, corrupt        bool
	partialLen           int
	partialHang          bool
	corruptBit           int
	delay                time.Duration
	deadline             time.Time
}

func (c *Conn) roll(n int) decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writes++
	d := decision{deadline: c.wdeadline}
	if c.writes <= c.plan.After {
		return d
	}
	d.armed = true
	d.hang = c.plan.HangProb > 0 && c.rng.Float64() < c.plan.HangProb
	d.reset = c.plan.ResetProb > 0 && c.rng.Float64() < c.plan.ResetProb
	d.partial = c.plan.PartialProb > 0 && c.rng.Float64() < c.plan.PartialProb
	d.drop = c.plan.DropProb > 0 && c.rng.Float64() < c.plan.DropProb
	d.corrupt = c.plan.CorruptProb > 0 && c.rng.Float64() < c.plan.CorruptProb
	if d.partial && n > 1 {
		d.partialLen = 1 + c.rng.Intn(n-1)
		d.partialHang = c.rng.Intn(2) == 0
	}
	if d.corrupt && n > 0 {
		d.corruptBit = c.rng.Intn(n * 8)
	}
	d.delay = c.plan.Latency
	if c.plan.Jitter > 0 {
		d.delay += time.Duration(c.rng.Int63n(int64(c.plan.Jitter)))
	}
	if c.plan.BandwidthBps > 0 {
		d.delay += time.Duration(float64(n) / c.plan.BandwidthBps * float64(time.Second))
	}
	return d
}

// Write applies the plan, then forwards to the underlying connection.
func (c *Conn) Write(b []byte) (int, error) {
	d := c.roll(len(b))
	if !d.armed {
		return c.Conn.Write(b)
	}
	switch {
	case d.hang:
		return 0, c.hang(d.deadline)
	case d.reset:
		return 0, c.reset()
	case d.partial && d.partialLen > 0:
		n, err := c.Conn.Write(b[:d.partialLen])
		if err != nil {
			return n, err
		}
		if d.partialHang {
			return n, c.hang(d.deadline)
		}
		return n, c.reset()
	case d.drop:
		return len(b), nil
	}
	if d.corrupt {
		flipped := append([]byte(nil), b...)
		flipped[d.corruptBit/8] ^= 1 << (d.corruptBit % 8)
		b = flipped
	}
	if err := c.sleep(d.delay, d.deadline); err != nil {
		return 0, err
	}
	return c.Conn.Write(b)
}

// hang blocks like a wedged socket: until the connection is closed or
// the recorded write deadline passes.
func (c *Conn) hang(deadline time.Time) error {
	if deadline.IsZero() {
		<-c.closed
		return net.ErrClosed
	}
	t := time.NewTimer(time.Until(deadline))
	defer t.Stop()
	select {
	case <-c.closed:
		return net.ErrClosed
	case <-t.C:
		return os.ErrDeadlineExceeded
	}
}

// reset tears the connection down and reports it.
func (c *Conn) reset() error {
	if tc, ok := c.Conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0) // RST instead of FIN, like a crashed peer
	}
	_ = c.Close()
	return ErrInjectedReset
}

// sleep waits for the injected latency, still honoring close and the
// write deadline.
func (c *Conn) sleep(d time.Duration, deadline time.Time) error {
	if d <= 0 {
		return nil
	}
	if !deadline.IsZero() {
		if rem := time.Until(deadline); rem < d {
			err := c.sleep(rem, time.Time{})
			if err == nil {
				err = os.ErrDeadlineExceeded
			}
			return err
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.closed:
		return net.ErrClosed
	case <-t.C:
		return nil
	}
}

// Listener wraps Accept so every inbound connection gets the plan,
// each with its own deterministic stream.
type Listener struct {
	net.Listener
	plan Plan

	mu   sync.Mutex
	next int64
}

// NewListener wraps ln under the plan.
func NewListener(ln net.Listener, plan Plan) *Listener {
	return &Listener{Listener: ln, plan: plan}
}

// Accept wraps the next inbound connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	id := l.next
	l.next++
	l.mu.Unlock()
	return l.plan.Conn(c, id), nil
}
