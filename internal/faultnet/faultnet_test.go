package faultnet

import (
	"bytes"
	"errors"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// sink is an in-memory net.Conn write target.
type sink struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (s *sink) Write(b []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(b)
}

func (s *sink) bytes() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]byte(nil), s.buf.Bytes()...)
}

func (s *sink) Read([]byte) (int, error)         { return 0, nil }
func (s *sink) Close() error                     { return nil }
func (s *sink) LocalAddr() net.Addr              { return nil }
func (s *sink) RemoteAddr() net.Addr             { return nil }
func (s *sink) SetDeadline(time.Time) error      { return nil }
func (s *sink) SetReadDeadline(time.Time) error  { return nil }
func (s *sink) SetWriteDeadline(time.Time) error { return nil }

func TestParsePlanRoundTrip(t *testing.T) {
	in := "after=3,bw=1e+06,corrupt=0.01,drop=0.1,hang=0.02,jitter=1ms,latency=2ms,partial=0.05,reset=0.03,seed=42"
	p, err := ParsePlan(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.After != 3 || p.Latency != 2*time.Millisecond ||
		p.Jitter != time.Millisecond || p.BandwidthBps != 1e6 ||
		p.DropProb != 0.1 || p.CorruptProb != 0.01 || p.ResetProb != 0.03 ||
		p.HangProb != 0.02 || p.PartialProb != 0.05 {
		t.Fatalf("parsed %+v", p)
	}
	if got := p.String(); got != in {
		t.Errorf("String() = %q, want %q", got, in)
	}
	if back, err := ParsePlan(p.String()); err != nil || back != p {
		t.Errorf("round trip %+v err %v", back, err)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{"nonsense", "frobnicate=1", "drop=1.5", "latency=fast", "seed="} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
	if p, err := ParsePlan(""); err != nil || p.Enabled() {
		t.Errorf("empty plan: %+v, %v", p, err)
	}
}

// TestDeterministic checks the same (seed, id) replays the same byte
// stream, and a different id diverges.
func TestDeterministic(t *testing.T) {
	plan := Plan{Seed: 7, CorruptProb: 0.5, DropProb: 0.2}
	run := func(id int64) []byte {
		s := &sink{}
		c := plan.Conn(s, id)
		msg := make([]byte, 64)
		for i := 0; i < 32; i++ {
			msg[0] = byte(i)
			if _, err := c.Write(msg); err != nil {
				t.Fatal(err)
			}
		}
		return s.bytes()
	}
	a, b := run(1), run(1)
	if !bytes.Equal(a, b) {
		t.Error("same link id produced different fault streams")
	}
	if bytes.Equal(a, run(2)) {
		t.Error("different link ids produced identical fault streams")
	}
}

func TestCorruptFlipsExactlyOneBit(t *testing.T) {
	plan := Plan{Seed: 3, CorruptProb: 1}
	s := &sink{}
	c := plan.Conn(s, 0)
	msg := bytes.Repeat([]byte{0xAA}, 128)
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := s.bytes()
	if len(got) != len(msg) {
		t.Fatalf("wrote %d bytes, want %d", len(got), len(msg))
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^msg[i])>>b&1 == 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Errorf("%d bits differ, want exactly 1", diff)
	}
	// The caller's buffer must not be touched.
	if !bytes.Equal(msg, bytes.Repeat([]byte{0xAA}, 128)) {
		t.Error("corruption mutated the caller's buffer")
	}
}

func TestDropIsSilent(t *testing.T) {
	plan := Plan{Seed: 1, DropProb: 1}
	s := &sink{}
	c := plan.Conn(s, 0)
	n, err := c.Write(make([]byte, 100))
	if n != 100 || err != nil {
		t.Fatalf("drop write: n=%d err=%v", n, err)
	}
	if len(s.bytes()) != 0 {
		t.Errorf("dropped write reached the wire: %d bytes", len(s.bytes()))
	}
}

func TestThrottleDelaysWrites(t *testing.T) {
	plan := Plan{Seed: 1, BandwidthBps: 1 << 20} // 1 MiB/s
	s := &sink{}
	c := plan.Conn(s, 0)
	start := time.Now()
	if _, err := c.Write(make([]byte, 64<<10)); err != nil { // 64 KiB → ≥ 62ms
		t.Fatal(err)
	}
	if el := time.Since(start); el < 40*time.Millisecond {
		t.Errorf("throttled 64KiB write took only %v", el)
	}
}

func TestHangHonorsWriteDeadline(t *testing.T) {
	plan := Plan{Seed: 1, HangProb: 1}
	c := plan.Conn(&sink{}, 0)
	if err := c.SetWriteDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := c.Write(make([]byte, 8))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("hung write returned %v, want deadline exceeded", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Errorf("hang outlived its deadline by %v", el)
	}
}

func TestHangUnblocksOnClose(t *testing.T) {
	plan := Plan{Seed: 1, HangProb: 1}
	c := plan.Conn(&sink{}, 0)
	done := make(chan error, 1)
	go func() {
		_, err := c.Write(make([]byte, 8))
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	_ = c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("hung write returned %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hung write did not unblock on Close")
	}
}

func TestResetReportsInjectedReset(t *testing.T) {
	plan := Plan{Seed: 1, ResetProb: 1}
	c := plan.Conn(&sink{}, 0)
	if _, err := c.Write(make([]byte, 8)); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("reset write returned %v", err)
	}
}

func TestAfterArmsLate(t *testing.T) {
	plan := Plan{Seed: 1, DropProb: 1, After: 2}
	s := &sink{}
	c := plan.Conn(s, 0)
	for i := 0; i < 3; i++ {
		if _, err := c.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.bytes(); !bytes.Equal(got, []byte{0, 1}) {
		t.Errorf("wire saw %v, want the two pre-arm writes only", got)
	}
}

func TestDisabledPlanPassesThrough(t *testing.T) {
	s := &sink{}
	if c := (Plan{Seed: 9}).Conn(s, 0); c != net.Conn(s) {
		t.Error("disabled plan wrapped the conn")
	}
}
