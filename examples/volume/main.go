// Volume: distributed 2-D and 3-D FFTs on a pencil-decomposed process
// grid — the paper's Section 8 "generalize to higher-dimensional FFTs"
// direction. Note the communication contrast with 1-D: every exchange
// stays inside a small subgroup of the grid, which is exactly why the
// 1-D case (one unavoidable machine-wide all-to-all, which SOI minimizes)
// is the hard one.
package main

import (
	"fmt"
	"log"

	"soifft/internal/fft"
	"soifft/internal/fft2d"
	"soifft/internal/mpi"
	"soifft/internal/signal"
)

func main() {
	// ---- 2-D: a 256×256 image over a 2×4 grid of 8 ranks ----
	const rows, cols, pr, pc = 256, 256, 2, 4
	g, err := fft2d.NewGrid(rows, cols, pr, pc)
	if err != nil {
		log.Fatal(err)
	}
	src := signal.Random(rows*cols, 5)
	w, err := mpi.NewWorld(pr * pc)
	if err != nil {
		log.Fatal(err)
	}
	out := make([]complex128, rows*cols)
	err = w.Run(func(c *mpi.Comm) error {
		i, j := g.Coords(c.Rank())
		lr, lc := g.LocalRows(), g.LocalCols()
		local := make([]complex128, lr*lc)
		for r := 0; r < lr; r++ {
			copy(local[r*lc:(r+1)*lc], src[(i*lr+r)*cols+j*lc:(i*lr+r)*cols+(j+1)*lc])
		}
		res, err := g.Forward(c, local)
		if err != nil {
			return err
		}
		for r := 0; r < lr; r++ {
			copy(out[(i*lr+r)*cols+j*lc:(i*lr+r)*cols+(j+1)*lc], res[r*lc:(r+1)*lc])
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	serial, err := fft.NewPlan2D(rows, cols)
	if err != nil {
		log.Fatal(err)
	}
	want := make([]complex128, rows*cols)
	serial.Forward(want, src)
	st := w.Stats()
	fmt.Printf("2-D %dx%d over a %dx%d grid: rel err vs serial %.1e\n",
		rows, cols, pr, pc, signal.RelErrL2(out, want))
	fmt.Printf("  %d subgroup all-to-alls, %.1f MB exchanged — no machine-wide exchange needed\n",
		st.Alltoalls, float64(st.AlltoallBytes)/1e6)

	// ---- 3-D: a 32³ volume over the same grid ----
	g3, err := fft2d.NewGrid3D(32, 32, 32, pr, pc)
	if err != nil {
		log.Fatal(err)
	}
	vol := signal.Random(32*32*32, 6)
	w3, err := mpi.NewWorld(pr * pc)
	if err != nil {
		log.Fatal(err)
	}
	var roundTrip float64
	err = w3.Run(func(c *mpi.Comm) error {
		// Scatter the rank's pencil.
		i, j := g3.Coords(c.Rank())
		l1, l2 := g3.LocalN1(), g3.LocalN2()
		local := make([]complex128, g3.LocalLen())
		for x := 0; x < l1; x++ {
			for y := 0; y < l2; y++ {
				gx, gy := i*l1+x, j*l2+y
				copy(local[(x*l2+y)*32:(x*l2+y+1)*32], vol[(gx*32+gy)*32:(gx*32+gy+1)*32])
			}
		}
		freq, err := g3.Forward(c, local)
		if err != nil {
			return err
		}
		back, err := g3.Inverse(c, freq)
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			roundTrip = signal.MaxAbsErr(back, local)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-D 32^3 over the same grid: forward+inverse round-trip max err %.1e\n", roundTrip)
}
